//! Cross-OS comparison on a budget: run a reduced campaign over all seven
//! OS targets and print the normalized group comparison — a miniature of
//! the paper's Figure 1 workflow.
//!
//! ```sh
//! cargo run --release -p experiments --example compare_os
//! ```

use ballista::campaign::{run_campaign, CampaignConfig};
use report::normalize::{group_rate, overall_group_weighted, Metric};
use report::MultiOsResults;
use sim_kernel::variant::OsVariant;

fn main() {
    let cfg = CampaignConfig {
        cap: 150, // small: this is a demo, not the reproduction run
        record_raw: false,
        isolation_probe: false,
        perfect_cleanup: false,
        parallelism: 0,
        fuel_budget: 0,
    };
    eprintln!("running reduced campaigns (cap = {}) on all 7 OS targets …", cfg.cap);
    let reports = OsVariant::ALL
        .into_iter()
        .map(|os| {
            let r = run_campaign(os, &cfg);
            eprintln!("  {os}: {} MuTs, {} cases", r.muts.len(), r.total_cases);
            r
        })
        .collect();
    let results = MultiOsResults { reports, warnings: Vec::new() };

    println!("\nAbort+Restart rate by functional group (catastrophic MuTs excluded):\n");
    print!("{:<26}", "group");
    for os in results.oses() {
        print!(" {:>8}", os.short_name());
    }
    println!();
    for group in ballista::muts::FunctionGroup::ALL {
        print!("{:<26}", group.label());
        for report in &results.reports {
            let g = group_rate(report, group, Metric::AbortPlusRestart);
            if g.present {
                print!(" {:>7.1}%", 100.0 * g.rate);
            } else {
                print!(" {:>8}", "-");
            }
        }
        println!();
    }
    println!();
    print!("{:<26}", "TOTAL (group-weighted)");
    for report in &results.reports {
        print!(
            " {:>7.1}%",
            100.0 * overall_group_weighted(report, Metric::AbortPlusRestart)
        );
    }
    println!();

    println!("\nCatastrophic functions found:");
    for report in &results.reports {
        let names: Vec<&str> = report
            .catastrophic_muts()
            .iter()
            .map(|m| m.name.as_str())
            .collect();
        println!(
            "  {:<18} {}",
            report.os.to_string(),
            if names.is_empty() {
                "(none)".to_owned()
            } else {
                names.join(", ")
            }
        );
    }
}
