//! Quickstart: test a handful of calls on two OSes and print CRASH-scale
//! results.
//!
//! ```sh
//! cargo run -p experiments --example quickstart
//! ```

use ballista::campaign::{run_mut_campaign, CampaignConfig};
use ballista::catalog;
use sim_kernel::variant::OsVariant;

fn main() {
    // A small cap keeps the quickstart instant; the paper used 5000.
    let cfg = CampaignConfig {
        cap: 250,
        record_raw: false,
        isolation_probe: true,
        perfect_cleanup: false,
        parallelism: 0,
        fuel_budget: 0,
    };

    println!("Ballista quickstart: five calls, Windows 98 vs Windows NT 4.0 vs Linux\n");
    let interesting = ["GetThreadContext", "CloseHandle", "strlen", "toupper", "fwrite"];

    for os in [OsVariant::Win98, OsVariant::WinNt4, OsVariant::Linux] {
        println!("=== {os} ===");
        let muts = catalog::catalog_for(os);
        for name in interesting {
            match muts.iter().find(|m| m.name == name) {
                Some(m) => {
                    let tally = run_mut_campaign(os, m, &cfg);
                    println!("  {}", tally.summary_line());
                }
                None => println!("  {name}: not in this OS's API"),
            }
        }
        println!();
    }

    println!("Reading the output:");
    println!("  * GetThreadContext is Catastrophic on Windows 98 (the paper's Listing 1),");
    println!("    an Abort on NT, and absent from the Linux API.");
    println!("  * CloseHandle aborts nowhere, but on 98 it silently accepts garbage");
    println!("    handles (high silent rate) where NT reports ERROR_INVALID_HANDLE.");
    println!("  * toupper: glibc's unchecked table lookup aborts on Linux; every");
    println!("    Windows CRT bounds-checks it to a 0% failure rate.");
}
