//! Extending Ballista: register your own data type and Module under Test
//! and let the harness hunt for robustness failures in *your* API — the
//! "Internet-based testing service" workflow of the Ballista project,
//! in-process.
//!
//! The example defines a deliberately fragile call,
//! `FrobnicateBuffer(buf, len, mode)`, that (a) dereferences `buf` without
//! probing, (b) hangs when `mode == 0xFF`, and (c) silently accepts a
//! too-large `len`. Ballista finds all three.
//!
//! ```sh
//! cargo run -p experiments --example custom_api
//! ```

use ballista::campaign::resolve_pools;
use ballista::datatype::TypeRegistry;
use ballista::exec::{execute_case, Session};
use ballista::muts::{arg, FunctionGroup, Mut};
use ballista::sampling;
use ballista::value::TestValue;
use ballista::FailureClass;
use sim_kernel::outcome::{ApiAbort, ApiReturn};
use std::collections::BTreeMap;
use std::sync::Arc;

fn main() {
    // 1. A type registry with a custom "frob_mode" type plus the stock
    //    buffer/size pools.
    let mut registry = TypeRegistry::new();
    let stock = ballista::pools::posix_types();
    registry.register("buffer", stock.pool("buffer"));
    registry.register("size", stock.pool("size"));
    registry.register(
        "frob_mode",
        vec![
            TestValue::constant("MODE_FAST", false, 1),
            TestValue::constant("MODE_SAFE", false, 2),
            TestValue::constant("MODE_DEBUG(0xFF)", false, 0xFF),
            TestValue::constant("garbage mode", true, 0xDEAD),
        ],
    );

    // 2. The Module under Test: our fragile API.
    let frobnicate = Mut {
        name: "FrobnicateBuffer",
        group: FunctionGroup::MemoryManagement,
        params: vec!["buffer", "size", "frob_mode"],
        dispatch: Arc::new(|k, _os, a| {
            k.charge_call();
            let (buf, len, mode) = (arg::ptr(a[0]), a[1], arg::uint(a[2]));
            // Bug (b): the debug mode spins forever.
            if mode == 0xFF {
                return Err(ApiAbort::Hang);
            }
            if !matches!(mode, 1 | 2) {
                return Ok(ApiReturn::err(0, 22)); // robust EINVAL
            }
            // Bug (c): silently clamp absurd lengths instead of reporting.
            let effective = len.min(64);
            // Bug (a): no probing before the write loop.
            for i in 0..effective {
                if let Err(fault) = k.space.write_u8(buf.offset(i), 0x5A) {
                    return Err(ApiAbort::signal_from_fault(fault));
                }
            }
            Ok(ApiReturn::ok(effective as i64))
        }),
    };

    // 3. Enumerate, execute, classify — the standard Ballista loop.
    let pools = resolve_pools(&registry, &frobnicate);
    let dims: Vec<usize> = pools.iter().map(Vec::len).collect();
    let cases = sampling::enumerate(&dims, 5000, frobnicate.name);
    let mut session = Session::new();
    let mut by_class: BTreeMap<FailureClass, usize> = BTreeMap::new();
    let mut worst_examples: BTreeMap<FailureClass, String> = BTreeMap::new();
    for combo in &cases.cases {
        let result = execute_case(
            sim_kernel::variant::OsVariant::Linux,
            &frobnicate,
            &pools,
            combo,
            &mut session,
        );
        *by_class.entry(result.class).or_default() += 1;
        worst_examples.entry(result.class).or_insert_with(|| {
            combo
                .iter()
                .zip(&pools)
                .map(|(&i, pool)| pool[i].name)
                .collect::<Vec<_>>()
                .join(", ")
        });
    }

    println!(
        "FrobnicateBuffer(buf, len, mode): {} test cases ({})\n",
        cases.cases.len(),
        if cases.exhaustive { "exhaustive" } else { "sampled" }
    );
    for (class, count) in by_class.iter().rev() {
        println!(
            "  {:<12} {:>5} cases   first: ({})",
            class.to_string(),
            count,
            worst_examples[class]
        );
    }
    println!("\nBallista found the hang (Restart), the unprobed writes (Abort),");
    println!("and the silent clamp (Silent) without knowing anything about the");
    println!("function beyond its parameter types.");
}
