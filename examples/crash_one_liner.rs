//! The paper's Listing 1, as a library consumer would write it: call the
//! simulated Win32 API directly and watch Windows 95/98/98 SE/CE die while
//! NT/2000 shrug it off.
//!
//! ```sh
//! cargo run -p experiments --example crash_one_liner
//! ```

use sim_core::SimPtr;
use sim_kernel::objects::Handle;
use sim_kernel::process::ThreadContext;
use sim_kernel::variant::OsVariant;
use sim_kernel::Kernel;
use sim_win32::threadapi;
use sim_win32::Win32Profile;

fn run_listing1(os: OsVariant, context_ptr: SimPtr, kernel: &mut Kernel) -> String {
    let profile = Win32Profile::for_os(os);
    let thread = Handle(
        threadapi::GetCurrentThread(kernel, profile)
            .expect("pseudo-handle call cannot fail")
            .value as u32,
    );
    let outcome = threadapi::GetThreadContext(kernel, profile, thread, context_ptr);
    if !kernel.is_alive() {
        return format!("CATASTROPHIC: {}", kernel.crash.info().expect("recorded"));
    }
    match outcome {
        Err(abort) => format!("Abort: {abort}"),
        Ok(ret) if ret.reported_error() => format!("error code {}", ret.error.unwrap_or(0)),
        Ok(_) => "success".to_owned(),
    }
}

fn main() {
    println!("GetThreadContext(GetCurrentThread(), NULL)  — the paper's Listing 1\n");
    for os in [
        OsVariant::Win95,
        OsVariant::Win98,
        OsVariant::Win98Se,
        OsVariant::WinNt4,
        OsVariant::Win2000,
        OsVariant::WinCe,
    ] {
        let mut kernel = Kernel::with_flavor(os.machine_flavor());
        let verdict = run_listing1(os, SimPtr::NULL, &mut kernel);
        println!("  {os:<18} {verdict}");
    }

    println!("\nSame call with a *valid* CONTEXT buffer — works everywhere:\n");
    for os in [OsVariant::Win95, OsVariant::WinNt4, OsVariant::WinCe] {
        let mut kernel = Kernel::with_flavor(os.machine_flavor());
        let ctx = kernel.alloc_user(ThreadContext::SIZE, "CONTEXT");
        let verdict = run_listing1(os, ctx, &mut kernel);
        let eip = kernel.space.read_u32(ctx.offset(32)).unwrap_or(0);
        println!("  {os:<18} {verdict} (captured eip = {eip:#x})");
    }
}
