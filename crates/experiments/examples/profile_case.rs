//! Dev profiler: per-MuT wall time through the real batched case
//! runner (provisioning + constructors + dispatch + classification),
//! sorted by total time — the first place to look when chasing a
//! campaign-throughput regression.
//!
//! Usage: `cargo run --release -p experiments --example profile_case \
//!   [cap] [linux|win98|wince]` (defaults: cap 2000, Win95).

use ballista::exec::{CaseRunner, Session, DEFAULT_FUEL_BUDGET};
use sim_kernel::variant::OsVariant;
use std::time::Instant;

fn main() {
    let os = match std::env::args().nth(2).as_deref() {
        Some("linux") => OsVariant::Linux,
        Some("win98") => OsVariant::Win98,
        Some("wince") => OsVariant::WinCe,
        _ => OsVariant::Win95,
    };
    let registry = ballista::catalog::registry_for(os);
    let muts = ballista::catalog::catalog_for(os);
    let cap = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2000usize);

    let mut rows: Vec<(String, usize, f64)> = Vec::new();
    for m in &muts {
        let pools = ballista::campaign::resolve_pools(&registry, m);
        if pools.is_empty() {
            continue;
        }
        let dims: Vec<usize> = pools.iter().map(Vec::len).collect();
        let set = ballista::sampling::enumerate(&dims, cap, m.name);

        let mut runner = CaseRunner::new();
        let mut session = Session::new();
        let t0 = Instant::now();
        for combo in &set.cases {
            let _ = runner.execute(os, m, &pools, combo, &mut session, DEFAULT_FUEL_BUDGET);
        }
        let per_case_ns = t0.elapsed().as_nanos() as f64 / set.cases.len() as f64;
        rows.push((m.name.to_string(), set.cases.len(), per_case_ns));
    }
    rows.sort_by(|a, b| {
        (b.2 * b.1 as f64).partial_cmp(&(a.2 * a.1 as f64)).expect("finite")
    });
    let total_cases: usize = rows.iter().map(|r| r.1).sum();
    let total_ns: f64 = rows.iter().map(|r| r.2 * r.1 as f64).sum();
    println!(
        "{} cases: avg {:.0}ns/case ({:.2}M cases/s)",
        total_cases,
        total_ns / total_cases as f64,
        total_cases as f64 / total_ns * 1e3,
    );
    println!("top 15 MuTs by total time:");
    for (name, n, t) in rows.iter().take(15) {
        println!(
            "  {name:<24} {n:>5} cases  {t:>7.0}ns/case  {:>7.2}ms total",
            t * *n as f64 / 1e6
        );
    }
}
