//! Shared driver for the experiment binaries: runs (or loads cached)
//! campaigns for all seven OS targets and writes results under
//! `results/`.
//!
//! Environment knobs:
//!
//! * `BALLISTA_CAP` — per-MuT test-case cap (default: the paper's 5000).
//! * `BALLISTA_RESULTS_DIR` — cache/output directory (default `results`).
//! * `BALLISTA_FRESH` — set to any value to ignore a cached campaign.
//! * `BALLISTA_TELEMETRY` — set to any non-`0` value to enable the
//!   telemetry hub: structured traces (`trace_<os>.json`), the metrics
//!   registry (`metrics.json`) and the live progress ticker. See
//!   `OBSERVABILITY.md`.
//! * `TELEMETRY_PROFILE` — additionally attribute simulated-kernel fuel
//!   to subsystems and write a flamegraph-ready `profile.folded`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bench;

use ballista::campaign::{run_campaign, CampaignConfig, CampaignReport};
use ballista::telemetry::{chrome_trace_bytes, Hub, TelemetryConfig};
use report::MultiOsResults;
use sim_kernel::variant::OsVariant;
use std::fs;
use std::io::IsTerminal;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Reads the per-MuT cap from `BALLISTA_CAP` (default 5000).
#[must_use]
pub fn cap_from_env() -> usize {
    std::env::var("BALLISTA_CAP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(ballista::sampling::PAPER_CAP)
}

/// The results/cache directory.
#[must_use]
pub fn results_dir() -> PathBuf {
    PathBuf::from(std::env::var("BALLISTA_RESULTS_DIR").unwrap_or_else(|_| "results".into()))
}

fn cache_path(cap: usize) -> PathBuf {
    results_dir().join(format!("campaign-cap{cap}.json"))
}

/// Divides the machine's cores between variant-level fan-out and
/// per-campaign workers: `(concurrent variants, workers per campaign)`.
fn split_parallelism(variants: usize) -> (usize, usize) {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let fan_out = cores.min(variants).max(1);
    (fan_out, (cores / fan_out).max(1))
}

/// Runs one campaign in legacy provisioning mode and once with the
/// current engine, and reports the measured speedup. Runs strictly after
/// the main campaigns (the legacy switch is process-wide).
fn calibrate_speedup(cap: usize) -> bench::Calibration {
    let os = OsVariant::Linux;
    let cfg = CampaignConfig {
        cap,
        record_raw: false,
        isolation_probe: true,
        perfect_cleanup: false,
        parallelism: 1,
        fuel_budget: 0,
    };
    ballista::exec::LEGACY_PROVISIONING.store(true, Ordering::SeqCst);
    let t0 = Instant::now();
    let legacy = run_campaign(os, &cfg);
    let legacy_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    ballista::exec::LEGACY_PROVISIONING.store(false, Ordering::SeqCst);
    let t1 = Instant::now();
    let engine = run_campaign(os, &CampaignConfig { parallelism: 0, ..cfg });
    let engine_wall_ms = t1.elapsed().as_secs_f64() * 1e3;
    bench::Calibration {
        os: os.short_name().to_owned(),
        cap,
        legacy_wall_ms,
        engine_wall_ms,
        speedup: legacy_wall_ms / engine_wall_ms.max(1e-9),
        tallies_identical: serde_json::to_string(&legacy.muts).expect("serializable")
            == serde_json::to_string(&engine.muts).expect("serializable"),
    }
}

/// A placeholder report for a variant whose campaign died even after the
/// engine's own containment: no tallies, explicitly `degraded` so every
/// renderer flags the hole instead of silently presenting six variants
/// as seven.
fn degraded_placeholder(os: OsVariant) -> CampaignReport {
    CampaignReport {
        os,
        muts: Vec::new(),
        total_cases: 0,
        stats: None,
        warnings: vec![format!(
            "campaign for {} panicked past containment; variant dropped from this run",
            os.short_name()
        )],
        degraded: true,
        fleet_degraded: false,
    }
}

/// Runs the full seven-OS campaign at `cap`, printing progress and
/// writing the `BENCH_campaign.json` timing artifact.
///
/// Variants fan out across worker threads (campaign order and results
/// are position-stable, so the output is identical to the sequential
/// driver); remaining cores go to each campaign's clean pass. Raw
/// per-case outcomes are recorded for the desktop Windows variants (the
/// Figure 2 voting set).
///
/// A variant whose campaign panics past the engine's own containment no
/// longer aborts the fleet: it yields an empty `degraded` report with an
/// explicit warning, and the remaining variants complete normally.
///
/// # Panics
///
/// Panics when a report slot mutex is poisoned — only possible if the
/// degradation path itself panicked.
#[must_use]
pub fn run_all_oses(cap: usize) -> MultiOsResults {
    let t0 = Instant::now();
    let telemetry = Telemetry::from_env();
    let oses = OsVariant::ALL;
    let (fan_out, per_campaign) = split_parallelism(oses.len());
    let slots: Vec<Mutex<Option<CampaignReport>>> =
        oses.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..fan_out)
            .map(|_| {
                s.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&os) = oses.get(i) else { break };
                    let cfg = CampaignConfig {
                        cap,
                        record_raw: OsVariant::DESKTOP_WINDOWS.contains(&os),
                        isolation_probe: true,
                        perfect_cleanup: false,
                        parallelism: per_campaign,
                        fuel_budget: 0,
                    };
                    let report = std::panic::catch_unwind(|| run_campaign(os, &cfg))
                        .unwrap_or_else(|_| degraded_placeholder(os));
                    let stats = report.stats.unwrap_or_default();
                    eprintln!(
                        "  [{}] {} MuTs, {} cases, {} catastrophic, {:.1}s ({:.0} cases/s, {} restores, {} boots, {} replayed){}",
                        os.short_name(),
                        report.muts.len(),
                        report.total_cases,
                        report.catastrophic_muts().len(),
                        stats.wall_ms / 1e3,
                        stats.cases_per_sec,
                        stats.restores,
                        stats.boots,
                        stats.replayed_cases,
                        if report.degraded { " [DEGRADED]" } else { "" },
                    );
                    *slots[i].lock().expect("report slot poisoned") = Some(report);
                })
            })
            .collect();
        for h in handles {
            if h.join().is_err() {
                eprintln!("  campaign worker thread died; degraded placeholders fill its slots");
            }
        }
    })
    .expect("campaign scope panicked");
    let reports: Vec<CampaignReport> = slots
        .into_iter()
        .zip(oses.iter())
        .map(|(slot, &os)| {
            slot.into_inner()
                .expect("report slot poisoned")
                .unwrap_or_else(|| degraded_placeholder(os))
        })
        .collect();
    // Flush observability artifacts before the calibration reruns below
    // so `metrics.json` describes exactly the seven-variant fleet.
    telemetry.finish();
    let total_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let total_cases: usize = reports.iter().map(|r| r.total_cases).sum();
    let calibration = calibrate_speedup(cap.min(100));
    eprintln!(
        "  total: {} cases in {:.1}s; provisioning speedup vs legacy {:.1}x",
        total_cases,
        total_wall_ms / 1e3,
        calibration.speedup
    );
    let artifact = bench::CampaignBench {
        total_wall_ms,
        total_cases,
        cases_per_sec: total_cases as f64 / (total_wall_ms / 1e3).max(1e-9),
        variant_fan_out: fan_out,
        per_campaign_parallelism: per_campaign,
        variants: reports.iter().map(bench::VariantBench::from_report).collect(),
        calibration: Some(calibration),
        // A prior fleet_bench's serving and supervised-fleet sections
        // survive the rewrite.
        serve: bench::load().and_then(|b| b.serve),
        fleet: bench::load().and_then(|b| b.fleet),
    };
    bench::store(&artifact);
    let warnings: Vec<String> = reports
        .iter()
        .flat_map(|r| {
            let os = r.os.short_name();
            r.warnings.iter().map(move |w| format!("[{os}] {w}"))
        })
        .collect();
    for w in &warnings {
        eprintln!("  warning: {w}");
    }
    MultiOsResults { reports, warnings }
}

/// Loads the cached campaign for `cap`, or runs it and caches the result.
///
/// # Panics
///
/// Panics when the results directory is not writable — the experiment
/// cannot record its outputs, which is fatal for reproduction runs.
#[must_use]
pub fn load_or_run(cap: usize) -> MultiOsResults {
    let path = cache_path(cap);
    if std::env::var("BALLISTA_FRESH").is_err() {
        if let Ok(bytes) = fs::read(&path) {
            if let Ok(results) = serde_json::from_slice::<MultiOsResults>(&bytes) {
                eprintln!("loaded cached campaign from {}", path.display());
                return results;
            }
        }
    }
    eprintln!("running full campaign (cap = {cap}) …");
    let results = run_all_oses(cap);
    fs::create_dir_all(results_dir()).expect("results dir must be creatable");
    ballista::persist::atomic_write(&path, &serde_json::to_vec(&results).expect("serializable"))
        .expect("results cache must be writable");
    eprintln!("cached campaign to {}", path.display());
    results
}

/// The experiment-side handle on a `ballista::telemetry` hub: installs
/// the hub from the environment, runs the live progress ticker while
/// campaigns execute, and writes every observability artifact on
/// [`Telemetry::finish`].
///
/// Constructed by every experiment binary via [`Telemetry::from_env`];
/// when neither `BALLISTA_TELEMETRY` nor `TELEMETRY_PROFILE` is set this
/// is a no-op handle and the campaign engines run their zero-cost
/// disabled path.
pub struct Telemetry {
    hub: Option<std::sync::Arc<Hub>>,
    ticker: Option<(std::sync::mpsc::Sender<()>, std::thread::JoinHandle<()>)>,
    started: Instant,
}

impl Telemetry {
    /// Installs a telemetry hub if `BALLISTA_TELEMETRY` /
    /// `TELEMETRY_PROFILE` ask for one, and starts the single-line
    /// progress ticker when stderr is a terminal.
    #[must_use]
    pub fn from_env() -> Telemetry {
        let Some(cfg) = TelemetryConfig::from_env() else {
            return Telemetry { hub: None, ticker: None, started: Instant::now() };
        };
        let hub = Hub::install(cfg);
        let started = Instant::now();
        let ticker = std::io::stderr().is_terminal().then(|| {
            let (tx, rx) = std::sync::mpsc::channel::<()>();
            let hub = std::sync::Arc::clone(&hub);
            let handle = std::thread::spawn(move || {
                // Redraw until told to stop; `recv_timeout` doubles as
                // the frame clock.
                while rx.recv_timeout(Duration::from_millis(250)).is_err() {
                    let line = report::progress::render_progress(
                        &hub.progress.snapshot(),
                        started.elapsed().as_secs_f64(),
                    );
                    eprint!("\r\x1b[2K  {line}");
                }
                eprint!("\r\x1b[2K");
            });
            (tx, handle)
        });
        Telemetry { hub: Some(hub), ticker, started }
    }

    /// Whether a hub is installed (telemetry was requested).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.hub.is_some()
    }

    /// Stops the ticker, writes `metrics.json`, one `trace_<os>.json`
    /// per traced campaign and (under `TELEMETRY_PROFILE`)
    /// `profile.folded`, prints the human metrics table, and uninstalls
    /// the hub.
    ///
    /// # Panics
    ///
    /// Panics when an observability artifact cannot be written (same
    /// policy as every other artifact in this driver).
    pub fn finish(self) {
        if let Some((tx, handle)) = self.ticker {
            // The ticker exits on channel disconnect too; ignore a
            // send-after-death.
            let _ = tx.send(());
            let _ = handle.join();
        }
        let Some(hub) = self.hub else { return };
        for trace in hub.take_traces() {
            let name = format!("trace_{}.json", trace.os);
            let bytes = chrome_trace_bytes(&trace);
            write_artifact(&name, &String::from_utf8(bytes).expect("trace is UTF-8"));
        }
        if hub.profiling() {
            write_artifact("profile.folded", &hub.collapsed_stacks());
        }
        let snapshot = hub.metrics_snapshot();
        write_artifact(
            "metrics.json",
            &serde_json::to_string_pretty(&snapshot).expect("serializable"),
        );
        eprint!("{}", report::progress::render_metrics(&snapshot));
        eprintln!(
            "  telemetry: {:.1}s observed wall time",
            self.started.elapsed().as_secs_f64()
        );
        Hub::uninstall();
    }
}

/// Writes a named artifact (table text / CSV) under the results dir,
/// atomically — a crash mid-write never leaves a torn artifact.
///
/// # Panics
///
/// Panics when the artifact cannot be written.
pub fn write_artifact(name: &str, contents: &str) {
    let dir = results_dir();
    fs::create_dir_all(&dir).expect("results dir must be creatable");
    let path = dir.join(name);
    ballista::persist::atomic_write(&path, contents.as_bytes()).expect("artifact must be writable");
    eprintln!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_default_is_paper_cap() {
        // (Environment-dependent overrides are exercised by the binaries.)
        if std::env::var("BALLISTA_CAP").is_err() {
            assert_eq!(cap_from_env(), 5000);
        }
    }
}
