//! Shared driver for the experiment binaries: runs (or loads cached)
//! campaigns for all seven OS targets and writes results under
//! `results/`.
//!
//! Environment knobs:
//!
//! * `BALLISTA_CAP` — per-MuT test-case cap (default: the paper's 5000).
//! * `BALLISTA_RESULTS_DIR` — cache/output directory (default `results`).
//! * `BALLISTA_FRESH` — set to any value to ignore a cached campaign.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ballista::campaign::{run_campaign, CampaignConfig};
use report::MultiOsResults;
use sim_kernel::variant::OsVariant;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

/// Reads the per-MuT cap from `BALLISTA_CAP` (default 5000).
#[must_use]
pub fn cap_from_env() -> usize {
    std::env::var("BALLISTA_CAP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(ballista::sampling::PAPER_CAP)
}

/// The results/cache directory.
#[must_use]
pub fn results_dir() -> PathBuf {
    PathBuf::from(std::env::var("BALLISTA_RESULTS_DIR").unwrap_or_else(|_| "results".into()))
}

fn cache_path(cap: usize) -> PathBuf {
    results_dir().join(format!("campaign-cap{cap}.json"))
}

/// Runs the full seven-OS campaign at `cap`, printing progress.
///
/// Raw per-case outcomes are recorded for the desktop Windows variants
/// (the Figure 2 voting set).
#[must_use]
pub fn run_all_oses(cap: usize) -> MultiOsResults {
    let mut reports = Vec::new();
    for os in OsVariant::ALL {
        let cfg = CampaignConfig {
            cap,
            record_raw: OsVariant::DESKTOP_WINDOWS.contains(&os),
            isolation_probe: true,
            perfect_cleanup: false,
        };
        let t0 = Instant::now();
        let report = run_campaign(os, &cfg);
        eprintln!(
            "  [{}] {} MuTs, {} cases, {} catastrophic, {:.1}s",
            os.short_name(),
            report.muts.len(),
            report.total_cases,
            report.catastrophic_muts().len(),
            t0.elapsed().as_secs_f64()
        );
        reports.push(report);
    }
    MultiOsResults { reports }
}

/// Loads the cached campaign for `cap`, or runs it and caches the result.
///
/// # Panics
///
/// Panics when the results directory is not writable — the experiment
/// cannot record its outputs, which is fatal for reproduction runs.
#[must_use]
pub fn load_or_run(cap: usize) -> MultiOsResults {
    let path = cache_path(cap);
    if std::env::var("BALLISTA_FRESH").is_err() {
        if let Ok(bytes) = fs::read(&path) {
            if let Ok(results) = serde_json::from_slice::<MultiOsResults>(&bytes) {
                eprintln!("loaded cached campaign from {}", path.display());
                return results;
            }
        }
    }
    eprintln!("running full campaign (cap = {cap}) …");
    let results = run_all_oses(cap);
    fs::create_dir_all(results_dir()).expect("results dir must be creatable");
    fs::write(&path, serde_json::to_vec(&results).expect("serializable"))
        .expect("results cache must be writable");
    eprintln!("cached campaign to {}", path.display());
    results
}

/// Writes a named artifact (table text / CSV) under the results dir.
///
/// # Panics
///
/// Panics when the artifact cannot be written.
pub fn write_artifact(name: &str, contents: &str) {
    let dir = results_dir();
    fs::create_dir_all(&dir).expect("results dir must be creatable");
    let path = dir.join(name);
    fs::write(&path, contents).expect("artifact must be writable");
    eprintln!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_default_is_paper_cap() {
        // (Environment-dependent overrides are exercised by the binaries.)
        if std::env::var("BALLISTA_CAP").is_err() {
            assert_eq!(cap_from_env(), 5000);
        }
    }
}
