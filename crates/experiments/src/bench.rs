//! The `results/BENCH_campaign.json` schema, shared by every producer:
//! the full seven-variant driver ([`crate::run_all_oses`]), the CI
//! `perf_smoke` tripwire (single-variant rows), and `fleet_bench`
//! (the `serve` section). The file records the bench trajectory per PR,
//! so all producers **merge into** the existing artifact rather than
//! clobbering each other's sections.

use ballista::campaign::CampaignReport;
use serde::{Deserialize, Serialize};

/// One variant's timing row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariantBench {
    /// Variant short name (`win95`, …).
    pub os: String,
    /// Campaign wall-clock, milliseconds.
    pub wall_ms: f64,
    /// Cases executed.
    pub cases: usize,
    /// Sustained case rate.
    pub cases_per_sec: f64,
    /// Full machine boots.
    pub boots: u64,
    /// Snapshot restores (one per case).
    pub restores: u64,
    /// Restores served by in-place dirty-state reset.
    pub restores_fast: u64,
    /// Restores that deep-cloned the boot template.
    pub restores_full: u64,
    /// Cases re-executed by the replay pass.
    pub replayed_cases: usize,
}

impl VariantBench {
    /// The bench row of one campaign report.
    #[must_use]
    pub fn from_report(report: &CampaignReport) -> Self {
        let s = report.stats.unwrap_or_default();
        VariantBench {
            os: report.os.short_name().to_owned(),
            wall_ms: s.wall_ms,
            cases: report.total_cases,
            cases_per_sec: s.cases_per_sec,
            boots: s.boots,
            restores: s.restores,
            restores_fast: s.restores_fast,
            restores_full: s.restores_full,
            replayed_cases: s.replayed_cases,
        }
    }
}

/// A measured before/after comparison: the same campaign run once with
/// legacy machine provisioning (full boot per case, eagerly zero-filled
/// regions — the pre-snapshot cost model) and once with the current
/// engine. Both runs produce bit-identical tallies; only the wall-clock
/// differs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Calibration {
    /// Variant the calibration ran on.
    pub os: String,
    /// Per-MuT cap of the calibration runs.
    pub cap: usize,
    /// Legacy-provisioning wall-clock, milliseconds.
    pub legacy_wall_ms: f64,
    /// Current-engine wall-clock, milliseconds.
    pub engine_wall_ms: f64,
    /// `legacy / engine`.
    pub speedup: f64,
    /// Whether the two runs' tallies were byte-identical.
    pub tallies_identical: bool,
}

/// The `fleet_bench` serving measurements: what the campaign service
/// sustains on the cache-hit path versus the cold path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeBench {
    /// Identical `POST /campaign` requests fired on the hit path.
    pub identical_requests: usize,
    /// Distinct specs fired on the cold path.
    pub distinct_specs: usize,
    /// Concurrent client connections used for the hit phase.
    pub clients: usize,
    /// Per-MuT cap of the benchmarked specs.
    pub cap: usize,
    /// Cache-hit-path served requests per second.
    pub hit_requests_per_sec: f64,
    /// Wall-clock of the cold phase (each distinct spec's first
    /// request, campaigns actually executing), milliseconds.
    pub cold_wall_ms: f64,
    /// Campaigns the server actually executed (must equal
    /// `distinct_specs` when coalescing holds).
    pub campaigns_executed: u64,
    /// Requests coalesced onto an in-flight campaign.
    pub requests_coalesced: u64,
    /// Served-from-cache fraction over all `POST /campaign` requests.
    pub hit_rate: f64,
}

/// The supervised-fleet measurements (`fleet_bench --supervised`):
/// campaign throughput with shards executing on supervised worker
/// processes instead of in-process threads, cache-cold and cache-hit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SupervisedFleetBench {
    /// Worker processes requested.
    pub workers: usize,
    /// Shard count requested (`0` → auto).
    pub shards: usize,
    /// Per-MuT cap of the benchmarked spec.
    pub cap: usize,
    /// Cache-cold wall-clock of the supervised campaign, milliseconds.
    pub cold_wall_ms: f64,
    /// Sustained case rate of the cold supervised campaign.
    pub cold_cases_per_sec: f64,
    /// Cache-hit-path served requests per second for the same spec.
    pub hit_requests_per_sec: f64,
    /// Worker deaths observed during the cold run (expected `0` on a
    /// healthy host; non-zero means the numbers include retry cost).
    pub worker_deaths: u64,
    /// Whether the cold run degraded below process isolation.
    pub degraded: bool,
}

/// The `BENCH_campaign.json` artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignBench {
    /// Wall-clock of the producing run, milliseconds.
    pub total_wall_ms: f64,
    /// Total cases across `variants`.
    pub total_cases: usize,
    /// Aggregate sustained case rate.
    pub cases_per_sec: f64,
    /// Variant campaigns run concurrently.
    pub variant_fan_out: usize,
    /// Clean-pass workers per campaign.
    pub per_campaign_parallelism: usize,
    /// Per-variant rows.
    pub variants: Vec<VariantBench>,
    /// Provisioning speedup measurement (absent in single-variant
    /// tripwire runs).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub calibration: Option<Calibration>,
    /// Campaign-service measurements (absent until `fleet_bench` has
    /// run).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub serve: Option<ServeBench>,
    /// Supervised-fleet measurements (absent until
    /// `fleet_bench --supervised` has run).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fleet: Option<SupervisedFleetBench>,
}

/// Loads the existing artifact, if present and parseable.
#[must_use]
pub fn load() -> Option<CampaignBench> {
    let bytes = std::fs::read(crate::results_dir().join("BENCH_campaign.json")).ok()?;
    serde_json::from_slice(&bytes).ok()
}

/// Writes the artifact atomically.
///
/// # Panics
///
/// Panics when the artifact cannot be written (same policy as every
/// other artifact in this driver).
pub fn store(bench: &CampaignBench) {
    crate::write_artifact(
        "BENCH_campaign.json",
        &serde_json::to_string_pretty(bench).expect("serializable"),
    );
}
