//! Reproduces **Listing 1** of the paper — the one-line program
//!
//! ```c
//! GetThreadContext(GetCurrentThread(), NULL);
//! ```
//!
//! which crashed Windows 95, Windows 98 and Windows CE every time it ran,
//! and is a plain access-violation Abort on Windows NT / 2000.

use sim_core::SimPtr;
use sim_kernel::objects::Handle;
use sim_kernel::variant::OsVariant;
use sim_kernel::Kernel;
use sim_win32::threadapi::{GetCurrentThread, GetThreadContext};
use sim_win32::Win32Profile;

fn main() {
    println!("Listing 1: GetThreadContext(GetCurrentThread(), NULL);\n");
    for os in [
        OsVariant::Win95,
        OsVariant::Win98,
        OsVariant::Win98Se,
        OsVariant::WinNt4,
        OsVariant::Win2000,
        OsVariant::WinCe,
    ] {
        let mut k = Kernel::with_flavor(os.machine_flavor());
        let profile = Win32Profile::for_os(os);
        let h = Handle(
            GetCurrentThread(&mut k, profile)
                .expect("pseudo-handle call cannot fail")
                .value as u32,
        );
        let result = GetThreadContext(&mut k, profile, h, SimPtr::NULL);
        let verdict = if !k.is_alive() {
            format!(
                "CATASTROPHIC — {}",
                k.crash.info().expect("crash recorded")
            )
        } else {
            match result {
                Err(abort) => format!("Abort — {abort}"),
                Ok(ret) if ret.reported_error() => {
                    format!("robust error (code {})", ret.error.unwrap_or(0))
                }
                Ok(_) => "returned success".to_owned(),
            }
        };
        println!("  {os:<18} {verdict}");
    }
}
