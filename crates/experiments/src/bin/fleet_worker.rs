//! Supervised fleet worker: executes [`ballista::fleet::ShardSpec`]s
//! received as length-prefixed frames on stdin and answers each with
//! heartbeat frames plus a [`ballista::fleet::ShardResult`] frame on
//! stdout, until the supervisor closes the pipe.
//!
//! Spawned by the fleet supervisor (`FleetConfig::process`), never run
//! by hand; honors the `BALLISTA_FLEET_FAULT` /
//! `BALLISTA_FLEET_SHARD_DELAY_MS` chaos latches documented in
//! [`ballista::fleet`].

fn main() {
    let stdin = std::io::stdin().lock();
    let stdout = std::io::stdout().lock();
    if let Err(e) = ballista::fleet::worker_loop(stdin, stdout) {
        eprintln!("fleet_worker: {e}");
        std::process::exit(1);
    }
}
