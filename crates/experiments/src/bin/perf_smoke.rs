//! CI perf smoke: one serial win95 campaign, failing the job when the
//! sustained case rate drops below the checked-in floor.
//!
//! The floor lives in `ci/perf_floor.txt` (cases/sec, one number,
//! `#` comments allowed) so a provisioning regression — say, the
//! batched runner silently falling back to clone-per-case — turns the
//! build red instead of only showing up in the next full bench run.
//! The floor is set well under the rates a dev machine reaches
//! (`results/BENCH_campaign.json`) to leave headroom for noisy CI
//! runners; it is a tripwire, not a benchmark.
//!
//! Every run also records its scored pass as a standard-schema
//! `results/BENCH_campaign.json` row (merging with any existing
//! artifact), so the bench trajectory is captured per PR even when only
//! the smoke job ran.
//!
//! Usage: `perf_smoke [path/to/perf_floor.txt]`

use ballista::campaign::{run_campaign, CampaignConfig};
use experiments::bench;
use sim_kernel::variant::OsVariant;

fn read_floor(path: &str) -> f64 {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perf floor {path} must be readable: {e}"));
    text.lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .and_then(|l| l.parse().ok())
        .unwrap_or_else(|| panic!("perf floor {path} must contain one cases/sec number"))
}

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| "ci/perf_floor.txt".into());
    let floor = read_floor(&path);
    let cap = experiments::cap_from_env().min(2000);
    let cfg = CampaignConfig {
        cap,
        record_raw: false,
        isolation_probe: true,
        perfect_cleanup: false,
        parallelism: 1,
        fuel_budget: 0,
    };
    // One throwaway warm-up MuT set would complicate accounting; instead
    // run the whole campaign twice and score the warm pass only.
    let _ = run_campaign(OsVariant::Win95, &cfg);
    let report = run_campaign(OsVariant::Win95, &cfg);
    let stats = report.stats.expect("serial campaign reports stats");
    eprintln!(
        "perf smoke: win95 cap {cap}, {} cases in {:.1}ms — {:.0} cases/s (floor {:.0}), {} fast / {} full restores",
        report.total_cases,
        stats.wall_ms,
        stats.cases_per_sec,
        floor,
        stats.restores_fast,
        stats.restores_full,
    );
    assert!(
        stats.restores_fast > stats.restores_full,
        "batched execution regressed: most cases must be served by in-place reset"
    );
    // Record the scored pass in the standard bench schema. The smoke
    // row replaces a previous smoke row for the same variant but leaves
    // the full driver's other sections (calibration, serve) intact.
    let row = bench::VariantBench::from_report(&report);
    let previous = bench::load();
    let mut variants = previous
        .as_ref()
        .map(|b| b.variants.clone())
        .unwrap_or_default();
    match variants.iter_mut().find(|v| v.os == row.os) {
        Some(slot) => *slot = row,
        None => variants.push(row),
    }
    let total_cases: usize = variants.iter().map(|v| v.cases).sum();
    let total_wall_ms: f64 = variants.iter().map(|v| v.wall_ms).sum();
    bench::store(&bench::CampaignBench {
        total_wall_ms,
        total_cases,
        cases_per_sec: total_cases as f64 / (total_wall_ms / 1e3).max(1e-9),
        variant_fan_out: 1,
        per_campaign_parallelism: 1,
        variants,
        calibration: previous.as_ref().and_then(|b| b.calibration.clone()),
        serve: previous.as_ref().and_then(|b| b.serve.clone()),
        fleet: previous.and_then(|b| b.fleet),
    });
    if stats.cases_per_sec < floor {
        eprintln!(
            "perf smoke FAILED: {:.0} cases/s is below the checked-in floor of {:.0}",
            stats.cases_per_sec, floor
        );
        std::process::exit(1);
    }
    eprintln!("perf smoke passed");
}
