//! CI perf smoke: one serial win95 campaign, failing the job when the
//! sustained case rate drops below the checked-in floor.
//!
//! The floor lives in `ci/perf_floor.txt` (cases/sec, one number,
//! `#` comments allowed) so a provisioning regression — say, the
//! batched runner silently falling back to clone-per-case — turns the
//! build red instead of only showing up in the next full bench run.
//! The floor is set well under the rates a dev machine reaches
//! (`results/BENCH_campaign.json`) to leave headroom for noisy CI
//! runners; it is a tripwire, not a benchmark.
//!
//! Usage: `perf_smoke [path/to/perf_floor.txt]`

use ballista::campaign::{run_campaign, CampaignConfig};
use sim_kernel::variant::OsVariant;

fn read_floor(path: &str) -> f64 {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perf floor {path} must be readable: {e}"));
    text.lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .and_then(|l| l.parse().ok())
        .unwrap_or_else(|| panic!("perf floor {path} must contain one cases/sec number"))
}

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| "ci/perf_floor.txt".into());
    let floor = read_floor(&path);
    let cap = experiments::cap_from_env().min(2000);
    let cfg = CampaignConfig {
        cap,
        record_raw: false,
        isolation_probe: true,
        perfect_cleanup: false,
        parallelism: 1,
        fuel_budget: 0,
    };
    // One throwaway warm-up MuT set would complicate accounting; instead
    // run the whole campaign twice and score the warm pass only.
    let _ = run_campaign(OsVariant::Win95, &cfg);
    let report = run_campaign(OsVariant::Win95, &cfg);
    let stats = report.stats.expect("serial campaign reports stats");
    eprintln!(
        "perf smoke: win95 cap {cap}, {} cases in {:.1}ms — {:.0} cases/s (floor {:.0}), {} fast / {} full restores",
        report.total_cases,
        stats.wall_ms,
        stats.cases_per_sec,
        floor,
        stats.restores_fast,
        stats.restores_full,
    );
    assert!(
        stats.restores_fast > stats.restores_full,
        "batched execution regressed: most cases must be served by in-place reset"
    );
    if stats.cases_per_sec < floor {
        eprintln!(
            "perf smoke FAILED: {:.0} cases/s is below the checked-in floor of {:.0}",
            stats.cases_per_sec, floor
        );
        std::process::exit(1);
    }
    eprintln!("perf smoke passed");
}
