//! Regenerates **Figure 2**: Abort+Restart plus *estimated* Silent failure
//! rates for the desktop Windows variants, via the paper's cross-version
//! voting — with the reproduction's bonus column comparing the estimate
//! against the simulator's ground truth.

fn main() {
    let cap = experiments::cap_from_env();
    let results = experiments::load_or_run(cap);
    let figure = report::figures::figure2(&results);
    println!("{figure}");
    experiments::write_artifact("figure2.txt", &figure);
    experiments::write_artifact("figure2.csv", &report::figures::figure2_csv(&results));
}
