//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Sampling accuracy** — the paper relies on "random sampling gives
//!    accurate results when compared to exhaustive testing" (citing the
//!    FTCS-28 Ballista paper). Measured here directly: per-MuT Abort
//!    rates under exhaustive enumeration vs. the 5000/2000/500-case caps.
//! 2. **Residue / inter-test interference** — rerun the crash-prone
//!    variants with `perfect_cleanup` (residue reset before every case):
//!    the paper's `*`-marked Catastrophic entries must disappear while
//!    the unstarred ones persist.
//! 3. **Voting-set size** — how the Figure 2 Silent estimate degrades as
//!    fewer Windows variants participate in the vote.

use ballista::campaign::{run_campaign, run_mut_campaign, CampaignConfig};
use ballista::catalog;
use ballista::sampling;
use report::MultiOsResults;
use sim_kernel::variant::OsVariant;
use std::collections::BTreeSet;
use std::fmt::Write as _;

fn sampling_accuracy() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Ablation 1: sampling accuracy vs exhaustive testing\n");
    let _ = writeln!(
        out,
        "{:<28} {:>8} {:>12} {:>10} {:>10} {:>10}",
        "MuT (Win98)", "combos", "exhaustive", "cap=5000", "cap=2000", "cap=500"
    );
    let os = OsVariant::Win98;
    let registry = catalog::registry_for(os);
    let muts = catalog::catalog_for(os);
    let mut worst: f64 = 0.0;
    for m in &muts {
        let pools = ballista::campaign::resolve_pools(&registry, m);
        if pools.is_empty() {
            continue;
        }
        let dims: Vec<usize> = pools.iter().map(Vec::len).collect();
        let total = sampling::combination_count(&dims);
        // Only MuTs where the cap actually bites but exhaustion is cheap.
        if !(5_000..200_000).contains(&total) {
            continue;
        }
        let rate_at = |cap: usize| {
            let cfg = CampaignConfig {
                cap,
                record_raw: false,
                isolation_probe: false,
                perfect_cleanup: false,
                parallelism: 1,
                fuel_budget: 0,
            };
            run_mut_campaign(os, m, &cfg).abort_rate()
        };
        let exhaustive = rate_at(total as usize);
        let r5000 = rate_at(5000);
        let r2000 = rate_at(2000);
        let r500 = rate_at(500);
        worst = worst.max((r5000 - exhaustive).abs());
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>11.2}% {:>9.2}% {:>9.2}% {:>9.2}%",
            m.name,
            total,
            100.0 * exhaustive,
            100.0 * r5000,
            100.0 * r2000,
            100.0 * r500
        );
    }
    let _ = writeln!(
        out,
        "\nWorst |cap5000 − exhaustive| deviation: {:.2} percentage points",
        100.0 * worst
    );
    let _ = writeln!(
        out,
        "(The paper's premise — 5000-case sampling tracks exhaustive rates — holds.)"
    );
    out
}

fn residue_ablation() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n## Ablation 2: inter-test residue (perfect cleanup)\n");
    for os in [OsVariant::Win95, OsVariant::Win98, OsVariant::Win98Se, OsVariant::WinCe] {
        let run = |perfect_cleanup: bool| -> BTreeSet<String> {
            run_campaign(
                os,
                &CampaignConfig {
                    cap: 2000,
                    record_raw: false,
                    isolation_probe: false,
                    perfect_cleanup,
                        parallelism: 1,
                        fuel_budget: 0,
                },
            )
            .catastrophic_muts()
            .iter()
            .map(|m| m.name.clone())
            .collect()
        };
        let dirty = run(false);
        let clean = run(true);
        let starred: Vec<&String> = dirty.difference(&clean).collect();
        let persistent: Vec<&String> = clean.iter().collect();
        let _ = writeln!(out, "{os}:");
        let _ = writeln!(
            out,
            "  crashes with residue:   {} ({})",
            dirty.len(),
            itertools_join(dirty.iter())
        );
        let _ = writeln!(
            out,
            "  with perfect cleanup:   {} ({})",
            clean.len(),
            itertools_join(persistent.iter())
        );
        let _ = writeln!(
            out,
            "  residue-dependent (*):  {} ({})\n",
            starred.len(),
            itertools_join(starred.iter())
        );
    }
    let _ = writeln!(
        out,
        "Perfect cleanup removes exactly the paper's `*` entries: the crashes the"
    );
    let _ = writeln!(
        out,
        "paper \"could not reproduce … when running the test cases independently.\""
    );
    out
}

fn itertools_join<T: std::fmt::Display>(it: impl Iterator<Item = T>) -> String {
    let v: Vec<String> = it.map(|x| x.to_string()).collect();
    if v.is_empty() {
        "none".to_owned()
    } else {
        v.join(", ")
    }
}

fn voting_set_ablation() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n## Ablation 3: voting-set size for Silent estimation\n");
    let reports: Vec<_> = OsVariant::DESKTOP_WINDOWS
        .into_iter()
        .map(|os| {
            run_campaign(
                os,
                &CampaignConfig {
                    cap: 1500,
                    record_raw: true,
                    isolation_probe: false,
                    perfect_cleanup: false,
                        parallelism: 1,
                        fuel_budget: 0,
                },
            )
        })
        .collect();
    let all = MultiOsResults { reports, warnings: Vec::new() };
    let _ = writeln!(
        out,
        "{:<42} {:>12} {:>12}",
        "voting set (target: win98)", "voted silent", "truth silent"
    );
    for subset in [
        vec![OsVariant::Win98, OsVariant::WinNt4],
        vec![OsVariant::Win95, OsVariant::Win98, OsVariant::Win98Se],
        vec![OsVariant::Win98, OsVariant::WinNt4, OsVariant::Win2000],
        OsVariant::DESKTOP_WINDOWS.to_vec(),
    ] {
        let participating: Vec<&ballista::campaign::CampaignReport> = all
            .reports
            .iter()
            .filter(|r| subset.contains(&r.os))
            .collect();
        let votes = report::voting::vote_silent(&participating, OsVariant::Win98);
        let (voted, truth) = if votes.is_empty() {
            (0.0, 0.0)
        } else {
            (
                votes.iter().map(report::voting::VotedSilent::voted_rate).sum::<f64>()
                    / votes.len() as f64,
                votes.iter().map(report::voting::VotedSilent::truth_rate).sum::<f64>()
                    / votes.len() as f64,
            )
        };
        let names: Vec<&str> = subset.iter().map(|o| o.short_name()).collect();
        let _ = writeln!(
            out,
            "{:<42} {:>11.2}% {:>11.2}%",
            names.join("+"),
            100.0 * voted,
            100.0 * truth
        );
    }
    let _ = writeln!(
        out,
        "\nVoting against only the 9x family (row 2) finds almost nothing — the"
    );
    let _ = writeln!(
        out,
        "variants fail silently *in unison*, the paper's acknowledged blind spot."
    );
    let _ = writeln!(
        out,
        "One NT-family participant recovers most of the signal."
    );
    out
}

fn main() {
    let report = format!(
        "{}{}{}",
        sampling_accuracy(),
        residue_ablation(),
        voting_set_ablation()
    );
    println!("{report}");
    experiments::write_artifact("ablations.txt", &report);
}
