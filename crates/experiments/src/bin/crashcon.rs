//! Crashcon runner: drives the bounded crash-consistency campaign
//! (`ballista::crashcon`) across OS variants, proves the four engines
//! bit-identical, diffs the serial tallies against the golden corpus
//! under `results/golden/crashcon_<os>.json`, and exits non-zero on any
//! divergence or inconsistency regression.
//!
//! ```text
//! crashcon                        # all seven variants at cap 200
//! crashcon --os win95 --os wince  # a subset (CI smoke)
//! crashcon --cap 100              # smaller stimulus (golden diff skipped
//! #                                 unless the corpus was blessed at 100)
//! crashcon --bless                # regenerate results/golden/crashcon_<os>.json
//! ```
//!
//! Per variant it runs: the serial engine (reference), the parallel
//! engine at 2 and 8 workers, a fresh journaled run, a journaled run
//! split at the mid-case boundary and resumed, and the fleet engine at
//! 8 shards × 2 workers — every rerun must produce tallies
//! **bit-identical** to the reference. The full per-variant reports are
//! written to `results/crashcon.json` for CI upload.

use ballista::campaign::CampaignConfig;
use ballista::crashcon::{run_crashcon, run_crashcon_journaled, CrashconReport};
use ballista::fleet::{run_crashcon_fleet, FleetConfig};
use ballista::journal::{HEADER_LEN, RECORD_LEN};
use ballista::persist::atomic_write;
use serde::{Deserialize, Serialize};
use sim_kernel::variant::OsVariant;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

/// The cap the checked-in golden corpus is pinned at.
const GOLDEN_CAP: usize = 200;

fn cfg(cap: usize, parallelism: usize) -> CampaignConfig {
    CampaignConfig {
        cap,
        record_raw: true,
        isolation_probe: true,
        perfect_cleanup: false,
        parallelism,
        fuel_budget: 0,
    }
}

fn golden_dir() -> PathBuf {
    experiments::results_dir().join("golden")
}

/// One variant's pinned crashcon tallies: the cap they were produced at
/// plus the serialized per-MuT tallies of the serial reference engine.
#[derive(Serialize, Deserialize)]
struct GoldenEntry {
    cap: usize,
    muts: Vec<ballista::crashcon::CrashTally>,
}

/// The `results/crashcon.json` artifact.
#[derive(Serialize)]
struct CrashconArtifact {
    cap: usize,
    variants: Vec<CrashconReport>,
}

/// Compares an engine rerun against the serial reference tally-for-tally
/// and records a failure line per diverging MuT set.
fn check_identical(
    failures: &mut Vec<String>,
    name: &str,
    engine: &str,
    reference: &CrashconReport,
    rerun: &CrashconReport,
) {
    if reference.muts == rerun.muts {
        return;
    }
    let diverged: Vec<&str> = reference
        .muts
        .iter()
        .zip(&rerun.muts)
        .filter(|(a, b)| a != b)
        .map(|(a, _)| a.name.as_str())
        .collect();
    failures.push(format!(
        "[{name}] {engine} tallies diverged from serial (MuTs: {})",
        if diverged.is_empty() {
            "catalog shape changed".to_owned()
        } else {
            diverged.join(", ")
        }
    ));
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let mut bless = false;
    let mut cap = std::env::var("BALLISTA_CAP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(GOLDEN_CAP);
    let mut selected: Vec<OsVariant> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--bless" => bless = true,
            "--cap" => {
                cap = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("usage: crashcon [--cap N] [--os NAME]... [--bless]");
                    std::process::exit(2)
                });
            }
            "--os" => {
                let name = it.next().unwrap_or_default();
                match OsVariant::from_short_name(&name) {
                    Some(os) => selected.push(os),
                    None => {
                        eprintln!("unknown OS variant {name:?}");
                        return ExitCode::from(2);
                    }
                }
            }
            _ => {
                eprintln!("usage: crashcon [--cap N] [--os NAME]... [--bless]");
                return ExitCode::from(2);
            }
        }
    }
    if selected.is_empty() {
        selected = OsVariant::ALL.to_vec();
    }
    eprintln!("=== Crashcon engine matrix (cap = {cap}) ===");
    let serial_cfg = cfg(cap, 1);
    let journal_dir = std::env::temp_dir().join("ballista-crashcon");
    fs::create_dir_all(&journal_dir).expect("journal scratch dir");
    fs::create_dir_all(golden_dir()).expect("golden dir must be creatable");

    let mut failures = Vec::new();
    let mut reports = Vec::new();
    let mut rendered = String::new();

    for os in selected {
        let name = os.short_name();
        let serial = run_crashcon(os, &serial_cfg);
        eprintln!(
            "  [{name}] serial: {} cases, {} points, {} inconsistent",
            serial.total_cases, serial.total_points, serial.total_inconsistent
        );

        for workers in [2usize, 8] {
            let parallel = run_crashcon(os, &cfg(cap, workers));
            check_identical(
                &mut failures,
                name,
                &format!("parallel-{workers}"),
                &serial,
                &parallel,
            );
        }

        let journal = journal_dir.join(format!("{name}.jrn"));
        let _ = fs::remove_file(&journal);
        match run_crashcon_journaled(os, &serial_cfg, &journal, false) {
            Ok(journaled) => {
                check_identical(&mut failures, name, "journaled", &serial, &journaled);
                // Split at the mid-case boundary — the byte-exact state
                // of a run SIGKILLed between appends — and resume.
                let boundary = HEADER_LEN + (journaled.total_cases / 2) * RECORD_LEN;
                match fs::read(&journal).and_then(|bytes| {
                    fs::write(&journal, &bytes[..boundary.min(bytes.len())])?;
                    run_crashcon_journaled(os, &serial_cfg, &journal, true)
                }) {
                    Ok(resumed) => {
                        check_identical(&mut failures, name, "split-resume", &serial, &resumed);
                        if !resumed.warnings.iter().any(|w| w.contains("resumed from journal")) {
                            failures.push(format!(
                                "[{name}] split-resume did not actually replay the journal"
                            ));
                        }
                    }
                    Err(e) => failures.push(format!("[{name}] split-resume failed: {e}")),
                }
            }
            Err(e) => failures.push(format!("[{name}] journaled run failed: {e}")),
        }
        let _ = fs::remove_file(&journal);

        let fleet = run_crashcon_fleet(
            os,
            &serial_cfg,
            &FleetConfig {
                shards: 8,
                workers: 2,
                ..FleetConfig::default()
            },
        );
        check_identical(&mut failures, name, "fleet-8x2", &serial, &fleet);

        // Golden corpus: pinned serial tallies per variant.
        let path = golden_dir().join(format!("crashcon_{name}.json"));
        let entry = GoldenEntry {
            cap,
            muts: serial.muts.clone(),
        };
        if bless {
            let json = serde_json::to_string_pretty(&entry).expect("golden serializes");
            atomic_write(&path, json.as_bytes()).expect("golden must be writable");
            eprintln!("  blessed {}", path.display());
        } else {
            match fs::read(&path) {
                Ok(bytes) => match serde_json::from_slice::<GoldenEntry>(&bytes) {
                    Ok(golden) if golden.cap != cap => failures.push(format!(
                        "[{name}] golden corpus pinned at cap {}, run used cap {cap}",
                        golden.cap
                    )),
                    Ok(golden) => {
                        let got = serde_json::to_string(&entry.muts).expect("serializable");
                        let want = serde_json::to_string(&golden.muts).expect("serializable");
                        if got != want {
                            let diverged: Vec<&str> = entry
                                .muts
                                .iter()
                                .zip(&golden.muts)
                                .filter(|(a, b)| a != b)
                                .map(|(a, _)| a.name.as_str())
                                .collect();
                            failures.push(format!(
                                "[{name}] crashcon tallies drifted from the golden corpus \
                                 (MuTs: {}); rerun with --bless only if the change is intended",
                                if diverged.is_empty() {
                                    "catalog shape changed".to_owned()
                                } else {
                                    diverged.join(", ")
                                }
                            ));
                        }
                    }
                    Err(e) => failures.push(format!("[{name}] unparsable golden corpus: {e}")),
                },
                Err(_) => failures.push(format!(
                    "[{name}] no golden corpus at {}; run crashcon --bless",
                    path.display()
                )),
            }
        }

        rendered.push_str(&report::crashcon::crashcon_table(&serial));
        rendered.push('\n');
        reports.push(serial);
    }

    print!("{rendered}");
    experiments::write_artifact("crashcon.txt", &rendered);
    let artifact = CrashconArtifact {
        cap,
        variants: reports,
    };
    experiments::write_artifact(
        "crashcon.json",
        &serde_json::to_string_pretty(&artifact).expect("crashcon artifact serializes"),
    );

    if failures.is_empty() {
        eprintln!("crashcon: engine matrix bit-identical, golden corpus clean");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("crashcon: FAIL {f}");
        }
        ExitCode::FAILURE
    }
}
