//! Heavy-load robustness testing — the paper's future-work item
//! ("dependability problems caused by heavy load conditions"). Runs the
//! same sampled cases on pristine and resource-exhausted machines (a full
//! descriptor table, a busy object table, a loaded heap) and reports
//! which calls change behaviour.

use ballista::catalog;
use ballista::load::{run_load_comparison, LoadProfile};
use sim_kernel::variant::OsVariant;
use std::fmt::Write as _;

fn main() {
    let load = LoadProfile::heavy();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Heavy-load comparison (descriptor limit {:?}, {} held open, {} handles, {} heap blocks)\n",
        load.open_limit, load.open_files, load.handles, load.heap_blocks
    );
    for os in [OsVariant::Linux, OsVariant::Win98, OsVariant::WinNt4] {
        let registry = catalog::registry_for(os);
        let muts = catalog::catalog_for(os);
        let deltas = run_load_comparison(os, &muts, &registry, &load, 120);
        let worsened: usize = deltas.iter().map(|d| d.worsened).sum();
        let new_errors: usize = deltas.iter().map(|d| d.new_errors).sum();
        let degraded: usize = deltas.iter().map(|d| d.scaffold_degraded).sum();
        let _ = writeln!(
            out,
            "{os}: {} calls changed behaviour; {} worsened outcomes, {} new resource errors, {} cases excluded (scaffold degraded)",
            deltas.len(),
            worsened,
            new_errors,
            degraded
        );
        let mut shown = 0;
        for d in &deltas {
            if d.new_errors > 0 && shown < 10 {
                let _ = writeln!(
                    out,
                    "  {:<28} {:>4}/{} cases now report resource exhaustion",
                    d.name, d.new_errors, d.cases
                );
                shown += 1;
            }
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "Finding: load moves success into *graceful* resource errors (EMFILE /"
    );
    let _ = writeln!(
        out,
        "ERROR_TOO_MANY_OPEN_FILES / ENOMEM); it creates no new Aborts or crashes"
    );
    let _ = writeln!(
        out,
        "in the simulated implementations — the load-sensitivity the paper wanted"
    );
    let _ = writeln!(
        out,
        "to measure would have to come from load-dependent validation bugs, which"
    );
    let _ = writeln!(out, "Table 3's residue mechanism already captures separately.");
    println!("{out}");
    experiments::write_artifact("loadtest.txt", &out);
}
