//! Crash-survivable campaign runner: journals every executed case and
//! resumes from the journal after an interrupted (killed, crashed,
//! power-lost) run — the resumed tallies are bit-identical to an
//! uninterrupted run. CI's resume-crash-safety job SIGKILLs this binary
//! mid-campaign and diffs the resumed report against a reference.
//!
//! ```text
//! resumable --os win98 --cap 200 --journal w98.jrn --out w98.json
//! resumable --os win98 --cap 200 --journal w98.jrn --out w98.json --resume
//! resumable --os win98 --cap 200 --journal w98.jrn --kill-after 150
//! ```
//!
//! `--kill-after N` aborts the process (no unwinding, no flushing — the
//! harshest crash `std` can deliver) once the journal holds N records,
//! for deterministic mid-run-death tests without racing a timer.

use ballista::campaign::{run_campaign_journaled, CampaignConfig};
use ballista::persist::atomic_write;
use sim_kernel::variant::OsVariant;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    os: OsVariant,
    cap: usize,
    journal: PathBuf,
    out: Option<PathBuf>,
    resume: bool,
    kill_after: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: resumable --os <short_name> --journal <path> \
         [--cap N] [--out <path>] [--resume] [--kill-after N]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut os = None;
    let mut cap = 200usize;
    let mut journal = None;
    let mut out = None;
    let mut resume = false;
    let mut kill_after = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--os" => {
                let name = value();
                os = OsVariant::ALL.into_iter().find(|v| v.short_name() == name);
                if os.is_none() {
                    eprintln!("unknown --os {name}");
                    usage();
                }
            }
            "--cap" => cap = value().parse().unwrap_or_else(|_| usage()),
            "--journal" => journal = Some(PathBuf::from(value())),
            "--out" => out = Some(PathBuf::from(value())),
            "--resume" => resume = true,
            "--kill-after" => kill_after = Some(value().parse().unwrap_or_else(|_| usage())),
            _ => usage(),
        }
    }
    Args {
        os: os.unwrap_or_else(|| usage()),
        cap,
        journal: journal.unwrap_or_else(|| usage()),
        out,
        resume,
        kill_after,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let cfg = CampaignConfig {
        cap: args.cap,
        record_raw: true,
        isolation_probe: true,
        perfect_cleanup: false,
        parallelism: 1,
        fuel_budget: 0,
    };
    if let Some(n) = args.kill_after {
        ballista::journal::arm_kill_after(n);
    }
    let report = match run_campaign_journaled(args.os, &cfg, &args.journal, args.resume) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("journaled campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for w in &report.warnings {
        eprintln!("warning: {w}");
    }
    eprintln!(
        "[{}] {} MuTs, {} cases, {} catastrophic{}",
        args.os.short_name(),
        report.muts.len(),
        report.total_cases,
        report.catastrophic_muts().len(),
        if report.degraded { " [DEGRADED]" } else { "" },
    );
    if let Some(out) = args.out {
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        if let Err(e) = atomic_write(&out, json.as_bytes()) {
            eprintln!("cannot write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", out.display());
    }
    ExitCode::SUCCESS
}
