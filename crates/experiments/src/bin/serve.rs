//! Campaign-as-a-service entry point: binds the fleet HTTP server and
//! serves forever.
//!
//! ```text
//! serve [--addr 127.0.0.1:7878] [--cache-dir results/cache] [--cache-cap 64]
//! ```
//!
//! Prints one `listening on http://<addr>` line to stdout once bound
//! (with `--addr` port `0`, that line is how callers learn the real
//! port), then serves until killed. Endpoints:
//!
//! * `POST /campaign` — body `{"os": "Win95", "cap": 200, ...}`; runs
//!   (or serves from cache / coalesces onto) that campaign and returns
//!   the full report JSON.
//! * `GET /campaign/<fingerprint>` — a completed campaign by content
//!   address.
//! * `GET /metrics` — serving counters.

use ballista::server::{Server, ServerConfig};
use std::io::Write;

fn main() {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:7878".to_owned(),
        cache_dir: experiments::results_dir().join("cache"),
        cache_capacity: 64,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--cache-dir" => cfg.cache_dir = value("--cache-dir").into(),
            "--cache-cap" => {
                cfg.cache_capacity = value("--cache-cap")
                    .parse()
                    .expect("--cache-cap takes an entry count");
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("usage: serve [--addr HOST:PORT] [--cache-dir DIR] [--cache-cap N]");
                std::process::exit(2);
            }
        }
    }
    let server = Server::bind(&cfg).expect("bind campaign server");
    let addr = server.local_addr().expect("bound address");
    println!("listening on http://{addr}");
    std::io::stdout().flush().expect("stdout");
    eprintln!(
        "cache dir {}, memory front {} entries",
        cfg.cache_dir.display(),
        cfg.cache_capacity
    );
    server.run().expect("campaign server accept loop");
}
