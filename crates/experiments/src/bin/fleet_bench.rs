//! Load driver for the campaign service: measures the cache-hit path
//! against the cold path and records the result in the `serve` section
//! of `results/BENCH_campaign.json`.
//!
//! ```text
//! fleet_bench [--addr HOST:PORT] [--os win95] [--cap 200]
//!             [--identical 1000] [--distinct 3] [--clients 8]
//!             [--supervised] [--workers 4] [--dump-report PATH]
//! ```
//!
//! Without `--addr` an in-process server is spawned on a loopback port
//! (cache in a fresh temp directory), so the bench runs self-contained
//! and offline. The phases:
//!
//! 1. **Cold**: each of the `--distinct` specs (cap, cap+1, …) is
//!    POSTed once; every one must execute a real campaign.
//! 2. **Hit**: `--identical` POSTs of the first spec, spread over
//!    `--clients` persistent keep-alive connections; every one must be
//!    served from the cache. Reports served requests/second.
//!
//! With `--supervised` a third phase measures the process fleet: one
//! cache-cold campaign at a fresh cap with `process: true` and
//! `--workers` supervised worker processes (the sibling `fleet_worker`
//! binary is used unless `BALLISTA_WORKER_CMD` is already set), then the
//! identical spec re-POSTed over the persistent clients for the hit
//! rate. Recorded in the `fleet` section of the artifact.
//!
//! `--dump-report` writes the identical-spec response body to a file so
//! CI can `jq`-diff the served tallies against a direct engine run.
//! Exits non-zero if any response fails or the server executed more
//! campaigns than distinct specs (a coalescing/caching regression).

use ballista::server::{CampaignSpec, Server, ServerConfig, ServerMetrics};
use experiments::bench;
use sim_kernel::variant::OsVariant;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

struct Args {
    addr: Option<String>,
    os: OsVariant,
    cap: usize,
    identical: usize,
    distinct: usize,
    clients: usize,
    supervised: bool,
    workers: usize,
    dump_report: Option<std::path::PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        os: OsVariant::Win95,
        cap: 200,
        identical: 1000,
        distinct: 3,
        clients: 8,
        supervised: false,
        workers: 4,
        dump_report: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => args.addr = Some(value("--addr")),
            "--os" => {
                let name = value("--os");
                args.os = OsVariant::from_short_name(&name)
                    .unwrap_or_else(|| panic!("unknown variant {name}"));
            }
            "--cap" => args.cap = value("--cap").parse().expect("--cap takes a number"),
            "--identical" => {
                args.identical = value("--identical")
                    .parse()
                    .expect("--identical takes a number");
            }
            "--distinct" => {
                args.distinct = value("--distinct")
                    .parse()
                    .expect("--distinct takes a number");
            }
            "--clients" => {
                args.clients = value("--clients")
                    .parse()
                    .expect("--clients takes a number");
            }
            "--supervised" => args.supervised = true,
            "--workers" => {
                args.workers = value("--workers")
                    .parse()
                    .expect("--workers takes a number");
            }
            "--dump-report" => args.dump_report = Some(value("--dump-report").into()),
            other => {
                eprintln!("unknown argument {other}");
                eprintln!(
                    "usage: fleet_bench [--addr HOST:PORT] [--os short_name] [--cap N] \
                     [--identical N] [--distinct M] [--clients C] [--supervised] \
                     [--workers W] [--dump-report PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// A persistent keep-alive connection to the server.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to campaign server");
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            writer: stream,
            reader,
        }
    }

    /// One request/response on the persistent connection.
    fn request(&mut self, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes()).expect("send head");
        self.writer.write_all(body).expect("send body");
        let mut status = 0u16;
        let mut content_length = 0usize;
        let mut line = String::new();
        loop {
            line.clear();
            assert!(
                self.reader.read_line(&mut line).expect("read header") > 0,
                "server closed mid-response"
            );
            let trimmed = line.trim_end();
            if status == 0 {
                status = trimmed
                    .split_whitespace()
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .expect("status line");
                continue;
            }
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("content length");
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("read body");
        (status, body)
    }
}

fn spec_body(os: OsVariant, cap: usize) -> Vec<u8> {
    serde_json::to_vec(&CampaignSpec {
        cap,
        ..CampaignSpec::new(os)
    })
    .expect("spec serializes")
}

fn metrics(addr: &str) -> ServerMetrics {
    let (status, body) = Client::connect(addr).request("GET", "/metrics", b"");
    assert_eq!(status, 200, "metrics endpoint");
    serde_json::from_slice(&body).expect("metrics parse")
}

/// The supervised-fleet phase: one cache-cold campaign on process
/// workers (fresh cap → fresh fingerprint, since process/worker knobs
/// do not change the fingerprint), then the hit path for the same spec.
fn run_supervised(args: &Args, addr: &str, cold_cap: usize) -> bench::SupervisedFleetBench {
    // Point the supervisor at the sibling fleet_worker binary unless
    // the caller already routed it elsewhere.
    if std::env::var_os("BALLISTA_WORKER_CMD").is_none() {
        let worker = std::env::current_exe()
            .expect("current exe")
            .with_file_name("fleet_worker");
        assert!(
            worker.exists(),
            "{} not built — build it or set BALLISTA_WORKER_CMD",
            worker.display()
        );
        std::env::set_var("BALLISTA_WORKER_CMD", &worker);
    }

    let spec = serde_json::to_vec(&CampaignSpec {
        cap: cold_cap,
        workers: args.workers,
        process: true,
        ..CampaignSpec::new(args.os)
    })
    .expect("spec serializes");

    let mut client = Client::connect(addr);
    let t0 = Instant::now();
    let (status, body) = client.request("POST", "/campaign", &spec);
    let cold_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(status, 200, "supervised cold request");
    let report: ballista::campaign::CampaignReport =
        serde_json::from_slice(&body).expect("supervised report parses");
    let deaths = report
        .warnings
        .iter()
        .filter(|w| w.starts_with("fleet worker"))
        .count() as u64;
    eprintln!(
        "supervised cold: {} cases on {} workers in {:.0}ms{}",
        report.total_cases,
        args.workers,
        cold_wall_ms,
        if report.fleet_degraded { " (DEGRADED)" } else { "" }
    );

    let per_client = args.identical.div_ceil(args.clients.max(1));
    let fired = per_client * args.clients;
    let t1 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..args.clients {
            let spec = &spec;
            let expected = &body;
            s.spawn(move || {
                let mut client = Client::connect(addr);
                for _ in 0..per_client {
                    let (status, served) = client.request("POST", "/campaign", spec);
                    assert_eq!(status, 200, "supervised hit request");
                    assert_eq!(&served, expected, "hits must serve identical bytes");
                }
            });
        }
    });
    let hit_rps = fired as f64 / t1.elapsed().as_secs_f64().max(1e-9);
    eprintln!("supervised hit: {fired} requests — {hit_rps:.0} req/s");

    bench::SupervisedFleetBench {
        workers: args.workers,
        shards: 0,
        cap: cold_cap,
        cold_wall_ms,
        cold_cases_per_sec: report.total_cases as f64 / (cold_wall_ms / 1e3).max(1e-9),
        hit_requests_per_sec: hit_rps,
        worker_deaths: deaths,
        degraded: report.fleet_degraded,
    }
}

fn main() {
    let args = parse_args();
    let addr = args.addr.clone().unwrap_or_else(|| {
        let dir = std::env::temp_dir().join(format!("ballista-fleet-bench-{}", std::process::id()));
        let server = Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            cache_dir: dir,
            cache_capacity: 64,
        })
        .expect("bind in-process server");
        let addr = server.spawn().addr;
        eprintln!("spawned in-process server on {addr}");
        addr.to_string()
    });

    // Cold phase: every distinct spec executes one real campaign.
    let before = metrics(&addr);
    let mut cold = Client::connect(&addr);
    let t0 = Instant::now();
    let mut identical_body = Vec::new();
    for i in 0..args.distinct {
        let (status, body) = cold.request("POST", "/campaign", &spec_body(args.os, args.cap + i));
        assert_eq!(status, 200, "cold request {i}");
        if i == 0 {
            identical_body = body;
        }
    }
    let cold_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "cold: {} distinct campaigns in {:.0}ms",
        args.distinct, cold_wall_ms
    );

    // Hit phase: N identical requests over C persistent connections.
    let per_client = args.identical.div_ceil(args.clients.max(1));
    let fired = per_client * args.clients;
    let body = spec_body(args.os, args.cap);
    let t1 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..args.clients {
            let addr = &addr;
            let body = &body;
            let expected = &identical_body;
            s.spawn(move || {
                let mut client = Client::connect(addr);
                for _ in 0..per_client {
                    let (status, served) = client.request("POST", "/campaign", body);
                    assert_eq!(status, 200, "hit request");
                    assert_eq!(
                        &served, expected,
                        "every hit must serve the identical bytes"
                    );
                }
            });
        }
    });
    let hit_wall = t1.elapsed().as_secs_f64();
    let hit_rps = fired as f64 / hit_wall.max(1e-9);

    let after = metrics(&addr);
    let executed = after.campaigns_executed - before.campaigns_executed;
    let posts = after.campaign_posts - before.campaign_posts;
    let hits = after.cache_hits - before.cache_hits;
    let coalesced = after.requests_coalesced - before.requests_coalesced;
    let hit_rate = (hits + coalesced) as f64 / (posts as f64).max(1.0);
    eprintln!(
        "hit: {fired} identical requests over {} clients in {:.2}s — {:.0} req/s, hit rate {:.4}",
        args.clients, hit_wall, hit_rps, hit_rate
    );
    eprintln!(
        "server: {executed} campaigns executed, {coalesced} coalesced, {} cache hits",
        hits
    );

    if let Some(path) = &args.dump_report {
        std::fs::write(path, &identical_body).expect("dump served report");
        eprintln!("wrote served report to {}", path.display());
    }

    // Supervised-fleet phase at a cap no earlier phase has cached.
    let fleet = args
        .supervised
        .then(|| run_supervised(&args, &addr, args.cap + args.distinct));

    // Record the serving row, preserving the other artifact sections.
    let previous = bench::load();
    let serve = bench::ServeBench {
        identical_requests: fired,
        distinct_specs: args.distinct,
        clients: args.clients,
        cap: args.cap,
        hit_requests_per_sec: hit_rps,
        cold_wall_ms,
        campaigns_executed: executed,
        requests_coalesced: coalesced,
        hit_rate,
    };
    match previous {
        Some(mut artifact) => {
            artifact.serve = Some(serve);
            if let Some(fleet) = fleet.clone() {
                artifact.fleet = Some(fleet);
            }
            bench::store(&artifact);
        }
        None => bench::store(&bench::CampaignBench {
            total_wall_ms: cold_wall_ms,
            total_cases: 0,
            cases_per_sec: 0.0,
            variant_fan_out: 1,
            per_campaign_parallelism: 0,
            variants: Vec::new(),
            calibration: None,
            serve: Some(serve),
            fleet,
        }),
    }

    assert_eq!(
        executed, args.distinct as u64,
        "the server must execute exactly one campaign per distinct spec"
    );
    eprintln!("fleet bench passed");
}
