//! Regenerates **Table 3**: the exact set of functions with Catastrophic
//! failures per OS, with the `*` mark for crashes that only reproduce
//! inside the full test harness (inter-test interference).

fn main() {
    let cap = experiments::cap_from_env();
    let results = experiments::load_or_run(cap);
    let table = report::tables::table3(&results);
    println!("{table}");
    experiments::write_artifact("table3.txt", &table);
}
