//! Regenerates **Table 1** of the paper: robustness failure rates by
//! Module under Test for the six Windows variants and Linux.

fn main() {
    let cap = experiments::cap_from_env();
    let results = experiments::load_or_run(cap);
    let table = report::tables::table1(&results);
    println!("{table}");
    experiments::write_artifact("table1.txt", &table);
}
