//! Conformance runner: drives the `ballista::oracle` invariant suite and
//! `ballista::coverage` accounting across all seven OS variants, diffs
//! the per-variant tallies against the golden corpus under
//! `results/golden/`, and exits non-zero on any violation — the standing
//! gate that keeps the three execution engines and the cross-variant
//! relations trustworthy.
//!
//! ```text
//! conformance                  # full oracle suite at cap 200
//! conformance --cap 100        # smaller stimulus (golden diff skipped
//! #                              unless the corpus was blessed at 100)
//! conformance --bless          # regenerate results/golden/<os>.json
//! ```
//!
//! Per variant it runs: the serial engine (reference), the parallel
//! engine at 2 and 8 workers (metamorphic worker permutation), a fresh
//! journaled run, a journaled run split at the mid-case boundary and
//! resumed (metamorphic journal split), and a serial rerun on a
//! re-seeded template cache. Every rerun must be bit-identical to the
//! reference; every tally must be internally consistent (checked live
//! through the engines' oracle hooks); the cross-variant relations and
//! the pinned `GetThreadContext(GetCurrentThread(), NULL)` family split
//! must hold; and coverage must not regress below the checked-in floor
//! (`results/golden/coverage_floor.json` — hand-set, never blessed).

use ballista::campaign::{run_campaign, run_campaign_journaled, CampaignConfig, CampaignReport};
use ballista::coverage::{Coverage, CoverageFloor};
use ballista::journal::{HEADER_LEN, RECORD_LEN};
use ballista::oracle::{self, Check, Conformance};
use ballista::persist::atomic_write;
use ballista::telemetry::{Hub, TelemetryConfig};
use serde::{Deserialize, Serialize};
use sim_kernel::variant::OsVariant;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

/// The cap the checked-in golden corpus is pinned at.
const GOLDEN_CAP: usize = 200;

fn cfg(cap: usize, parallelism: usize) -> CampaignConfig {
    CampaignConfig {
        cap,
        record_raw: true,
        isolation_probe: true,
        perfect_cleanup: false,
        parallelism,
        fuel_budget: 0,
    }
}

fn golden_dir() -> PathBuf {
    experiments::results_dir().join("golden")
}

/// One variant's pinned tallies: the cap they were produced at plus the
/// serialized per-MuT tallies of the serial reference engine.
#[derive(Serialize, Deserialize)]
struct GoldenEntry {
    cap: usize,
    muts: Vec<ballista::campaign::MutTally>,
}

/// Per-variant summary row in `results/coverage.json`.
#[derive(Serialize)]
struct CoverageSummary {
    os: String,
    muts_exercised: u64,
    executed_cases: u64,
    planned_cases: u64,
    pools: u64,
    values_touched: u64,
    values_total: u64,
    classes_observed: u64,
}

impl CoverageSummary {
    fn of(os: &str, cov: &Coverage) -> Self {
        CoverageSummary {
            os: os.to_owned(),
            muts_exercised: cov.muts_exercised(),
            executed_cases: cov.executed_cases,
            planned_cases: cov.planned_cases,
            pools: cov.pools.len() as u64,
            values_touched: cov.values_touched(),
            values_total: cov.values_total(),
            classes_observed: cov.classes_observed(),
        }
    }
}

/// The `results/coverage.json` artifact.
#[derive(Serialize)]
struct CoverageArtifact {
    cap: usize,
    variants: Vec<CoverageSummary>,
    merged_summary: CoverageSummary,
    merged: Coverage,
}

/// Splits a completed journal at the mid-case boundary — the byte-exact
/// state of a campaign SIGKILLed between two appends — and resumes it.
fn split_and_resume(
    os: OsVariant,
    config: &CampaignConfig,
    path: &PathBuf,
    total_cases: u64,
) -> std::io::Result<CampaignReport> {
    let bytes = fs::read(path)?;
    let boundary = HEADER_LEN + (total_cases as usize / 2) * RECORD_LEN;
    fs::write(path, &bytes[..boundary.min(bytes.len())])?;
    run_campaign_journaled(os, config, path, true)
}

fn relabel(mut check: Check, invariant: &str) -> Check {
    check.invariant = invariant.to_owned();
    check
}

fn main() -> ExitCode {
    let mut bless = false;
    // Default to the golden cap (BALLISTA_CAP or --cap override it; the
    // golden diff then only applies if the corpus was blessed there).
    let mut cap = std::env::var("BALLISTA_CAP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(GOLDEN_CAP);
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--bless" => bless = true,
            "--cap" => {
                cap = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("usage: conformance [--cap N] [--bless]");
                        std::process::exit(2)
                    });
            }
            _ => {
                eprintln!("usage: conformance [--cap N] [--bless]");
                return ExitCode::from(2);
            }
        }
    }
    eprintln!("=== Conformance oracle suite (cap = {cap}) ===");
    let serial_cfg = cfg(cap, 1);
    let journal_dir = std::env::temp_dir().join("ballista-conformance");
    fs::create_dir_all(&journal_dir).expect("journal scratch dir");

    oracle::selfcheck::set_enabled(true);
    let _ = oracle::selfcheck::take_violations();

    let mut conf = Conformance::default();
    let mut serial_reports: Vec<CampaignReport> = Vec::new();

    for os in OsVariant::ALL {
        let name = os.short_name();
        let serial = run_campaign(os, &serial_cfg);
        eprintln!(
            "  [{name}] serial: {} MuTs, {} cases, {} catastrophic",
            serial.muts.len(),
            serial.total_cases,
            serial.catastrophic_muts().len()
        );

        conf.push(oracle::check_report(&serial));

        // Metamorphic worker permutation: 2 and 8 workers vs the serial
        // reference (serial *is* the 1-worker point of the permutation).
        for workers in [2usize, 8] {
            let parallel = run_campaign(os, &cfg(cap, workers));
            conf.push(relabel(
                oracle::check_cross_engine(
                    "serial",
                    &serial,
                    &format!("parallel-{workers}"),
                    &parallel,
                ),
                "metamorphic-parallelism",
            ));
        }

        // Journaled engine: fresh run, then split at the mid-case
        // boundary and resumed — both bit-identical to serial.
        let journal = journal_dir.join(format!("{name}.jrn"));
        let _ = fs::remove_file(&journal);
        match run_campaign_journaled(os, &serial_cfg, &journal, false) {
            Ok(journaled) => {
                conf.push(oracle::check_cross_engine(
                    "serial",
                    &serial,
                    "journaled",
                    &journaled,
                ));
                match split_and_resume(os, &serial_cfg, &journal, journaled.total_cases as u64) {
                    Ok(resumed) => conf.push(relabel(
                        oracle::check_cross_engine("serial", &serial, "split-resume", &resumed),
                        "metamorphic-journal-split",
                    )),
                    Err(e) => conf.push(Check {
                        invariant: "metamorphic-journal-split".to_owned(),
                        checked: 0,
                        violations: vec![format!("[{name}] split-resume failed: {e}")],
                    }),
                }
            }
            Err(e) => conf.push(Check {
                invariant: "cross-engine-bit-identity".to_owned(),
                checked: 0,
                violations: vec![format!("[{name}] journaled run failed: {e}")],
            }),
        }
        let _ = fs::remove_file(&journal);

        // Metamorphic template re-seed: rebuilt boot templates must not
        // change a single tally.
        ballista::exec::invalidate_templates();
        let reseeded = run_campaign(os, &serial_cfg);
        conf.push(relabel(
            oracle::check_cross_engine("serial", &serial, "reseeded-templates", &reseeded),
            "metamorphic-template-reseed",
        ));

        serial_reports.push(serial);
    }

    // Violations observed live by the engines' oracle hooks.
    let live = oracle::selfcheck::take_violations();
    oracle::selfcheck::set_enabled(false);
    conf.push(Check {
        invariant: "live-tally-selfcheck".to_owned(),
        checked: serial_reports.iter().map(|r| r.muts.len() as u64).sum(),
        violations: live,
    });

    // Cross-variant relations, plan identity, and the pinned one-liner.
    conf.extend(oracle::check_cross_variant(&serial_reports));
    conf.push(oracle::check_sampling_identity(cap));
    conf.push(oracle::check_gtc_null_context());

    // Coverage accounting + floor.
    let per_variant: Vec<(String, Coverage)> = serial_reports
        .iter()
        .map(|r| {
            (
                r.os.short_name().to_owned(),
                Coverage::from_report(r, &serial_cfg),
            )
        })
        .collect();
    let mut merged = Coverage::default();
    for (_, cov) in &per_variant {
        merged.merge(cov);
    }
    let floor_path = golden_dir().join("coverage_floor.json");
    let (floor, floor_note) = match fs::read(&floor_path) {
        Ok(bytes) => match serde_json::from_slice::<CoverageFloor>(&bytes) {
            Ok(f) => (f, None),
            Err(e) => (
                CoverageFloor::default(),
                Some(format!("unparsable floor {}: {e}", floor_path.display())),
            ),
        },
        Err(_) => (
            CoverageFloor::default(),
            Some(format!(
                "missing floor {} (using the permissive default)",
                floor_path.display()
            )),
        ),
    };
    let shortfalls = merged.check_floor(&floor);
    let mut floor_check = Check {
        invariant: "coverage-floor".to_owned(),
        checked: 5,
        violations: shortfalls.clone(),
    };
    if let Some(note) = floor_note {
        floor_check.violations.push(note);
    }
    conf.push(floor_check);

    // Golden corpus: pinned serial tallies per variant.
    let mut golden_check = Check {
        invariant: "golden-corpus".to_owned(),
        checked: 0,
        violations: Vec::new(),
    };
    fs::create_dir_all(golden_dir()).expect("golden dir must be creatable");
    for report in &serial_reports {
        let name = report.os.short_name();
        let path = golden_dir().join(format!("{name}.json"));
        let entry = GoldenEntry {
            cap,
            muts: report.muts.clone(),
        };
        if bless {
            let json = serde_json::to_string_pretty(&entry).expect("golden serializes");
            atomic_write(&path, json.as_bytes()).expect("golden must be writable");
            eprintln!("  blessed {}", path.display());
            continue;
        }
        golden_check.checked += 1;
        match fs::read(&path) {
            Ok(bytes) => match serde_json::from_slice::<GoldenEntry>(&bytes) {
                Ok(golden) if golden.cap != cap => golden_check.violations.push(format!(
                    "[{name}] golden corpus pinned at cap {}, run used cap {cap}",
                    golden.cap
                )),
                Ok(golden) => {
                    let got = serde_json::to_string(&entry.muts).expect("serializable");
                    let want = serde_json::to_string(&golden.muts).expect("serializable");
                    if got != want {
                        let diverged: Vec<&str> = entry
                            .muts
                            .iter()
                            .zip(&golden.muts)
                            .filter(|(a, b)| a != b)
                            .map(|(a, _)| a.name.as_str())
                            .collect();
                        golden_check.violations.push(format!(
                            "[{name}] tallies drifted from the golden corpus (MuTs: {}); \
                             rerun with --bless only if the change is intended",
                            if diverged.is_empty() {
                                "catalog shape changed".to_owned()
                            } else {
                                diverged.join(", ")
                            }
                        ));
                    }
                }
                Err(e) => golden_check
                    .violations
                    .push(format!("[{name}] unparsable golden corpus: {e}")),
            },
            Err(_) => golden_check.violations.push(format!(
                "[{name}] no golden corpus at {}; run conformance --bless",
                path.display()
            )),
        }
    }
    if !bless {
        conf.push(golden_check);
    }

    // Observability artifacts for CI upload: one telemetry-enabled
    // reference rerun writes results/metrics.json and a sample Perfetto
    // trace (see OBSERVABILITY.md). Kept outside the oracle matrix above
    // so its metrics describe exactly one campaign.
    {
        let hub = Hub::install(TelemetryConfig::all());
        let _ = run_campaign(OsVariant::Win95, &serial_cfg);
        for trace in hub.take_traces() {
            let bytes = ballista::telemetry::chrome_trace_bytes(&trace);
            experiments::write_artifact(
                &format!("trace_{}.json", trace.os),
                &String::from_utf8(bytes).expect("UTF-8 trace"),
            );
        }
        experiments::write_artifact("profile.folded", &hub.collapsed_stacks());
        experiments::write_artifact(
            "metrics.json",
            &serde_json::to_string_pretty(&hub.metrics_snapshot()).expect("serializable"),
        );
        Hub::uninstall();
    }

    // Artifacts + rendered tables.
    let mut entries: Vec<(String, &Coverage)> = per_variant
        .iter()
        .map(|(name, cov)| (name.clone(), cov))
        .collect();
    entries.push(("merged".to_owned(), &merged));
    let conformance_txt = report::conformance::conformance_table(&conf);
    let coverage_txt = report::conformance::coverage_table(&entries, &shortfalls);
    print!("{conformance_txt}");
    print!("{coverage_txt}");
    experiments::write_artifact("conformance.txt", &format!("{conformance_txt}\n{coverage_txt}"));
    let artifact = CoverageArtifact {
        cap,
        variants: per_variant
            .iter()
            .map(|(name, cov)| CoverageSummary::of(name, cov))
            .collect(),
        merged_summary: CoverageSummary::of("merged", &merged),
        merged,
    };
    experiments::write_artifact(
        "coverage.json",
        &serde_json::to_string_pretty(&artifact).expect("coverage serializes"),
    );

    if conf.is_clean() {
        eprintln!("conformance: all invariants hold");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "conformance: {} violation(s) — see results/conformance.txt",
            conf.violation_count()
        );
        ExitCode::FAILURE
    }
}
