//! Adaptive runner: compares the coverage-guided adaptive campaign
//! (`ballista::adaptive`) against the fixed blind-sample plan at the
//! **same per-MuT case budget**, writes the per-variant golden
//! `results/adaptive_<os>.json` (coverage-gain curve, fixed-vs-adaptive
//! coverage, rare-class yield), and exits non-zero if adaptive ever
//! covers less than fixed or the goldens drift.
//!
//! ```text
//! adaptive                        # all seven variants at cap 200
//! adaptive --os win95 --os wince  # a subset (CI smoke)
//! adaptive --cap 100              # smaller stimulus (golden diff skipped
//! #                                 unless the goldens were blessed at 100)
//! adaptive --bless                # regenerate results/adaptive_<os>.json
//! ```
//!
//! Per variant it runs the fixed campaign and the adaptive campaign
//! (explore → pin → replay) at the same cap, reconstructs both
//! coverages — the adaptive one against the **pinned** plans — and
//! asserts the ISSUE's acceptance bar: adaptive pool-value coverage
//! ≥ fixed, and adaptive distinct-CRASH-class count ≥ fixed. The
//! per-MuT rare classes (Silent / Restart / Catastrophic) the fixed
//! plan missed but adaptive hit are listed in the golden so the
//! EXPERIMENTS.md walkthrough can point at a concrete case.

use ballista::adaptive::{pinned_plan_shared, run_adaptive, AdaptiveConfig, RoundStats};
use ballista::campaign::{run_campaign, CampaignConfig, CampaignReport};
use ballista::coverage::Coverage;
use ballista::persist::atomic_write;
use serde::{Deserialize, Serialize};
use sim_kernel::variant::OsVariant;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::process::ExitCode;

/// The cap the checked-in goldens are pinned at.
const GOLDEN_CAP: usize = 200;

fn cfg(cap: usize) -> CampaignConfig {
    CampaignConfig {
        cap,
        record_raw: false,
        isolation_probe: true,
        perfect_cleanup: false,
        parallelism: 1,
        fuel_budget: 0,
    }
}

/// One campaign mode's coverage summary (fields chosen to be fully
/// deterministic: no wall-clock, no throughput).
#[derive(Serialize, Deserialize)]
struct ModeSummary {
    /// Cases actually executed (crashes truncate MuT plans).
    cases: u64,
    /// Distinct pool values drawn at least once.
    values_touched: u64,
    /// Registered pool values (the denominator).
    values_total: u64,
    /// Distinct primary CRASH classes observed (max 6).
    classes_observed: u64,
    /// Per-class case counts.
    classes: BTreeMap<String, u64>,
}

impl ModeSummary {
    fn from_coverage(cov: &Coverage) -> ModeSummary {
        ModeSummary {
            cases: cov.executed_cases,
            values_touched: cov.values_touched(),
            values_total: cov.values_total(),
            classes_observed: cov.classes_observed(),
            classes: cov.classes.clone(),
        }
    }
}

/// A rare outcome class the adaptive plan surfaced on a MuT where the
/// fixed plan saw none at the same budget.
#[derive(Serialize, Deserialize)]
struct RareGain {
    mut_name: String,
    class: String,
    adaptive_count: u64,
}

/// The `results/adaptive_<os>.json` golden: everything in here is a pure
/// function of (variant, cap, adaptive knobs), so the file is
/// bit-reproducible on every host.
#[derive(Serialize, Deserialize)]
struct AdaptiveGolden {
    cap: usize,
    rounds: Vec<RoundStats>,
    explore_cases: u64,
    pinned_cases: u64,
    fixed: ModeSummary,
    adaptive: ModeSummary,
    rare_gains: Vec<RareGain>,
}

/// Per-MuT rare classes adaptive hit that fixed missed entirely.
fn rare_gains(fixed: &CampaignReport, adaptive: &CampaignReport) -> Vec<RareGain> {
    let mut gains = Vec::new();
    for (f, a) in fixed.muts.iter().zip(&adaptive.muts) {
        debug_assert_eq!(f.name, a.name);
        let pairs = [
            ("Silent", f.silents as u64, a.silents as u64),
            ("Restart", f.restarts as u64, a.restarts as u64),
            (
                "Catastrophic",
                u64::from(f.catastrophic),
                u64::from(a.catastrophic),
            ),
        ];
        for (class, fixed_n, adaptive_n) in pairs {
            if fixed_n == 0 && adaptive_n > 0 {
                gains.push(RareGain {
                    mut_name: a.name.clone(),
                    class: class.to_owned(),
                    adaptive_count: adaptive_n,
                });
            }
        }
    }
    gains
}

fn render(name: &str, golden: &AdaptiveGolden) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "[{name}] coverage curve (cap {}):", golden.cap);
    let _ = writeln!(out, "  round  cases  new-values  new-classes");
    for r in &golden.rounds {
        let _ = writeln!(
            out,
            "  {:>5}  {:>5}  {:>10}  {:>11}",
            r.round, r.explored_cases, r.new_values, r.new_classes
        );
    }
    let _ = writeln!(
        out,
        "  fixed:    {:>4}/{} values, {} classes, {} cases",
        golden.fixed.values_touched,
        golden.fixed.values_total,
        golden.fixed.classes_observed,
        golden.fixed.cases
    );
    let _ = writeln!(
        out,
        "  adaptive: {:>4}/{} values, {} classes, {} cases",
        golden.adaptive.values_touched,
        golden.adaptive.values_total,
        golden.adaptive.classes_observed,
        golden.adaptive.cases
    );
    for g in &golden.rare_gains {
        let _ = writeln!(
            out,
            "  rare gain: {} {} x{} (fixed plan: none)",
            g.mut_name, g.class, g.adaptive_count
        );
    }
    out
}

fn main() -> ExitCode {
    let mut bless = false;
    let mut cap = std::env::var("BALLISTA_CAP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(GOLDEN_CAP);
    let mut selected: Vec<OsVariant> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--bless" => bless = true,
            "--cap" => {
                cap = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("usage: adaptive [--cap N] [--os NAME]... [--bless]");
                    std::process::exit(2)
                });
            }
            "--os" => {
                let name = it.next().unwrap_or_default();
                match OsVariant::from_short_name(&name) {
                    Some(os) => selected.push(os),
                    None => {
                        eprintln!("unknown OS variant {name:?}");
                        return ExitCode::from(2);
                    }
                }
            }
            _ => {
                eprintln!("usage: adaptive [--cap N] [--os NAME]... [--bless]");
                return ExitCode::from(2);
            }
        }
    }
    if selected.is_empty() {
        selected = OsVariant::ALL.to_vec();
    }
    eprintln!("=== Adaptive vs fixed sampling (cap = {cap}, equal budget) ===");
    let run_cfg = cfg(cap);
    let acfg = AdaptiveConfig::default();
    let mut failures = Vec::new();
    let mut rendered = String::new();

    for os in selected {
        let name = os.short_name();
        let fixed = run_campaign(os, &run_cfg);
        let fixed_cov = Coverage::from_report(&fixed, &run_cfg);
        let pin = pinned_plan_shared(os, &run_cfg, &acfg);
        let adaptive = run_adaptive(os, &run_cfg, &acfg);
        let adaptive_cov =
            Coverage::from_report_with_plans(&adaptive, &run_cfg, &pin.plans_by_name());

        let golden = AdaptiveGolden {
            cap,
            rounds: pin.rounds.clone(),
            explore_cases: pin.explore_cases,
            pinned_cases: pin.pinned_cases(),
            fixed: ModeSummary::from_coverage(&fixed_cov),
            adaptive: ModeSummary::from_coverage(&adaptive_cov),
            rare_gains: rare_gains(&fixed, &adaptive),
        };

        // The acceptance bar: at equal budget, adaptive must cover at
        // least as many pool values and distinct CRASH classes as fixed.
        if golden.adaptive.values_touched < golden.fixed.values_touched {
            failures.push(format!(
                "[{name}] adaptive touched {} pool values < fixed's {}",
                golden.adaptive.values_touched, golden.fixed.values_touched
            ));
        }
        if golden.adaptive.classes_observed < golden.fixed.classes_observed {
            failures.push(format!(
                "[{name}] adaptive observed {} classes < fixed's {}",
                golden.adaptive.classes_observed, golden.fixed.classes_observed
            ));
        }
        if golden.pinned_cases != fixed_cov.planned_cases {
            failures.push(format!(
                "[{name}] pinned {} cases but the fixed plan budgets {}",
                golden.pinned_cases, fixed_cov.planned_cases
            ));
        }

        let path = experiments::results_dir().join(format!("adaptive_{name}.json"));
        let json = serde_json::to_string_pretty(&golden).expect("golden serializes");
        if bless {
            fs::create_dir_all(experiments::results_dir()).expect("results dir");
            atomic_write(&path, json.as_bytes()).expect("golden must be writable");
            eprintln!("  blessed {}", path.display());
        } else {
            match fs::read(&path) {
                Ok(bytes) => match serde_json::from_slice::<AdaptiveGolden>(&bytes) {
                    Ok(want) if want.cap != cap => failures.push(format!(
                        "[{name}] golden pinned at cap {}, run used cap {cap}",
                        want.cap
                    )),
                    Ok(want) => {
                        let want_json =
                            serde_json::to_string_pretty(&want).expect("golden serializes");
                        if json != want_json {
                            failures.push(format!(
                                "[{name}] adaptive results drifted from {}; rerun with \
                                 --bless only if the change is intended",
                                path.display()
                            ));
                        }
                    }
                    Err(e) => failures.push(format!("[{name}] unparsable golden: {e}")),
                },
                Err(_) => failures.push(format!(
                    "[{name}] no golden at {}; run adaptive --bless",
                    path.display()
                )),
            }
        }

        let table = render(name, &golden);
        eprint!("{table}");
        rendered.push_str(&table);
        rendered.push('\n');
    }

    experiments::write_artifact("adaptive.txt", &rendered);
    if failures.is_empty() {
        eprintln!("adaptive: coverage bar held on every variant, goldens clean");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("adaptive: FAIL {f}");
        }
        ExitCode::FAILURE
    }
}
