//! One-shot observability driver: runs a single telemetry-enabled
//! campaign and writes every observability artifact — the Chrome/Perfetto
//! trace, `metrics.json` and (with `--profile`) the flamegraph-ready
//! `profile.folded` — without touching the campaign cache.
//!
//! ```text
//! telemetry --demo                 # win95, cap 200, trace+metrics+profile
//! telemetry --os winnt4 --cap 500  # pick a variant and cap
//! telemetry --engine journaled     # serial | parallel | journaled
//! telemetry --profile              # also write profile.folded
//! ```
//!
//! The trace (`results/trace_<os>.json`) loads directly into
//! <https://ui.perfetto.dev> or `chrome://tracing`; the schema is
//! documented field-by-field in `OBSERVABILITY.md`.

use ballista::campaign::{run_campaign, run_campaign_journaled, CampaignConfig, CampaignReport};
use ballista::telemetry::{chrome_trace_bytes, Hub, TelemetryConfig};
use sim_kernel::variant::OsVariant;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: telemetry [--demo] [--os NAME] [--cap N] \
         [--engine serial|parallel|journaled] [--trace] [--metrics] [--profile]"
    );
    ExitCode::from(2)
}

fn parse_os(name: &str) -> Option<OsVariant> {
    OsVariant::ALL
        .into_iter()
        .find(|os| os.short_name().eq_ignore_ascii_case(name))
}

fn main() -> ExitCode {
    let mut os = OsVariant::Win95;
    let mut cap = 200usize;
    let mut engine = "serial".to_owned();
    let mut profile = false;
    let mut demo = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--demo" => {
                demo = true;
                profile = true;
            }
            "--os" => match it.next().as_deref().and_then(parse_os) {
                Some(v) => os = v,
                None => {
                    eprintln!(
                        "unknown --os; expected one of: {}",
                        OsVariant::ALL.map(OsVariant::short_name).join(", ")
                    );
                    return ExitCode::from(2);
                }
            },
            "--cap" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cap = v,
                None => return usage(),
            },
            "--engine" => match it.next() {
                Some(v) if ["serial", "parallel", "journaled"].contains(&v.as_str()) => engine = v,
                _ => return usage(),
            },
            // Trace and metrics are always produced by this binary; the
            // flags exist so invocations read explicitly in scripts.
            "--trace" | "--metrics" => {}
            "--profile" => profile = true,
            _ => return usage(),
        }
    }

    let cfg = CampaignConfig {
        cap,
        record_raw: true,
        isolation_probe: true,
        perfect_cleanup: false,
        parallelism: if engine == "parallel" { 0 } else { 1 },
        fuel_budget: 0,
    };
    eprintln!(
        "=== telemetry: {} campaign on {} (cap = {cap}) ===",
        engine,
        os.short_name()
    );
    let hub = Hub::install(if profile {
        TelemetryConfig::all()
    } else {
        TelemetryConfig::tracing()
    });

    let report: CampaignReport = if engine == "journaled" {
        let dir = std::env::temp_dir().join("ballista-telemetry-bin");
        std::fs::create_dir_all(&dir).expect("journal scratch dir");
        let path = dir.join(format!("{}.jrn", os.short_name()));
        let _ = std::fs::remove_file(&path);
        run_campaign_journaled(os, &cfg, &path, false).expect("journaled campaign")
    } else {
        run_campaign(os, &cfg)
    };

    let mut trace_name = String::new();
    for trace in hub.take_traces() {
        trace_name = format!("trace_{}.json", trace.os);
        let bytes = chrome_trace_bytes(&trace);
        experiments::write_artifact(&trace_name, &String::from_utf8(bytes).expect("UTF-8 trace"));
    }
    if profile {
        experiments::write_artifact("profile.folded", &hub.collapsed_stacks());
    }
    let snapshot = hub.metrics_snapshot();
    experiments::write_artifact(
        "metrics.json",
        &serde_json::to_string_pretty(&snapshot).expect("serializable"),
    );
    Hub::uninstall();

    print!("{}", report::progress::render_metrics(&snapshot));
    println!(
        "campaign: {} MuTs, {} cases, {} catastrophic",
        report.muts.len(),
        report.total_cases,
        report.catastrophic_muts().len()
    );
    let dir = experiments::results_dir();
    println!();
    println!("open the trace:");
    println!("  1. browse to https://ui.perfetto.dev (or chrome://tracing)");
    println!("  2. load {}", dir.join(&trace_name).display());
    if profile {
        println!("render the flamegraph (with inferno installed):");
        println!(
            "  inferno-flamegraph < {} > flame.svg",
            dir.join("profile.folded").display()
        );
    }
    if demo {
        println!();
        println!(
            "demo tip: zoom into the GetThreadContext span — the paper's \
             Catastrophic one-liner — and read its args (raw outcome, fuel, \
             residue). OBSERVABILITY.md walks the schema field by field."
        );
    }
    ExitCode::SUCCESS
}
