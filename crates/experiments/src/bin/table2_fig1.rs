//! Regenerates **Table 2** and **Figure 1**: robustness failure rates by
//! functional category across the seven OS targets.

fn main() {
    let cap = experiments::cap_from_env();
    let results = experiments::load_or_run(cap);
    let table = report::tables::table2(&results);
    let figure = report::figures::figure1(&results);
    println!("{table}");
    println!("{figure}");
    experiments::write_artifact("table2.txt", &table);
    experiments::write_artifact("figure1.txt", &figure);
    experiments::write_artifact("figure1.csv", &report::figures::figure1_csv(&results));
}
