//! The paper's **future work**, implemented: state- and
//! sequence-dependent failure discovery. Runs two-call sequences on a
//! shared machine and reports calls whose behaviour changes — including
//! escalations where a sequence turns an error into an abort or a crash.

use ballista::catalog;
use ballista::sequence::{run_sequence_sweep, SequenceConfig};
use sim_kernel::variant::OsVariant;
use std::fmt::Write as _;

fn main() {
    let cfg = SequenceConfig {
        cases_per_pair: 6,
        max_pairs: 600,
        warmup_calls: 4,
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Sequence-dependent failure sweep ({} pairs x {} cases per OS)\n",
        cfg.max_pairs, cfg.cases_per_pair
    );
    for os in [OsVariant::Linux, OsVariant::Win98, OsVariant::WinNt4, OsVariant::WinCe] {
        let registry = catalog::registry_for(os);
        let muts = catalog::catalog_for(os);
        let findings = run_sequence_sweep(os, &muts, &registry, &cfg);
        let escalations: Vec<_> = findings.iter().filter(|f| f.is_escalation()).collect();
        let _ = writeln!(
            out,
            "{os}: {} sequence dependences, {} escalations",
            findings.len(),
            escalations.len()
        );
        for f in escalations.iter().take(8) {
            let _ = writeln!(
                out,
                "  ESCALATION  {} ; {}({})  alone={:?} → sequenced={:?} [{}]",
                f.first,
                f.second,
                f.second_values.join(", "),
                f.alone,
                f.sequenced,
                f.sequenced_class
            );
        }
        for f in findings.iter().filter(|f| !f.is_escalation()).take(4) {
            let _ = writeln!(
                out,
                "  state-dep   {} ; {}({})  alone={:?} → sequenced={:?}",
                f.first,
                f.second,
                f.second_values.join(", "),
                f.alone,
                f.sequenced
            );
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "Escalations on the 9x family are the paper's \"elusive crashes\": residue"
    );
    let _ = writeln!(
        out,
        "from the first call pushes the second over an interference threshold."
    );
    println!("{out}");
    experiments::write_artifact("sequences.txt", &out);
}
