//! Runs the complete reproduction: the seven-OS campaign plus every table
//! and figure, writing all artifacts under `results/`.

fn main() {
    let cap = experiments::cap_from_env();
    eprintln!("=== Ballista Win32/Linux robustness reproduction (cap = {cap}) ===");
    let results = experiments::load_or_run(cap);

    let table1 = report::tables::table1(&results);
    let table2 = report::tables::table2(&results);
    let table3 = report::tables::table3(&results);
    let figure1 = report::figures::figure1(&results);
    let figure2 = report::figures::figure2(&results);

    println!("{table1}");
    println!("{table2}");
    println!("{table3}");
    println!("{figure1}");
    println!("{figure2}");

    experiments::write_artifact("table1.txt", &table1);
    experiments::write_artifact("table2.txt", &table2);
    experiments::write_artifact("table3.txt", &table3);
    experiments::write_artifact("figure1.txt", &figure1);
    experiments::write_artifact("figure2.txt", &figure2);
    experiments::write_artifact("figure1.csv", &report::figures::figure1_csv(&results));
    experiments::write_artifact("figure2.csv", &report::figures::figure2_csv(&results));
    experiments::write_artifact("muts.csv", &muts_csv(&results));
}

/// Per-MuT raw tallies for downstream analysis.
fn muts_csv(results: &report::MultiOsResults) -> String {
    let mut out = String::from(
        "os,mut,group,cases,planned,aborts,restarts,silents,error_reports,\
         passes,suspected_hindering,catastrophic,crash_reproducible_in_isolation\n",
    );
    for r in &results.reports {
        for m in &r.muts {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                r.os.short_name(),
                m.name,
                m.group.label().replace(',', ";"),
                m.cases,
                m.planned,
                m.aborts,
                m.restarts,
                m.silents,
                m.error_reports,
                m.passes,
                m.suspected_hindering,
                m.catastrophic,
                m.crash_reproducible_in_isolation
                    .map_or(String::new(), |b| b.to_string()),
            ));
        }
    }
    out
}
