//! Property-based tests: the simulated C library agrees with Rust's own
//! string/memory semantics on valid inputs, for every profile — the
//! "functional correctness on the happy path" baseline that makes the
//! robustness differences meaningful.

use proptest::prelude::*;
use sim_core::addr::PrivilegeLevel;
use sim_core::{cstr, SimPtr};
use sim_kernel::variant::OsVariant;
use sim_kernel::Kernel;
use sim_libc::profile::LibcProfile;
use sim_libc::{ctype, math, memory, string};

const U: PrivilegeLevel = PrivilegeLevel::User;

fn put(k: &mut Kernel, s: &str) -> SimPtr {
    let p = k.alloc_user(s.len() as u64 + 1, "pt");
    cstr::write_cstr(&mut k.space, p, s, U).unwrap();
    p
}

fn ascii_string() -> impl Strategy<Value = String> {
    // NUL-free printable ASCII, the domain where C and Rust semantics
    // coincide exactly.
    proptest::collection::vec(32u8..127, 0..48)
        .prop_map(|v| String::from_utf8(v).expect("printable ASCII"))
}

proptest! {
    /// strlen/strcpy/strcmp agree with Rust on valid strings, on both the
    /// glibc and MSVCRT profiles.
    #[test]
    fn string_functions_match_rust(a in ascii_string(), b in ascii_string()) {
        for os in [OsVariant::Linux, OsVariant::WinNt4] {
            let profile = LibcProfile::for_os(os);
            let mut k = Kernel::with_flavor(os.machine_flavor());
            let pa = put(&mut k, &a);
            let pb = put(&mut k, &b);
            prop_assert_eq!(
                string::strlen(&mut k, profile, pa).unwrap().value,
                a.len() as i64
            );
            let cmp = string::strcmp(&mut k, profile, pa, pb).unwrap().value;
            prop_assert_eq!(cmp.signum(), match a.as_bytes().cmp(b.as_bytes()) {
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
                std::cmp::Ordering::Greater => 1,
            });
            // strcpy into a large-enough buffer reproduces the source.
            let dst = k.alloc_user(a.len() as u64 + 1, "dst");
            string::strcpy(&mut k, profile, dst, pa).unwrap();
            prop_assert_eq!(cstr::read_cstr(&k.space, dst, U).unwrap(), a.as_bytes());
            // strstr agrees with Rust's find.
            let hit = string::strstr(&mut k, profile, pa, pb).unwrap().value as u64;
            match a.find(&b) {
                Some(off) => prop_assert_eq!(hit, pa.addr() + off as u64),
                None => prop_assert_eq!(hit, 0),
            }
        }
    }

    /// strncpy with n ≥ len+1 equals strcpy plus zero padding; the result
    /// is never unterminated when n > len.
    #[test]
    fn strncpy_pads(a in ascii_string(), extra in 1u64..16) {
        let profile = LibcProfile::for_os(OsVariant::Linux);
        let mut k = Kernel::new();
        let src = put(&mut k, &a);
        let n = a.len() as u64 + extra;
        let dst = k.alloc_user(n, "dst");
        string::strncpy(&mut k, profile, dst, src, n).unwrap();
        let bytes = k.space.read_bytes(dst, n).unwrap();
        prop_assert_eq!(&bytes[..a.len()], a.as_bytes());
        prop_assert!(bytes[a.len()..].iter().all(|&b| b == 0), "pad must be NUL");
    }

    /// ctype classification matches Rust for every in-range input on every
    /// profile, and toupper∘tolower is idempotent on ASCII.
    #[test]
    fn ctype_matches_rust(c in 0i32..=255) {
        for os in [OsVariant::Linux, OsVariant::Win98, OsVariant::WinCe] {
            let profile = LibcProfile::for_os(os);
            let mut k = Kernel::with_flavor(os.machine_flavor());
            let ch = c as u8 as char;
            prop_assert_eq!(
                ctype::isdigit(&mut k, profile, c).unwrap().value != 0,
                ch.is_ascii_digit()
            );
            prop_assert_eq!(
                ctype::isalpha(&mut k, profile, c).unwrap().value != 0,
                ch.is_ascii_alphabetic()
            );
            prop_assert_eq!(
                ctype::isspace(&mut k, profile, c).unwrap().value != 0,
                ch.is_ascii_whitespace() || c == 0x0b
            );
            let up = ctype::toupper(&mut k, profile, c).unwrap().value as u8 as char;
            prop_assert_eq!(up, ch.to_ascii_uppercase());
            let back = ctype::tolower(&mut k, profile, i64::from(up as u8) as i32)
                .unwrap()
                .value as u8 as char;
            prop_assert_eq!(back, ch.to_ascii_lowercase());
        }
    }

    /// malloc/free round-trips of arbitrary sizes keep blocks disjoint and
    /// the memory usable; mem* functions match Rust slices.
    #[test]
    fn memory_functions_match_rust(
        data in proptest::collection::vec(any::<u8>(), 1..64),
        needle in any::<u8>(),
    ) {
        let profile = LibcProfile::for_os(OsVariant::Linux);
        let mut k = Kernel::new();
        let n = data.len() as u64;
        let a = SimPtr::new(memory::malloc(&mut k, profile, n).unwrap().value as u64);
        let b = SimPtr::new(memory::malloc(&mut k, profile, n).unwrap().value as u64);
        k.space.write_bytes(a, &data).unwrap();
        memory::memcpy(&mut k, profile, b, a, n).unwrap();
        prop_assert_eq!(memory::memcmp(&mut k, profile, a, b, n).unwrap().value, 0);
        let hit = memory::memchr(&mut k, profile, a, i32::from(needle), n).unwrap().value as u64;
        match data.iter().position(|&x| x == needle) {
            Some(off) => prop_assert_eq!(hit, a.addr() + off as u64),
            None => prop_assert_eq!(hit, 0),
        }
        memory::free(&mut k, profile, a).unwrap();
        memory::free(&mut k, profile, b).unwrap();
        prop_assert!(k.space.read_u8(a).is_err(), "freed memory faults");
    }

    /// Math functions match Rust's on benign finite inputs for every
    /// profile (the domain-error split only appears off the happy path).
    #[test]
    fn math_matches_rust(x in 0.001f64..1000.0) {
        for os in [OsVariant::Linux, OsVariant::Win95] {
            let profile = LibcProfile::for_os(os);
            let mut k = Kernel::with_flavor(os.machine_flavor());
            let got = f64::from_bits(math::sqrt(&mut k, profile, x).unwrap().value as u64);
            prop_assert!((got - x.sqrt()).abs() < 1e-9);
            let got = f64::from_bits(math::log(&mut k, profile, x).unwrap().value as u64);
            prop_assert!((got - x.ln()).abs() < 1e-9);
            let got = f64::from_bits(math::floor(&mut k, profile, x).unwrap().value as u64);
            prop_assert_eq!(got, x.floor());
        }
    }

    /// The CRT never kills a *machine* on the NT/Linux profiles no matter
    /// which (possibly wild) argument word is passed to strlen — the
    /// plateau-of-robustness invariant.
    #[test]
    fn nt_and_linux_machines_survive_wild_strlen(addr in any::<u64>()) {
        for os in [OsVariant::Linux, OsVariant::WinNt4] {
            let profile = LibcProfile::for_os(os);
            let mut k = Kernel::with_flavor(os.machine_flavor());
            let _ = string::strlen(&mut k, profile, SimPtr::new(addr));
            prop_assert!(k.is_alive(), "{os} must never crash on strlen");
        }
    }
}
