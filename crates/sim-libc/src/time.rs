//! `<time.h>`.
//!
//! Another group where Windows aborts more than Linux in the paper. The
//! encoded mechanism: MSVC's `asctime` formats the caller's `struct tm`
//! into a fixed 26-byte static buffer with no field-range checks, so absurd
//! field values overrun it and fault, while glibc range-checks (returning
//! NULL) — plus the universal out-pointer hazards of `time`, `gmtime`,
//! `localtime` and `strftime`. Windows CE does not implement this group at
//! all (the paper reports no CE C-time results).

use crate::errno::EINVAL;
use crate::profile::LibcProfile;
use crate::string::abort;
use sim_core::addr::PrivilegeLevel;
use sim_core::cstr;
use sim_core::fault::{AccessKind, Fault, ViolationCause};
use sim_core::SimPtr;
use sim_kernel::clock::{civil_from_days, days_from_civil};
use sim_kernel::outcome::{ApiResult, ApiReturn};
use sim_kernel::Kernel;

const U: PrivilegeLevel = PrivilegeLevel::User;

/// Field count of the simulated `struct tm` (sec, min, hour, mday, mon,
/// year, wday, yday, isdst — all `int`).
pub const TM_FIELDS: usize = 9;

/// Byte size of the simulated `struct tm`.
pub const TM_SIZE: u64 = (TM_FIELDS as u64) * 4;

/// A decoded `struct tm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)] // mirrors the C struct 1:1
pub struct Tm {
    pub sec: i32,
    pub min: i32,
    pub hour: i32,
    pub mday: i32,
    pub mon: i32,
    pub year: i32,
    pub wday: i32,
    pub yday: i32,
    pub isdst: i32,
}

impl Tm {
    /// Whether every field is in its documented range (what glibc's
    /// formatting entry points verify).
    #[must_use]
    pub fn in_range(&self) -> bool {
        (0..=61).contains(&self.sec)
            && (0..=59).contains(&self.min)
            && (0..=23).contains(&self.hour)
            && (1..=31).contains(&self.mday)
            && (0..=11).contains(&self.mon)
            && (-1900..=8099).contains(&self.year)
            && (0..=6).contains(&self.wday)
            && (0..=365).contains(&self.yday)
    }
}

/// Reads a `struct tm` from user memory, field by field.
///
/// # Errors
///
/// The machine fault of the first inaccessible field.
pub fn read_tm(k: &Kernel, ptr: SimPtr) -> Result<Tm, Fault> {
    let mut f = [0i32; TM_FIELDS];
    // One bulk borrow when the whole struct is accessible and aligned
    // (the 4-byte check covers every field read below); the field loop
    // remains the fallback so partial structs fault on the exact field.
    if k.space
        .check_access(
            ptr,
            (TM_FIELDS * 4) as u64,
            4,
            AccessKind::Read,
            PrivilegeLevel::User,
        )
        .is_ok()
    {
        let (chunk, _) = k.space.readable_chunk(ptr, PrivilegeLevel::User)?;
        for (i, slot) in f.iter_mut().enumerate() {
            let off = i * 4;
            let mut b = [0u8; 4];
            if off < chunk.len() {
                let n = (chunk.len() - off).min(4);
                b[..n].copy_from_slice(&chunk[off..off + n]);
            }
            *slot = i32::from_le_bytes(b);
        }
        return Ok(Tm {
            sec: f[0],
            min: f[1],
            hour: f[2],
            mday: f[3],
            mon: f[4],
            year: f[5],
            wday: f[6],
            yday: f[7],
            isdst: f[8],
        });
    }
    for (i, slot) in f.iter_mut().enumerate() {
        *slot = k.space.read_i32(ptr.offset(i as u64 * 4))?;
    }
    Ok(Tm {
        sec: f[0],
        min: f[1],
        hour: f[2],
        mday: f[3],
        mon: f[4],
        year: f[5],
        wday: f[6],
        yday: f[7],
        isdst: f[8],
    })
}

/// Writes a `struct tm` into user memory.
///
/// # Errors
///
/// The machine fault of the first inaccessible field.
pub fn write_tm(k: &mut Kernel, ptr: SimPtr, tm: &Tm) -> Result<(), Fault> {
    let f = [
        tm.sec, tm.min, tm.hour, tm.mday, tm.mon, tm.year, tm.wday, tm.yday, tm.isdst,
    ];
    for (i, v) in f.into_iter().enumerate() {
        k.space.write_i32(ptr.offset(i as u64 * 4), v)?;
    }
    Ok(())
}

fn unix_to_tm(secs: i64) -> Tm {
    let days = secs.div_euclid(86_400);
    let rem = secs.rem_euclid(86_400);
    let (year, month, day) = civil_from_days(days);
    let yday = days - days_from_civil(year, 1, 1);
    // 1970-01-01 was a Thursday (wday 4).
    let wday = (days + 4).rem_euclid(7);
    Tm {
        sec: (rem % 60) as i32,
        min: (rem / 60 % 60) as i32,
        hour: (rem / 3600) as i32,
        mday: day as i32,
        mon: month as i32 - 1,
        year: (year - 1900) as i32,
        wday: wday as i32,
        yday: yday as i32,
        isdst: 0,
    }
}

/// `time(tloc)` — returns seconds since the epoch; stores through `tloc`
/// when non-NULL (NULL is legal).
///
/// # Errors
///
/// Aborts when a non-NULL `tloc` faults, on every profile.
pub fn time(k: &mut Kernel, profile: LibcProfile, tloc: SimPtr) -> ApiResult {
    k.charge_call();
    let now = k.clock.unix_secs();
    if !tloc.is_null() {
        k.space
            .write_u32(tloc, now as u32)
            .map_err(|f| abort(profile, f))?;
    }
    Ok(ApiReturn::ok(now as i64))
}

/// `clock()` — processor time used; robust by construction.
///
/// # Errors
///
/// None.
pub fn clock(k: &mut Kernel, _profile: LibcProfile) -> ApiResult {
    k.charge_call();
    Ok(ApiReturn::ok(k.clock.tick_count_ms() as i64))
}

/// `difftime(t1, t0)` — pure arithmetic, robust everywhere.
///
/// # Errors
///
/// None.
pub fn difftime(k: &mut Kernel, _profile: LibcProfile, t1: i64, t0: i64) -> ApiResult {
    k.charge_call();
    Ok(ApiReturn::ok(((t1 - t0) as f64).to_bits() as i64))
}

fn gmtime_impl(k: &mut Kernel, profile: LibcProfile, tptr: SimPtr, name: &'static str) -> ApiResult {
    k.charge_call();
    let secs = k.space.read_u32(tptr).map_err(|f| abort(profile, f))?;
    let tm = unix_to_tm(i64::from(secs));
    // Returns a pointer to the CRT's static tm.
    let stat = k.alloc_user(TM_SIZE, name);
    write_tm(k, stat, &tm).map_err(|f| abort(profile, f))?;
    Ok(ApiReturn::ok(stat.addr() as i64))
}

/// `gmtime(timep)`.
///
/// # Errors
///
/// Aborts when `timep` faults (every CRT dereferences it — including for
/// NULL, the classic crash).
pub fn gmtime(k: &mut Kernel, profile: LibcProfile, timep: SimPtr) -> ApiResult {
    gmtime_impl(k, profile, timep, "gmtime-static")
}

/// `localtime(timep)` — the simulated machine runs in UTC.
///
/// # Errors
///
/// Aborts when `timep` faults.
pub fn localtime(k: &mut Kernel, profile: LibcProfile, timep: SimPtr) -> ApiResult {
    gmtime_impl(k, profile, timep, "localtime-static")
}

/// `mktime(tm)` — normalizes the fields and returns the epoch time, or −1
/// for un-normalizable garbage.
///
/// # Errors
///
/// Aborts when `tm` faults.
pub fn mktime(k: &mut Kernel, profile: LibcProfile, tm_ptr: SimPtr) -> ApiResult {
    k.charge_call();
    let tm = read_tm(k, tm_ptr).map_err(|f| abort(profile, f))?;
    let year = i64::from(tm.year) + 1900;
    if !(1..=9999).contains(&year) || !(0..=11).contains(&tm.mon) {
        return Ok(ApiReturn::err(-1, EINVAL));
    }
    let days = days_from_civil(year, tm.mon as u32 + 1, tm.mday.clamp(1, 31) as u32);
    let secs = days * 86_400 + i64::from(tm.hour) * 3600 + i64::from(tm.min) * 60 + i64::from(tm.sec);
    if secs < 0 {
        return Ok(ApiReturn::err(-1, EINVAL));
    }
    // Normalize wday/yday back into the caller's struct, as real mktime does.
    let normalized = unix_to_tm(secs);
    write_tm(k, tm_ptr, &normalized).map_err(|f| abort(profile, f))?;
    Ok(ApiReturn::ok(secs))
}

/// The 26-byte static buffer MSVC's `asctime` formats into.
const ASCTIME_BUF: u64 = 26;

/// `asctime(tm)`.
///
/// glibc range-checks the fields and returns NULL for garbage; MSVC
/// `sprintf`s them into a fixed 26-byte static buffer, which absurd values
/// overrun — a fault (the Windows-higher C-time Abort rate of Figure 1).
///
/// # Errors
///
/// Aborts when `tm` faults, or on the MSVCRT profiles when out-of-range
/// fields overrun the static buffer.
pub fn asctime(k: &mut Kernel, profile: LibcProfile, tm_ptr: SimPtr) -> ApiResult {
    k.charge_call();
    let tm = read_tm(k, tm_ptr).map_err(|f| abort(profile, f))?;
    if !tm.in_range() {
        if profile.asctime_checks_ranges() {
            return Ok(ApiReturn::err(0, EINVAL));
        }
        // The formatted text exceeds 26 bytes and scribbles past the static
        // buffer into the page boundary.
        return Err(abort(
            profile,
            Fault::AccessViolation {
                addr: 0x0802_0000 + ASCTIME_BUF,
                access: AccessKind::Write,
                cause: ViolationCause::Unmapped,
                privilege: PrivilegeLevel::User,
            },
        ));
    }
    const WDAY: [&str; 7] = ["Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"];
    const MON: [&str; 12] = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ];
    let text = format!(
        "{} {} {:2} {:02}:{:02}:{:02} {}\n",
        WDAY[tm.wday.rem_euclid(7) as usize],
        MON[tm.mon.rem_euclid(12) as usize],
        tm.mday,
        tm.hour,
        tm.min,
        tm.sec,
        i64::from(tm.year) + 1900
    );
    let stat = k.alloc_user(ASCTIME_BUF, "asctime-static");
    cstr::write_cstr(&mut k.space, stat, &text, U).map_err(|f| abort(profile, f))?;
    Ok(ApiReturn::ok(stat.addr() as i64))
}

/// `ctime(timep)` — `asctime(localtime(timep))`.
///
/// # Errors
///
/// Aborts when `timep` faults.
pub fn ctime(k: &mut Kernel, profile: LibcProfile, timep: SimPtr) -> ApiResult {
    k.charge_call();
    let secs = k.space.read_u32(timep).map_err(|f| abort(profile, f))?;
    let tm = unix_to_tm(i64::from(secs));
    let scratch = k.alloc_user(TM_SIZE, "ctime-tm");
    write_tm(k, scratch, &tm).map_err(|f| abort(profile, f))?;
    asctime(k, profile, scratch)
}

/// `strftime(buf, maxsize, format, tm)`.
///
/// Bounded by design: too-small `maxsize` yields a robust 0 return. The
/// hazards are the three pointers.
///
/// # Errors
///
/// Aborts when `buf`, `format` or `tm` fault.
pub fn strftime(
    k: &mut Kernel,
    profile: LibcProfile,
    buf: SimPtr,
    maxsize: u64,
    format: SimPtr,
    tm_ptr: SimPtr,
) -> ApiResult {
    k.charge_call();
    let fmt = cstr::read_cstr(&k.space, format, U).map_err(|f| abort(profile, f))?;
    let tm = read_tm(k, tm_ptr).map_err(|f| abort(profile, f))?;
    // `{:02}` without the formatting machinery for the in-range fields
    // every sane `tm` carries; out-of-range values fall back to `format!`
    // so the output stays byte-identical.
    fn push2(out: &mut Vec<u8>, v: i32) {
        if (0..100).contains(&v) {
            out.push(b'0' + (v / 10) as u8);
            out.push(b'0' + (v % 10) as u8);
        } else {
            out.extend(format!("{v:02}").into_bytes());
        }
    }
    fn push_year(out: &mut Vec<u8>, y: i64) {
        if (1000..10_000).contains(&y) {
            out.extend([y / 1000, y / 100 % 10, y / 10 % 10, y % 10].map(|d| b'0' + d as u8));
        } else {
            out.extend(format!("{y}").into_bytes());
        }
    }
    let mut out: Vec<u8> = Vec::with_capacity(fmt.len() + 8);
    let mut it = fmt.iter().copied().peekable();
    while let Some(b) = it.next() {
        if b != b'%' {
            out.push(b);
            continue;
        }
        match it.next() {
            Some(b'Y') => push_year(&mut out, i64::from(tm.year) + 1900),
            Some(b'm') => push2(&mut out, tm.mon + 1),
            Some(b'd') => push2(&mut out, tm.mday),
            Some(b'H') => push2(&mut out, tm.hour),
            Some(b'M') => push2(&mut out, tm.min),
            Some(b'S') => push2(&mut out, tm.sec),
            Some(b'%') => out.push(b'%'),
            Some(other) => {
                out.push(b'%');
                out.push(other);
            }
            None => break,
        }
    }
    if out.len() as u64 + 1 > maxsize {
        return Ok(ApiReturn::ok(0)); // documented "doesn't fit" result
    }
    cstr::write_bytes_nul(&mut k.space, buf, &out, U).map_err(|f| abort(profile, f))?;
    Ok(ApiReturn::ok(out.len() as i64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_kernel::variant::OsVariant;

    fn glibc() -> LibcProfile {
        LibcProfile::for_os(OsVariant::Linux)
    }

    fn msvcrt() -> LibcProfile {
        LibcProfile::for_os(OsVariant::Win2000)
    }

    #[test]
    fn time_null_is_legal() {
        let mut k = Kernel::new();
        let r = time(&mut k, glibc(), SimPtr::NULL).unwrap();
        assert_eq!(r.value, sim_kernel::clock::Clock::BOOT_UNIX_SECS as i64);
    }

    #[test]
    fn time_stores_through_pointer() {
        let mut k = Kernel::new();
        let p = k.alloc_user(4, "time_t");
        let r = time(&mut k, glibc(), p).unwrap();
        assert_eq!(i64::from(k.space.read_u32(p).unwrap()), r.value);
        assert!(time(&mut k, glibc(), SimPtr::new(0x33)).is_err());
    }

    #[test]
    fn gmtime_decodes_epoch() {
        let mut k = Kernel::new();
        let p = k.alloc_user(4, "time_t");
        k.space.write_u32(p, 0).unwrap(); // 1970-01-01 00:00 UTC
        let r = gmtime(&mut k, glibc(), p).unwrap();
        let tm = read_tm(&k, SimPtr::new(r.value as u64)).unwrap();
        assert_eq!((tm.year, tm.mon, tm.mday), (70, 0, 1));
        assert_eq!(tm.wday, 4); // Thursday
        assert_eq!(tm.yday, 0);
    }

    #[test]
    fn gmtime_null_aborts_everywhere() {
        let mut k = Kernel::new();
        assert!(gmtime(&mut k, glibc(), SimPtr::NULL).is_err());
        assert!(gmtime(&mut k, msvcrt(), SimPtr::NULL).is_err());
        assert!(localtime(&mut k, msvcrt(), SimPtr::NULL).is_err());
        assert!(ctime(&mut k, glibc(), SimPtr::NULL).is_err());
    }

    #[test]
    fn mktime_roundtrips_gmtime() {
        let mut k = Kernel::new();
        let tm = Tm {
            sec: 15,
            min: 30,
            hour: 9,
            mday: 25,
            mon: 5,
            year: 100, // 2000
            ..Tm::default()
        };
        let p = k.alloc_user(TM_SIZE, "tm");
        write_tm(&mut k, p, &tm).unwrap();
        let secs = mktime(&mut k, glibc(), p).unwrap().value;
        let tp = k.alloc_user(4, "time_t");
        k.space.write_u32(tp, secs as u32).unwrap();
        let r = gmtime(&mut k, glibc(), tp).unwrap();
        let back = read_tm(&k, SimPtr::new(r.value as u64)).unwrap();
        assert_eq!((back.year, back.mon, back.mday), (100, 5, 25));
        assert_eq!((back.hour, back.min, back.sec), (9, 30, 15));
        assert_eq!(back.wday, 0); // 2000-06-25 was a Sunday
        // mktime normalized wday/yday in place.
        let inplace = read_tm(&k, p).unwrap();
        assert_eq!(inplace.wday, 0);
    }

    #[test]
    fn mktime_rejects_garbage() {
        let mut k = Kernel::new();
        let tm = Tm {
            year: i32::MAX,
            mon: 99,
            ..Tm::default()
        };
        let p = k.alloc_user(TM_SIZE, "tm");
        write_tm(&mut k, p, &tm).unwrap();
        let r = mktime(&mut k, glibc(), p).unwrap();
        assert_eq!(r.value, -1);
        assert!(mktime(&mut k, glibc(), SimPtr::NULL).is_err());
    }

    #[test]
    fn asctime_garbage_fields_split_by_profile() {
        let mut k = Kernel::new();
        let garbage = Tm {
            sec: i32::MAX,
            hour: -5,
            year: 999_999,
            ..Tm::default()
        };
        let p = k.alloc_user(TM_SIZE, "tm");
        write_tm(&mut k, p, &garbage).unwrap();
        // glibc: NULL return, no fault.
        let r = asctime(&mut k, glibc(), p).unwrap();
        assert_eq!(r.value, 0);
        // MSVCRT: static-buffer overrun → abort.
        assert!(asctime(&mut k, msvcrt(), p).is_err());
    }

    #[test]
    fn asctime_formats_valid_tm() {
        let mut k = Kernel::new();
        let tm = Tm {
            sec: 1,
            min: 2,
            hour: 3,
            mday: 25,
            mon: 5,
            year: 100,
            wday: 0,
            yday: 176,
            isdst: 0,
        };
        let p = k.alloc_user(TM_SIZE, "tm");
        write_tm(&mut k, p, &tm).unwrap();
        let r = asctime(&mut k, msvcrt(), p).unwrap();
        let text = cstr::read_cstr(&k.space, SimPtr::new(r.value as u64), U).unwrap();
        assert_eq!(String::from_utf8(text).unwrap(), "Sun Jun 25 03:02:01 2000\n");
    }

    #[test]
    fn strftime_bounded_and_pointer_hazards() {
        let mut k = Kernel::new();
        let tm = Tm {
            mday: 25,
            mon: 5,
            year: 100,
            ..Tm::default()
        };
        let tp = k.alloc_user(TM_SIZE, "tm");
        write_tm(&mut k, tp, &tm).unwrap();
        let fmt = k.alloc_user(16, "fmt");
        cstr::write_cstr(&mut k.space, fmt, "%Y-%m-%d", U).unwrap();
        let buf = k.alloc_user(32, "buf");
        let r = strftime(&mut k, glibc(), buf, 32, fmt, tp).unwrap();
        assert_eq!(r.value, 10);
        assert_eq!(cstr::read_cstr(&k.space, buf, U).unwrap(), b"2000-06-25");
        // Too small: robust 0.
        assert_eq!(strftime(&mut k, glibc(), buf, 4, fmt, tp).unwrap().value, 0);
        // Bad pointers: abort.
        assert!(strftime(&mut k, glibc(), SimPtr::NULL, 32, fmt, tp).is_err());
        assert!(strftime(&mut k, glibc(), buf, 32, SimPtr::NULL, tp).is_err());
        assert!(strftime(&mut k, glibc(), buf, 32, fmt, SimPtr::NULL).is_err());
    }

    #[test]
    fn difftime_and_clock_robust() {
        let mut k = Kernel::new();
        let r = difftime(&mut k, glibc(), 100, 40).unwrap();
        assert_eq!(f64::from_bits(r.value as u64), 60.0);
        assert!(clock(&mut k, glibc()).unwrap().value >= 0);
    }
}
