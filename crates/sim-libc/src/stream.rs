//! `<stdio.h>` stream I/O — `fread`/`fwrite`, character I/O and the
//! `printf`/`scanf` families.
//!
//! This group supplies two of the paper's headline Catastrophic findings:
//! `fwrite` could take down Windows 98 (Table 3 `*fwrite`, gone in 98 SE),
//! and on Windows CE ten stream functions die on the garbage-`FILE*` test
//! value. The format-string engines model the classic varargs hazard: a
//! conversion directive with no corresponding argument consumes a garbage
//! stack word, and pointer-consuming directives (`%s`, `%n`, every `scanf`
//! conversion) dereference it.

use crate::errno::EINVAL;
use crate::profile::LibcProfile;
use crate::stdio::{
    mark_eof, mark_error, push_ungetc, resolve_file, take_ungetc, FileRef, EOF,
};
use crate::string::abort;
use sim_core::addr::PrivilegeLevel;
use sim_core::cstr;
use sim_core::SimPtr;
use sim_kernel::outcome::{ApiResult, ApiReturn};
use sim_kernel::Kernel;

const U: PrivilegeLevel = PrivilegeLevel::User;

/// The garbage stack word a varargs function reads when the caller passed
/// no corresponding argument (deterministic, and — like real stack garbage
/// — not a mapped address).
const STACK_GARBAGE: u64 = 0x0BAD_F00D;

/// The fixed line the simulated console feeds `stdin` readers.
pub const CONSOLE_INPUT: &[u8] = b"ballista test input\n";

/// `fread(buf, size, nmemb, stream)`.
///
/// `size * nmemb` is computed in 32-bit arithmetic as the era's CRTs did,
/// so a huge pair wraps and quietly reads less than asked — a Silent
/// failure the pools can trigger.
///
/// # Errors
///
/// Aborts when the stream or buffer faults; on CE a garbage stream is
/// Catastrophic.
pub fn fread(
    k: &mut Kernel,
    profile: LibcProfile,
    buf: SimPtr,
    size: u64,
    nmemb: u64,
    stream: SimPtr,
) -> ApiResult {
    k.charge_call();
    match resolve_file(k, profile, stream, "fread", true)? {
        FileRef::SystemDead => Ok(ApiReturn::ok(0)),
        FileRef::Error(e) => Ok(ApiReturn::err(0, e)),
        FileRef::Live(ofd) => {
            let total = (size as u32).wrapping_mul(nmemb as u32) as usize;
            if total == 0 {
                return Ok(ApiReturn::ok(0));
            }
            // The read can't return more than the bytes left in the file,
            // so the scratch buffer needn't be the full (possibly huge)
            // wrapped total.
            let want = total.min(k.fs.available(ofd).unwrap_or(0) as usize);
            let mut data = vec![0u8; want];
            let n = match k.fs.read(ofd, &mut data) {
                Ok(n) => n,
                Err(e) => {
                    mark_error(k, stream);
                    return Ok(ApiReturn::err(0, crate::errno::from_fs(e)));
                }
            };
            if n < total {
                mark_eof(k, stream);
            }
            k.space
                .write_bytes(buf, &data[..n])
                .map_err(|f| abort(profile, f))?;
            let items = (n as u64).checked_div(size).unwrap_or(0);
            Ok(ApiReturn::ok(items as i64))
        }
    }
}

/// `fwrite(buf, size, nmemb, stream)`.
///
/// On Windows 98 with harness-accumulated state, a garbage stream sends
/// the write down a kernel path that corrupts system memory — the paper's
/// `*fwrite` Catastrophic entry, fixed in 98 SE.
///
/// # Errors
///
/// Aborts when the stream or buffer faults.
pub fn fwrite(
    k: &mut Kernel,
    profile: LibcProfile,
    buf: SimPtr,
    size: u64,
    nmemb: u64,
    stream: SimPtr,
) -> ApiResult {
    k.charge_call();
    match resolve_file(k, profile, stream, "fwrite", false)? {
        FileRef::SystemDead => Ok(ApiReturn::ok(0)),
        FileRef::Error(e) => {
            if profile.fwrite_can_crash_system_on(k) {
                k.crash.panic(
                    "fwrite",
                    "Win98 CRT passed unvalidated stream into kernel write path",
                    None,
                );
                return Ok(ApiReturn::ok(nmemb as i64));
            }
            Ok(ApiReturn::err(0, e))
        }
        FileRef::Live(ofd) => {
            let total = (size as u32).wrapping_mul(nmemb as u32) as u64;
            if total == 0 {
                return Ok(ApiReturn::ok(0));
            }
            let data = k
                .space
                .read_bytes(buf, total)
                .map_err(|f| abort(profile, f))?;
            match k.fs.write(ofd, &data) {
                Ok(_) => Ok(ApiReturn::ok(nmemb as i64)),
                Err(e) => {
                    mark_error(k, stream);
                    Ok(ApiReturn::err(0, crate::errno::from_fs(e)))
                }
            }
        }
    }
}

fn read_one_byte(k: &mut Kernel, stream: SimPtr, ofd: u64) -> Option<u8> {
    if let Some(c) = take_ungetc(k, stream) {
        return Some(c);
    }
    let mut b = [0u8; 1];
    match k.fs.read(ofd, &mut b) {
        Ok(1) => Some(b[0]),
        _ => {
            mark_eof(k, stream);
            None
        }
    }
}

/// `fgetc(stream)` (and `getc`, which the catalog registers separately).
///
/// # Errors
///
/// Aborts on faulting streams; Catastrophic on CE garbage streams.
pub fn fgetc(k: &mut Kernel, profile: LibcProfile, stream: SimPtr) -> ApiResult {
    k.charge_call();
    match resolve_file(k, profile, stream, "fgetc", true)? {
        FileRef::SystemDead => Ok(ApiReturn::ok(0)),
        FileRef::Error(e) => Ok(ApiReturn::err(EOF, e)),
        FileRef::Live(ofd) => match read_one_byte(k, stream, ofd) {
            Some(b) => Ok(ApiReturn::ok(i64::from(b))),
            None => Ok(ApiReturn::ok(EOF)),
        },
    }
}

/// `fputc(c, stream)` (and `putc`).
///
/// # Errors
///
/// Aborts on faulting streams; Catastrophic on CE garbage streams.
pub fn fputc(k: &mut Kernel, profile: LibcProfile, c: i32, stream: SimPtr) -> ApiResult {
    k.charge_call();
    match resolve_file(k, profile, stream, "fputc", true)? {
        FileRef::SystemDead => Ok(ApiReturn::ok(0)),
        FileRef::Error(e) => Ok(ApiReturn::err(EOF, e)),
        FileRef::Live(ofd) => match k.fs.write(ofd, &[(c & 0xFF) as u8]) {
            Ok(_) => Ok(ApiReturn::ok(i64::from((c & 0xFF) as u8))),
            Err(e) => {
                mark_error(k, stream);
                Ok(ApiReturn::err(EOF, crate::errno::from_fs(e)))
            }
        },
    }
}

/// `ungetc(c, stream)`.
///
/// # Errors
///
/// Aborts on faulting streams; Catastrophic on CE garbage streams.
pub fn ungetc(k: &mut Kernel, profile: LibcProfile, c: i32, stream: SimPtr) -> ApiResult {
    k.charge_call();
    match resolve_file(k, profile, stream, "ungetc", true)? {
        FileRef::SystemDead => Ok(ApiReturn::ok(0)),
        FileRef::Error(e) => Ok(ApiReturn::err(EOF, e)),
        FileRef::Live(_) => {
            if c == -1 {
                return Ok(ApiReturn::ok(EOF)); // pushing back EOF is a no-op
            }
            if push_ungetc(k, stream, (c & 0xFF) as u8) {
                Ok(ApiReturn::ok(i64::from((c & 0xFF) as u8)))
            } else {
                Ok(ApiReturn::ok(EOF))
            }
        }
    }
}

/// `fgets(buf, n, stream)`.
///
/// # Errors
///
/// Aborts when the stream or destination buffer faults; Catastrophic on CE
/// garbage streams.
pub fn fgets(
    k: &mut Kernel,
    profile: LibcProfile,
    buf: SimPtr,
    n: i32,
    stream: SimPtr,
) -> ApiResult {
    k.charge_call();
    match resolve_file(k, profile, stream, "fgets", true)? {
        FileRef::SystemDead => Ok(ApiReturn::ok(0)),
        FileRef::Error(e) => Ok(ApiReturn::err(0, e)),
        FileRef::Live(ofd) => {
            if n <= 0 {
                // glibc returns NULL; MSVCRT too — robust degenerate case.
                return Ok(ApiReturn::err(0, EINVAL));
            }
            let mut written = 0u64;
            let limit = (n - 1) as u64;
            while written < limit {
                let Some(b) = read_one_byte(k, stream, ofd) else {
                    break;
                };
                k.space
                    .write_u8(buf.offset(written), b)
                    .map_err(|f| abort(profile, f))?;
                written += 1;
                if b == b'\n' {
                    break;
                }
            }
            if written == 0 {
                return Ok(ApiReturn::ok(0)); // EOF before anything read
            }
            k.space
                .write_u8(buf.offset(written), 0)
                .map_err(|f| abort(profile, f))?;
            Ok(ApiReturn::ok(buf.addr() as i64))
        }
    }
}

/// `fputs(s, stream)`.
///
/// # Errors
///
/// Aborts when the string or stream faults; Catastrophic on CE garbage
/// streams.
pub fn fputs(k: &mut Kernel, profile: LibcProfile, s: SimPtr, stream: SimPtr) -> ApiResult {
    k.charge_call();
    let bytes = cstr::read_cstr(&k.space, s, U).map_err(|f| abort(profile, f))?;
    match resolve_file(k, profile, stream, "fputs", true)? {
        FileRef::SystemDead => Ok(ApiReturn::ok(0)),
        FileRef::Error(e) => Ok(ApiReturn::err(EOF, e)),
        FileRef::Live(ofd) => match k.fs.write(ofd, &bytes) {
            Ok(n) => Ok(ApiReturn::ok(n as i64)),
            Err(e) => Ok(ApiReturn::err(EOF, crate::errno::from_fs(e))),
        },
    }
}

/// Result of running the `printf` engine over a format string.
struct Formatted {
    out: Vec<u8>,
}

/// The shared `printf`-family engine. Conversion directives consume
/// varargs the caller did not pass, so integer conversions print the
/// garbage stack word and pointer conversions dereference it.
fn format_engine(
    k: &mut Kernel,
    profile: LibcProfile,
    fmt: SimPtr,
) -> Result<Formatted, sim_kernel::outcome::ApiAbort> {
    let fmt_bytes = cstr::read_cstr(&k.space, fmt, U).map_err(|f| abort(profile, f))?;
    let mut out = Vec::new();
    let mut it = fmt_bytes.iter().copied().peekable();
    while let Some(b) = it.next() {
        if b != b'%' {
            out.push(b);
            continue;
        }
        // Skip flags/width/precision.
        let mut conv = None;
        for c in it.by_ref() {
            if c.is_ascii_alphabetic() || c == b'%' {
                conv = Some(c);
                break;
            }
        }
        match conv {
            Some(b'%') => out.push(b'%'),
            Some(b's') | Some(b'n') => {
                // Pointer-consuming directive with a garbage stack word.
                let garbage = SimPtr::new(STACK_GARBAGE);
                if matches!(conv, Some(b'n')) {
                    k.space
                        .write_u32(garbage, out.len() as u32)
                        .map_err(|f| abort(profile, f))?;
                } else {
                    let s = cstr::read_cstr(&k.space, garbage, U).map_err(|f| abort(profile, f))?;
                    out.extend_from_slice(&s);
                }
            }
            Some(b'd') | Some(b'i') | Some(b'u') | Some(b'x') | Some(b'X') | Some(b'o')
            | Some(b'c') | Some(b'p') => {
                // Integer-consuming directive: prints stack garbage, no fault.
                out.extend_from_slice(format!("{STACK_GARBAGE}").as_bytes());
            }
            Some(b'f') | Some(b'e') | Some(b'g') | Some(b'E') | Some(b'G') => {
                out.extend_from_slice(b"0.000000");
            }
            _ => {}
        }
    }
    Ok(Formatted { out })
}

/// `fprintf(stream, fmt)` — two-argument form, as Ballista tests it; any
/// conversion directive consumes garbage varargs.
///
/// # Errors
///
/// Aborts when the stream or format faults, or when `%s`/`%n` dereference
/// the garbage stack word; Catastrophic on CE garbage streams.
pub fn fprintf(k: &mut Kernel, profile: LibcProfile, stream: SimPtr, fmt: SimPtr) -> ApiResult {
    k.charge_call();
    match resolve_file(k, profile, stream, "fprintf", true)? {
        FileRef::SystemDead => Ok(ApiReturn::ok(0)),
        FileRef::Error(e) => Ok(ApiReturn::err(EOF, e)),
        FileRef::Live(ofd) => {
            let formatted = format_engine(k, profile, fmt)?;
            match k.fs.write(ofd, &formatted.out) {
                Ok(n) => Ok(ApiReturn::ok(n as i64)),
                Err(e) => Ok(ApiReturn::err(EOF, crate::errno::from_fs(e))),
            }
        }
    }
}

/// `printf(fmt)` — formats to the console sink.
///
/// # Errors
///
/// Aborts when the format faults or `%s`/`%n` dereference garbage.
pub fn printf(k: &mut Kernel, profile: LibcProfile, fmt: SimPtr) -> ApiResult {
    k.charge_call();
    let formatted = format_engine(k, profile, fmt)?;
    Ok(ApiReturn::ok(formatted.out.len() as i64))
}

/// `sprintf(buf, fmt)`.
///
/// # Errors
///
/// Aborts when the format, varargs garbage, or destination buffer faults.
pub fn sprintf(k: &mut Kernel, profile: LibcProfile, buf: SimPtr, fmt: SimPtr) -> ApiResult {
    k.charge_call();
    let formatted = format_engine(k, profile, fmt)?;
    cstr::write_bytes_nul(&mut k.space, buf, &formatted.out, U).map_err(|f| abort(profile, f))?;
    Ok(ApiReturn::ok(formatted.out.len() as i64))
}

/// The shared `scanf`-family engine: every conversion writes through a
/// garbage varargs pointer — the reason `scanf` functions abort so heavily
/// everywhere.
fn scan_engine(
    k: &mut Kernel,
    profile: LibcProfile,
    fmt: SimPtr,
    input: &[u8],
) -> Result<i64, sim_kernel::outcome::ApiAbort> {
    let fmt_bytes = cstr::read_cstr(&k.space, fmt, U).map_err(|f| abort(profile, f))?;
    let mut converted = 0i64;
    let mut it = fmt_bytes.iter().copied().peekable();
    while let Some(b) = it.next() {
        if b != b'%' {
            continue;
        }
        let mut conv = None;
        for c in it.by_ref() {
            if c.is_ascii_alphabetic() || c == b'%' {
                conv = Some(c);
                break;
            }
        }
        match conv {
            Some(b'%') | None => {}
            Some(_) => {
                // Any conversion writes to the garbage target pointer.
                let garbage = SimPtr::new(STACK_GARBAGE);
                k.space
                    .write_u32(garbage, input.len() as u32)
                    .map_err(|f| abort(profile, f))?;
                converted += 1;
            }
        }
    }
    Ok(converted)
}

/// `fscanf(stream, fmt)`.
///
/// # Errors
///
/// Aborts when the stream or format faults, or on any conversion (garbage
/// target pointer); Catastrophic on CE garbage streams.
pub fn fscanf(k: &mut Kernel, profile: LibcProfile, stream: SimPtr, fmt: SimPtr) -> ApiResult {
    k.charge_call();
    match resolve_file(k, profile, stream, "fscanf", true)? {
        FileRef::SystemDead => Ok(ApiReturn::ok(0)),
        FileRef::Error(e) => Ok(ApiReturn::err(EOF, e)),
        FileRef::Live(ofd) => {
            let mut data = vec![0u8; 256];
            let n = k.fs.read(ofd, &mut data).unwrap_or(0);
            data.truncate(n);
            let converted = scan_engine(k, profile, fmt, &data)?;
            Ok(ApiReturn::ok(converted))
        }
    }
}

/// `scanf(fmt)` — reads the console line.
///
/// # Errors
///
/// Aborts when the format faults or on any conversion.
pub fn scanf(k: &mut Kernel, profile: LibcProfile, fmt: SimPtr) -> ApiResult {
    k.charge_call();
    let converted = scan_engine(k, profile, fmt, CONSOLE_INPUT)?;
    Ok(ApiReturn::ok(converted))
}

/// `sscanf(s, fmt)`.
///
/// # Errors
///
/// Aborts when either string faults or on any conversion.
pub fn sscanf(k: &mut Kernel, profile: LibcProfile, s: SimPtr, fmt: SimPtr) -> ApiResult {
    k.charge_call();
    let input = cstr::read_cstr(&k.space, s, U).map_err(|f| abort(profile, f))?;
    let converted = scan_engine(k, profile, fmt, &input)?;
    Ok(ApiReturn::ok(converted))
}

/// `gets(buf)` — the classic unbounded console read.
///
/// # Errors
///
/// Aborts when the destination cannot hold the console line (the API has
/// no way to know the buffer size — this is the function's famous defect).
pub fn gets(k: &mut Kernel, profile: LibcProfile, buf: SimPtr) -> ApiResult {
    k.charge_call();
    let line: Vec<u8> = CONSOLE_INPUT
        .iter()
        .copied()
        .take_while(|&b| b != b'\n')
        .collect();
    cstr::write_bytes_nul(&mut k.space, buf, &line, U).map_err(|f| abort(profile, f))?;
    Ok(ApiReturn::ok(buf.addr() as i64))
}

/// `puts(s)`.
///
/// # Errors
///
/// Aborts when the string faults.
pub fn puts(k: &mut Kernel, profile: LibcProfile, s: SimPtr) -> ApiResult {
    k.charge_call();
    let bytes = cstr::read_cstr(&k.space, s, U).map_err(|f| abort(profile, f))?;
    Ok(ApiReturn::ok(bytes.len() as i64 + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stdio::{fopen, fseek};
    use sim_kernel::kernel::MachineFlavor;
    use sim_kernel::variant::OsVariant;

    fn glibc() -> LibcProfile {
        LibcProfile::for_os(OsVariant::Linux)
    }

    fn w98() -> LibcProfile {
        LibcProfile::for_os(OsVariant::Win98)
    }

    fn ce() -> LibcProfile {
        LibcProfile::for_os(OsVariant::WinCe)
    }

    fn put(k: &mut Kernel, s: &str) -> SimPtr {
        let p = k.alloc_user(s.len() as u64 + 1, "str");
        cstr::write_cstr(&mut k.space, p, s, U).unwrap();
        p
    }

    fn open_file(k: &mut Kernel, profile: LibcProfile, path: &str) -> SimPtr {
        let p = put(k, path);
        let m = put(k, "w+");
        SimPtr::new(fopen(k, profile, p, m).unwrap().value as u64)
    }

    #[test]
    fn fwrite_fread_roundtrip() {
        let mut k = Kernel::new();
        let fp = open_file(&mut k, glibc(), "/tmp/rw.bin");
        let data = put(&mut k, "0123456789");
        assert_eq!(fwrite(&mut k, glibc(), data, 1, 10, fp).unwrap().value, 10);
        fseek(&mut k, glibc(), fp, 0, 0).unwrap();
        let buf = k.alloc_user(16, "buf");
        assert_eq!(fread(&mut k, glibc(), buf, 1, 10, fp).unwrap().value, 10);
        assert_eq!(k.space.read_bytes(buf, 10).unwrap(), b"0123456789");
        // Partial read sets EOF.
        assert_eq!(fread(&mut k, glibc(), buf, 1, 10, fp).unwrap().value, 0);
    }

    #[test]
    fn fread_into_bad_buffer_aborts() {
        let mut k = Kernel::new();
        let fp = open_file(&mut k, glibc(), "/tmp/b.bin");
        let data = put(&mut k, "payload");
        fwrite(&mut k, glibc(), data, 1, 7, fp).unwrap();
        fseek(&mut k, glibc(), fp, 0, 0).unwrap();
        assert!(fread(&mut k, glibc(), SimPtr::NULL, 1, 7, fp).is_err());
    }

    #[test]
    fn fwrite_crashes_win98_only_with_residue() {
        // Garbage stream + residue on Win98 → system crash.
        let mut k = Kernel::with_flavor(MachineFlavor::Windows);
        k.residue = 5;
        let garbage = put(&mut k, "not a FILE at all, just a string");
        let data = put(&mut k, "x");
        let _ = fwrite(&mut k, w98(), data, 1, 1, garbage).unwrap();
        assert!(!k.is_alive());
        assert_eq!(k.crash.info().unwrap().call, "fwrite");

        // Without residue: robust error.
        let mut k2 = Kernel::with_flavor(MachineFlavor::Windows);
        let garbage2 = put(&mut k2, "not a FILE at all, just a string");
        let data2 = put(&mut k2, "x");
        let r = fwrite(&mut k2, w98(), data2, 1, 1, garbage2).unwrap();
        assert!(r.reported_error());
        assert!(k2.is_alive());

        // 98 SE fixed it: residue or not, no crash.
        let mut k3 = Kernel::with_flavor(MachineFlavor::Windows);
        k3.residue = 5;
        let garbage3 = put(&mut k3, "not a FILE at all, just a string");
        let data3 = put(&mut k3, "x");
        let se = LibcProfile::for_os(OsVariant::Win98Se);
        let _ = fwrite(&mut k3, se, data3, 1, 1, garbage3).unwrap();
        assert!(k3.is_alive());
    }

    #[test]
    fn size_nmemb_overflow_wraps_silently() {
        let mut k = Kernel::new();
        let fp = open_file(&mut k, glibc(), "/tmp/of.bin");
        let buf = k.alloc_user(8, "buf");
        // 0x10000 * 0x10000 wraps to 0 in 32-bit: reads nothing, reports 0,
        // no error — silent.
        let r = fread(&mut k, glibc(), buf, 0x10000, 0x10000, fp).unwrap();
        assert_eq!(r.value, 0);
        assert!(!r.reported_error());
    }

    #[test]
    fn char_io_and_ungetc() {
        let mut k = Kernel::new();
        let fp = open_file(&mut k, glibc(), "/tmp/c.txt");
        assert_eq!(fputc(&mut k, glibc(), i32::from(b'A'), fp).unwrap().value, 65);
        fseek(&mut k, glibc(), fp, 0, 0).unwrap();
        assert_eq!(fgetc(&mut k, glibc(), fp).unwrap().value, 65);
        assert_eq!(fgetc(&mut k, glibc(), fp).unwrap().value, EOF);
        assert_eq!(ungetc(&mut k, glibc(), i32::from(b'z'), fp).unwrap().value, 122);
        assert_eq!(fgetc(&mut k, glibc(), fp).unwrap().value, 122);
        // Pushing back EOF is a no-op returning EOF.
        assert_eq!(ungetc(&mut k, glibc(), -1, fp).unwrap().value, EOF);
    }

    #[test]
    fn fgets_reads_lines() {
        let mut k = Kernel::new();
        let fp = open_file(&mut k, glibc(), "/tmp/l.txt");
        let data = put(&mut k, "line1\nline2\n");
        fwrite(&mut k, glibc(), data, 1, 12, fp).unwrap();
        fseek(&mut k, glibc(), fp, 0, 0).unwrap();
        let buf = k.alloc_user(32, "line");
        let r = fgets(&mut k, glibc(), buf, 32, fp).unwrap();
        assert_eq!(r.value as u64, buf.addr());
        assert_eq!(cstr::read_cstr(&k.space, buf, U).unwrap(), b"line1\n");
        // n <= 0 is a robust error.
        assert!(fgets(&mut k, glibc(), buf, 0, fp).unwrap().reported_error());
        // Tiny destination for a long line faults.
        let tiny = k.alloc_user(2, "tiny");
        assert!(fgets(&mut k, glibc(), tiny, 32, fp).is_err());
    }

    #[test]
    fn fputs_and_puts() {
        let mut k = Kernel::new();
        let fp = open_file(&mut k, glibc(), "/tmp/p.txt");
        let s = put(&mut k, "hello");
        assert_eq!(fputs(&mut k, glibc(), s, fp).unwrap().value, 5);
        assert_eq!(puts(&mut k, glibc(), s).unwrap().value, 6);
        assert!(puts(&mut k, glibc(), SimPtr::NULL).is_err());
    }

    #[test]
    fn printf_plain_and_integer_directives_survive() {
        let mut k = Kernel::new();
        let plain = put(&mut k, "no directives here");
        assert_eq!(printf(&mut k, glibc(), plain).unwrap().value, 18);
        let ints = put(&mut k, "x=%d y=%08x");
        assert!(printf(&mut k, glibc(), ints).is_ok());
    }

    #[test]
    fn printf_pointer_directives_abort() {
        let mut k = Kernel::new();
        let s_dir = put(&mut k, "name=%s");
        assert!(printf(&mut k, glibc(), s_dir).is_err());
        let n_dir = put(&mut k, "count%n");
        assert!(printf(&mut k, glibc(), n_dir).is_err());
        // Same through fprintf on a live stream.
        let fp = open_file(&mut k, glibc(), "/tmp/fmt.txt");
        let s_dir2 = put(&mut k, "%s");
        assert!(fprintf(&mut k, glibc(), fp, s_dir2).is_err());
    }

    #[test]
    fn sprintf_writes_destination() {
        let mut k = Kernel::new();
        let buf = k.alloc_user(64, "out");
        let fmt = put(&mut k, "ab%%cd");
        assert_eq!(sprintf(&mut k, glibc(), buf, fmt).unwrap().value, 5);
        assert_eq!(cstr::read_cstr(&k.space, buf, U).unwrap(), b"ab%cd");
        assert!(sprintf(&mut k, glibc(), SimPtr::NULL, fmt).is_err());
    }

    #[test]
    fn scanf_family_aborts_on_conversions() {
        let mut k = Kernel::new();
        let fmt = put(&mut k, "%d");
        assert!(scanf(&mut k, glibc(), fmt).is_err());
        let input = put(&mut k, "42");
        assert!(sscanf(&mut k, glibc(), input, fmt).is_err());
        // No conversions → robust.
        let plain = put(&mut k, "literal");
        assert_eq!(sscanf(&mut k, glibc(), input, plain).unwrap().value, 0);
    }

    #[test]
    fn gets_overflows_small_buffers() {
        let mut k = Kernel::new();
        let big = k.alloc_user(64, "big");
        assert!(gets(&mut k, glibc(), big).is_ok());
        assert_eq!(
            cstr::read_cstr(&k.space, big, U).unwrap(),
            b"ballista test input"
        );
        let small = k.alloc_user(4, "small");
        assert!(gets(&mut k, glibc(), small).is_err());
        assert!(gets(&mut k, glibc(), SimPtr::NULL).is_err());
    }

    #[test]
    fn ce_stream_functions_crash_on_garbage_file() {
        type TwoPtrCall = fn(&mut Kernel, LibcProfile, SimPtr, SimPtr) -> ApiResult;
        let funcs: Vec<(&str, TwoPtrCall)> = vec![
            ("fprintf", |k, p, g, aux| fprintf(k, p, g, aux)),
            ("fscanf", |k, p, g, aux| fscanf(k, p, g, aux)),
            ("fputs", |k, p, aux, g| fputs(k, p, aux, g)),
        ];
        for (name, f) in funcs {
            let mut k = Kernel::with_flavor(MachineFlavor::WindowsStrictAlign);
            let garbage = put(&mut k, "a string buffer typecast to FILE*");
            // Long enough that when it lands in the FILE*-position the
            // struct fields are readable garbage (the paper's test value).
            let aux = put(&mut k, "another plain string, comfortably long");
            let _ = f(&mut k, ce(), garbage, aux);
            assert!(!k.is_alive(), "{name} should crash CE");
        }
        for simple in ["fgetc", "ungetc", "fread"] {
            let mut k = Kernel::with_flavor(MachineFlavor::WindowsStrictAlign);
            let garbage = put(&mut k, "a string buffer typecast to FILE*");
            let buf = k.alloc_user(8, "buf");
            let _ = match simple {
                "fgetc" => fgetc(&mut k, ce(), garbage),
                "ungetc" => ungetc(&mut k, ce(), 65, garbage),
                "fread" => fread(&mut k, ce(), buf, 1, 1, garbage),
                _ => unreachable!(),
            };
            assert!(!k.is_alive(), "{simple} should crash CE");
        }
        // fwrite on CE validates (the 98-only crash is elsewhere).
        let mut k = Kernel::with_flavor(MachineFlavor::WindowsStrictAlign);
        let garbage = put(&mut k, "a string buffer typecast to FILE*");
        let buf = k.alloc_user(8, "buf");
        let _ = fwrite(&mut k, ce(), buf, 1, 1, garbage).unwrap();
        assert!(k.is_alive());
    }
}
