//! `<stdlib.h>`/`<string.h>` memory management — `malloc` family and
//! `mem*`.
//!
//! The paper's "C memory management" grouping has a *higher* Abort rate on
//! Linux than on Windows. The mechanism encoded here: glibc's `free` and
//! `realloc` read the chunk header stored just below the user pointer, so a
//! wild pointer faults immediately (Abort), while MSVCRT validates the
//! block against heap metadata and quietly ignores foreign pointers (a
//! Silent failure — no fault, no error report). Era-accurate `calloc`
//! multiplication overflow on glibc is also modelled.

use crate::errno::ENOMEM;
use crate::profile::LibcProfile;
use crate::string::abort;
use sim_core::SimPtr;
use sim_kernel::outcome::{ApiResult, ApiReturn};
use sim_kernel::Kernel;

/// `malloc(size)`. Returns the block address, or NULL with `errno ENOMEM`
/// for unsatisfiable sizes — a robust error on every profile.
///
/// # Errors
///
/// None. `malloc` is robust against hostile sizes on all profiles.
pub fn malloc(k: &mut Kernel, _profile: LibcProfile, size: u64) -> ApiResult {
    k.charge_call();
    let heap = k.default_heap;
    // Borrow split: heaps and space are independent fields.
    let Kernel { heaps, space, .. } = k;
    match heaps.alloc(heap, size, space) {
        Ok(ptr) => Ok(ApiReturn::ok(ptr.addr() as i64)),
        Err(_) => Ok(ApiReturn::err(0, ENOMEM)),
    }
}

/// `calloc(nmemb, size)` — allocate and zero `nmemb * size` bytes.
///
/// glibc 2.1-era `calloc` multiplied without an overflow check: a huge
/// `nmemb × size` pair wraps to a small allocation that is *returned as if
/// it were the requested size* (a Silent failure). MSVCRT detects the
/// overflow and returns NULL with `errno`.
///
/// # Errors
///
/// None; misbehaviour is silent by nature here.
pub fn calloc(k: &mut Kernel, profile: LibcProfile, nmemb: u64, size: u64) -> ApiResult {
    k.charge_call();
    let requested = (nmemb as u32 as u64).wrapping_mul(size as u32 as u64) as u32 as u64;
    let overflowed = nmemb
        .checked_mul(size)
        .is_none_or(|full| full > u64::from(u32::MAX));
    if overflowed && profile.os.is_windows() {
        return Ok(ApiReturn::err(0, ENOMEM));
    }
    let heap = k.default_heap;
    let Kernel { heaps, space, .. } = k;
    match heaps.alloc(heap, requested, space) {
        Ok(ptr) => {
            // Zero fill; the region is fresh so this cannot fault.
            let _ = space.fill(
                ptr,
                0,
                requested.max(1),
                sim_core::addr::PrivilegeLevel::User,
            );
            Ok(ApiReturn::ok(ptr.addr() as i64))
        }
        Err(_) => Ok(ApiReturn::err(0, ENOMEM)),
    }
}

/// Classification of a pointer handed to `free`/`realloc`.
enum BlockCheck {
    /// A live block of the default heap.
    Live,
    /// Not a block, but the memory around it is readable (interior or
    /// foreign pointer into mapped memory).
    ReadableGarbage,
    /// Unreadable (NULL page, dangling, kernel, unmapped).
    Unreadable,
}

fn check_block(k: &Kernel, ptr: SimPtr) -> BlockCheck {
    if k.heaps.size_of(k.default_heap, ptr).is_ok() {
        return BlockCheck::Live;
    }
    // glibc reads the chunk header at ptr−8.
    let header = if ptr.addr() >= 8 {
        ptr.offset(u64::MAX - 7) // wrapping −8
    } else {
        SimPtr::NULL
    };
    match k.space.read_u32(header) {
        Ok(_) => BlockCheck::ReadableGarbage,
        Err(_) => BlockCheck::Unreadable,
    }
}


/// The fault glibc's chunk-header probe raises for an unreadable block
/// header (the word just below the user pointer).
fn header_fault(k: &Kernel, ptr: SimPtr) -> sim_core::Fault {
    let header = SimPtr::new(ptr.addr().wrapping_sub(8));
    k.space
        .check_access(
            header,
            4,
            1,
            sim_core::AccessKind::Read,
            sim_core::addr::PrivilegeLevel::User,
        )
        .err()
        .unwrap_or(sim_core::Fault::AccessViolation {
            addr: header.addr(),
            access: sim_core::AccessKind::Read,
            cause: sim_core::fault::ViolationCause::Unmapped,
            privilege: sim_core::addr::PrivilegeLevel::User,
        })
}

/// `free(ptr)`.
///
/// `free(NULL)` is legal everywhere. For wild pointers, glibc's header
/// probe faults (**Abort**) on unreadable memory and silently corrupts the
/// arena on readable garbage; MSVCRT validates and ignores (**Silent**).
///
/// # Errors
///
/// Aborts on the glibc profile when the chunk-header probe faults.
pub fn free(k: &mut Kernel, profile: LibcProfile, ptr: SimPtr) -> ApiResult {
    k.charge_call();
    if ptr.is_null() {
        return Ok(ApiReturn::ok(0));
    }
    match check_block(k, ptr) {
        BlockCheck::Live => {
            let heap = k.default_heap;
            let Kernel { heaps, space, .. } = k;
            heaps.free(heap, ptr, space).expect("checked live");
            Ok(ApiReturn::ok(0))
        }
        BlockCheck::ReadableGarbage => {
            // glibc: quiet arena corruption; MSVCRT: validated no-op.
            // Either way the call *returns successfully* — Silent.
            Ok(ApiReturn::ok(0))
        }
        BlockCheck::Unreadable => {
            if profile.heap_free_validates() {
                Ok(ApiReturn::ok(0)) // MSVCRT: lookup fails, quietly ignored
            } else {
                // glibc probes the chunk header below the pointer and
                // faults there.
                Err(abort(profile, header_fault(k, ptr)))
            }
        }
    }
}

/// `realloc(ptr, size)`.
///
/// Same pointer-validation split as [`free`]; `realloc(NULL, n)` behaves as
/// `malloc(n)` everywhere.
///
/// # Errors
///
/// Aborts on the glibc profile when the chunk-header probe faults.
pub fn realloc(k: &mut Kernel, profile: LibcProfile, ptr: SimPtr, size: u64) -> ApiResult {
    k.charge_call();
    if ptr.is_null() {
        return malloc(k, profile, size);
    }
    match check_block(k, ptr) {
        BlockCheck::Live => {
            let heap = k.default_heap;
            let Kernel { heaps, space, .. } = k;
            match heaps.realloc(heap, ptr, size, space) {
                Ok(p) => Ok(ApiReturn::ok(p.addr() as i64)),
                Err(_) => Ok(ApiReturn::err(0, ENOMEM)),
            }
        }
        BlockCheck::ReadableGarbage => Ok(ApiReturn::ok(0)), // silent NULL
        BlockCheck::Unreadable => {
            if profile.heap_free_validates() {
                Ok(ApiReturn::err(0, ENOMEM))
            } else {
                Err(abort(profile, header_fault(k, ptr)))
            }
        }
    }
}

/// `memcpy(dst, src, n)` — byte copy, faulting where the hardware would.
///
/// Runs as bulk per-region copies over the accessible prefix instead of
/// a checked access per byte, while preserving the byte loop's exact
/// observable behaviour: bytes before the first inaccessible one are
/// copied, the fault is the one the failing byte access would raise
/// (source read checked before destination write), and an overlapping
/// forward copy replicates with period `dst - src` because chunks never
/// exceed that distance.
///
/// # Errors
///
/// Aborts when any byte access faults.
pub fn memcpy(k: &mut Kernel, profile: LibcProfile, dst: SimPtr, src: SimPtr, n: u64) -> ApiResult {
    use sim_core::addr::PrivilegeLevel::User;
    use sim_core::AccessKind;
    k.charge_call();
    let ls = k.space.accessible_span(src, n, AccessKind::Read, User);
    let ld = k.space.accessible_span(dst, n, AccessKind::Write, User);
    let m = ls.min(ld);
    let overlap_period = if dst.addr() > src.addr() {
        dst.addr() - src.addr()
    } else {
        u64::MAX
    };
    let mut i = 0u64;
    while i < m {
        let chunk = k
            .space
            .contiguous_span(src.offset(i), User)
            .min(k.space.contiguous_span(dst.offset(i), User))
            .min(overlap_period)
            .min(m - i);
        let bytes = k
            .space
            .read_bytes_at(src.offset(i), chunk, User)
            .expect("within accessible span");
        k.space
            .write_bytes_at(dst.offset(i), &bytes, User)
            .expect("within accessible span");
        i += chunk;
    }
    if m < n {
        let fault = if ls == m {
            k.space.read_u8(src.offset(m)).expect_err("span boundary")
        } else {
            k.space
                .write_u8(dst.offset(m), 0)
                .expect_err("span boundary")
        };
        return Err(abort(profile, fault));
    }
    Ok(ApiReturn::ok(dst.addr() as i64))
}

/// `memmove(dst, src, n)` — overlap-safe copy.
///
/// # Errors
///
/// Aborts when any byte access faults.
pub fn memmove(
    k: &mut Kernel,
    profile: LibcProfile,
    dst: SimPtr,
    src: SimPtr,
    n: u64,
) -> ApiResult {
    k.charge_call();
    let bytes = k
        .space
        .read_bytes(src, n)
        .map_err(|f| abort(profile, f))?;
    k.space
        .write_bytes(dst, &bytes)
        .map_err(|f| abort(profile, f))?;
    Ok(ApiReturn::ok(dst.addr() as i64))
}

/// `memset(s, c, n)`.
///
/// Bulk per-region fills over the accessible prefix; the prefix is
/// written (as the byte loop would have) before the fault for the first
/// inaccessible byte is raised.
///
/// # Errors
///
/// Aborts when a write faults.
pub fn memset(k: &mut Kernel, profile: LibcProfile, s: SimPtr, c: i32, n: u64) -> ApiResult {
    use sim_core::addr::PrivilegeLevel::User;
    use sim_core::AccessKind;
    k.charge_call();
    let value = (c & 0xFF) as u8;
    let l = k.space.accessible_span(s, n, AccessKind::Write, User);
    let mut i = 0u64;
    while i < l {
        let chunk = k
            .space
            .contiguous_span(s.offset(i), User)
            .min(l - i);
        k.space
            .fill(s.offset(i), value, chunk, User)
            .expect("within accessible span");
        i += chunk;
    }
    if l < n {
        let fault = k
            .space
            .write_u8(s.offset(l), value)
            .expect_err("span boundary");
        return Err(abort(profile, fault));
    }
    Ok(ApiReturn::ok(s.addr() as i64))
}

/// `memcmp(a, b, n)` — early-exit comparison.
///
/// # Errors
///
/// Aborts when a read faults before a deciding mismatch.
pub fn memcmp(k: &mut Kernel, profile: LibcProfile, a: SimPtr, b: SimPtr, n: u64) -> ApiResult {
    use sim_core::addr::PrivilegeLevel::User;
    use sim_core::AccessKind;
    k.charge_call();
    // Bulk comparison over the jointly accessible prefix; a deciding
    // mismatch there returns before any fault, exactly like the early
    // exit of the byte loop.
    let la = k.space.accessible_span(a, n, AccessKind::Read, User);
    let lb = k.space.accessible_span(b, n, AccessKind::Read, User);
    let m = la.min(lb);
    let mut i = 0u64;
    while i < m {
        let chunk = k
            .space
            .contiguous_span(a.offset(i), User)
            .min(k.space.contiguous_span(b.offset(i), User))
            .min(m - i);
        let ca = k
            .space
            .read_bytes_at(a.offset(i), chunk, User)
            .expect("within accessible span");
        let cb = k
            .space
            .read_bytes_at(b.offset(i), chunk, User)
            .expect("within accessible span");
        if let Some(p) = ca.iter().zip(&cb).position(|(x, y)| x != y) {
            return Ok(ApiReturn::ok(if ca[p] < cb[p] { -1 } else { 1 }));
        }
        i += chunk;
    }
    if m < n {
        // The byte loop reads `a[m]` before `b[m]`.
        let fault = if la == m {
            k.space.read_u8(a.offset(m)).expect_err("span boundary")
        } else {
            k.space.read_u8(b.offset(m)).expect_err("span boundary")
        };
        return Err(abort(profile, fault));
    }
    Ok(ApiReturn::ok(0))
}

/// `memchr(s, c, n)`.
///
/// # Errors
///
/// Aborts when a read faults before the byte is found.
pub fn memchr(k: &mut Kernel, profile: LibcProfile, s: SimPtr, c: i32, n: u64) -> ApiResult {
    use sim_core::addr::PrivilegeLevel::User;
    k.charge_call();
    let needle = (c & 0xFF) as u8;
    // Region-at-a-time scan over the accessible prefix; a hit returns
    // before any fault past it, like the byte loop's early exit. Bytes
    // past a chunk's materialized prefix are logically zero.
    let mut i = 0u64;
    while i < n {
        let (mat, span) = match k.space.readable_chunk(s.offset(i), User) {
            Ok(chunk) => chunk,
            Err(f) => return Err(abort(profile, f)),
        };
        let span = span.min(n - i);
        let mat = &mat[..mat.len().min(span as usize)];
        if let Some(p) = mat.iter().position(|&b| b == needle) {
            return Ok(ApiReturn::ok(s.offset(i + p as u64).addr() as i64));
        }
        if needle == 0 && (mat.len() as u64) < span {
            return Ok(ApiReturn::ok(s.offset(i + mat.len() as u64).addr() as i64));
        }
        i += span;
    }
    Ok(ApiReturn::ok(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_kernel::variant::OsVariant;

    fn glibc() -> LibcProfile {
        LibcProfile::for_os(OsVariant::Linux)
    }

    fn msvcrt() -> LibcProfile {
        LibcProfile::for_os(OsVariant::Win98)
    }

    #[test]
    fn malloc_free_roundtrip() {
        let mut k = Kernel::new();
        let r = malloc(&mut k, glibc(), 64).unwrap();
        assert!(r.value != 0);
        let p = SimPtr::new(r.value as u64);
        k.space.write_u8(p, 9).unwrap();
        assert_eq!(free(&mut k, glibc(), p).unwrap().value, 0);
        assert!(k.space.read_u8(p).is_err());
    }

    #[test]
    fn malloc_huge_returns_null_with_errno() {
        let mut k = Kernel::new();
        let r = malloc(&mut k, glibc(), u64::from(u32::MAX)).unwrap();
        assert_eq!(r.value, 0);
        assert_eq!(r.error, Some(ENOMEM));
    }

    #[test]
    fn free_null_is_legal() {
        let mut k = Kernel::new();
        assert!(free(&mut k, glibc(), SimPtr::NULL).is_ok());
        assert!(free(&mut k, msvcrt(), SimPtr::NULL).is_ok());
    }

    #[test]
    fn wild_free_aborts_on_glibc_silent_on_msvcrt() {
        let mut k = Kernel::new();
        // Unreadable pointer: glibc probes the chunk header and faults.
        let wild = SimPtr::new(0x4000);
        assert!(free(&mut k, glibc(), wild).is_err());
        // MSVCRT validates and quietly succeeds — the Silent failure.
        let r = free(&mut k, msvcrt(), wild).unwrap();
        assert!(!r.reported_error());
    }

    #[test]
    fn dangling_free_differs_by_profile() {
        let mut k = Kernel::new();
        let r = malloc(&mut k, glibc(), 16).unwrap();
        let p = SimPtr::new(r.value as u64);
        free(&mut k, glibc(), p).unwrap();
        // Double free: the region is unmapped now → glibc faults.
        assert!(free(&mut k, glibc(), p).is_err());
        assert!(free(&mut k, msvcrt(), p).is_ok());
    }

    #[test]
    fn interior_pointer_free_is_silent_everywhere() {
        let mut k = Kernel::new();
        let r = malloc(&mut k, glibc(), 32).unwrap();
        let interior = SimPtr::new(r.value as u64 + 8);
        let out = free(&mut k, glibc(), interior).unwrap();
        assert!(!out.reported_error()); // quiet corruption, no fault
    }

    #[test]
    fn calloc_overflow_split() {
        let mut k = Kernel::new();
        // 0x10000 * 0x10001 overflows 32 bits.
        let nm = 0x10000u64;
        let sz = 0x10001u64;
        let lin = calloc(&mut k, glibc(), nm, sz).unwrap();
        // glibc: wrapped small allocation returned as if valid — silent.
        assert_ne!(lin.value, 0);
        assert!(!lin.reported_error());
        let win = calloc(&mut k, msvcrt(), nm, sz).unwrap();
        assert_eq!(win.value, 0);
        assert_eq!(win.error, Some(ENOMEM));
    }

    #[test]
    fn calloc_zeroes() {
        let mut k = Kernel::new();
        let r = calloc(&mut k, glibc(), 4, 4).unwrap();
        let p = SimPtr::new(r.value as u64);
        assert_eq!(k.space.read_bytes(p, 16).unwrap(), vec![0u8; 16]);
    }

    #[test]
    fn realloc_null_acts_as_malloc_and_grows() {
        let mut k = Kernel::new();
        let a = realloc(&mut k, glibc(), SimPtr::NULL, 8).unwrap();
        assert_ne!(a.value, 0);
        let p = SimPtr::new(a.value as u64);
        k.space.write_bytes(p, b"12345678").unwrap();
        let b = realloc(&mut k, glibc(), p, 16).unwrap();
        let q = SimPtr::new(b.value as u64);
        assert_eq!(k.space.read_bytes(q, 8).unwrap(), b"12345678");
        assert!(realloc(&mut k, glibc(), SimPtr::new(0x40), 8).is_err());
        assert_eq!(
            realloc(&mut k, msvcrt(), SimPtr::new(0x40), 8)
                .unwrap()
                .error,
            Some(ENOMEM)
        );
    }

    #[test]
    fn mem_functions_roundtrip() {
        let mut k = Kernel::new();
        let a = k.alloc_user(16, "a");
        let b = k.alloc_user(16, "b");
        k.space.write_bytes(a, b"hello world!!!!\0").unwrap();
        memcpy(&mut k, glibc(), b, a, 16).unwrap();
        assert_eq!(k.space.read_bytes(b, 5).unwrap(), b"hello");
        assert_eq!(memcmp(&mut k, glibc(), a, b, 16).unwrap().value, 0);
        memset(&mut k, glibc(), b, i32::from(b'x'), 4).unwrap();
        assert_eq!(k.space.read_bytes(b, 5).unwrap(), b"xxxxo");
        assert_eq!(memcmp(&mut k, glibc(), a, b, 16).unwrap().value, -1);
        let hit = memchr(&mut k, glibc(), a, i32::from(b'w'), 16).unwrap().value as u64;
        assert_eq!(hit, a.offset(6).addr());
        assert_eq!(memchr(&mut k, glibc(), a, i32::from(b'z'), 16).unwrap().value, 0);
    }

    #[test]
    fn memmove_handles_overlap() {
        let mut k = Kernel::new();
        let a = k.alloc_user(16, "a");
        k.space.write_bytes(a, b"abcdef").unwrap();
        memmove(&mut k, glibc(), a.offset(2), a, 4).unwrap();
        assert_eq!(k.space.read_bytes(a, 6).unwrap(), b"ababcd");
    }

    #[test]
    fn mem_functions_fault_on_wild_pointers() {
        let mut k = Kernel::new();
        let good = k.alloc_user(8, "g");
        assert!(memcpy(&mut k, glibc(), SimPtr::NULL, good, 1).is_err());
        assert!(memcpy(&mut k, glibc(), good, SimPtr::NULL, 1).is_err());
        assert!(memset(&mut k, glibc(), SimPtr::INVALID, 0, 1).is_err());
        assert!(memcmp(&mut k, glibc(), good, SimPtr::NULL, 1).is_err());
        // n == 0 touches nothing: robust with any pointers.
        assert!(memcpy(&mut k, glibc(), SimPtr::NULL, SimPtr::NULL, 0).is_ok());
        assert!(memcmp(&mut k, glibc(), SimPtr::NULL, SimPtr::NULL, 0).is_ok());
    }
}
