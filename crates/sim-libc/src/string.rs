//! `<string.h>` — the `str*` functions.
//!
//! String functions take raw pointers and scan for terminators, so they
//! abort heavily on *every* OS when handed Ballista's pointer pool (NULL,
//! dangling, unterminated, kernel-space, …). The per-OS differences the
//! paper found are encoded as profile predicates: MSVCRT's `strtok`
//! dereferences a NULL string that glibc tolerates, and `strncpy`'s pad
//! loop could take down Windows 98/98 SE under harness-accumulated state
//! (a `*`-marked Catastrophic entry in Table 3).

use crate::profile::LibcProfile;
use sim_core::addr::PrivilegeLevel;
use sim_core::cstr;
use sim_core::fault::Fault;
use sim_core::SimPtr;
use sim_kernel::outcome::{ApiAbort, ApiResult, ApiReturn};
use sim_kernel::Kernel;

const U: PrivilegeLevel = PrivilegeLevel::User;

/// Translates a user-mode fault into the personality-appropriate abort.
pub(crate) fn abort(profile: LibcProfile, fault: Fault) -> ApiAbort {
    if profile.os.is_windows() {
        ApiAbort::exception_from_fault(fault)
    } else {
        ApiAbort::signal_from_fault(fault)
    }
}

fn read_str(k: &Kernel, profile: LibcProfile, ptr: SimPtr) -> Result<Vec<u8>, ApiAbort> {
    cstr::read_cstr(&k.space, ptr, U).map_err(|f| abort(profile, f))
}

/// `strlen(s)`.
///
/// # Errors
///
/// Aborts when the scan faults (NULL, dangling or unterminated `s`).
pub fn strlen(k: &mut Kernel, profile: LibcProfile, s: SimPtr) -> ApiResult {
    k.charge_call();
    let bytes = read_str(k, profile, s)?;
    Ok(ApiReturn::ok(bytes.len() as i64))
}

/// `strcpy(dst, src)`. Returns `dst`.
///
/// # Errors
///
/// Aborts when reading `src` or writing `dst` faults.
pub fn strcpy(k: &mut Kernel, profile: LibcProfile, dst: SimPtr, src: SimPtr) -> ApiResult {
    k.charge_call();
    let bytes = read_str(k, profile, src)?;
    cstr::write_bytes_nul(&mut k.space, dst, &bytes, U).map_err(|f| abort(profile, f))?;
    Ok(ApiReturn::ok(dst.addr() as i64))
}

/// `strcat(dst, src)`. Returns `dst`.
///
/// # Errors
///
/// Aborts when scanning either string or writing the concatenation faults.
pub fn strcat(k: &mut Kernel, profile: LibcProfile, dst: SimPtr, src: SimPtr) -> ApiResult {
    k.charge_call();
    let head = read_str(k, profile, dst)?;
    let tail = read_str(k, profile, src)?;
    cstr::write_bytes_nul(
        &mut k.space,
        dst.offset(head.len() as u64),
        &tail,
        U,
    )
    .map_err(|f| abort(profile, f))?;
    Ok(ApiReturn::ok(dst.addr() as i64))
}

/// `strncat(dst, src, n)`: appends at most `n` bytes of `src` plus a NUL.
///
/// # Errors
///
/// Aborts on faulting scans or writes.
pub fn strncat(
    k: &mut Kernel,
    profile: LibcProfile,
    dst: SimPtr,
    src: SimPtr,
    n: u64,
) -> ApiResult {
    k.charge_call();
    let head = read_str(k, profile, dst)?;
    let mut tail = read_str(k, profile, src)?;
    tail.truncate(n as usize);
    cstr::write_bytes_nul(&mut k.space, dst.offset(head.len() as u64), &tail, U)
        .map_err(|f| abort(profile, f))?;
    Ok(ApiReturn::ok(dst.addr() as i64))
}

/// `strcmp(a, b)`.
///
/// # Errors
///
/// Aborts when either scan faults.
pub fn strcmp(k: &mut Kernel, profile: LibcProfile, a: SimPtr, b: SimPtr) -> ApiResult {
    k.charge_call();
    // Byte-by-byte with early exit, exactly like the C loop: a mismatch
    // before the bad page means no fault.
    let mut off = 0u64;
    loop {
        let ca = k.space.read_u8(a.offset(off)).map_err(|f| abort(profile, f))?;
        let cb = k.space.read_u8(b.offset(off)).map_err(|f| abort(profile, f))?;
        if ca != cb {
            return Ok(ApiReturn::ok(if ca < cb { -1 } else { 1 }));
        }
        if ca == 0 {
            return Ok(ApiReturn::ok(0));
        }
        off += 1;
    }
}

/// `strncmp(a, b, n)`.
///
/// # Errors
///
/// Aborts when a scanned byte faults (note `n == 0` compares nothing and is
/// robust even with wild pointers — the early-exit the paper's pools probe).
pub fn strncmp(k: &mut Kernel, profile: LibcProfile, a: SimPtr, b: SimPtr, n: u64) -> ApiResult {
    k.charge_call();
    let mut off = 0u64;
    while off < n {
        let ca = k.space.read_u8(a.offset(off)).map_err(|f| abort(profile, f))?;
        let cb = k.space.read_u8(b.offset(off)).map_err(|f| abort(profile, f))?;
        if ca != cb {
            return Ok(ApiReturn::ok(if ca < cb { -1 } else { 1 }));
        }
        if ca == 0 {
            break;
        }
        off += 1;
    }
    Ok(ApiReturn::ok(0))
}

/// `strncpy(dst, src, n)`: copies and then **pads `dst` with NULs out to
/// `n` bytes** — the pad loop is the dangerous part with a huge `n`.
///
/// # Errors
///
/// Aborts when a read or write faults — except on Windows 98/98 SE under
/// accumulated harness state, where the runaway pad write corrupts system
/// memory and latches a Catastrophic crash instead (Table 3 `*strncpy`).
pub fn strncpy(
    k: &mut Kernel,
    profile: LibcProfile,
    dst: SimPtr,
    src: SimPtr,
    n: u64,
) -> ApiResult {
    k.charge_call();
    let src_bytes = read_str(k, profile, src)?;
    for i in 0..n {
        let byte = src_bytes.get(i as usize).copied().unwrap_or(0);
        if let Err(fault) = k.space.write_u8(dst.offset(i), byte) {
            if profile.strncpy_can_crash_system_on(k) {
                k.crash.panic(
                    "strncpy",
                    "runaway pad write corrupted system memory",
                    Some(fault),
                );
                return Ok(ApiReturn::ok(dst.addr() as i64));
            }
            return Err(abort(profile, fault));
        }
    }
    Ok(ApiReturn::ok(dst.addr() as i64))
}

/// `strchr(s, c)`. Returns a pointer to the first occurrence (the
/// terminator counts when `c == 0`) or NULL.
///
/// # Errors
///
/// Aborts when the scan faults.
pub fn strchr(k: &mut Kernel, profile: LibcProfile, s: SimPtr, c: i32) -> ApiResult {
    k.charge_call();
    let needle = (c & 0xFF) as u8;
    let mut off = 0u64;
    loop {
        let byte = k.space.read_u8(s.offset(off)).map_err(|f| abort(profile, f))?;
        if byte == needle {
            return Ok(ApiReturn::ok(s.offset(off).addr() as i64));
        }
        if byte == 0 {
            return Ok(ApiReturn::ok(0));
        }
        off += 1;
    }
}

/// `strrchr(s, c)`.
///
/// # Errors
///
/// Aborts when the scan faults.
pub fn strrchr(k: &mut Kernel, profile: LibcProfile, s: SimPtr, c: i32) -> ApiResult {
    k.charge_call();
    let bytes = read_str(k, profile, s)?;
    let needle = (c & 0xFF) as u8;
    if needle == 0 {
        return Ok(ApiReturn::ok(s.offset(bytes.len() as u64).addr() as i64));
    }
    match bytes.iter().rposition(|&b| b == needle) {
        Some(i) => Ok(ApiReturn::ok(s.offset(i as u64).addr() as i64)),
        None => Ok(ApiReturn::ok(0)),
    }
}

/// `strstr(haystack, needle)`.
///
/// # Errors
///
/// Aborts when either scan faults.
pub fn strstr(k: &mut Kernel, profile: LibcProfile, hay: SimPtr, needle: SimPtr) -> ApiResult {
    k.charge_call();
    let h = read_str(k, profile, hay)?;
    let n = read_str(k, profile, needle)?;
    if n.is_empty() {
        return Ok(ApiReturn::ok(hay.addr() as i64));
    }
    for i in 0..=h.len().saturating_sub(n.len()) {
        if h.len() - i >= n.len() && h[i..i + n.len()] == n[..] {
            return Ok(ApiReturn::ok(hay.offset(i as u64).addr() as i64));
        }
    }
    Ok(ApiReturn::ok(0))
}

/// `strspn(s, accept)`.
///
/// # Errors
///
/// Aborts when either scan faults.
pub fn strspn(k: &mut Kernel, profile: LibcProfile, s: SimPtr, accept: SimPtr) -> ApiResult {
    k.charge_call();
    let string = read_str(k, profile, s)?;
    let set = read_str(k, profile, accept)?;
    let n = string.iter().take_while(|b| set.contains(b)).count();
    Ok(ApiReturn::ok(n as i64))
}

/// `strcspn(s, reject)`.
///
/// # Errors
///
/// Aborts when either scan faults.
pub fn strcspn(k: &mut Kernel, profile: LibcProfile, s: SimPtr, reject: SimPtr) -> ApiResult {
    k.charge_call();
    let string = read_str(k, profile, s)?;
    let set = read_str(k, profile, reject)?;
    let n = string.iter().take_while(|b| !set.contains(b)).count();
    Ok(ApiReturn::ok(n as i64))
}

/// `strpbrk(s, accept)`.
///
/// # Errors
///
/// Aborts when either scan faults.
pub fn strpbrk(k: &mut Kernel, profile: LibcProfile, s: SimPtr, accept: SimPtr) -> ApiResult {
    k.charge_call();
    let string = read_str(k, profile, s)?;
    let set = read_str(k, profile, accept)?;
    match string.iter().position(|b| set.contains(b)) {
        Some(i) => Ok(ApiReturn::ok(s.offset(i as u64).addr() as i64)),
        None => Ok(ApiReturn::ok(0)),
    }
}

/// Scratch key holding `strtok`'s saved continuation pointer.
const STRTOK_KEY: &str = "libc.strtok";

/// `strtok(s, delim)` — stateful tokenizer.
///
/// glibc checks for "NULL `s` with no scan in progress" and returns NULL;
/// MSVCRT dereferences the saved pointer, which on a fresh process is NULL
/// — one of the differences that leaves Linux with a lower C-string Abort
/// rate in the paper.
///
/// # Errors
///
/// Aborts when scanning either argument faults.
pub fn strtok(k: &mut Kernel, profile: LibcProfile, s: SimPtr, delim: SimPtr) -> ApiResult {
    k.charge_call();
    let cursor = if s.is_null() {
        match k.scratch.get(STRTOK_KEY).copied() {
            Some(saved) if saved != 0 => SimPtr::new(saved),
            _ if profile.strtok_null_checked() => return Ok(ApiReturn::ok(0)),
            _ => SimPtr::NULL, // MSVCRT: proceed to dereference NULL
        }
    } else {
        s
    };
    let set = read_str(k, profile, delim)?;
    // Skip leading delimiters.
    let mut start = cursor;
    loop {
        let b = k.space.read_u8(start).map_err(|f| abort(profile, f))?;
        if b == 0 {
            k.scratch.insert(STRTOK_KEY.to_owned(), 0);
            return Ok(ApiReturn::ok(0));
        }
        if !set.contains(&b) {
            break;
        }
        start = start.offset(1);
    }
    // Find the token end.
    let mut end = start;
    loop {
        let b = k.space.read_u8(end).map_err(|f| abort(profile, f))?;
        if b == 0 {
            k.scratch.insert(STRTOK_KEY.to_owned(), 0);
            return Ok(ApiReturn::ok(start.addr() as i64));
        }
        if set.contains(&b) {
            k.space.write_u8(end, 0).map_err(|f| abort(profile, f))?;
            k.scratch.insert(STRTOK_KEY.to_owned(), end.offset(1).addr());
            return Ok(ApiReturn::ok(start.addr() as i64));
        }
        end = end.offset(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::memory::Protection;
    use sim_kernel::variant::OsVariant;

    fn glibc() -> LibcProfile {
        LibcProfile::for_os(OsVariant::Linux)
    }

    fn msvcrt() -> LibcProfile {
        LibcProfile::for_os(OsVariant::WinNt4)
    }

    fn kernel_with(s: &str) -> (Kernel, SimPtr) {
        let mut k = Kernel::new();
        let p = k.alloc_user(s.len() as u64 + 1, "str");
        cstr::write_cstr(&mut k.space, p, s, U).unwrap();
        (k, p)
    }

    fn put(k: &mut Kernel, s: &str) -> SimPtr {
        let p = k.alloc_user(s.len() as u64 + 1, "str");
        cstr::write_cstr(&mut k.space, p, s, U).unwrap();
        p
    }

    #[test]
    fn strlen_and_strcpy() {
        let (mut k, src) = kernel_with("ballista");
        assert_eq!(strlen(&mut k, glibc(), src).unwrap().value, 8);
        let dst = k.alloc_user(16, "dst");
        let r = strcpy(&mut k, glibc(), dst, src).unwrap();
        assert_eq!(r.value as u64, dst.addr());
        assert_eq!(cstr::read_cstr(&k.space, dst, U).unwrap(), b"ballista");
    }

    #[test]
    fn null_pointers_abort() {
        let mut k = Kernel::new();
        assert!(strlen(&mut k, glibc(), SimPtr::NULL).is_err());
        let p = put(&mut k, "x");
        assert!(strcpy(&mut k, glibc(), SimPtr::NULL, p).is_err());
        assert!(strcmp(&mut k, msvcrt(), p, SimPtr::NULL).is_err());
        // Windows profile produces exceptions, Linux signals.
        match strlen(&mut k, msvcrt(), SimPtr::NULL).unwrap_err() {
            ApiAbort::Exception { .. } => {}
            other => panic!("expected SEH exception, got {other:?}"),
        }
        match strlen(&mut k, glibc(), SimPtr::NULL).unwrap_err() {
            ApiAbort::Signal { signo: 11, .. } => {}
            other => panic!("expected SIGSEGV, got {other:?}"),
        }
    }

    #[test]
    fn strcat_and_strncat() {
        let mut k = Kernel::new();
        let dst = k.alloc_user(32, "dst");
        cstr::write_cstr(&mut k.space, dst, "foo", U).unwrap();
        let src = put(&mut k, "barbaz");
        strcat(&mut k, glibc(), dst, src).unwrap();
        assert_eq!(cstr::read_cstr(&k.space, dst, U).unwrap(), b"foobarbaz");
        strncat(&mut k, glibc(), dst, src, 3).unwrap();
        assert_eq!(cstr::read_cstr(&k.space, dst, U).unwrap(), b"foobarbazbar");
    }

    #[test]
    fn strcmp_orderings() {
        let mut k = Kernel::new();
        let a = put(&mut k, "apple");
        let b = put(&mut k, "apricot");
        let a2 = put(&mut k, "apple");
        assert_eq!(strcmp(&mut k, glibc(), a, b).unwrap().value, -1);
        assert_eq!(strcmp(&mut k, glibc(), b, a).unwrap().value, 1);
        assert_eq!(strcmp(&mut k, glibc(), a, a2).unwrap().value, 0);
        assert_eq!(strncmp(&mut k, glibc(), a, b, 2).unwrap().value, 0);
    }

    #[test]
    fn strncmp_zero_n_is_robust_with_wild_pointers() {
        let mut k = Kernel::new();
        assert_eq!(
            strncmp(&mut k, glibc(), SimPtr::NULL, SimPtr::INVALID, 0)
                .unwrap()
                .value,
            0
        );
    }

    #[test]
    fn strncpy_pads_and_crashes_only_on_98_family_with_residue() {
        let mut k = Kernel::new();
        let dst = k.alloc_user(8, "dst");
        let src = put(&mut k, "ab");
        strncpy(&mut k, glibc(), dst, src, 8).unwrap();
        assert_eq!(k.space.read_bytes(dst, 8).unwrap(), b"ab\0\0\0\0\0\0");

        // Huge n overruns: plain abort without residue…
        let p98 = LibcProfile::for_os(OsVariant::Win98);
        assert!(strncpy(&mut k, p98, dst, src, 1 << 20).is_err());
        assert!(k.is_alive());
        // …Catastrophic with residue on Win98.
        k.residue = 5;
        strncpy(&mut k, p98, dst, src, 1 << 20).unwrap();
        assert!(!k.is_alive());

        // NT with residue still only aborts.
        let mut k2 = Kernel::new();
        k2.residue = 5;
        let dst2 = k2.alloc_user(8, "dst");
        let src2 = put(&mut k2, "ab");
        assert!(strncpy(&mut k2, msvcrt(), dst2, src2, 1 << 20).is_err());
        assert!(k2.is_alive());
    }

    #[test]
    fn searching_functions() {
        let mut k = Kernel::new();
        let s = put(&mut k, "hello world");
        let h = strchr(&mut k, glibc(), s, i32::from(b'o')).unwrap().value as u64;
        assert_eq!(h, s.offset(4).addr());
        let r = strrchr(&mut k, glibc(), s, i32::from(b'o')).unwrap().value as u64;
        assert_eq!(r, s.offset(7).addr());
        assert_eq!(strchr(&mut k, glibc(), s, i32::from(b'z')).unwrap().value, 0);
        // strchr with c == 0 finds the terminator.
        let t = strchr(&mut k, glibc(), s, 0).unwrap().value as u64;
        assert_eq!(t, s.offset(11).addr());

        let needle = put(&mut k, "wor");
        let f = strstr(&mut k, glibc(), s, needle).unwrap().value as u64;
        assert_eq!(f, s.offset(6).addr());
        let missing = put(&mut k, "xyz");
        assert_eq!(strstr(&mut k, glibc(), s, missing).unwrap().value, 0);

        let vowels = put(&mut k, "aeiou");
        assert_eq!(strcspn(&mut k, glibc(), s, vowels).unwrap().value, 1);
        let hl = put(&mut k, "hel");
        assert_eq!(strspn(&mut k, glibc(), s, hl).unwrap().value, 4);
        let pb = strpbrk(&mut k, glibc(), s, vowels).unwrap().value as u64;
        assert_eq!(pb, s.offset(1).addr());
    }

    #[test]
    fn strtok_null_first_arg_differs_by_profile() {
        let mut k = Kernel::new();
        let delim = put(&mut k, " ");
        // glibc: NULL with no scan in progress → NULL return.
        assert_eq!(strtok(&mut k, glibc(), SimPtr::NULL, delim).unwrap().value, 0);
        // MSVCRT: dereferences the (NULL) saved pointer → abort.
        let mut k2 = Kernel::new();
        let delim2 = put(&mut k2, " ");
        assert!(strtok(&mut k2, msvcrt(), SimPtr::NULL, delim2).is_err());
    }

    #[test]
    fn strtok_tokenizes_statefully() {
        let mut k = Kernel::new();
        let s = put(&mut k, "a bc  d");
        let delim = put(&mut k, " ");
        let t1 = strtok(&mut k, glibc(), s, delim).unwrap().value as u64;
        assert_eq!(t1, s.addr());
        let t2 = strtok(&mut k, glibc(), SimPtr::NULL, delim).unwrap().value as u64;
        assert_eq!(cstr::read_cstr(&k.space, SimPtr::new(t2), U).unwrap(), b"bc");
        let t3 = strtok(&mut k, glibc(), SimPtr::NULL, delim).unwrap().value as u64;
        assert_eq!(cstr::read_cstr(&k.space, SimPtr::new(t3), U).unwrap(), b"d");
        assert_eq!(strtok(&mut k, glibc(), SimPtr::NULL, delim).unwrap().value, 0);
    }

    #[test]
    fn unterminated_buffer_aborts() {
        let mut k = Kernel::new();
        let raw = k
            .space
            .map(4, Protection::READ_WRITE, "unterminated")
            .unwrap();
        k.space.write_bytes(raw, b"abcd").unwrap();
        assert!(strlen(&mut k, glibc(), raw).is_err());
    }

    #[test]
    fn early_mismatch_avoids_fault() {
        // strcmp stops at the first differing byte, so comparing a valid
        // short string against a longer unterminated buffer whose first
        // byte differs never touches bad memory.
        let mut k = Kernel::new();
        let good = put(&mut k, "zzz");
        let raw = k.space.map(2, Protection::READ_WRITE, "short").unwrap();
        k.space.write_bytes(raw, b"ab").unwrap();
        assert_eq!(strcmp(&mut k, glibc(), good, raw).unwrap().value, 1);
    }
}
