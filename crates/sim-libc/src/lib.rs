//! # sim-libc — simulated C libraries
//!
//! The paper tests 94 C library functions with *identical* test cases on
//! every operating system, because the C library is the one API the Win32
//! and POSIX worlds share. The interesting result is that the
//! implementations differ wildly in robustness: glibc's `ctype` macros
//! index a lookup table without bounds checks (>30 % Abort failures on
//! Linux, 0 % on Windows), MSVCRT raises hardware exceptions on
//! floating-point domain errors where glibc quietly sets `errno`, the
//! Windows CE CRT passes unvalidated `FILE*`-derived handles into kernel
//! code and *kills the whole machine*, and `fwrite`/`strncpy` could crash
//! Windows 98 outright.
//!
//! This crate implements those C libraries over the simulated kernel:
//!
//! * [`profile`] — [`LibcProfile`]: which validation
//!   each OS's C library performs (the source of every behavioural
//!   difference; nothing here hard-codes a failure *rate*),
//! * [`errno`] — the `errno` vocabulary,
//! * [`ctype`] — character classification (`isalpha`, `toupper`, …),
//! * [`string`] — `str*` functions,
//! * [`memory`] — `malloc`/`free` family plus `mem*`,
//! * [`stdio`] — the `FILE` machinery and file-management calls,
//! * [`stream`] — stream I/O (`fread`, `fprintf`, `getc`, …),
//! * [`math`] — `<math.h>`,
//! * [`time`] — `<time.h>`,
//! * [`wide`] — Windows CE UNICODE twins (`_tcsncpy`, `_wfreopen`, …).
//!
//! Every function takes the simulated [`Kernel`](sim_kernel::Kernel), a
//! [`LibcProfile`] and raw argument values, and
//! returns the shared [`ApiResult`](sim_kernel::outcome::ApiResult).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctype;
pub mod errno;
pub mod math;
pub mod memory;
pub mod profile;
pub mod stdio;
pub mod stream;
pub mod string;
pub mod time;
pub mod wide;

pub use profile::LibcProfile;
