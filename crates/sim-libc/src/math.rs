//! `<math.h>` and the integer arithmetic helpers of `<stdlib.h>`.
//!
//! One of the groups where *Windows* aborts more than Linux in the paper.
//! The mechanism: the MSVC CRTs of the era run with x87 floating-point
//! exceptions unmasked for invalid operations, so a domain error
//! (`sqrt(-1)`, `log(0)`, `asin(2)`, NaN inputs) raises
//! `EXCEPTION_FLT_INVALID_OPERATION` and kills the task, while glibc masks
//! them, sets `errno = EDOM`/`ERANGE` and returns NaN/±Inf — the robust
//! response. The out-parameter functions (`frexp`, `modf`) and the integer
//! divisions (`div`, `ldiv`) abort identically everywhere.

use crate::errno::{EDOM, ERANGE};
use crate::profile::LibcProfile;
use crate::string::abort;
use sim_core::fault::Fault;
use sim_core::SimPtr;
use sim_kernel::outcome::{seh, ApiAbort, ApiResult, ApiReturn};
use sim_kernel::Kernel;

/// How a math result is reported: the raw bits of the `f64` are returned in
/// `value` so the harness can reconstruct the number.
fn ret_f64(x: f64) -> ApiReturn {
    ApiReturn::ok(x.to_bits() as i64)
}

fn ret_f64_err(x: f64, code: u32) -> ApiReturn {
    ApiReturn::err(x.to_bits() as i64, code)
}

/// Raises the MSVCRT floating-point exception for a domain error.
fn flt_invalid() -> ApiAbort {
    ApiAbort::Exception {
        code: seh::FLT_INVALID_OPERATION,
        fault: None,
    }
}

/// Shared handling of a one-argument function with a domain predicate:
/// `domain_error(x)` says the input is outside the mathematical domain.
fn unary(
    k: &mut Kernel,
    profile: LibcProfile,
    x: f64,
    domain_error: bool,
    compute: impl FnOnce(f64) -> f64,
) -> ApiResult {
    k.charge_call();
    if x.is_nan() || domain_error {
        if profile.math_domain_raises() {
            return Err(flt_invalid());
        }
        return Ok(ret_f64_err(f64::NAN, EDOM));
    }
    let y = compute(x);
    if y.is_infinite() && x.is_finite() {
        // Range error (overflow): errno = ERANGE on glibc; MSVCRT-era CRTs
        // typically returned HUGE_VAL quietly.
        if !profile.math_domain_raises() {
            return Ok(ret_f64_err(y, ERANGE));
        }
    }
    Ok(ret_f64(y))
}

macro_rules! unary_fn {
    ($(#[$doc:meta])* $name:ident, $domain:expr, $compute:expr) => {
        $(#[$doc])*
        ///
        /// # Errors
        ///
        /// Raises `EXCEPTION_FLT_INVALID_OPERATION` on the MSVCRT profiles
        /// for NaN/domain-error inputs; glibc reports `errno` instead.
        #[allow(clippy::redundant_closure_call)]
        pub fn $name(k: &mut Kernel, profile: LibcProfile, x: f64) -> ApiResult {
            unary(k, profile, x, ($domain)(x), $compute)
        }
    };
}

unary_fn!(
    /// `sqrt(x)` — domain error for `x < 0`.
    sqrt,
    |x: f64| x < 0.0,
    f64::sqrt
);
unary_fn!(
    /// `log(x)` — domain error for `x <= 0`.
    log,
    |x: f64| x <= 0.0,
    f64::ln
);
unary_fn!(
    /// `log10(x)` — domain error for `x <= 0`.
    log10,
    |x: f64| x <= 0.0,
    f64::log10
);
unary_fn!(
    /// `exp(x)` — never a domain error; overflows to +Inf.
    exp,
    |_x: f64| false,
    f64::exp
);
unary_fn!(
    /// `sin(x)` — domain error only for ±Inf.
    sin,
    |x: f64| x.is_infinite(),
    f64::sin
);
unary_fn!(
    /// `cos(x)` — domain error only for ±Inf.
    cos,
    |x: f64| x.is_infinite(),
    f64::cos
);
unary_fn!(
    /// `tan(x)` — domain error only for ±Inf.
    tan,
    |x: f64| x.is_infinite(),
    f64::tan
);
unary_fn!(
    /// `asin(x)` — domain error for |x| > 1.
    asin,
    |x: f64| !(-1.0..=1.0).contains(&x),
    f64::asin
);
unary_fn!(
    /// `acos(x)` — domain error for |x| > 1.
    acos,
    |x: f64| !(-1.0..=1.0).contains(&x),
    f64::acos
);
unary_fn!(
    /// `atan(x)` — total; never a domain error.
    atan,
    |_x: f64| false,
    f64::atan
);
unary_fn!(
    /// `ceil(x)` — total.
    ceil,
    |_x: f64| false,
    f64::ceil
);
unary_fn!(
    /// `floor(x)` — total.
    floor,
    |_x: f64| false,
    f64::floor
);
unary_fn!(
    /// `fabs(x)` — total.
    fabs,
    |_x: f64| false,
    f64::abs
);

/// `pow(x, y)` — domain error for negative base with non-integer exponent
/// and for `0^negative`.
///
/// # Errors
///
/// Raises on MSVCRT for domain errors; `errno` on glibc.
pub fn pow(k: &mut Kernel, profile: LibcProfile, x: f64, y: f64) -> ApiResult {
    k.charge_call();
    let domain = (x < 0.0 && y.fract() != 0.0 && y.is_finite())
        || (x == 0.0 && y < 0.0)
        || x.is_nan()
        || y.is_nan();
    if domain {
        if profile.math_domain_raises() {
            return Err(flt_invalid());
        }
        return Ok(ret_f64_err(f64::NAN, EDOM));
    }
    Ok(ret_f64(x.powf(y)))
}

/// `fmod(x, y)` — domain error for `y == 0` or infinite `x`.
///
/// # Errors
///
/// Raises on MSVCRT for domain errors; `errno` on glibc.
pub fn fmod(k: &mut Kernel, profile: LibcProfile, x: f64, y: f64) -> ApiResult {
    k.charge_call();
    let domain = y == 0.0 || x.is_infinite() || x.is_nan() || y.is_nan();
    if domain {
        if profile.math_domain_raises() {
            return Err(flt_invalid());
        }
        return Ok(ret_f64_err(f64::NAN, EDOM));
    }
    Ok(ret_f64(x % y))
}

/// `atan2(y, x)` — total except NaN inputs.
///
/// # Errors
///
/// Raises on MSVCRT for NaN inputs.
pub fn atan2(k: &mut Kernel, profile: LibcProfile, y: f64, x: f64) -> ApiResult {
    k.charge_call();
    if y.is_nan() || x.is_nan() {
        if profile.math_domain_raises() {
            return Err(flt_invalid());
        }
        return Ok(ret_f64_err(f64::NAN, EDOM));
    }
    Ok(ret_f64(y.atan2(x)))
}

/// `frexp(x, exp)` — writes the binary exponent through `exp`.
///
/// # Errors
///
/// Aborts on every profile when `exp` faults (the C out-parameter hazard).
pub fn frexp(k: &mut Kernel, profile: LibcProfile, x: f64, exp: SimPtr) -> ApiResult {
    k.charge_call();
    let (mantissa, exponent) = if x == 0.0 || !x.is_finite() {
        (x, 0)
    } else {
        let e = x.abs().log2().floor() as i32 + 1;
        (x / f64::powi(2.0, e), e)
    };
    k.space
        .write_i32(exp, exponent)
        .map_err(|f| abort(profile, f))?;
    Ok(ret_f64(mantissa))
}

/// `ldexp(x, n)` — total.
///
/// # Errors
///
/// None; robust on every profile.
pub fn ldexp(k: &mut Kernel, _profile: LibcProfile, x: f64, n: i32) -> ApiResult {
    k.charge_call();
    Ok(ret_f64(x * f64::powi(2.0, n.clamp(-2000, 2000))))
}

/// `modf(x, iptr)` — writes the integral part through `iptr`.
///
/// # Errors
///
/// Aborts on every profile when `iptr` faults.
pub fn modf(k: &mut Kernel, profile: LibcProfile, x: f64, iptr: SimPtr) -> ApiResult {
    k.charge_call();
    let int_part = x.trunc();
    k.space
        .write_f64(iptr, int_part)
        .map_err(|f| abort(profile, f))?;
    Ok(ret_f64(x - int_part))
}

/// `abs(n)` — note `abs(INT_MIN)` is UB in C; both CRTs return `INT_MIN`
/// quietly (a Silent wrong answer, not a failure the harness can see).
///
/// # Errors
///
/// None.
pub fn abs(k: &mut Kernel, _profile: LibcProfile, n: i32) -> ApiResult {
    k.charge_call();
    Ok(ApiReturn::ok(i64::from(n.wrapping_abs())))
}

/// `labs(n)` — 32-bit long on every paper target.
///
/// # Errors
///
/// None.
pub fn labs(k: &mut Kernel, _profile: LibcProfile, n: i32) -> ApiResult {
    k.charge_call();
    Ok(ApiReturn::ok(i64::from(n.wrapping_abs())))
}

/// `div(numer, denom)` — x86 `idiv` faults on a zero divisor and on the
/// `INT_MIN / -1` overflow, on every OS.
///
/// # Errors
///
/// A divide fault (SIGFPE / `EXCEPTION_INT_DIVIDE_BY_ZERO`) for `denom ==
/// 0` or the overflowing pair.
pub fn div(k: &mut Kernel, profile: LibcProfile, numer: i32, denom: i32) -> ApiResult {
    k.charge_call();
    if denom == 0 || (numer == i32::MIN && denom == -1) {
        return Err(abort(profile, Fault::DivideByZero));
    }
    // Quotient in the low 32 bits, remainder in the high 32 (the div_t pair).
    let q = numer / denom;
    let r = numer % denom;
    Ok(ApiReturn::ok(
        (i64::from(r) << 32) | i64::from(q as u32),
    ))
}

/// `ldiv(numer, denom)` — same hazards as [`div`].
///
/// # Errors
///
/// A divide fault for `denom == 0` or the overflowing pair.
pub fn ldiv(k: &mut Kernel, profile: LibcProfile, numer: i32, denom: i32) -> ApiResult {
    div(k, profile, numer, denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_kernel::variant::OsVariant;

    fn glibc() -> LibcProfile {
        LibcProfile::for_os(OsVariant::Linux)
    }

    fn msvcrt() -> LibcProfile {
        LibcProfile::for_os(OsVariant::Win95)
    }

    fn as_f64(r: ApiReturn) -> f64 {
        f64::from_bits(r.value as u64)
    }

    #[test]
    fn happy_paths_agree() {
        let mut k = Kernel::new();
        for p in [glibc(), msvcrt()] {
            assert_eq!(as_f64(sqrt(&mut k, p, 9.0).unwrap()), 3.0);
            assert_eq!(as_f64(fabs(&mut k, p, -2.5).unwrap()), 2.5);
            assert_eq!(as_f64(floor(&mut k, p, 1.9).unwrap()), 1.0);
            assert_eq!(as_f64(pow(&mut k, p, 2.0, 10.0).unwrap()), 1024.0);
            assert!((as_f64(log(&mut k, p, std::f64::consts::E).unwrap()) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn domain_errors_split_by_profile() {
        let mut k = Kernel::new();
        // glibc: errno + NaN.
        for (f, x) in [
            (sqrt as fn(&mut Kernel, LibcProfile, f64) -> ApiResult, -1.0),
            (log, 0.0),
            (log10, -5.0),
            (asin, 2.0),
            (acos, -2.0),
        ] {
            let r = f(&mut k, glibc(), x).unwrap();
            assert_eq!(r.error, Some(EDOM));
            assert!(as_f64(r).is_nan());
            // MSVCRT: floating-point exception → Abort.
            let e = f(&mut k, msvcrt(), x).unwrap_err();
            assert!(matches!(
                e,
                ApiAbort::Exception {
                    code: seh::FLT_INVALID_OPERATION,
                    ..
                }
            ));
        }
    }

    #[test]
    fn nan_inputs_raise_on_msvcrt_only() {
        let mut k = Kernel::new();
        assert!(sin(&mut k, msvcrt(), f64::NAN).is_err());
        assert!(sin(&mut k, glibc(), f64::NAN).is_ok());
        assert!(atan2(&mut k, msvcrt(), f64::NAN, 1.0).is_err());
        assert!(atan2(&mut k, glibc(), f64::NAN, 1.0).is_ok());
    }

    #[test]
    fn infinities() {
        let mut k = Kernel::new();
        // sin(Inf) is a domain error.
        assert_eq!(
            sin(&mut k, glibc(), f64::INFINITY).unwrap().error,
            Some(EDOM)
        );
        assert!(sin(&mut k, msvcrt(), f64::INFINITY).is_err());
        // atan(Inf) is fine everywhere.
        assert!(
            (as_f64(atan(&mut k, glibc(), f64::INFINITY).unwrap())
                - std::f64::consts::FRAC_PI_2)
                .abs()
                < 1e-12
        );
        // exp overflow: glibc reports ERANGE.
        assert_eq!(exp(&mut k, glibc(), 1e10).unwrap().error, Some(ERANGE));
    }

    #[test]
    fn pow_and_fmod_domains() {
        let mut k = Kernel::new();
        assert_eq!(pow(&mut k, glibc(), -2.0, 0.5).unwrap().error, Some(EDOM));
        assert!(pow(&mut k, msvcrt(), -2.0, 0.5).is_err());
        assert_eq!(pow(&mut k, glibc(), 0.0, -1.0).unwrap().error, Some(EDOM));
        assert_eq!(as_f64(pow(&mut k, glibc(), -2.0, 3.0).unwrap()), -8.0);
        assert_eq!(fmod(&mut k, glibc(), 5.0, 0.0).unwrap().error, Some(EDOM));
        assert!(fmod(&mut k, msvcrt(), 5.0, 0.0).is_err());
        assert_eq!(as_f64(fmod(&mut k, glibc(), 7.5, 2.0).unwrap()), 1.5);
    }

    #[test]
    fn out_parameters_abort_on_bad_pointers_everywhere() {
        let mut k = Kernel::new();
        for p in [glibc(), msvcrt()] {
            assert!(frexp(&mut k, p, 8.0, SimPtr::NULL).is_err());
            assert!(modf(&mut k, p, 3.5, SimPtr::NULL).is_err());
        }
        let out = k.alloc_user(8, "exp");
        let r = frexp(&mut k, glibc(), 8.0, out).unwrap();
        assert_eq!(as_f64(r), 0.5);
        assert_eq!(k.space.read_i32(out).unwrap(), 4);
        let r = modf(&mut k, glibc(), 3.25, out).unwrap();
        assert_eq!(as_f64(r), 0.25);
        assert_eq!(k.space.read_f64(out).unwrap(), 3.0);
    }

    #[test]
    fn integer_division_faults() {
        let mut k = Kernel::new();
        for p in [glibc(), msvcrt()] {
            assert!(div(&mut k, p, 5, 0).is_err());
            assert!(div(&mut k, p, i32::MIN, -1).is_err());
            assert!(ldiv(&mut k, p, 1, 0).is_err());
        }
        let r = div(&mut k, glibc(), 17, 5).unwrap();
        assert_eq!(r.value & 0xFFFF_FFFF, 3); // quotient
        assert_eq!(r.value >> 32, 2); // remainder
    }

    #[test]
    fn abs_functions_are_total() {
        let mut k = Kernel::new();
        assert_eq!(abs(&mut k, glibc(), -7).unwrap().value, 7);
        assert_eq!(abs(&mut k, glibc(), i32::MIN).unwrap().value, i64::from(i32::MIN));
        assert_eq!(labs(&mut k, msvcrt(), -9).unwrap().value, 9);
        assert_eq!(as_f64(ldexp(&mut k, glibc(), 1.5, 4).unwrap()), 24.0);
    }
}
