//! The `errno` vocabulary shared by the C library and the POSIX
//! personality, plus mapping from kernel subsystem errors.

use sim_kernel::env::EnvError;
use sim_kernel::fs::FsError;
use sim_kernel::heap::HeapError;
use sim_kernel::process::ProcessError;

/// Operation not permitted.
pub const EPERM: u32 = 1;
/// No such file or directory.
pub const ENOENT: u32 = 2;
/// No such process.
pub const ESRCH: u32 = 3;
/// Interrupted system call.
pub const EINTR: u32 = 4;
/// I/O error.
pub const EIO: u32 = 5;
/// Bad file descriptor.
pub const EBADF: u32 = 9;
/// No child processes.
pub const ECHILD: u32 = 10;
/// Try again / resource temporarily unavailable.
pub const EAGAIN: u32 = 11;
/// Out of memory.
pub const ENOMEM: u32 = 12;
/// Permission denied.
pub const EACCES: u32 = 13;
/// Bad address.
pub const EFAULT: u32 = 14;
/// Device or resource busy.
pub const EBUSY: u32 = 16;
/// File exists.
pub const EEXIST: u32 = 17;
/// Not a directory.
pub const ENOTDIR: u32 = 20;
/// Is a directory.
pub const EISDIR: u32 = 21;
/// Invalid argument.
pub const EINVAL: u32 = 22;
/// Too many open files.
pub const EMFILE: u32 = 24;
/// File too large.
pub const EFBIG: u32 = 27;
/// No space left on device.
pub const ENOSPC: u32 = 28;
/// Illegal seek.
pub const ESPIPE: u32 = 29;
/// Read-only file system.
pub const EROFS: u32 = 30;
/// Math argument out of domain.
pub const EDOM: u32 = 33;
/// Math result not representable.
pub const ERANGE: u32 = 34;
/// Directory not empty.
pub const ENOTEMPTY: u32 = 39;

/// Maps a filesystem error to its `errno`.
#[must_use]
pub fn from_fs(e: FsError) -> u32 {
    match e {
        FsError::NotFound => ENOENT,
        FsError::NotADirectory => ENOTDIR,
        FsError::IsADirectory => EISDIR,
        FsError::Exists => EEXIST,
        FsError::AccessDenied => EACCES,
        FsError::BadDescriptor => EBADF,
        FsError::BadAccessMode => EBADF,
        FsError::InvalidPath => ENOENT,
        FsError::NotEmpty => ENOTEMPTY,
        FsError::InvalidSeek => EINVAL,
        FsError::SharingViolation => EBUSY,
        FsError::TooManyOpen => EMFILE,
    }
}

/// Maps a heap error to its `errno`.
#[must_use]
pub fn from_heap(e: HeapError) -> u32 {
    match e {
        HeapError::OutOfMemory => ENOMEM,
        HeapError::NoHeap | HeapError::NotAllocated | HeapError::InvalidArgument => EINVAL,
    }
}

/// Maps a process-table error to its `errno`.
#[must_use]
pub fn from_process(e: ProcessError) -> u32 {
    match e {
        ProcessError::NoProcess | ProcessError::NoThread => ESRCH,
        ProcessError::NoChildren => ECHILD,
        ProcessError::AlreadyExited => ESRCH,
        ProcessError::InvalidArgument => EINVAL,
    }
}

/// Maps an environment error to its `errno`.
#[must_use]
pub fn from_env(e: EnvError) -> u32 {
    match e {
        EnvError::NotFound => ENOENT,
        EnvError::InvalidName => EINVAL,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fs_mapping_covers_core_cases() {
        assert_eq!(from_fs(FsError::NotFound), ENOENT);
        assert_eq!(from_fs(FsError::IsADirectory), EISDIR);
        assert_eq!(from_fs(FsError::NotEmpty), ENOTEMPTY);
        assert_eq!(from_fs(FsError::BadDescriptor), EBADF);
    }

    #[test]
    fn other_mappings() {
        assert_eq!(from_heap(HeapError::OutOfMemory), ENOMEM);
        assert_eq!(from_process(ProcessError::NoChildren), ECHILD);
        assert_eq!(from_env(EnvError::NotFound), ENOENT);
    }
}
