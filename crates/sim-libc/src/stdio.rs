//! `<stdio.h>` — the `FILE` machinery and file-management calls.
//!
//! A simulated `FILE` is a real structure in simulated user memory (magic,
//! kernel open-file id, flags, ungetc slot), because the paper's deadliest
//! test value is *"a string buffer typecast to a `FILE*`"* — readable
//! memory with garbage contents. What each C library does with that value
//! is the profile split:
//!
//! * **glibc** uses the garbage fields (buffer pointers, descriptors) and
//!   usually dies on the resulting wild dereference → Abort;
//! * **desktop MSVCRT** validates against its stream table and returns
//!   `EOF` with `errno` → robust;
//! * **the Windows CE CRT** hands the garbage "handle" field to a kernel
//!   helper with no probing → kernel-mode wild dereference → the whole
//!   machine dies. This is the single root cause of seventeen of CE's
//!   eighteen Catastrophic C functions (paper §5).

use crate::errno::{self, EBADF, EINVAL};
use crate::profile::{FilePtrPolicy, LibcProfile};
use crate::string::abort;
use sim_core::addr::PrivilegeLevel;
use sim_core::cstr;
use sim_core::SimPtr;
use sim_kernel::fs::{OpenOptions, SeekFrom};
use sim_kernel::outcome::{ApiAbort, ApiResult, ApiReturn};
use sim_kernel::Kernel;

const U: PrivilegeLevel = PrivilegeLevel::User;

/// Magic tag stored in the first word of a live simulated `FILE`.
pub const FILE_MAGIC: u32 = 0x4649_4C45; // "FILE"

/// Byte size of the simulated `FILE` structure.
pub const FILE_SIZE: u64 = 16;

/// `EOF`.
pub const EOF: i64 = -1;

/// Field offsets within the simulated `FILE`.
mod off {
    pub const MAGIC: u64 = 0;
    pub const OFD: u64 = 4;
    pub const FLAGS: u64 = 8;
    pub const UNGETC: u64 = 12;
}

/// Flag bits in the `FILE.flags` word.
mod flag {
    pub const ERROR: u32 = 1;
    pub const EOF: u32 = 2;
}

/// Creates a `FILE` structure in user memory bound to kernel open-file
/// description `ofd`. Public so the Ballista pools can build live-stream
/// test values.
pub fn make_file(k: &mut Kernel, ofd: u64) -> SimPtr {
    let fp = k.alloc_user(FILE_SIZE, "FILE");
    k.space.write_u32(fp.offset(off::MAGIC), FILE_MAGIC).expect("fresh");
    k.space.write_u32(fp.offset(off::OFD), ofd as u32).expect("fresh");
    k.space.write_u32(fp.offset(off::FLAGS), 0).expect("fresh");
    k.space.write_i32(fp.offset(off::UNGETC), -1).expect("fresh");
    fp
}

/// What resolving a `FILE*` argument produced.
pub(crate) enum FileRef {
    /// A live stream bound to this kernel open-file description.
    Live(u64),
    /// The call should return `EOF` with the given `errno` (validated
    /// garbage, or a closed stream on a validating CRT).
    Error(u32),
    /// The system has crashed (CE kernel-trust path); return value is
    /// meaningless.
    SystemDead,
}

/// Resolves a `FILE*` according to the profile's policy.
///
/// `kernel_trust_sensitive` marks the seventeen CE functions whose
/// implementation passes the stream's handle into kernel code — the ones
/// Table 3 lists as Catastrophic on CE.
pub(crate) fn resolve_file(
    k: &mut Kernel,
    profile: LibcProfile,
    fp: SimPtr,
    func: &'static str,
    kernel_trust_sensitive: bool,
) -> Result<FileRef, ApiAbort> {
    // Every CRT reads the first words of the struct in user mode: an
    // unreadable pointer (NULL, dangling, kernel address) faults here for
    // all profiles — an Abort, not a crash.
    let magic = k
        .space
        .read_u32(fp.offset(off::MAGIC))
        .map_err(|f| abort(profile, f))?;
    let ofd = u64::from(
        k.space
            .read_u32(fp.offset(off::OFD))
            .map_err(|f| abort(profile, f))?,
    );
    if magic == FILE_MAGIC && k.fs.is_open(ofd) {
        return Ok(FileRef::Live(ofd));
    }
    // Readable garbage (or a closed stream slot).
    match profile.file_ptr_policy() {
        FilePtrPolicy::Validate => Ok(FileRef::Error(EBADF)),
        FilePtrPolicy::Probe => {
            // glibc trusts the struct: it treats the second word as a
            // buffer pointer and dereferences it in user mode.
            let bogus_buf = SimPtr::new(ofd);
            match k.space.read_u8(bogus_buf) {
                Ok(_) => Ok(FileRef::Error(EBADF)), // lucky garbage: survives
                Err(fault) => Err(abort(profile, fault)),
            }
        }
        FilePtrPolicy::KernelTrust => {
            if kernel_trust_sensitive {
                // The CE CRT passes the garbage handle to the kernel, which
                // dereferences it at kernel privilege.
                let fault = k
                    .space
                    .read_u8_priv(SimPtr::new(ofd), PrivilegeLevel::Kernel)
                    .err();
                match fault {
                    Some(f) => {
                        k.crash.panic(
                            func,
                            "CE CRT passed unvalidated FILE handle into kernel",
                            Some(f),
                        );
                        Ok(FileRef::SystemDead)
                    }
                    // The garbage happened to point at mapped memory: the
                    // kernel scribbles over it — still a system corruption.
                    None => {
                        k.crash.panic(
                            func,
                            "CE kernel wrote through garbage FILE handle",
                            None,
                        );
                        Ok(FileRef::SystemDead)
                    }
                }
            } else {
                Ok(FileRef::Error(EBADF))
            }
        }
    }
}

/// Reads and clears the stream's pushed-back character.
pub(crate) fn take_ungetc(k: &mut Kernel, fp: SimPtr) -> Option<u8> {
    let v = k.space.read_i32(fp.offset(off::UNGETC)).ok()?;
    if v < 0 {
        return None;
    }
    let _ = k.space.write_i32(fp.offset(off::UNGETC), -1);
    Some(v as u8)
}

/// Stores a pushed-back character; fails (returns false) if one is present.
pub(crate) fn push_ungetc(k: &mut Kernel, fp: SimPtr, c: u8) -> bool {
    match k.space.read_i32(fp.offset(off::UNGETC)) {
        Ok(v) if v < 0 => k
            .space
            .write_i32(fp.offset(off::UNGETC), i32::from(c))
            .is_ok(),
        _ => false,
    }
}

pub(crate) fn set_flag(k: &mut Kernel, fp: SimPtr, bit: u32) {
    if let Ok(f) = k.space.read_u32(fp.offset(off::FLAGS)) {
        let _ = k.space.write_u32(fp.offset(off::FLAGS), f | bit);
    }
}

fn get_flags(k: &Kernel, fp: SimPtr) -> Result<u32, sim_core::Fault> {
    k.space.read_u32(fp.offset(off::FLAGS))
}

/// Marks the stream's error flag (used by [`stream`](crate::stream)).
pub(crate) fn mark_error(k: &mut Kernel, fp: SimPtr) {
    set_flag(k, fp, flag::ERROR);
}

/// Marks the stream's end-of-file flag.
pub(crate) fn mark_eof(k: &mut Kernel, fp: SimPtr) {
    set_flag(k, fp, flag::EOF);
}

fn parse_mode(mode: &[u8]) -> Option<OpenOptions> {
    let plus = mode.contains(&b'+');
    match mode.first()? {
        b'r' => Some(if plus {
            OpenOptions::read_write()
        } else {
            OpenOptions::read_only()
        }),
        b'w' => Some(
            if plus {
                OpenOptions::read_write()
            } else {
                OpenOptions::write_only()
            }
            .create(true)
            .truncate(true),
        ),
        b'a' => Some(
            if plus {
                OpenOptions::read_write()
            } else {
                OpenOptions::write_only()
            }
            .create(true)
            .append(true),
        ),
        _ => None,
    }
}

/// `fopen(path, mode)`. Returns a `FILE*` or NULL with `errno`.
///
/// # Errors
///
/// Aborts when either string argument faults (every CRT dereferences
/// both).
pub fn fopen(k: &mut Kernel, profile: LibcProfile, path: SimPtr, mode: SimPtr) -> ApiResult {
    k.charge_call();
    let path_bytes = cstr::read_cstr(&k.space, path, U).map_err(|f| abort(profile, f))?;
    let mode_bytes = cstr::read_cstr(&k.space, mode, U).map_err(|f| abort(profile, f))?;
    let Some(opts) = parse_mode(&mode_bytes) else {
        return Ok(ApiReturn::err(0, EINVAL));
    };
    let path_str = String::from_utf8_lossy(&path_bytes).into_owned();
    match k.fs.open(&path_str, opts) {
        Ok(ofd) => {
            let fp = make_file(k, ofd);
            Ok(ApiReturn::ok(fp.addr() as i64))
        }
        Err(e) => Ok(ApiReturn::err(0, errno::from_fs(e))),
    }
}

/// `freopen(path, mode, stream)` — closes `stream` and rebinds it.
///
/// On CE this is the UNICODE `_wfreopen`, one of the seventeen
/// kernel-trusting Catastrophic functions.
///
/// # Errors
///
/// Aborts on faulting string or stream arguments.
pub fn freopen(
    k: &mut Kernel,
    profile: LibcProfile,
    path: SimPtr,
    mode: SimPtr,
    stream: SimPtr,
) -> ApiResult {
    k.charge_call();
    match resolve_file(k, profile, stream, "freopen", true)? {
        FileRef::SystemDead => return Ok(ApiReturn::ok(0)),
        FileRef::Live(ofd) => {
            let _ = k.fs.close(ofd);
        }
        FileRef::Error(_) => {}
    }
    let path_bytes = cstr::read_cstr(&k.space, path, U).map_err(|f| abort(profile, f))?;
    let mode_bytes = cstr::read_cstr(&k.space, mode, U).map_err(|f| abort(profile, f))?;
    let Some(opts) = parse_mode(&mode_bytes) else {
        return Ok(ApiReturn::err(0, EINVAL));
    };
    let path_str = String::from_utf8_lossy(&path_bytes).into_owned();
    match k.fs.open(&path_str, opts) {
        Ok(ofd) => {
            // Rebind the same FILE structure.
            k.space
                .write_u32(stream.offset(off::OFD), ofd as u32)
                .map_err(|f| abort(profile, f))?;
            k.space
                .write_u32(stream.offset(off::MAGIC), FILE_MAGIC)
                .map_err(|f| abort(profile, f))?;
            Ok(ApiReturn::ok(stream.addr() as i64))
        }
        Err(e) => Ok(ApiReturn::err(0, errno::from_fs(e))),
    }
}

/// `fclose(stream)`.
///
/// glibc frees the `FILE` allocation (so a later use faults); MSVCRT keeps
/// the slot and only clears the magic (later use is validated to `EOF`).
///
/// # Errors
///
/// Aborts on faulting stream pointers; Catastrophic on CE garbage streams.
pub fn fclose(k: &mut Kernel, profile: LibcProfile, stream: SimPtr) -> ApiResult {
    k.charge_call();
    match resolve_file(k, profile, stream, "fclose", true)? {
        FileRef::SystemDead => Ok(ApiReturn::ok(0)),
        FileRef::Error(e) => Ok(ApiReturn::err(EOF, e)),
        FileRef::Live(ofd) => {
            let _ = k.fs.close(ofd);
            if profile.os.is_windows() {
                // Slot is kept; magic cleared so reuse is detectable.
                let _ = k.space.write_u32(stream.offset(off::MAGIC), 0);
            } else {
                // glibc frees the FILE: reuse is a dangling dereference.
                let _ = k.space.unmap(stream);
            }
            Ok(ApiReturn::ok(0))
        }
    }
}

/// `fflush(stream)`. `fflush(NULL)` flushes everything and is legal.
///
/// # Errors
///
/// Aborts on faulting stream pointers; Catastrophic on CE garbage streams.
pub fn fflush(k: &mut Kernel, profile: LibcProfile, stream: SimPtr) -> ApiResult {
    k.charge_call();
    if stream.is_null() {
        return Ok(ApiReturn::ok(0)); // flush all open streams
    }
    match resolve_file(k, profile, stream, "fflush", true)? {
        FileRef::SystemDead => Ok(ApiReturn::ok(0)),
        FileRef::Error(e) => Ok(ApiReturn::err(EOF, e)),
        FileRef::Live(ofd) => {
            let _ = k.fs.flush(ofd); // durability barrier for crashcon
            Ok(ApiReturn::ok(0))
        }
    }
}

/// `fseek(stream, offset, whence)`.
///
/// # Errors
///
/// Aborts on faulting stream pointers; Catastrophic on CE garbage streams.
pub fn fseek(
    k: &mut Kernel,
    profile: LibcProfile,
    stream: SimPtr,
    offset: i64,
    whence: i32,
) -> ApiResult {
    k.charge_call();
    match resolve_file(k, profile, stream, "fseek", true)? {
        FileRef::SystemDead => Ok(ApiReturn::ok(0)),
        FileRef::Error(e) => Ok(ApiReturn::err(-1, e)),
        FileRef::Live(ofd) => {
            let from = match whence {
                0 if offset >= 0 => SeekFrom::Start(offset as u64),
                0 => return Ok(ApiReturn::err(-1, EINVAL)),
                1 => SeekFrom::Current(offset),
                2 => SeekFrom::End(offset),
                _ => return Ok(ApiReturn::err(-1, EINVAL)),
            };
            match k.fs.seek(ofd, from) {
                Ok(_) => Ok(ApiReturn::ok(0)),
                Err(e) => Ok(ApiReturn::err(-1, errno::from_fs(e))),
            }
        }
    }
}

/// `ftell(stream)`.
///
/// # Errors
///
/// Aborts on faulting stream pointers; Catastrophic on CE garbage streams.
pub fn ftell(k: &mut Kernel, profile: LibcProfile, stream: SimPtr) -> ApiResult {
    k.charge_call();
    match resolve_file(k, profile, stream, "ftell", true)? {
        FileRef::SystemDead => Ok(ApiReturn::ok(0)),
        FileRef::Error(e) => Ok(ApiReturn::err(-1, e)),
        FileRef::Live(ofd) => match k.fs.seek(ofd, SeekFrom::Current(0)) {
            Ok(pos) => Ok(ApiReturn::ok(pos as i64)),
            Err(e) => Ok(ApiReturn::err(-1, errno::from_fs(e))),
        },
    }
}

/// `rewind(stream)` — `fseek(stream, 0, SEEK_SET)` with flags cleared.
///
/// # Errors
///
/// Aborts on faulting stream pointers.
pub fn rewind(k: &mut Kernel, profile: LibcProfile, stream: SimPtr) -> ApiResult {
    k.charge_call();
    match resolve_file(k, profile, stream, "rewind", false)? {
        FileRef::SystemDead => Ok(ApiReturn::ok(0)),
        FileRef::Error(e) => Ok(ApiReturn::err(0, e)),
        FileRef::Live(ofd) => {
            let _ = k.fs.seek(ofd, SeekFrom::Start(0));
            let _ = k.space.write_u32(stream.offset(off::FLAGS), 0);
            Ok(ApiReturn::ok(0))
        }
    }
}

/// `fgetpos(stream, pos)`.
///
/// # Errors
///
/// Aborts on faulting stream or position pointers.
pub fn fgetpos(k: &mut Kernel, profile: LibcProfile, stream: SimPtr, pos: SimPtr) -> ApiResult {
    k.charge_call();
    match resolve_file(k, profile, stream, "fgetpos", false)? {
        FileRef::SystemDead => Ok(ApiReturn::ok(0)),
        FileRef::Error(e) => Ok(ApiReturn::err(-1, e)),
        FileRef::Live(ofd) => {
            let cur = k
                .fs
                .seek(ofd, SeekFrom::Current(0))
                .map_err(errno::from_fs);
            match cur {
                Ok(v) => {
                    k.space
                        .write_u64(pos, v)
                        .map_err(|f| abort(profile, f))?;
                    Ok(ApiReturn::ok(0))
                }
                Err(e) => Ok(ApiReturn::err(-1, e)),
            }
        }
    }
}

/// `fsetpos(stream, pos)`.
///
/// # Errors
///
/// Aborts on faulting stream or position pointers.
pub fn fsetpos(k: &mut Kernel, profile: LibcProfile, stream: SimPtr, pos: SimPtr) -> ApiResult {
    k.charge_call();
    let target = k.space.read_u64(pos).map_err(|f| abort(profile, f))?;
    match resolve_file(k, profile, stream, "fsetpos", false)? {
        FileRef::SystemDead => Ok(ApiReturn::ok(0)),
        FileRef::Error(e) => Ok(ApiReturn::err(-1, e)),
        FileRef::Live(ofd) => match k.fs.seek(ofd, SeekFrom::Start(target)) {
            Ok(_) => Ok(ApiReturn::ok(0)),
            Err(e) => Ok(ApiReturn::err(-1, errno::from_fs(e))),
        },
    }
}

/// `clearerr(stream)`.
///
/// # Errors
///
/// Aborts on faulting stream pointers; Catastrophic on CE garbage streams
/// (first entry in Table 3's CE C-file-I/O row).
pub fn clearerr(k: &mut Kernel, profile: LibcProfile, stream: SimPtr) -> ApiResult {
    k.charge_call();
    match resolve_file(k, profile, stream, "clearerr", true)? {
        FileRef::SystemDead => Ok(ApiReturn::ok(0)),
        FileRef::Error(e) => Ok(ApiReturn::err(0, e)),
        FileRef::Live(_) => {
            let _ = k.space.write_u32(stream.offset(off::FLAGS), 0);
            Ok(ApiReturn::ok(0))
        }
    }
}

/// `feof(stream)`.
///
/// # Errors
///
/// Aborts on faulting stream pointers.
pub fn feof(k: &mut Kernel, profile: LibcProfile, stream: SimPtr) -> ApiResult {
    k.charge_call();
    match resolve_file(k, profile, stream, "feof", false)? {
        FileRef::SystemDead => Ok(ApiReturn::ok(0)),
        FileRef::Error(e) => Ok(ApiReturn::err(0, e)),
        FileRef::Live(_) => {
            let flags = get_flags(k, stream).map_err(|f| abort(profile, f))?;
            Ok(ApiReturn::ok(i64::from(flags & flag::EOF != 0)))
        }
    }
}

/// `ferror(stream)`.
///
/// # Errors
///
/// Aborts on faulting stream pointers.
pub fn ferror(k: &mut Kernel, profile: LibcProfile, stream: SimPtr) -> ApiResult {
    k.charge_call();
    match resolve_file(k, profile, stream, "ferror", false)? {
        FileRef::SystemDead => Ok(ApiReturn::ok(0)),
        FileRef::Error(e) => Ok(ApiReturn::err(0, e)),
        FileRef::Live(_) => {
            let flags = get_flags(k, stream).map_err(|f| abort(profile, f))?;
            Ok(ApiReturn::ok(i64::from(flags & flag::ERROR != 0)))
        }
    }
}

/// `remove(path)`.
///
/// # Errors
///
/// Aborts when the path string faults.
pub fn remove(k: &mut Kernel, profile: LibcProfile, path: SimPtr) -> ApiResult {
    k.charge_call();
    let bytes = cstr::read_cstr(&k.space, path, U).map_err(|f| abort(profile, f))?;
    let p = String::from_utf8_lossy(&bytes).into_owned();
    match k.fs.unlink(&p) {
        Ok(()) => Ok(ApiReturn::ok(0)),
        Err(e) => Ok(ApiReturn::err(-1, errno::from_fs(e))),
    }
}

/// `rename(from, to)`.
///
/// # Errors
///
/// Aborts when either path string faults.
pub fn rename(k: &mut Kernel, profile: LibcProfile, from: SimPtr, to: SimPtr) -> ApiResult {
    k.charge_call();
    let f = cstr::read_cstr(&k.space, from, U).map_err(|x| abort(profile, x))?;
    let t = cstr::read_cstr(&k.space, to, U).map_err(|x| abort(profile, x))?;
    let from_s = String::from_utf8_lossy(&f).into_owned();
    let to_s = String::from_utf8_lossy(&t).into_owned();
    match k.fs.rename(&from_s, &to_s) {
        Ok(()) => Ok(ApiReturn::ok(0)),
        Err(e) => Ok(ApiReturn::err(-1, errno::from_fs(e))),
    }
}

/// `tmpfile()` — a fresh unnamed temporary stream.
///
/// # Errors
///
/// None; this call takes no hostile arguments.
pub fn tmpfile(k: &mut Kernel, profile: LibcProfile) -> ApiResult {
    k.charge_call();
    let n = k.scratch.entry("libc.tmpfile".to_owned()).or_insert(0);
    *n += 1;
    let name = if profile.os.is_windows() {
        format!("C:\\TEMP\\tmp{n:04}.tmp")
    } else {
        format!("/tmp/tmpfile.{n:04}")
    };
    match k
        .fs
        .open(&name, OpenOptions::read_write().create(true).truncate(true))
    {
        Ok(ofd) => {
            let fp = make_file(k, ofd);
            Ok(ApiReturn::ok(fp.addr() as i64))
        }
        Err(e) => Ok(ApiReturn::err(0, errno::from_fs(e))),
    }
}

/// `tmpnam(buf)` — writes a fresh temporary name into `buf` (or returns an
/// internal static buffer for NULL, which is legal).
///
/// # Errors
///
/// Aborts when writing to a faulting non-NULL buffer.
pub fn tmpnam(k: &mut Kernel, profile: LibcProfile, buf: SimPtr) -> ApiResult {
    k.charge_call();
    let n = k.scratch.entry("libc.tmpnam".to_owned()).or_insert(0);
    *n += 1;
    let name = if profile.os.is_windows() {
        format!("C:\\TEMP\\t{n:06}")
    } else {
        format!("/tmp/tmpnam{n:06}")
    };
    if buf.is_null() {
        // Return the CRT's static buffer.
        let stat = k.alloc_user(name.len() as u64 + 1, "tmpnam-static");
        cstr::write_cstr(&mut k.space, stat, &name, U).map_err(|f| abort(profile, f))?;
        return Ok(ApiReturn::ok(stat.addr() as i64));
    }
    cstr::write_cstr(&mut k.space, buf, &name, U).map_err(|f| abort(profile, f))?;
    Ok(ApiReturn::ok(buf.addr() as i64))
}

/// `setbuf(stream, buf)` — `buf` may legally be NULL (unbuffered).
///
/// # Errors
///
/// Aborts on faulting stream pointers.
pub fn setbuf(k: &mut Kernel, profile: LibcProfile, stream: SimPtr, buf: SimPtr) -> ApiResult {
    k.charge_call();
    match resolve_file(k, profile, stream, "setbuf", false)? {
        FileRef::SystemDead => Ok(ApiReturn::ok(0)),
        FileRef::Error(e) => Ok(ApiReturn::err(0, e)),
        FileRef::Live(_) => {
            if !buf.is_null() {
                // The CRT stores into the new buffer's first byte.
                k.space.write_u8(buf, 0).map_err(|f| abort(profile, f))?;
            }
            Ok(ApiReturn::ok(0))
        }
    }
}

/// `setvbuf(stream, buf, mode, size)`.
///
/// # Errors
///
/// Aborts on faulting stream/buffer pointers.
pub fn setvbuf(
    k: &mut Kernel,
    profile: LibcProfile,
    stream: SimPtr,
    buf: SimPtr,
    mode: i32,
    size: u64,
) -> ApiResult {
    k.charge_call();
    match resolve_file(k, profile, stream, "setvbuf", false)? {
        FileRef::SystemDead => Ok(ApiReturn::ok(0)),
        FileRef::Error(e) => Ok(ApiReturn::err(-1, e)),
        FileRef::Live(_) => {
            // _IOFBF=0, _IOLBF=1, _IONBF=2.
            if !(0..=2).contains(&mode) {
                return Ok(ApiReturn::err(-1, EINVAL));
            }
            if !buf.is_null() && size > 0 {
                k.space.write_u8(buf, 0).map_err(|f| abort(profile, f))?;
            }
            Ok(ApiReturn::ok(0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_kernel::kernel::MachineFlavor;
    use sim_kernel::variant::OsVariant;

    fn glibc() -> LibcProfile {
        LibcProfile::for_os(OsVariant::Linux)
    }

    fn msvcrt() -> LibcProfile {
        LibcProfile::for_os(OsVariant::Win98)
    }

    fn ce() -> LibcProfile {
        LibcProfile::for_os(OsVariant::WinCe)
    }

    fn put(k: &mut Kernel, s: &str) -> SimPtr {
        let p = k.alloc_user(s.len() as u64 + 1, "str");
        cstr::write_cstr(&mut k.space, p, s, U).unwrap();
        p
    }

    /// A "string buffer typecast to FILE*": readable garbage.
    fn garbage_file(k: &mut Kernel) -> SimPtr {
        put(k, "this is not a FILE structure at all")
    }

    fn open_file(k: &mut Kernel, profile: LibcProfile, path: &str) -> SimPtr {
        let p = put(k, path);
        let m = put(k, "w+");
        let r = fopen(k, profile, p, m).unwrap();
        assert_ne!(r.value, 0, "fopen failed: {:?}", r.error);
        SimPtr::new(r.value as u64)
    }

    #[test]
    fn fopen_fclose_roundtrip() {
        let mut k = Kernel::new();
        let fp = open_file(&mut k, glibc(), "/tmp/a.txt");
        assert!(k.fs.exists("/tmp/a.txt"));
        assert_eq!(fclose(&mut k, glibc(), fp).unwrap().value, 0);
        // glibc freed the FILE: reuse faults.
        assert!(ftell(&mut k, glibc(), fp).is_err());
    }

    #[test]
    fn msvcrt_fclose_keeps_slot_detectable() {
        let mut k = Kernel::with_flavor(MachineFlavor::Windows);
        let fp = open_file(&mut k, msvcrt(), "C:\\TEMP\\b.txt");
        fclose(&mut k, msvcrt(), fp).unwrap();
        // Reuse is validated to EOF, not a fault.
        let r = ftell(&mut k, msvcrt(), fp).unwrap();
        assert_eq!(r.value, -1);
        assert_eq!(r.error, Some(EBADF));
    }

    #[test]
    fn fopen_bad_mode_and_missing_file() {
        let mut k = Kernel::new();
        let p = put(&mut k, "/tmp/x");
        let bad_mode = put(&mut k, "q");
        assert_eq!(fopen(&mut k, glibc(), p, bad_mode).unwrap().error, Some(EINVAL));
        let rd = put(&mut k, "r");
        let missing = put(&mut k, "/tmp/nonexistent");
        let r = fopen(&mut k, glibc(), missing, rd).unwrap();
        assert_eq!(r.value, 0);
        assert_eq!(r.error, Some(errno::ENOENT));
    }

    #[test]
    fn fopen_null_path_aborts() {
        let mut k = Kernel::new();
        let m = put(&mut k, "r");
        assert!(fopen(&mut k, glibc(), SimPtr::NULL, m).is_err());
        assert!(fopen(&mut k, msvcrt(), SimPtr::NULL, m).is_err());
    }

    #[test]
    fn garbage_file_ptr_splits_three_ways() {
        // glibc: probes the garbage buffer pointer → abort.
        let mut k1 = Kernel::new();
        let g1 = garbage_file(&mut k1);
        assert!(ftell(&mut k1, glibc(), g1).is_err());
        assert!(k1.is_alive());

        // MSVCRT: validates → EOF + errno, machine fine.
        let mut k2 = Kernel::with_flavor(MachineFlavor::Windows);
        let g2 = garbage_file(&mut k2);
        let r = ftell(&mut k2, msvcrt(), g2).unwrap();
        assert_eq!(r.error, Some(EBADF));
        assert!(k2.is_alive());

        // CE: kernel trusts the garbage handle → the machine dies.
        let mut k3 = Kernel::with_flavor(MachineFlavor::WindowsStrictAlign);
        let g3 = garbage_file(&mut k3);
        let _ = ftell(&mut k3, ce(), g3).unwrap();
        assert!(!k3.is_alive());
        assert_eq!(k3.crash.info().unwrap().call, "ftell");
    }

    #[test]
    fn ce_crashes_on_all_sensitive_file_functions() {
        for func in ["fclose", "fflush", "fseek", "ftell", "clearerr", "freopen"] {
            let mut k = Kernel::with_flavor(MachineFlavor::WindowsStrictAlign);
            let g = garbage_file(&mut k);
            let path = put(&mut k, "C:\\TEMP\\f");
            let mode = put(&mut k, "w");
            let _ = match func {
                "fclose" => fclose(&mut k, ce(), g),
                "fflush" => fflush(&mut k, ce(), g),
                "fseek" => fseek(&mut k, ce(), g, 0, 0),
                "ftell" => ftell(&mut k, ce(), g),
                "clearerr" => clearerr(&mut k, ce(), g),
                "freopen" => freopen(&mut k, ce(), path, mode, g),
                _ => unreachable!(),
            };
            assert!(!k.is_alive(), "{func} should crash CE");
        }
    }

    #[test]
    fn ce_insensitive_functions_survive_garbage() {
        // feof/ferror/rewind are not in Table 3's CE rows.
        let mut k = Kernel::with_flavor(MachineFlavor::WindowsStrictAlign);
        let g = garbage_file(&mut k);
        let _ = feof(&mut k, ce(), g).unwrap();
        let _ = ferror(&mut k, ce(), g).unwrap();
        assert!(k.is_alive());
    }

    #[test]
    fn null_file_ptr_aborts_not_crashes_even_on_ce() {
        let mut k = Kernel::with_flavor(MachineFlavor::WindowsStrictAlign);
        assert!(ftell(&mut k, ce(), SimPtr::NULL).is_err());
        assert!(k.is_alive());
    }

    #[test]
    fn seek_tell_roundtrip() {
        let mut k = Kernel::new();
        let fp = open_file(&mut k, glibc(), "/tmp/seek.txt");
        assert_eq!(fseek(&mut k, glibc(), fp, 0, 2).unwrap().value, 0); // SEEK_END
        assert_eq!(ftell(&mut k, glibc(), fp).unwrap().value, 0);
        assert_eq!(fseek(&mut k, glibc(), fp, 100, 0).unwrap().value, 0);
        assert_eq!(ftell(&mut k, glibc(), fp).unwrap().value, 100);
        // Bad whence is a robust error.
        let r = fseek(&mut k, glibc(), fp, 0, 99).unwrap();
        assert_eq!(r.error, Some(EINVAL));
        rewind(&mut k, glibc(), fp).unwrap();
        assert_eq!(ftell(&mut k, glibc(), fp).unwrap().value, 0);
    }

    #[test]
    fn fgetpos_fsetpos() {
        let mut k = Kernel::new();
        let fp = open_file(&mut k, glibc(), "/tmp/pos.txt");
        fseek(&mut k, glibc(), fp, 42, 0).unwrap();
        let pos = k.alloc_user(8, "fpos_t");
        assert_eq!(fgetpos(&mut k, glibc(), fp, pos).unwrap().value, 0);
        fseek(&mut k, glibc(), fp, 0, 0).unwrap();
        assert_eq!(fsetpos(&mut k, glibc(), fp, pos).unwrap().value, 0);
        assert_eq!(ftell(&mut k, glibc(), fp).unwrap().value, 42);
        // NULL pos pointer aborts.
        assert!(fgetpos(&mut k, glibc(), fp, SimPtr::NULL).is_err());
        assert!(fsetpos(&mut k, glibc(), fp, SimPtr::NULL).is_err());
    }

    #[test]
    fn flags_feof_ferror_clearerr() {
        let mut k = Kernel::new();
        let fp = open_file(&mut k, glibc(), "/tmp/flags.txt");
        assert_eq!(feof(&mut k, glibc(), fp).unwrap().value, 0);
        mark_eof(&mut k, fp);
        mark_error(&mut k, fp);
        assert_eq!(feof(&mut k, glibc(), fp).unwrap().value, 1);
        assert_eq!(ferror(&mut k, glibc(), fp).unwrap().value, 1);
        clearerr(&mut k, glibc(), fp).unwrap();
        assert_eq!(feof(&mut k, glibc(), fp).unwrap().value, 0);
        assert_eq!(ferror(&mut k, glibc(), fp).unwrap().value, 0);
    }

    #[test]
    fn remove_and_rename() {
        let mut k = Kernel::new();
        k.fs.create_file("/tmp/r1", vec![]).unwrap();
        let from = put(&mut k, "/tmp/r1");
        let to = put(&mut k, "/tmp/r2");
        assert_eq!(rename(&mut k, glibc(), from, to).unwrap().value, 0);
        assert!(k.fs.exists("/tmp/r2"));
        assert_eq!(remove(&mut k, glibc(), to).unwrap().value, 0);
        assert!(!k.fs.exists("/tmp/r2"));
        let r = remove(&mut k, glibc(), to).unwrap();
        assert_eq!(r.error, Some(errno::ENOENT));
        assert!(remove(&mut k, glibc(), SimPtr::NULL).is_err());
    }

    #[test]
    fn tmpfile_and_tmpnam() {
        let mut k = Kernel::new();
        let r1 = tmpfile(&mut k, glibc()).unwrap();
        let r2 = tmpfile(&mut k, glibc()).unwrap();
        assert_ne!(r1.value, 0);
        assert_ne!(r1.value, r2.value);
        let buf = k.alloc_user(64, "name");
        let r = tmpnam(&mut k, glibc(), buf).unwrap();
        assert_eq!(r.value as u64, buf.addr());
        let name = cstr::read_cstr(&k.space, buf, U).unwrap();
        assert!(name.starts_with(b"/tmp/"));
        // NULL buffer is legal (static buffer).
        let r = tmpnam(&mut k, glibc(), SimPtr::NULL).unwrap();
        assert_ne!(r.value, 0);
    }

    #[test]
    fn setbuf_setvbuf() {
        let mut k = Kernel::new();
        let fp = open_file(&mut k, glibc(), "/tmp/buf.txt");
        assert_eq!(setbuf(&mut k, glibc(), fp, SimPtr::NULL).unwrap().value, 0);
        let buf = k.alloc_user(512, "iobuf");
        assert_eq!(setbuf(&mut k, glibc(), fp, buf).unwrap().value, 0);
        assert_eq!(setvbuf(&mut k, glibc(), fp, buf, 0, 512).unwrap().value, 0);
        assert_eq!(
            setvbuf(&mut k, glibc(), fp, buf, 9, 512).unwrap().error,
            Some(EINVAL)
        );
        // Writing through a bad buffer pointer aborts.
        assert!(setbuf(&mut k, glibc(), fp, SimPtr::new(0x20)).is_err());
    }

    #[test]
    fn ungetc_slot() {
        let mut k = Kernel::new();
        let fp = open_file(&mut k, glibc(), "/tmp/u.txt");
        assert!(take_ungetc(&mut k, fp).is_none());
        assert!(push_ungetc(&mut k, fp, b'z'));
        assert!(!push_ungetc(&mut k, fp, b'y')); // one slot only
        assert_eq!(take_ungetc(&mut k, fp), Some(b'z'));
        assert!(take_ungetc(&mut k, fp).is_none());
    }
}
