//! UNICODE (wide-character) twins for Windows CE.
//!
//! Windows CE prefers the 16-bit UNICODE character set; 26 of the paper's C
//! functions exist in both ASCII and UNICODE forms there, and the paper
//! reports the UNICODE rates. Behaviour tracked from the paper: the wide
//! functions fail like their narrow siblings *plus* misalignment hazards on
//! the strict-alignment CE hardware, and `_tcsncpy` — the UNICODE
//! `strncpy` — has a Catastrophic failure the ASCII version does not
//! (Table 3, "(UNICODE) *_tcsncpy").

use crate::profile::LibcProfile;
use crate::string::abort;
use sim_core::addr::PrivilegeLevel;
use sim_core::cstr;
use sim_core::SimPtr;
use sim_kernel::outcome::{ApiResult, ApiReturn};
use sim_kernel::Kernel;

const U: PrivilegeLevel = PrivilegeLevel::User;

fn read_wide(k: &Kernel, profile: LibcProfile, p: SimPtr) -> Result<Vec<u16>, sim_kernel::ApiAbort> {
    cstr::read_wstr(&k.space, p, U).map_err(|f| abort(profile, f))
}

/// `wcslen(s)`.
///
/// # Errors
///
/// Aborts when the scan faults (including misalignment on CE hardware).
pub fn wcslen(k: &mut Kernel, profile: LibcProfile, s: SimPtr) -> ApiResult {
    k.charge_call();
    let units = read_wide(k, profile, s)?;
    Ok(ApiReturn::ok(units.len() as i64))
}

/// `wcscpy(dst, src)`.
///
/// # Errors
///
/// Aborts when reading `src` or writing `dst` faults.
pub fn wcscpy(k: &mut Kernel, profile: LibcProfile, dst: SimPtr, src: SimPtr) -> ApiResult {
    k.charge_call();
    let units = read_wide(k, profile, src)?;
    let mut cursor = dst;
    for u in &units {
        k.space.write_u16(cursor, *u).map_err(|f| abort(profile, f))?;
        cursor = cursor.offset(2);
    }
    k.space.write_u16(cursor, 0).map_err(|f| abort(profile, f))?;
    Ok(ApiReturn::ok(dst.addr() as i64))
}

/// `wcscat(dst, src)`.
///
/// # Errors
///
/// Aborts when any scan or write faults.
pub fn wcscat(k: &mut Kernel, profile: LibcProfile, dst: SimPtr, src: SimPtr) -> ApiResult {
    k.charge_call();
    let head = read_wide(k, profile, dst)?;
    let tail = read_wide(k, profile, src)?;
    let mut cursor = dst.offset(head.len() as u64 * 2);
    for u in &tail {
        k.space.write_u16(cursor, *u).map_err(|f| abort(profile, f))?;
        cursor = cursor.offset(2);
    }
    k.space.write_u16(cursor, 0).map_err(|f| abort(profile, f))?;
    Ok(ApiReturn::ok(dst.addr() as i64))
}

/// `wcscmp(a, b)`.
///
/// # Errors
///
/// Aborts when a scanned unit faults before a deciding mismatch.
pub fn wcscmp(k: &mut Kernel, profile: LibcProfile, a: SimPtr, b: SimPtr) -> ApiResult {
    k.charge_call();
    let mut off = 0u64;
    loop {
        let ua = k
            .space
            .read_u16(a.offset(off))
            .map_err(|f| abort(profile, f))?;
        let ub = k
            .space
            .read_u16(b.offset(off))
            .map_err(|f| abort(profile, f))?;
        if ua != ub {
            return Ok(ApiReturn::ok(if ua < ub { -1 } else { 1 }));
        }
        if ua == 0 {
            return Ok(ApiReturn::ok(0));
        }
        off += 2;
    }
}

/// `wcschr(s, c)`.
///
/// # Errors
///
/// Aborts when the scan faults.
pub fn wcschr(k: &mut Kernel, profile: LibcProfile, s: SimPtr, c: i32) -> ApiResult {
    k.charge_call();
    let needle = (c & 0xFFFF) as u16;
    let mut off = 0u64;
    loop {
        let u = k
            .space
            .read_u16(s.offset(off))
            .map_err(|f| abort(profile, f))?;
        if u == needle {
            return Ok(ApiReturn::ok(s.offset(off).addr() as i64));
        }
        if u == 0 {
            return Ok(ApiReturn::ok(0));
        }
        off += 2;
    }
}

/// `_tcsncpy(dst, src, n)` — the UNICODE `strncpy`: copies and pads out to
/// `n` *units*.
///
/// On Windows CE under harness-accumulated state, the runaway pad write
/// corrupts system memory and crashes the machine — the Table 3 entry
/// "(UNICODE) `*_tcsncpy`", which the ASCII `strncpy` on CE does **not**
/// share.
///
/// # Errors
///
/// Aborts when a read or write faults (except on the CE Catastrophic
/// path).
pub fn tcsncpy(k: &mut Kernel, profile: LibcProfile, dst: SimPtr, src: SimPtr, n: u64) -> ApiResult {
    k.charge_call();
    let units = read_wide(k, profile, src)?;
    for i in 0..n {
        let u = units.get(i as usize).copied().unwrap_or(0);
        if let Err(fault) = k.space.write_u16(dst.offset(i * 2), u) {
            if profile.tcsncpy_can_crash_system_on(k) {
                k.crash.panic(
                    "_tcsncpy",
                    "runaway UNICODE pad write corrupted system memory",
                    Some(fault),
                );
                return Ok(ApiReturn::ok(dst.addr() as i64));
            }
            return Err(abort(profile, fault));
        }
    }
    Ok(ApiReturn::ok(dst.addr() as i64))
}

/// `_wfopen(path, mode)` — wide-path `fopen`.
///
/// # Errors
///
/// Aborts when either wide string faults.
pub fn wfopen(k: &mut Kernel, profile: LibcProfile, path: SimPtr, mode: SimPtr) -> ApiResult {
    k.charge_call();
    let path_units = read_wide(k, profile, path)?;
    let mode_units = read_wide(k, profile, mode)?;
    let path_s: String = char::decode_utf16(path_units.iter().copied())
        .map(|c| c.unwrap_or('?'))
        .collect();
    let mode_s: String = char::decode_utf16(mode_units.iter().copied())
        .map(|c| c.unwrap_or('?'))
        .collect();
    // Reuse the narrow fopen by writing temporaries.
    let pn = k.alloc_user(path_s.len() as u64 + 1, "wfopen-path");
    cstr::write_cstr(&mut k.space, pn, &path_s, U).map_err(|f| abort(profile, f))?;
    let pm = k.alloc_user(mode_s.len() as u64 + 1, "wfopen-mode");
    cstr::write_cstr(&mut k.space, pm, &mode_s, U).map_err(|f| abort(profile, f))?;
    crate::stdio::fopen(k, profile, pn, pm)
}

/// `_wfreopen(path, mode, stream)` — the CE Catastrophic file-management
/// entry of Table 3.
///
/// # Errors
///
/// Aborts on faulting arguments; Catastrophic on CE garbage streams.
pub fn wfreopen(
    k: &mut Kernel,
    profile: LibcProfile,
    path: SimPtr,
    mode: SimPtr,
    stream: SimPtr,
) -> ApiResult {
    k.charge_call();
    let path_units = read_wide(k, profile, path)?;
    let mode_units = read_wide(k, profile, mode)?;
    let path_s: String = char::decode_utf16(path_units.iter().copied())
        .map(|c| c.unwrap_or('?'))
        .collect();
    let mode_s: String = char::decode_utf16(mode_units.iter().copied())
        .map(|c| c.unwrap_or('?'))
        .collect();
    let pn = k.alloc_user(path_s.len() as u64 + 1, "wfreopen-path");
    cstr::write_cstr(&mut k.space, pn, &path_s, U).map_err(|f| abort(profile, f))?;
    let pm = k.alloc_user(mode_s.len() as u64 + 1, "wfreopen-mode");
    cstr::write_cstr(&mut k.space, pm, &mode_s, U).map_err(|f| abort(profile, f))?;
    crate::stdio::freopen(k, profile, pn, pm, stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_kernel::kernel::MachineFlavor;
    use sim_kernel::variant::OsVariant;

    fn ce() -> LibcProfile {
        LibcProfile::for_os(OsVariant::WinCe)
    }

    fn ce_kernel() -> Kernel {
        Kernel::with_flavor(MachineFlavor::WindowsStrictAlign)
    }

    fn put_wide(k: &mut Kernel, s: &str) -> SimPtr {
        let p = k.alloc_user((s.len() as u64 + 1) * 2, "wstr");
        cstr::write_wstr(&mut k.space, p, s, U).unwrap();
        p
    }

    #[test]
    fn wide_roundtrip() {
        let mut k = ce_kernel();
        let s = put_wide(&mut k, "jornada");
        assert_eq!(wcslen(&mut k, ce(), s).unwrap().value, 7);
        let dst = k.alloc_user(32, "dst");
        wcscpy(&mut k, ce(), dst, s).unwrap();
        assert_eq!(wcscmp(&mut k, ce(), dst, s).unwrap().value, 0);
        let extra = put_wide(&mut k, "820");
        wcscat(&mut k, ce(), dst, extra).unwrap();
        assert_eq!(wcslen(&mut k, ce(), dst).unwrap().value, 10);
        let hit = wcschr(&mut k, ce(), dst, i32::from(b'8')).unwrap().value as u64;
        assert_eq!(hit, dst.addr() + 14);
    }

    #[test]
    fn null_and_misaligned_pointers_abort() {
        let mut k = ce_kernel();
        assert!(wcslen(&mut k, ce(), SimPtr::NULL).is_err());
        let s = put_wide(&mut k, "x");
        // Odd pointer on strict-alignment hardware: misalignment abort.
        let err = wcslen(&mut k, ce(), s.offset(1)).unwrap_err();
        match err {
            sim_kernel::ApiAbort::Exception { code, .. } => {
                assert_eq!(code, sim_kernel::outcome::seh::DATATYPE_MISALIGNMENT);
            }
            other => panic!("expected misalignment exception, got {other:?}"),
        }
    }

    #[test]
    fn tcsncpy_crashes_ce_with_residue_only() {
        let mut k = ce_kernel();
        let dst = k.alloc_user(8, "dst");
        let src = put_wide(&mut k, "ab");
        // Normal case works.
        tcsncpy(&mut k, ce(), dst, src, 4).unwrap();
        assert_eq!(wcslen(&mut k, ce(), dst).unwrap().value, 2);
        // Huge n without residue: abort.
        assert!(tcsncpy(&mut k, ce(), dst, src, 1 << 20).is_err());
        assert!(k.is_alive());
        // With residue: Catastrophic.
        k.residue = 5;
        tcsncpy(&mut k, ce(), dst, src, 1 << 20).unwrap();
        assert!(!k.is_alive());
        assert_eq!(k.crash.info().unwrap().call, "_tcsncpy");
    }

    #[test]
    fn tcsncpy_narrow_os_never_crashes() {
        let mut k = Kernel::new();
        k.residue = 9;
        let dst = k.alloc_user(8, "dst");
        let src = put_wide(&mut k, "ab");
        let lin = LibcProfile::for_os(OsVariant::Linux);
        assert!(tcsncpy(&mut k, lin, dst, src, 1 << 20).is_err());
        assert!(k.is_alive());
    }

    #[test]
    fn wfopen_opens_files() {
        let mut k = ce_kernel();
        let path = put_wide(&mut k, "C:\\TEMP\\wide.txt");
        let mode = put_wide(&mut k, "w");
        let r = wfopen(&mut k, ce(), path, mode).unwrap();
        assert_ne!(r.value, 0);
        assert!(k.fs.exists("C:\\TEMP\\wide.txt"));
    }

    #[test]
    fn wfreopen_crashes_ce_on_garbage_stream() {
        let mut k = ce_kernel();
        let path = put_wide(&mut k, "C:\\TEMP\\w2.txt");
        let mode = put_wide(&mut k, "w");
        // A narrow string buffer typecast to FILE*.
        let garbage = k.alloc_user(40, "garbage");
        cstr::write_cstr(&mut k.space, garbage, "not a FILE structure here at all", U).unwrap();
        let _ = wfreopen(&mut k, ce(), path, mode, garbage);
        assert!(!k.is_alive());
    }
}
