//! `<ctype.h>` — character classification and conversion.
//!
//! The paper's single starkest C-library contrast: **Linux has a >30 %
//! Abort rate on this group, every Windows variant has 0 %**, because
//! glibc's macros expand to an unchecked lookup `__ctype_b[(int)(c)]`
//! while the MSVC CRTs bounds-check the index. The simulation reproduces
//! the *mechanism*: the glibc path computes a table address from the
//! argument and performs a (simulated) load that faults when the index
//! leaves the table's data page; the MSVCRT path checks first.

use crate::profile::LibcProfile;
use sim_core::addr::PrivilegeLevel;
use sim_core::fault::{AccessKind, Fault, ViolationCause};
use sim_kernel::outcome::{ApiAbort, ApiResult, ApiReturn};
use sim_kernel::Kernel;

/// Simulated address of glibc's `__ctype_b` table (inside libc's data
/// segment).
const GLIBC_CTYPE_TABLE: i64 = 0x0800_1000;

/// The table proper covers `EOF` (−1) through 255. Indexes beyond it but
/// still inside libc's data page read *garbage* (wrong answers, no fault);
/// indexes outside the page fault. One 4 KiB page either side.
const PAGE_SLACK: i64 = 4096;

/// Character classes computed the way the real tables encode them.
fn classify(c: u8) -> (bool, bool, bool, bool, bool, bool, bool, bool, bool, bool) {
    let ch = c as char;
    (
        ch.is_ascii_alphanumeric(),
        ch.is_ascii_alphabetic(),
        ch.is_ascii_control(),
        ch.is_ascii_digit(),
        ch.is_ascii_graphic(),
        ch.is_ascii_lowercase(),
        ch.is_ascii() && !ch.is_ascii_control(),
        ch.is_ascii_punctuation(),
        ch.is_ascii_whitespace() || c == 0x0b,
        ch.is_ascii_uppercase(),
    )
}

/// Outcome of the table access for argument `c` under `profile`.
enum Lookup {
    /// In the real table: a correct classification is available.
    InTable(u8),
    /// Inside libc's data page but off the table: garbage answer.
    Garbage,
    /// Outside the page: the load faults (glibc only).
    Fault(Fault),
    /// Bounds-checked out-of-range (Windows): the documented fallback.
    Checked,
}

fn table_lookup(profile: LibcProfile, c: i32) -> Lookup {
    if (-1..=255).contains(&c) {
        // EOF (−1) is a legal argument; it classifies as "nothing".
        return Lookup::InTable(if c < 0 { 0 } else { c as u8 });
    }
    if profile.ctype_bounds_checked() {
        return Lookup::Checked;
    }
    let c = i64::from(c);
    if (-PAGE_SLACK..=255 + PAGE_SLACK).contains(&c) {
        Lookup::Garbage
    } else {
        Lookup::Fault(Fault::AccessViolation {
            addr: (GLIBC_CTYPE_TABLE + c) as u64,
            access: AccessKind::Read,
            cause: ViolationCause::Unmapped,
            privilege: PrivilegeLevel::User,
        })
    }
}

/// Builds one `is*` function. `$pred` selects the classification bit.
macro_rules! is_fn {
    ($(#[$doc:meta])* $name:ident, $idx:tt) => {
        $(#[$doc])*
        ///
        /// # Errors
        ///
        /// On the glibc profile, arguments far outside the table fault
        /// (the >30 % Linux Abort rate of the paper's "C char" group).
        pub fn $name(k: &mut Kernel, profile: LibcProfile, c: i32) -> ApiResult {
            k.charge_call();
            match table_lookup(profile, c) {
                Lookup::InTable(b) => {
                    if c == -1 {
                        return Ok(ApiReturn::ok(0));
                    }
                    let bits = classify(b);
                    Ok(ApiReturn::ok(i64::from(bits.$idx)))
                }
                // Deterministic "garbage" read: whatever parity the address
                // has. Wrong answer, no error — exactly how an unchecked
                // table read misbehaves quietly.
                Lookup::Garbage => Ok(ApiReturn::ok(i64::from(c & 1 == 0))),
                Lookup::Fault(f) => Err(ApiAbort::signal_from_fault(f)),
                Lookup::Checked => Ok(ApiReturn::ok(0)),
            }
        }
    };
}

is_fn!(
    /// `isalnum(c)`.
    isalnum, 0
);
is_fn!(
    /// `isalpha(c)`.
    isalpha, 1
);
is_fn!(
    /// `iscntrl(c)`.
    iscntrl, 2
);
is_fn!(
    /// `isdigit(c)`.
    isdigit, 3
);
is_fn!(
    /// `isgraph(c)`.
    isgraph, 4
);
is_fn!(
    /// `islower(c)`.
    islower, 5
);
is_fn!(
    /// `isprint(c)`.
    isprint, 6
);
is_fn!(
    /// `ispunct(c)`.
    ispunct, 7
);
is_fn!(
    /// `isspace(c)`.
    isspace, 8
);
is_fn!(
    /// `isupper(c)`.
    isupper, 9
);

/// `isxdigit(c)`.
///
/// # Errors
///
/// Same fault conditions as the other classification functions.
pub fn isxdigit(k: &mut Kernel, profile: LibcProfile, c: i32) -> ApiResult {
    k.charge_call();
    match table_lookup(profile, c) {
        Lookup::InTable(b) => Ok(ApiReturn::ok(i64::from(
            c != -1 && (b as char).is_ascii_hexdigit(),
        ))),
        Lookup::Garbage => Ok(ApiReturn::ok(i64::from(c & 1 == 0))),
        Lookup::Fault(f) => Err(ApiAbort::signal_from_fault(f)),
        Lookup::Checked => Ok(ApiReturn::ok(0)),
    }
}

/// `isascii(c)` — defined for **all** `int` values by POSIX (a pure range
/// check, no table), so it never faults anywhere.
///
/// # Errors
///
/// None; this call is robust on every profile.
pub fn isascii(k: &mut Kernel, _profile: LibcProfile, c: i32) -> ApiResult {
    k.charge_call();
    Ok(ApiReturn::ok(i64::from((0..=127).contains(&c))))
}

/// `toascii(c)` — pure bit mask, robust everywhere.
///
/// # Errors
///
/// None; this call is robust on every profile.
pub fn toascii(k: &mut Kernel, _profile: LibcProfile, c: i32) -> ApiResult {
    k.charge_call();
    Ok(ApiReturn::ok(i64::from(c & 0x7F)))
}

fn to_common(k: &mut Kernel, profile: LibcProfile, c: i32, upper: bool) -> ApiResult {
    k.charge_call();
    match table_lookup(profile, c) {
        Lookup::InTable(b) => {
            if c == -1 {
                return Ok(ApiReturn::ok(-1));
            }
            let ch = b as char;
            let converted = if upper {
                ch.to_ascii_uppercase()
            } else {
                ch.to_ascii_lowercase()
            };
            Ok(ApiReturn::ok(converted as i64))
        }
        Lookup::Garbage => Ok(ApiReturn::ok(i64::from(c ^ 0x20))),
        Lookup::Fault(f) => Err(ApiAbort::signal_from_fault(f)),
        Lookup::Checked => Ok(ApiReturn::ok(i64::from(c))),
    }
}

/// `toupper(c)`.
///
/// # Errors
///
/// Same fault conditions as the classification functions on glibc.
pub fn toupper(k: &mut Kernel, profile: LibcProfile, c: i32) -> ApiResult {
    to_common(k, profile, c, true)
}

/// `tolower(c)`.
///
/// # Errors
///
/// Same fault conditions as the classification functions on glibc.
pub fn tolower(k: &mut Kernel, profile: LibcProfile, c: i32) -> ApiResult {
    to_common(k, profile, c, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_kernel::variant::OsVariant;

    fn glibc() -> LibcProfile {
        LibcProfile::for_os(OsVariant::Linux)
    }

    fn msvcrt() -> LibcProfile {
        LibcProfile::for_os(OsVariant::WinNt4)
    }

    #[test]
    fn correct_classification_in_range() {
        let mut k = Kernel::new();
        for p in [glibc(), msvcrt()] {
            assert_eq!(isalpha(&mut k, p, i32::from(b'a')).unwrap().value, 1);
            assert_eq!(isalpha(&mut k, p, i32::from(b'1')).unwrap().value, 0);
            assert_eq!(isdigit(&mut k, p, i32::from(b'7')).unwrap().value, 1);
            assert_eq!(isspace(&mut k, p, i32::from(b'\t')).unwrap().value, 1);
            assert_eq!(isupper(&mut k, p, i32::from(b'Q')).unwrap().value, 1);
            assert_eq!(
                toupper(&mut k, p, i32::from(b'q')).unwrap().value,
                i64::from(b'Q')
            );
            assert_eq!(
                tolower(&mut k, p, i32::from(b'Q')).unwrap().value,
                i64::from(b'q')
            );
        }
    }

    #[test]
    fn eof_is_legal_everywhere() {
        let mut k = Kernel::new();
        for p in [glibc(), msvcrt()] {
            assert_eq!(isalpha(&mut k, p, -1).unwrap().value, 0);
            assert_eq!(toupper(&mut k, p, -1).unwrap().value, -1);
        }
    }

    #[test]
    fn glibc_faults_on_far_out_of_range() {
        let mut k = Kernel::new();
        // The exact exceptional values Ballista's int pool carries.
        for c in [i32::MAX, i32::MIN, 0x10000, -70_000] {
            let err = isalpha(&mut k, glibc(), c).unwrap_err();
            assert!(
                matches!(err, ApiAbort::Signal { signo: 11, .. }),
                "isalpha({c}) should SIGSEGV on glibc, got {err:?}"
            );
            assert!(toupper(&mut k, glibc(), c).is_err());
        }
    }

    #[test]
    fn glibc_near_out_of_range_is_garbage_not_fault() {
        let mut k = Kernel::new();
        // 256 and small negatives land in libc's data page: wrong answers,
        // no fault — a quiet misbehaviour, not an Abort.
        assert!(isalpha(&mut k, glibc(), 256).is_ok());
        assert!(isalpha(&mut k, glibc(), -2).is_ok());
    }

    #[test]
    fn windows_never_faults() {
        let mut k = Kernel::new();
        for os in OsVariant::ALL.into_iter().filter(|o| o.is_windows()) {
            let p = LibcProfile::for_os(os);
            for c in [i32::MAX, i32::MIN, 0x10000, -70_000, 256, -2] {
                assert_eq!(isalpha(&mut k, p, c).unwrap().value, 0, "{os} isalpha({c})");
                assert_eq!(
                    toupper(&mut k, p, c).unwrap().value,
                    i64::from(c),
                    "{os} toupper({c}) passes through"
                );
            }
        }
    }

    #[test]
    fn isascii_and_toascii_robust_everywhere() {
        let mut k = Kernel::new();
        for p in [glibc(), msvcrt()] {
            assert_eq!(isascii(&mut k, p, i32::MAX).unwrap().value, 0);
            assert_eq!(isascii(&mut k, p, 65).unwrap().value, 1);
            assert_eq!(toascii(&mut k, p, 0x1C1).unwrap().value, 0x41);
        }
    }

    #[test]
    fn xdigit() {
        let mut k = Kernel::new();
        assert_eq!(isxdigit(&mut k, glibc(), i32::from(b'f')).unwrap().value, 1);
        assert_eq!(isxdigit(&mut k, glibc(), i32::from(b'g')).unwrap().value, 0);
        assert!(isxdigit(&mut k, glibc(), i32::MIN).is_err());
        assert_eq!(isxdigit(&mut k, msvcrt(), i32::MIN).unwrap().value, 0);
    }
}
