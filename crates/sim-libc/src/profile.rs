//! Per-OS C-library behaviour profiles.
//!
//! Every robustness difference between the C libraries is expressed here as
//! a *validation policy*, never as a failure rate: the rates in the
//! reproduction's tables **emerge** from running Ballista's test pools
//! against functions that consult these predicates. Each predicate is a
//! documented, paper-sourced behavioural fact (e.g. "glibc ctype macros do
//! unchecked table lookups", "the Windows 98 CRT's `fwrite` can take down
//! the OS", "the CE CRT trusts `FILE*`-derived handles in kernel mode").

use serde::{Deserialize, Serialize};
use sim_kernel::variant::OsVariant;

/// Residue threshold above which interference-dependent vulnerabilities
/// (the `*` entries of the paper's Table 3) fire. Below it they behave like
/// their non-catastrophic fallback, which is why the paper could not
/// reproduce them outside the full test harness.
pub const RESIDUE_THRESHOLD: u32 = 3;

/// How a C library treats the `FILE*` argument of a stdio call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FilePtrPolicy {
    /// Dereference blindly; whatever fault happens, happens (glibc): bad
    /// pointers abort the task.
    Probe,
    /// Check the magic/handle table first and return `EOF`+`errno` for
    /// garbage that is at least readable; unreadable pointers still fault
    /// (MSVCRT on desktop Windows).
    Validate,
    /// Read the stream's "handle" field from user memory and hand it to a
    /// kernel helper *without validation*: a readable-garbage `FILE*`
    /// becomes a kernel-mode wild dereference — a whole-system crash
    /// (the Windows CE CRT; the root cause of 17 of its 18 Catastrophic C
    /// functions).
    KernelTrust,
}

/// The C-library personality of one OS target.
///
/// # Example
///
/// ```
/// use sim_libc::profile::LibcProfile;
/// use sim_kernel::variant::OsVariant;
///
/// let glibc = LibcProfile::for_os(OsVariant::Linux);
/// let msvcrt = LibcProfile::for_os(OsVariant::WinNt4);
/// assert!(!glibc.ctype_bounds_checked());
/// assert!(msvcrt.ctype_bounds_checked());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LibcProfile {
    /// The operating system this C library ships with.
    pub os: OsVariant,
}

impl LibcProfile {
    /// The profile for an OS target.
    #[must_use]
    pub fn for_os(os: OsVariant) -> Self {
        LibcProfile { os }
    }

    /// glibc's `ctype` macros index `__ctype_b[]` without bounds checking,
    /// so out-of-range `int` arguments read wild memory; every MSVC CRT
    /// bounds-checks the lookup (the paper: "Linux has more than a 30 %
    /// Abort failure rate for C character operations, whereas all the
    /// Windows systems have zero percent ... Windows does boundary checking
    /// on character table-lookup operations").
    #[must_use]
    pub fn ctype_bounds_checked(&self) -> bool {
        self.os.is_windows()
    }

    /// MSVC CRTs of the era leave floating-point exceptions that glibc
    /// masks: domain errors on several `<math.h>` entry points surface as
    /// hardware exceptions (Abort) instead of `errno = EDOM` + NaN.
    #[must_use]
    pub fn math_domain_raises(&self) -> bool {
        self.os.is_windows()
    }

    /// MSVCRT's `free`/`realloc` validate the block against heap metadata
    /// and silently ignore wild pointers (a **Silent** failure); glibc
    /// reads the chunk header next to the pointer, so wild `free` faults
    /// (an **Abort**). This is why the paper's C-memory Abort rates are
    /// higher on Linux.
    #[must_use]
    pub fn heap_free_validates(&self) -> bool {
        self.os.is_windows()
    }

    /// How `FILE*` arguments are treated (see [`FilePtrPolicy`]).
    #[must_use]
    pub fn file_ptr_policy(&self) -> FilePtrPolicy {
        match self.os {
            OsVariant::Linux => FilePtrPolicy::Probe,
            OsVariant::WinCe => FilePtrPolicy::KernelTrust,
            _ => FilePtrPolicy::Validate,
        }
    }

    /// glibc's `strtok` tolerates a `NULL` string argument when no token
    /// scan is in progress (returns `NULL`); MSVCRT dereferences it. One of
    /// the C-string differences that leaves Linux with the *lower* Abort
    /// rate in that group.
    #[must_use]
    pub fn strtok_null_checked(&self) -> bool {
        !self.os.is_windows()
    }

    /// glibc normalizes out-of-range `struct tm` fields in `asctime` and
    /// `mktime`; MSVC's `asctime` formats them into a fixed 26-byte static
    /// buffer, and absurd field values overrun it (Abort). Another
    /// Windows-higher C-library group (C time).
    #[must_use]
    pub fn asctime_checks_ranges(&self) -> bool {
        !self.os.is_windows()
    }

    /// The Windows 98 CRT's `fwrite` could crash the machine, but only
    /// under harness-accumulated state (Table 3 entry `*fwrite`, Windows 98
    /// column only — fixed in 98 SE, absent on 95).
    #[must_use]
    pub fn fwrite_can_crash_system(&self, residue: u32) -> bool {
        self.os == OsVariant::Win98 && residue >= RESIDUE_THRESHOLD
    }

    /// [`Self::fwrite_can_crash_system`] against a live machine. The OS
    /// check runs first so the residue probe fires only on the one
    /// variant whose outcome can depend on it; everywhere else the case
    /// remains provably order-independent for the parallel engine.
    #[must_use]
    pub fn fwrite_can_crash_system_on(&self, k: &mut sim_kernel::Kernel) -> bool {
        self.os == OsVariant::Win98 && k.probe_residue() >= RESIDUE_THRESHOLD
    }

    /// `strncpy` (and on CE the UNICODE `_tcsncpy`) could crash Windows 98
    /// and 98 SE under harness-accumulated state (Table 3 `*strncpy`). On
    /// CE the UNICODE twin crashes outright.
    #[must_use]
    pub fn strncpy_can_crash_system(&self, residue: u32) -> bool {
        matches!(self.os, OsVariant::Win98 | OsVariant::Win98Se) && residue >= RESIDUE_THRESHOLD
    }

    /// [`Self::strncpy_can_crash_system`] with a residue probe gated on
    /// the OS check (see [`Self::fwrite_can_crash_system_on`]).
    #[must_use]
    pub fn strncpy_can_crash_system_on(&self, k: &mut sim_kernel::Kernel) -> bool {
        matches!(self.os, OsVariant::Win98 | OsVariant::Win98Se)
            && k.probe_residue() >= RESIDUE_THRESHOLD
    }

    /// CE's UNICODE `_tcsncpy` Catastrophic failure (Table 3: "(UNICODE)
    /// *_tcsncpy") — interference-dependent like its narrow sibling.
    #[must_use]
    pub fn tcsncpy_can_crash_system(&self, residue: u32) -> bool {
        self.os == OsVariant::WinCe && residue >= RESIDUE_THRESHOLD
    }

    /// [`Self::tcsncpy_can_crash_system`] with a residue probe gated on
    /// the OS check (see [`Self::fwrite_can_crash_system_on`]).
    #[must_use]
    pub fn tcsncpy_can_crash_system_on(&self, k: &mut sim_kernel::Kernel) -> bool {
        self.os == OsVariant::WinCe && k.probe_residue() >= RESIDUE_THRESHOLD
    }

    /// Windows CE does not implement the C time group at all (the paper
    /// reports no C-time results for CE).
    #[must_use]
    pub fn has_time_group(&self) -> bool {
        self.os != OsVariant::WinCe
    }

    /// Which CE stream-I/O functions die *immediately* (not
    /// interference-dependent) on a readable-garbage `FILE*`. On desktop
    /// OSes this returns false for everything.
    #[must_use]
    pub fn stdio_kernel_trust(&self) -> bool {
        self.file_ptr_policy() == FilePtrPolicy::KernelTrust
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctype_split_matches_paper() {
        assert!(!LibcProfile::for_os(OsVariant::Linux).ctype_bounds_checked());
        for os in OsVariant::ALL.into_iter().filter(|o| o.is_windows()) {
            assert!(LibcProfile::for_os(os).ctype_bounds_checked());
        }
    }

    #[test]
    fn file_ptr_policies() {
        assert_eq!(
            LibcProfile::for_os(OsVariant::Linux).file_ptr_policy(),
            FilePtrPolicy::Probe
        );
        assert_eq!(
            LibcProfile::for_os(OsVariant::Win98).file_ptr_policy(),
            FilePtrPolicy::Validate
        );
        assert_eq!(
            LibcProfile::for_os(OsVariant::WinCe).file_ptr_policy(),
            FilePtrPolicy::KernelTrust
        );
    }

    #[test]
    fn fwrite_crash_is_98_only_and_residue_gated() {
        let p98 = LibcProfile::for_os(OsVariant::Win98);
        assert!(!p98.fwrite_can_crash_system(0));
        assert!(p98.fwrite_can_crash_system(RESIDUE_THRESHOLD));
        for os in [OsVariant::Win95, OsVariant::Win98Se, OsVariant::WinNt4, OsVariant::Linux] {
            assert!(!LibcProfile::for_os(os).fwrite_can_crash_system(10));
        }
    }

    #[test]
    fn strncpy_crash_is_98_family_only() {
        assert!(LibcProfile::for_os(OsVariant::Win98).strncpy_can_crash_system(5));
        assert!(LibcProfile::for_os(OsVariant::Win98Se).strncpy_can_crash_system(5));
        assert!(!LibcProfile::for_os(OsVariant::Win95).strncpy_can_crash_system(5));
        assert!(!LibcProfile::for_os(OsVariant::Win2000).strncpy_can_crash_system(5));
        assert!(LibcProfile::for_os(OsVariant::WinCe).tcsncpy_can_crash_system(5));
        assert!(!LibcProfile::for_os(OsVariant::Win98).tcsncpy_can_crash_system(5));
    }

    #[test]
    fn ce_lacks_time_group() {
        assert!(!LibcProfile::for_os(OsVariant::WinCe).has_time_group());
        assert!(LibcProfile::for_os(OsVariant::Linux).has_time_group());
    }
}
