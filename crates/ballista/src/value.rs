//! Test values: named, typed, constructed fresh on each machine.
//!
//! A Ballista test value is more than a constant: it is a *constructor*
//! that sets up whatever machine state the value needs (create a file and
//! open it for the "valid fd" value; allocate and free a buffer for the
//! "dangling pointer" value) and then yields the raw argument word. The
//! paper's pools contain "exceptional as well as non-exceptional cases to
//! avoid successful exception handling on one parameter from masking the
//! potential effects of unsuccessful exception handling on some other
//! parameter value" — the `exceptional` flag records which is which, the
//! oracle for ground-truth Silent classification.

use sim_kernel::variant::OsVariant;
use sim_kernel::Kernel;
use std::fmt;
use std::sync::Arc;

/// The constructor: builds any needed state on the fresh machine and
/// returns the raw 64-bit argument (a pointer address, an integer, a
/// handle value, raw `f64` bits — whatever the parameter slot needs).
pub type Constructor = Arc<dyn Fn(&mut Kernel, OsVariant) -> u64 + Send + Sync>;

/// One entry in a data type's pool.
#[derive(Clone)]
pub struct TestValue {
    /// Human-readable name, e.g. `"NULL"`, `"dangling heap pointer"`.
    pub name: &'static str,
    /// Whether this value is exceptional (outside the parameter's valid
    /// domain).
    pub exceptional: bool,
    /// Builds the value on a fresh machine.
    pub make: Constructor,
}

impl TestValue {
    /// A value needing no machine state.
    #[must_use]
    pub fn constant(name: &'static str, exceptional: bool, value: u64) -> Self {
        TestValue {
            name,
            exceptional,
            make: Arc::new(move |_, _| value),
        }
    }

    /// A value built by a constructor closure.
    pub fn with<F>(name: &'static str, exceptional: bool, f: F) -> Self
    where
        F: Fn(&mut Kernel, OsVariant) -> u64 + Send + Sync + 'static,
    {
        TestValue {
            name,
            exceptional,
            make: Arc::new(f),
        }
    }
}

impl fmt::Debug for TestValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TestValue")
            .field("name", &self.name)
            .field("exceptional", &self.exceptional)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_values_need_no_state() {
        let v = TestValue::constant("zero", false, 0);
        let mut k = Kernel::new();
        assert_eq!((v.make)(&mut k, OsVariant::Linux), 0);
        assert!(!v.exceptional);
        assert!(format!("{v:?}").contains("zero"));
    }

    #[test]
    fn constructors_can_build_state() {
        let v = TestValue::with("fresh buffer", false, |k, _| {
            k.alloc_user(64, "tv").addr()
        });
        let mut k = Kernel::new();
        let a = (v.make)(&mut k, OsVariant::Linux);
        let b = (v.make)(&mut k, OsVariant::Linux);
        assert_ne!(a, 0);
        assert_ne!(a, b, "each construction yields fresh state");
    }
}
