//! Full-API campaigns and per-MuT tallies.
//!
//! A campaign runs every catalog MuT on one OS variant under the paper's
//! protocol: pool resolution, 5 000-cap sampling (identical across
//! variants), sequential execution with a shared residue session, stop on
//! Catastrophic (the crash "interrupts the testing process"), and an
//! in-isolation reproduction probe for the Table 3 `*` marks.
//!
//! # The parallel engine
//!
//! With [`CampaignConfig::parallelism`] above one, the campaign runs in
//! two phases that together reproduce the sequential semantics **bit for
//! bit** (asserted by the determinism tests):
//!
//! 1. **Clean pass** (parallel): worker threads shard the catalog at MuT
//!    granularity and execute every planned case on a zero-residue
//!    machine, recording a packed byte per case — raw outcome,
//!    exceptional-input bit, and whether the simulated OS *probed* the
//!    residue counter ([`sim_kernel::Kernel::probe_residue`]).
//! 2. **Replay pass** (sequential): the true session walks the records in
//!    catalog order. A case is re-executed only when it probed residue
//!    *and* the session residue is non-zero; everything else reuses its
//!    recorded outcome. This is sound because residue is only readable
//!    through the probe: control flow up to the first probe cannot depend
//!    on residue, so a case that did not probe at residue zero takes the
//!    identical path (and outcome) at any residue.

use crate::catalog;
use crate::crash::{self, classify, FailureClass, RawOutcome};
use crate::datatype::TypeRegistry;
use crate::exec::{
    self, reproduce_in_isolation, CaseResult, CaseRunner, Session, DEFAULT_FUEL_BUDGET,
};
use crate::journal::{CaseRecord, Journal, PlanHasher, Recovery};
use crate::muts::Mut;
use crate::sampling::{self, CaseSet, PAPER_CAP};
use crate::telemetry::{self, CaseTrace, TraceCollector};
use crate::value::TestValue;
use serde::{Content, Deserialize, Serialize};
use sim_kernel::variant::OsVariant;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How many times a contained worker panic earns the MuT a rerun on
/// rebuilt templates before the MuT is quarantined.
const MAX_MUT_RETRIES: u32 = 1;

/// Campaign knobs.
///
/// The default is the paper's protocol: 5 000-case cap, isolation
/// probes on, automatic parallelism. Every tally-relevant knob is part
/// of the journal's plan fingerprint, so resuming under a different
/// config restarts rather than misapplies.
///
/// # Example
///
/// ```
/// use ballista::campaign::CampaignConfig;
///
/// // A quick scouting config: small cap, serial, default fuel budget.
/// let cfg = CampaignConfig {
///     cap: 200,
///     parallelism: 1,
///     ..CampaignConfig::default()
/// };
/// assert_eq!(cfg.workers(), 1);
/// assert_eq!(cfg.effective_fuel_budget(), ballista::exec::DEFAULT_FUEL_BUDGET);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Per-MuT test-case cap (the paper used 5000).
    pub cap: usize,
    /// Record the per-case packed record bytes (needed for the Figure 2
    /// voting analysis; costs one byte per case).
    pub record_raw: bool,
    /// Probe crashing cases in isolation to assign the `*` mark.
    pub isolation_probe: bool,
    /// Ablation knob: reset the session residue before every test case,
    /// simulating perfect inter-test cleanup. Under perfect cleanup the
    /// paper's `*`-marked (interference-dependent) Catastrophic failures
    /// cannot fire — running a campaign both ways isolates exactly which
    /// crashes depend on harness residue.
    pub perfect_cleanup: bool,
    /// Worker threads for the clean-outcome pass. `1` keeps the exact
    /// legacy sequential control flow; `0` (the default, and what
    /// deserializing old configs yields) picks the machine's available
    /// parallelism. Tallies are bit-identical at every setting.
    #[serde(default)]
    pub parallelism: usize,
    /// Per-case watchdog fuel budget in simulated work units. `0` (the
    /// default, and what deserializing old configs yields) resolves to
    /// [`DEFAULT_FUEL_BUDGET`]; [`u64::MAX`] is effectively unlimited.
    /// Fuel is simulated work — never wall clock — so the budget yields
    /// identical outcomes on every host and at every parallelism.
    #[serde(default)]
    pub fuel_budget: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            cap: PAPER_CAP,
            record_raw: false,
            isolation_probe: true,
            perfect_cleanup: false,
            parallelism: 0,
            fuel_budget: 0,
        }
    }
}

impl CampaignConfig {
    /// The effective worker-thread count: `parallelism`, with `0`
    /// resolving to the machine's available parallelism.
    #[must_use]
    pub fn workers(&self) -> usize {
        match self.parallelism {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            n => n,
        }
    }

    /// The effective per-case fuel budget: `fuel_budget`, with `0`
    /// resolving to [`DEFAULT_FUEL_BUDGET`].
    #[must_use]
    pub fn effective_fuel_budget(&self) -> u64 {
        match self.fuel_budget {
            0 => DEFAULT_FUEL_BUDGET,
            n => n,
        }
    }
}

/// The content address of a campaign: a stable FNV-1a fingerprint of
/// everything that determines the campaign's results.
///
/// Folds in the OS variant, every result-relevant [`CampaignConfig`]
/// knob (cap, raw recording, perfect cleanup, the *effective* fuel
/// budget, the isolation-probe switch, and the raw `parallelism`
/// setting) plus the per-MuT sampling plan — MuT names and planned case
/// counts, which implicitly pin the catalog and the name-derived
/// sampling seeds. Two campaign requests share a fingerprint **iff**
/// they are the same campaign, so the fingerprint is simultaneously:
///
/// * the write-ahead journal's plan hash (a journal is resumed only
///   under a matching fingerprint — see [`crate::journal`]),
/// * the key of the content-addressed result cache
///   ([`crate::cache::ResultCache`]): any config or catalog change
///   changes the key, so stale entries are unreachable by construction,
/// * the campaign identifier the fleet server exposes over HTTP
///   (`GET /campaign/<fingerprint>` — see [`crate::server`]).
///
/// `parallelism` is hashed as the raw knob (not the resolved
/// [`CampaignConfig::workers`] count), so `parallelism: 0` ("auto")
/// fingerprints identically on every host.
///
/// Renders as (and parses from) 16 lowercase hex digits.
///
/// # Example
///
/// ```
/// use ballista::campaign::{fingerprint, CampaignConfig, CampaignFingerprint};
/// use sim_kernel::variant::OsVariant;
///
/// let cfg = CampaignConfig { cap: 200, ..CampaignConfig::default() };
/// let fp = fingerprint(OsVariant::Win95, &cfg);
/// // Hex round-trip is lossless.
/// let parsed: CampaignFingerprint = fp.to_string().parse().unwrap();
/// assert_eq!(parsed, fp);
/// // Any result-relevant knob changes the fingerprint.
/// let bigger = CampaignConfig { cap: 500, ..cfg };
/// assert_ne!(fingerprint(OsVariant::Win95, &bigger), fp);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CampaignFingerprint(u64);

impl CampaignFingerprint {
    /// Wraps a raw 64-bit fingerprint (e.g. one read back from a
    /// journal header).
    #[must_use]
    pub const fn from_u64(raw: u64) -> Self {
        CampaignFingerprint(raw)
    }

    /// The raw 64-bit value (what the journal header stores).
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for CampaignFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Parse error for [`CampaignFingerprint::from_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FingerprintParseError;

impl fmt::Display for FingerprintParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("campaign fingerprint must be exactly 16 hex digits")
    }
}

impl std::error::Error for FingerprintParseError {}

impl FromStr for CampaignFingerprint {
    type Err = FingerprintParseError;

    /// Parses the canonical 16-hex-digit form (case-insensitive). The
    /// length is checked strictly so a truncated fingerprint — say, a
    /// torn URL — cannot silently alias a different campaign.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 16 {
            return Err(FingerprintParseError);
        }
        u64::from_str_radix(s, 16)
            .map(CampaignFingerprint)
            .map_err(|_| FingerprintParseError)
    }
}

impl Serialize for CampaignFingerprint {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for CampaignFingerprint {
    fn from_content(c: &Content) -> Result<Self, serde::Error> {
        let s = c
            .as_str()
            .ok_or_else(|| serde::Error::custom("expected fingerprint string"))?;
        s.parse()
            .map_err(|e: FingerprintParseError| serde::Error::custom(e))
    }
}

/// Computes the [`CampaignFingerprint`] of `(os, cfg)` — the exact hash
/// the journaled engine stamps into its header and the result cache
/// keys on. Resolves the catalog and every per-MuT sampling plan (plans
/// come from the process-wide plan cache, so repeated calls are cheap).
#[must_use]
pub fn fingerprint(os: OsVariant, cfg: &CampaignConfig) -> CampaignFingerprint {
    let registry = catalog::registry_for(os);
    let muts = catalog::catalog_for(os);
    let preps: Vec<_> = muts.iter().map(|m| prepare(&registry, m, cfg)).collect();
    plan_fingerprint(os, cfg, &preps)
}

/// Timing and machine-provisioning counters for one campaign run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct CampaignStats {
    /// Worker threads used by the clean pass (1 = sequential path).
    pub parallelism: usize,
    /// Wall-clock for the whole campaign, milliseconds.
    pub wall_ms: f64,
    /// Executed cases per wall-clock second.
    pub cases_per_sec: f64,
    /// Machines provisioned by a full boot sequence.
    pub boots: u64,
    /// Machines provisioned by cloning a pre-booted snapshot.
    pub restores: u64,
    /// Milliseconds spent in full boots.
    pub boot_ms: f64,
    /// Milliseconds spent restoring snapshots.
    pub restore_ms: f64,
    /// Cases the replay pass re-executed because they probed residue
    /// under a non-zero session residue.
    pub replayed_cases: usize,
    /// Contained worker panics that earned a MuT a retry on rebuilt
    /// templates (absent in results written before the telemetry layer).
    #[serde(default)]
    pub quarantine_retries: u64,
    /// Journal durability syncs issued (0 for non-journaled engines;
    /// absent in results written before the telemetry layer).
    #[serde(default)]
    pub journal_fsyncs: u64,
    /// Restores served by resetting the resident machine in place —
    /// the dirty-state fast path. Subset of `restores`; absent in
    /// results written before batched execution.
    #[serde(default)]
    pub restores_fast: u64,
    /// Restores that deep-cloned the boot template (first case on a
    /// runner, legacy mode off). Subset of `restores`; absent in
    /// results written before batched execution.
    #[serde(default)]
    pub restores_full: u64,
    /// Machines provisioned for isolation probes. Counted apart from
    /// `restores`, so `restores` equals cases executed on this host
    /// (absent in results written before batched execution, where
    /// probes inflated `restores` by one per catastrophic MuT).
    #[serde(default)]
    pub probe_provisions: u64,
    /// Filesystem crash images the crashcon engine materialized (one
    /// pristine-tree clone per crash point). Counted apart from
    /// `restores_fast`/`restores_full`: a crash-point snapshot is not a
    /// machine restore, and `restores` must keep equaling executed
    /// cases. 0 for the classic campaign engines.
    #[serde(default)]
    pub crashcon_snapshots: u64,
    /// Crash images remounted into the crashcon verification kernel.
    /// 0 for the classic campaign engines.
    #[serde(default)]
    pub crashcon_remounts: u64,
}

/// Per-MuT campaign results.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MutTally {
    /// Call name.
    pub name: String,
    /// Functional grouping.
    pub group: crate::muts::FunctionGroup,
    /// Cases executed (may be short of the plan when a crash interrupted).
    pub cases: usize,
    /// Cases planned (cap or exhaustive count).
    pub planned: usize,
    /// Abort failures.
    pub aborts: usize,
    /// Restart failures.
    pub restarts: usize,
    /// Ground-truth Silent failures (success reported on exceptional
    /// inputs).
    pub silents: usize,
    /// Robust error reports.
    pub error_reports: usize,
    /// Error reports on *entirely benign* inputs — suspected Hindering
    /// failures (the call cried wolf, or reported the wrong condition).
    /// A subset of `error_reports`; the paper could detect Hindering only
    /// "in some situations", and this oracle-based count carries the same
    /// caveat: a benign-looking combination can still be semantically
    /// invalid (e.g. two valid-but-unrelated handles).
    #[serde(default)]
    pub suspected_hindering: usize,
    /// Legitimate passes (success on benign inputs).
    pub passes: usize,
    /// Whether a Catastrophic failure occurred.
    pub catastrophic: bool,
    /// Whether the crash reproduced on a pristine machine (`false` ⇒ the
    /// paper's `*`: interference-dependent).
    pub crash_reproducible_in_isolation: Option<bool>,
    /// Per-case raw outcome bytes in execution order (present when
    /// `record_raw`; used by the voting analysis).
    #[serde(skip_serializing_if = "Vec::is_empty", default)]
    pub raw_outcomes: Vec<u8>,
}

impl MutTally {
    /// Abort failure rate over executed cases.
    #[must_use]
    pub fn abort_rate(&self) -> f64 {
        if self.cases == 0 {
            0.0
        } else {
            self.aborts as f64 / self.cases as f64
        }
    }

    /// Restart failure rate over executed cases.
    #[must_use]
    pub fn restart_rate(&self) -> f64 {
        if self.cases == 0 {
            0.0
        } else {
            self.restarts as f64 / self.cases as f64
        }
    }

    /// Ground-truth Silent failure rate over executed cases.
    #[must_use]
    pub fn silent_rate(&self) -> f64 {
        if self.cases == 0 {
            0.0
        } else {
            self.silents as f64 / self.cases as f64
        }
    }

    /// Combined Abort+Restart failure rate (the paper's headline per-MuT
    /// "robustness failure rate", where Silent is reported separately).
    #[must_use]
    pub fn failure_rate(&self) -> f64 {
        self.abort_rate() + self.restart_rate()
    }

    /// One-line human summary.
    #[must_use]
    pub fn summary_line(&self) -> String {
        format!(
            "{}: {} cases, {:.1}% abort, {:.2}% restart, {:.1}% silent{}",
            self.name,
            self.cases,
            100.0 * self.abort_rate(),
            100.0 * self.restart_rate(),
            100.0 * self.silent_rate(),
            match (self.catastrophic, self.crash_reproducible_in_isolation) {
                (true, Some(true)) => ", CATASTROPHIC",
                (true, _) => ", *CATASTROPHIC (interference-dependent)",
                (false, _) => "",
            }
        )
    }
}

/// A full campaign's results on one OS.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// The OS under test.
    pub os: OsVariant,
    /// Per-MuT tallies, in catalog order.
    pub muts: Vec<MutTally>,
    /// Total test cases executed.
    pub total_cases: usize,
    /// Timing/throughput counters (absent in results produced before the
    /// parallel engine; never part of the tally bit-identity contract).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub stats: Option<CampaignStats>,
    /// Human-readable notes about degraded or resumed execution:
    /// quarantined MuTs, contained worker panics, template invalidations,
    /// journal recovery details. Empty for a clean, uninterrupted run
    /// (and never part of the tally bit-identity contract).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub warnings: Vec<String>,
    /// `true` when part of the campaign could not be executed (a MuT was
    /// quarantined after repeated harness faults), so the tallies are
    /// partial. Downstream tables must flag such data.
    #[serde(default, skip_serializing_if = "is_false")]
    pub degraded: bool,
    /// `true` when the fleet supervisor fell below full process-worker
    /// execution (worker spawn failure, quarantined slots, or a shard's
    /// retry budget exhausting) and some shards ran on the in-process
    /// pool instead. Unlike [`degraded`](Self::degraded), the tallies
    /// are still **complete and bit-identical to serial** — this marker
    /// plus the warnings only record that the process isolation was
    /// lost.
    #[serde(default, skip_serializing_if = "is_false")]
    pub fleet_degraded: bool,
}

fn is_false(b: &bool) -> bool {
    !*b
}

impl CampaignReport {
    /// Tallies for one functional group.
    #[must_use]
    pub fn group(&self, group: crate::muts::FunctionGroup) -> Vec<&MutTally> {
        self.muts.iter().filter(|m| m.group == group).collect()
    }

    /// Names of MuTs with Catastrophic failures.
    #[must_use]
    pub fn catastrophic_muts(&self) -> Vec<&MutTally> {
        self.muts.iter().filter(|m| m.catastrophic).collect()
    }
}

/// Resolves a MuT's parameter pools against the registry.
#[must_use]
pub fn resolve_pools(registry: &TypeRegistry, mut_: &Mut) -> Vec<Vec<TestValue>> {
    mut_.params.iter().map(|ty| registry.pool(ty)).collect()
}

/// Runs the campaign for a single MuT.
#[must_use]
pub fn run_mut_campaign(os: OsVariant, mut_: &Mut, cfg: &CampaignConfig) -> MutTally {
    let registry = catalog::registry_for(os);
    run_mut_campaign_with(os, mut_, &registry, cfg, &mut Session::new())
}

/// A MuT with its resolved pools and (shared) sampling plan — computed
/// once and reused by both engine phases and, via the plan cache, across
/// all variants running the same catalog signature.
pub(crate) struct PreparedMut<'a> {
    pub(crate) mut_: &'a Mut,
    pub(crate) pools: Vec<Vec<TestValue>>,
    pub(crate) plan: Arc<CaseSet>,
}

pub(crate) fn prepare<'a>(
    registry: &TypeRegistry,
    mut_: &'a Mut,
    cfg: &CampaignConfig,
) -> PreparedMut<'a> {
    let pools = resolve_pools(registry, mut_);
    let plan = if pools.is_empty() {
        Arc::new(sampling::single_case())
    } else {
        let dims: Vec<usize> = pools.iter().map(Vec::len).collect();
        sampling::enumerate_shared(&dims, cfg.cap, mut_.name)
    };
    PreparedMut { mut_, pools, plan }
}

pub(crate) fn empty_tally(mut_: &Mut, planned: usize) -> MutTally {
    MutTally {
        name: mut_.name.to_owned(),
        group: mut_.group,
        cases: 0,
        planned,
        aborts: 0,
        restarts: 0,
        silents: 0,
        error_reports: 0,
        passes: 0,
        catastrophic: false,
        crash_reproducible_in_isolation: None,
        raw_outcomes: Vec::new(),
        suspected_hindering: 0,
    }
}

/// Folds one case result into the tally. Returns `true` on Catastrophic —
/// the caller must run the isolation probe and stop this MuT. Single
/// source of tally semantics for both the sequential and parallel paths,
/// so they cannot drift apart.
fn apply_case(tally: &mut MutTally, cfg: &CampaignConfig, result: &CaseResult) -> bool {
    telemetry::on_case_applied(result.class);
    tally.cases += 1;
    if cfg.record_raw {
        tally.raw_outcomes.push(crash::pack_case(
            result.raw,
            result.any_exceptional,
            result.residue_probed,
        ));
    }
    match result.class {
        FailureClass::Catastrophic => {
            tally.catastrophic = true;
            return true;
        }
        FailureClass::Restart => tally.restarts += 1,
        FailureClass::Abort => tally.aborts += 1,
        FailureClass::Silent => tally.silents += 1,
        FailureClass::Hindering => tally.error_reports += 1,
        FailureClass::Pass => {
            if result.raw == RawOutcome::ReturnedError {
                tally.error_reports += 1;
                if !result.any_exceptional {
                    tally.suspected_hindering += 1;
                }
            } else {
                tally.passes += 1;
            }
        }
    }
    false
}

/// Campaign for one MuT with caller-provided registry and session (the
/// full-campaign path shares both across MuTs). This is the sequential
/// reference path; the parallel engine reproduces it bit for bit.
#[must_use]
pub fn run_mut_campaign_with(
    os: OsVariant,
    mut_: &Mut,
    registry: &TypeRegistry,
    cfg: &CampaignConfig,
    session: &mut Session,
) -> MutTally {
    run_mut_campaign_traced(os, mut_, registry, cfg, session, &mut None)
}

/// [`run_mut_campaign_with`] plus an optional trace collector: when the
/// telemetry hub has tracing on, every applied case lands in the
/// campaign trace with its fuel and post-case residue attached.
fn run_mut_campaign_traced(
    os: OsVariant,
    mut_: &Mut,
    registry: &TypeRegistry,
    cfg: &CampaignConfig,
    session: &mut Session,
    tc: &mut Option<TraceCollector>,
) -> MutTally {
    let prep = prepare(registry, mut_, cfg);
    run_prepared_mut_traced(os, &prep, cfg, session, tc)
}

/// The sequential per-MuT engine body over an explicit [`PreparedMut`]:
/// the prep carries whatever plan the caller chose (the fixed sample, or
/// an adaptive pinned plan), so every campaign mode funnels through one
/// execution/tally loop.
pub(crate) fn run_prepared_mut_traced(
    os: OsVariant,
    prep: &PreparedMut<'_>,
    cfg: &CampaignConfig,
    session: &mut Session,
    tc: &mut Option<TraceCollector>,
) -> MutTally {
    let mut_ = prep.mut_;
    let mut tally = empty_tally(mut_, prep.plan.cases.len());
    if let Some(tc) = tc.as_mut() {
        tc.begin_mut(mut_.name, mut_.group.label(), prep.plan.cases.len());
    }
    let mut runner = CaseRunner::new();
    for (c_idx, combo) in prep.plan.cases.iter().enumerate() {
        if cfg.perfect_cleanup {
            session.residue = 0;
        }
        let result = runner.execute(
            os,
            mut_,
            &prep.pools,
            combo,
            session,
            cfg.effective_fuel_budget(),
        );
        let residue_after = session.residue;
        let fatal = apply_case(&mut tally, cfg, &result);
        if let Some(tc) = tc.as_mut() {
            tc.record_case(CaseTrace {
                case_idx: c_idx as u32,
                raw: result.raw,
                class: result.class,
                any_exceptional: result.any_exceptional,
                residue_probed: result.residue_probed,
                fuel: result.fuel_used,
                residue_after,
            });
        }
        if fatal {
            if cfg.isolation_probe {
                tally.crash_reproducible_in_isolation =
                    Some(reproduce_in_isolation(os, mut_, &prep.pools, combo));
            }
            // "the system crash interrupts the testing process, and the
            // set of test cases run for that function is incomplete."
            break;
        }
    }
    crate::oracle::selfcheck::observe_tally(os, &tally);
    tally
}

/// One MuT's clean-pass output: a packed record byte per case, plus —
/// only when tracing is on — the per-case fuel side channel the replay
/// pass needs to rebuild the deterministic trace timeline without
/// re-executing. The side channel is `None` when telemetry is off, so
/// the disabled clean pass allocates exactly what it always did.
pub(crate) struct CleanMut {
    pub(crate) records: Vec<u8>,
    pub(crate) fuel: Option<Vec<u64>>,
}

/// Runs one MuT's full plan at residue zero and packs one record byte per
/// case. Execution stops early at an unprobed `SystemCrash` — the replay
/// pass provably never advances past it.
pub(crate) fn run_clean_mut(
    os: OsVariant,
    prep: &PreparedMut<'_>,
    fuel_budget: u64,
    capture_fuel: bool,
) -> CleanMut {
    exec::fault::maybe_panic(prep.mut_.name);
    let mut records = Vec::with_capacity(prep.plan.cases.len());
    let mut fuel = capture_fuel.then(|| Vec::with_capacity(prep.plan.cases.len()));
    let mut clean = Session::new();
    let mut runner = CaseRunner::new();
    for combo in &prep.plan.cases {
        clean.residue = 0;
        let r = runner.execute(os, prep.mut_, &prep.pools, combo, &mut clean, fuel_budget);
        records.push(crash::pack_case(r.raw, r.any_exceptional, r.residue_probed));
        if let Some(fuel) = fuel.as_mut() {
            fuel.push(r.fuel_used);
        }
        if r.raw == RawOutcome::SystemCrash && !r.residue_probed {
            break;
        }
    }
    CleanMut { records, fuel }
}

/// One MuT's clean-pass outcome, or `None` when the MuT was quarantined
/// after repeated contained harness faults.
pub(crate) type CleanRecords = Option<CleanMut>;

/// Runs one MuT's clean pass under the engines' quarantine fence: a
/// contained panic invalidates the worker's boot templates and earns one
/// rerun; a second fault quarantines the MuT (`None`). Warnings and the
/// retry count land in the caller's sinks. Shared by the parallel clean
/// pass and the fleet shard executor, so the two cannot drift.
pub(crate) fn clean_mut_quarantined(
    os: OsVariant,
    prep: &PreparedMut<'_>,
    fuel_budget: u64,
    capture_fuel: bool,
    warnings: &mut Vec<String>,
    retries: &mut u64,
) -> CleanRecords {
    let mut attempts = 0u32;
    loop {
        let run = catch_unwind(AssertUnwindSafe(|| {
            run_clean_mut(os, prep, fuel_budget, capture_fuel)
        }));
        match run {
            Ok(records) => return Some(records),
            Err(_) => {
                // The panic may have left this thread's templates in an
                // arbitrary state; the retry starts from rebuilt ones.
                exec::invalidate_templates();
                attempts += 1;
                if attempts > MAX_MUT_RETRIES {
                    telemetry::on_mut_quarantined();
                    warnings.push(format!(
                        "quarantined {}: {MAX_MUT_RETRIES} retry exhausted; its tally is empty and this report is partial",
                        prep.mut_.name
                    ));
                    return None;
                }
                *retries += 1;
                telemetry::on_quarantine_retry();
                warnings.push(format!(
                    "contained worker panic while testing {}; retrying on fresh templates (attempt {attempts})",
                    prep.mut_.name
                ));
            }
        }
    }
}

/// Phase 1: worker threads shard the catalog (atomic work counter, MuT
/// granularity). Each MuT runs under a `catch_unwind` fence at the worker
/// loop: a panic that escapes the per-case fence (a harness bug, not a
/// test outcome) invalidates the worker's boot templates and earns the
/// MuT one rerun from scratch; a second fault quarantines the MuT instead
/// of killing the worker — the campaign degrades, it does not die.
fn clean_pass(
    os: OsVariant,
    preps: &[PreparedMut<'_>],
    workers: usize,
    fuel_budget: u64,
    sink: &Arc<exec::stats::Counters>,
    capture_fuel: bool,
) -> (Vec<CleanRecords>, Vec<String>, u64) {
    let slots: Vec<Mutex<CleanRecords>> = preps.iter().map(|_| Mutex::new(None)).collect();
    let warnings: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let retries = std::sync::atomic::AtomicU64::new(0);
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|_| {
                    exec::stats::install_sink(Arc::clone(sink));
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(prep) = preps.get(i) else { break };
                        telemetry::on_mut_begin(prep.plan.cases.len() as u64);
                        let mut local_warnings = Vec::new();
                        let mut local_retries = 0u64;
                        let records = clean_mut_quarantined(
                            os,
                            prep,
                            fuel_budget,
                            capture_fuel,
                            &mut local_warnings,
                            &mut local_retries,
                        );
                        retries.fetch_add(local_retries, Ordering::Relaxed);
                        if !local_warnings.is_empty() {
                            warnings
                                .lock()
                                .expect("warning log poisoned")
                                .append(&mut local_warnings);
                        }
                        *slots[i].lock().expect("record slot poisoned") = records;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("clean-pass worker panicked");
        }
    })
    .expect("clean-pass scope panicked");
    let records = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("record slot poisoned"))
        .collect();
    (
        records,
        warnings.into_inner().expect("warning log poisoned"),
        retries.into_inner(),
    )
}

/// Phase 2: the true session walks the clean-pass records in catalog
/// order, re-executing exactly the cases whose outcome could depend on
/// accumulated residue. A quarantined MuT (no records) contributes an
/// empty tally and leaves the session untouched. Returns the tallies
/// plus the replay count.
pub(crate) fn replay_pass(
    os: OsVariant,
    cfg: &CampaignConfig,
    preps: &[PreparedMut<'_>],
    records: &[CleanRecords],
    session: &mut Session,
    tc: &mut Option<TraceCollector>,
) -> (Vec<MutTally>, usize) {
    let mut replayed = 0usize;
    let mut tallies = Vec::with_capacity(preps.len());
    let mut runner = CaseRunner::new();
    for (prep, recs) in preps.iter().zip(records) {
        let mut tally = empty_tally(prep.mut_, prep.plan.cases.len());
        if let Some(tc) = tc.as_mut() {
            tc.begin_mut(prep.mut_.name, prep.mut_.group.label(), prep.plan.cases.len());
        }
        let Some(recs) = recs else {
            tallies.push(tally);
            continue;
        };
        for (c_idx, (combo, &rec)) in prep.plan.cases.iter().zip(&recs.records).enumerate() {
            if cfg.perfect_cleanup {
                session.residue = 0;
            }
            let (raw, any_exceptional, residue_probed) =
                crash::unpack_case(rec).expect("clean pass wrote a valid record");
            let result = if residue_probed && session.residue != 0 {
                replayed += 1;
                runner.execute(
                    os,
                    prep.mut_,
                    &prep.pools,
                    combo,
                    session,
                    cfg.effective_fuel_budget(),
                )
            } else {
                session.note(raw, any_exceptional);
                CaseResult {
                    raw,
                    class: classify(raw, any_exceptional),
                    any_exceptional,
                    residue_probed,
                    // A reused case was not re-executed here; its fuel
                    // comes from the clean-pass side channel. Sound
                    // because a case reused at this point either never
                    // probed residue (control flow — and fuel — cannot
                    // depend on it) or ran at residue 0 both times.
                    fuel_used: recs
                        .fuel
                        .as_ref()
                        .map_or(0, |f| f.get(c_idx).copied().unwrap_or(0)),
                }
            };
            let residue_after = session.residue;
            let fatal = apply_case(&mut tally, cfg, &result);
            if let Some(tc) = tc.as_mut() {
                tc.record_case(CaseTrace {
                    case_idx: c_idx as u32,
                    raw: result.raw,
                    class: result.class,
                    any_exceptional: result.any_exceptional,
                    residue_probed: result.residue_probed,
                    fuel: result.fuel_used,
                    residue_after,
                });
            }
            if fatal {
                if cfg.isolation_probe {
                    tally.crash_reproducible_in_isolation =
                        Some(reproduce_in_isolation(os, prep.mut_, &prep.pools, combo));
                }
                break;
            }
        }
        crate::oracle::selfcheck::observe_tally(os, &tally);
        tallies.push(tally);
    }
    (tallies, replayed)
}

/// Sequential-path counterpart of the clean-pass quarantine: runs one
/// MuT's campaign under a `catch_unwind` fence, retrying once on rebuilt
/// templates from a pristine copy of the session, and quarantining the
/// MuT (empty tally) when the retry faults too. Returns whether the MuT
/// was quarantined.
#[allow(clippy::too_many_arguments)] // engine plumbing: session + telemetry channels
fn run_mut_quarantined(
    os: OsVariant,
    prep: &PreparedMut<'_>,
    cfg: &CampaignConfig,
    session: &mut Session,
    warnings: &mut Vec<String>,
    tc: &mut Option<TraceCollector>,
    retries: &mut u64,
) -> (MutTally, bool) {
    let mut_ = prep.mut_;
    let mut attempts = 0u32;
    loop {
        // Each attempt works on a copy so a mid-MuT panic cannot leave a
        // half-advanced session behind; the copy commits only on success.
        let mut attempt_session = session.clone();
        let run = catch_unwind(AssertUnwindSafe(|| {
            exec::fault::maybe_panic(mut_.name);
            run_prepared_mut_traced(os, prep, cfg, &mut attempt_session, tc)
        }));
        match run {
            Ok(tally) => {
                *session = attempt_session;
                return (tally, false);
            }
            Err(_) => {
                exec::invalidate_templates();
                // Whatever the panic left staged for this MuT is rolled
                // back; the retry (or quarantine) starts a clean span.
                if let Some(tc) = tc.as_mut() {
                    tc.abort_mut();
                }
                attempts += 1;
                if attempts > MAX_MUT_RETRIES {
                    telemetry::on_mut_quarantined();
                    warnings.push(format!(
                        "quarantined {}: {MAX_MUT_RETRIES} retry exhausted; its tally is empty and this report is partial",
                        mut_.name
                    ));
                    let planned = prep.plan.cases.len();
                    // The trace shows the quarantined MuT as an empty
                    // span, same as the parallel engine's replay pass.
                    if let Some(tc) = tc.as_mut() {
                        tc.begin_mut(mut_.name, mut_.group.label(), planned);
                    }
                    return (empty_tally(mut_, planned), true);
                }
                *retries += 1;
                telemetry::on_quarantine_retry();
                warnings.push(format!(
                    "contained worker panic while testing {}; retrying on fresh templates (attempt {attempts})",
                    mut_.name
                ));
            }
        }
    }
}

/// Runs the full campaign: every catalog MuT for `os`, in parallel when
/// the config allows (see the module docs for why the tallies stay
/// bit-identical to the sequential path). Harness faults are contained
/// per MuT — a poisoned MuT degrades the report instead of killing the
/// campaign.
#[must_use]
pub fn run_campaign(os: OsVariant, cfg: &CampaignConfig) -> CampaignReport {
    let registry = catalog::registry_for(os);
    let muts = catalog::catalog_for(os);
    let preps: Vec<_> = muts.iter().map(|m| prepare(&registry, m, cfg)).collect();
    run_campaign_prepared(os, cfg, &preps)
}

/// [`run_campaign`] over caller-supplied preps — the shared engine body
/// behind the classic campaign (fixed per-MuT samples) and the adaptive
/// campaign (a pinned plan per MuT). `preps` must be in catalog order.
pub(crate) fn run_campaign_prepared(
    os: OsVariant,
    cfg: &CampaignConfig,
    preps: &[PreparedMut<'_>],
) -> CampaignReport {
    let t0 = Instant::now();
    // Keep the process-lifetime statics from accumulating across
    // campaigns; the report itself is built from this campaign's private
    // sink, which stays exact even when `run_all` fans variants out
    // concurrently (the old snapshot-delta stats bled across variants).
    exec::stats::reset();
    let counters = Arc::new(exec::stats::Counters::default());
    exec::stats::install_sink(Arc::clone(&counters));
    telemetry::on_campaign_begin();
    let mut tc = TraceCollector::begin(os, cfg.cap as u64);
    let workers = cfg.workers().min(preps.len().max(1));
    let mut session = Session::new();
    let mut warnings = Vec::new();
    let mut degraded = false;
    let mut retries = 0u64;
    let (tallies, replayed) = if workers <= 1 {
        let mut tallies = Vec::with_capacity(preps.len());
        for prep in preps {
            if telemetry::enabled() {
                telemetry::on_mut_begin(prep.plan.cases.len() as u64);
            }
            let (tally, quarantined) = run_mut_quarantined(
                os,
                prep,
                cfg,
                &mut session,
                &mut warnings,
                &mut tc,
                &mut retries,
            );
            degraded |= quarantined;
            tallies.push(tally);
        }
        (tallies, 0)
    } else {
        let (records, mut clean_warnings, clean_retries) = clean_pass(
            os,
            preps,
            workers,
            cfg.effective_fuel_budget(),
            &counters,
            tc.is_some(),
        );
        retries += clean_retries;
        warnings.append(&mut clean_warnings);
        degraded = records.iter().any(Option::is_none);
        replay_pass(os, cfg, preps, &records, &mut session, &mut tc)
    };
    if let Some(tc) = tc {
        tc.finish();
    }
    telemetry::on_campaign_end();
    exec::stats::clear_sink();
    let total_cases = tallies.iter().map(|t| t.cases).sum::<usize>();
    let wall = t0.elapsed().as_secs_f64();
    let (boots, restores, boot_ns, restore_ns) = counters.snapshot();
    let stats = CampaignStats {
        parallelism: workers,
        wall_ms: wall * 1e3,
        cases_per_sec: total_cases as f64 / wall.max(1e-9),
        boots,
        restores,
        boot_ms: boot_ns as f64 / 1e6,
        restore_ms: restore_ns as f64 / 1e6,
        replayed_cases: replayed,
        quarantine_retries: retries,
        journal_fsyncs: 0,
        restores_fast: counters.restores_fast.load(Ordering::Relaxed),
        restores_full: counters.restores_full.load(Ordering::Relaxed),
        probe_provisions: counters.probe_provisions.load(Ordering::Relaxed),
        crashcon_snapshots: counters.crashcon_snapshots.load(Ordering::Relaxed),
        crashcon_remounts: counters.crashcon_remounts.load(Ordering::Relaxed),
    };
    CampaignReport {
        os,
        muts: tallies,
        total_cases,
        stats: Some(stats),
        warnings,
        degraded,
        fleet_degraded: false,
    }
}

/// [`fingerprint`] over already-prepared plans — the engines call this
/// so the plans they are about to execute and the hash agree by
/// construction. See [`CampaignFingerprint`] for exactly what is folded
/// in and why.
pub(crate) fn plan_fingerprint(
    os: OsVariant,
    cfg: &CampaignConfig,
    preps: &[PreparedMut<'_>],
) -> CampaignFingerprint {
    plan_fingerprint_tagged(None, os, cfg, preps)
}

/// [`plan_fingerprint`] with an optional engine-mode tag folded in first.
/// Alternate campaign modes over the same plan (e.g. the crashcon
/// engine) hash a distinct tag so their journals and cache entries can
/// never collide with a classic campaign's.
pub(crate) fn plan_fingerprint_tagged(
    mode_tag: Option<&str>,
    os: OsVariant,
    cfg: &CampaignConfig,
    preps: &[PreparedMut<'_>],
) -> CampaignFingerprint {
    let mut h = PlanHasher::new();
    if let Some(tag) = mode_tag {
        h.write_str(tag);
    }
    h.write_str(os.short_name());
    h.write_u64(cfg.cap as u64);
    h.write_u64(u64::from(cfg.record_raw));
    h.write_u64(u64::from(cfg.perfect_cleanup));
    h.write_u64(cfg.effective_fuel_budget());
    // Result-relevant since the cached report carries the isolation
    // marks and the engine stats; raw `parallelism` (not `workers()`)
    // so auto fingerprints identically on every host.
    h.write_u64(u64::from(cfg.isolation_probe));
    h.write_u64(cfg.parallelism as u64);
    for prep in preps {
        h.write_str(prep.mut_.name);
        h.write_u64(prep.plan.cases.len() as u64);
    }
    CampaignFingerprint(h.finish())
}

/// Runs (or resumes) a **journaled** campaign: every executed case is
/// appended to a write-ahead journal at `journal_path` before the next
/// case runs, so a killed campaign can be resumed with `resume = true`
/// and produce tallies **bit-identical** to an uninterrupted run.
///
/// Resumption replays the journal's packed records through the same
/// session/tally fold the live path uses — recorded outcomes *are* the
/// true sequential outcomes, so no case is re-executed except the
/// deterministic isolation probes — then continues executing from the
/// first unrecorded case. A journal written by a different plan
/// (variant, cap, budget, or catalog), or any torn/corrupted suffix, is
/// discarded rather than misapplied: execution restarts from the last
/// trusted record, never double-counting a case.
///
/// The journaled path is sequential (`parallelism` is ignored): the
/// journal's order *is* the sequential session order, which the parallel
/// engine reproduces bit for bit anyway.
///
/// # Example
///
/// ```no_run
/// use ballista::campaign::{run_campaign_journaled, CampaignConfig};
/// use sim_kernel::variant::OsVariant;
///
/// let cfg = CampaignConfig { cap: 200, ..CampaignConfig::default() };
/// let path = std::path::Path::new("results/win95.journal");
/// // First invocation writes the journal as it executes…
/// let report = run_campaign_journaled(OsVariant::Win95, &cfg, path, false)?;
/// // …and if that process had been killed, `resume = true` replays the
/// // journal prefix and picks up where it left off, bit-identically.
/// let resumed = run_campaign_journaled(OsVariant::Win95, &cfg, path, true)?;
/// assert_eq!(report.total_cases, resumed.total_cases);
/// # Ok::<(), std::io::Error>(())
/// ```
///
/// # Errors
///
/// Propagates journal I/O failures (the campaign cannot guarantee
/// resumability without its journal).
pub fn run_campaign_journaled(
    os: OsVariant,
    cfg: &CampaignConfig,
    journal_path: &Path,
    resume: bool,
) -> std::io::Result<CampaignReport> {
    let registry = catalog::registry_for(os);
    let muts = catalog::catalog_for(os);
    let preps: Vec<_> = muts.iter().map(|m| prepare(&registry, m, cfg)).collect();
    let hash = plan_fingerprint(os, cfg, &preps).as_u64();
    run_campaign_journaled_prepared(os, cfg, &preps, hash, journal_path, resume)
}

/// [`run_campaign_journaled`] over caller-supplied preps and plan hash —
/// the journal machinery itself is plan-agnostic: it stamps whatever
/// hash the caller derived (the classic fingerprint, or an adaptive
/// mode-tagged one) and replays records against whatever plan the preps
/// carry. `preps` must be in catalog order.
pub(crate) fn run_campaign_journaled_prepared(
    os: OsVariant,
    cfg: &CampaignConfig,
    preps: &[PreparedMut<'_>],
    hash: u64,
    journal_path: &Path,
    resume: bool,
) -> std::io::Result<CampaignReport> {
    let t0 = Instant::now();
    exec::stats::reset();
    let counters = Arc::new(exec::stats::Counters::default());
    exec::stats::install_sink(Arc::clone(&counters));
    telemetry::on_campaign_begin();
    let mut tc = TraceCollector::begin(os, cfg.cap as u64);
    let mut warnings = Vec::new();
    let (mut journal, recovered) = if resume {
        let (journal, recovery) = Journal::open_resume(journal_path, hash)?;
        let Recovery {
            records,
            truncated_bytes,
            fresh,
        } = recovery;
        if fresh {
            warnings.push(
                "resume requested but no usable journal was found (missing, foreign plan, or unreadable header); running from scratch".to_owned(),
            );
        } else {
            if truncated_bytes > 0 {
                warnings.push(format!(
                    "journal recovery dropped {truncated_bytes} torn trailing byte(s); resuming from the last valid record"
                ));
            }
            warnings.push(format!(
                "resumed from journal: {} case(s) replayed instead of re-executed",
                records.len()
            ));
        }
        (journal, records)
    } else {
        (Journal::create(journal_path, hash)?, Vec::new())
    };

    let fuel_budget = cfg.effective_fuel_budget();
    let mut session = Session::new();
    let mut tallies = Vec::with_capacity(preps.len());
    // Index into `recovered`; records before it have been accepted and
    // folded into the session. The first record that disagrees with the
    // expected plan position ends replay: the journal is truncated back
    // to the accepted prefix and execution takes over.
    let mut ri = 0usize;
    let mut replay_live = !recovered.is_empty();
    let mut runner = CaseRunner::new();
    for (m_idx, prep) in preps.iter().enumerate() {
        if telemetry::enabled() {
            telemetry::on_mut_begin(prep.plan.cases.len() as u64);
        }
        if let Some(tc) = tc.as_mut() {
            tc.begin_mut(prep.mut_.name, prep.mut_.group.label(), prep.plan.cases.len());
        }
        let mut tally = empty_tally(prep.mut_, prep.plan.cases.len());
        for (c_idx, combo) in prep.plan.cases.iter().enumerate() {
            if cfg.perfect_cleanup {
                session.residue = 0;
            }
            let mut replayed_result = None;
            if replay_live {
                match recovered.get(ri) {
                    Some(rec)
                        if rec.mut_idx as usize == m_idx && rec.case_idx as usize == c_idx =>
                    {
                        if let Some((raw, any_exceptional, residue_probed)) =
                            crash::unpack_case(rec.packed)
                        {
                            ri += 1;
                            session.note(raw, any_exceptional);
                            replayed_result = Some(CaseResult {
                                raw,
                                class: classify(raw, any_exceptional),
                                any_exceptional,
                                residue_probed,
                                // Replayed cases were not re-executed; the
                                // journal record carries the fuel the case
                                // burned when it originally ran. Fuel is a
                                // pure function of the case, so the stored
                                // value equals what a re-execution would
                                // report.
                                fuel_used: rec.fuel,
                            });
                        }
                    }
                    _ => {}
                }
                if replayed_result.is_none() {
                    // Out-of-order or undecodable record: everything from
                    // here on is untrustworthy. Drop it and re-execute.
                    replay_live = false;
                    if ri < recovered.len() {
                        warnings.push(format!(
                            "journal diverged from the plan at record {ri}; discarding {} unusable record(s) and re-executing from there",
                            recovered.len() - ri
                        ));
                    }
                    journal.truncate_to(ri as u64)?;
                }
            }
            let result = match replayed_result {
                Some(r) => r,
                None => {
                    let r = runner.execute(
                        os,
                        prep.mut_,
                        &prep.pools,
                        combo,
                        &mut session,
                        fuel_budget,
                    );
                    journal.append(CaseRecord {
                        mut_idx: m_idx as u32,
                        case_idx: c_idx as u32,
                        packed: crash::pack_case(r.raw, r.any_exceptional, r.residue_probed),
                        fuel: r.fuel_used,
                    })?;
                    r
                }
            };
            let residue_after = session.residue;
            let fatal = apply_case(&mut tally, cfg, &result);
            if let Some(tc) = tc.as_mut() {
                tc.record_case(CaseTrace {
                    case_idx: c_idx as u32,
                    raw: result.raw,
                    class: result.class,
                    any_exceptional: result.any_exceptional,
                    residue_probed: result.residue_probed,
                    fuel: result.fuel_used,
                    residue_after,
                });
            }
            if fatal {
                if cfg.isolation_probe {
                    tally.crash_reproducible_in_isolation =
                        Some(reproduce_in_isolation(os, prep.mut_, &prep.pools, combo));
                }
                break;
            }
        }
        crate::oracle::selfcheck::observe_tally(os, &tally);
        tallies.push(tally);
    }
    // Accepted replay records that point past the end of the plan (the
    // plan completed but the journal claims more) are impossible under a
    // matching hash; drop any leftovers defensively.
    if ri < recovered.len() {
        warnings.push(format!(
            "journal held {} record(s) beyond the completed plan; discarded",
            recovered.len() - ri
        ));
        journal.truncate_to(ri as u64)?;
    }
    journal.sync()?;
    if let Some(tc) = tc {
        tc.finish();
    }
    telemetry::on_campaign_end();
    exec::stats::clear_sink();
    let total_cases = tallies.iter().map(|t| t.cases).sum::<usize>();
    let wall = t0.elapsed().as_secs_f64();
    let (boots, restores, boot_ns, restore_ns) = counters.snapshot();
    let stats = CampaignStats {
        parallelism: 1,
        wall_ms: wall * 1e3,
        cases_per_sec: total_cases as f64 / wall.max(1e-9),
        boots,
        restores,
        boot_ms: boot_ns as f64 / 1e6,
        restore_ms: restore_ns as f64 / 1e6,
        replayed_cases: ri,
        quarantine_retries: 0,
        journal_fsyncs: journal.fsyncs(),
        restores_fast: counters.restores_fast.load(Ordering::Relaxed),
        restores_full: counters.restores_full.load(Ordering::Relaxed),
        probe_provisions: counters.probe_provisions.load(Ordering::Relaxed),
        crashcon_snapshots: counters.crashcon_snapshots.load(Ordering::Relaxed),
        crashcon_remounts: counters.crashcon_remounts.load(Ordering::Relaxed),
    };
    Ok(CampaignReport {
        os,
        muts: tallies,
        total_cases,
        stats: Some(stats),
        warnings,
        degraded: false,
        fleet_degraded: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> CampaignConfig {
        CampaignConfig {
            cap: 120,
            record_raw: true,
            isolation_probe: true,
            perfect_cleanup: false,
            parallelism: 1,
            fuel_budget: 0,
        }
    }

    #[test]
    fn single_mut_campaign_runs() {
        let muts = catalog::catalog_for(OsVariant::Linux);
        let strlen = muts.iter().find(|m| m.name == "strlen").expect("strlen in catalog");
        let tally = run_mut_campaign(OsVariant::Linux, strlen, &quick_cfg());
        assert!(tally.cases > 0);
        assert!(tally.aborts > 0, "hostile string pointers must abort strlen");
        assert!(tally.error_reports + tally.passes > 0, "benign values must pass");
        assert!(!tally.catastrophic);
        assert_eq!(tally.raw_outcomes.len(), tally.cases);
        assert!(tally.abort_rate() > 0.0 && tally.abort_rate() < 1.0);
        assert!(tally.summary_line().contains("strlen"));
    }

    #[test]
    fn get_thread_context_campaign_matches_families() {
        let cfg = quick_cfg();
        for (os, expect_crash) in [
            (OsVariant::Win98, true),
            (OsVariant::Win95, true),
            (OsVariant::WinNt4, false),
            (OsVariant::Win2000, false),
        ] {
            let muts = catalog::catalog_for(os);
            let m = muts
                .iter()
                .find(|m| m.name == "GetThreadContext")
                .expect("in catalog");
            let tally = run_mut_campaign(os, m, &cfg);
            assert_eq!(tally.catastrophic, expect_crash, "{os}");
            if expect_crash {
                assert_eq!(
                    tally.crash_reproducible_in_isolation,
                    Some(true),
                    "{os}: GetThreadContext is Table 3's unstarred entry"
                );
                assert!(tally.cases <= tally.planned);
            }
        }
    }

    #[test]
    fn campaign_report_accessors() {
        let cfg = CampaignConfig {
            cap: 40,
            record_raw: false,
            isolation_probe: false,
            perfect_cleanup: false,
            parallelism: 1,
            fuel_budget: 0,
        };
        // Tiny campaign over a real catalog subset: use Linux and just
        // verify plumbing end-to-end on a handful of MuTs.
        let registry = catalog::registry_for(OsVariant::Linux);
        let muts: Vec<_> = catalog::catalog_for(OsVariant::Linux)
            .into_iter()
            .take(8)
            .collect();
        let mut session = Session::new();
        let tallies: Vec<_> = muts
            .iter()
            .map(|m| run_mut_campaign_with(OsVariant::Linux, m, &registry, &cfg, &mut session))
            .collect();
        let report = CampaignReport {
            os: OsVariant::Linux,
            total_cases: tallies.iter().map(|t| t.cases).sum(),
            muts: tallies,
            stats: None,
            warnings: Vec::new(),
            degraded: false,
            fleet_degraded: false,
        };
        assert!(report.total_cases > 0);
        assert!(report.catastrophic_muts().is_empty());
        let json = serde_json::to_string(&report).expect("serializable");
        assert!(json.contains("linux") || json.contains("Linux"));
    }

    /// Serial (`parallelism = 1`) and parallel (`parallelism = 8`)
    /// campaigns must produce **bit-identical** serialized tallies and
    /// the same Table 3 catastrophic sets — the parallel engine's core
    /// contract. Uses the two variants with the richest
    /// interference-dependent (`*`) behaviour.
    #[test]
    fn parallel_tallies_bit_identical_to_serial() {
        for os in [OsVariant::Win98, OsVariant::WinCe] {
            let serial = run_campaign(
                os,
                &CampaignConfig {
                    cap: 50,
                    record_raw: true,
                    isolation_probe: true,
                    perfect_cleanup: false,
                    parallelism: 1,
                    fuel_budget: 0,
                },
            );
            let parallel = run_campaign(
                os,
                &CampaignConfig {
                    cap: 50,
                    record_raw: true,
                    isolation_probe: true,
                    perfect_cleanup: false,
                    parallelism: 8,
                    fuel_budget: 0,
                },
            );
            assert_eq!(
                serde_json::to_string(&serial.muts).unwrap(),
                serde_json::to_string(&parallel.muts).unwrap(),
                "{os}: tallies diverged between serial and parallel engines"
            );
            let cat = |r: &CampaignReport| -> Vec<(String, Option<bool>)> {
                r.catastrophic_muts()
                    .iter()
                    .map(|t| (t.name.clone(), t.crash_reproducible_in_isolation))
                    .collect()
            };
            assert_eq!(cat(&serial), cat(&parallel), "{os}: Table 3 sets diverged");
            assert_eq!(serial.total_cases, parallel.total_cases);
            let stats = parallel.stats.expect("parallel stats present");
            assert_eq!(stats.parallelism, 8.min(parallel.muts.len()));
        }
    }

    #[test]
    fn stats_report_snapshot_provisioning() {
        let report = run_campaign(OsVariant::Linux, &quick_cfg());
        let stats = report.stats.expect("stats present");
        assert_eq!(stats.parallelism, 1);
        assert!(stats.wall_ms > 0.0);
        assert!(stats.cases_per_sec > 0.0);
        // The template cache means at most one boot per (thread, flavour);
        // everything else must be a snapshot restore.
        assert!(stats.restores > stats.boots);
        // Exact accounting: the serial engine executes each applied case
        // once and provisions exactly one restore per executed case —
        // isolation probes are billed separately.
        assert_eq!(stats.restores, report.total_cases as u64);
        assert_eq!(stats.restores_fast + stats.restores_full, stats.restores);
        assert!(
            stats.restores_fast > stats.restores_full,
            "batched execution must serve most cases by in-place reset"
        );
        let probed = report
            .muts
            .iter()
            .filter(|t| t.crash_reproducible_in_isolation.is_some())
            .count() as u64;
        assert_eq!(stats.probe_provisions, probed);
    }

    #[test]
    fn config_parallelism_defaults() {
        // Old serialized configs (no `parallelism` key) deserialize to
        // auto; `workers()` resolves auto to at least one thread.
        let old = r#"{"cap":100,"record_raw":false,"isolation_probe":true,"perfect_cleanup":false}"#;
        let cfg: CampaignConfig = serde_json::from_str(old).expect("old config parses");
        assert_eq!(cfg.parallelism, 0);
        assert!(cfg.workers() >= 1);
        assert_eq!(
            CampaignConfig {
                parallelism: 3,
                fuel_budget: 0,
                ..CampaignConfig::default()
            }
            .workers(),
            3
        );
        // Same scheme for the fuel budget: absent key → 0 → default.
        assert_eq!(cfg.fuel_budget, 0);
        assert_eq!(cfg.effective_fuel_budget(), DEFAULT_FUEL_BUDGET);
        assert_eq!(
            CampaignConfig {
                fuel_budget: 77,
                ..CampaignConfig::default()
            }
            .effective_fuel_budget(),
            77
        );
    }

    /// Satellite: the watchdog's hang conversion surfaces as `Restart`
    /// in a real campaign tally. `SleepEx` plans five `msec` cases on a
    /// desktop variant: `INFINITE` hangs outright and `0xFFFF_FFFE`
    /// exhausts the fuel budget — both must land in the Restart column,
    /// and the three benign durations must pass.
    #[test]
    fn sleep_ex_watchdog_restarts_tallied() {
        for os in [OsVariant::WinNt4, OsVariant::Win95] {
            let muts = catalog::catalog_for(os);
            let sleep_ex = muts
                .iter()
                .find(|m| m.name == "SleepEx")
                .expect("SleepEx in desktop catalog");
            let tally = run_mut_campaign(os, sleep_ex, &quick_cfg());
            assert_eq!(tally.planned, 5, "{os}: msec pool has five values");
            assert_eq!(tally.cases, 5, "{os}: no case may stall or crash");
            assert_eq!(
                tally.restarts, 2,
                "{os}: INFINITE hang + fuel-exhausted 0xFFFFFFFE"
            );
            assert_eq!(tally.passes, 3, "{os}: the benign durations pass");
            assert!(!tally.catastrophic);
        }
        assert!(
            !catalog::catalog_for(OsVariant::WinCe)
                .iter()
                .any(|m| m.name == "SleepEx"),
            "SleepEx is not in the CE subset"
        );
    }

    /// A fresh journaled run must equal the plain sequential campaign,
    /// and resuming a *completed* journal must replay every case (zero
    /// re-executions) to the identical report.
    #[test]
    fn journaled_run_matches_plain_and_resumes_complete() {
        let os = OsVariant::Win98;
        let cfg = CampaignConfig {
            cap: 30,
            record_raw: true,
            isolation_probe: true,
            perfect_cleanup: false,
            parallelism: 1,
            fuel_budget: 0,
        };
        let dir = std::env::temp_dir().join("ballista-campaign-journal-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("w98.jrn");
        let _ = std::fs::remove_file(&path);

        let plain = run_campaign(os, &cfg);
        let fresh = run_campaign_journaled(os, &cfg, &path, false).expect("journaled run");
        assert_eq!(
            serde_json::to_string(&plain.muts).unwrap(),
            serde_json::to_string(&fresh.muts).unwrap(),
            "fresh journaled run diverged from the plain campaign"
        );
        assert!(fresh.warnings.is_empty(), "{:?}", fresh.warnings);

        let resumed = run_campaign_journaled(os, &cfg, &path, true).expect("resumed run");
        assert_eq!(
            serde_json::to_string(&plain.muts).unwrap(),
            serde_json::to_string(&resumed.muts).unwrap(),
            "resume over a complete journal diverged"
        );
        let stats = resumed.stats.expect("stats");
        assert_eq!(
            stats.replayed_cases, resumed.total_cases,
            "a complete journal replays everything"
        );
        assert!(
            resumed.warnings.iter().any(|w| w.contains("resumed from journal")),
            "{:?}",
            resumed.warnings
        );
        let _ = std::fs::remove_file(&path);
    }

    /// A journal written under one plan (different cap) must not be
    /// replayed into another: the plan-hash check forces a fresh start
    /// with an explicit warning.
    #[test]
    fn journal_plan_mismatch_restarts_fresh() {
        let os = OsVariant::Linux;
        let dir = std::env::temp_dir().join("ballista-campaign-journal-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("mismatch.jrn");
        let _ = std::fs::remove_file(&path);
        let small = CampaignConfig {
            cap: 10,
            ..quick_cfg()
        };
        let big = CampaignConfig {
            cap: 20,
            ..quick_cfg()
        };
        run_campaign_journaled(os, &small, &path, false).expect("seed journal");
        let resumed = run_campaign_journaled(os, &big, &path, true).expect("mismatched resume");
        assert!(
            resumed.warnings.iter().any(|w| w.contains("no usable journal")),
            "{:?}",
            resumed.warnings
        );
        assert_eq!(
            serde_json::to_string(&resumed.muts).unwrap(),
            serde_json::to_string(&run_campaign(os, &big).muts).unwrap(),
            "fresh restart after mismatch diverged"
        );
        let _ = std::fs::remove_file(&path);
    }
}
