//! Full-API campaigns and per-MuT tallies.
//!
//! A campaign runs every catalog MuT on one OS variant under the paper's
//! protocol: pool resolution, 5 000-cap sampling (identical across
//! variants), sequential execution with a shared residue session, stop on
//! Catastrophic (the crash "interrupts the testing process"), and an
//! in-isolation reproduction probe for the Table 3 `*` marks.
//!
//! # The parallel engine
//!
//! With [`CampaignConfig::parallelism`] above one, the campaign runs in
//! two phases that together reproduce the sequential semantics **bit for
//! bit** (asserted by the determinism tests):
//!
//! 1. **Clean pass** (parallel): worker threads shard the catalog at MuT
//!    granularity and execute every planned case on a zero-residue
//!    machine, recording a packed byte per case — raw outcome,
//!    exceptional-input bit, and whether the simulated OS *probed* the
//!    residue counter ([`sim_kernel::Kernel::probe_residue`]).
//! 2. **Replay pass** (sequential): the true session walks the records in
//!    catalog order. A case is re-executed only when it probed residue
//!    *and* the session residue is non-zero; everything else reuses its
//!    recorded outcome. This is sound because residue is only readable
//!    through the probe: control flow up to the first probe cannot depend
//!    on residue, so a case that did not probe at residue zero takes the
//!    identical path (and outcome) at any residue.

use crate::catalog;
use crate::crash::{self, classify, FailureClass, RawOutcome};
use crate::datatype::TypeRegistry;
use crate::exec::{self, execute_case, reproduce_in_isolation, CaseResult, Session};
use crate::muts::Mut;
use crate::sampling::{self, CaseSet, PAPER_CAP};
use crate::value::TestValue;
use serde::{Deserialize, Serialize};
use sim_kernel::variant::OsVariant;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Campaign knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Per-MuT test-case cap (the paper used 5000).
    pub cap: usize,
    /// Record the per-case packed record bytes (needed for the Figure 2
    /// voting analysis; costs one byte per case).
    pub record_raw: bool,
    /// Probe crashing cases in isolation to assign the `*` mark.
    pub isolation_probe: bool,
    /// Ablation knob: reset the session residue before every test case,
    /// simulating perfect inter-test cleanup. Under perfect cleanup the
    /// paper's `*`-marked (interference-dependent) Catastrophic failures
    /// cannot fire — running a campaign both ways isolates exactly which
    /// crashes depend on harness residue.
    pub perfect_cleanup: bool,
    /// Worker threads for the clean-outcome pass. `1` keeps the exact
    /// legacy sequential control flow; `0` (the default, and what
    /// deserializing old configs yields) picks the machine's available
    /// parallelism. Tallies are bit-identical at every setting.
    #[serde(default)]
    pub parallelism: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            cap: PAPER_CAP,
            record_raw: false,
            isolation_probe: true,
            perfect_cleanup: false,
            parallelism: 0,
        }
    }
}

impl CampaignConfig {
    /// The effective worker-thread count: `parallelism`, with `0`
    /// resolving to the machine's available parallelism.
    #[must_use]
    pub fn workers(&self) -> usize {
        match self.parallelism {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            n => n,
        }
    }
}

/// Timing and machine-provisioning counters for one campaign run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct CampaignStats {
    /// Worker threads used by the clean pass (1 = sequential path).
    pub parallelism: usize,
    /// Wall-clock for the whole campaign, milliseconds.
    pub wall_ms: f64,
    /// Executed cases per wall-clock second.
    pub cases_per_sec: f64,
    /// Machines provisioned by a full boot sequence.
    pub boots: u64,
    /// Machines provisioned by cloning a pre-booted snapshot.
    pub restores: u64,
    /// Milliseconds spent in full boots.
    pub boot_ms: f64,
    /// Milliseconds spent restoring snapshots.
    pub restore_ms: f64,
    /// Cases the replay pass re-executed because they probed residue
    /// under a non-zero session residue.
    pub replayed_cases: usize,
}

/// Per-MuT campaign results.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MutTally {
    /// Call name.
    pub name: String,
    /// Functional grouping.
    pub group: crate::muts::FunctionGroup,
    /// Cases executed (may be short of the plan when a crash interrupted).
    pub cases: usize,
    /// Cases planned (cap or exhaustive count).
    pub planned: usize,
    /// Abort failures.
    pub aborts: usize,
    /// Restart failures.
    pub restarts: usize,
    /// Ground-truth Silent failures (success reported on exceptional
    /// inputs).
    pub silents: usize,
    /// Robust error reports.
    pub error_reports: usize,
    /// Error reports on *entirely benign* inputs — suspected Hindering
    /// failures (the call cried wolf, or reported the wrong condition).
    /// A subset of `error_reports`; the paper could detect Hindering only
    /// "in some situations", and this oracle-based count carries the same
    /// caveat: a benign-looking combination can still be semantically
    /// invalid (e.g. two valid-but-unrelated handles).
    #[serde(default)]
    pub suspected_hindering: usize,
    /// Legitimate passes (success on benign inputs).
    pub passes: usize,
    /// Whether a Catastrophic failure occurred.
    pub catastrophic: bool,
    /// Whether the crash reproduced on a pristine machine (`false` ⇒ the
    /// paper's `*`: interference-dependent).
    pub crash_reproducible_in_isolation: Option<bool>,
    /// Per-case raw outcome bytes in execution order (present when
    /// `record_raw`; used by the voting analysis).
    #[serde(skip_serializing_if = "Vec::is_empty", default)]
    pub raw_outcomes: Vec<u8>,
}

impl MutTally {
    /// Abort failure rate over executed cases.
    #[must_use]
    pub fn abort_rate(&self) -> f64 {
        if self.cases == 0 {
            0.0
        } else {
            self.aborts as f64 / self.cases as f64
        }
    }

    /// Restart failure rate over executed cases.
    #[must_use]
    pub fn restart_rate(&self) -> f64 {
        if self.cases == 0 {
            0.0
        } else {
            self.restarts as f64 / self.cases as f64
        }
    }

    /// Ground-truth Silent failure rate over executed cases.
    #[must_use]
    pub fn silent_rate(&self) -> f64 {
        if self.cases == 0 {
            0.0
        } else {
            self.silents as f64 / self.cases as f64
        }
    }

    /// Combined Abort+Restart failure rate (the paper's headline per-MuT
    /// "robustness failure rate", where Silent is reported separately).
    #[must_use]
    pub fn failure_rate(&self) -> f64 {
        self.abort_rate() + self.restart_rate()
    }

    /// One-line human summary.
    #[must_use]
    pub fn summary_line(&self) -> String {
        format!(
            "{}: {} cases, {:.1}% abort, {:.2}% restart, {:.1}% silent{}",
            self.name,
            self.cases,
            100.0 * self.abort_rate(),
            100.0 * self.restart_rate(),
            100.0 * self.silent_rate(),
            match (self.catastrophic, self.crash_reproducible_in_isolation) {
                (true, Some(true)) => ", CATASTROPHIC",
                (true, _) => ", *CATASTROPHIC (interference-dependent)",
                (false, _) => "",
            }
        )
    }
}

/// A full campaign's results on one OS.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// The OS under test.
    pub os: OsVariant,
    /// Per-MuT tallies, in catalog order.
    pub muts: Vec<MutTally>,
    /// Total test cases executed.
    pub total_cases: usize,
    /// Timing/throughput counters (absent in results produced before the
    /// parallel engine; never part of the tally bit-identity contract).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub stats: Option<CampaignStats>,
}

impl CampaignReport {
    /// Tallies for one functional group.
    #[must_use]
    pub fn group(&self, group: crate::muts::FunctionGroup) -> Vec<&MutTally> {
        self.muts.iter().filter(|m| m.group == group).collect()
    }

    /// Names of MuTs with Catastrophic failures.
    #[must_use]
    pub fn catastrophic_muts(&self) -> Vec<&MutTally> {
        self.muts.iter().filter(|m| m.catastrophic).collect()
    }
}

/// Resolves a MuT's parameter pools against the registry.
#[must_use]
pub fn resolve_pools(registry: &TypeRegistry, mut_: &Mut) -> Vec<Vec<TestValue>> {
    mut_.params.iter().map(|ty| registry.pool(ty)).collect()
}

/// Runs the campaign for a single MuT.
#[must_use]
pub fn run_mut_campaign(os: OsVariant, mut_: &Mut, cfg: &CampaignConfig) -> MutTally {
    let registry = catalog::registry_for(os);
    run_mut_campaign_with(os, mut_, &registry, cfg, &mut Session::new())
}

/// A MuT with its resolved pools and (shared) sampling plan — computed
/// once and reused by both engine phases and, via the plan cache, across
/// all variants running the same catalog signature.
struct PreparedMut<'a> {
    mut_: &'a Mut,
    pools: Vec<Vec<TestValue>>,
    plan: Arc<CaseSet>,
}

fn prepare<'a>(registry: &TypeRegistry, mut_: &'a Mut, cfg: &CampaignConfig) -> PreparedMut<'a> {
    let pools = resolve_pools(registry, mut_);
    let plan = if pools.is_empty() {
        Arc::new(sampling::single_case())
    } else {
        let dims: Vec<usize> = pools.iter().map(Vec::len).collect();
        sampling::enumerate_shared(&dims, cfg.cap, mut_.name)
    };
    PreparedMut { mut_, pools, plan }
}

fn empty_tally(mut_: &Mut, planned: usize) -> MutTally {
    MutTally {
        name: mut_.name.to_owned(),
        group: mut_.group,
        cases: 0,
        planned,
        aborts: 0,
        restarts: 0,
        silents: 0,
        error_reports: 0,
        passes: 0,
        catastrophic: false,
        crash_reproducible_in_isolation: None,
        raw_outcomes: Vec::new(),
        suspected_hindering: 0,
    }
}

/// Folds one case result into the tally. Returns `true` on Catastrophic —
/// the caller must run the isolation probe and stop this MuT. Single
/// source of tally semantics for both the sequential and parallel paths,
/// so they cannot drift apart.
fn apply_case(tally: &mut MutTally, cfg: &CampaignConfig, result: &CaseResult) -> bool {
    tally.cases += 1;
    if cfg.record_raw {
        tally.raw_outcomes.push(crash::pack_case(
            result.raw,
            result.any_exceptional,
            result.residue_probed,
        ));
    }
    match result.class {
        FailureClass::Catastrophic => {
            tally.catastrophic = true;
            return true;
        }
        FailureClass::Restart => tally.restarts += 1,
        FailureClass::Abort => tally.aborts += 1,
        FailureClass::Silent => tally.silents += 1,
        FailureClass::Hindering => tally.error_reports += 1,
        FailureClass::Pass => {
            if result.raw == RawOutcome::ReturnedError {
                tally.error_reports += 1;
                if !result.any_exceptional {
                    tally.suspected_hindering += 1;
                }
            } else {
                tally.passes += 1;
            }
        }
    }
    false
}

/// Campaign for one MuT with caller-provided registry and session (the
/// full-campaign path shares both across MuTs). This is the sequential
/// reference path; the parallel engine reproduces it bit for bit.
#[must_use]
pub fn run_mut_campaign_with(
    os: OsVariant,
    mut_: &Mut,
    registry: &TypeRegistry,
    cfg: &CampaignConfig,
    session: &mut Session,
) -> MutTally {
    let prep = prepare(registry, mut_, cfg);
    let mut tally = empty_tally(mut_, prep.plan.cases.len());
    for combo in &prep.plan.cases {
        if cfg.perfect_cleanup {
            session.residue = 0;
        }
        let result = execute_case(os, mut_, &prep.pools, combo, session);
        if apply_case(&mut tally, cfg, &result) {
            if cfg.isolation_probe {
                tally.crash_reproducible_in_isolation =
                    Some(reproduce_in_isolation(os, mut_, &prep.pools, combo));
            }
            // "the system crash interrupts the testing process, and the
            // set of test cases run for that function is incomplete."
            break;
        }
    }
    tally
}

/// Phase 1: worker threads shard the catalog (atomic work counter, MuT
/// granularity) and run every planned case at residue zero, packing one
/// record byte per case. Execution stops early at an unprobed
/// `SystemCrash` — the replay pass provably never advances past it.
fn clean_pass(os: OsVariant, preps: &[PreparedMut<'_>], workers: usize) -> Vec<Vec<u8>> {
    let slots: Vec<Mutex<Vec<u8>>> = preps.iter().map(|_| Mutex::new(Vec::new())).collect();
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(prep) = preps.get(i) else { break };
                    let mut records = Vec::with_capacity(prep.plan.cases.len());
                    let mut clean = Session::new();
                    for combo in &prep.plan.cases {
                        clean.residue = 0;
                        let r = execute_case(os, prep.mut_, &prep.pools, combo, &mut clean);
                        records.push(crash::pack_case(r.raw, r.any_exceptional, r.residue_probed));
                        if r.raw == RawOutcome::SystemCrash && !r.residue_probed {
                            break;
                        }
                    }
                    *slots[i].lock().expect("record slot poisoned") = records;
                })
            })
            .collect();
        for h in handles {
            h.join().expect("clean-pass worker panicked");
        }
    })
    .expect("clean-pass scope panicked");
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("record slot poisoned"))
        .collect()
}

/// Phase 2: the true session walks the clean-pass records in catalog
/// order, re-executing exactly the cases whose outcome could depend on
/// accumulated residue. Returns the tallies plus the replay count.
fn replay_pass(
    os: OsVariant,
    cfg: &CampaignConfig,
    preps: &[PreparedMut<'_>],
    records: &[Vec<u8>],
    session: &mut Session,
) -> (Vec<MutTally>, usize) {
    let mut replayed = 0usize;
    let mut tallies = Vec::with_capacity(preps.len());
    for (prep, recs) in preps.iter().zip(records) {
        let mut tally = empty_tally(prep.mut_, prep.plan.cases.len());
        for (combo, &rec) in prep.plan.cases.iter().zip(recs) {
            if cfg.perfect_cleanup {
                session.residue = 0;
            }
            let (raw, any_exceptional, residue_probed) =
                crash::unpack_case(rec).expect("clean pass wrote a valid record");
            let result = if residue_probed && session.residue != 0 {
                replayed += 1;
                execute_case(os, prep.mut_, &prep.pools, combo, session)
            } else {
                session.note(raw, any_exceptional);
                CaseResult {
                    raw,
                    class: classify(raw, any_exceptional),
                    any_exceptional,
                    residue_probed,
                }
            };
            if apply_case(&mut tally, cfg, &result) {
                if cfg.isolation_probe {
                    tally.crash_reproducible_in_isolation =
                        Some(reproduce_in_isolation(os, prep.mut_, &prep.pools, combo));
                }
                break;
            }
        }
        tallies.push(tally);
    }
    (tallies, replayed)
}

/// Runs the full campaign: every catalog MuT for `os`, in parallel when
/// the config allows (see the module docs for why the tallies stay
/// bit-identical to the sequential path).
#[must_use]
pub fn run_campaign(os: OsVariant, cfg: &CampaignConfig) -> CampaignReport {
    let t0 = Instant::now();
    let (boots0, restores0, boot_ns0, restore_ns0) = exec::stats::snapshot();
    let registry = catalog::registry_for(os);
    let muts = catalog::catalog_for(os);
    let workers = cfg.workers().min(muts.len().max(1));
    let mut session = Session::new();
    let (tallies, replayed) = if workers <= 1 {
        let tallies = muts
            .iter()
            .map(|m| run_mut_campaign_with(os, m, &registry, cfg, &mut session))
            .collect();
        (tallies, 0)
    } else {
        let preps: Vec<_> = muts.iter().map(|m| prepare(&registry, m, cfg)).collect();
        let records = clean_pass(os, &preps, workers);
        replay_pass(os, cfg, &preps, &records, &mut session)
    };
    let total_cases = tallies.iter().map(|t| t.cases).sum::<usize>();
    let wall = t0.elapsed().as_secs_f64();
    let (boots1, restores1, boot_ns1, restore_ns1) = exec::stats::snapshot();
    // Provisioning counters are process-wide; under concurrent campaigns
    // (the experiments driver fans variants out) the deltas apportion
    // approximately, which is fine for throughput reporting.
    let stats = CampaignStats {
        parallelism: workers,
        wall_ms: wall * 1e3,
        cases_per_sec: total_cases as f64 / wall.max(1e-9),
        boots: boots1 - boots0,
        restores: restores1 - restores0,
        boot_ms: (boot_ns1 - boot_ns0) as f64 / 1e6,
        restore_ms: (restore_ns1 - restore_ns0) as f64 / 1e6,
        replayed_cases: replayed,
    };
    CampaignReport {
        os,
        muts: tallies,
        total_cases,
        stats: Some(stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> CampaignConfig {
        CampaignConfig {
            cap: 120,
            record_raw: true,
            isolation_probe: true,
            perfect_cleanup: false,
            parallelism: 1,
        }
    }

    #[test]
    fn single_mut_campaign_runs() {
        let muts = catalog::catalog_for(OsVariant::Linux);
        let strlen = muts.iter().find(|m| m.name == "strlen").expect("strlen in catalog");
        let tally = run_mut_campaign(OsVariant::Linux, strlen, &quick_cfg());
        assert!(tally.cases > 0);
        assert!(tally.aborts > 0, "hostile string pointers must abort strlen");
        assert!(tally.error_reports + tally.passes > 0, "benign values must pass");
        assert!(!tally.catastrophic);
        assert_eq!(tally.raw_outcomes.len(), tally.cases);
        assert!(tally.abort_rate() > 0.0 && tally.abort_rate() < 1.0);
        assert!(tally.summary_line().contains("strlen"));
    }

    #[test]
    fn get_thread_context_campaign_matches_families() {
        let cfg = quick_cfg();
        for (os, expect_crash) in [
            (OsVariant::Win98, true),
            (OsVariant::Win95, true),
            (OsVariant::WinNt4, false),
            (OsVariant::Win2000, false),
        ] {
            let muts = catalog::catalog_for(os);
            let m = muts
                .iter()
                .find(|m| m.name == "GetThreadContext")
                .expect("in catalog");
            let tally = run_mut_campaign(os, m, &cfg);
            assert_eq!(tally.catastrophic, expect_crash, "{os}");
            if expect_crash {
                assert_eq!(
                    tally.crash_reproducible_in_isolation,
                    Some(true),
                    "{os}: GetThreadContext is Table 3's unstarred entry"
                );
                assert!(tally.cases <= tally.planned);
            }
        }
    }

    #[test]
    fn campaign_report_accessors() {
        let cfg = CampaignConfig {
            cap: 40,
            record_raw: false,
            isolation_probe: false,
            perfect_cleanup: false,
            parallelism: 1,
        };
        // Tiny campaign over a real catalog subset: use Linux and just
        // verify plumbing end-to-end on a handful of MuTs.
        let registry = catalog::registry_for(OsVariant::Linux);
        let muts: Vec<_> = catalog::catalog_for(OsVariant::Linux)
            .into_iter()
            .take(8)
            .collect();
        let mut session = Session::new();
        let tallies: Vec<_> = muts
            .iter()
            .map(|m| run_mut_campaign_with(OsVariant::Linux, m, &registry, &cfg, &mut session))
            .collect();
        let report = CampaignReport {
            os: OsVariant::Linux,
            total_cases: tallies.iter().map(|t| t.cases).sum(),
            muts: tallies,
            stats: None,
        };
        assert!(report.total_cases > 0);
        assert!(report.catastrophic_muts().is_empty());
        let json = serde_json::to_string(&report).expect("serializable");
        assert!(json.contains("linux") || json.contains("Linux"));
    }

    /// Serial (`parallelism = 1`) and parallel (`parallelism = 8`)
    /// campaigns must produce **bit-identical** serialized tallies and
    /// the same Table 3 catastrophic sets — the parallel engine's core
    /// contract. Uses the two variants with the richest
    /// interference-dependent (`*`) behaviour.
    #[test]
    fn parallel_tallies_bit_identical_to_serial() {
        for os in [OsVariant::Win98, OsVariant::WinCe] {
            let serial = run_campaign(
                os,
                &CampaignConfig {
                    cap: 50,
                    record_raw: true,
                    isolation_probe: true,
                    perfect_cleanup: false,
                    parallelism: 1,
                },
            );
            let parallel = run_campaign(
                os,
                &CampaignConfig {
                    cap: 50,
                    record_raw: true,
                    isolation_probe: true,
                    perfect_cleanup: false,
                    parallelism: 8,
                },
            );
            assert_eq!(
                serde_json::to_string(&serial.muts).unwrap(),
                serde_json::to_string(&parallel.muts).unwrap(),
                "{os}: tallies diverged between serial and parallel engines"
            );
            let cat = |r: &CampaignReport| -> Vec<(String, Option<bool>)> {
                r.catastrophic_muts()
                    .iter()
                    .map(|t| (t.name.clone(), t.crash_reproducible_in_isolation))
                    .collect()
            };
            assert_eq!(cat(&serial), cat(&parallel), "{os}: Table 3 sets diverged");
            assert_eq!(serial.total_cases, parallel.total_cases);
            let stats = parallel.stats.expect("parallel stats present");
            assert_eq!(stats.parallelism, 8.min(parallel.muts.len()));
        }
    }

    #[test]
    fn stats_report_snapshot_provisioning() {
        let report = run_campaign(OsVariant::Linux, &quick_cfg());
        let stats = report.stats.expect("stats present");
        assert_eq!(stats.parallelism, 1);
        assert!(stats.wall_ms > 0.0);
        assert!(stats.cases_per_sec > 0.0);
        // The template cache means at most one boot per (thread, flavour);
        // everything else must be a snapshot restore.
        assert!(stats.restores > stats.boots);
    }

    #[test]
    fn config_parallelism_defaults() {
        // Old serialized configs (no `parallelism` key) deserialize to
        // auto; `workers()` resolves auto to at least one thread.
        let old = r#"{"cap":100,"record_raw":false,"isolation_probe":true,"perfect_cleanup":false}"#;
        let cfg: CampaignConfig = serde_json::from_str(old).expect("old config parses");
        assert_eq!(cfg.parallelism, 0);
        assert!(cfg.workers() >= 1);
        assert_eq!(
            CampaignConfig {
                parallelism: 3,
                ..CampaignConfig::default()
            }
            .workers(),
            3
        );
    }
}
