//! Full-API campaigns and per-MuT tallies.
//!
//! A campaign runs every catalog MuT on one OS variant under the paper's
//! protocol: pool resolution, 5 000-cap sampling (identical across
//! variants), sequential execution with a shared residue session, stop on
//! Catastrophic (the crash "interrupts the testing process"), and an
//! in-isolation reproduction probe for the Table 3 `*` marks.

use crate::catalog;
use crate::crash::{FailureClass, RawOutcome};
use crate::datatype::TypeRegistry;
use crate::exec::{execute_case, reproduce_in_isolation, Session};
use crate::muts::Mut;
use crate::sampling::{self, PAPER_CAP};
use crate::value::TestValue;
use serde::{Deserialize, Serialize};
use sim_kernel::variant::OsVariant;

/// Campaign knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Per-MuT test-case cap (the paper used 5000).
    pub cap: usize,
    /// Record the per-case raw outcome bytes (needed for the Figure 2
    /// voting analysis; costs memory).
    pub record_raw: bool,
    /// Probe crashing cases in isolation to assign the `*` mark.
    pub isolation_probe: bool,
    /// Ablation knob: reset the session residue before every test case,
    /// simulating perfect inter-test cleanup. Under perfect cleanup the
    /// paper's `*`-marked (interference-dependent) Catastrophic failures
    /// cannot fire — running a campaign both ways isolates exactly which
    /// crashes depend on harness residue.
    pub perfect_cleanup: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            cap: PAPER_CAP,
            record_raw: false,
            isolation_probe: true,
            perfect_cleanup: false,
        }
    }
}

/// Per-MuT campaign results.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MutTally {
    /// Call name.
    pub name: String,
    /// Functional grouping.
    pub group: crate::muts::FunctionGroup,
    /// Cases executed (may be short of the plan when a crash interrupted).
    pub cases: usize,
    /// Cases planned (cap or exhaustive count).
    pub planned: usize,
    /// Abort failures.
    pub aborts: usize,
    /// Restart failures.
    pub restarts: usize,
    /// Ground-truth Silent failures (success reported on exceptional
    /// inputs).
    pub silents: usize,
    /// Robust error reports.
    pub error_reports: usize,
    /// Error reports on *entirely benign* inputs — suspected Hindering
    /// failures (the call cried wolf, or reported the wrong condition).
    /// A subset of `error_reports`; the paper could detect Hindering only
    /// "in some situations", and this oracle-based count carries the same
    /// caveat: a benign-looking combination can still be semantically
    /// invalid (e.g. two valid-but-unrelated handles).
    #[serde(default)]
    pub suspected_hindering: usize,
    /// Legitimate passes (success on benign inputs).
    pub passes: usize,
    /// Whether a Catastrophic failure occurred.
    pub catastrophic: bool,
    /// Whether the crash reproduced on a pristine machine (`false` ⇒ the
    /// paper's `*`: interference-dependent).
    pub crash_reproducible_in_isolation: Option<bool>,
    /// Per-case raw outcome bytes in execution order (present when
    /// `record_raw`; used by the voting analysis).
    #[serde(skip_serializing_if = "Vec::is_empty", default)]
    pub raw_outcomes: Vec<u8>,
}

impl MutTally {
    /// Abort failure rate over executed cases.
    #[must_use]
    pub fn abort_rate(&self) -> f64 {
        if self.cases == 0 {
            0.0
        } else {
            self.aborts as f64 / self.cases as f64
        }
    }

    /// Restart failure rate over executed cases.
    #[must_use]
    pub fn restart_rate(&self) -> f64 {
        if self.cases == 0 {
            0.0
        } else {
            self.restarts as f64 / self.cases as f64
        }
    }

    /// Ground-truth Silent failure rate over executed cases.
    #[must_use]
    pub fn silent_rate(&self) -> f64 {
        if self.cases == 0 {
            0.0
        } else {
            self.silents as f64 / self.cases as f64
        }
    }

    /// Combined Abort+Restart failure rate (the paper's headline per-MuT
    /// "robustness failure rate", where Silent is reported separately).
    #[must_use]
    pub fn failure_rate(&self) -> f64 {
        self.abort_rate() + self.restart_rate()
    }

    /// One-line human summary.
    #[must_use]
    pub fn summary_line(&self) -> String {
        format!(
            "{}: {} cases, {:.1}% abort, {:.2}% restart, {:.1}% silent{}",
            self.name,
            self.cases,
            100.0 * self.abort_rate(),
            100.0 * self.restart_rate(),
            100.0 * self.silent_rate(),
            match (self.catastrophic, self.crash_reproducible_in_isolation) {
                (true, Some(true)) => ", CATASTROPHIC",
                (true, _) => ", *CATASTROPHIC (interference-dependent)",
                (false, _) => "",
            }
        )
    }
}

/// A full campaign's results on one OS.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// The OS under test.
    pub os: OsVariant,
    /// Per-MuT tallies, in catalog order.
    pub muts: Vec<MutTally>,
    /// Total test cases executed.
    pub total_cases: usize,
}

impl CampaignReport {
    /// Tallies for one functional group.
    #[must_use]
    pub fn group(&self, group: crate::muts::FunctionGroup) -> Vec<&MutTally> {
        self.muts.iter().filter(|m| m.group == group).collect()
    }

    /// Names of MuTs with Catastrophic failures.
    #[must_use]
    pub fn catastrophic_muts(&self) -> Vec<&MutTally> {
        self.muts.iter().filter(|m| m.catastrophic).collect()
    }
}

/// Resolves a MuT's parameter pools against the registry.
#[must_use]
pub fn resolve_pools(registry: &TypeRegistry, mut_: &Mut) -> Vec<Vec<TestValue>> {
    mut_.params.iter().map(|ty| registry.pool(ty)).collect()
}

/// Runs the campaign for a single MuT.
#[must_use]
pub fn run_mut_campaign(os: OsVariant, mut_: &Mut, cfg: &CampaignConfig) -> MutTally {
    let registry = catalog::registry_for(os);
    run_mut_campaign_with(os, mut_, &registry, cfg, &mut Session::new())
}

/// Campaign for one MuT with caller-provided registry and session (the
/// full-campaign path shares both across MuTs).
#[must_use]
pub fn run_mut_campaign_with(
    os: OsVariant,
    mut_: &Mut,
    registry: &TypeRegistry,
    cfg: &CampaignConfig,
    session: &mut Session,
) -> MutTally {
    let pools = resolve_pools(registry, mut_);
    let case_set = if pools.is_empty() {
        sampling::single_case()
    } else {
        let dims: Vec<usize> = pools.iter().map(Vec::len).collect();
        sampling::enumerate(&dims, cfg.cap, mut_.name)
    };
    let mut tally = MutTally {
        name: mut_.name.to_owned(),
        group: mut_.group,
        cases: 0,
        planned: case_set.cases.len(),
        aborts: 0,
        restarts: 0,
        silents: 0,
        error_reports: 0,
        passes: 0,
        catastrophic: false,
        crash_reproducible_in_isolation: None,
        raw_outcomes: Vec::new(),
        suspected_hindering: 0,
    };
    for combo in &case_set.cases {
        if cfg.perfect_cleanup {
            session.residue = 0;
        }
        let result = execute_case(os, mut_, &pools, combo, session);
        tally.cases += 1;
        if cfg.record_raw {
            tally.raw_outcomes.push(result.raw.to_byte());
        }
        match result.class {
            FailureClass::Catastrophic => {
                tally.catastrophic = true;
                if cfg.isolation_probe {
                    tally.crash_reproducible_in_isolation =
                        Some(reproduce_in_isolation(os, mut_, &pools, combo));
                }
                // "the system crash interrupts the testing process, and the
                // set of test cases run for that function is incomplete."
                break;
            }
            FailureClass::Restart => tally.restarts += 1,
            FailureClass::Abort => tally.aborts += 1,
            FailureClass::Silent => tally.silents += 1,
            FailureClass::Hindering => tally.error_reports += 1,
            FailureClass::Pass => {
                if result.raw == RawOutcome::ReturnedError {
                    tally.error_reports += 1;
                    if !result.any_exceptional {
                        tally.suspected_hindering += 1;
                    }
                } else {
                    tally.passes += 1;
                }
            }
        }
    }
    tally
}

/// Runs the full campaign: every catalog MuT for `os`.
#[must_use]
pub fn run_campaign(os: OsVariant, cfg: &CampaignConfig) -> CampaignReport {
    let registry = catalog::registry_for(os);
    let muts = catalog::catalog_for(os);
    let mut session = Session::new();
    let mut tallies = Vec::with_capacity(muts.len());
    for m in &muts {
        tallies.push(run_mut_campaign_with(os, m, &registry, cfg, &mut session));
    }
    let total_cases = tallies.iter().map(|t| t.cases).sum();
    CampaignReport {
        os,
        muts: tallies,
        total_cases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> CampaignConfig {
        CampaignConfig {
            cap: 120,
            record_raw: true,
            isolation_probe: true,
            perfect_cleanup: false,
        }
    }

    #[test]
    fn single_mut_campaign_runs() {
        let muts = catalog::catalog_for(OsVariant::Linux);
        let strlen = muts.iter().find(|m| m.name == "strlen").expect("strlen in catalog");
        let tally = run_mut_campaign(OsVariant::Linux, strlen, &quick_cfg());
        assert!(tally.cases > 0);
        assert!(tally.aborts > 0, "hostile string pointers must abort strlen");
        assert!(tally.error_reports + tally.passes > 0, "benign values must pass");
        assert!(!tally.catastrophic);
        assert_eq!(tally.raw_outcomes.len(), tally.cases);
        assert!(tally.abort_rate() > 0.0 && tally.abort_rate() < 1.0);
        assert!(tally.summary_line().contains("strlen"));
    }

    #[test]
    fn get_thread_context_campaign_matches_families() {
        let cfg = quick_cfg();
        for (os, expect_crash) in [
            (OsVariant::Win98, true),
            (OsVariant::Win95, true),
            (OsVariant::WinNt4, false),
            (OsVariant::Win2000, false),
        ] {
            let muts = catalog::catalog_for(os);
            let m = muts
                .iter()
                .find(|m| m.name == "GetThreadContext")
                .expect("in catalog");
            let tally = run_mut_campaign(os, m, &cfg);
            assert_eq!(tally.catastrophic, expect_crash, "{os}");
            if expect_crash {
                assert_eq!(
                    tally.crash_reproducible_in_isolation,
                    Some(true),
                    "{os}: GetThreadContext is Table 3's unstarred entry"
                );
                assert!(tally.cases <= tally.planned);
            }
        }
    }

    #[test]
    fn campaign_report_accessors() {
        let cfg = CampaignConfig {
            cap: 40,
            record_raw: false,
            isolation_probe: false,
            perfect_cleanup: false,
        };
        // Tiny campaign over a real catalog subset: use Linux and just
        // verify plumbing end-to-end on a handful of MuTs.
        let registry = catalog::registry_for(OsVariant::Linux);
        let muts: Vec<_> = catalog::catalog_for(OsVariant::Linux)
            .into_iter()
            .take(8)
            .collect();
        let mut session = Session::new();
        let tallies: Vec<_> = muts
            .iter()
            .map(|m| run_mut_campaign_with(OsVariant::Linux, m, &registry, &cfg, &mut session))
            .collect();
        let report = CampaignReport {
            os: OsVariant::Linux,
            total_cases: tallies.iter().map(|t| t.cases).sum(),
            muts: tallies,
        };
        assert!(report.total_cases > 0);
        assert!(report.catastrophic_muts().is_empty());
        let json = serde_json::to_string(&report).expect("serializable");
        assert!(json.contains("linux") || json.contains("Linux"));
    }
}
