//! Content-addressed, on-disk campaign result cache.
//!
//! The cache key is the [`crate::campaign::CampaignFingerprint`]:
//! an FNV-1a fold of the OS variant, every result-relevant config knob
//! and the full per-MuT sampling plan. Two requests share a key **iff**
//! they are the same campaign, so the cache needs no invalidation
//! protocol at all — changing the cap, the fuel budget, the catalog or
//! the sampling logic changes the key, and stale entries simply become
//! unreachable. A million identical requests cost one campaign.
//! Alternate campaign modes ride the same key space through their mode
//! tags: a crashcon fingerprint folds `crashcon/1` and an adaptive one
//! folds `adaptive/1` plus the adaptive knobs (see [`crate::adaptive`]),
//! so a pinned-plan campaign and a classic campaign over the same
//! catalog can never alias each other's entries.
//!
//! The value is the byte-exact serialized [`CampaignReport`]: the
//! vendored serializer emits map fields in declaration order, so the
//! stored bytes are deterministic and every consumer of one entry sees
//! the identical byte string (the serving layer leans on this for its
//! all-responses-bit-identical guarantee).
//!
//! Layout: one file per fingerprint under the cache directory, written
//! via [`persist::atomic_write`] (tmp + fsync + rename) so a crash can
//! never leave a torn entry, fronted by a small in-memory LRU so the
//! hot-path lookup is a hash probe, not a disk read. Each disk entry is
//! checksummed; a corrupted or truncated entry (or one that hashes to
//! the right filename but records a different fingerprint) is treated
//! as a miss, never an error.
//!
//! Hits, misses and memory-front evictions land in the metrics registry
//! (`cache_hits` / `cache_misses` / `cache_evictions`, host half — see
//! OBSERVABILITY.md).

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::campaign::{CampaignFingerprint, CampaignReport};
use crate::persist;
use crate::telemetry;

/// Magic prefix of a version-1 cache entry file.
const MAGIC: &[u8; 8] = b"BLSTCCH1";

/// Fixed header length: magic + fingerprint + payload length + checksum.
const HEADER_LEN: usize = 8 + 8 + 8 + 8;

/// FNV-1a over a byte slice — the same 64-bit flavor the plan
/// fingerprint uses, applied here to the serialized payload so entry
/// corruption anywhere (header or body) is detected.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes a report entry: `BLSTCCH1 | fingerprint LE | len LE |
/// fnv1a64(payload) LE | payload`.
fn encode_entry(fp: CampaignFingerprint, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&fp.as_u64().to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates and strips an entry header. `None` on any mismatch —
/// wrong magic, wrong fingerprint, torn length, failed checksum.
fn decode_entry(fp: CampaignFingerprint, bytes: &[u8]) -> Option<&[u8]> {
    if bytes.len() < HEADER_LEN || &bytes[..8] != MAGIC {
        return None;
    }
    let le_u64 =
        |at: usize| -> Option<u64> { Some(u64::from_le_bytes(bytes[at..at + 8].try_into().ok()?)) };
    if le_u64(8)? != fp.as_u64() {
        return None;
    }
    let len = usize::try_from(le_u64(16)?).ok()?;
    let payload = bytes.get(HEADER_LEN..HEADER_LEN + len)?;
    if bytes.len() != HEADER_LEN + len || le_u64(24)? != fnv1a64(payload) {
        return None;
    }
    Some(payload)
}

/// The in-memory LRU front: fingerprint → (last-touch tick, payload).
struct Front {
    tick: u64,
    map: HashMap<u64, (u64, Arc<Vec<u8>>)>,
}

/// A content-addressed campaign result cache: on-disk entries under one
/// directory, fronted by an in-memory LRU.
///
/// Values are the serialized [`CampaignReport`] bytes; [`ResultCache::lookup`]
/// returns them as `Arc<Vec<u8>>` so the serving layer can fan one
/// stored entry out to any number of concurrent responses without
/// copying, and [`ResultCache::lookup_report`] deserializes them back
/// for consumers that want the structured report.
///
/// # Example
///
/// ```no_run
/// use ballista::cache::ResultCache;
/// use ballista::campaign::{fingerprint, run_campaign, CampaignConfig};
/// use sim_kernel::variant::OsVariant;
///
/// let cache = ResultCache::new("results/cache", 64)?;
/// let cfg = CampaignConfig { cap: 200, ..CampaignConfig::default() };
/// let fp = fingerprint(OsVariant::Win95, &cfg);
/// let report = match cache.lookup_report(fp) {
///     Some(cached) => cached, // served without running anything
///     None => {
///         let fresh = run_campaign(OsVariant::Win95, &cfg);
///         cache.store(fp, &fresh)?;
///         fresh
///     }
/// };
/// assert_eq!(report.os, OsVariant::Win95);
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct ResultCache {
    dir: PathBuf,
    capacity: usize,
    front: Mutex<Front>,
}

impl ResultCache {
    /// Opens (creating the directory if needed) a cache rooted at `dir`
    /// whose memory front holds at most `capacity` entries. `capacity`
    /// of `0` disables the memory front entirely — every hit is served
    /// from disk.
    ///
    /// # Errors
    ///
    /// Propagates the failure to create the cache directory.
    pub fn new(dir: impl Into<PathBuf>, capacity: usize) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultCache {
            dir,
            capacity,
            front: Mutex::new(Front {
                tick: 0,
                map: HashMap::new(),
            }),
        })
    }

    /// The directory entries live under.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path of `fp`'s entry (whether or not one exists).
    #[must_use]
    pub fn entry_path(&self, fp: CampaignFingerprint) -> PathBuf {
        self.dir.join(format!("{fp}.bcache"))
    }

    /// Entries currently resident in the memory front.
    #[must_use]
    pub fn memory_len(&self) -> usize {
        self.front.lock().expect("cache front poisoned").map.len()
    }

    /// Inserts into the memory front, evicting the least-recently-used
    /// entry when full. No-op at capacity 0.
    fn remember(&self, fp: CampaignFingerprint, bytes: Arc<Vec<u8>>) {
        if self.capacity == 0 {
            return;
        }
        let mut front = self.front.lock().expect("cache front poisoned");
        front.tick += 1;
        let tick = front.tick;
        if front.map.len() >= self.capacity && !front.map.contains_key(&fp.as_u64()) {
            if let Some(&oldest) = front
                .map
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k)
            {
                front.map.remove(&oldest);
                telemetry::on_cache_eviction();
            }
        }
        front.map.insert(fp.as_u64(), (tick, bytes));
    }

    /// Looks `fp` up, returning the stored serialized report bytes.
    ///
    /// Probes the memory front first, then disk (promoting a disk hit
    /// into the front). Counts one cache hit or miss in the metrics
    /// registry. Any invalid disk entry — torn write survivor, bit rot,
    /// foreign file — is a miss, not an error.
    #[must_use]
    pub fn lookup(&self, fp: CampaignFingerprint) -> Option<Arc<Vec<u8>>> {
        match self.peek(fp) {
            Some(bytes) => {
                telemetry::on_cache_hit();
                Some(bytes)
            }
            None => {
                telemetry::on_cache_miss();
                None
            }
        }
    }

    /// [`ResultCache::lookup`] without touching the hit/miss counters:
    /// the serving layer's double-checked coalescing probe (a counted
    /// miss immediately followed by a counted re-probe would double the
    /// recorded miss rate for every cold campaign).
    #[must_use]
    pub fn peek(&self, fp: CampaignFingerprint) -> Option<Arc<Vec<u8>>> {
        if self.capacity > 0 {
            let mut front = self.front.lock().expect("cache front poisoned");
            front.tick += 1;
            let tick = front.tick;
            if let Some((touch, bytes)) = front.map.get_mut(&fp.as_u64()) {
                *touch = tick;
                return Some(Arc::clone(bytes));
            }
        }
        let raw = std::fs::read(self.entry_path(fp)).ok();
        let payload = raw
            .as_deref()
            .and_then(|bytes| decode_entry(fp, bytes))
            .map(|payload| Arc::new(payload.to_vec()));
        if let Some(bytes) = &payload {
            self.remember(fp, Arc::clone(bytes));
        }
        payload
    }

    /// [`ResultCache::lookup`], deserialized back into a
    /// [`CampaignReport`]. An entry whose payload fails to parse (e.g.
    /// written by an incompatible future schema) is a miss.
    #[must_use]
    pub fn lookup_report(&self, fp: CampaignFingerprint) -> Option<CampaignReport> {
        let bytes = self.lookup(fp)?;
        serde_json::from_slice(&bytes).ok()
    }

    /// Stores `report` under `fp`, returning the serialized bytes that
    /// every subsequent [`ResultCache::lookup`] of `fp` will yield. The
    /// disk write is atomic (tmp + fsync + rename); the memory front is
    /// updated last, so a hit never precedes durability.
    ///
    /// # Errors
    ///
    /// Propagates the atomic write's I/O failure; the cache state is
    /// unchanged on error.
    pub fn store(
        &self,
        fp: CampaignFingerprint,
        report: &CampaignReport,
    ) -> io::Result<Arc<Vec<u8>>> {
        let payload = serde_json::to_vec(report)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        persist::atomic_write(&self.entry_path(fp), &encode_entry(fp, &payload))?;
        let bytes = Arc::new(payload);
        self.remember(fp, Arc::clone(&bytes));
        Ok(bytes)
    }
}
