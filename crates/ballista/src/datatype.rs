//! The data-type lattice: named pools with inheritance.
//!
//! Ballista's scalability comes from attaching tests to *types*, not
//! functions: define the `HANDLE` pool once and every call taking a
//! `HANDLE` is covered. Types inherit their parents' pools — the paper
//! describes creating the Windows `HANDLE` type "largely ... by inheriting
//! tests from existing types and adding test cases in the same general
//! vein".

use crate::value::TestValue;
use std::collections::BTreeMap;

/// A named data type with its value pool and optional parent.
#[derive(Debug, Clone)]
pub struct DataType {
    /// Type name used in MuT signatures (e.g. `"cstring"`, `"HANDLE"`).
    pub name: &'static str,
    /// Parent type whose pool is inherited, if any.
    pub parent: Option<&'static str>,
    /// This type's own values (inherited values are added on resolution).
    pub own_values: Vec<TestValue>,
}

/// The registry of all data types for one API world.
#[derive(Debug, Default, Clone)]
pub struct TypeRegistry {
    types: BTreeMap<&'static str, DataType>,
}

impl TypeRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        TypeRegistry::default()
    }

    /// Registers a root type.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names (a wiring bug worth failing loudly on).
    pub fn register(&mut self, name: &'static str, values: Vec<TestValue>) {
        self.register_child(name, None, values);
    }

    /// Registers a type inheriting `parent`'s pool.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn register_child(
        &mut self,
        name: &'static str,
        parent: Option<&'static str>,
        values: Vec<TestValue>,
    ) {
        let prev = self.types.insert(
            name,
            DataType {
                name,
                parent,
                own_values: values,
            },
        );
        assert!(prev.is_none(), "duplicate data type {name}");
    }

    /// Resolves a type's full pool: its own values plus all ancestors',
    /// own values first (the paper's specialized cases take precedence in
    /// reporting).
    ///
    /// # Panics
    ///
    /// Panics on unknown type names or inheritance cycles — both are
    /// wiring bugs in the catalog.
    #[must_use]
    pub fn pool(&self, name: &str) -> Vec<TestValue> {
        let mut out = Vec::new();
        let mut cursor = Some(name);
        let mut hops = 0;
        while let Some(n) = cursor {
            let ty = self
                .types
                .get(n)
                .unwrap_or_else(|| panic!("unknown data type {n}"));
            out.extend(ty.own_values.iter().cloned());
            cursor = ty.parent;
            hops += 1;
            assert!(hops < 16, "inheritance cycle at {name}");
        }
        out
    }

    /// Number of distinct values across all types (the paper reports
    /// 3 430 for POSIX and 1 073 for Windows — ours are smaller but
    /// structured identically).
    #[must_use]
    pub fn distinct_values(&self) -> usize {
        self.types.values().map(|t| t.own_values.len()).sum()
    }

    /// Number of registered types.
    #[must_use]
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// Whether `name` is registered.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.types.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &'static str) -> TestValue {
        TestValue::constant(name, false, 0)
    }

    #[test]
    fn inheritance_concatenates_pools() {
        let mut reg = TypeRegistry::new();
        reg.register("int", vec![v("zero"), v("one")]);
        reg.register_child("HANDLE", Some("int"), vec![v("valid handle")]);
        let pool = reg.pool("HANDLE");
        let names: Vec<_> = pool.iter().map(|t| t.name).collect();
        assert_eq!(names, vec!["valid handle", "zero", "one"]);
        assert_eq!(reg.pool("int").len(), 2);
        assert_eq!(reg.distinct_values(), 3);
        assert_eq!(reg.type_count(), 2);
        assert!(reg.contains("HANDLE"));
        assert!(!reg.contains("nope"));
    }

    #[test]
    #[should_panic(expected = "unknown data type")]
    fn unknown_type_panics() {
        let reg = TypeRegistry::new();
        let _ = reg.pool("ghost");
    }

    #[test]
    #[should_panic(expected = "duplicate data type")]
    fn duplicate_registration_panics() {
        let mut reg = TypeRegistry::new();
        reg.register("int", vec![]);
        reg.register("int", vec![]);
    }

    #[test]
    fn grandparent_resolution() {
        let mut reg = TypeRegistry::new();
        reg.register("base", vec![v("b")]);
        reg.register_child("mid", Some("base"), vec![v("m")]);
        reg.register_child("leaf", Some("mid"), vec![v("l")]);
        assert_eq!(reg.pool("leaf").len(), 3);
    }
}
