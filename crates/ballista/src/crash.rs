//! The CRASH severity scale and the raw outcome vocabulary.
//!
//! CRASH (Kropp, Koopman & Siewiorek, FTCS-28) is an acronym for the five
//! robustness-failure classes: **C**atastrophic (whole-system crash),
//! **R**estart (task hang), **A**bort (abnormal task termination),
//! **S**ilent (invalid call reports success) and **H**indering (wrong
//! error code). The harness observes a [`RawOutcome`] per test case and
//! classifies it; Silent and Hindering need an oracle (the simulator knows
//! whether inputs were exceptional — the paper estimated Silent rates by
//! voting across Windows variants instead, which the report layer also
//! implements).

use serde::{Deserialize, Serialize};
use std::fmt;

/// What the harness directly observed for one test case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RawOutcome {
    /// The call returned and reported success (no error indication).
    ReturnedSuccess,
    /// The call returned an error indication (`errno` / `GetLastError` /
    /// error return value).
    ReturnedError,
    /// The task died on a signal or unhandled structured exception.
    TaskAbort,
    /// The call never returned (watchdog fired).
    TaskHang,
    /// The whole simulated machine died.
    SystemCrash,
}

impl RawOutcome {
    /// Compact one-byte encoding (used for the cross-variant voting
    /// tables).
    #[must_use]
    pub fn to_byte(self) -> u8 {
        match self {
            RawOutcome::ReturnedSuccess => 0,
            RawOutcome::ReturnedError => 1,
            RawOutcome::TaskAbort => 2,
            RawOutcome::TaskHang => 3,
            RawOutcome::SystemCrash => 4,
        }
    }

    /// Inverse of [`RawOutcome::to_byte`].
    #[must_use]
    pub fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            0 => RawOutcome::ReturnedSuccess,
            1 => RawOutcome::ReturnedError,
            2 => RawOutcome::TaskAbort,
            3 => RawOutcome::TaskHang,
            4 => RawOutcome::SystemCrash,
            _ => return None,
        })
    }
}

/// Bit layout of a packed per-case record byte: bits 0–2 hold the
/// [`RawOutcome`] code, bit 3 the "any input exceptional" oracle bit and
/// bit 4 the "outcome consulted residue" bit. One byte carries everything
/// the voting analysis and the parallel engine's replay pass need, so
/// `record_raw` campaigns and the clean-pass record buffers stay at one
/// byte per case.
const REC_RAW_MASK: u8 = 0b0000_0111;
/// Bit 3: at least one selected input value was exceptional.
pub const REC_EXCEPTIONAL: u8 = 0b0000_1000;
/// Bit 4: the simulated OS probed the residue counter for this case.
pub const REC_RESIDUE_PROBED: u8 = 0b0001_0000;

/// Packs one case's observation into a single record byte.
#[must_use]
pub fn pack_case(raw: RawOutcome, any_exceptional: bool, residue_probed: bool) -> u8 {
    raw.to_byte()
        | if any_exceptional { REC_EXCEPTIONAL } else { 0 }
        | if residue_probed { REC_RESIDUE_PROBED } else { 0 }
}

/// Inverse of [`pack_case`]: `(raw, any_exceptional, residue_probed)`.
/// `None` when the outcome bits are invalid.
#[must_use]
pub fn unpack_case(byte: u8) -> Option<(RawOutcome, bool, bool)> {
    Some((
        RawOutcome::from_byte(byte & REC_RAW_MASK)?,
        byte & REC_EXCEPTIONAL != 0,
        byte & REC_RESIDUE_PROBED != 0,
    ))
}

/// The raw outcome stored in a record byte (bare [`RawOutcome::to_byte`]
/// bytes from older result files decode identically: their flag bits are
/// simply zero).
#[must_use]
pub fn record_raw_outcome(byte: u8) -> Option<RawOutcome> {
    RawOutcome::from_byte(byte & REC_RAW_MASK)
}

/// The CRASH classification of one test case.
///
/// Ordered by severity: `Catastrophic > Restart > Abort > Silent >
/// Hindering > Pass`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FailureClass {
    /// The call behaved robustly (correct error report, or legitimate
    /// success on non-exceptional inputs).
    Pass,
    /// The call returned an error, but the wrong one.
    Hindering,
    /// Exceptional inputs, yet the call reported success.
    Silent,
    /// Abnormal task termination.
    Abort,
    /// Task hang; restart required.
    Restart,
    /// Whole-system crash; reboot required.
    Catastrophic,
}

impl FailureClass {
    /// Whether this is a robustness failure at all.
    #[must_use]
    pub fn is_failure(self) -> bool {
        self != FailureClass::Pass
    }

    /// The one-letter CRASH code (`-` for a pass).
    #[must_use]
    pub fn letter(self) -> char {
        match self {
            FailureClass::Catastrophic => 'C',
            FailureClass::Restart => 'R',
            FailureClass::Abort => 'A',
            FailureClass::Silent => 'S',
            FailureClass::Hindering => 'H',
            FailureClass::Pass => '-',
        }
    }
}

impl fmt::Display for FailureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FailureClass::Catastrophic => "Catastrophic",
            FailureClass::Restart => "Restart",
            FailureClass::Abort => "Abort",
            FailureClass::Silent => "Silent",
            FailureClass::Hindering => "Hindering",
            FailureClass::Pass => "Pass",
        };
        f.write_str(s)
    }
}

/// Classifies a raw outcome given the oracle bit "at least one input value
/// was exceptional".
///
/// * `SystemCrash` → Catastrophic, `TaskHang` → Restart, `TaskAbort` →
///   Abort, regardless of inputs (the call had robust alternatives).
/// * `ReturnedSuccess` with exceptional inputs → **Silent** (ground
///   truth; the paper could only estimate this by voting).
/// * `ReturnedError` → Pass (a graceful error report). With
///   non-exceptional inputs this *could* be a Hindering false error, which
///   [`classify_with_expectation`] refines.
#[must_use]
pub fn classify(raw: RawOutcome, any_exceptional_input: bool) -> FailureClass {
    match raw {
        RawOutcome::SystemCrash => FailureClass::Catastrophic,
        RawOutcome::TaskHang => FailureClass::Restart,
        RawOutcome::TaskAbort => FailureClass::Abort,
        RawOutcome::ReturnedSuccess => {
            if any_exceptional_input {
                FailureClass::Silent
            } else {
                FailureClass::Pass
            }
        }
        RawOutcome::ReturnedError => FailureClass::Pass,
    }
}

/// Refinement of [`classify`]: an error report on *entirely benign* inputs
/// is a Hindering failure (the call cried wolf).
#[must_use]
pub fn classify_with_expectation(raw: RawOutcome, any_exceptional_input: bool) -> FailureClass {
    match raw {
        RawOutcome::ReturnedError if !any_exceptional_input => FailureClass::Hindering,
        _ => classify(raw, any_exceptional_input),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_is_totally_ordered() {
        assert!(FailureClass::Catastrophic > FailureClass::Restart);
        assert!(FailureClass::Restart > FailureClass::Abort);
        assert!(FailureClass::Abort > FailureClass::Silent);
        assert!(FailureClass::Silent > FailureClass::Hindering);
        assert!(FailureClass::Hindering > FailureClass::Pass);
    }

    #[test]
    fn classification_matrix() {
        assert_eq!(
            classify(RawOutcome::SystemCrash, false),
            FailureClass::Catastrophic
        );
        assert_eq!(classify(RawOutcome::TaskHang, true), FailureClass::Restart);
        assert_eq!(classify(RawOutcome::TaskAbort, true), FailureClass::Abort);
        assert_eq!(
            classify(RawOutcome::ReturnedSuccess, true),
            FailureClass::Silent
        );
        assert_eq!(
            classify(RawOutcome::ReturnedSuccess, false),
            FailureClass::Pass
        );
        assert_eq!(
            classify(RawOutcome::ReturnedError, true),
            FailureClass::Pass
        );
    }

    #[test]
    fn hindering_refinement() {
        assert_eq!(
            classify_with_expectation(RawOutcome::ReturnedError, false),
            FailureClass::Hindering
        );
        assert_eq!(
            classify_with_expectation(RawOutcome::ReturnedError, true),
            FailureClass::Pass
        );
        assert_eq!(
            classify_with_expectation(RawOutcome::SystemCrash, false),
            FailureClass::Catastrophic
        );
    }

    #[test]
    fn byte_roundtrip() {
        for raw in [
            RawOutcome::ReturnedSuccess,
            RawOutcome::ReturnedError,
            RawOutcome::TaskAbort,
            RawOutcome::TaskHang,
            RawOutcome::SystemCrash,
        ] {
            assert_eq!(RawOutcome::from_byte(raw.to_byte()), Some(raw));
        }
        assert_eq!(RawOutcome::from_byte(99), None);
    }

    #[test]
    fn packed_record_roundtrip_over_all_outcomes_and_flags() {
        for raw in [
            RawOutcome::ReturnedSuccess,
            RawOutcome::ReturnedError,
            RawOutcome::TaskAbort,
            RawOutcome::TaskHang,
            RawOutcome::SystemCrash,
        ] {
            for exc in [false, true] {
                for probed in [false, true] {
                    let byte = pack_case(raw, exc, probed);
                    assert_eq!(unpack_case(byte), Some((raw, exc, probed)));
                    assert_eq!(record_raw_outcome(byte), Some(raw));
                    // Every CRASH class the record can express survives
                    // the round trip (Hindering needs the expectation
                    // refinement, exercised through the exc bit).
                    let class = classify(raw, exc);
                    let (r2, e2, _) = unpack_case(byte).unwrap();
                    assert_eq!(classify(r2, e2), class);
                }
            }
        }
        // Bare legacy bytes (no flag bits) still decode.
        assert_eq!(
            record_raw_outcome(RawOutcome::TaskAbort.to_byte()),
            Some(RawOutcome::TaskAbort)
        );
        assert_eq!(unpack_case(0b0000_0111), None, "invalid outcome code");
    }

    #[test]
    fn letters() {
        assert_eq!(FailureClass::Catastrophic.letter(), 'C');
        assert_eq!(FailureClass::Pass.letter(), '-');
        assert!(FailureClass::Silent.is_failure());
        assert!(!FailureClass::Pass.is_failure());
    }
}
