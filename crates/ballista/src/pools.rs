//! The concrete test-value pools for the POSIX and Windows worlds.
//!
//! These follow the paper's construction: scalar pools shared between the
//! two APIs ("most of the Windows data types required were minor
//! specializations of fairly generic C data types ... the same test values
//! used in POSIX were simply used for testing Windows"), plus the one
//! genuinely new Windows type — `HANDLE` — "largely created by inheriting
//! tests from existing types and adding test cases in the same general
//! vein". Our pools are smaller than the paper's (3 430 POSIX / 1 073
//! Windows values) but structurally identical; EXPERIMENTS.md records the
//! difference.
//!
//! The `exceptional` oracle marks values outside the parameter's valid
//! domain. For context-dependent values (a huge-but-legal integer) the
//! marking is approximate — the same reason the paper needed manual
//! analysis or cross-version voting for Silent failures.

use crate::datatype::TypeRegistry;
use crate::value::TestValue;
use sim_core::addr::PrivilegeLevel;
use sim_core::cstr;
use sim_core::memory::Protection;
use sim_core::SimPtr;
use sim_kernel::fs::OpenOptions;
use sim_kernel::objects::ObjectKind;
use sim_kernel::sync::SyncState;
use sim_kernel::variant::OsVariant;
use sim_kernel::Kernel;
use sim_libc::time::{write_tm, Tm, TM_SIZE};

const U: PrivilegeLevel = PrivilegeLevel::User;

fn alloc_with(k: &mut Kernel, bytes: &[u8]) -> SimPtr {
    let p = k.alloc_user(bytes.len() as u64, "pool-buf");
    k.space.write_bytes(p, bytes).expect("fresh buffer");
    p
}

fn alloc_cstr(k: &mut Kernel, s: &str) -> SimPtr {
    let p = k.alloc_user(s.len() as u64 + 1, "pool-str");
    cstr::write_cstr(&mut k.space, p, s, U).expect("fresh buffer");
    p
}

fn dangling(k: &mut Kernel, len: u64) -> SimPtr {
    let p = k.alloc_user(len, "pool-dangling");
    k.space.unmap(p).expect("fresh region");
    p
}

/// Existing-file path for the variant's world.
fn existing_file(os: OsVariant) -> &'static str {
    if os == OsVariant::Linux {
        "/etc/motd"
    } else {
        "C:\\WINDOWS\\README.TXT"
    }
}

/// Existing-directory path for the variant's world.
fn existing_dir(os: OsVariant) -> &'static str {
    if os == OsVariant::Linux {
        "/tmp"
    } else {
        "C:\\TEMP"
    }
}

fn int_pool() -> Vec<TestValue> {
    vec![
        TestValue::constant("0", false, 0),
        TestValue::constant("1", false, 1),
        TestValue::constant("-1", false, (-1i32 as u32).into()),
        TestValue::constant("'a'", false, 97),
        TestValue::constant("255", false, 255),
        TestValue::constant("1024", false, 1024),
        TestValue::constant("65536", true, 65536),
        TestValue::constant("INT_MAX", true, i32::MAX as u32 as u64),
        TestValue::constant("INT_MIN", true, i32::MIN as u32 as u64),
        TestValue::constant("-70000", true, (-70_000i32 as u32).into()),
    ]
}

fn size_pool() -> Vec<TestValue> {
    vec![
        TestValue::constant("0", false, 0),
        TestValue::constant("1", false, 1),
        TestValue::constant("16", false, 16),
        TestValue::constant("4096", false, 4096),
        TestValue::constant("65536", false, 65536),
        TestValue::constant("SIZE_MAX", true, u32::MAX as u64),
        TestValue::constant("2^31", true, 0x8000_0000),
        TestValue::constant("SIZE_MAX-1", true, (u32::MAX - 1) as u64),
    ]
}

fn buffer_pool() -> Vec<TestValue> {
    vec![
        TestValue::with("page buffer", false, |k, _| {
            k.alloc_user(4096, "pool-page").addr()
        }),
        TestValue::with("16-byte buffer", false, |k, _| {
            k.alloc_user(16, "pool-small").addr()
        }),
        TestValue::with("odd (unaligned) buffer", false, |k, _| {
            k.alloc_user(64, "pool-odd").addr() + 1
        }),
        TestValue::with("64-byte buffer", false, |k, _| {
            k.alloc_user(64, "pool-64").addr()
        }),
        TestValue::with("256-byte zeroed buffer", false, |k, _| {
            k.alloc_user(256, "pool-256").addr()
        }),
        TestValue::with("mid-page pointer", false, |k, _| {
            k.alloc_user(4096, "pool-mid").addr() + 2048
        }),
        TestValue::constant("NULL", true, 0),
        TestValue::constant("(void*)-1", true, u32::MAX as u64),
        TestValue::constant("low unmapped 0x1000", true, 0x1000),
        TestValue::with("kernel pointer", true, |k, _| {
            k.space
                .map_kernel(64, Protection::READ_WRITE, "pool-kernel")
                .map(SimPtr::addr)
                .unwrap_or(0x8000_1000)
        }),
        TestValue::with("dangling heap pointer", true, |k, _| {
            dangling(k, 64).addr()
        }),
        TestValue::with("read-only buffer", true, |k, _| {
            let p = k.alloc_user(64, "pool-ro");
            k.space.protect(p, Protection::READ).expect("fresh region");
            p.addr()
        }),
    ]
}

fn cstring_pool() -> Vec<TestValue> {
    vec![
        TestValue::with("\"ballista\"", false, |k, _| alloc_cstr(k, "ballista").addr()),
        TestValue::with("empty string", false, |k, _| alloc_cstr(k, "").addr()),
        TestValue::with("512-byte string", false, |k, _| {
            alloc_cstr(k, &"x".repeat(512)).addr()
        }),
        TestValue::with("format-directive string", false, |k, _| {
            alloc_cstr(k, "pre %s %n post").addr()
        }),
        TestValue::with("\"a b c\" tokens", false, |k, _| {
            alloc_cstr(k, "a b c").addr()
        }),
        TestValue::with("single char \"x\"", false, |k, _| alloc_cstr(k, "x").addr()),
        TestValue::with("numeric \"42\"", false, |k, _| alloc_cstr(k, "42").addr()),
        TestValue::constant("NULL", true, 0),
        TestValue::with("unterminated buffer", true, |k, _| {
            alloc_with(k, &[b'A'; 32]).addr()
        }),
        TestValue::with("dangling string", true, |k, _| dangling(k, 16).addr()),
        TestValue::with("kernel-space string", true, |k, _| {
            let p = k
                .space
                .map_kernel(16, Protection::READ_WRITE, "pool-kstr")
                .unwrap_or(SimPtr::new(0x8000_2000));
            let _ = cstr::write_cstr(&mut k.space, p, "krnl", PrivilegeLevel::Kernel);
            p.addr()
        }),
    ]
}

fn path_pool() -> Vec<TestValue> {
    vec![
        TestValue::with("existing file", false, |k, os| {
            alloc_cstr(k, existing_file(os)).addr()
        }),
        TestValue::with("existing directory", false, |k, os| {
            alloc_cstr(k, existing_dir(os)).addr()
        }),
        TestValue::with("creatable name", false, |k, os| {
            let p = if os == OsVariant::Linux {
                "/tmp/ballista-new"
            } else {
                "C:\\TEMP\\BALNEW.TXT"
            };
            alloc_cstr(k, p).addr()
        }),
        TestValue::with("nonexistent path", true, |k, os| {
            let p = if os == OsVariant::Linux {
                "/no/such/path"
            } else {
                "C:\\NO\\SUCH\\PATH"
            };
            alloc_cstr(k, p).addr()
        }),
        TestValue::with("empty path", true, |k, _| alloc_cstr(k, "").addr()),
        TestValue::with("330-char path", true, |k, _| {
            alloc_cstr(k, &"d/".repeat(165)).addr()
        }),
        TestValue::constant("NULL", true, 0),
        TestValue::with("unterminated path", true, |k, _| {
            alloc_with(k, &[b'p'; 24]).addr()
        }),
        TestValue::with("dangling path", true, |k, _| dangling(k, 24).addr()),
    ]
}

fn double_pool() -> Vec<TestValue> {
    let d = |name, exceptional, v: f64| TestValue::constant(name, exceptional, v.to_bits());
    vec![
        d("0.0", false, 0.0),
        d("1.0", false, 1.0),
        d("-1.0", false, -1.0),
        d("pi", false, std::f64::consts::PI),
        d("0.5", false, 0.5),
        d("DBL_MAX", false, f64::MAX),
        d("denormal", false, f64::MIN_POSITIVE / 2.0),
        d("NaN", true, f64::NAN),
        d("+Inf", true, f64::INFINITY),
        d("-Inf", true, f64::NEG_INFINITY),
    ]
}

fn msec_pool() -> Vec<TestValue> {
    vec![
        TestValue::constant("0ms", false, 0),
        TestValue::constant("1ms", false, 1),
        TestValue::constant("100ms", false, 100),
        TestValue::constant("INFINITE", false, u32::MAX as u64),
        TestValue::constant("0xFFFFFFFE", true, (u32::MAX - 1) as u64),
    ]
}

fn flags_pool() -> Vec<TestValue> {
    vec![
        TestValue::constant("0", false, 0),
        TestValue::constant("1", false, 1),
        TestValue::constant("2", false, 2),
        TestValue::constant("4", false, 4),
        TestValue::constant("0xFF", true, 0xFF),
        TestValue::constant("0x80000000", true, 0x8000_0000),
        TestValue::constant("0xFFFFFFFF", true, u32::MAX as u64),
    ]
}

/// A live `FILE*` bound to a real open stream. On a resource-exhausted
/// machine (the heavy-load extension) the open can fail; the constructor
/// degrades to a NULL `FILE*` rather than dying — the same value the
/// pools carry anyway.
fn make_live_file(k: &mut Kernel, os: OsVariant) -> SimPtr {
    let path = if os == OsVariant::Linux {
        "/tmp/.pool-file"
    } else {
        "C:\\TEMP\\POOLFILE.TMP"
    };
    if !k.fs.exists(path) {
        let _ = k.fs.create_file(path, b"pool file contents\n".to_vec());
    }
    match k.fs.open(path, OpenOptions::read_write()) {
        Ok(ofd) => sim_libc::stdio::make_file(k, ofd),
        Err(_) => SimPtr::NULL,
    }
}

fn file_ptr_pool() -> Vec<TestValue> {
    vec![
        TestValue::with("open FILE*", false, |k, os| make_live_file(k, os).addr()),
        TestValue::with("closed FILE*", true, |k, os| {
            let fp = make_live_file(k, os);
            // Close the underlying stream; the structure stays readable.
            // (On a resource-exhausted machine the live FILE degraded to
            // NULL already, which stands in fine for a dead stream.)
            if let Ok(ofd) = k.space.read_u32(fp.offset(4)) {
                let _ = k.fs.close(u64::from(ofd));
            }
            fp.addr()
        }),
        TestValue::constant("NULL FILE*", true, 0),
        TestValue::constant("(FILE*)-1", true, u32::MAX as u64),
        TestValue::with("string buffer typecast to FILE*", true, |k, _| {
            // The exact test value the paper blames for seventeen of CE's
            // eighteen Catastrophic C functions.
            alloc_cstr(k, "this is a string buffer, not a FILE structure").addr()
        }),
        TestValue::with("freed FILE*", true, |k, os| {
            let fp = make_live_file(k, os);
            if let Ok(ofd) = k.space.read_u32(fp.offset(4)) {
                let _ = k.fs.close(u64::from(ofd));
            }
            let _ = k.space.unmap(fp);
            fp.addr()
        }),
        TestValue::with("zeroed FILE struct", true, |k, _| {
            k.alloc_user(16, "pool-zero-file").addr()
        }),
    ]
}

fn tm_ptr_pool() -> Vec<TestValue> {
    vec![
        TestValue::with("valid struct tm", false, |k, _| {
            let p = k.alloc_user(TM_SIZE, "pool-tm");
            let tm = Tm {
                sec: 15,
                min: 30,
                hour: 9,
                mday: 25,
                mon: 5,
                year: 100,
                wday: 0,
                yday: 176,
                isdst: 0,
            };
            write_tm(k, p, &tm).expect("fresh tm");
            p.addr()
        }),
        TestValue::with("garbage-field struct tm", true, |k, _| {
            let p = k.alloc_user(TM_SIZE, "pool-tm-garbage");
            let tm = Tm {
                sec: i32::MAX,
                min: -1,
                hour: 99,
                mday: 0,
                mon: 13,
                year: 999_999,
                wday: -5,
                yday: 9999,
                isdst: 7,
            };
            write_tm(k, p, &tm).expect("fresh tm");
            p.addr()
        }),
        TestValue::constant("NULL tm*", true, 0),
        TestValue::with("short tm buffer", true, |k, _| {
            k.alloc_user(8, "pool-tm-short").addr()
        }),
        TestValue::with("dangling tm*", true, |k, _| dangling(k, TM_SIZE).addr()),
    ]
}

fn time_t_ptr_pool() -> Vec<TestValue> {
    vec![
        TestValue::with("time_t* = now", false, |k, _| {
            let p = k.alloc_user(4, "pool-timet");
            let now = k.clock.unix_secs() as u32;
            k.space.write_u32(p, now).expect("fresh");
            p.addr()
        }),
        TestValue::with("time_t* = 0", false, |k, _| {
            k.alloc_user(4, "pool-timet0").addr()
        }),
        TestValue::with("time_t* = UINT_MAX", true, |k, _| {
            let p = k.alloc_user(4, "pool-timet-max");
            k.space.write_u32(p, u32::MAX).expect("fresh");
            p.addr()
        }),
        TestValue::constant("NULL time_t*", true, 0),
    ]
}

/// Shared scalar + C-library types registered into both worlds.
fn register_shared(reg: &mut TypeRegistry) {
    reg.register("int", int_pool());
    reg.register("size", size_pool());
    reg.register("buffer", buffer_pool());
    reg.register("cstring", cstring_pool());
    reg.register("path", path_pool());
    reg.register("double", double_pool());
    reg.register("msec", msec_pool());
    reg.register("flags", flags_pool());
    reg.register("FILE_ptr", file_ptr_pool());
    reg.register("tm_ptr", tm_ptr_pool());
    reg.register("time_t_ptr", time_t_ptr_pool());
    // fopen-style mode strings: a cstring specialization.
    reg.register_child(
        "mode_string",
        Some("cstring"),
        vec![
            TestValue::with("\"r\"", false, |k, _| alloc_cstr(k, "r").addr()),
            TestValue::with("\"w+\"", false, |k, _| alloc_cstr(k, "w+").addr()),
            TestValue::with("\"q\" (bad mode)", true, |k, _| alloc_cstr(k, "q").addr()),
        ],
    );
}

/// The POSIX world's types (the paper: 37 types, 3 430 values).
#[must_use]
pub fn posix_types() -> TypeRegistry {
    let mut reg = TypeRegistry::new();
    register_shared(&mut reg);
    reg.register(
        "fd",
        vec![
            TestValue::with("open rw fd", false, |k, _| {
                let _ = k.fs.create_file("/tmp/.pool-fd", b"fd pool contents".to_vec());
                k.fs
                    .open("/tmp/.pool-fd", OpenOptions::read_write())
                    // Exhausted machine (heavy-load extension): degrade to
                    // an invalid descriptor.
                    .unwrap_or(u32::MAX.into())
            }),
            TestValue::with("read-only fd", false, |k, _| {
                k.fs
                    .open("/etc/motd", OpenOptions::read_only())
                    .unwrap_or(u32::MAX.into())
            }),
            TestValue::constant("stdin (0)", false, 0),
            TestValue::constant("stdout (1)", false, 1),
            TestValue::with("closed fd", true, |k, _| {
                let _ = k.fs.create_file("/tmp/.pool-closed", vec![]);
                match k.fs.open("/tmp/.pool-closed", OpenOptions::read_only()) {
                    Ok(fd) => {
                        let _ = k.fs.close(fd);
                        fd
                    }
                    Err(_) => u32::MAX.into(),
                }
            }),
            TestValue::constant("-1", true, (-1i32 as u32).into()),
            TestValue::constant("9999", true, 9999),
            TestValue::constant("INT_MAX fd", true, i32::MAX as u64),
            TestValue::with("empty-pipe read end", true, |k, _| {
                let _ = k.fs.create_file("/tmp/.pool-pipe", vec![]);
                match k.fs.open("/tmp/.pool-pipe", OpenOptions::read_only()) {
                    Ok(fd) => {
                        sim_posix::fd::prime_pipe(k, fd as i64, 0);
                        fd
                    }
                    Err(_) => u32::MAX.into(),
                }
            }),
        ],
    );
    reg
}

/// The Windows world's types (the paper: 43 types, 1 073 values). The
/// `HANDLE` type inherits the generic integer pool, exactly as the paper
/// built it.
#[must_use]
pub fn windows_types() -> TypeRegistry {
    let mut reg = TypeRegistry::new();
    register_shared(&mut reg);
    reg.register_child(
        "HANDLE",
        Some("int"),
        vec![
            TestValue::with("event handle", false, |k, _| {
                u64::from(
                    k.objects
                        .insert(ObjectKind::Event(SyncState::event(false, true)))
                        .raw(),
                )
            }),
            TestValue::with("file handle", false, |k, os| {
                let _ = os;
                let path = "C:\\TEMP\\POOLH.TMP";
                if !k.fs.exists(path) {
                    let _ = k.fs.create_file(path, b"handle pool".to_vec());
                }
                match k.fs.open(path, OpenOptions::read_write()) {
                    Ok(ofd) => u64::from(k.objects.insert(ObjectKind::File(ofd)).raw()),
                    Err(_) => 0,
                }
            }),
            TestValue::with("thread handle", false, |k, _| {
                let tid = k
                    .procs
                    .spawn_thread(k.procs.current_pid())
                    .expect("current process is alive");
                u64::from(k.objects.insert(ObjectKind::Thread(tid)).raw())
            }),
            TestValue::with("unsignaled event handle", false, |k, _| {
                u64::from(
                    k.objects
                        .insert(ObjectKind::Event(SyncState::event(false, false)))
                        .raw(),
                )
            }),
            TestValue::with("closed handle", true, |k, _| {
                let h = k
                    .objects
                    .insert(ObjectKind::Event(SyncState::event(false, false)));
                let _ = k.objects.close(h);
                u64::from(h.raw())
            }),
            TestValue::constant("NULL handle", true, 0),
            TestValue::constant("INVALID_HANDLE_VALUE", true, u32::MAX as u64),
            TestValue::constant("pseudo current thread", false, (u32::MAX - 1) as u64),
            TestValue::constant("garbage 0xABCD", true, 0xABCD),
        ],
    );
    reg.register(
        "filetime_ptr",
        vec![
            TestValue::with("valid FILETIME*", false, |k, _| {
                let p = k.alloc_user(8, "pool-ft");
                let (lo, hi) = k.clock.filetime().to_parts();
                k.space.write_u32(p, lo).expect("fresh");
                k.space.write_u32(p.offset(4), hi).expect("fresh");
                p.addr()
            }),
            TestValue::with("huge FILETIME*", true, |k, _| {
                let p = k.alloc_user(8, "pool-ft-huge");
                k.space.write_u32(p, u32::MAX).expect("fresh");
                k.space.write_u32(p.offset(4), u32::MAX).expect("fresh");
                p.addr()
            }),
            TestValue::constant("NULL FILETIME*", true, 0),
            TestValue::with("dangling FILETIME*", true, |k, _| dangling(k, 8).addr()),
        ],
    );
    reg.register(
        "systemtime_ptr",
        vec![
            TestValue::with("valid SYSTEMTIME*", false, |k, _| {
                // 2000-06-25 09:30:15.250, a Sunday.
                let p = k.alloc_user(16, "pool-st");
                for (i, v) in [2000u16, 6, 0, 25, 9, 30, 15, 250].into_iter().enumerate() {
                    k.space.write_u16(p.offset(i as u64 * 2), v).expect("fresh");
                }
                p.addr()
            }),
            TestValue::with("garbage SYSTEMTIME*", true, |k, _| {
                let p = k.alloc_user(16, "pool-st-garbage");
                for i in 0..8u64 {
                    k.space.write_u16(p.offset(i * 2), u16::MAX).expect("fresh");
                }
                p.addr()
            }),
            TestValue::constant("NULL SYSTEMTIME*", true, 0),
            TestValue::with("short SYSTEMTIME buffer", true, |k, _| {
                k.alloc_user(6, "pool-st-short").addr()
            }),
        ],
    );
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_libc::profile::LibcProfile;

    #[test]
    fn registries_build() {
        let posix = posix_types();
        let win = windows_types();
        assert!(posix.distinct_values() >= 80, "POSIX pool too small");
        assert!(win.distinct_values() >= 90, "Windows pool too small");
        assert!(posix.contains("fd"));
        assert!(!posix.contains("HANDLE"));
        assert!(win.contains("HANDLE"));
        assert!(win.contains("filetime_ptr"));
    }

    #[test]
    fn handle_inherits_int_pool() {
        let win = windows_types();
        let pool = win.pool("HANDLE");
        let names: Vec<_> = pool.iter().map(|v| v.name).collect();
        assert!(names.contains(&"event handle"));
        assert!(names.contains(&"INT_MAX"), "inherited integer cases present");
    }

    #[test]
    fn every_pool_mixes_exceptional_and_benign() {
        // The paper: pools contain "exceptional as well as non-exceptional
        // cases" so one parameter's error handling can't mask another's.
        for (reg, tys) in [
            (
                posix_types(),
                vec![
                    "int", "size", "buffer", "cstring", "path", "double", "FILE_ptr", "tm_ptr",
                    "fd",
                ],
            ),
            (
                windows_types(),
                vec!["HANDLE", "filetime_ptr", "systemtime_ptr", "msec", "flags"],
            ),
        ] {
            for ty in tys {
                let pool = reg.pool(ty);
                let exc = pool.iter().filter(|v| v.exceptional).count();
                let ben = pool.len() - exc;
                assert!(exc > 0, "{ty} has no exceptional values");
                assert!(ben > 0, "{ty} has no benign values");
            }
        }
    }

    #[test]
    fn constructors_run_on_fresh_kernels() {
        // Every single value must be constructible without panicking on a
        // fresh machine of its world.
        let posix = posix_types();
        for ty in ["int", "size", "buffer", "cstring", "path", "double", "msec",
                   "flags", "FILE_ptr", "tm_ptr", "time_t_ptr", "mode_string", "fd"] {
            for v in posix.pool(ty) {
                let mut k = Kernel::new();
                let _ = (v.make)(&mut k, OsVariant::Linux);
            }
        }
        let win = windows_types();
        for ty in ["HANDLE", "filetime_ptr", "systemtime_ptr", "FILE_ptr", "path"] {
            for v in win.pool(ty) {
                for os in [OsVariant::Win95, OsVariant::WinNt4, OsVariant::WinCe] {
                    let mut k = Kernel::with_flavor(os.machine_flavor());
                    let _ = (v.make)(&mut k, os);
                }
            }
        }
    }

    #[test]
    fn live_file_value_is_usable() {
        let win = windows_types();
        let pool = win.pool("FILE_ptr");
        let live = pool.iter().find(|v| v.name == "open FILE*").unwrap();
        let mut k = Kernel::with_flavor(OsVariant::Win98.machine_flavor());
        let fp = SimPtr::new((live.make)(&mut k, OsVariant::Win98));
        // The magic is in place and the stream is open.
        assert_eq!(
            k.space.read_u32(fp).unwrap(),
            sim_libc::stdio::FILE_MAGIC
        );
        let ofd = u64::from(k.space.read_u32(fp.offset(4)).unwrap());
        assert!(k.fs.is_open(ofd));
    }

    #[test]
    fn profile_reachable_from_pools_crate() {
        // Compile-time sanity that the libc profile types are visible here
        // (the executor needs them for dispatch).
        let p = LibcProfile::for_os(OsVariant::Linux);
        assert!(!p.ctype_bounds_checked());
    }
}
