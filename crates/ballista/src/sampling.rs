//! Test-case enumeration: exhaustive cartesian products, capped at a
//! pseudo-random sample.
//!
//! Paper protocol: "testing was capped at 5000 randomly selected test
//! cases per MuT ... the same pseudorandom sampling of test cases was
//! performed in the same order for each system call or C function tested
//! across the different Windows variants". The sample is therefore seeded
//! from the *MuT name only* — identical dimensions + identical name ⇒
//! identical case list on every variant, which is what makes the Figure 2
//! voting well-defined.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{BTreeMap, HashSet};
use std::sync::{Arc, Mutex, OnceLock};

/// The paper's per-MuT cap.
pub const PAPER_CAP: usize = 5000;

/// A test case: one pool index per parameter.
pub type Combo = Vec<usize>;

/// The selected case list for one MuT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseSet {
    /// Pool sizes per parameter.
    pub dims: Vec<usize>,
    /// The selected combinations, in execution order.
    pub cases: Vec<Combo>,
    /// Whether every combination is present.
    pub exhaustive: bool,
}

/// Total number of combinations for the given pool sizes.
#[must_use]
pub fn combination_count(dims: &[usize]) -> u64 {
    dims.iter().map(|&d| d as u64).product()
}

/// Decodes a linear (lexicographic) index into a combination — the
/// inverse of [`encode`]. Public for the adaptive explorer's
/// collision-probe fallback, which walks linear indices directly.
#[must_use]
pub fn decode(mut linear: u64, dims: &[usize]) -> Combo {
    // Mixed-radix decode, least-significant dimension last (lexicographic).
    let mut combo = vec![0usize; dims.len()];
    for (slot, &d) in combo.iter_mut().zip(dims).rev() {
        *slot = (linear % d as u64) as usize;
        linear /= d as u64;
    }
    combo
}

/// The linear (lexicographic) index of a combination — the exact inverse
/// of the mixed-radix decode [`enumerate`] uses, with the *last*
/// dimension least significant. The adaptive explorer keys its
/// pinned-case dedup set on this index, so the encoding must stay in
/// lock-step with the decode above.
///
/// # Panics
///
/// Debug-asserts that the combo matches the dims (same length, every
/// index in range); release builds produce a nonsensical index for a
/// mismatched combo rather than panicking.
#[must_use]
pub fn encode(combo: &[usize], dims: &[usize]) -> u64 {
    debug_assert_eq!(combo.len(), dims.len());
    let mut linear = 0u64;
    for (&c, &d) in combo.iter().zip(dims) {
        debug_assert!(c < d);
        linear = linear * d as u64 + c as u64;
    }
    linear
}

/// Draws one index from a finite distribution given by integer
/// `weights`, via cumulative inverse sampling on the caller's RNG —
/// the deterministic weighted sampler behind the adaptive explorer.
/// Zero-weight entries are never drawn unless *every* weight is zero,
/// in which case the draw degrades to uniform (a campaign must not
/// wedge because a weighting rule zeroed out).
///
/// # Panics
///
/// Panics when `weights` is empty.
pub fn weighted_index(rng: &mut impl RngExt, weights: &[u64]) -> usize {
    assert!(!weights.is_empty(), "weighted draw over an empty pool");
    let total: u64 = weights.iter().sum();
    if total == 0 {
        return rng.random_range(0..weights.len() as u64) as usize;
    }
    let mut r = rng.random_range(0..total);
    for (i, &w) in weights.iter().enumerate() {
        if r < w {
            return i;
        }
        r -= w;
    }
    weights.len() - 1
}

/// Deterministic FNV-1a over the seed name (stable across runs and
/// platforms, unlike `DefaultHasher`).
#[must_use]
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Enumerates the case set for pools of the given sizes: exhaustive when
/// the product is within `cap`, otherwise `cap` distinct pseudo-random
/// combinations seeded by `seed_name`.
///
/// # Panics
///
/// Panics when `dims` is empty or contains a zero (an empty pool is a
/// catalog wiring bug).
#[must_use]
pub fn enumerate(dims: &[usize], cap: usize, seed_name: &str) -> CaseSet {
    assert!(!dims.is_empty(), "MuT with no parameters has one (empty) case");
    assert!(dims.iter().all(|&d| d > 0), "empty pool for {seed_name}");
    let total = combination_count(dims);
    if total <= cap as u64 {
        let cases = (0..total).map(|i| decode(i, dims)).collect();
        return CaseSet {
            dims: dims.to_vec(),
            cases,
            exhaustive: true,
        };
    }
    let mut rng = StdRng::seed_from_u64(seed_from_name(seed_name));
    let mut seen = HashSet::with_capacity(cap);
    let mut cases = Vec::with_capacity(cap);
    while cases.len() < cap {
        let linear = rng.random_range(0..total);
        if seen.insert(linear) {
            cases.push(decode(linear, dims));
        }
    }
    CaseSet {
        dims: dims.to_vec(),
        cases,
        exhaustive: false,
    }
}

type PlanKey = (String, Vec<usize>, usize);

fn plan_cache() -> &'static Mutex<BTreeMap<PlanKey, Arc<CaseSet>>> {
    static CACHE: OnceLock<Mutex<BTreeMap<PlanKey, Arc<CaseSet>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// [`enumerate`] through a process-wide plan cache: the paper runs *the
/// same* pseudorandom sample per MuT on every variant, so the plan for a
/// given (name, dims, cap) is computed once and shared across all seven
/// campaigns (and across campaign repeats). The cache is append-only and
/// bounded by the catalog: one entry per distinct MuT signature per cap.
///
/// # Panics
///
/// Same conditions as [`enumerate`].
#[must_use]
pub fn enumerate_shared(dims: &[usize], cap: usize, seed_name: &str) -> Arc<CaseSet> {
    let key = (seed_name.to_owned(), dims.to_vec(), cap);
    let mut cache = plan_cache().lock().expect("plan cache poisoned");
    if let Some(plan) = cache.get(&key) {
        return Arc::clone(plan);
    }
    let plan = Arc::new(enumerate(dims, cap, seed_name));
    cache.insert(key, Arc::clone(&plan));
    plan
}

/// Case list for a zero-parameter MuT: one empty case.
#[must_use]
pub fn single_case() -> CaseSet {
    CaseSet {
        dims: Vec::new(),
        cases: vec![Vec::new()],
        exhaustive: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_under_cap() {
        let set = enumerate(&[3, 2], 100, "small");
        assert!(set.exhaustive);
        assert_eq!(set.cases.len(), 6);
        assert_eq!(set.cases[0], vec![0, 0]);
        assert_eq!(set.cases[1], vec![0, 1]);
        assert_eq!(set.cases[5], vec![2, 1]);
    }

    #[test]
    fn capped_sampling_is_deterministic_and_distinct() {
        let a = enumerate(&[10, 10, 10, 10], 500, "CreateFile");
        let b = enumerate(&[10, 10, 10, 10], 500, "CreateFile");
        assert_eq!(a, b, "same seed name → same order (cross-variant rule)");
        assert!(!a.exhaustive);
        assert_eq!(a.cases.len(), 500);
        let distinct: HashSet<_> = a.cases.iter().collect();
        assert_eq!(distinct.len(), 500);
        // Different MuT name → different sample.
        let c = enumerate(&[10, 10, 10, 10], 500, "ReadFile");
        assert_ne!(a.cases, c.cases);
    }

    #[test]
    fn indices_in_range() {
        let set = enumerate(&[4, 7, 3], 50, "ranged");
        for case in &set.cases {
            assert_eq!(case.len(), 3);
            assert!(case[0] < 4 && case[1] < 7 && case[2] < 3);
        }
    }

    #[test]
    fn combination_counts() {
        assert_eq!(combination_count(&[10, 10, 10, 10]), 10_000);
        assert_eq!(combination_count(&[1]), 1);
        assert_eq!(combination_count(&[9, 9, 9, 9, 9]), 59_049);
    }

    #[test]
    fn paper_scale_sample() {
        // A 5-parameter call over 9-value pools (59 049 combos) capped at
        // the paper's 5000.
        let set = enumerate(&[9, 9, 9, 9, 9], PAPER_CAP, "MsgWaitForMultipleObjects");
        assert_eq!(set.cases.len(), PAPER_CAP);
        assert!(!set.exhaustive);
    }

    #[test]
    fn zero_param_mut() {
        let set = single_case();
        assert_eq!(set.cases.len(), 1);
        assert!(set.cases[0].is_empty());
    }

    #[test]
    fn seed_is_stable() {
        // Guards the cross-run determinism the experiments depend on.
        assert_eq!(seed_from_name("strlen"), seed_from_name("strlen"));
        assert_ne!(seed_from_name("strlen"), seed_from_name("strcpy"));
    }

    #[test]
    #[should_panic(expected = "empty pool")]
    fn empty_pool_panics() {
        let _ = enumerate(&[3, 0], 10, "broken");
    }

    #[test]
    fn encode_inverts_decode() {
        let dims = [4, 7, 3];
        for linear in 0..combination_count(&dims) {
            let combo = decode(linear, &dims);
            assert_eq!(encode(&combo, &dims), linear);
        }
        // And over the sampled (capped) path too.
        let set = enumerate(&[9, 9, 9, 9], 100, "encode_roundtrip");
        let seen: HashSet<u64> = set.cases.iter().map(|c| encode(c, &set.dims)).collect();
        assert_eq!(seen.len(), set.cases.len(), "linear indices stay distinct");
    }

    #[test]
    fn weighted_draw_is_deterministic_and_biased() {
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            assert_eq!(
                weighted_index(&mut a, &[1, 64, 1]),
                weighted_index(&mut b, &[1, 64, 1])
            );
        }
        // The heavy entry dominates the draw.
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..600 {
            counts[weighted_index(&mut rng, &[1, 64, 1])] += 1;
        }
        assert!(counts[1] > 500, "{counts:?}");
        // Zero weights never win unless all weights are zero.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(weighted_index(&mut rng, &[0, 0, 7, 0]), 2);
        }
        let uniform = weighted_index(&mut rng, &[0, 0, 0]);
        assert!(uniform < 3);
    }
}
