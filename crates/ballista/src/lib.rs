//! # ballista — data-type-based API robustness testing
//!
//! A full reimplementation of the Ballista robustness-testing methodology
//! of Koopman, DeVale, Kropp et al., as applied to the Win32 API in
//! *"Robustness Testing of the Microsoft Win32 API"* (DSN 2000): for every
//! parameter **data type** there is a pool of exceptional and
//! non-exceptional test values; every function or system call under test
//! (a *Module under Test*, [`Mut`] is called with all
//! combinations of test values drawn from its parameter types — capped at
//! 5 000 pseudo-randomly sampled combinations with an identical sampling
//! order on every OS variant — and each test case runs on a **fresh
//! simulated machine** (the paper's process-per-test isolation). Outcomes
//! are classified on the **CRASH** scale.
//!
//! * [`crash`] — the CRASH severity scale and raw outcome vocabulary.
//! * [`value`] / [`datatype`] — test values and the data-type lattice
//!   (types inherit their parents' pools, like the paper's `HANDLE` type
//!   inheriting the integer tests).
//! * [`pools`] — the concrete POSIX and Windows test-value pools.
//! * [`muts`] — MuT descriptors: name, functional group, parameter types
//!   and the dispatcher into the simulated API.
//! * [`catalog`] — the full Win32 (143 calls + C library) and Linux (91
//!   calls + C library) catalogs.
//! * [`sampling`] — exhaustive vs. capped pseudo-random test-case
//!   selection, deterministic per MuT and identical across variants.
//! * [`exec`] — single-test execution: isolation, interception of
//!   signals/exceptions/hangs/system-crashes, inter-test residue, and the
//!   in-isolation reproduction probe behind Table 3's `*` marks.
//! * [`campaign`] — full-API campaigns and per-MuT tallies, addressed
//!   by a content fingerprint ([`campaign::CampaignFingerprint`]).
//! * [`cache`] — the content-addressed on-disk result cache: identical
//!   campaign requests cost one campaign.
//! * [`fleet`] — sharded campaign execution over a worker pool with a
//!   process-shape wire protocol, bit-identical to the single engine.
//! * [`server`] — the campaign-as-a-service HTTP layer: fingerprint,
//!   cache, coalesce, execute.
//! * [`oracle`] — the conformance oracle: cross-engine, cross-variant and
//!   per-tally invariants that make the tallies trustworthy.
//! * [`coverage`] — accounting of which MuTs, pools, test values and
//!   CRASH classes a run exercised, with a regression floor.
//! * [`telemetry`] — zero-cost-when-disabled observability: structured
//!   per-case tracing (Chrome/Perfetto JSONL), a metrics registry, and
//!   `TELEMETRY_PROFILE`-gated subsystem profiling hooks.
//! * [`adaptive`] — coverage-guided adaptive sampling: a weighted
//!   explore phase folds live coverage back into case selection, then
//!   pins the discovered plan for deterministic, fingerprint-addressed
//!   replay through every engine.
//! * [`sequence`] — the paper's future-work extension: two-call
//!   sequence-dependent failure testing.
//! * [`load`] — the paper's other future-work extension: heavy-load
//!   testing against resource-exhausted machines.
//!
//! # Quick start
//!
//! ```
//! use ballista::campaign::{run_mut_campaign, CampaignConfig};
//! use ballista::catalog;
//! use sim_kernel::variant::OsVariant;
//!
//! // Test one call on two OSes and compare.
//! let cfg = CampaignConfig { cap: 200, ..CampaignConfig::default() };
//! for os in [OsVariant::Win98, OsVariant::WinNt4] {
//!     let muts = catalog::catalog_for(os);
//!     let gtc = muts.iter().find(|m| m.name == "GetThreadContext").unwrap();
//!     let tally = run_mut_campaign(os, gtc, &cfg);
//!     println!("{os}: {}", tally.summary_line());
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adaptive;
pub mod cache;
pub mod campaign;
pub mod catalog;
pub mod coverage;
pub mod crash;
pub mod crashcon;
pub mod datatype;
pub mod exec;
pub mod fleet;
pub mod journal;
pub mod load;
pub mod oracle;
pub mod persist;
pub mod muts;
pub mod pools;
pub mod sampling;
pub mod sequence;
pub mod server;
pub mod telemetry;
pub mod value;

pub use crash::{FailureClass, RawOutcome};
pub use muts::{FunctionGroup, Mut};
