//! Crash-safe file persistence for campaign artifacts.
//!
//! Results JSON and benchmark artifacts used to be written with a plain
//! `fs::write`: a crash (or SIGKILL) mid-write leaves a torn file that
//! poisons the results cache and every downstream table. Following the
//! classic write-ahead discipline (and the mid-write crash states the B3
//! crash-testing work enumerates), everything now goes through
//! [`atomic_write`]: write to a sibling temporary file, `fsync` it,
//! atomically rename over the destination, then `fsync` the directory so
//! the rename itself survives power loss. Readers see either the old
//! complete file or the new complete file — never a prefix.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// Writes `bytes` to `path` atomically: tmp file + `fsync` + rename +
/// directory `fsync`. The temporary lives next to the destination (same
/// filesystem, so the rename is atomic) under a fixed derived name, so a
/// crashed writer leaves at most one stale `.tmp` that the next write
/// simply replaces.
///
/// # Errors
///
/// Any I/O error from the underlying create/write/sync/rename steps; on
/// error the destination is untouched (the torn state is confined to the
/// temporary).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

/// Best-effort `fsync` of `path`'s parent directory so the rename is
/// durable. Directory fsync is not supported everywhere (and never on
/// Windows); failure here cannot tear data — it only shrinks the
/// power-loss window back to what a plain rename gives — so it is
/// deliberately non-fatal.
fn sync_parent_dir(path: &Path) {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ballista-persist-tests");
        fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn atomic_write_round_trips() {
        let path = scratch("roundtrip.json");
        atomic_write(&path, b"{\"v\":1}").expect("write");
        assert_eq!(fs::read(&path).expect("read"), b"{\"v\":1}");
        // Overwrite in place: new content fully replaces the old.
        atomic_write(&path, b"{\"v\":2,\"longer\":true}").expect("rewrite");
        assert_eq!(fs::read(&path).expect("read"), b"{\"v\":2,\"longer\":true}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn stale_tmp_from_a_crashed_writer_is_replaced() {
        let path = scratch("stale.json");
        let tmp = path.with_file_name("stale.json.tmp");
        fs::write(&tmp, b"torn half-write from a dead process").expect("plant tmp");
        atomic_write(&path, b"clean").expect("write");
        assert_eq!(fs::read(&path).expect("read"), b"clean");
        assert!(!tmp.exists(), "the tmp was consumed by the rename");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rejects_bare_root() {
        assert!(atomic_write(Path::new("/"), b"x").is_err());
    }
}
