//! Campaign-as-a-service: the fleet HTTP server.
//!
//! A minimal threaded HTTP/1.1 + JSON server over [`std::net`] — no
//! external dependencies, fully offline — that turns the campaign
//! engine into a shared service:
//!
//! * `POST /campaign` with a [`CampaignSpec`] body: the spec is folded
//!   to its [`CampaignFingerprint`], the result cache is probed, and
//!   only a genuinely new campaign is executed (on the sharded
//!   [`fleet`](crate::fleet) path). The response is the serialized
//!   [`CampaignReport`](crate::campaign::CampaignReport), plus an
//!   `X-Cache: hit | coalesced | miss` header.
//! * `GET /campaign/<fingerprint>`: the cached report, or `202` while
//!   that campaign is in flight, or `404`.
//! * `GET /metrics`: a JSON snapshot of the server counters — request
//!   totals, cache hit/miss/coalesce counts, in-flight depth, shard
//!   and throughput numbers.
//!
//! # Request coalescing
//!
//! Concurrent identical requests must cost **one** campaign, not K.
//! The first requester of a fingerprint becomes the *leader*: it
//! registers an in-flight entry, runs the campaign, stores the result,
//! and wakes everyone. Every other requester of the same fingerprint
//! blocks on that entry's condvar and then serves the leader's bytes —
//! the `Arc<Vec<u8>>` stored in the cache — so all K responses are
//! **bit-identical** by construction (same allocation, not merely equal
//! JSON). A leader panic is contained: followers get `500`, the
//! in-flight entry is removed, and the next request starts fresh.
//!
//! # Fingerprint memoization
//!
//! Computing a fingerprint requires resolving every MuT's pools and
//! sampling plan — microseconds, but far too slow for a hot cache-hit
//! path. The server memoizes spec → fingerprint in a hash map, so the
//! steady-state cost of a hit is two hash probes and a socket write
//! (the `fleet_bench` hit-path throughput target leans on this).

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use sim_kernel::variant::OsVariant;

use crate::adaptive::{fingerprint_adaptive, run_adaptive_fleet_observed, AdaptiveConfig};
use crate::cache::ResultCache;
use crate::campaign::{fingerprint, CampaignConfig, CampaignFingerprint};
use crate::fleet::{run_campaign_fleet_observed, FleetConfig, FleetProgress};
use crate::telemetry;
use serde::{Deserialize, Serialize};

/// Hard cap on an accepted request body (a campaign spec is tiny).
const MAX_BODY: usize = 1 << 20;

/// A campaign request as posted to `POST /campaign`.
///
/// Flat JSON with every knob optional except `os`, e.g.
/// `{"os": "Win95", "cap": 200}`. Omitted knobs take the
/// [`CampaignConfig::default`] protocol values (`cap` `0` also means
/// "default": the paper's 5 000). `shards`/`workers` of `0` let the
/// fleet pick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// OS variant under test (serialized as the enum variant name,
    /// e.g. `"Win95"`).
    pub os: OsVariant,
    /// Per-MuT case cap; `0` → the paper's 5 000.
    #[serde(default)]
    pub cap: usize,
    /// Record per-case packed outcome bytes.
    #[serde(default)]
    pub record_raw: bool,
    /// Isolation-probe crashing cases (`null`/absent → on, the paper's
    /// protocol).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub isolation_probe: Option<bool>,
    /// Reset residue before every case (ablation knob).
    #[serde(default)]
    pub perfect_cleanup: bool,
    /// Engine parallelism knob (affects the fingerprint, like every
    /// other knob; the fleet executes shards at its own width).
    #[serde(default)]
    pub parallelism: usize,
    /// Per-case fuel budget; `0` → default.
    #[serde(default)]
    pub fuel_budget: u64,
    /// Fleet shard count; `0` → auto.
    #[serde(default)]
    pub shards: usize,
    /// Fleet worker count; `0` → auto.
    #[serde(default)]
    pub workers: usize,
    /// Execute shards on supervised worker processes (see
    /// [`FleetConfig::process`]); off by default. Does not affect the
    /// campaign fingerprint — process isolation is an execution detail,
    /// not a different campaign.
    #[serde(default)]
    pub process: bool,
    /// Adaptive mode: explore rounds. `0` (the default) means a
    /// **classic** fixed-plan campaign; any non-zero value selects the
    /// adaptive engine with that many rounds (and folds the
    /// `adaptive/1` mode tag plus all three adaptive knobs into the
    /// fingerprint).
    #[serde(default)]
    pub adaptive_rounds: usize,
    /// Adaptive explore seed (meaningful only with `adaptive_rounds`).
    #[serde(default)]
    pub adaptive_seed: u64,
    /// Adaptive rare-outcome bonus; `0` → the mode default (meaningful
    /// only with `adaptive_rounds`).
    #[serde(default)]
    pub adaptive_rare_bonus: u64,
}

impl CampaignSpec {
    /// The paper-protocol spec for one variant.
    #[must_use]
    pub fn new(os: OsVariant) -> Self {
        CampaignSpec {
            os,
            cap: 0,
            record_raw: false,
            isolation_probe: None,
            perfect_cleanup: false,
            parallelism: 0,
            fuel_budget: 0,
            shards: 0,
            workers: 0,
            process: false,
            adaptive_rounds: 0,
            adaptive_seed: 0,
            adaptive_rare_bonus: 0,
        }
    }

    /// The campaign config this spec denotes.
    #[must_use]
    pub fn config(&self) -> CampaignConfig {
        let default = CampaignConfig::default();
        CampaignConfig {
            cap: if self.cap == 0 { default.cap } else { self.cap },
            record_raw: self.record_raw,
            isolation_probe: self.isolation_probe.unwrap_or(default.isolation_probe),
            perfect_cleanup: self.perfect_cleanup,
            parallelism: self.parallelism,
            fuel_budget: self.fuel_budget,
        }
    }

    /// The fleet sizing this spec denotes.
    #[must_use]
    pub fn fleet(&self) -> FleetConfig {
        FleetConfig {
            shards: self.shards,
            workers: self.workers,
            process: self.process,
            ..FleetConfig::default()
        }
    }

    /// The adaptive mode this spec denotes: `Some` iff `adaptive_rounds`
    /// is non-zero.
    #[must_use]
    pub fn adaptive(&self) -> Option<AdaptiveConfig> {
        (self.adaptive_rounds != 0).then_some(AdaptiveConfig {
            rounds: self.adaptive_rounds,
            seed: self.adaptive_seed,
            rare_bonus: self.adaptive_rare_bonus,
        })
    }
}

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` for an OS-assigned
    /// port — the bound address is [`Server::local_addr`]).
    pub addr: String,
    /// Result-cache directory.
    pub cache_dir: PathBuf,
    /// Result-cache memory-front capacity (entries).
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            cache_dir: PathBuf::from("results/cache"),
            cache_capacity: 64,
        }
    }
}

/// Host-side serving counters, all monotonic since server start.
/// Serialized as the `GET /metrics` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ServerMetrics {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// `POST /campaign` requests accepted.
    pub campaign_posts: u64,
    /// `GET /campaign/<fp>` requests accepted.
    pub campaign_gets: u64,
    /// Requests served from the result cache.
    pub cache_hits: u64,
    /// Requests that found no cache entry (leader executions).
    pub cache_misses: u64,
    /// Requests coalesced onto an in-flight identical campaign.
    pub requests_coalesced: u64,
    /// Campaigns actually executed by this server.
    pub campaigns_executed: u64,
    /// Campaigns currently in flight (shard queue depth proxy).
    pub inflight: u64,
    /// Cases/second of the most recently completed campaign
    /// (micro-cases — `cases_per_sec × 1e6` stored integrally).
    pub last_campaign_ucases_per_sec: u64,
}

/// One in-flight campaign: the leader publishes the serialized report
/// (or its panic) and wakes every coalesced follower. The supervisor
/// feeds `progress` while the campaign runs, so `GET /campaign/<fp>`
/// can answer with live shard/case counts instead of a bare `running`.
struct InFlight {
    done: Mutex<Option<Result<Arc<Vec<u8>>, String>>>,
    cv: Condvar,
    progress: Arc<FleetProgress>,
}

impl InFlight {
    fn wait(&self) -> Result<Arc<Vec<u8>>, String> {
        let mut done = self.done.lock().expect("inflight poisoned");
        loop {
            if let Some(result) = done.as_ref() {
                return result.clone();
            }
            done = self.cv.wait(done).expect("inflight poisoned");
        }
    }

    fn publish(&self, result: Result<Arc<Vec<u8>>, String>) {
        *self.done.lock().expect("inflight poisoned") = Some(result);
        self.cv.notify_all();
    }
}

/// Shared server state: cache, fingerprint memo, in-flight table,
/// counters.
struct State {
    cache: ResultCache,
    fingerprints: Mutex<HashMap<CampaignSpec, CampaignFingerprint>>,
    inflight: Mutex<HashMap<u64, Arc<InFlight>>>,
    started: Instant,
    campaign_posts: AtomicU64,
    campaign_gets: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    requests_coalesced: AtomicU64,
    campaigns_executed: AtomicU64,
    inflight_depth: AtomicUsize,
    last_ucases_per_sec: AtomicU64,
}

impl State {
    fn metrics(&self) -> ServerMetrics {
        ServerMetrics {
            uptime_ms: u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX),
            campaign_posts: self.campaign_posts.load(Ordering::Relaxed),
            campaign_gets: self.campaign_gets.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            requests_coalesced: self.requests_coalesced.load(Ordering::Relaxed),
            campaigns_executed: self.campaigns_executed.load(Ordering::Relaxed),
            inflight: self.inflight_depth.load(Ordering::Relaxed) as u64,
            last_campaign_ucases_per_sec: self.last_ucases_per_sec.load(Ordering::Relaxed),
        }
    }

    /// Spec → fingerprint, memoized (computing a fingerprint resolves
    /// every MuT's pools — too slow for the hot hit path).
    fn fingerprint_of(&self, spec: &CampaignSpec) -> CampaignFingerprint {
        if let Some(fp) = self
            .fingerprints
            .lock()
            .expect("fingerprint memo poisoned")
            .get(spec)
        {
            return *fp;
        }
        let fp = match spec.adaptive() {
            Some(acfg) => fingerprint_adaptive(spec.os, &spec.config(), &acfg),
            None => fingerprint(spec.os, &spec.config()),
        };
        self.fingerprints
            .lock()
            .expect("fingerprint memo poisoned")
            .insert(*spec, fp);
        fp
    }
}

/// The campaign service: a bound listener plus shared state. Serve with
/// [`Server::run`] (blocking) or [`Server::spawn`] (background thread).
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

/// A [`Server`] running on a background thread (see [`Server::spawn`]).
/// Dropping the handle does **not** stop the server; it runs for the
/// life of the process.
pub struct RunningServer {
    /// The bound address clients should connect to.
    pub addr: SocketAddr,
}

impl Server {
    /// Binds the service.
    ///
    /// # Errors
    ///
    /// Propagates listener bind / cache directory creation failures.
    pub fn bind(cfg: &ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let cache = ResultCache::new(&cfg.cache_dir, cfg.cache_capacity)?;
        Ok(Server {
            listener,
            state: Arc::new(State {
                cache,
                fingerprints: Mutex::new(HashMap::new()),
                inflight: Mutex::new(HashMap::new()),
                started: Instant::now(),
                campaign_posts: AtomicU64::new(0),
                campaign_gets: AtomicU64::new(0),
                cache_hits: AtomicU64::new(0),
                cache_misses: AtomicU64::new(0),
                requests_coalesced: AtomicU64::new(0),
                campaigns_executed: AtomicU64::new(0),
                inflight_depth: AtomicUsize::new(0),
                last_ucases_per_sec: AtomicU64::new(0),
            }),
        })
    }

    /// The address the listener actually bound (resolves `:0`).
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves forever on the calling thread: one handler thread per
    /// connection, HTTP/1.1 keep-alive within each.
    ///
    /// # Errors
    ///
    /// Returns only on a fatal `accept` failure.
    pub fn run(self) -> io::Result<()> {
        loop {
            let (stream, _) = self.listener.accept()?;
            // Responses are written whole; never trade latency for
            // coalescing on this socket.
            let _ = stream.set_nodelay(true);
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || handle_connection(stream, &state));
        }
    }

    /// [`Server::run`] on a detached background thread; returns once
    /// the address is known.
    #[must_use]
    pub fn spawn(self) -> RunningServer {
        let addr = self.local_addr().expect("bound listener has an address");
        std::thread::spawn(move || {
            let _ = self.run();
        });
        RunningServer { addr }
    }
}

/// One parsed HTTP request.
struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
    keep_alive: bool,
}

/// Reads one request off the connection. `Ok(None)` = clean EOF
/// (client closed an idle keep-alive connection).
fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Request>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_owned();
    let path = parts.next().unwrap_or_default().to_owned();
    let version = parts.next().unwrap_or_default().to_owned();
    let mut content_length = 0usize;
    let mut keep_alive = version != "HTTP/1.0";
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Ok(None);
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().unwrap_or(0);
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = !value.eq_ignore_ascii_case("close");
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        method,
        path,
        body,
        keep_alive,
    }))
}

/// Writes one `application/json` response.
fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    extra: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    if !keep_alive {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    // One write for head + body: a split write interacts with Nagle +
    // delayed ACK into ~40ms per response on loopback.
    let mut frame = Vec::with_capacity(head.len() + body.len());
    frame.extend_from_slice(head.as_bytes());
    frame.extend_from_slice(body);
    stream.write_all(&frame)?;
    stream.flush()
}

/// Serves one connection until EOF, error, or `Connection: close`.
fn handle_connection(stream: TcpStream, state: &State) {
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader_stream);
    let mut stream = stream;
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) | Err(_) => return,
        };
        let keep_alive = request.keep_alive;
        let ok = handle_request(&mut stream, state, &request).is_ok();
        if !ok || !keep_alive {
            return;
        }
    }
}

/// Routes one request.
fn handle_request(stream: &mut TcpStream, state: &State, request: &Request) -> io::Result<()> {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/campaign") => post_campaign(stream, state, request),
        ("GET", "/metrics") => {
            let body = serde_json::to_vec(&state.metrics())
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            respond(stream, 200, "OK", &[], &body, request.keep_alive)
        }
        ("GET", path) if path.starts_with("/campaign/") => get_campaign(stream, state, request),
        _ => respond(
            stream,
            404,
            "Not Found",
            &[],
            br#"{"error":"unknown route"}"#,
            request.keep_alive,
        ),
    }
}

/// `GET /campaign/<fingerprint>`.
fn get_campaign(stream: &mut TcpStream, state: &State, request: &Request) -> io::Result<()> {
    state.campaign_gets.fetch_add(1, Ordering::Relaxed);
    let hex = request.path.trim_start_matches("/campaign/");
    let Ok(fp) = hex.parse::<CampaignFingerprint>() else {
        return respond(
            stream,
            400,
            "Bad Request",
            &[],
            br#"{"error":"malformed fingerprint"}"#,
            request.keep_alive,
        );
    };
    if let Some(bytes) = state.cache.lookup(fp) {
        state.cache_hits.fetch_add(1, Ordering::Relaxed);
        return respond(
            stream,
            200,
            "OK",
            &[("X-Cache", "hit")],
            &bytes,
            request.keep_alive,
        );
    }
    let running = state
        .inflight
        .lock()
        .expect("inflight table poisoned")
        .get(&fp.as_u64())
        .map(|flight| Arc::clone(&flight.progress));
    if let Some(progress) = running {
        // Live progress for the in-flight campaign, fed by the fleet
        // supervisor (or the thread pool) as shards complete.
        let p = progress.snapshot();
        let body = format!(
            r#"{{"status":"running","shards_done":{},"shards_total":{},"cases_done":{},"worker_deaths":{},"shard_retries":{},"workers_live":{},"degraded":{}}}"#,
            p.shards_done,
            p.shards_total,
            p.cases_done,
            p.worker_deaths,
            p.shard_retries,
            p.workers_live,
            p.degraded,
        );
        respond(
            stream,
            202,
            "Accepted",
            &[],
            body.as_bytes(),
            request.keep_alive,
        )
    } else {
        respond(
            stream,
            404,
            "Not Found",
            &[],
            br#"{"status":"unknown"}"#,
            request.keep_alive,
        )
    }
}

/// `POST /campaign` — the fingerprint/cache/coalesce/execute path.
fn post_campaign(stream: &mut TcpStream, state: &State, request: &Request) -> io::Result<()> {
    state.campaign_posts.fetch_add(1, Ordering::Relaxed);
    let spec: CampaignSpec = match serde_json::from_slice(&request.body) {
        Ok(spec) => spec,
        Err(e) => {
            let body = format!(r#"{{"error":"bad campaign spec: {e}"}}"#);
            return respond(
                stream,
                400,
                "Bad Request",
                &[],
                body.as_bytes(),
                request.keep_alive,
            );
        }
    };
    let fp = state.fingerprint_of(&spec);
    if let Some(bytes) = state.cache.lookup(fp) {
        state.cache_hits.fetch_add(1, Ordering::Relaxed);
        return respond(
            stream,
            200,
            "OK",
            &[("X-Cache", "hit")],
            &bytes,
            request.keep_alive,
        );
    }
    // Miss: become the leader, or coalesce onto the one in flight. The
    // decision happens under the in-flight lock with a double-checked
    // cache probe: a requester that missed the cache *before* the
    // previous leader stored its result, but reached this lock *after*
    // that leader retired, must serve the (now present) entry rather
    // than electing itself a second leader. The leader stores to the
    // cache before retiring its in-flight entry, so "no entry in
    // flight" + "cache probe misses" really means "nobody ran this".
    let (flight, leader) = {
        let mut inflight = state.inflight.lock().expect("inflight table poisoned");
        match inflight.get(&fp.as_u64()) {
            Some(flight) => (Arc::clone(flight), false),
            None => {
                if let Some(bytes) = state.cache.peek(fp) {
                    drop(inflight);
                    state.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return respond(
                        stream,
                        200,
                        "OK",
                        &[("X-Cache", "hit")],
                        &bytes,
                        request.keep_alive,
                    );
                }
                let flight = Arc::new(InFlight {
                    done: Mutex::new(None),
                    cv: Condvar::new(),
                    progress: Arc::new(FleetProgress::default()),
                });
                inflight.insert(fp.as_u64(), Arc::clone(&flight));
                (flight, true)
            }
        }
    };
    let result = if leader {
        state.cache_misses.fetch_add(1, Ordering::Relaxed);
        state.inflight_depth.fetch_add(1, Ordering::Relaxed);
        // The fingerprint lands in the log before execution so an
        // observer (the CI chaos job, an operator) can poll
        // `GET /campaign/<fp>` while the campaign is in flight.
        eprintln!("campaign {fp} executing");
        let ran = catch_unwind(AssertUnwindSafe(|| match spec.adaptive() {
            Some(acfg) => run_adaptive_fleet_observed(
                spec.os,
                &spec.config(),
                &acfg,
                &spec.fleet(),
                Some(&flight.progress),
            ),
            None => run_campaign_fleet_observed(
                spec.os,
                &spec.config(),
                &spec.fleet(),
                Some(&flight.progress),
            ),
        }));
        let result = match ran {
            Ok(report) => {
                state.campaigns_executed.fetch_add(1, Ordering::Relaxed);
                if let Some(stats) = &report.stats {
                    state
                        .last_ucases_per_sec
                        .store((stats.cases_per_sec * 1e6) as u64, Ordering::Relaxed);
                }
                state
                    .cache
                    .store(fp, &report)
                    .map_err(|e| format!("cache store failed: {e}"))
            }
            Err(_) => Err("campaign panicked".to_owned()),
        };
        flight.publish(result.clone());
        state
            .inflight
            .lock()
            .expect("inflight table poisoned")
            .remove(&fp.as_u64());
        state.inflight_depth.fetch_sub(1, Ordering::Relaxed);
        result
    } else {
        state.requests_coalesced.fetch_add(1, Ordering::Relaxed);
        telemetry::on_request_coalesced();
        flight.wait()
    };
    match result {
        Ok(bytes) => respond(
            stream,
            200,
            "OK",
            &[
                ("X-Cache", if leader { "miss" } else { "coalesced" }),
                ("X-Fingerprint", &fp.to_string()),
            ],
            &bytes,
            request.keep_alive,
        ),
        Err(e) => {
            let body = format!(r#"{{"error":"{e}"}}"#);
            respond(
                stream,
                500,
                "Internal Server Error",
                &[],
                body.as_bytes(),
                request.keep_alive,
            )
        }
    }
}
