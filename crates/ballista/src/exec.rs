//! Single-test execution: isolation, interception, residue, and the
//! in-isolation reproduction probe.
//!
//! Each test case gets a **pristine simulated machine** — the analog of
//! the paper's per-test process (`fork` on POSIX; memory-mapped file +
//! spawn on Windows). Pristine no longer means freshly cloned: the
//! campaign engines run each MuT's cases through a [`CaseRunner`] that
//! keeps one resident machine and resets it in place between cases,
//! rolling back only what the previous case touched (the address space's
//! dirty-region journal plus per-subsystem generation stamps — see
//! [`MachineSnapshot::restore_into`]). A `catch_unwind` fence guards the
//! harness itself, playing the role of the paper's top-level exception
//! filter ("we disabled this exception filter and replaced it with code
//! that would record such an unrecoverable exception as an Abort
//! failure").
//!
//! The one thing that deliberately survives between cases is the
//! [`Session`] **residue** counter: the paper observed crashes "probably
//! due to inter-test interference, which indicates that system state was
//! not properly cleaned between test cases, even though each test is run
//! in a separate process". Residue rises as tests abort and feeds the
//! `*`-marked vulnerabilities; [`reproduce_in_isolation`] re-runs a
//! crashing case on a pristine machine to decide whether the crash earns
//! the paper's `*`.

use crate::crash::{classify, FailureClass, RawOutcome};
use crate::muts::Mut;
use crate::value::TestValue;
use sim_kernel::outcome::ApiAbort;
use sim_kernel::variant::OsVariant;
use sim_kernel::{Kernel, MachineFlavor, MachineSnapshot};
use std::cell::RefCell;
use std::rc::Rc;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Machine-provisioning counters, aggregated across all worker threads.
///
/// The campaign engine reads these to report how much wall-clock the
/// snapshot-cloning fast path saved versus full boots.
pub mod stats {
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Machines created by running the full boot sequence.
    pub static BOOTS: AtomicU64 = AtomicU64::new(0);
    /// Machines created by cloning a pre-booted template.
    pub static RESTORES: AtomicU64 = AtomicU64::new(0);
    /// Restores served by resetting a resident machine in place
    /// (dirty-region rollback + generation-stamped subsystems) — a
    /// subset of [`static@RESTORES`].
    pub static RESTORES_FAST: AtomicU64 = AtomicU64::new(0);
    /// Restores that deep-cloned the template (first case on a runner,
    /// or a corrupted resident) — the other subset of [`static@RESTORES`].
    pub static RESTORES_FULL: AtomicU64 = AtomicU64::new(0);
    /// Machines provisioned for isolation probes ([`super::reproduce_in_isolation`]).
    /// Counted apart from [`static@RESTORES`] so `restores` equals cases
    /// executed instead of drifting by one per catastrophic probe.
    pub static PROBE_PROVISIONS: AtomicU64 = AtomicU64::new(0);
    /// Nanoseconds spent in full boots.
    pub static BOOT_NANOS: AtomicU64 = AtomicU64::new(0);
    /// Nanoseconds spent restoring templates.
    pub static RESTORE_NANOS: AtomicU64 = AtomicU64::new(0);
    /// Cached boot templates dropped because a restore produced a
    /// corrupted (already-dead) machine.
    pub static TEMPLATE_INVALIDATIONS: AtomicU64 = AtomicU64::new(0);
    /// Filesystem crash images materialized by the crashcon engine (one
    /// clone of the pristine tree per crash point). Counted apart from
    /// [`static@RESTORES`]: a crash-point snapshot is not a machine
    /// restore, and billing it as one would wreck the `restores == cases`
    /// invariant the campaign stats keep.
    pub static CRASHCON_SNAPSHOTS: AtomicU64 = AtomicU64::new(0);
    /// Crash images "remounted" into the crashcon engine's resident
    /// verification kernel (one per evaluated crash point).
    pub static CRASHCON_REMOUNTS: AtomicU64 = AtomicU64::new(0);

    /// A private provisioning-counter set one campaign can install on its
    /// worker threads (via [`install_sink`]) to get **exact** per-campaign
    /// numbers. The process-wide statics above keep accumulating across
    /// campaigns; the sink does not — which is what fixed the
    /// results-JSON stats that used to inflate variant by variant when
    /// `run_all` fanned campaigns out concurrently.
    #[derive(Debug, Default)]
    pub struct Counters {
        /// Machines created by a full boot while this sink was installed.
        pub boots: AtomicU64,
        /// Machines created by a template clone while installed.
        pub restores: AtomicU64,
        /// Restores served by an in-place reset (subset of `restores`).
        pub restores_fast: AtomicU64,
        /// Restores that deep-cloned the template (subset of `restores`).
        pub restores_full: AtomicU64,
        /// Machines provisioned for isolation probes (not restores).
        pub probe_provisions: AtomicU64,
        /// Nanoseconds spent booting while installed.
        pub boot_nanos: AtomicU64,
        /// Nanoseconds spent restoring while installed.
        pub restore_nanos: AtomicU64,
        /// Crashcon crash-point snapshots while installed (never part of
        /// `restores`).
        pub crashcon_snapshots: AtomicU64,
        /// Crashcon crash-image remounts while installed.
        pub crashcon_remounts: AtomicU64,
    }

    impl Counters {
        /// `(boots, restores, boot_nanos, restore_nanos)` recorded so far.
        #[must_use]
        pub fn snapshot(&self) -> (u64, u64, u64, u64) {
            (
                self.boots.load(Ordering::Relaxed),
                self.restores.load(Ordering::Relaxed),
                self.boot_nanos.load(Ordering::Relaxed),
                self.restore_nanos.load(Ordering::Relaxed),
            )
        }
    }

    thread_local! {
        static SINK: RefCell<Option<Arc<Counters>>> = const { RefCell::new(None) };
    }

    /// Routes this thread's provisioning events into `counters` (in
    /// addition to the process-wide statics) until [`clear_sink`].
    pub fn install_sink(counters: Arc<Counters>) {
        SINK.with(|s| *s.borrow_mut() = Some(counters));
    }

    /// Stops routing this thread's provisioning events into a sink.
    pub fn clear_sink() {
        SINK.with(|s| *s.borrow_mut() = None);
    }

    pub(super) fn record_boot(nanos: u64) {
        BOOTS.fetch_add(1, Ordering::Relaxed);
        BOOT_NANOS.fetch_add(nanos, Ordering::Relaxed);
        crate::telemetry::on_boot(nanos);
        SINK.with(|s| {
            if let Some(c) = s.borrow().as_deref() {
                c.boots.fetch_add(1, Ordering::Relaxed);
                c.boot_nanos.fetch_add(nanos, Ordering::Relaxed);
            }
        });
    }

    pub(super) fn record_restore(nanos: u64, fast: bool) {
        RESTORES.fetch_add(1, Ordering::Relaxed);
        RESTORE_NANOS.fetch_add(nanos, Ordering::Relaxed);
        if fast {
            RESTORES_FAST.fetch_add(1, Ordering::Relaxed);
        } else {
            RESTORES_FULL.fetch_add(1, Ordering::Relaxed);
        }
        crate::telemetry::on_restore(nanos, fast);
        SINK.with(|s| {
            if let Some(c) = s.borrow().as_deref() {
                c.restores.fetch_add(1, Ordering::Relaxed);
                c.restore_nanos.fetch_add(nanos, Ordering::Relaxed);
                if fast {
                    c.restores_fast.fetch_add(1, Ordering::Relaxed);
                } else {
                    c.restores_full.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
    }

    /// Flushes a batch of `count` in-place resets a [`super::CaseRunner`]
    /// accumulated locally (with `nanos` of sampled host time attributed
    /// to them). The batch path only runs while telemetry is disabled, so
    /// no hub hook fires here — the hub's histograms never see estimated
    /// samples.
    pub(super) fn record_fast_restores(count: u64, nanos: u64) {
        RESTORES.fetch_add(count, Ordering::Relaxed);
        RESTORES_FAST.fetch_add(count, Ordering::Relaxed);
        RESTORE_NANOS.fetch_add(nanos, Ordering::Relaxed);
        SINK.with(|s| {
            if let Some(c) = s.borrow().as_deref() {
                c.restores.fetch_add(count, Ordering::Relaxed);
                c.restores_fast.fetch_add(count, Ordering::Relaxed);
                c.restore_nanos.fetch_add(nanos, Ordering::Relaxed);
            }
        });
    }

    /// Records a batch of crashcon crash-point snapshots and remounts
    /// (one pair per evaluated crash point, flushed per case). Kept out of
    /// `restores` entirely — see [`static@CRASHCON_SNAPSHOTS`].
    pub(crate) fn record_crashcon(snapshots: u64, remounts: u64) {
        CRASHCON_SNAPSHOTS.fetch_add(snapshots, Ordering::Relaxed);
        CRASHCON_REMOUNTS.fetch_add(remounts, Ordering::Relaxed);
        crate::telemetry::on_crashcon(snapshots, remounts);
        SINK.with(|s| {
            if let Some(c) = s.borrow().as_deref() {
                c.crashcon_snapshots.fetch_add(snapshots, Ordering::Relaxed);
                c.crashcon_remounts.fetch_add(remounts, Ordering::Relaxed);
            }
        });
    }

    pub(super) fn record_probe() {
        PROBE_PROVISIONS.fetch_add(1, Ordering::Relaxed);
        SINK.with(|s| {
            if let Some(c) = s.borrow().as_deref() {
                c.probe_provisions.fetch_add(1, Ordering::Relaxed);
            }
        });
    }

    /// (boots, restores, boot_nanos, restore_nanos) since the last reset.
    #[must_use]
    pub fn snapshot() -> (u64, u64, u64, u64) {
        (
            BOOTS.load(Ordering::Relaxed),
            RESTORES.load(Ordering::Relaxed),
            BOOT_NANOS.load(Ordering::Relaxed),
            RESTORE_NANOS.load(Ordering::Relaxed),
        )
    }

    /// Zeroes the process-wide counters. Campaigns report from their own
    /// [`Counters`] sink (exact even under concurrent campaigns); the
    /// reset just keeps the process-lifetime statics from growing into
    /// meaningless cross-campaign aggregates.
    pub fn reset() {
        BOOTS.store(0, Ordering::Relaxed);
        RESTORES.store(0, Ordering::Relaxed);
        RESTORES_FAST.store(0, Ordering::Relaxed);
        RESTORES_FULL.store(0, Ordering::Relaxed);
        PROBE_PROVISIONS.store(0, Ordering::Relaxed);
        BOOT_NANOS.store(0, Ordering::Relaxed);
        RESTORE_NANOS.store(0, Ordering::Relaxed);
        CRASHCON_SNAPSHOTS.store(0, Ordering::Relaxed);
        CRASHCON_REMOUNTS.store(0, Ordering::Relaxed);
    }
}

/// Harness-level fault injection, used by the robustness tests to prove
/// the campaign engine contains its *own* failures (worker panics) the
/// way the paper's harness contained test-task failures. Disarmed (the
/// default) it costs one mutex lock per MuT.
pub mod fault {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    static WORKER_PANIC: Mutex<Option<(String, u32)>> = Mutex::new(None);

    /// When armed, the crashcon engine's crash-image construction tears
    /// every rename apart — the source leaves its directory but the
    /// destination insert is lost, exactly the torn state a non-atomic
    /// rename would leak across a crash. Exists to prove the crashcon
    /// oracle *can* fail: a correct filesystem passes every crash point,
    /// so without this latch the oracle's red path would be dead code.
    static BROKEN_RENAME: AtomicBool = AtomicBool::new(false);

    /// Arms or disarms the torn-rename injection for crashcon crash
    /// images.
    pub fn arm_broken_rename(on: bool) {
        BROKEN_RENAME.store(on, Ordering::SeqCst);
    }

    /// Whether the torn-rename injection is armed.
    #[must_use]
    pub fn broken_rename_armed() -> bool {
        BROKEN_RENAME.load(Ordering::SeqCst)
    }

    /// Arms an injected panic: the next `times` campaign-worker visits to
    /// `mut_name` panic *outside* the per-case exception fence, as a bug
    /// in the harness itself would.
    pub fn arm_worker_panic(mut_name: &str, times: u32) {
        *WORKER_PANIC.lock().expect("fault latch poisoned") =
            Some((mut_name.to_owned(), times));
    }

    /// Disarms any pending injected fault.
    pub fn disarm() {
        *WORKER_PANIC.lock().expect("fault latch poisoned") = None;
    }

    /// Campaign workers call this per MuT; panics while armed for `name`.
    ///
    /// # Panics
    ///
    /// Deliberately, when an armed injection matches `name`.
    pub fn maybe_panic(name: &str) {
        let mut latch = WORKER_PANIC.lock().expect("fault latch poisoned");
        let fired = match latch.as_mut() {
            Some((armed, times)) if armed == name && *times > 0 => {
                *times -= 1;
                *times == 0
            }
            _ => return,
        };
        if fired {
            *latch = None;
        }
        drop(latch);
        panic!("injected harness fault while testing {name}");
    }
}

thread_local! {
    /// Per-thread cache of pre-booted machine templates, one per flavour.
    /// Three flavours exist, so a linear scan beats any map.
    static TEMPLATES: RefCell<Vec<(MachineFlavor, Rc<MachineSnapshot>)>> = const { RefCell::new(Vec::new()) };
}

/// When set, [`fresh_machine`] bypasses the template cache and boots a
/// machine per case with eagerly zero-filled regions — the cost model of
/// the pre-snapshot harness. Observable behaviour is identical (the
/// determinism tests pass either way); the benchmark driver flips this
/// to measure the real speedup rather than estimating it.
pub static LEGACY_PROVISIONING: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// Provisions a fresh machine for one test case: the first request per
/// (thread, flavour) runs the real boot sequence and snapshots it; every
/// later request clones the snapshot. Booting is fully deterministic
/// (`BTreeMap`s and `Vec`s only — no hashing, time, or randomness), so
/// the clone is bit-identical to a fresh boot; `sim-kernel` asserts this
/// in its snapshot tests.
#[must_use]
pub fn fresh_machine(flavor: MachineFlavor) -> Kernel {
    use std::sync::atomic::Ordering;
    if LEGACY_PROVISIONING.load(Ordering::Relaxed) {
        let start = std::time::Instant::now();
        let mut kernel = Kernel::with_flavor(flavor);
        kernel.space.set_eager_zero(true);
        stats::record_boot(elapsed_ns(start));
        return kernel;
    }
    TEMPLATES.with(|cache| {
        let mut cache = cache.borrow_mut();
        let start = std::time::Instant::now();
        if let Some(pos) = cache.iter().position(|(f, _)| *f == flavor) {
            let kernel = cache[pos].1.restore();
            // A template that restores to a dead machine is corrupted
            // (e.g. snapshotted after a crash latch): drop it and fall
            // through to a clean boot rather than poisoning every later
            // case on this thread.
            if kernel.is_alive() {
                stats::record_restore(elapsed_ns(start), false);
                return kernel;
            }
            cache.remove(pos);
            stats::TEMPLATE_INVALIDATIONS.fetch_add(1, Ordering::Relaxed);
        }
        let snap = Rc::new(MachineSnapshot::boot(flavor));
        let kernel = snap.restore();
        cache.push((flavor, snap));
        stats::record_boot(elapsed_ns(start));
        kernel
    })
}

/// Provisions a pristine machine for an **isolation probe** — same
/// template mechanics as [`fresh_machine`], but counted under
/// `probe_provisions` instead of `restores`. Probes are extra machines
/// on top of the planned cases; billing them as restores is what made
/// `restores` drift past `cases` by one per catastrophic MuT in earlier
/// campaign artifacts.
fn probe_machine(flavor: MachineFlavor) -> Kernel {
    use std::sync::atomic::Ordering;
    stats::record_probe();
    if LEGACY_PROVISIONING.load(Ordering::Relaxed) {
        let mut kernel = Kernel::with_flavor(flavor);
        kernel.space.set_eager_zero(true);
        return kernel;
    }
    TEMPLATES.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(pos) = cache.iter().position(|(f, _)| *f == flavor) {
            let kernel = cache[pos].1.restore();
            if kernel.is_alive() {
                return kernel;
            }
            cache.remove(pos);
            stats::TEMPLATE_INVALIDATIONS.fetch_add(1, Ordering::Relaxed);
        }
        let snap = Rc::new(MachineSnapshot::boot(flavor));
        let kernel = snap.restore();
        cache.push((flavor, snap));
        kernel
    })
}

/// Drops this thread's cached boot templates. Quarantine logic calls this
/// after a contained worker panic: whatever state the panic left behind,
/// the retry starts from templates rebuilt by the deterministic boot
/// sequence.
pub fn invalidate_templates() {
    TEMPLATES.with(|cache| cache.borrow_mut().clear());
}

fn elapsed_ns(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Batched per-MuT case executor: keeps one **resident machine** across
/// cases and resets it *in place* between them instead of cloning the
/// boot template per case.
///
/// The reset is O(touched): the address space rolls back only the
/// regions its dirty journal recorded, and each kernel subsystem carries
/// a generation stamp that lets [`MachineSnapshot::restore_into`] skip
/// the deep clone entirely when the case never structurally touched it.
/// Both the dirty journal and the generation stamps are written *before*
/// the mutation they cover, so the reset stays sound even when a case
/// panics mid-call and unwinds through the harness fence — the next
/// provision simply rolls back everything the case could have dirtied.
///
/// The first provision on a runner (and any provision after the resident
/// machine restored dead, which invalidates the template) deep-clones the
/// template and is counted as a *full* restore; every later one is a
/// *fast* in-place reset. Under [`LEGACY_PROVISIONING`] the runner boots
/// a machine per case exactly like [`fresh_machine`] does, so the
/// calibration benchmark still measures the real before/after.
#[derive(Debug, Default)]
pub struct CaseRunner {
    /// The resident machine and the flavour it was provisioned for.
    resident: Option<(MachineFlavor, Kernel)>,
    /// The boot template the resident machine was provisioned from
    /// (`None` under legacy provisioning). Holding the `Rc` here lets the
    /// per-case reset skip the thread-local template cache entirely.
    template: Option<Rc<MachineSnapshot>>,
    /// In-place resets performed but not yet flushed to [`stats`]. The
    /// hot path batches counter updates locally (only while telemetry is
    /// off) and flushes on drop, so per-case cost is one increment
    /// instead of five atomics plus a thread-local borrow.
    fast_pending: u64,
    /// Sampled host nanoseconds attributed to the pending resets: one
    /// reset in [`TIMING_SAMPLE`] is timed and scaled up, keeping the
    /// per-case clock reads off the hot path while `restore_nanos`
    /// stays statistically honest.
    fast_nanos: u64,
}

/// One in-place reset per this many is wall-clock timed on the batched
/// stats path; the measured value stands in for the whole stride.
const TIMING_SAMPLE: u64 = 64;

/// Pending in-place resets are flushed to the global counters at least
/// this often, bounding how far mid-campaign readers can lag.
const STATS_FLUSH_EVERY: u64 = 4096;

impl Drop for CaseRunner {
    fn drop(&mut self) {
        self.flush_stats();
    }
}

impl CaseRunner {
    /// A runner with no resident machine yet; the first case provisions
    /// one from the thread's boot-template cache.
    #[must_use]
    pub fn new() -> Self {
        CaseRunner::default()
    }

    /// Flushes locally batched in-place-reset counters to [`stats`].
    /// Runs on drop (a runner lives for exactly one MuT's case loop, so
    /// campaign-level accounting stays exact) and before any slow-path
    /// provisioning.
    fn flush_stats(&mut self) {
        if self.fast_pending > 0 {
            stats::record_fast_restores(self.fast_pending, self.fast_nanos);
            self.fast_pending = 0;
            self.fast_nanos = 0;
        }
    }

    /// Provisions the resident machine for the next case: in-place reset
    /// when possible, template clone or legacy boot otherwise.
    fn provision(&mut self, flavor: MachineFlavor) -> &mut Kernel {
        use std::sync::atomic::Ordering;
        if LEGACY_PROVISIONING.load(Ordering::Relaxed) {
            let start = std::time::Instant::now();
            let mut kernel = Kernel::with_flavor(flavor);
            kernel.space.set_eager_zero(true);
            stats::record_boot(elapsed_ns(start));
            self.template = None;
            return &mut self.resident.insert((flavor, kernel)).1;
        }
        // Fast path: the resident machine resets in place from the very
        // template it was provisioned from — no thread-local traffic.
        // A resident from a *different* flavour (a runner reused across
        // variants) has a meaningless dirty journal for this template,
        // so it falls through to a full clone instead.
        enum FastReset {
            NotApplicable,
            Alive,
            Dead,
        }
        let CaseRunner { resident, template, fast_pending, fast_nanos } = self;
        let fast = match (resident.as_mut(), template.as_deref()) {
            (Some((f, machine)), Some(snap)) if *f == flavor => {
                if crate::telemetry::enabled() {
                    // Precise per-reset timing and hub hooks when the
                    // observability layer is watching.
                    let start = std::time::Instant::now();
                    snap.restore_into(machine);
                    if machine.is_alive() {
                        stats::record_restore(elapsed_ns(start), true);
                        FastReset::Alive
                    } else {
                        FastReset::Dead
                    }
                } else {
                    let start =
                        (*fast_pending % TIMING_SAMPLE == 0).then(std::time::Instant::now);
                    snap.restore_into(machine);
                    if machine.is_alive() {
                        if let Some(s) = start {
                            *fast_nanos += elapsed_ns(s) * TIMING_SAMPLE;
                        }
                        *fast_pending += 1;
                        if *fast_pending >= STATS_FLUSH_EVERY {
                            stats::record_fast_restores(*fast_pending, *fast_nanos);
                            *fast_pending = 0;
                            *fast_nanos = 0;
                        }
                        FastReset::Alive
                    } else {
                        FastReset::Dead
                    }
                }
            }
            _ => FastReset::NotApplicable,
        };
        match fast {
            FastReset::Alive => return &mut self.resident.as_mut().expect("reset above").1,
            FastReset::Dead => {
                self.flush_stats();
                // Restoring produced a dead machine: the template itself
                // is corrupted (e.g. snapshotted after a crash latch).
                // Drop it everywhere and re-provision from a clean boot.
                TEMPLATES.with(|cache| cache.borrow_mut().retain(|(cf, _)| *cf != flavor));
                stats::TEMPLATE_INVALIDATIONS.fetch_add(1, Ordering::Relaxed);
                self.resident = None;
                self.template = None;
            }
            FastReset::NotApplicable => {}
        }
        TEMPLATES.with(|cache| {
            let mut cache = cache.borrow_mut();
            loop {
                let Some(pos) = cache.iter().position(|(f, _)| *f == flavor) else {
                    let start = std::time::Instant::now();
                    cache.push((flavor, Rc::new(MachineSnapshot::boot(flavor))));
                    stats::record_boot(elapsed_ns(start));
                    continue;
                };
                let snap = &cache[pos].1;
                let start = std::time::Instant::now();
                let machine = snap.restore();
                if machine.is_alive() {
                    self.template = Some(Rc::clone(snap));
                    self.resident = Some((flavor, machine));
                    stats::record_restore(elapsed_ns(start), false);
                    break;
                }
                // Corrupted template: drop it and boot a replacement on
                // the next pass.
                cache.remove(pos);
                stats::TEMPLATE_INVALIDATIONS.fetch_add(1, Ordering::Relaxed);
            }
        });
        &mut self.resident.as_mut().expect("provisioned above").1
    }

    /// Executes one case on the resident machine — same observable
    /// semantics as [`execute_case_budgeted`], which the proptest and
    /// engine-equivalence suites assert.
    #[must_use]
    pub fn execute(
        &mut self,
        os: OsVariant,
        mut_: &Mut,
        pools: &[Vec<TestValue>],
        combo: &[usize],
        session: &mut Session,
        fuel_budget: u64,
    ) -> CaseResult {
        let kernel = self.provision(os.machine_flavor());
        kernel.fuel = sim_kernel::clock::FuelMeter::with_budget(fuel_budget);
        kernel.residue = session.residue;
        let (raw, any_exceptional) = run_on(kernel, os, mut_, pools, combo);
        session.note(raw, any_exceptional);
        if crate::telemetry::enabled() {
            crate::telemetry::on_case_executed();
            crate::telemetry::on_case_profile(os, mut_.group.label(), &kernel.subsys);
        }
        CaseResult {
            raw,
            class: classify(raw, any_exceptional),
            any_exceptional,
            residue_probed: kernel.residue_probed,
            fuel_used: kernel.fuel.consumed(),
        }
    }

    /// [`CaseRunner::execute`] with the filesystem's crash-op recorder
    /// switched on for the duration of the case: returns the case result
    /// plus the drained [`FsOp`](sim_kernel::fs::FsOp) log (and whether
    /// the [`sim_kernel::fs::MAX_OPLOG`] bound truncated it). Recording is
    /// (re-)enabled per case because the in-place reset replaces the
    /// whole filesystem — recorder state included — whenever the previous
    /// case structurally touched it.
    #[must_use]
    pub fn execute_recorded(
        &mut self,
        os: OsVariant,
        mut_: &Mut,
        pools: &[Vec<TestValue>],
        combo: &[usize],
        session: &mut Session,
        fuel_budget: u64,
    ) -> (CaseResult, Vec<sim_kernel::fs::FsOp>, bool) {
        let kernel = self.provision(os.machine_flavor());
        kernel.fuel = sim_kernel::clock::FuelMeter::with_budget(fuel_budget);
        kernel.residue = session.residue;
        kernel.fs.set_crash_recording(true);
        let (raw, any_exceptional) = run_on(kernel, os, mut_, pools, combo);
        let (ops, truncated) = kernel.fs.take_oplog();
        kernel.fs.set_crash_recording(false);
        session.note(raw, any_exceptional);
        if crate::telemetry::enabled() {
            crate::telemetry::on_case_executed();
            crate::telemetry::on_case_profile(os, mut_.group.label(), &kernel.subsys);
        }
        let result = CaseResult {
            raw,
            class: classify(raw, any_exceptional),
            any_exceptional,
            residue_probed: kernel.residue_probed,
            fuel_used: kernel.fuel.consumed(),
        };
        (result, ops, truncated)
    }
}

/// Cross-case state for one campaign run on one OS.
#[derive(Debug, Clone, Default)]
pub struct Session {
    /// Accumulated uncleaned state. Rises on Abort outcomes, resets when
    /// the machine crashes (the "reboot").
    pub residue: u32,
}

impl Session {
    /// A clean session (freshly booted test machine).
    #[must_use]
    pub fn new() -> Self {
        Session::default()
    }

    /// Folds one observed case into the session, raising or resetting
    /// residue. `execute_case` calls this itself; the parallel engine's
    /// replay pass calls it directly when it reuses a recorded clean
    /// outcome instead of re-executing.
    pub fn note(&mut self, raw: RawOutcome, any_exceptional: bool) {
        match raw {
            // Aborted tasks never ran their cleanup; silently-accepted
            // garbage (e.g. a bogus handle "closed" successfully) leaves
            // kernel state behind too. Both feed the interference the
            // paper observed.
            RawOutcome::TaskAbort => self.residue += 1,
            RawOutcome::ReturnedSuccess if any_exceptional => self.residue += 1,
            RawOutcome::SystemCrash => self.residue = 0,
            _ => {}
        }
    }
}

/// The outcome of one executed test case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseResult {
    /// What the harness observed.
    pub raw: RawOutcome,
    /// CRASH classification (ground-truth Silent via the oracle bit).
    pub class: FailureClass,
    /// Whether any selected test value was exceptional.
    pub any_exceptional: bool,
    /// Whether the simulated OS consulted the machine's residue counter
    /// while deciding this outcome ([`Kernel::probe_residue`]). Cases
    /// that never probe are provably independent of session history —
    /// the parallel campaign engine runs them out of order.
    pub residue_probed: bool,
    /// Fuel the case burned (simulated work units) — a pure function of
    /// the case, so identical on every host and engine. The telemetry
    /// trace uses cumulative fuel as its deterministic time axis. For a
    /// replayed (not re-executed) case the engines restore this from
    /// the clean-pass side channel or the journal record.
    pub fuel_used: u64,
}

/// Default per-case watchdog fuel budget (simulated work units; one unit
/// ≈ one simulated millisecond). Generously above anything a legitimate
/// case consumes — a case makes a handful of calls at one unit each, and
/// the longest benign timed wait burns 60 000 — while still catching a
/// hostile near-`INFINITE` duration (4.29 billion units) instantly.
pub const DEFAULT_FUEL_BUDGET: u64 = 2_000_000;

/// Executes one test case: fresh machine, constructors, call,
/// classification.
///
/// `pools` holds the resolved value pool per parameter; `combo` selects
/// one value index per parameter. Runs under [`DEFAULT_FUEL_BUDGET`];
/// campaigns with a configured budget use [`execute_case_budgeted`].
#[must_use]
pub fn execute_case(
    os: OsVariant,
    mut_: &Mut,
    pools: &[Vec<TestValue>],
    combo: &[usize],
    session: &mut Session,
) -> CaseResult {
    execute_case_budgeted(os, mut_, pools, combo, session, DEFAULT_FUEL_BUDGET)
}

/// [`execute_case`] with an explicit watchdog fuel budget for the case.
/// Fuel consumed is a pure function of the case (simulated work only, no
/// wall clock), so a given budget yields the same outcome on every host,
/// at every parallelism, and on every resumed run.
#[must_use]
pub fn execute_case_budgeted(
    os: OsVariant,
    mut_: &Mut,
    pools: &[Vec<TestValue>],
    combo: &[usize],
    session: &mut Session,
    fuel_budget: u64,
) -> CaseResult {
    let mut kernel = fresh_machine(os.machine_flavor());
    kernel.fuel = sim_kernel::clock::FuelMeter::with_budget(fuel_budget);
    kernel.residue = session.residue;
    let raw_and_exc = run_on(&mut kernel, os, mut_, pools, combo);
    session.note(raw_and_exc.0, raw_and_exc.1);
    if crate::telemetry::enabled() {
        crate::telemetry::on_case_executed();
        crate::telemetry::on_case_profile(os, mut_.group.label(), &kernel.subsys);
    }
    CaseResult {
        raw: raw_and_exc.0,
        class: classify(raw_and_exc.0, raw_and_exc.1),
        any_exceptional: raw_and_exc.1,
        residue_probed: kernel.residue_probed,
        fuel_used: kernel.fuel.consumed(),
    }
}

/// Runs constructors + dispatch on a given machine and reports (raw
/// outcome, any-exceptional-input).
fn run_on(
    kernel: &mut Kernel,
    os: OsVariant,
    mut_: &Mut,
    pools: &[Vec<TestValue>],
    combo: &[usize],
) -> (RawOutcome, bool) {
    debug_assert_eq!(pools.len(), combo.len());
    kernel.residue_probed = false; // per-case flag, even on reused machines
    let mut any_exceptional = false;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut args = Vec::with_capacity(combo.len());
        for (pool, &idx) in pools.iter().zip(combo) {
            let value = &pool[idx];
            any_exceptional |= value.exceptional;
            args.push((value.make)(kernel, os));
        }
        (mut_.dispatch)(kernel, os, &args)
    }));
    // The crash latch outranks whatever the call returned: a dead machine
    // is Catastrophic even if the call "succeeded".
    if !kernel.is_alive() {
        return (RawOutcome::SystemCrash, any_exceptional);
    }
    // The watchdog outranks everything but a crash: a case that exhausted
    // its fuel budget ran past the harness's patience, even if the call
    // eventually "returned" — the real harness would have killed and
    // restarted the task long before.
    if kernel.fuel.exhausted() {
        return (RawOutcome::TaskHang, any_exceptional);
    }
    let raw = match outcome {
        Ok(Ok(ret)) => {
            if ret.reported_error() {
                RawOutcome::ReturnedError
            } else {
                RawOutcome::ReturnedSuccess
            }
        }
        Ok(Err(ApiAbort::Hang)) => RawOutcome::TaskHang,
        Ok(Err(_)) => RawOutcome::TaskAbort,
        // A harness-level panic is treated like the paper's top-level
        // exception filter: an Abort, never a harness death.
        Err(_) => RawOutcome::TaskAbort,
    };
    (raw, any_exceptional)
}

/// Executes a test case **on an existing machine** without rebooting it —
/// the building block of the sequence-dependent testing extension
/// ([`crate::sequence`]), where a second call runs in whatever state the
/// first left behind.
#[must_use]
pub fn execute_case_on(
    kernel: &mut Kernel,
    os: OsVariant,
    mut_: &Mut,
    pools: &[Vec<TestValue>],
    combo: &[usize],
) -> CaseResult {
    let (raw, any_exceptional) = run_on(kernel, os, mut_, pools, combo);
    CaseResult {
        raw,
        class: classify(raw, any_exceptional),
        any_exceptional,
        residue_probed: kernel.residue_probed,
        // The machine is reused across calls, so this is the meter's
        // cumulative reading — callers sequencing several calls diff it.
        fuel_used: kernel.fuel.consumed(),
    }
}

/// Re-runs a case on a pristine machine (zero residue) and reports whether
/// it still crashes the system — the paper's single-test reproduction
/// check. `false` for a crash that only reproduces inside the harness is
/// what earns a Table 3 `*`.
#[must_use]
pub fn reproduce_in_isolation(
    os: OsVariant,
    mut_: &Mut,
    pools: &[Vec<TestValue>],
    combo: &[usize],
) -> bool {
    let mut kernel = probe_machine(os.machine_flavor());
    kernel.fuel = sim_kernel::clock::FuelMeter::with_budget(DEFAULT_FUEL_BUDGET);
    kernel.residue = 0;
    let (raw, _) = run_on(&mut kernel, os, mut_, pools, combo);
    raw == RawOutcome::SystemCrash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::muts::{arg, FunctionGroup};
    use std::sync::Arc;

    fn null_and_valid_ctx_pools() -> Vec<Vec<TestValue>> {
        vec![
            vec![TestValue::constant("current thread", false, (u32::MAX - 1) as u64)],
            vec![
                TestValue::constant("NULL", true, 0),
                TestValue::with("valid CONTEXT buffer", false, |k, _| {
                    k.alloc_user(64, "ctx").addr()
                }),
            ],
        ]
    }

    fn get_thread_context_mut() -> Mut {
        Mut {
            name: "GetThreadContext",
            group: FunctionGroup::ProcessPrimitives,
            params: vec!["HANDLE", "buffer"],
            dispatch: Arc::new(|k, os, a| {
                let p = sim_win32::Win32Profile::for_os(os);
                sim_win32::threadapi::GetThreadContext(k, p, arg::handle(a[0]), arg::ptr(a[1]))
            }),
        }
    }

    #[test]
    fn listing1_classified_catastrophic_on_98_abort_on_nt() {
        let m = get_thread_context_mut();
        let pools = null_and_valid_ctx_pools();
        let mut session = Session::new();
        // combo [0,0] = (current thread, NULL) — Listing 1.
        let r98 = execute_case(OsVariant::Win98, &m, &pools, &[0, 0], &mut session);
        assert_eq!(r98.class, FailureClass::Catastrophic);
        let rnt = execute_case(OsVariant::WinNt4, &m, &pools, &[0, 0], &mut session);
        assert_eq!(rnt.class, FailureClass::Abort);
        // combo [0,1] = valid buffer: passes everywhere.
        let ok = execute_case(OsVariant::Win98, &m, &pools, &[0, 1], &mut session);
        assert_eq!(ok.class, FailureClass::Pass);
    }

    #[test]
    fn deterministic_crash_reproduces_in_isolation() {
        let m = get_thread_context_mut();
        let pools = null_and_valid_ctx_pools();
        assert!(reproduce_in_isolation(OsVariant::Win98, &m, &pools, &[0, 0]));
        assert!(!reproduce_in_isolation(OsVariant::WinNt4, &m, &pools, &[0, 0]));
    }

    #[test]
    fn residue_rises_on_aborts_and_resets_on_crash() {
        let m = get_thread_context_mut();
        let pools = null_and_valid_ctx_pools();
        let mut session = Session::new();
        let _ = execute_case(OsVariant::WinNt4, &m, &pools, &[0, 0], &mut session);
        let _ = execute_case(OsVariant::WinNt4, &m, &pools, &[0, 0], &mut session);
        assert_eq!(session.residue, 2);
        let _ = execute_case(OsVariant::Win98, &m, &pools, &[0, 0], &mut session);
        assert_eq!(session.residue, 0, "crash reboots the machine");
    }

    #[test]
    fn interference_dependent_crash_needs_session_history() {
        // DuplicateHandle on 98: only crashes once residue accumulated.
        let m = Mut {
            name: "DuplicateHandle",
            group: FunctionGroup::IoPrimitives,
            params: vec!["HANDLE"],
            dispatch: Arc::new(|k, os, a| {
                let p = sim_win32::Win32Profile::for_os(os);
                let out = k.alloc_user(4, "dup-out");
                sim_win32::handleapi::DuplicateHandle(
                    k,
                    p,
                    sim_kernel::objects::Handle::CURRENT_PROCESS,
                    arg::handle(a[0]),
                    sim_kernel::objects::Handle::CURRENT_PROCESS,
                    out,
                    0,
                    0,
                    0,
                )
            }),
        };
        let pools = vec![vec![TestValue::constant("garbage handle", true, 0x7777)]];
        let mut session = Session::new();
        // Clean session: silent success, no crash.
        let r = execute_case(OsVariant::Win98, &m, &pools, &[0], &mut session);
        assert_eq!(r.class, FailureClass::Silent);
        // Accumulate residue, then it kills the machine…
        session.residue = 5;
        let r = execute_case(OsVariant::Win98, &m, &pools, &[0], &mut session);
        assert_eq!(r.class, FailureClass::Catastrophic);
        // …but not in isolation: the paper's `*`.
        assert!(!reproduce_in_isolation(OsVariant::Win98, &m, &pools, &[0]));
    }

    #[test]
    fn silent_oracle_via_exceptional_bit() {
        // CloseHandle(garbage) on 98 reports success: ground-truth Silent.
        let m = Mut {
            name: "CloseHandle",
            group: FunctionGroup::IoPrimitives,
            params: vec!["HANDLE"],
            dispatch: Arc::new(|k, os, a| {
                let p = sim_win32::Win32Profile::for_os(os);
                sim_win32::handleapi::CloseHandle(k, p, arg::handle(a[0]))
            }),
        };
        let pools = vec![vec![TestValue::constant("garbage handle", true, 0xABCD)]];
        let mut session = Session::new();
        let r98 = execute_case(OsVariant::Win98, &m, &pools, &[0], &mut session);
        assert_eq!(r98.raw, RawOutcome::ReturnedSuccess);
        assert_eq!(r98.class, FailureClass::Silent);
        let rnt = execute_case(OsVariant::WinNt4, &m, &pools, &[0], &mut session);
        assert_eq!(rnt.raw, RawOutcome::ReturnedError);
        assert_eq!(rnt.class, FailureClass::Pass);
    }

    fn sleep_ex_mut() -> Mut {
        Mut {
            name: "SleepEx",
            group: FunctionGroup::ProcessPrimitives,
            params: vec!["msec"],
            dispatch: Arc::new(|k, os, a| {
                let p = sim_win32::Win32Profile::for_os(os);
                sim_win32::threadapi::SleepEx(k, p, arg::uint(a[0]), 0)
            }),
        }
    }

    #[test]
    fn fuel_exhaustion_classified_restart() {
        let m = sleep_ex_mut();
        // 0xFFFFFFFE ms: not INFINITE, but far beyond any sane budget.
        let pools = vec![vec![TestValue::constant(
            "0xFFFFFFFE",
            true,
            (u32::MAX - 1) as u64,
        )]];
        let mut session = Session::new();
        let r = execute_case(OsVariant::Win2000, &m, &pools, &[0], &mut session);
        assert_eq!(r.raw, RawOutcome::TaskHang);
        assert_eq!(
            r.class,
            FailureClass::Restart,
            "the watchdog converts a runaway case into Restart, not Abort"
        );
        assert_eq!(session.residue, 0, "hangs leave no residue");
        // A benign duration sails through on the same budget.
        let pools = vec![vec![TestValue::constant("100ms", false, 100)]];
        let r = execute_case(OsVariant::Win2000, &m, &pools, &[0], &mut session);
        assert_eq!(r.class, FailureClass::Pass);
    }

    #[test]
    fn tight_budget_trips_watchdog_on_benign_case() {
        // The budget is the knob: the same benign case hangs when the
        // campaign config starves it.
        let m = sleep_ex_mut();
        let pools = vec![vec![TestValue::constant("100ms", false, 100)]];
        let mut session = Session::new();
        let r = execute_case_budgeted(OsVariant::WinNt4, &m, &pools, &[0], &mut session, 10);
        assert_eq!(r.class, FailureClass::Restart);
        let r = execute_case_budgeted(OsVariant::WinNt4, &m, &pools, &[0], &mut session, 10_000);
        assert_eq!(r.class, FailureClass::Pass);
    }

    #[test]
    fn corrupted_template_is_invalidated_not_propagated() {
        use std::sync::atomic::Ordering;
        // Plant a template that restores to a dead machine, as a worker
        // panic mid-snapshot could leave behind.
        let flavor = MachineFlavor::WindowsStrictAlign;
        invalidate_templates();
        let mut poisoned = Kernel::with_flavor(flavor);
        poisoned.crash.panic("test", "planted corruption", None);
        let snap = poisoned.snapshot();
        TEMPLATES.with(|cache| cache.borrow_mut().push((flavor, Rc::new(snap))));
        let before = stats::TEMPLATE_INVALIDATIONS.load(Ordering::Relaxed);
        let k = fresh_machine(flavor);
        assert!(k.is_alive(), "fresh_machine must never hand out a dead machine");
        assert!(stats::TEMPLATE_INVALIDATIONS.load(Ordering::Relaxed) > before);
        // The replacement template is healthy from here on.
        assert!(fresh_machine(flavor).is_alive());
        invalidate_templates();
    }

    #[test]
    fn stats_sink_records_only_while_installed() {
        let sink = Arc::new(stats::Counters::default());
        invalidate_templates();
        stats::install_sink(Arc::clone(&sink));
        let _ = fresh_machine(MachineFlavor::Posix); // boot
        let _ = fresh_machine(MachineFlavor::Posix); // restore
        stats::clear_sink();
        let _ = fresh_machine(MachineFlavor::Posix);
        let (boots, restores, _, _) = sink.snapshot();
        assert_eq!(boots, 1);
        assert_eq!(restores, 1, "post-clear provisioning must not reach the sink");
        invalidate_templates();
    }

    #[test]
    fn case_runner_matches_per_case_provisioning() {
        // The batched runner and the clone-per-case path must agree on
        // every outcome and on the session residue they leave behind,
        // including across crash (Win98) and abort (NT) sequences.
        let m = get_thread_context_mut();
        let pools = null_and_valid_ctx_pools();
        let combos: [&[usize]; 6] = [&[0, 1], &[0, 0], &[0, 1], &[0, 0], &[0, 1], &[0, 0]];
        for os in [OsVariant::Win98, OsVariant::WinNt4] {
            let mut batched = Session::new();
            let mut per_case = Session::new();
            let mut runner = CaseRunner::new();
            for combo in combos {
                let a = runner.execute(os, &m, &pools, combo, &mut batched, DEFAULT_FUEL_BUDGET);
                let b = execute_case_budgeted(os, &m, &pools, combo, &mut per_case, DEFAULT_FUEL_BUDGET);
                assert_eq!(a, b, "{os}: batched and per-case outcomes diverged");
                assert_eq!(batched.residue, per_case.residue, "{os}: residue diverged");
            }
        }
    }

    #[test]
    fn case_runner_counts_one_restore_per_case_mostly_fast() {
        use std::sync::atomic::Ordering;
        let sink = Arc::new(stats::Counters::default());
        invalidate_templates();
        stats::install_sink(Arc::clone(&sink));
        let m = get_thread_context_mut();
        let pools = null_and_valid_ctx_pools();
        let mut session = Session::new();
        let mut runner = CaseRunner::new();
        for _ in 0..5 {
            let _ = runner.execute(
                OsVariant::WinNt4,
                &m,
                &pools,
                &[0, 1],
                &mut session,
                DEFAULT_FUEL_BUDGET,
            );
        }
        // Batched fast-reset counters flush when the runner drops (the
        // campaign engines drop theirs at the end of each MuT's loop,
        // before any sink is read).
        drop(runner);
        stats::clear_sink();
        let (boots, restores, _, _) = sink.snapshot();
        assert_eq!(boots, 1, "one template boot for a cold cache");
        assert_eq!(restores, 5, "exactly one restore per executed case");
        assert_eq!(sink.restores_full.load(Ordering::Relaxed), 1, "first case clones");
        assert_eq!(sink.restores_fast.load(Ordering::Relaxed), 4, "the rest reset in place");
        invalidate_templates();
    }

    #[test]
    fn isolation_probes_not_billed_as_restores() {
        use std::sync::atomic::Ordering;
        let sink = Arc::new(stats::Counters::default());
        invalidate_templates();
        stats::install_sink(Arc::clone(&sink));
        let m = get_thread_context_mut();
        let pools = null_and_valid_ctx_pools();
        assert!(reproduce_in_isolation(OsVariant::Win98, &m, &pools, &[0, 0]));
        stats::clear_sink();
        let (_, restores, _, _) = sink.snapshot();
        assert_eq!(restores, 0, "probe machines must not count as restores");
        assert_eq!(sink.probe_provisions.load(Ordering::Relaxed), 1);
        invalidate_templates();
    }

    #[test]
    fn fault_injection_latch_fires_exactly_n_times() {
        fault::disarm();
        fault::arm_worker_panic("VictimCall", 2);
        fault::maybe_panic("SomeOtherCall"); // no match, no panic
        for _ in 0..2 {
            let r = std::panic::catch_unwind(|| fault::maybe_panic("VictimCall"));
            assert!(r.is_err(), "armed injection must fire");
        }
        fault::maybe_panic("VictimCall"); // exhausted: silent
        fault::disarm();
    }

    #[test]
    fn hang_classified_restart() {
        let m = Mut {
            name: "Sleep",
            group: FunctionGroup::ProcessPrimitives,
            params: vec!["msec"],
            dispatch: Arc::new(|k, os, a| {
                let p = sim_win32::Win32Profile::for_os(os);
                sim_win32::threadapi::Sleep(k, p, arg::uint(a[0]))
            }),
        };
        let pools = vec![vec![TestValue::constant("INFINITE", false, u32::MAX as u64)]];
        let mut session = Session::new();
        let r = execute_case(OsVariant::WinNt4, &m, &pools, &[0], &mut session);
        assert_eq!(r.class, FailureClass::Restart);
    }
}
