//! Single-test execution: isolation, interception, residue, and the
//! in-isolation reproduction probe.
//!
//! Each test case gets a **fresh simulated machine** — the analog of the
//! paper's per-test process (`fork` on POSIX; memory-mapped file + spawn
//! on Windows). A `catch_unwind` fence guards the harness itself, playing
//! the role of the paper's top-level exception filter ("we disabled this
//! exception filter and replaced it with code that would record such an
//! unrecoverable exception as an Abort failure").
//!
//! The one thing that deliberately survives between cases is the
//! [`Session`] **residue** counter: the paper observed crashes "probably
//! due to inter-test interference, which indicates that system state was
//! not properly cleaned between test cases, even though each test is run
//! in a separate process". Residue rises as tests abort and feeds the
//! `*`-marked vulnerabilities; [`reproduce_in_isolation`] re-runs a
//! crashing case on a pristine machine to decide whether the crash earns
//! the paper's `*`.

use crate::crash::{classify, FailureClass, RawOutcome};
use crate::muts::Mut;
use crate::value::TestValue;
use sim_kernel::outcome::ApiAbort;
use sim_kernel::variant::OsVariant;
use sim_kernel::{Kernel, MachineFlavor, MachineSnapshot};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Machine-provisioning counters, aggregated across all worker threads.
///
/// The campaign engine reads these to report how much wall-clock the
/// snapshot-cloning fast path saved versus full boots.
pub mod stats {
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Machines created by running the full boot sequence.
    pub static BOOTS: AtomicU64 = AtomicU64::new(0);
    /// Machines created by cloning a pre-booted template.
    pub static RESTORES: AtomicU64 = AtomicU64::new(0);
    /// Nanoseconds spent in full boots.
    pub static BOOT_NANOS: AtomicU64 = AtomicU64::new(0);
    /// Nanoseconds spent restoring templates.
    pub static RESTORE_NANOS: AtomicU64 = AtomicU64::new(0);
    /// Cached boot templates dropped because a restore produced a
    /// corrupted (already-dead) machine.
    pub static TEMPLATE_INVALIDATIONS: AtomicU64 = AtomicU64::new(0);

    /// A private provisioning-counter set one campaign can install on its
    /// worker threads (via [`install_sink`]) to get **exact** per-campaign
    /// numbers. The process-wide statics above keep accumulating across
    /// campaigns; the sink does not — which is what fixed the
    /// results-JSON stats that used to inflate variant by variant when
    /// `run_all` fanned campaigns out concurrently.
    #[derive(Debug, Default)]
    pub struct Counters {
        /// Machines created by a full boot while this sink was installed.
        pub boots: AtomicU64,
        /// Machines created by a template clone while installed.
        pub restores: AtomicU64,
        /// Nanoseconds spent booting while installed.
        pub boot_nanos: AtomicU64,
        /// Nanoseconds spent restoring while installed.
        pub restore_nanos: AtomicU64,
    }

    impl Counters {
        /// `(boots, restores, boot_nanos, restore_nanos)` recorded so far.
        #[must_use]
        pub fn snapshot(&self) -> (u64, u64, u64, u64) {
            (
                self.boots.load(Ordering::Relaxed),
                self.restores.load(Ordering::Relaxed),
                self.boot_nanos.load(Ordering::Relaxed),
                self.restore_nanos.load(Ordering::Relaxed),
            )
        }
    }

    thread_local! {
        static SINK: RefCell<Option<Arc<Counters>>> = const { RefCell::new(None) };
    }

    /// Routes this thread's provisioning events into `counters` (in
    /// addition to the process-wide statics) until [`clear_sink`].
    pub fn install_sink(counters: Arc<Counters>) {
        SINK.with(|s| *s.borrow_mut() = Some(counters));
    }

    /// Stops routing this thread's provisioning events into a sink.
    pub fn clear_sink() {
        SINK.with(|s| *s.borrow_mut() = None);
    }

    pub(super) fn record_boot(nanos: u64) {
        BOOTS.fetch_add(1, Ordering::Relaxed);
        BOOT_NANOS.fetch_add(nanos, Ordering::Relaxed);
        crate::telemetry::on_boot(nanos);
        SINK.with(|s| {
            if let Some(c) = s.borrow().as_deref() {
                c.boots.fetch_add(1, Ordering::Relaxed);
                c.boot_nanos.fetch_add(nanos, Ordering::Relaxed);
            }
        });
    }

    pub(super) fn record_restore(nanos: u64) {
        RESTORES.fetch_add(1, Ordering::Relaxed);
        RESTORE_NANOS.fetch_add(nanos, Ordering::Relaxed);
        crate::telemetry::on_restore(nanos);
        SINK.with(|s| {
            if let Some(c) = s.borrow().as_deref() {
                c.restores.fetch_add(1, Ordering::Relaxed);
                c.restore_nanos.fetch_add(nanos, Ordering::Relaxed);
            }
        });
    }

    /// (boots, restores, boot_nanos, restore_nanos) since the last reset.
    #[must_use]
    pub fn snapshot() -> (u64, u64, u64, u64) {
        (
            BOOTS.load(Ordering::Relaxed),
            RESTORES.load(Ordering::Relaxed),
            BOOT_NANOS.load(Ordering::Relaxed),
            RESTORE_NANOS.load(Ordering::Relaxed),
        )
    }

    /// Zeroes the process-wide counters. Campaigns report from their own
    /// [`Counters`] sink (exact even under concurrent campaigns); the
    /// reset just keeps the process-lifetime statics from growing into
    /// meaningless cross-campaign aggregates.
    pub fn reset() {
        BOOTS.store(0, Ordering::Relaxed);
        RESTORES.store(0, Ordering::Relaxed);
        BOOT_NANOS.store(0, Ordering::Relaxed);
        RESTORE_NANOS.store(0, Ordering::Relaxed);
    }
}

/// Harness-level fault injection, used by the robustness tests to prove
/// the campaign engine contains its *own* failures (worker panics) the
/// way the paper's harness contained test-task failures. Disarmed (the
/// default) it costs one mutex lock per MuT.
pub mod fault {
    use std::sync::Mutex;

    static WORKER_PANIC: Mutex<Option<(String, u32)>> = Mutex::new(None);

    /// Arms an injected panic: the next `times` campaign-worker visits to
    /// `mut_name` panic *outside* the per-case exception fence, as a bug
    /// in the harness itself would.
    pub fn arm_worker_panic(mut_name: &str, times: u32) {
        *WORKER_PANIC.lock().expect("fault latch poisoned") =
            Some((mut_name.to_owned(), times));
    }

    /// Disarms any pending injected fault.
    pub fn disarm() {
        *WORKER_PANIC.lock().expect("fault latch poisoned") = None;
    }

    /// Campaign workers call this per MuT; panics while armed for `name`.
    ///
    /// # Panics
    ///
    /// Deliberately, when an armed injection matches `name`.
    pub fn maybe_panic(name: &str) {
        let mut latch = WORKER_PANIC.lock().expect("fault latch poisoned");
        let fired = match latch.as_mut() {
            Some((armed, times)) if armed == name && *times > 0 => {
                *times -= 1;
                *times == 0
            }
            _ => return,
        };
        if fired {
            *latch = None;
        }
        drop(latch);
        panic!("injected harness fault while testing {name}");
    }
}

thread_local! {
    /// Per-thread cache of pre-booted machine templates, one per flavour.
    /// Three flavours exist, so a linear scan beats any map.
    static TEMPLATES: RefCell<Vec<(MachineFlavor, MachineSnapshot)>> = const { RefCell::new(Vec::new()) };
}

/// When set, [`fresh_machine`] bypasses the template cache and boots a
/// machine per case with eagerly zero-filled regions — the cost model of
/// the pre-snapshot harness. Observable behaviour is identical (the
/// determinism tests pass either way); the benchmark driver flips this
/// to measure the real speedup rather than estimating it.
pub static LEGACY_PROVISIONING: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// Provisions a fresh machine for one test case: the first request per
/// (thread, flavour) runs the real boot sequence and snapshots it; every
/// later request clones the snapshot. Booting is fully deterministic
/// (`BTreeMap`s and `Vec`s only — no hashing, time, or randomness), so
/// the clone is bit-identical to a fresh boot; `sim-kernel` asserts this
/// in its snapshot tests.
#[must_use]
pub fn fresh_machine(flavor: MachineFlavor) -> Kernel {
    use std::sync::atomic::Ordering;
    if LEGACY_PROVISIONING.load(Ordering::Relaxed) {
        let start = std::time::Instant::now();
        let mut kernel = Kernel::with_flavor(flavor);
        kernel.space.set_eager_zero(true);
        stats::record_boot(elapsed_ns(start));
        return kernel;
    }
    TEMPLATES.with(|cache| {
        let mut cache = cache.borrow_mut();
        let start = std::time::Instant::now();
        if let Some(pos) = cache.iter().position(|(f, _)| *f == flavor) {
            let kernel = cache[pos].1.restore();
            // A template that restores to a dead machine is corrupted
            // (e.g. snapshotted after a crash latch): drop it and fall
            // through to a clean boot rather than poisoning every later
            // case on this thread.
            if kernel.is_alive() {
                stats::record_restore(elapsed_ns(start));
                return kernel;
            }
            cache.remove(pos);
            stats::TEMPLATE_INVALIDATIONS.fetch_add(1, Ordering::Relaxed);
        }
        let snap = MachineSnapshot::boot(flavor);
        let kernel = snap.restore();
        cache.push((flavor, snap));
        stats::record_boot(elapsed_ns(start));
        kernel
    })
}

/// Drops this thread's cached boot templates. Quarantine logic calls this
/// after a contained worker panic: whatever state the panic left behind,
/// the retry starts from templates rebuilt by the deterministic boot
/// sequence.
pub fn invalidate_templates() {
    TEMPLATES.with(|cache| cache.borrow_mut().clear());
}

fn elapsed_ns(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Cross-case state for one campaign run on one OS.
#[derive(Debug, Clone, Default)]
pub struct Session {
    /// Accumulated uncleaned state. Rises on Abort outcomes, resets when
    /// the machine crashes (the "reboot").
    pub residue: u32,
}

impl Session {
    /// A clean session (freshly booted test machine).
    #[must_use]
    pub fn new() -> Self {
        Session::default()
    }

    /// Folds one observed case into the session, raising or resetting
    /// residue. `execute_case` calls this itself; the parallel engine's
    /// replay pass calls it directly when it reuses a recorded clean
    /// outcome instead of re-executing.
    pub fn note(&mut self, raw: RawOutcome, any_exceptional: bool) {
        match raw {
            // Aborted tasks never ran their cleanup; silently-accepted
            // garbage (e.g. a bogus handle "closed" successfully) leaves
            // kernel state behind too. Both feed the interference the
            // paper observed.
            RawOutcome::TaskAbort => self.residue += 1,
            RawOutcome::ReturnedSuccess if any_exceptional => self.residue += 1,
            RawOutcome::SystemCrash => self.residue = 0,
            _ => {}
        }
    }
}

/// The outcome of one executed test case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseResult {
    /// What the harness observed.
    pub raw: RawOutcome,
    /// CRASH classification (ground-truth Silent via the oracle bit).
    pub class: FailureClass,
    /// Whether any selected test value was exceptional.
    pub any_exceptional: bool,
    /// Whether the simulated OS consulted the machine's residue counter
    /// while deciding this outcome ([`Kernel::probe_residue`]). Cases
    /// that never probe are provably independent of session history —
    /// the parallel campaign engine runs them out of order.
    pub residue_probed: bool,
    /// Fuel the case burned (simulated work units) — a pure function of
    /// the case, so identical on every host and engine. The telemetry
    /// trace uses cumulative fuel as its deterministic time axis. For a
    /// replayed (not re-executed) case the engines restore this from
    /// the clean-pass side channel or the journal record.
    pub fuel_used: u64,
}

/// Default per-case watchdog fuel budget (simulated work units; one unit
/// ≈ one simulated millisecond). Generously above anything a legitimate
/// case consumes — a case makes a handful of calls at one unit each, and
/// the longest benign timed wait burns 60 000 — while still catching a
/// hostile near-`INFINITE` duration (4.29 billion units) instantly.
pub const DEFAULT_FUEL_BUDGET: u64 = 2_000_000;

/// Executes one test case: fresh machine, constructors, call,
/// classification.
///
/// `pools` holds the resolved value pool per parameter; `combo` selects
/// one value index per parameter. Runs under [`DEFAULT_FUEL_BUDGET`];
/// campaigns with a configured budget use [`execute_case_budgeted`].
#[must_use]
pub fn execute_case(
    os: OsVariant,
    mut_: &Mut,
    pools: &[Vec<TestValue>],
    combo: &[usize],
    session: &mut Session,
) -> CaseResult {
    execute_case_budgeted(os, mut_, pools, combo, session, DEFAULT_FUEL_BUDGET)
}

/// [`execute_case`] with an explicit watchdog fuel budget for the case.
/// Fuel consumed is a pure function of the case (simulated work only, no
/// wall clock), so a given budget yields the same outcome on every host,
/// at every parallelism, and on every resumed run.
#[must_use]
pub fn execute_case_budgeted(
    os: OsVariant,
    mut_: &Mut,
    pools: &[Vec<TestValue>],
    combo: &[usize],
    session: &mut Session,
    fuel_budget: u64,
) -> CaseResult {
    let mut kernel = fresh_machine(os.machine_flavor());
    kernel.fuel = sim_kernel::clock::FuelMeter::with_budget(fuel_budget);
    kernel.residue = session.residue;
    let raw_and_exc = run_on(&mut kernel, os, mut_, pools, combo);
    session.note(raw_and_exc.0, raw_and_exc.1);
    if crate::telemetry::enabled() {
        crate::telemetry::on_case_executed();
        crate::telemetry::on_case_profile(os, mut_.group.label(), &kernel.subsys);
    }
    CaseResult {
        raw: raw_and_exc.0,
        class: classify(raw_and_exc.0, raw_and_exc.1),
        any_exceptional: raw_and_exc.1,
        residue_probed: kernel.residue_probed,
        fuel_used: kernel.fuel.consumed(),
    }
}

/// Runs constructors + dispatch on a given machine and reports (raw
/// outcome, any-exceptional-input).
fn run_on(
    kernel: &mut Kernel,
    os: OsVariant,
    mut_: &Mut,
    pools: &[Vec<TestValue>],
    combo: &[usize],
) -> (RawOutcome, bool) {
    debug_assert_eq!(pools.len(), combo.len());
    kernel.residue_probed = false; // per-case flag, even on reused machines
    let mut any_exceptional = false;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut args = Vec::with_capacity(combo.len());
        for (pool, &idx) in pools.iter().zip(combo) {
            let value = &pool[idx];
            any_exceptional |= value.exceptional;
            args.push((value.make)(kernel, os));
        }
        (mut_.dispatch)(kernel, os, &args)
    }));
    // The crash latch outranks whatever the call returned: a dead machine
    // is Catastrophic even if the call "succeeded".
    if !kernel.is_alive() {
        return (RawOutcome::SystemCrash, any_exceptional);
    }
    // The watchdog outranks everything but a crash: a case that exhausted
    // its fuel budget ran past the harness's patience, even if the call
    // eventually "returned" — the real harness would have killed and
    // restarted the task long before.
    if kernel.fuel.exhausted() {
        return (RawOutcome::TaskHang, any_exceptional);
    }
    let raw = match outcome {
        Ok(Ok(ret)) => {
            if ret.reported_error() {
                RawOutcome::ReturnedError
            } else {
                RawOutcome::ReturnedSuccess
            }
        }
        Ok(Err(ApiAbort::Hang)) => RawOutcome::TaskHang,
        Ok(Err(_)) => RawOutcome::TaskAbort,
        // A harness-level panic is treated like the paper's top-level
        // exception filter: an Abort, never a harness death.
        Err(_) => RawOutcome::TaskAbort,
    };
    (raw, any_exceptional)
}

/// Executes a test case **on an existing machine** without rebooting it —
/// the building block of the sequence-dependent testing extension
/// ([`crate::sequence`]), where a second call runs in whatever state the
/// first left behind.
#[must_use]
pub fn execute_case_on(
    kernel: &mut Kernel,
    os: OsVariant,
    mut_: &Mut,
    pools: &[Vec<TestValue>],
    combo: &[usize],
) -> CaseResult {
    let (raw, any_exceptional) = run_on(kernel, os, mut_, pools, combo);
    CaseResult {
        raw,
        class: classify(raw, any_exceptional),
        any_exceptional,
        residue_probed: kernel.residue_probed,
        // The machine is reused across calls, so this is the meter's
        // cumulative reading — callers sequencing several calls diff it.
        fuel_used: kernel.fuel.consumed(),
    }
}

/// Re-runs a case on a pristine machine (zero residue) and reports whether
/// it still crashes the system — the paper's single-test reproduction
/// check. `false` for a crash that only reproduces inside the harness is
/// what earns a Table 3 `*`.
#[must_use]
pub fn reproduce_in_isolation(
    os: OsVariant,
    mut_: &Mut,
    pools: &[Vec<TestValue>],
    combo: &[usize],
) -> bool {
    let mut kernel = fresh_machine(os.machine_flavor());
    kernel.fuel = sim_kernel::clock::FuelMeter::with_budget(DEFAULT_FUEL_BUDGET);
    kernel.residue = 0;
    let (raw, _) = run_on(&mut kernel, os, mut_, pools, combo);
    raw == RawOutcome::SystemCrash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::muts::{arg, FunctionGroup};
    use std::sync::Arc;

    fn null_and_valid_ctx_pools() -> Vec<Vec<TestValue>> {
        vec![
            vec![TestValue::constant("current thread", false, (u32::MAX - 1) as u64)],
            vec![
                TestValue::constant("NULL", true, 0),
                TestValue::with("valid CONTEXT buffer", false, |k, _| {
                    k.alloc_user(64, "ctx").addr()
                }),
            ],
        ]
    }

    fn get_thread_context_mut() -> Mut {
        Mut {
            name: "GetThreadContext",
            group: FunctionGroup::ProcessPrimitives,
            params: vec!["HANDLE", "buffer"],
            dispatch: Arc::new(|k, os, a| {
                let p = sim_win32::Win32Profile::for_os(os);
                sim_win32::threadapi::GetThreadContext(k, p, arg::handle(a[0]), arg::ptr(a[1]))
            }),
        }
    }

    #[test]
    fn listing1_classified_catastrophic_on_98_abort_on_nt() {
        let m = get_thread_context_mut();
        let pools = null_and_valid_ctx_pools();
        let mut session = Session::new();
        // combo [0,0] = (current thread, NULL) — Listing 1.
        let r98 = execute_case(OsVariant::Win98, &m, &pools, &[0, 0], &mut session);
        assert_eq!(r98.class, FailureClass::Catastrophic);
        let rnt = execute_case(OsVariant::WinNt4, &m, &pools, &[0, 0], &mut session);
        assert_eq!(rnt.class, FailureClass::Abort);
        // combo [0,1] = valid buffer: passes everywhere.
        let ok = execute_case(OsVariant::Win98, &m, &pools, &[0, 1], &mut session);
        assert_eq!(ok.class, FailureClass::Pass);
    }

    #[test]
    fn deterministic_crash_reproduces_in_isolation() {
        let m = get_thread_context_mut();
        let pools = null_and_valid_ctx_pools();
        assert!(reproduce_in_isolation(OsVariant::Win98, &m, &pools, &[0, 0]));
        assert!(!reproduce_in_isolation(OsVariant::WinNt4, &m, &pools, &[0, 0]));
    }

    #[test]
    fn residue_rises_on_aborts_and_resets_on_crash() {
        let m = get_thread_context_mut();
        let pools = null_and_valid_ctx_pools();
        let mut session = Session::new();
        let _ = execute_case(OsVariant::WinNt4, &m, &pools, &[0, 0], &mut session);
        let _ = execute_case(OsVariant::WinNt4, &m, &pools, &[0, 0], &mut session);
        assert_eq!(session.residue, 2);
        let _ = execute_case(OsVariant::Win98, &m, &pools, &[0, 0], &mut session);
        assert_eq!(session.residue, 0, "crash reboots the machine");
    }

    #[test]
    fn interference_dependent_crash_needs_session_history() {
        // DuplicateHandle on 98: only crashes once residue accumulated.
        let m = Mut {
            name: "DuplicateHandle",
            group: FunctionGroup::IoPrimitives,
            params: vec!["HANDLE"],
            dispatch: Arc::new(|k, os, a| {
                let p = sim_win32::Win32Profile::for_os(os);
                let out = k.alloc_user(4, "dup-out");
                sim_win32::handleapi::DuplicateHandle(
                    k,
                    p,
                    sim_kernel::objects::Handle::CURRENT_PROCESS,
                    arg::handle(a[0]),
                    sim_kernel::objects::Handle::CURRENT_PROCESS,
                    out,
                    0,
                    0,
                    0,
                )
            }),
        };
        let pools = vec![vec![TestValue::constant("garbage handle", true, 0x7777)]];
        let mut session = Session::new();
        // Clean session: silent success, no crash.
        let r = execute_case(OsVariant::Win98, &m, &pools, &[0], &mut session);
        assert_eq!(r.class, FailureClass::Silent);
        // Accumulate residue, then it kills the machine…
        session.residue = 5;
        let r = execute_case(OsVariant::Win98, &m, &pools, &[0], &mut session);
        assert_eq!(r.class, FailureClass::Catastrophic);
        // …but not in isolation: the paper's `*`.
        assert!(!reproduce_in_isolation(OsVariant::Win98, &m, &pools, &[0]));
    }

    #[test]
    fn silent_oracle_via_exceptional_bit() {
        // CloseHandle(garbage) on 98 reports success: ground-truth Silent.
        let m = Mut {
            name: "CloseHandle",
            group: FunctionGroup::IoPrimitives,
            params: vec!["HANDLE"],
            dispatch: Arc::new(|k, os, a| {
                let p = sim_win32::Win32Profile::for_os(os);
                sim_win32::handleapi::CloseHandle(k, p, arg::handle(a[0]))
            }),
        };
        let pools = vec![vec![TestValue::constant("garbage handle", true, 0xABCD)]];
        let mut session = Session::new();
        let r98 = execute_case(OsVariant::Win98, &m, &pools, &[0], &mut session);
        assert_eq!(r98.raw, RawOutcome::ReturnedSuccess);
        assert_eq!(r98.class, FailureClass::Silent);
        let rnt = execute_case(OsVariant::WinNt4, &m, &pools, &[0], &mut session);
        assert_eq!(rnt.raw, RawOutcome::ReturnedError);
        assert_eq!(rnt.class, FailureClass::Pass);
    }

    fn sleep_ex_mut() -> Mut {
        Mut {
            name: "SleepEx",
            group: FunctionGroup::ProcessPrimitives,
            params: vec!["msec"],
            dispatch: Arc::new(|k, os, a| {
                let p = sim_win32::Win32Profile::for_os(os);
                sim_win32::threadapi::SleepEx(k, p, arg::uint(a[0]), 0)
            }),
        }
    }

    #[test]
    fn fuel_exhaustion_classified_restart() {
        let m = sleep_ex_mut();
        // 0xFFFFFFFE ms: not INFINITE, but far beyond any sane budget.
        let pools = vec![vec![TestValue::constant(
            "0xFFFFFFFE",
            true,
            (u32::MAX - 1) as u64,
        )]];
        let mut session = Session::new();
        let r = execute_case(OsVariant::Win2000, &m, &pools, &[0], &mut session);
        assert_eq!(r.raw, RawOutcome::TaskHang);
        assert_eq!(
            r.class,
            FailureClass::Restart,
            "the watchdog converts a runaway case into Restart, not Abort"
        );
        assert_eq!(session.residue, 0, "hangs leave no residue");
        // A benign duration sails through on the same budget.
        let pools = vec![vec![TestValue::constant("100ms", false, 100)]];
        let r = execute_case(OsVariant::Win2000, &m, &pools, &[0], &mut session);
        assert_eq!(r.class, FailureClass::Pass);
    }

    #[test]
    fn tight_budget_trips_watchdog_on_benign_case() {
        // The budget is the knob: the same benign case hangs when the
        // campaign config starves it.
        let m = sleep_ex_mut();
        let pools = vec![vec![TestValue::constant("100ms", false, 100)]];
        let mut session = Session::new();
        let r = execute_case_budgeted(OsVariant::WinNt4, &m, &pools, &[0], &mut session, 10);
        assert_eq!(r.class, FailureClass::Restart);
        let r = execute_case_budgeted(OsVariant::WinNt4, &m, &pools, &[0], &mut session, 10_000);
        assert_eq!(r.class, FailureClass::Pass);
    }

    #[test]
    fn corrupted_template_is_invalidated_not_propagated() {
        use std::sync::atomic::Ordering;
        // Plant a template that restores to a dead machine, as a worker
        // panic mid-snapshot could leave behind.
        let flavor = MachineFlavor::WindowsStrictAlign;
        invalidate_templates();
        let mut poisoned = Kernel::with_flavor(flavor);
        poisoned.crash.panic("test", "planted corruption", None);
        let snap = poisoned.snapshot();
        TEMPLATES.with(|cache| cache.borrow_mut().push((flavor, snap)));
        let before = stats::TEMPLATE_INVALIDATIONS.load(Ordering::Relaxed);
        let k = fresh_machine(flavor);
        assert!(k.is_alive(), "fresh_machine must never hand out a dead machine");
        assert!(stats::TEMPLATE_INVALIDATIONS.load(Ordering::Relaxed) > before);
        // The replacement template is healthy from here on.
        assert!(fresh_machine(flavor).is_alive());
        invalidate_templates();
    }

    #[test]
    fn stats_sink_records_only_while_installed() {
        let sink = Arc::new(stats::Counters::default());
        invalidate_templates();
        stats::install_sink(Arc::clone(&sink));
        let _ = fresh_machine(MachineFlavor::Posix); // boot
        let _ = fresh_machine(MachineFlavor::Posix); // restore
        stats::clear_sink();
        let _ = fresh_machine(MachineFlavor::Posix);
        let (boots, restores, _, _) = sink.snapshot();
        assert_eq!(boots, 1);
        assert_eq!(restores, 1, "post-clear provisioning must not reach the sink");
        invalidate_templates();
    }

    #[test]
    fn fault_injection_latch_fires_exactly_n_times() {
        fault::disarm();
        fault::arm_worker_panic("VictimCall", 2);
        fault::maybe_panic("SomeOtherCall"); // no match, no panic
        for _ in 0..2 {
            let r = std::panic::catch_unwind(|| fault::maybe_panic("VictimCall"));
            assert!(r.is_err(), "armed injection must fire");
        }
        fault::maybe_panic("VictimCall"); // exhausted: silent
        fault::disarm();
    }

    #[test]
    fn hang_classified_restart() {
        let m = Mut {
            name: "Sleep",
            group: FunctionGroup::ProcessPrimitives,
            params: vec!["msec"],
            dispatch: Arc::new(|k, os, a| {
                let p = sim_win32::Win32Profile::for_os(os);
                sim_win32::threadapi::Sleep(k, p, arg::uint(a[0]))
            }),
        };
        let pools = vec![vec![TestValue::constant("INFINITE", false, u32::MAX as u64)]];
        let mut session = Session::new();
        let r = execute_case(OsVariant::WinNt4, &m, &pools, &[0], &mut session);
        assert_eq!(r.class, FailureClass::Restart);
    }
}
