//! Single-test execution: isolation, interception, residue, and the
//! in-isolation reproduction probe.
//!
//! Each test case gets a **fresh simulated machine** — the analog of the
//! paper's per-test process (`fork` on POSIX; memory-mapped file + spawn
//! on Windows). A `catch_unwind` fence guards the harness itself, playing
//! the role of the paper's top-level exception filter ("we disabled this
//! exception filter and replaced it with code that would record such an
//! unrecoverable exception as an Abort failure").
//!
//! The one thing that deliberately survives between cases is the
//! [`Session`] **residue** counter: the paper observed crashes "probably
//! due to inter-test interference, which indicates that system state was
//! not properly cleaned between test cases, even though each test is run
//! in a separate process". Residue rises as tests abort and feeds the
//! `*`-marked vulnerabilities; [`reproduce_in_isolation`] re-runs a
//! crashing case on a pristine machine to decide whether the crash earns
//! the paper's `*`.

use crate::crash::{classify, FailureClass, RawOutcome};
use crate::muts::Mut;
use crate::value::TestValue;
use sim_kernel::outcome::ApiAbort;
use sim_kernel::variant::OsVariant;
use sim_kernel::{Kernel, MachineFlavor, MachineSnapshot};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Machine-provisioning counters, aggregated across all worker threads.
///
/// The campaign engine reads these to report how much wall-clock the
/// snapshot-cloning fast path saved versus full boots.
pub mod stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Machines created by running the full boot sequence.
    pub static BOOTS: AtomicU64 = AtomicU64::new(0);
    /// Machines created by cloning a pre-booted template.
    pub static RESTORES: AtomicU64 = AtomicU64::new(0);
    /// Nanoseconds spent in full boots.
    pub static BOOT_NANOS: AtomicU64 = AtomicU64::new(0);
    /// Nanoseconds spent restoring templates.
    pub static RESTORE_NANOS: AtomicU64 = AtomicU64::new(0);

    /// (boots, restores, boot_nanos, restore_nanos) since the last reset.
    #[must_use]
    pub fn snapshot() -> (u64, u64, u64, u64) {
        (
            BOOTS.load(Ordering::Relaxed),
            RESTORES.load(Ordering::Relaxed),
            BOOT_NANOS.load(Ordering::Relaxed),
            RESTORE_NANOS.load(Ordering::Relaxed),
        )
    }
}

thread_local! {
    /// Per-thread cache of pre-booted machine templates, one per flavour.
    /// Three flavours exist, so a linear scan beats any map.
    static TEMPLATES: RefCell<Vec<(MachineFlavor, MachineSnapshot)>> = const { RefCell::new(Vec::new()) };
}

/// When set, [`fresh_machine`] bypasses the template cache and boots a
/// machine per case with eagerly zero-filled regions — the cost model of
/// the pre-snapshot harness. Observable behaviour is identical (the
/// determinism tests pass either way); the benchmark driver flips this
/// to measure the real speedup rather than estimating it.
pub static LEGACY_PROVISIONING: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// Provisions a fresh machine for one test case: the first request per
/// (thread, flavour) runs the real boot sequence and snapshots it; every
/// later request clones the snapshot. Booting is fully deterministic
/// (`BTreeMap`s and `Vec`s only — no hashing, time, or randomness), so
/// the clone is bit-identical to a fresh boot; `sim-kernel` asserts this
/// in its snapshot tests.
#[must_use]
pub fn fresh_machine(flavor: MachineFlavor) -> Kernel {
    use std::sync::atomic::Ordering;
    if LEGACY_PROVISIONING.load(Ordering::Relaxed) {
        let start = std::time::Instant::now();
        let mut kernel = Kernel::with_flavor(flavor);
        kernel.space.set_eager_zero(true);
        stats::BOOTS.fetch_add(1, Ordering::Relaxed);
        stats::BOOT_NANOS.fetch_add(elapsed_ns(start), Ordering::Relaxed);
        return kernel;
    }
    TEMPLATES.with(|cache| {
        let mut cache = cache.borrow_mut();
        let start = std::time::Instant::now();
        if let Some((_, snap)) = cache.iter().find(|(f, _)| *f == flavor) {
            let kernel = snap.restore();
            stats::RESTORES.fetch_add(1, Ordering::Relaxed);
            stats::RESTORE_NANOS.fetch_add(elapsed_ns(start), Ordering::Relaxed);
            return kernel;
        }
        let snap = MachineSnapshot::boot(flavor);
        let kernel = snap.restore();
        cache.push((flavor, snap));
        stats::BOOTS.fetch_add(1, Ordering::Relaxed);
        stats::BOOT_NANOS.fetch_add(elapsed_ns(start), Ordering::Relaxed);
        kernel
    })
}

fn elapsed_ns(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Cross-case state for one campaign run on one OS.
#[derive(Debug, Clone, Default)]
pub struct Session {
    /// Accumulated uncleaned state. Rises on Abort outcomes, resets when
    /// the machine crashes (the "reboot").
    pub residue: u32,
}

impl Session {
    /// A clean session (freshly booted test machine).
    #[must_use]
    pub fn new() -> Self {
        Session::default()
    }

    /// Folds one observed case into the session, raising or resetting
    /// residue. `execute_case` calls this itself; the parallel engine's
    /// replay pass calls it directly when it reuses a recorded clean
    /// outcome instead of re-executing.
    pub fn note(&mut self, raw: RawOutcome, any_exceptional: bool) {
        match raw {
            // Aborted tasks never ran their cleanup; silently-accepted
            // garbage (e.g. a bogus handle "closed" successfully) leaves
            // kernel state behind too. Both feed the interference the
            // paper observed.
            RawOutcome::TaskAbort => self.residue += 1,
            RawOutcome::ReturnedSuccess if any_exceptional => self.residue += 1,
            RawOutcome::SystemCrash => self.residue = 0,
            _ => {}
        }
    }
}

/// The outcome of one executed test case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseResult {
    /// What the harness observed.
    pub raw: RawOutcome,
    /// CRASH classification (ground-truth Silent via the oracle bit).
    pub class: FailureClass,
    /// Whether any selected test value was exceptional.
    pub any_exceptional: bool,
    /// Whether the simulated OS consulted the machine's residue counter
    /// while deciding this outcome ([`Kernel::probe_residue`]). Cases
    /// that never probe are provably independent of session history —
    /// the parallel campaign engine runs them out of order.
    pub residue_probed: bool,
}

/// Executes one test case: fresh machine, constructors, call,
/// classification.
///
/// `pools` holds the resolved value pool per parameter; `combo` selects
/// one value index per parameter.
#[must_use]
pub fn execute_case(
    os: OsVariant,
    mut_: &Mut,
    pools: &[Vec<TestValue>],
    combo: &[usize],
    session: &mut Session,
) -> CaseResult {
    let mut kernel = fresh_machine(os.machine_flavor());
    kernel.residue = session.residue;
    let raw_and_exc = run_on(&mut kernel, os, mut_, pools, combo);
    session.note(raw_and_exc.0, raw_and_exc.1);
    CaseResult {
        raw: raw_and_exc.0,
        class: classify(raw_and_exc.0, raw_and_exc.1),
        any_exceptional: raw_and_exc.1,
        residue_probed: kernel.residue_probed,
    }
}

/// Runs constructors + dispatch on a given machine and reports (raw
/// outcome, any-exceptional-input).
fn run_on(
    kernel: &mut Kernel,
    os: OsVariant,
    mut_: &Mut,
    pools: &[Vec<TestValue>],
    combo: &[usize],
) -> (RawOutcome, bool) {
    debug_assert_eq!(pools.len(), combo.len());
    kernel.residue_probed = false; // per-case flag, even on reused machines
    let mut any_exceptional = false;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut args = Vec::with_capacity(combo.len());
        for (pool, &idx) in pools.iter().zip(combo) {
            let value = &pool[idx];
            any_exceptional |= value.exceptional;
            args.push((value.make)(kernel, os));
        }
        (mut_.dispatch)(kernel, os, &args)
    }));
    // The crash latch outranks whatever the call returned: a dead machine
    // is Catastrophic even if the call "succeeded".
    if !kernel.is_alive() {
        return (RawOutcome::SystemCrash, any_exceptional);
    }
    let raw = match outcome {
        Ok(Ok(ret)) => {
            if ret.reported_error() {
                RawOutcome::ReturnedError
            } else {
                RawOutcome::ReturnedSuccess
            }
        }
        Ok(Err(ApiAbort::Hang)) => RawOutcome::TaskHang,
        Ok(Err(_)) => RawOutcome::TaskAbort,
        // A harness-level panic is treated like the paper's top-level
        // exception filter: an Abort, never a harness death.
        Err(_) => RawOutcome::TaskAbort,
    };
    (raw, any_exceptional)
}

/// Executes a test case **on an existing machine** without rebooting it —
/// the building block of the sequence-dependent testing extension
/// ([`crate::sequence`]), where a second call runs in whatever state the
/// first left behind.
#[must_use]
pub fn execute_case_on(
    kernel: &mut Kernel,
    os: OsVariant,
    mut_: &Mut,
    pools: &[Vec<TestValue>],
    combo: &[usize],
) -> CaseResult {
    let (raw, any_exceptional) = run_on(kernel, os, mut_, pools, combo);
    CaseResult {
        raw,
        class: classify(raw, any_exceptional),
        any_exceptional,
        residue_probed: kernel.residue_probed,
    }
}

/// Re-runs a case on a pristine machine (zero residue) and reports whether
/// it still crashes the system — the paper's single-test reproduction
/// check. `false` for a crash that only reproduces inside the harness is
/// what earns a Table 3 `*`.
#[must_use]
pub fn reproduce_in_isolation(
    os: OsVariant,
    mut_: &Mut,
    pools: &[Vec<TestValue>],
    combo: &[usize],
) -> bool {
    let mut kernel = fresh_machine(os.machine_flavor());
    kernel.residue = 0;
    let (raw, _) = run_on(&mut kernel, os, mut_, pools, combo);
    raw == RawOutcome::SystemCrash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::muts::{arg, FunctionGroup};
    use std::sync::Arc;

    fn null_and_valid_ctx_pools() -> Vec<Vec<TestValue>> {
        vec![
            vec![TestValue::constant("current thread", false, (u32::MAX - 1) as u64)],
            vec![
                TestValue::constant("NULL", true, 0),
                TestValue::with("valid CONTEXT buffer", false, |k, _| {
                    k.alloc_user(64, "ctx").addr()
                }),
            ],
        ]
    }

    fn get_thread_context_mut() -> Mut {
        Mut {
            name: "GetThreadContext",
            group: FunctionGroup::ProcessPrimitives,
            params: vec!["HANDLE", "buffer"],
            dispatch: Arc::new(|k, os, a| {
                let p = sim_win32::Win32Profile::for_os(os);
                sim_win32::threadapi::GetThreadContext(k, p, arg::handle(a[0]), arg::ptr(a[1]))
            }),
        }
    }

    #[test]
    fn listing1_classified_catastrophic_on_98_abort_on_nt() {
        let m = get_thread_context_mut();
        let pools = null_and_valid_ctx_pools();
        let mut session = Session::new();
        // combo [0,0] = (current thread, NULL) — Listing 1.
        let r98 = execute_case(OsVariant::Win98, &m, &pools, &[0, 0], &mut session);
        assert_eq!(r98.class, FailureClass::Catastrophic);
        let rnt = execute_case(OsVariant::WinNt4, &m, &pools, &[0, 0], &mut session);
        assert_eq!(rnt.class, FailureClass::Abort);
        // combo [0,1] = valid buffer: passes everywhere.
        let ok = execute_case(OsVariant::Win98, &m, &pools, &[0, 1], &mut session);
        assert_eq!(ok.class, FailureClass::Pass);
    }

    #[test]
    fn deterministic_crash_reproduces_in_isolation() {
        let m = get_thread_context_mut();
        let pools = null_and_valid_ctx_pools();
        assert!(reproduce_in_isolation(OsVariant::Win98, &m, &pools, &[0, 0]));
        assert!(!reproduce_in_isolation(OsVariant::WinNt4, &m, &pools, &[0, 0]));
    }

    #[test]
    fn residue_rises_on_aborts_and_resets_on_crash() {
        let m = get_thread_context_mut();
        let pools = null_and_valid_ctx_pools();
        let mut session = Session::new();
        let _ = execute_case(OsVariant::WinNt4, &m, &pools, &[0, 0], &mut session);
        let _ = execute_case(OsVariant::WinNt4, &m, &pools, &[0, 0], &mut session);
        assert_eq!(session.residue, 2);
        let _ = execute_case(OsVariant::Win98, &m, &pools, &[0, 0], &mut session);
        assert_eq!(session.residue, 0, "crash reboots the machine");
    }

    #[test]
    fn interference_dependent_crash_needs_session_history() {
        // DuplicateHandle on 98: only crashes once residue accumulated.
        let m = Mut {
            name: "DuplicateHandle",
            group: FunctionGroup::IoPrimitives,
            params: vec!["HANDLE"],
            dispatch: Arc::new(|k, os, a| {
                let p = sim_win32::Win32Profile::for_os(os);
                let out = k.alloc_user(4, "dup-out");
                sim_win32::handleapi::DuplicateHandle(
                    k,
                    p,
                    sim_kernel::objects::Handle::CURRENT_PROCESS,
                    arg::handle(a[0]),
                    sim_kernel::objects::Handle::CURRENT_PROCESS,
                    out,
                    0,
                    0,
                    0,
                )
            }),
        };
        let pools = vec![vec![TestValue::constant("garbage handle", true, 0x7777)]];
        let mut session = Session::new();
        // Clean session: silent success, no crash.
        let r = execute_case(OsVariant::Win98, &m, &pools, &[0], &mut session);
        assert_eq!(r.class, FailureClass::Silent);
        // Accumulate residue, then it kills the machine…
        session.residue = 5;
        let r = execute_case(OsVariant::Win98, &m, &pools, &[0], &mut session);
        assert_eq!(r.class, FailureClass::Catastrophic);
        // …but not in isolation: the paper's `*`.
        assert!(!reproduce_in_isolation(OsVariant::Win98, &m, &pools, &[0]));
    }

    #[test]
    fn silent_oracle_via_exceptional_bit() {
        // CloseHandle(garbage) on 98 reports success: ground-truth Silent.
        let m = Mut {
            name: "CloseHandle",
            group: FunctionGroup::IoPrimitives,
            params: vec!["HANDLE"],
            dispatch: Arc::new(|k, os, a| {
                let p = sim_win32::Win32Profile::for_os(os);
                sim_win32::handleapi::CloseHandle(k, p, arg::handle(a[0]))
            }),
        };
        let pools = vec![vec![TestValue::constant("garbage handle", true, 0xABCD)]];
        let mut session = Session::new();
        let r98 = execute_case(OsVariant::Win98, &m, &pools, &[0], &mut session);
        assert_eq!(r98.raw, RawOutcome::ReturnedSuccess);
        assert_eq!(r98.class, FailureClass::Silent);
        let rnt = execute_case(OsVariant::WinNt4, &m, &pools, &[0], &mut session);
        assert_eq!(rnt.raw, RawOutcome::ReturnedError);
        assert_eq!(rnt.class, FailureClass::Pass);
    }

    #[test]
    fn hang_classified_restart() {
        let m = Mut {
            name: "Sleep",
            group: FunctionGroup::ProcessPrimitives,
            params: vec!["msec"],
            dispatch: Arc::new(|k, os, a| {
                let p = sim_win32::Win32Profile::for_os(os);
                sim_win32::threadapi::Sleep(k, p, arg::uint(a[0]))
            }),
        };
        let pools = vec![vec![TestValue::constant("INFINITE", false, u32::MAX as u64)]];
        let mut session = Session::new();
        let r = execute_case(OsVariant::WinNt4, &m, &pools, &[0], &mut session);
        assert_eq!(r.class, FailureClass::Restart);
    }
}
