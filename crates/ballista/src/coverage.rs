//! Coverage accounting for campaign runs.
//!
//! A campaign's tallies say *what happened*; this module says *what was
//! exercised*: which catalog MuTs ran (and whether their full sampling
//! plan completed), which parameter pools and individual test values were
//! actually drawn, and which CRASH outcome classes were observed. The
//! paper's comparative claims rest on every variant seeing the same
//! stimulus — coverage accounting makes "the same stimulus" a measured,
//! regression-checked quantity instead of an assumption (cf. the
//! coverage-level-guided black-box work, arXiv:2112.15485).
//!
//! [`Coverage`] is reconstructed from a [`CampaignReport`] plus the
//! deterministic sampling plans (no extra instrumentation in the hot
//! path), merged across variants or workers with order-independent
//! semantics, and checked against a [`CoverageFloor`] so a future change
//! that silently shrinks the exercised surface fails the conformance
//! gate instead of shipping.

use crate::campaign::{CampaignConfig, CampaignReport, MutTally};
use crate::catalog;
use crate::crash::{FailureClass, RawOutcome};
use crate::sampling::{self, CaseSet};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Labels for the outcome-class counters, in severity order. `ErrorReport`
/// is the robust-error column (not a CRASH failure); `SuspectedHindering`
/// is its cried-wolf subset and is excluded from the per-case sum.
pub const CLASS_LABELS: [&str; 6] = [
    "Catastrophic",
    "Restart",
    "Abort",
    "Silent",
    "ErrorReport",
    "Pass",
];

/// Coverage of one MuT's sampling plan.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MutCoverage {
    /// Cases the sampling plan(s) scheduled for this MuT.
    pub planned: u64,
    /// Cases actually executed (a Catastrophic failure truncates a MuT's
    /// plan — the paper: "the set of test cases run for that function is
    /// incomplete").
    pub executed: u64,
    /// Variants on which this MuT ran.
    pub variants: BTreeSet<String>,
}

/// Coverage of one parameter pool (keyed by data-type name).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolCoverage {
    /// Names of the test values actually drawn at least once.
    pub touched: BTreeSet<String>,
    /// Pool size (distinct values registered for the type; the max across
    /// merged worlds when registries disagree).
    pub size: u64,
}

/// What a run (or a merged set of runs) exercised.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coverage {
    /// Variants contributing to this coverage map.
    pub variants: BTreeSet<String>,
    /// Per-MuT plan coverage, keyed by MuT name.
    pub muts: BTreeMap<String, MutCoverage>,
    /// Per-pool value coverage, keyed by data-type name.
    pub pools: BTreeMap<String, PoolCoverage>,
    /// Observed CRASH-class case counts, keyed by [`CLASS_LABELS`] (plus
    /// `SuspectedHindering`, a subset of `ErrorReport`).
    pub classes: BTreeMap<String, u64>,
    /// Total planned cases across MuTs.
    pub planned_cases: u64,
    /// Total executed cases across MuTs.
    pub executed_cases: u64,
}

/// The [`CLASS_LABELS`] entry one case result folds into — the exact
/// mapping the engines' tally fold uses: `Hindering` and a `Pass` whose
/// raw outcome was a reported error both land in the robust-error
/// column, everything else keeps its class name.
#[must_use]
pub fn class_label(class: FailureClass, raw: RawOutcome) -> &'static str {
    match class {
        FailureClass::Catastrophic => "Catastrophic",
        FailureClass::Restart => "Restart",
        FailureClass::Abort => "Abort",
        FailureClass::Silent => "Silent",
        FailureClass::Hindering => "ErrorReport",
        FailureClass::Pass => {
            if raw == RawOutcome::ReturnedError {
                "ErrorReport"
            } else {
                "Pass"
            }
        }
    }
}

/// Coverage gained between two [`Coverage`] snapshots — the per-round
/// feedback signal of the adaptive explorer and the y-axis of the
/// coverage curve in `results/adaptive_<os>.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct CoverageGain {
    /// Pool values touched now that were untouched before.
    pub new_values: u64,
    /// Primary outcome classes observed now that were unobserved before.
    pub new_classes: u64,
}

impl Coverage {
    /// Reconstructs what `report` exercised. The sampling plans are
    /// deterministic (seeded from MuT names), so the executed prefix of
    /// each plan — `tally.cases` combos — identifies exactly which pool
    /// values every case drew, with no hot-path instrumentation.
    #[must_use]
    pub fn from_report(report: &CampaignReport, cfg: &CampaignConfig) -> Self {
        Self::from_report_inner(report, cfg, None)
    }

    /// [`Coverage::from_report`] for a report executed under **explicit
    /// plans** (e.g. an adaptive campaign's pinned plan, keyed by MuT
    /// name) instead of the fixed name-seeded samples. A MuT missing
    /// from `plans` falls back to its fixed plan, so a partially pinned
    /// catalog still reconstructs.
    #[must_use]
    pub fn from_report_with_plans(
        report: &CampaignReport,
        cfg: &CampaignConfig,
        plans: &BTreeMap<String, Arc<CaseSet>>,
    ) -> Self {
        Self::from_report_inner(report, cfg, Some(plans))
    }

    fn from_report_inner(
        report: &CampaignReport,
        cfg: &CampaignConfig,
        plans: Option<&BTreeMap<String, Arc<CaseSet>>>,
    ) -> Self {
        let registry = catalog::registry_for(report.os);
        let muts = catalog::catalog_for(report.os);
        let mut cov = Coverage::default();
        let variant = report.os.short_name().to_owned();
        cov.variants.insert(variant.clone());
        for tally in &report.muts {
            let Some(mut_) = muts.iter().find(|m| m.name == tally.name) else {
                continue; // foreign tally (not in this variant's catalog)
            };
            let pools = crate::campaign::resolve_pools(&registry, mut_);
            let pinned = plans.and_then(|p| p.get(&tally.name)).cloned();
            let plan = match pinned {
                Some(plan) => plan,
                None if pools.is_empty() => Arc::new(sampling::single_case()),
                None => {
                    let dims: Vec<usize> = pools.iter().map(Vec::len).collect();
                    sampling::enumerate_shared(&dims, cfg.cap, mut_.name)
                }
            };
            let entry = cov.muts.entry(tally.name.clone()).or_default();
            entry.planned += tally.planned as u64;
            entry.executed += tally.cases as u64;
            entry.variants.insert(variant.clone());
            cov.planned_cases += tally.planned as u64;
            cov.executed_cases += tally.cases as u64;
            for (ty, pool) in mut_.params.iter().zip(&pools) {
                let slot = cov.pools.entry((*ty).to_owned()).or_default();
                slot.size = slot.size.max(pool.len() as u64);
            }
            for combo in plan.cases.iter().take(tally.cases) {
                for ((ty, pool), &idx) in mut_.params.iter().zip(&pools).zip(combo) {
                    let slot = cov.pools.entry((*ty).to_owned()).or_default();
                    slot.touched.insert(pool[idx].name.to_owned());
                }
            }
            cov.fold_classes(tally);
        }
        cov
    }

    /// Folds one tally's outcome-class counts in.
    fn fold_classes(&mut self, tally: &MutTally) {
        let mut add = |label: &str, n: u64| {
            if n > 0 {
                *self.classes.entry(label.to_owned()).or_default() += n;
            }
        };
        add("Catastrophic", u64::from(tally.catastrophic));
        add("Restart", tally.restarts as u64);
        add("Abort", tally.aborts as u64);
        add("Silent", tally.silents as u64);
        add("ErrorReport", tally.error_reports as u64);
        add("Pass", tally.passes as u64);
        add("SuspectedHindering", tally.suspected_hindering as u64);
    }

    /// Merges another coverage map in. Counts add, sets union, pool sizes
    /// take the max — every operation is commutative and associative, so
    /// per-worker (or per-variant) maps merge to the same totals **in any
    /// order** (asserted by `tests/coverage_merge.rs`).
    pub fn merge(&mut self, other: &Coverage) {
        self.variants.extend(other.variants.iter().cloned());
        for (name, mc) in &other.muts {
            let entry = self.muts.entry(name.clone()).or_default();
            entry.planned += mc.planned;
            entry.executed += mc.executed;
            entry.variants.extend(mc.variants.iter().cloned());
        }
        for (ty, pc) in &other.pools {
            let entry = self.pools.entry(ty.clone()).or_default();
            entry.touched.extend(pc.touched.iter().cloned());
            entry.size = entry.size.max(pc.size);
        }
        for (label, n) in &other.classes {
            *self.classes.entry(label.clone()).or_default() += n;
        }
        self.planned_cases += other.planned_cases;
        self.executed_cases += other.executed_cases;
    }

    /// Records one pool-value draw incrementally — the explore-phase
    /// path, where coverage is observed case by case instead of being
    /// reconstructed from a finished report. `pool_size` keeps the
    /// denominator honest on first touch (sizes take the max, like
    /// [`Coverage::merge`]).
    pub fn touch_value(&mut self, ty: &str, value: &str, pool_size: u64) {
        let slot = self.pools.entry(ty.to_owned()).or_default();
        slot.size = slot.size.max(pool_size);
        if !slot.touched.contains(value) {
            slot.touched.insert(value.to_owned());
        }
    }

    /// Records one observed outcome class incrementally (a
    /// [`CLASS_LABELS`] entry, see [`class_label`]).
    pub fn observe_class(&mut self, label: &str) {
        *self.classes.entry(label.to_owned()).or_default() += 1;
    }

    /// What this snapshot covers that `prev` did not: the incremental
    /// coverage-gain metric the adaptive explorer folds back into its
    /// sampling weights after every round. `prev` must be an earlier
    /// snapshot of the same growing map (gain is counted, not negative
    /// drift — a value in `prev` but not in `self` contributes nothing).
    #[must_use]
    pub fn gain_since(&self, prev: &Coverage) -> CoverageGain {
        let new_values = self
            .pools
            .iter()
            .map(|(ty, pc)| match prev.pools.get(ty) {
                Some(old) => pc.touched.difference(&old.touched).count() as u64,
                None => pc.touched.len() as u64,
            })
            .sum();
        let new_classes = CLASS_LABELS
            .iter()
            .filter(|l| {
                self.classes.get(**l).copied().unwrap_or(0) > 0
                    && prev.classes.get(**l).copied().unwrap_or(0) == 0
            })
            .count() as u64;
        CoverageGain {
            new_values,
            new_classes,
        }
    }

    /// Distinct test values drawn at least once, across all pools.
    #[must_use]
    pub fn values_touched(&self) -> u64 {
        self.pools.values().map(|p| p.touched.len() as u64).sum()
    }

    /// Total registered values across all pools (merged-world sizes).
    #[must_use]
    pub fn values_total(&self) -> u64 {
        self.pools.values().map(|p| p.size).sum()
    }

    /// Fraction of registered values drawn at least once (1.0 when no
    /// pools are registered).
    #[must_use]
    pub fn value_fraction(&self) -> f64 {
        let total = self.values_total();
        if total == 0 {
            1.0
        } else {
            self.values_touched() as f64 / total as f64
        }
    }

    /// Primary outcome classes observed (of [`CLASS_LABELS`]).
    #[must_use]
    pub fn classes_observed(&self) -> u64 {
        CLASS_LABELS
            .iter()
            .filter(|l| self.classes.get(**l).copied().unwrap_or(0) > 0)
            .count() as u64
    }

    /// MuTs with at least one executed case.
    #[must_use]
    pub fn muts_exercised(&self) -> u64 {
        self.muts.values().filter(|m| m.executed > 0).count() as u64
    }

    /// Checks this coverage against a floor; returns one human-readable
    /// shortfall per violated dimension (empty ⇒ the floor holds).
    #[must_use]
    pub fn check_floor(&self, floor: &CoverageFloor) -> Vec<String> {
        let mut shortfalls = Vec::new();
        let mut need = |label: &str, got: u64, min: u64| {
            if got < min {
                shortfalls.push(format!("{label}: {got} < floor {min}"));
            }
        };
        need("MuTs exercised", self.muts_exercised(), floor.min_muts);
        need("executed cases", self.executed_cases, floor.min_executed_cases);
        need("pools drawn from", self.pools.len() as u64, floor.min_pools);
        need("outcome classes", self.classes_observed(), floor.min_classes);
        if self.value_fraction() < floor.min_value_fraction {
            shortfalls.push(format!(
                "value coverage: {:.3} < floor {:.3} ({} of {} pool values drawn)",
                self.value_fraction(),
                floor.min_value_fraction,
                self.values_touched(),
                self.values_total()
            ));
        }
        shortfalls
    }
}

/// The checked-in minimum a conformance run must exercise. Regenerating
/// the golden corpus does **not** touch the floor — it is hand-set below
/// the measured coverage so only a real regression (a vanished catalog
/// entry, a pool that stopped being drawn, a class that stopped firing)
/// trips it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageFloor {
    /// Minimum distinct MuTs with at least one executed case.
    pub min_muts: u64,
    /// Minimum total executed cases.
    pub min_executed_cases: u64,
    /// Minimum distinct parameter pools drawn from.
    pub min_pools: u64,
    /// Minimum primary outcome classes observed (max 6).
    pub min_classes: u64,
    /// Minimum fraction of registered pool values drawn at least once.
    pub min_value_fraction: f64,
}

impl Default for CoverageFloor {
    /// A permissive floor (anything non-empty passes); conformance runs
    /// load the checked-in floor from `results/golden/coverage_floor.json`.
    fn default() -> Self {
        CoverageFloor {
            min_muts: 1,
            min_executed_cases: 1,
            min_pools: 1,
            min_classes: 1,
            min_value_fraction: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig};
    use sim_kernel::variant::OsVariant;

    fn small_cfg() -> CampaignConfig {
        CampaignConfig {
            cap: 30,
            record_raw: false,
            isolation_probe: false,
            perfect_cleanup: false,
            parallelism: 1,
            fuel_budget: 0,
        }
    }

    #[test]
    fn coverage_accounts_a_real_campaign() {
        let cfg = small_cfg();
        let report = run_campaign(OsVariant::Win98, &cfg);
        let cov = Coverage::from_report(&report, &cfg);
        assert_eq!(cov.executed_cases, report.total_cases as u64);
        assert_eq!(cov.muts.len(), report.muts.len());
        assert!(cov.muts_exercised() > 0);
        assert!(cov.pools.len() > 5, "win32 catalog draws from many pools");
        assert!(cov.values_touched() <= cov.values_total());
        assert!(cov.value_fraction() > 0.5, "cap 30 already draws most values");
        // Win98 at any cap observes crashes, aborts, passes and errors.
        for class in ["Catastrophic", "Abort", "Pass", "ErrorReport"] {
            assert!(
                cov.classes.get(class).copied().unwrap_or(0) > 0,
                "{class} expected at cap 30 on win98: {:?}",
                cov.classes
            );
        }
        // Executed classes sum back to the executed case count
        // (SuspectedHindering is a subset of ErrorReport, not a class).
        let sum: u64 = CLASS_LABELS
            .iter()
            .map(|l| cov.classes.get(*l).copied().unwrap_or(0))
            .sum();
        assert_eq!(sum, cov.executed_cases);
    }

    #[test]
    fn truncated_mut_covers_only_its_executed_prefix() {
        let cfg = small_cfg();
        let report = run_campaign(OsVariant::Win98, &cfg);
        let gtc = report
            .muts
            .iter()
            .find(|t| t.name == "GetThreadContext")
            .expect("in catalog");
        assert!(gtc.catastrophic && gtc.cases < gtc.planned);
        let cov = Coverage::from_report(&report, &cfg);
        let mc = &cov.muts["GetThreadContext"];
        assert_eq!(mc.executed, gtc.cases as u64);
        assert_eq!(mc.planned, gtc.planned as u64);
    }

    #[test]
    fn merge_is_order_independent_for_two_variants() {
        let cfg = small_cfg();
        let a = Coverage::from_report(&run_campaign(OsVariant::Win98, &cfg), &cfg);
        let b = Coverage::from_report(&run_campaign(OsVariant::Linux, &cfg), &cfg);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.executed_cases, a.executed_cases + b.executed_cases);
        assert!(ab.variants.contains("win98") && ab.variants.contains("linux"));
    }

    #[test]
    fn floor_flags_each_dimension() {
        let cfg = small_cfg();
        let cov = Coverage::from_report(&run_campaign(OsVariant::Linux, &cfg), &cfg);
        assert!(cov.check_floor(&CoverageFloor::default()).is_empty());
        let impossible = CoverageFloor {
            min_muts: u64::MAX,
            min_executed_cases: u64::MAX,
            min_pools: u64::MAX,
            min_classes: 6,
            min_value_fraction: 1.1,
        };
        let shortfalls = cov.check_floor(&impossible);
        assert!(shortfalls.len() >= 4, "{shortfalls:?}");
        assert!(shortfalls.iter().any(|s| s.contains("value coverage")));
    }

    #[test]
    fn incremental_recording_and_gain() {
        let mut cov = Coverage::default();
        cov.touch_value("HANDLE", "NULL", 9);
        cov.touch_value("HANDLE", "NULL", 9); // idempotent
        cov.observe_class("Abort");
        let before = cov.clone();
        cov.touch_value("HANDLE", "closed", 9);
        cov.touch_value("DWORD", "MAXDWORD", 5);
        cov.observe_class("Abort");
        cov.observe_class("Silent");
        let gain = cov.gain_since(&before);
        assert_eq!(gain.new_values, 2);
        assert_eq!(gain.new_classes, 1, "Silent is new, Abort is not");
        assert_eq!(cov.gain_since(&cov).new_values, 0);
        assert_eq!(cov.values_touched(), 3);
        assert_eq!(cov.values_total(), 14);
    }

    #[test]
    fn class_label_matches_tally_fold() {
        use crate::crash::{FailureClass, RawOutcome};
        assert_eq!(
            class_label(FailureClass::Pass, RawOutcome::ReturnedError),
            "ErrorReport"
        );
        assert_eq!(class_label(FailureClass::Pass, RawOutcome::ReturnedSuccess), "Pass");
        assert_eq!(
            class_label(FailureClass::Hindering, RawOutcome::ReturnedError),
            "ErrorReport"
        );
        assert_eq!(
            class_label(FailureClass::Silent, RawOutcome::ReturnedSuccess),
            "Silent"
        );
        for label in [
            class_label(FailureClass::Catastrophic, RawOutcome::SystemCrash),
            class_label(FailureClass::Restart, RawOutcome::TaskHang),
            class_label(FailureClass::Abort, RawOutcome::TaskAbort),
        ] {
            assert!(CLASS_LABELS.contains(&label));
        }
    }
}
