//! Modules under Test: name, functional group, parameter signature and
//! dispatcher.

use serde::{Deserialize, Serialize};
use sim_kernel::outcome::ApiResult;
use sim_kernel::variant::OsVariant;
use sim_kernel::Kernel;
use std::fmt;
use std::sync::Arc;

/// The paper's twelve functional groupings (Table 2 / Figure 1): five
/// system-call groups plus seven C-library groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FunctionGroup {
    /// Process creation/control system calls.
    ProcessPrimitives,
    /// Descriptor/handle-level I/O system calls.
    IoPrimitives,
    /// Path-level file and directory system calls.
    FileDirAccess,
    /// Virtual-memory and heap system calls.
    MemoryManagement,
    /// Environment/identity/system-information calls.
    ProcessEnvironment,
    /// `<ctype.h>`.
    CChar,
    /// `<string.h>` `str*`.
    CString,
    /// `malloc` family plus `mem*`.
    CMemory,
    /// `FILE` management (`fopen`, `fseek`, …).
    CFileIo,
    /// Stream I/O (`fread`, `printf`, …).
    CStreamIo,
    /// `<math.h>`.
    CMath,
    /// `<time.h>`.
    CTime,
}

impl FunctionGroup {
    /// All twelve groups, in the paper's Figure 1 order.
    pub const ALL: [FunctionGroup; 12] = [
        FunctionGroup::ProcessPrimitives,
        FunctionGroup::IoPrimitives,
        FunctionGroup::FileDirAccess,
        FunctionGroup::MemoryManagement,
        FunctionGroup::ProcessEnvironment,
        FunctionGroup::CChar,
        FunctionGroup::CFileIo,
        FunctionGroup::CMemory,
        FunctionGroup::CStreamIo,
        FunctionGroup::CString,
        FunctionGroup::CTime,
        FunctionGroup::CMath,
    ];

    /// Whether this is one of the seven C-library groups (identical test
    /// cases on every OS).
    #[must_use]
    pub fn is_c_library(self) -> bool {
        matches!(
            self,
            FunctionGroup::CChar
                | FunctionGroup::CString
                | FunctionGroup::CMemory
                | FunctionGroup::CFileIo
                | FunctionGroup::CStreamIo
                | FunctionGroup::CMath
                | FunctionGroup::CTime
        )
    }

    /// Display label matching the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FunctionGroup::ProcessPrimitives => "Process Primitives",
            FunctionGroup::IoPrimitives => "I/O Primitives",
            FunctionGroup::FileDirAccess => "File/Directory Access",
            FunctionGroup::MemoryManagement => "Memory Management",
            FunctionGroup::ProcessEnvironment => "Process Environment",
            FunctionGroup::CChar => "C char",
            FunctionGroup::CString => "C string",
            FunctionGroup::CMemory => "C memory management",
            FunctionGroup::CFileIo => "C file I/O management",
            FunctionGroup::CStreamIo => "C stream I/O",
            FunctionGroup::CMath => "C math",
            FunctionGroup::CTime => "C time",
        }
    }
}

impl fmt::Display for FunctionGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The dispatcher: invokes the simulated API with raw argument words.
pub type Dispatcher = Arc<dyn Fn(&mut Kernel, OsVariant, &[u64]) -> ApiResult + Send + Sync>;

/// One Module under Test.
#[derive(Clone)]
pub struct Mut {
    /// The call's name, exactly as the API spells it.
    pub name: &'static str,
    /// Functional grouping for the comparison methodology.
    pub group: FunctionGroup,
    /// Parameter data-type names, resolved against the world's
    /// [`TypeRegistry`](crate::datatype::TypeRegistry).
    pub params: Vec<&'static str>,
    /// Invokes the call.
    pub dispatch: Dispatcher,
}

impl fmt::Debug for Mut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mut")
            .field("name", &self.name)
            .field("group", &self.group)
            .field("params", &self.params)
            .finish_non_exhaustive()
    }
}

/// Argument-decoding helpers for dispatchers.
pub mod arg {
    use sim_core::SimPtr;
    use sim_kernel::objects::Handle;

    /// Raw word → pointer.
    #[must_use]
    pub fn ptr(a: u64) -> SimPtr {
        SimPtr::new(a)
    }

    /// Raw word → signed 32-bit.
    #[must_use]
    pub fn int(a: u64) -> i32 {
        a as u32 as i32
    }

    /// Raw word → unsigned 32-bit.
    #[must_use]
    pub fn uint(a: u64) -> u32 {
        a as u32
    }

    /// Raw word → `f64` (bit pattern).
    #[must_use]
    pub fn f64_of(a: u64) -> f64 {
        f64::from_bits(a)
    }

    /// Raw word → Win32 handle.
    #[must_use]
    pub fn handle(a: u64) -> Handle {
        Handle(a as u32)
    }

    /// Raw word → POSIX descriptor (sign-extended from 32 bits).
    #[must_use]
    pub fn fd(a: u64) -> i64 {
        i64::from(a as u32 as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_kernel::outcome::ApiReturn;

    #[test]
    fn twelve_groups_split_5_7() {
        assert_eq!(FunctionGroup::ALL.len(), 12);
        let c = FunctionGroup::ALL.iter().filter(|g| g.is_c_library()).count();
        assert_eq!(c, 7);
        assert_eq!(FunctionGroup::IoPrimitives.label(), "I/O Primitives");
    }

    #[test]
    fn mut_dispatch_works() {
        let m = Mut {
            name: "identity",
            group: FunctionGroup::CMath,
            params: vec!["int"],
            dispatch: Arc::new(|k, _, a| {
                k.charge_call();
                Ok(ApiReturn::ok(a[0] as i64))
            }),
        };
        let mut k = Kernel::new();
        let r = (m.dispatch)(&mut k, OsVariant::Linux, &[42]).unwrap();
        assert_eq!(r.value, 42);
        assert!(format!("{m:?}").contains("identity"));
    }

    #[test]
    fn arg_helpers() {
        assert_eq!(arg::int(u64::from(u32::MAX)), -1);
        assert_eq!(arg::fd(u64::from(u32::MAX)), -1);
        assert_eq!(arg::uint(0x1_0000_0001), 1);
        assert_eq!(arg::f64_of(1.5f64.to_bits()), 1.5);
        assert_eq!(arg::ptr(0x10).addr(), 0x10);
        assert_eq!(arg::handle(5).raw(), 5);
    }
}
