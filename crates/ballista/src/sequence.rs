//! Sequence-dependent failure testing — the paper's stated future work
//! ("we will attempt to find ways to reproduce the elusive crashes that we
//! have observed … state- and sequence-dependent failures").
//!
//! Standard Ballista runs every test case on a pristine machine. This
//! extension runs a *pair* of calls on one machine: call **A** executes
//! first (its constructors and side effects stay), then call **B** runs in
//! whatever state A left behind. B's outcome is compared with its outcome
//! on a pristine machine; any difference is a **sequence dependence** —
//! from the benign (A deleted the file B was going to stat) to the severe
//! (A's residue pushed B over a 9x crash threshold).

use crate::crash::{FailureClass, RawOutcome};
use crate::datatype::TypeRegistry;
use crate::exec::{execute_case, execute_case_on, Session};
use crate::muts::Mut;
use crate::sampling;
use crate::value::TestValue;
use serde::{Deserialize, Serialize};
use sim_kernel::variant::OsVariant;
use sim_kernel::Kernel;

/// One observed sequence dependence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequenceFinding {
    /// First call of the pair.
    pub first: String,
    /// Second call (the one whose behaviour changed).
    pub second: String,
    /// Pool-value names of the second call's arguments.
    pub second_values: Vec<String>,
    /// The second call's outcome alone on a pristine machine.
    pub alone: RawOutcome,
    /// Its outcome when run after the first call.
    pub sequenced: RawOutcome,
    /// CRASH classification of the sequenced outcome.
    pub sequenced_class: FailureClass,
}

impl SequenceFinding {
    /// Whether the sequence *worsened* the outcome (e.g. an error report
    /// alone became an abort or a crash in sequence) — the findings the
    /// paper's future work is after, as opposed to ordinary state
    /// visibility (a file deleted by A is legitimately absent for B).
    #[must_use]
    pub fn is_escalation(&self) -> bool {
        severity(self.sequenced) > severity(self.alone)
    }
}

fn severity(raw: RawOutcome) -> u8 {
    match raw {
        RawOutcome::ReturnedSuccess | RawOutcome::ReturnedError => 0,
        RawOutcome::TaskAbort => 1,
        RawOutcome::TaskHang => 2,
        RawOutcome::SystemCrash => 3,
    }
}

/// Configuration for a sequence sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequenceConfig {
    /// Case pairs tried per (A, B) MuT pair.
    pub cases_per_pair: usize,
    /// MuT pairs examined (sampled deterministically from the catalog).
    pub max_pairs: usize,
    /// How many cases of the *first* call run before the second — a
    /// warm-up chain that lets state (and 9x residue) accumulate the way
    /// a real workload's call history would.
    pub warmup_calls: usize,
}

impl Default for SequenceConfig {
    fn default() -> Self {
        SequenceConfig {
            cases_per_pair: 8,
            max_pairs: 400,
            warmup_calls: 4,
        }
    }
}

fn pools_for(registry: &TypeRegistry, m: &Mut) -> Vec<Vec<TestValue>> {
    m.params.iter().map(|ty| registry.pool(ty)).collect()
}

/// First `n` argument combinations in lexicographic (odometer) order.
///
/// Pools put valid values first, so the leading combinations are the
/// ones that actually mutate machine state — exactly what a warm-up
/// chain and a state-dependence probe want. Using a fixed order (rather
/// than the campaign sampler) also keeps the sweep reproducible
/// independent of the sampling RNG.
fn cases_for(pools: &[Vec<TestValue>], n: usize) -> Vec<Vec<usize>> {
    if pools.is_empty() {
        return vec![Vec::new()];
    }
    let dims: Vec<usize> = pools.iter().map(Vec::len).collect();
    let n = n.max(1);
    let mut cases = Vec::with_capacity(n);
    let mut combo = vec![0usize; dims.len()];
    while cases.len() < n {
        cases.push(combo.clone());
        let mut i = dims.len();
        loop {
            if i == 0 {
                return cases; // the whole space is smaller than n
            }
            i -= 1;
            combo[i] += 1;
            if combo[i] < dims[i] {
                break;
            }
            combo[i] = 0;
        }
    }
    cases
}

/// Runs the sequence sweep over the OS's catalog.
///
/// Pairs are drawn by a deterministic generator seeded from the catalog
/// size, so results reproduce run-to-run while covering the whole catalog
/// as both first and second call. Cases where the warm-up chain already
/// crashed the machine are skipped — that is ordinary Table 3 material,
/// not a sequence dependence.
#[must_use]
pub fn run_sequence_sweep(
    os: OsVariant,
    muts: &[Mut],
    registry: &TypeRegistry,
    cfg: &SequenceConfig,
) -> Vec<SequenceFinding> {
    let mut findings = Vec::new();
    let n = muts.len();
    if n == 0 {
        return findings;
    }
    // Deterministic pair generator: a full-period-ish linear walk over the
    // pair space, so both slots sweep the catalog.
    let mut state = sampling::seed_from_name(muts[0].name) | 1;
    for _ in 0..cfg.max_pairs {
        state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        let ai = (state >> 33) as usize % n;
        let bi = (state >> 13) as usize % n;
        let (a, b) = (&muts[ai], &muts[bi]);
        let a_pools = pools_for(registry, a);
        let b_pools = pools_for(registry, b);
        let a_cases = cases_for(&a_pools, cfg.warmup_calls.max(1));
        let b_cases = cases_for(&b_pools, cfg.cases_per_pair);
        for b_combo in &b_cases {
            // Baseline: B alone on a pristine machine.
            let alone = execute_case(os, b, &b_pools, b_combo, &mut Session::new());
            // Sequence: the A warm-up chain, then B, all on one machine.
            let mut kernel = Kernel::with_flavor(os.machine_flavor());
            let mut chain_crashed = false;
            for a_combo in &a_cases {
                let first = execute_case_on(&mut kernel, os, a, &a_pools, a_combo);
                match first.raw {
                    RawOutcome::SystemCrash => {
                        chain_crashed = true; // A's own crash, not a sequence effect
                        break;
                    }
                    // Uncleaned state accumulates on the shared machine,
                    // exactly as in the paper's non-isolated harness runs.
                    RawOutcome::TaskAbort => kernel.residue += 1,
                    RawOutcome::ReturnedSuccess if first.any_exceptional => kernel.residue += 1,
                    _ => {}
                }
            }
            if chain_crashed {
                continue;
            }
            let sequenced = execute_case_on(&mut kernel, os, b, &b_pools, b_combo);
            if sequenced.raw != alone.raw {
                findings.push(SequenceFinding {
                    first: a.name.to_owned(),
                    second: b.name.to_owned(),
                    second_values: b_combo
                        .iter()
                        .zip(&b_pools)
                        .map(|(&i, pool)| pool[i].name.to_owned())
                        .collect(),
                    alone: alone.raw,
                    sequenced: sequenced.raw,
                    sequenced_class: sequenced.class,
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn sweep_is_deterministic() {
        let os = OsVariant::Linux;
        let registry = catalog::registry_for(os);
        let muts: Vec<Mut> = catalog::catalog_for(os).into_iter().take(12).collect();
        let cfg = SequenceConfig {
            cases_per_pair: 4,
            max_pairs: 30,
            warmup_calls: 2,
        };
        let a = run_sequence_sweep(os, &muts, &registry, &cfg);
        let b = run_sequence_sweep(os, &muts, &registry, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn finds_filesystem_state_dependences() {
        // unlink(existing) then open(existing, O_RDONLY): alone the open
        // succeeds; in sequence it reports ENOENT — a visible (benign)
        // state dependence the sweep must detect.
        let os = OsVariant::Linux;
        let registry = catalog::registry_for(os);
        let all = catalog::catalog_for(os);
        let muts: Vec<Mut> = all
            .into_iter()
            .filter(|m| ["unlink", "open", "stat", "access"].contains(&m.name))
            .collect();
        let cfg = SequenceConfig {
            cases_per_pair: 24,
            max_pairs: 64,
            warmup_calls: 1,
        };
        let findings = run_sequence_sweep(os, &muts, &registry, &cfg);
        assert!(
            findings.iter().any(|f| f.first == "unlink"),
            "no unlink-induced dependence found: {findings:?}"
        );
    }

    #[test]
    fn escalation_predicate() {
        let f = SequenceFinding {
            first: "a".into(),
            second: "b".into(),
            second_values: vec![],
            alone: RawOutcome::ReturnedError,
            sequenced: RawOutcome::SystemCrash,
            sequenced_class: FailureClass::Catastrophic,
        };
        assert!(f.is_escalation());
        let g = SequenceFinding {
            alone: RawOutcome::ReturnedSuccess,
            sequenced: RawOutcome::ReturnedError,
            ..f
        };
        assert!(!g.is_escalation());
    }
}
