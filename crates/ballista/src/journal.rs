//! The write-ahead campaign journal behind checkpoint/resume.
//!
//! Long fault-injection campaigns die for mundane reasons — OOM kills,
//! preempted CI runners, a tripped power strip — and before this module a
//! dead campaign meant rerunning every variant from scratch. The journal
//! appends one fixed-width record per executed test case (the same packed
//! byte [`crate::crash::pack_case`] produces, plus the case's catalog
//! position) and a resumed campaign replays the prefix to rebuild the
//! session state bit for bit, then continues from the first unrecorded
//! case.
//!
//! # On-disk format (version 2)
//!
//! ```text
//! header  := magic "BLSTJRN2" (8) | plan_hash u64 LE (8)
//! record  := tag 0xA5 (1) | mut_idx u32 LE (4) | case_idx u32 LE (4)
//!            | packed_case (1) | fuel u64 LE (8)
//!            | fnv1a32 of the preceding 18 bytes (4)
//! journal := header record*
//! ```
//!
//! `plan_hash` fingerprints everything that determines the case sequence
//! (variant, config knobs, and the MuT plan — which folds in the per-MuT
//! sampling seeds; adaptive campaigns stamp their mode-tagged
//! fingerprint, which additionally pins the explore knobs the pinned
//! plan was derived from); a journal whose hash disagrees with the
//! resuming campaign is ignored rather than misapplied. Fixed-width records make
//! torn-write recovery trivial: on open, the journal truncates itself to
//! the longest prefix of checksum-valid records, so a case is either
//! fully recorded or not recorded at all — never half-counted.
//!
//! Version 2 added the `fuel` field so a resumed campaign can rebuild
//! the telemetry trace's deterministic fuel timeline without
//! re-executing replayed cases. Version-1 journals fail the magic check
//! and are treated like any other foreign journal: the campaign
//! restarts fresh with a warning instead of misreading them.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Crash-injection trigger for the resume tests: when armed, the process
/// aborts — no unwinding, no flushing, the harshest in-process stand-in
/// for SIGKILL — once this many more records have been appended. `0`
/// (the default) disarms it.
static KILL_AFTER: AtomicU64 = AtomicU64::new(0);

/// Arms the crash trigger: the process aborts after `n` more journal
/// appends. Used by the `resumable` binary's `--kill-after` flag so CI
/// can die at a deterministic case boundary instead of racing a timer.
pub fn arm_kill_after(n: u64) {
    KILL_AFTER.store(n, Ordering::SeqCst);
}

fn kill_tick() {
    // fetch_update so concurrent appends cannot double-decrement past 0.
    let fire = KILL_AFTER
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
        .is_ok_and(|prev| prev == 1);
    if fire {
        std::process::abort();
    }
}

/// Journal file magic (version 2: records carry the case's fuel).
pub const MAGIC: [u8; 8] = *b"BLSTJRN2";
/// Bytes in the journal header.
pub const HEADER_LEN: usize = 16;
/// Bytes in one case record.
pub const RECORD_LEN: usize = 22;
/// Leading tag byte of every record.
pub const RECORD_TAG: u8 = 0xA5;
/// Records between durability syncs: the journal `fsync`s every this many
/// appends (and on [`Journal::sync`]), bounding what power loss can undo
/// while keeping the per-case cost at a buffered write.
pub const SYNC_INTERVAL: u64 = 256;

const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV32_OFFSET: u32 = 0x811c_9dc5;
const FNV32_PRIME: u32 = 0x0100_0193;

/// Incremental FNV-1a (64-bit) used to fingerprint a campaign plan.
#[derive(Debug, Clone)]
pub struct PlanHasher(u64);

impl PlanHasher {
    /// A hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        PlanHasher(FNV64_OFFSET)
    }

    /// Folds `bytes` into the fingerprint.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV64_PRIME);
        }
    }

    /// Folds a length-prefixed byte string (so `"ab","c"` and `"a","bc"`
    /// fingerprint differently).
    pub fn write_str(&mut self, s: &str) {
        self.write(&(s.len() as u64).to_le_bytes());
        self.write(s.as_bytes());
    }

    /// Folds an integer.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The fingerprint.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for PlanHasher {
    fn default() -> Self {
        Self::new()
    }
}

fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h = FNV32_OFFSET;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(FNV32_PRIME);
    }
    h
}

/// One journaled test case: its catalog position plus the packed outcome
/// byte ([`crate::crash::pack_case`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseRecord {
    /// Index of the MuT in catalog order.
    pub mut_idx: u32,
    /// Index of the case within the MuT's sampling plan.
    pub case_idx: u32,
    /// The packed outcome byte.
    pub packed: u8,
    /// Fuel the case burned — deterministic, so replaying the journal
    /// rebuilds the telemetry trace's fuel timeline exactly.
    pub fuel: u64,
}

impl CaseRecord {
    /// Serializes to the fixed on-disk representation.
    #[must_use]
    pub fn encode(self) -> [u8; RECORD_LEN] {
        let mut buf = [0u8; RECORD_LEN];
        buf[0] = RECORD_TAG;
        buf[1..5].copy_from_slice(&self.mut_idx.to_le_bytes());
        buf[5..9].copy_from_slice(&self.case_idx.to_le_bytes());
        buf[9] = self.packed;
        buf[10..18].copy_from_slice(&self.fuel.to_le_bytes());
        let sum = fnv1a32(&buf[..18]);
        buf[18..22].copy_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Deserializes and verifies one record; `None` for a short, untagged
    /// or checksum-mismatched buffer (a torn or corrupted write).
    #[must_use]
    pub fn decode(buf: &[u8]) -> Option<CaseRecord> {
        if buf.len() < RECORD_LEN || buf[0] != RECORD_TAG {
            return None;
        }
        let sum = u32::from_le_bytes(buf[18..22].try_into().ok()?);
        if sum != fnv1a32(&buf[..18]) {
            return None;
        }
        Some(CaseRecord {
            mut_idx: u32::from_le_bytes(buf[1..5].try_into().ok()?),
            case_idx: u32::from_le_bytes(buf[5..9].try_into().ok()?),
            packed: buf[9],
            fuel: u64::from_le_bytes(buf[10..18].try_into().ok()?),
        })
    }
}

/// What [`Journal::open_resume`] recovered from an existing file.
#[derive(Debug, Clone)]
pub struct Recovery {
    /// The checksum-valid record prefix, in file order.
    pub records: Vec<CaseRecord>,
    /// Bytes discarded past the last valid record (0 for a clean file).
    pub truncated_bytes: u64,
    /// `true` when no usable journal existed (absent, unreadable header,
    /// or a plan-hash mismatch) and the file was started over.
    pub fresh: bool,
}

/// An append-only campaign journal (see the module docs for the format).
#[derive(Debug)]
pub struct Journal {
    file: File,
    records: u64,
    unsynced: u64,
    fsyncs: u64,
}

impl Journal {
    /// Creates (or truncates) a journal for the given plan fingerprint.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors creating or writing the file.
    pub fn create(path: &Path, plan_hash: u64) -> io::Result<Journal> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&MAGIC)?;
        file.write_all(&plan_hash.to_le_bytes())?;
        file.sync_all()?;
        Ok(Journal {
            file,
            records: 0,
            unsynced: 0,
            fsyncs: 0,
        })
    }

    /// Opens `path` for resumption: verifies the header against
    /// `plan_hash`, recovers the longest valid record prefix, truncates
    /// any torn tail, and positions the journal to append after the
    /// prefix. A missing or foreign journal is replaced by a fresh one
    /// (reported via [`Recovery::fresh`]) — resuming against the wrong
    /// plan would corrupt tallies, so it is never attempted.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors reading, truncating or rewriting the file.
    pub fn open_resume(path: &Path, plan_hash: u64) -> io::Result<(Journal, Recovery)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let header_ok = bytes.len() >= HEADER_LEN
            && bytes[..8] == MAGIC
            && bytes[8..16] == plan_hash.to_le_bytes();
        if !header_ok {
            drop(file);
            let journal = Journal::create(path, plan_hash)?;
            let recovery = Recovery {
                records: Vec::new(),
                truncated_bytes: bytes.len() as u64,
                fresh: true,
            };
            return Ok((journal, recovery));
        }
        let mut records = Vec::new();
        let mut offset = HEADER_LEN;
        while let Some(rec) = CaseRecord::decode(&bytes[offset..]) {
            records.push(rec);
            offset += RECORD_LEN;
        }
        let truncated_bytes = (bytes.len() - offset) as u64;
        if truncated_bytes > 0 {
            file.set_len(offset as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(offset as u64))?;
        let journal = Journal {
            file,
            records: records.len() as u64,
            unsynced: 0,
            fsyncs: 0,
        };
        Ok((
            journal,
            Recovery {
                records,
                truncated_bytes,
                fresh: false,
            },
        ))
    }

    /// Appends one case record, syncing every [`SYNC_INTERVAL`] appends.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors writing or syncing.
    pub fn append(&mut self, rec: CaseRecord) -> io::Result<()> {
        self.file.write_all(&rec.encode())?;
        self.records += 1;
        self.unsynced += 1;
        crate::telemetry::on_journal_append();
        if self.unsynced >= SYNC_INTERVAL {
            self.sync()?;
        }
        kill_tick();
        Ok(())
    }

    /// Forces appended records to stable storage.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `fsync` error.
    pub fn sync(&mut self) -> io::Result<()> {
        let start = std::time::Instant::now();
        self.file.sync_data()?;
        self.unsynced = 0;
        self.fsyncs += 1;
        crate::telemetry::on_journal_fsync(
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
        Ok(())
    }

    /// Durability syncs issued since this handle was opened.
    #[must_use]
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Discards every record past the first `n` — used when a recovered
    /// suffix fails the resuming campaign's semantic checks (records out
    /// of plan order) and execution must restart from the last trusted
    /// point.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors truncating or seeking.
    pub fn truncate_to(&mut self, n: u64) -> io::Result<()> {
        let end = HEADER_LEN as u64 + n * RECORD_LEN as u64;
        self.file.set_len(end)?;
        self.file.sync_all()?;
        self.file.seek(SeekFrom::Start(end))?;
        self.records = n;
        self.unsynced = 0;
        Ok(())
    }

    /// Records currently in the journal.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.records
    }

    /// Whether the journal holds no records yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ballista-journal-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn sample(n: u32) -> Vec<CaseRecord> {
        (0..n)
            .map(|i| CaseRecord {
                mut_idx: i / 3,
                case_idx: i % 3,
                packed: (i % 7) as u8,
                fuel: u64::from(i) * 11 + 5,
            })
            .collect()
    }

    #[test]
    fn record_encode_decode_roundtrip() {
        for rec in sample(50) {
            let buf = rec.encode();
            assert_eq!(CaseRecord::decode(&buf), Some(rec));
        }
        // Any single-byte flip is caught.
        let buf = sample(1)[0].encode();
        for i in 0..RECORD_LEN {
            let mut bad = buf;
            bad[i] ^= 0x40;
            assert_eq!(CaseRecord::decode(&bad), None, "flip at byte {i} undetected");
        }
        assert_eq!(CaseRecord::decode(&buf[..RECORD_LEN - 1]), None, "short buffer");
    }

    #[test]
    fn write_then_resume_recovers_all_records() {
        let path = scratch("clean.journal");
        let recs = sample(10);
        let mut j = Journal::create(&path, 42).expect("create");
        for &r in &recs {
            j.append(r).expect("append");
        }
        j.sync().expect("sync");
        drop(j);
        let (j, rec) = Journal::open_resume(&path, 42).expect("resume");
        assert_eq!(rec.records, recs);
        assert!(!rec.fresh);
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(j.len(), 10);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_to_last_valid_record() {
        let path = scratch("torn.journal");
        let recs = sample(6);
        let mut j = Journal::create(&path, 7).expect("create");
        for &r in &recs {
            j.append(r).expect("append");
        }
        j.sync().expect("sync");
        drop(j);
        // Simulate a torn final write: lop 5 bytes off the last record.
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 5]).expect("tear");
        let (mut j, rec) = Journal::open_resume(&path, 7).expect("resume");
        assert_eq!(rec.records, recs[..5]);
        assert_eq!(rec.truncated_bytes, (RECORD_LEN - 5) as u64);
        // Appending after recovery lands exactly after the valid prefix.
        j.append(recs[5]).expect("append");
        j.sync().expect("sync");
        drop(j);
        let (_, rec) = Journal::open_resume(&path, 7).expect("reopen");
        assert_eq!(rec.records, recs);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn plan_hash_mismatch_starts_fresh() {
        let path = scratch("mismatch.journal");
        let mut j = Journal::create(&path, 1).expect("create");
        for &r in &sample(4) {
            j.append(r).expect("append");
        }
        drop(j);
        let (j, rec) = Journal::open_resume(&path, 2).expect("resume");
        assert!(rec.fresh, "a foreign journal must never be replayed");
        assert!(rec.records.is_empty());
        assert!(j.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncate_to_discards_suffix() {
        let path = scratch("truncate.journal");
        let recs = sample(8);
        let mut j = Journal::create(&path, 9).expect("create");
        for &r in &recs {
            j.append(r).expect("append");
        }
        j.truncate_to(3).expect("truncate");
        assert_eq!(j.len(), 3);
        j.append(recs[3]).expect("append after truncate");
        j.sync().expect("sync");
        drop(j);
        let (_, rec) = Journal::open_resume(&path, 9).expect("resume");
        assert_eq!(rec.records, recs[..4]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn plan_hasher_separates_boundaries() {
        let mut a = PlanHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = PlanHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
        assert_eq!(PlanHasher::new().finish(), PlanHasher::default().finish());
    }
}
