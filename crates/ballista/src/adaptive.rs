//! Coverage-guided adaptive sampling: explore → pin → replay.
//!
//! The paper's fixed cap-5000 plans are a *blind* pseudo-random sample:
//! identical across variants (which the comparative tables need), but
//! indifferent to what the campaign has already learned. This module
//! adds the campaign mode ROADMAP calls "coverage-guided adaptive
//! sampling", following the coverage-level-guided blackbox idea
//! (arXiv:2112.15485): feed live coverage back into case selection, at
//! the same per-MuT case budget as the fixed plan.
//!
//! # Explore, then pin
//!
//! The mode runs in two phases:
//!
//! 1. **Explore** ([`explore`]): budgeted rounds draw cases from a
//!    weighted sampler. After every round the live [`Coverage`] snapshot
//!    is diffed ([`Coverage::gain_since`]) and folded back into the
//!    weights — under-touched pool values get heavier, values that
//!    participated in rare outcomes (Silent / Restart / Catastrophic)
//!    earn a standing bonus, and a MuT whose observed CRASH-class
//!    distribution changed last round gets its per-round quota doubled.
//!    Exploration runs at residue zero, so it observes each case's
//!    *clean* outcome (the same record the parallel engine's clean pass
//!    would produce).
//! 2. **Pin** ([`PinnedPlan`]): the explored case list is frozen into an
//!    explicit per-MuT [`CaseSet`]. Pinning is what keeps replay
//!    deterministic: the adaptive *choice* happens once, and every
//!    engine afterwards executes a plain, fixed plan — so the serial,
//!    parallel, journaled, and fleet engines produce **bit-identical**
//!    tallies for the same pinned plan, by exactly the argument that
//!    already covers the classic campaign (asserted by
//!    `tests/adaptive_determinism.rs`).
//!
//! Cases that went Catastrophic at residue zero during exploration are
//! handled specially: every engine stops a MuT at its first
//! Catastrophic case, so anything pinned after a crash is dead weight
//! at replay. The explorer therefore keeps exactly **one** crash case
//! per steerable MuT — the first discovered, pinned last so the replay
//! still reports the MuT Catastrophic without truncating the rest of
//! the plan — and *re-draws* later crash draws instead of pinning them
//! (they still execute during explore, feeding the weights and the
//! rare-value set; the discard budget is bounded so exploration always
//! terminates). The replayed prefix is thus essentially the whole
//! budget, where the fixed plan crashes wherever its blind sample
//! happens to place the first crash case.
//!
//! # Determinism and addressability
//!
//! The explorer draws from one `StdRng` seeded by
//! (mode tag, variant, [`AdaptiveConfig::seed`]) and consults only
//! deterministic state, so the pinned plan is a pure function of
//! `(os, cap, fuel budget, rounds, seed, rare_bonus)`. That purity is
//! what lets the campaign fingerprint fold a mode **tag** instead of
//! the plan itself: [`fingerprint_adaptive`] hashes `adaptive/1` plus
//! the adaptive knobs over the catalog plans (mirroring `crashcon/1`),
//! and two adaptive campaigns share a fingerprint iff they would pin
//! the same plan. Journals, the result cache, and the fleet server all
//! address adaptive campaigns by that fingerprint.

use crate::campaign::{
    self, plan_fingerprint_tagged, prepare, CampaignConfig, CampaignFingerprint, CampaignReport,
    PreparedMut,
};
use crate::catalog;
use crate::coverage::{class_label, Coverage};
use crate::crash::FailureClass;
use crate::datatype::TypeRegistry;
use crate::exec::{CaseRunner, Session};
use crate::journal::PlanHasher;
use crate::muts::Mut;
use crate::sampling::{self, CaseSet, Combo};
use crate::telemetry;
use crate::value::TestValue;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use sim_kernel::variant::OsVariant;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

/// The mode tag folded into adaptive fingerprints, journal hashes, and
/// cache keys (versioned like `crashcon/1`; bump on any change to the
/// explore algorithm, since the pinned plan is derived from it).
pub const MODE_TAG: &str = "adaptive/1";

/// Default explore rounds when [`AdaptiveConfig::rounds`] is 0.
pub const DEFAULT_ROUNDS: usize = 8;

/// Default rare-outcome weight bonus when [`AdaptiveConfig::rare_bonus`]
/// is 0.
pub const DEFAULT_RARE_BONUS: u64 = 32;

/// Weight-collision retries before the explorer falls back to a linear
/// probe over the combination space.
const DRAW_RETRIES: usize = 8;

/// Adaptive-mode knobs. All three are folded into the adaptive campaign
/// fingerprint, so changing any of them re-addresses the campaign.
///
/// Like [`CampaignConfig`], `0` means "default" for every knob so that
/// deserializing an old (or sparse) config yields the standard
/// behaviour: `rounds: 0` resolves to [`DEFAULT_ROUNDS`] and
/// `rare_bonus: 0` to [`DEFAULT_RARE_BONUS`]. The `seed` is taken
/// literally (0 is a fine seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct AdaptiveConfig {
    /// Explore rounds; `0` resolves to [`DEFAULT_ROUNDS`]. More rounds
    /// mean more feedback foldings at the same total case budget.
    #[serde(default)]
    pub rounds: usize,
    /// Explore RNG seed. Different seeds pin different (equally valid)
    /// plans; the default campaign uses seed 0.
    #[serde(default)]
    pub seed: u64,
    /// Additive weight bonus for pool values that participated in a
    /// Silent, Restart, or Catastrophic case; `0` resolves to
    /// [`DEFAULT_RARE_BONUS`].
    #[serde(default)]
    pub rare_bonus: u64,
}

impl AdaptiveConfig {
    /// The effective round count (`rounds`, with 0 → [`DEFAULT_ROUNDS`]).
    #[must_use]
    pub fn effective_rounds(&self) -> usize {
        match self.rounds {
            0 => DEFAULT_ROUNDS,
            n => n,
        }
    }

    /// The effective rare bonus (`rare_bonus`, with 0 →
    /// [`DEFAULT_RARE_BONUS`]).
    #[must_use]
    pub fn effective_rare_bonus(&self) -> u64 {
        match self.rare_bonus {
            0 => DEFAULT_RARE_BONUS,
            n => n,
        }
    }
}

/// One explore round's ledger entry — the coverage-gain curve an
/// operator reads to judge when exploration went dry (see
/// EXPERIMENTS.md, "Reading a coverage curve").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Round index (0-based).
    pub round: usize,
    /// Cases executed this round.
    pub explored_cases: u64,
    /// Pool values first touched this round.
    pub new_values: u64,
    /// Primary outcome classes first observed this round.
    pub new_classes: u64,
}

/// One MuT's pinned case list.
#[derive(Debug, Clone)]
pub struct PinnedMut {
    /// MuT name (catalog key).
    pub name: String,
    /// The frozen plan: explored cases in pin order, with at most the
    /// first discovered Catastrophic (residue-zero) case deferred to
    /// the tail (later crash draws were executed for feedback but
    /// re-drawn rather than pinned). For exhaustive and zero-parameter
    /// MuTs this is exactly the fixed plan — adaptive selection cannot
    /// beat "all of them".
    pub plan: Arc<CaseSet>,
}

/// The frozen result of an explore phase: per-MuT pinned plans (catalog
/// order) plus the explore ledger. Everything downstream — the four
/// engines, coverage reconstruction, the goldens — works from this.
#[derive(Debug, Clone)]
pub struct PinnedPlan {
    /// Variant the plan was explored on.
    pub os: OsVariant,
    /// Pinned per-MuT plans, in catalog order.
    pub muts: Vec<PinnedMut>,
    /// Per-round explore ledger (the coverage-gain curve).
    pub rounds: Vec<RoundStats>,
    /// Total cases executed during exploration.
    pub explore_cases: u64,
    /// Coverage observed during exploration (residue-zero outcomes).
    pub explore_coverage: Coverage,
}

impl PinnedPlan {
    /// Total pinned cases across MuTs (equals the fixed plans' total at
    /// the same cap — the equal-budget invariant).
    #[must_use]
    pub fn pinned_cases(&self) -> u64 {
        self.muts.iter().map(|m| m.plan.cases.len() as u64).sum()
    }

    /// Stable FNV-1a digest of the full pinned case list — what the
    /// determinism tests compare across processes and engines.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = PlanHasher::new();
        h.write_str(self.os.short_name());
        for m in &self.muts {
            h.write_str(&m.name);
            h.write_u64(m.plan.cases.len() as u64);
            for combo in &m.plan.cases {
                h.write_u64(sampling::encode(combo, &m.plan.dims));
            }
        }
        h.finish()
    }

    /// The pinned plans keyed by MuT name — the shape
    /// [`Coverage::from_report_with_plans`] consumes.
    #[must_use]
    pub fn plans_by_name(&self) -> BTreeMap<String, Arc<CaseSet>> {
        self.muts
            .iter()
            .map(|m| (m.name.clone(), Arc::clone(&m.plan)))
            .collect()
    }
}

/// Per-MuT explorer state.
struct MutState<'a> {
    mut_: &'a Mut,
    pools: Vec<Vec<TestValue>>,
    dims: Vec<usize>,
    /// The fixed plan (budget source; pinned verbatim for `fixed` MuTs).
    fixed_plan: Arc<CaseSet>,
    /// `true` when the fixed plan is exhaustive (or the MuT takes no
    /// parameters): there is nothing to steer, the pin *is* the plan.
    fixed: bool,
    pinned: Vec<Combo>,
    deferred: Vec<Combo>,
    taken: HashSet<u64>,
    /// Total combinations (pre-computed; steerable MuTs only need it).
    total: u64,
    /// Crash draws executed but re-drawn rather than pinned. Bounded by
    /// the budget (and by combination-space headroom), so exploration
    /// terminates even on crash-dense MuTs.
    discards: usize,
    /// Progress cursor for `fixed` MuTs (index into `fixed_plan.cases`).
    cursor: usize,
    /// `true` once a `fixed` MuT crashed at residue zero — remaining
    /// cases are skipped (replay will stop at the same point anyway).
    fixed_crashed: bool,
    classes_seen: HashSet<&'static str>,
    new_class_this_round: bool,
    new_class_last_round: bool,
}

impl MutState<'_> {
    fn budget(&self) -> usize {
        self.fixed_plan.cases.len()
    }

    fn spent(&self) -> usize {
        if self.fixed {
            self.cursor
        } else {
            self.pinned.len() + self.deferred.len()
        }
    }

    fn remaining(&self) -> usize {
        if self.fixed && self.fixed_crashed {
            0
        } else {
            self.budget() - self.spent()
        }
    }
}

/// Runs the explore phase and pins the result. Deterministic: same
/// `(os, cfg.cap, cfg fuel budget, acfg)` ⇒ identical [`PinnedPlan`]
/// (same digest, same order), on every host. Exploration executes
/// `Σ planned` cases at residue zero — the same per-MuT budget the
/// pinned plan will spend again at replay.
///
/// Prefer [`pinned_plan_shared`], which memoizes per process.
#[must_use]
pub fn explore(os: OsVariant, cfg: &CampaignConfig, acfg: &AdaptiveConfig) -> PinnedPlan {
    let registry = catalog::registry_for(os);
    let muts = catalog::catalog_for(os);
    let rounds_n = acfg.effective_rounds();
    let rare_bonus = acfg.effective_rare_bonus();
    let fuel_budget = cfg.effective_fuel_budget();

    let mut states: Vec<MutState<'_>> = muts
        .iter()
        .map(|m| {
            let prep = prepare(&registry, m, cfg);
            let fixed = prep.plan.exhaustive || prep.pools.is_empty();
            let dims: Vec<usize> = prep.pools.iter().map(Vec::len).collect();
            let total = sampling::combination_count(&dims);
            MutState {
                mut_: m,
                pools: prep.pools,
                dims,
                fixed_plan: prep.plan,
                fixed,
                pinned: Vec::new(),
                deferred: Vec::new(),
                taken: HashSet::new(),
                total,
                discards: 0,
                cursor: 0,
                fixed_crashed: false,
                classes_seen: HashSet::new(),
                new_class_this_round: false,
                new_class_last_round: false,
            }
        })
        .collect();

    // One RNG stream for the whole explore: the draw sequence depends
    // only on (tag, variant, seed) and the deterministic outcomes that
    // shape the weights.
    let mut rng = StdRng::seed_from_u64(sampling::seed_from_name(&format!(
        "{MODE_TAG}/{}/{}",
        os.short_name(),
        acfg.seed
    )));
    // Pools are shared across MuTs by type name, so touch counts and the
    // rare set key on (type, value index) and feedback crosses MuTs.
    let mut touches: HashMap<(&'static str, usize), u64> = HashMap::new();
    let mut rare: HashSet<(&'static str, usize)> = HashSet::new();
    let mut cov = Coverage::default();
    let mut session = Session::new();
    let mut runner = CaseRunner::new();
    let mut rounds = Vec::with_capacity(rounds_n);
    let mut explore_cases = 0u64;

    for round in 0..rounds_n {
        let snapshot = cov.clone();
        let remaining_rounds = rounds_n - round;
        let mut explored_this_round = 0u64;
        for st in &mut states {
            let remaining = st.remaining();
            if remaining == 0 {
                continue;
            }
            // Quota: an even share of what's left, doubled while the
            // MuT's class distribution is still moving. The final round
            // has quota == remaining, so the budget always completes.
            let mut quota = remaining.div_ceil(remaining_rounds);
            if st.new_class_last_round {
                quota = (quota * 2).min(remaining);
            }
            let mut progress = 0;
            while progress < quota {
                let combo = if st.fixed {
                    let c = st.fixed_plan.cases[st.cursor].clone();
                    st.cursor += 1;
                    c
                } else {
                    draw_combo(&mut rng, st, &touches, &rare, rare_bonus)
                };
                session.residue = 0;
                let result =
                    runner.execute(os, st.mut_, &st.pools, &combo, &mut session, fuel_budget);
                explore_cases += 1;
                explored_this_round += 1;
                let label = class_label(result.class, result.raw);
                for ((ty, pool), &idx) in st.mut_.params.iter().zip(&st.pools).zip(&combo) {
                    cov.touch_value(ty, pool[idx].name, pool.len() as u64);
                    *touches.entry((*ty, idx)).or_default() += 1;
                    if matches!(label, "Silent" | "Restart" | "Catastrophic") {
                        rare.insert((*ty, idx));
                    }
                }
                cov.observe_class(label);
                if st.classes_seen.insert(label) {
                    st.new_class_this_round = true;
                }
                if st.fixed {
                    progress += 1;
                    if result.class == FailureClass::Catastrophic {
                        // Replay stops here too; skip the unreachable rest.
                        st.fixed_crashed = true;
                        break;
                    }
                } else {
                    st.taken.insert(sampling::encode(&combo, &st.dims));
                    if result.class == FailureClass::Catastrophic {
                        // Keep the first crash (pinned last, so replay
                        // still reports the MuT Catastrophic); re-draw
                        // later ones — anything pinned after the first
                        // crash would never execute at replay. Guards:
                        // the discard budget bounds exploration, and the
                        // headroom check keeps enough free combinations
                        // to fill the remaining pins.
                        let free = st.total - st.taken.len() as u64;
                        let remaining_pins = (st.budget() - st.spent()) as u64;
                        if !st.deferred.is_empty()
                            && st.discards < st.budget()
                            && free >= remaining_pins
                        {
                            st.discards += 1;
                            continue;
                        }
                        st.deferred.push(combo);
                    } else {
                        st.pinned.push(combo);
                    }
                    progress += 1;
                }
            }
        }
        for st in &mut states {
            st.new_class_last_round = st.new_class_this_round;
            st.new_class_this_round = false;
        }
        let gain = cov.gain_since(&snapshot);
        telemetry::on_adaptive_round(gain.new_values);
        rounds.push(RoundStats {
            round,
            explored_cases: explored_this_round,
            new_values: gain.new_values,
            new_classes: gain.new_classes,
        });
    }

    let muts_pinned: Vec<PinnedMut> = states
        .into_iter()
        .map(|st| {
            let plan = if st.fixed {
                Arc::clone(&st.fixed_plan)
            } else {
                let mut cases = st.pinned;
                cases.extend(st.deferred);
                debug_assert_eq!(cases.len(), st.fixed_plan.cases.len());
                Arc::new(CaseSet {
                    dims: st.dims,
                    cases,
                    exhaustive: false,
                })
            };
            PinnedMut {
                name: st.mut_.name.to_owned(),
                plan,
            }
        })
        .collect();
    let plan = PinnedPlan {
        os,
        muts: muts_pinned,
        rounds,
        explore_cases,
        explore_coverage: cov,
    };
    telemetry::on_adaptive_pinned(plan.pinned_cases());
    plan
}

/// Draws one not-yet-taken combination for a steerable MuT: per
/// parameter, a weighted draw where an untouched value weighs `64`, a
/// value touched `t` times weighs `max(1, 64 >> min(t, 6))`, and rare
/// participants add `rare_bonus` on top. Collisions with already-pinned
/// cases retry a few times, then fall back to a linear probe. The probe
/// always lands: combinations strictly exceed the budget for steerable
/// MuTs (else the plan would be exhaustive), and the explorer's
/// crash-discard guard never takes a combination unless enough free
/// ones remain to fill every outstanding pin.
fn draw_combo(
    rng: &mut StdRng,
    st: &MutState<'_>,
    touches: &HashMap<(&'static str, usize), u64>,
    rare: &HashSet<(&'static str, usize)>,
    rare_bonus: u64,
) -> Combo {
    let mut weights = Vec::new();
    for attempt in 0..=DRAW_RETRIES {
        let combo: Combo = st
            .mut_
            .params
            .iter()
            .zip(&st.dims)
            .map(|(ty, &d)| {
                weights.clear();
                weights.extend((0..d).map(|idx| {
                    let t = touches.get(&(*ty, idx)).copied().unwrap_or(0);
                    let mut w = 1u64.max(64 >> t.min(6));
                    if rare.contains(&(*ty, idx)) {
                        w += rare_bonus;
                    }
                    w
                }));
                sampling::weighted_index(rng, &weights)
            })
            .collect();
        let linear = sampling::encode(&combo, &st.dims);
        if !st.taken.contains(&linear) {
            return combo;
        }
        if attempt == DRAW_RETRIES {
            // Weighted retries keep colliding (the hot region is dense):
            // walk linearly from the collision until a free slot.
            let mut probe = linear;
            loop {
                probe = (probe + 1) % st.total;
                if !st.taken.contains(&probe) {
                    return sampling::decode(probe, &st.dims);
                }
            }
        }
    }
    unreachable!("draw loop returns from its last attempt");
}

type PinKey = (String, usize, u64, usize, u64, u64);

fn pin_cache() -> &'static Mutex<BTreeMap<PinKey, Arc<PinnedPlan>>> {
    static CACHE: OnceLock<Mutex<BTreeMap<PinKey, Arc<PinnedPlan>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// [`explore`] through a process-wide memo keyed by everything the
/// pinned plan depends on: `(variant, cap, effective fuel budget,
/// rounds, seed, rare bonus)`. The explore phase runs **once** per key
/// per process; every engine (and every fleet worker, in its own
/// process) re-derives the identical plan from the same key.
#[must_use]
pub fn pinned_plan_shared(
    os: OsVariant,
    cfg: &CampaignConfig,
    acfg: &AdaptiveConfig,
) -> Arc<PinnedPlan> {
    let key: PinKey = (
        os.short_name().to_owned(),
        cfg.cap,
        cfg.effective_fuel_budget(),
        acfg.effective_rounds(),
        acfg.seed,
        acfg.effective_rare_bonus(),
    );
    if let Some(plan) = pin_cache().lock().expect("pin cache poisoned").get(&key) {
        return Arc::clone(plan);
    }
    // Explore outside the lock: it executes real cases and can take a
    // while; a concurrent explorer computes the identical plan, so the
    // race is benign (last insert wins, both Arcs are equal).
    let plan = Arc::new(explore(os, cfg, acfg));
    pin_cache()
        .lock()
        .expect("pin cache poisoned")
        .insert(key, Arc::clone(&plan));
    plan
}

/// The adaptive-mode campaign fingerprint: the classic plan fingerprint
/// with the `adaptive/1` mode tag and the adaptive knobs folded in
/// front, mirroring `crashcon/1`. The pinned plan itself is **not**
/// hashed — it is a pure function of everything already folded (see the
/// module docs), so the tag form is both cheap (no explore needed to
/// address a campaign) and exact.
#[must_use]
pub fn fingerprint_adaptive(
    os: OsVariant,
    cfg: &CampaignConfig,
    acfg: &AdaptiveConfig,
) -> CampaignFingerprint {
    let registry = catalog::registry_for(os);
    let muts = catalog::catalog_for(os);
    let preps: Vec<_> = muts.iter().map(|m| prepare(&registry, m, cfg)).collect();
    let tag = format!(
        "{MODE_TAG};r{};s{};b{}",
        acfg.effective_rounds(),
        acfg.seed,
        acfg.effective_rare_bonus()
    );
    plan_fingerprint_tagged(Some(&tag), os, cfg, &preps)
}

/// Builds engine preps whose plans come from the pinned plan instead of
/// the fixed samples. `pin.muts` is in catalog order by construction.
pub(crate) fn pinned_preps<'a>(
    registry: &TypeRegistry,
    muts: &'a [Mut],
    pin: &PinnedPlan,
) -> Vec<PreparedMut<'a>> {
    muts.iter()
        .zip(&pin.muts)
        .map(|(m, pm)| {
            debug_assert_eq!(m.name, pm.name);
            PreparedMut {
                mut_: m,
                pools: campaign::resolve_pools(registry, m),
                plan: Arc::clone(&pm.plan),
            }
        })
        .collect()
}

/// Runs an adaptive campaign through the in-process engine (serial or
/// parallel per [`CampaignConfig::parallelism`], like
/// [`campaign::run_campaign`]): derives (or reuses) the pinned plan,
/// then replays it — tallies are bit-identical across both paths and
/// the journaled/fleet runners below.
///
/// # Example
///
/// ```
/// use ballista::adaptive::{run_adaptive, AdaptiveConfig};
/// use ballista::campaign::CampaignConfig;
/// use sim_kernel::variant::OsVariant;
///
/// let cfg = CampaignConfig { cap: 40, parallelism: 1, ..CampaignConfig::default() };
/// let acfg = AdaptiveConfig { rounds: 2, ..AdaptiveConfig::default() };
/// let report = run_adaptive(OsVariant::Linux, &cfg, &acfg);
/// assert!(report.total_cases > 0);
/// ```
#[must_use]
pub fn run_adaptive(os: OsVariant, cfg: &CampaignConfig, acfg: &AdaptiveConfig) -> CampaignReport {
    let pin = pinned_plan_shared(os, cfg, acfg);
    let registry = catalog::registry_for(os);
    let muts = catalog::catalog_for(os);
    let preps = pinned_preps(&registry, &muts, &pin);
    campaign::run_campaign_prepared(os, cfg, &preps)
}

/// Journaled adaptive campaign: identical write-ahead/resume semantics
/// to [`campaign::run_campaign_journaled`], with the journal header
/// stamped by the **adaptive** fingerprint — an adaptive journal can
/// never be resumed by a classic campaign or vice versa.
///
/// # Errors
///
/// Propagates journal I/O failures, like the classic journaled engine.
pub fn run_adaptive_journaled(
    os: OsVariant,
    cfg: &CampaignConfig,
    acfg: &AdaptiveConfig,
    journal_path: &Path,
    resume: bool,
) -> std::io::Result<CampaignReport> {
    let pin = pinned_plan_shared(os, cfg, acfg);
    let registry = catalog::registry_for(os);
    let muts = catalog::catalog_for(os);
    let preps = pinned_preps(&registry, &muts, &pin);
    let hash = fingerprint_adaptive(os, cfg, acfg).as_u64();
    campaign::run_campaign_journaled_prepared(os, cfg, &preps, hash, journal_path, resume)
}

/// Adaptive campaign on the supervised fleet: the same shard dispatch,
/// supervision, and degradation machinery as
/// [`crate::fleet::run_campaign_fleet`], with every shard executing the
/// pinned plan (workers re-derive it deterministically from the knobs
/// in their [`crate::fleet::ShardSpec`]). Tallies are bit-identical to
/// [`run_adaptive`] on every shard/worker split.
#[must_use]
pub fn run_adaptive_fleet(
    os: OsVariant,
    cfg: &CampaignConfig,
    acfg: &AdaptiveConfig,
    fleet: &crate::fleet::FleetConfig,
) -> CampaignReport {
    run_adaptive_fleet_observed(os, cfg, acfg, fleet, None)
}

/// [`run_adaptive_fleet`] with live progress, for the serving layer.
#[must_use]
pub fn run_adaptive_fleet_observed(
    os: OsVariant,
    cfg: &CampaignConfig,
    acfg: &AdaptiveConfig,
    fleet: &crate::fleet::FleetConfig,
    progress: Option<&crate::fleet::FleetProgress>,
) -> CampaignReport {
    crate::fleet::run_fleet_engine(os, cfg, fleet, progress, Some(acfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(cap: usize) -> CampaignConfig {
        CampaignConfig {
            cap,
            record_raw: false,
            isolation_probe: false,
            perfect_cleanup: false,
            parallelism: 1,
            fuel_budget: 0,
        }
    }

    #[test]
    fn explore_is_deterministic_and_budget_exact() {
        let c = cfg(60);
        let a = explore(OsVariant::Win95, &c, &AdaptiveConfig::default());
        let b = explore(OsVariant::Win95, &c, &AdaptiveConfig::default());
        assert_eq!(a.digest(), b.digest(), "same knobs ⇒ same pin");
        // Equal budget: every MuT pins exactly its fixed planned count.
        let registry = catalog::registry_for(OsVariant::Win95);
        let muts = catalog::catalog_for(OsVariant::Win95);
        for (m, pm) in muts.iter().zip(&a.muts) {
            assert_eq!(m.name, pm.name, "catalog order preserved");
            let fixed = prepare(&registry, m, &c);
            assert_eq!(
                pm.plan.cases.len(),
                fixed.plan.cases.len(),
                "{}: adaptive budget must equal the fixed plan's",
                m.name
            );
        }
        // The explore ledger is consistent: crash re-draws can push the
        // executed count past the pinned budget (bounded by one extra
        // budget per MuT), fixed-MuT crash skips can pull it below.
        assert!(a.explore_cases > 0 && a.explore_cases <= 2 * a.pinned_cases());
        assert_eq!(
            a.explore_cases,
            a.rounds.iter().map(|r| r.explored_cases).sum::<u64>()
        );
        assert_eq!(a.rounds.len(), AdaptiveConfig::default().effective_rounds());
        // A different seed pins a different plan.
        let other = explore(
            OsVariant::Win95,
            &c,
            &AdaptiveConfig {
                seed: 7,
                ..AdaptiveConfig::default()
            },
        );
        assert_ne!(a.digest(), other.digest());
    }

    #[test]
    fn pinned_cases_are_distinct_per_mut() {
        let pin = explore(OsVariant::Win98, &cfg(50), &AdaptiveConfig::default());
        for pm in &pin.muts {
            let distinct: HashSet<u64> = pm
                .plan
                .cases
                .iter()
                .map(|c| sampling::encode(c, &pm.plan.dims))
                .collect();
            assert_eq!(distinct.len(), pm.plan.cases.len(), "{}", pm.name);
        }
    }

    #[test]
    fn adaptive_fingerprint_is_mode_and_knob_distinct() {
        let c = cfg(100);
        let classic = campaign::fingerprint(OsVariant::Win95, &c);
        let adaptive = fingerprint_adaptive(OsVariant::Win95, &c, &AdaptiveConfig::default());
        assert_ne!(classic, adaptive, "mode tag separates the address spaces");
        let reseeded = fingerprint_adaptive(
            OsVariant::Win95,
            &c,
            &AdaptiveConfig {
                seed: 1,
                ..AdaptiveConfig::default()
            },
        );
        assert_ne!(adaptive, reseeded);
        // Effective-default equivalence: explicit defaults hash the same.
        let explicit = fingerprint_adaptive(
            OsVariant::Win95,
            &c,
            &AdaptiveConfig {
                rounds: DEFAULT_ROUNDS,
                seed: 0,
                rare_bonus: DEFAULT_RARE_BONUS,
            },
        );
        assert_eq!(adaptive, explicit);
    }

    #[test]
    fn deferred_crashes_extend_the_executed_prefix() {
        // GetThreadContext on win95 crashes under the fixed plan well
        // before its cap; the adaptive pin defers residue-zero crash
        // cases to the tail, so its executed prefix must be at least as
        // long.
        let c = cfg(120);
        let fixed = campaign::run_campaign(OsVariant::Win95, &c);
        let adapt = run_adaptive(OsVariant::Win95, &c, &AdaptiveConfig::default());
        let f = fixed
            .muts
            .iter()
            .find(|t| t.name == "GetThreadContext")
            .expect("in catalog");
        let a = adapt
            .muts
            .iter()
            .find(|t| t.name == "GetThreadContext")
            .expect("in catalog");
        assert!(f.catastrophic && a.catastrophic);
        assert!(
            a.cases >= f.cases,
            "deferral must not shorten the executed prefix: {} < {}",
            a.cases,
            f.cases
        );
    }
}
