//! The conformance oracle: machine-checkable invariants over campaign
//! results.
//!
//! The paper's headline results are *comparative* — the same sampling
//! plan replayed across seven OS variants — so the tallies only mean
//! something if the harness itself is trustworthy. This module turns the
//! one-off assertions scattered through the test suite into a standing
//! oracle with three invariant families:
//!
//! * **Cross-engine** — the serial, parallel and journaled-resume engines
//!   must produce bit-identical per-MuT tallies ([`check_cross_engine`]).
//! * **Cross-variant** — paper-mandated relations over a seven-variant
//!   run: the NT family and Linux never record Catastrophic; each 9x
//!   variant records at least as many ground-truth Silent failures as
//!   each NT variant over their shared MuTs; every variant samples each
//!   shared MuT in the identical order ([`check_cross_variant`],
//!   [`check_sampling_identity`]); and the paper's one-line crash program
//!   `GetThreadContext(GetCurrentThread(), NULL)` splits the families
//!   exactly as Listing 1 reports ([`check_gtc_null_context`]).
//! * **Per-tally** — internal consistency of every tally both engines
//!   emit: class counts sum to executed cases, executed never exceeds
//!   planned, recorded outcomes line up one byte per case
//!   ([`check_tally`], enforced live via [`selfcheck`] hooks in
//!   `campaign.rs`).
//!
//! Metamorphic variations (worker-count permutation, template-cache
//! re-seeding, journal splitting) reduce to [`check_cross_engine`] over
//! reruns; the `experiments` crate's `conformance` binary drives them
//! across all seven variants and fails on any violation.

use crate::campaign::{CampaignReport, MutTally};
use crate::catalog;
use crate::crash::RawOutcome;
use crate::exec::{execute_case, Session};
use crate::sampling;
use serde::{Deserialize, Serialize};
use sim_kernel::variant::OsVariant;
use std::sync::Arc;

/// One named invariant's outcome: how many facts were checked and every
/// violation found (empty ⇒ the invariant holds).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Check {
    /// Stable kebab-case invariant name (what CI greps for).
    pub invariant: String,
    /// Individual facts examined (tallies compared, cases executed, …).
    pub checked: u64,
    /// Human-readable violation details.
    pub violations: Vec<String>,
}

impl Check {
    fn new(invariant: &str) -> Self {
        Check {
            invariant: invariant.to_owned(),
            checked: 0,
            violations: Vec::new(),
        }
    }
}

/// An accumulated conformance verdict across many invariants.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conformance {
    /// Every invariant checked, in execution order.
    pub checks: Vec<Check>,
}

impl Conformance {
    /// Adds one invariant outcome.
    pub fn push(&mut self, check: Check) {
        self.checks.push(check);
    }

    /// Folds another verdict in (order preserved).
    pub fn extend(&mut self, other: Conformance) {
        self.checks.extend(other.checks);
    }

    /// Whether every invariant held.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.checks.iter().all(|c| c.violations.is_empty())
    }

    /// Total violations across invariants.
    #[must_use]
    pub fn violation_count(&self) -> usize {
        self.checks.iter().map(|c| c.violations.len()).sum()
    }
}

/// Internal-consistency check for one tally (both engines emit tallies
/// through the same fold, so any inconsistency is a harness bug, never a
/// test outcome). Returns one message per violated relation.
#[must_use]
pub fn check_tally(tally: &MutTally) -> Vec<String> {
    let mut v = Vec::new();
    let mut fail = |msg: String| v.push(format!("{}: {msg}", tally.name));
    let classified = tally.aborts
        + tally.restarts
        + tally.silents
        + tally.error_reports
        + tally.passes
        + usize::from(tally.catastrophic);
    if classified != tally.cases {
        fail(format!(
            "class counts sum to {classified} but {} cases executed",
            tally.cases
        ));
    }
    if tally.cases > tally.planned {
        fail(format!(
            "{} cases executed out of {} planned",
            tally.cases, tally.planned
        ));
    }
    if tally.suspected_hindering > tally.error_reports {
        fail(format!(
            "{} suspected-Hindering exceeds {} error reports",
            tally.suspected_hindering, tally.error_reports
        ));
    }
    if !tally.raw_outcomes.is_empty() && tally.raw_outcomes.len() != tally.cases {
        fail(format!(
            "{} recorded outcome bytes for {} cases",
            tally.raw_outcomes.len(),
            tally.cases
        ));
    }
    if tally.crash_reproducible_in_isolation.is_some() && !tally.catastrophic {
        fail("isolation-probe verdict on a non-Catastrophic tally".to_owned());
    }
    if tally.catastrophic && tally.cases == 0 {
        fail("Catastrophic with zero executed cases".to_owned());
    }
    v
}

/// Per-tally consistency over a whole report, plus the report-level sums.
#[must_use]
pub fn check_report(report: &CampaignReport) -> Check {
    let mut check = Check::new("tally-internal-consistency");
    let os = report.os.short_name();
    for tally in &report.muts {
        check.checked += 1;
        check
            .violations
            .extend(check_tally(tally).into_iter().map(|m| format!("[{os}] {m}")));
    }
    let sum: usize = report.muts.iter().map(|t| t.cases).sum();
    check.checked += 1;
    if sum != report.total_cases {
        check.violations.push(format!(
            "[{os}] total_cases {} but tallies sum to {sum}",
            report.total_cases
        ));
    }
    if report.degraded && report.warnings.is_empty() {
        check
            .violations
            .push(format!("[{os}] degraded report carries no warnings"));
    }
    check
}

/// Cross-engine bit-identity: two engines' reports for the same (variant,
/// config) must serialize to identical per-MuT tallies. `reference` and
/// `candidate` label the engines in violation messages.
#[must_use]
pub fn check_cross_engine(
    reference: &str,
    a: &CampaignReport,
    candidate: &str,
    b: &CampaignReport,
) -> Check {
    let mut check = Check::new("cross-engine-bit-identity");
    let os = a.os.short_name();
    if a.os != b.os {
        check.violations.push(format!(
            "comparing different variants: {reference}={os}, {candidate}={}",
            b.os.short_name()
        ));
        return check;
    }
    if a.muts.len() != b.muts.len() {
        check.violations.push(format!(
            "[{os}] {reference} has {} tallies, {candidate} has {}",
            a.muts.len(),
            b.muts.len()
        ));
    }
    for (ta, tb) in a.muts.iter().zip(&b.muts) {
        check.checked += 1;
        let ja = serde_json::to_string(ta).expect("tally serializes");
        let jb = serde_json::to_string(tb).expect("tally serializes");
        if ja != jb {
            check.violations.push(format!(
                "[{os}] {} diverged between {reference} and {candidate}: {ja} vs {jb}",
                ta.name
            ));
        }
    }
    check.checked += 1;
    if a.total_cases != b.total_cases {
        check.violations.push(format!(
            "[{os}] total cases {} ({reference}) vs {} ({candidate})",
            a.total_cases, b.total_cases
        ));
    }
    check
}

/// The paper-mandated cross-variant relations over one multi-variant run:
///
/// * `nt-linux-never-catastrophic` — NT 4.0, 2000 and Linux record no
///   Catastrophic failure (Table 1's zero column).
/// * `9x-silent-dominates-nt` — each 9x variant records at least as many
///   ground-truth Silent failures as each NT variant, summed over their
///   shared MuTs (the family gap behind the paper's Figure 2 estimate).
/// * `identical-sampling-order` — every shared MuT plans the same case
///   count on every variant (full plan identity is checked by
///   [`check_sampling_identity`]).
#[must_use]
pub fn check_cross_variant(reports: &[CampaignReport]) -> Conformance {
    let mut out = Conformance::default();

    let mut never_cat = Check::new("nt-linux-never-catastrophic");
    for r in reports {
        if r.os.is_nt() || r.os == OsVariant::Linux {
            for t in &r.muts {
                never_cat.checked += 1;
                if t.catastrophic {
                    never_cat.violations.push(format!(
                        "[{}] {} recorded Catastrophic",
                        r.os.short_name(),
                        t.name
                    ));
                }
            }
        }
    }
    out.push(never_cat);

    let mut silent = Check::new("9x-silent-dominates-nt");
    for nine_x in reports.iter().filter(|r| r.os.is_9x()) {
        for nt in reports.iter().filter(|r| r.os.is_nt()) {
            let shared: Vec<&str> = nine_x
                .muts
                .iter()
                .filter(|t| nt.muts.iter().any(|u| u.name == t.name))
                .map(|t| t.name.as_str())
                .collect();
            let sum = |r: &CampaignReport| -> usize {
                r.muts
                    .iter()
                    .filter(|t| shared.contains(&t.name.as_str()))
                    .map(|t| t.silents)
                    .sum()
            };
            silent.checked += 1;
            let (s9, snt) = (sum(nine_x), sum(nt));
            if s9 < snt {
                silent.violations.push(format!(
                    "{} records {s9} Silent failures over shared MuTs but {} records {snt}",
                    nine_x.os.short_name(),
                    nt.os.short_name()
                ));
            }
        }
    }
    out.push(silent);

    let mut order = Check::new("identical-sampling-order");
    if let Some((first, rest)) = reports.split_first() {
        for t in &first.muts {
            for other in rest {
                if let Some(u) = other.muts.iter().find(|u| u.name == t.name) {
                    order.checked += 1;
                    if t.planned != u.planned {
                        order.violations.push(format!(
                            "{} plans {} cases on {} but {} on {}",
                            t.name,
                            t.planned,
                            first.os.short_name(),
                            u.planned,
                            other.os.short_name()
                        ));
                    }
                }
            }
        }
    }
    out.push(order);

    out
}

/// Verifies that the sampling plans themselves — not just their sizes —
/// are identical across variants for every shared MuT with matching pool
/// dimensions ("identical pseudo-random sampling order on every OS
/// variant"). Pure catalog check: no campaign needs to have run.
#[must_use]
pub fn check_sampling_identity(cap: usize) -> Check {
    type MutPlans = Vec<(&'static str, Arc<sampling::CaseSet>)>;
    let mut check = Check::new("identical-sampling-order");
    let plans: Vec<(OsVariant, MutPlans)> = OsVariant::ALL
        .into_iter()
        .map(|os| {
            let registry = catalog::registry_for(os);
            let per_mut = catalog::catalog_for(os)
                .into_iter()
                .map(|m| {
                    let pools = crate::campaign::resolve_pools(&registry, &m);
                    let plan = if pools.is_empty() {
                        Arc::new(sampling::single_case())
                    } else {
                        let dims: Vec<usize> = pools.iter().map(Vec::len).collect();
                        sampling::enumerate_shared(&dims, cap, m.name)
                    };
                    (m.name, plan)
                })
                .collect();
            (os, per_mut)
        })
        .collect();
    let (first, rest) = plans.split_first().expect("seven variants");
    for (name, plan) in &first.1 {
        for (os, other) in rest {
            if let Some((_, other_plan)) = other.iter().find(|(n, _)| n == name) {
                if plan.dims != other_plan.dims {
                    continue; // different pool worlds; sizes may differ
                }
                check.checked += 1;
                if plan.cases != other_plan.cases {
                    check.violations.push(format!(
                        "{name}: sampling order diverges between {} and {}",
                        first.0.short_name(),
                        os.short_name()
                    ));
                }
            }
        }
    }
    check
}

/// The paper's one-line crash program, pinned as a named invariant:
/// `GetThreadContext(GetCurrentThread(), NULL)` must classify
/// Catastrophic on the 9x family and CE, and non-Catastrophic on the NT
/// family — executed live against each variant's catalog entry with the
/// exact pool values (`pseudo current thread`, `NULL`).
#[must_use]
pub fn check_gtc_null_context() -> Check {
    let mut check = Check::new("gtc-null-context-family-split");
    for os in OsVariant::ALL {
        let muts = catalog::catalog_for(os);
        let Some(gtc) = muts.iter().find(|m| m.name == "GetThreadContext") else {
            continue; // absent from this catalog (Linux)
        };
        let registry = catalog::registry_for(os);
        let pools = crate::campaign::resolve_pools(&registry, gtc);
        let find = |pool: &[crate::value::TestValue], name: &str| {
            pool.iter().position(|v| v.name == name)
        };
        let (Some(handle_idx), Some(null_idx)) = (
            find(&pools[0], "pseudo current thread"),
            find(&pools[1], "NULL"),
        ) else {
            check.violations.push(format!(
                "[{}] pinned pool values missing for GetThreadContext",
                os.short_name()
            ));
            continue;
        };
        check.checked += 1;
        let result = execute_case(os, gtc, &pools, &[handle_idx, null_idx], &mut Session::new());
        let crashed = result.raw == RawOutcome::SystemCrash;
        let expect_crash = os.is_9x() || os.is_ce();
        if crashed != expect_crash {
            check.violations.push(format!(
                "[{}] GetThreadContext(GetCurrentThread(), NULL) => {:?}; the paper reports {}",
                os.short_name(),
                result.raw,
                if expect_crash {
                    "a system crash on this family"
                } else {
                    "no crash on this family"
                }
            ));
        }
    }
    check
}

/// Live per-tally self-checking, installed by the conformance runner and
/// the oracle tests: when enabled, both campaign engines route every
/// finished tally through [`check_tally`] and park violations here. Off
/// by default (zero cost beyond one relaxed atomic load per tally).
pub mod selfcheck {
    use super::check_tally;
    use crate::campaign::MutTally;
    use sim_kernel::variant::OsVariant;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static VIOLATIONS: Mutex<Vec<String>> = Mutex::new(Vec::new());

    /// Turns live tally checking on or off (process-wide).
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::SeqCst);
    }

    /// Drains every violation observed since the last call.
    #[must_use]
    pub fn take_violations() -> Vec<String> {
        std::mem::take(&mut *VIOLATIONS.lock().expect("selfcheck sink poisoned"))
    }

    /// Hook called by both engines for every finished tally.
    pub(crate) fn observe_tally(os: OsVariant, tally: &MutTally) {
        if !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        let found = check_tally(tally);
        if !found.is_empty() {
            crate::telemetry::on_selfcheck_violations(found.len() as u64);
            let mut sink = VIOLATIONS.lock().expect("selfcheck sink poisoned");
            sink.extend(
                found
                    .into_iter()
                    .map(|m| format!("[{}] {m}", os.short_name())),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig};

    fn cfg() -> CampaignConfig {
        CampaignConfig {
            cap: 40,
            record_raw: true,
            isolation_probe: true,
            perfect_cleanup: false,
            parallelism: 1,
            fuel_budget: 0,
        }
    }

    #[test]
    fn real_campaign_reports_are_internally_consistent() {
        for os in [OsVariant::Win98, OsVariant::Linux] {
            let report = run_campaign(os, &cfg());
            let check = check_report(&report);
            assert!(check.violations.is_empty(), "{:?}", check.violations);
            assert!(check.checked > report.muts.len() as u64);
        }
    }

    #[test]
    fn check_tally_catches_planted_inconsistencies() {
        let report = run_campaign(OsVariant::Linux, &cfg());
        let mut bad = report.muts[0].clone();
        bad.passes += 1; // class counts no longer sum to cases
        assert!(!check_tally(&bad).is_empty());
        let mut bad = report.muts[0].clone();
        bad.planned = 0; // executed beyond plan
        assert!(!check_tally(&bad).is_empty());
        let mut bad = report.muts[0].clone();
        bad.crash_reproducible_in_isolation = Some(true); // probe without crash
        assert!(!check_tally(&bad).is_empty());
    }

    #[test]
    fn cross_engine_check_flags_a_planted_divergence() {
        let a = run_campaign(OsVariant::Win98, &cfg());
        let mut b = a.clone();
        let clean = check_cross_engine("serial", &a, "clone", &b);
        assert!(clean.violations.is_empty(), "{:?}", clean.violations);
        b.muts[3].aborts += 1;
        b.muts[3].passes -= 1;
        let dirty = check_cross_engine("serial", &a, "tampered", &b);
        assert_eq!(dirty.violations.len(), 1);
        assert!(dirty.violations[0].contains(&a.muts[3].name));
    }

    #[test]
    fn sampling_identity_holds_at_small_cap() {
        let check = check_sampling_identity(50);
        assert!(check.violations.is_empty(), "{:?}", check.violations);
        assert!(check.checked > 100, "many shared MuTs compared");
    }

    #[test]
    fn gtc_invariant_holds() {
        let check = check_gtc_null_context();
        assert!(check.violations.is_empty(), "{:?}", check.violations);
        assert_eq!(check.checked, 6, "all six Windows variants carry it");
    }

    #[test]
    fn selfcheck_hook_observes_engine_tallies() {
        selfcheck::set_enabled(true);
        let _ = selfcheck::take_violations();
        let _ = run_campaign(OsVariant::Linux, &cfg());
        let violations = selfcheck::take_violations();
        selfcheck::set_enabled(false);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
