//! The Win32 system-call catalog: 143 calls across the five system-call
//! groupings (133 on Windows 95, which lacks ten calls; 71 on Windows CE's
//! subset). Group membership follows the paper where stated (e.g. the
//! I/O Primitives list in §3.3 and the Table 3 rows) and standard SDK
//! organization elsewhere.

use super::m;
use crate::muts::arg::{fd, handle, int, ptr, uint};
use crate::muts::{FunctionGroup as G, Mut};
use sim_kernel::variant::OsVariant;
use sim_win32::{
    dirapi, envapi, fileapi, handleapi, heapapi, memoryapi, processapi, syncapi, threadapi,
    timeapi, Win32Profile,
};

fn prof(os: OsVariant) -> Win32Profile {
    Win32Profile::for_os(os)
}

/// The 71-call Windows CE subset (every Table 3 CE entry included).
const ON_CE: [&str; 71] = [
    // handles & I/O primitives
    "CloseHandle",
    "DuplicateHandle",
    "ReadFile",
    "WriteFile",
    "SetFilePointer",
    "FlushFileBuffers",
    "GetStdHandle",
    "GetHandleInformation",
    // file/directory
    "CreateFile",
    "CreateDirectory",
    "RemoveDirectory",
    "DeleteFile",
    "MoveFile",
    "FindFirstFile",
    "FindNextFile",
    "FindClose",
    "GetFileAttributes",
    "SetFileAttributes",
    "GetFileSize",
    "GetTempPath",
    "GetFullPathName",
    // memory
    "VirtualAlloc",
    "VirtualFree",
    "VirtualProtect",
    "ReadProcessMemory",
    "CreateFileMapping",
    "MapViewOfFile",
    "UnmapViewOfFile",
    "HeapCreate",
    "HeapDestroy",
    "HeapAlloc",
    "HeapFree",
    "HeapReAlloc",
    "HeapSize",
    "GetProcessHeap",
    "LocalAlloc",
    "LocalFree",
    // process/thread/sync
    "CreateProcess",
    "TerminateProcess",
    "GetCurrentProcess",
    "GetCurrentProcessId",
    "CreateThread",
    "TerminateThread",
    "SuspendThread",
    "ResumeThread",
    "GetThreadContext",
    "SetThreadContext",
    "GetCurrentThread",
    "GetCurrentThreadId",
    "InterlockedIncrement",
    "InterlockedDecrement",
    "InterlockedExchange",
    "Sleep",
    "CreateEvent",
    "SetEvent",
    "ResetEvent",
    "CreateMutex",
    "ReleaseMutex",
    "CreateSemaphore",
    "ReleaseSemaphore",
    "WaitForSingleObject",
    "WaitForMultipleObjects",
    "MsgWaitForMultipleObjects",
    "MsgWaitForMultipleObjectsEx",
    // environment
    "GetVersion",
    "GetTickCount",
    "GetEnvironmentVariable",
    "SetEnvironmentVariable",
    "GetModuleFileName",
    "GetModuleHandle",
    "GetCommandLine",
];

/// Builds the Win32 system-call catalog for `os`.
#[must_use]
#[allow(clippy::too_many_lines)] // one entry per call, by design
pub fn win32_calls(os: OsVariant) -> Vec<Mut> {
    let mut v: Vec<Mut> = Vec::with_capacity(143);

    // ---- I/O Primitives (17) --------------------------------------------
    m!(v, "AttachThreadInput", G::IoPrimitives, ["int", "int", "flags"], |k, os, a| {
        threadapi::AttachThreadInput(k, prof(os), uint(a[0]), uint(a[1]), uint(a[2]))
    });
    m!(v, "CloseHandle", G::IoPrimitives, ["HANDLE"], |k, os, a| {
        handleapi::CloseHandle(k, prof(os), handle(a[0]))
    });
    m!(v, "DuplicateHandle", G::IoPrimitives, ["HANDLE", "HANDLE", "HANDLE", "buffer"], |k, os, a| {
        handleapi::DuplicateHandle(
            k, prof(os), handle(a[0]), handle(a[1]), handle(a[2]), ptr(a[3]), 0, 0, 0,
        )
    });
    m!(v, "FlushFileBuffers", G::IoPrimitives, ["HANDLE"], |k, os, a| {
        fileapi::FlushFileBuffers(k, prof(os), handle(a[0]))
    });
    m!(v, "GetStdHandle", G::IoPrimitives, ["int"], |k, os, a| {
        handleapi::GetStdHandle(k, prof(os), int(a[0]))
    });
    m!(v, "SetStdHandle", G::IoPrimitives, ["int", "HANDLE"], |k, os, a| {
        handleapi::SetStdHandle(k, prof(os), int(a[0]), handle(a[1]))
    });
    m!(v, "GetHandleInformation", G::IoPrimitives, ["HANDLE", "buffer"], |k, os, a| {
        handleapi::GetHandleInformation(k, prof(os), handle(a[0]), ptr(a[1]))
    });
    m!(v, "SetHandleInformation", G::IoPrimitives, ["HANDLE", "flags", "flags"], |k, os, a| {
        handleapi::SetHandleInformation(k, prof(os), handle(a[0]), uint(a[1]), uint(a[2]))
    });
    m!(v, "LockFile", G::IoPrimitives, ["HANDLE", "size", "size"], |k, os, a| {
        fileapi::LockFile(k, prof(os), handle(a[0]), uint(a[1]), 0, uint(a[2]), 0)
    });
    m!(v, "LockFileEx", G::IoPrimitives, ["HANDLE", "flags", "size", "buffer"], |k, os, a| {
        fileapi::LockFileEx(k, prof(os), handle(a[0]), uint(a[1]), 0, uint(a[2]), 0, ptr(a[3]))
    });
    m!(v, "UnlockFile", G::IoPrimitives, ["HANDLE", "size", "size"], |k, os, a| {
        fileapi::UnlockFile(k, prof(os), handle(a[0]), uint(a[1]), 0, uint(a[2]), 0)
    });
    m!(v, "UnlockFileEx", G::IoPrimitives, ["HANDLE", "size", "buffer"], |k, os, a| {
        fileapi::UnlockFileEx(k, prof(os), handle(a[0]), 0, uint(a[1]), 0, ptr(a[2]))
    });
    m!(v, "ReadFile", G::IoPrimitives, ["HANDLE", "buffer", "size", "buffer"], |k, os, a| {
        fileapi::ReadFile(
            k, prof(os), handle(a[0]), ptr(a[1]), uint(a[2]), ptr(a[3]), sim_core::SimPtr::NULL,
        )
    });
    m!(v, "ReadFileEx", G::IoPrimitives, ["HANDLE", "buffer", "size", "buffer", "buffer"], |k, os, a| {
        fileapi::ReadFileEx(k, prof(os), handle(a[0]), ptr(a[1]), uint(a[2]), ptr(a[3]), ptr(a[4]))
    });
    m!(v, "SetFilePointer", G::IoPrimitives, ["HANDLE", "int", "buffer", "flags"], |k, os, a| {
        fileapi::SetFilePointer(k, prof(os), handle(a[0]), int(a[1]), ptr(a[2]), uint(a[3]))
    });
    m!(v, "WriteFile", G::IoPrimitives, ["HANDLE", "buffer", "size", "buffer"], |k, os, a| {
        fileapi::WriteFile(
            k, prof(os), handle(a[0]), ptr(a[1]), uint(a[2]), ptr(a[3]), sim_core::SimPtr::NULL,
        )
    });
    m!(v, "WriteFileEx", G::IoPrimitives, ["HANDLE", "buffer", "size", "buffer", "buffer"], |k, os, a| {
        fileapi::WriteFileEx(k, prof(os), handle(a[0]), ptr(a[1]), uint(a[2]), ptr(a[3]), ptr(a[4]))
    });

    // ---- File/Directory Access (34) ---------------------------------------
    m!(v, "CreateFile", G::FileDirAccess, ["path", "flags", "flags", "buffer", "flags"], |k, os, a| {
        fileapi::CreateFile(
            k,
            prof(os),
            ptr(a[0]),
            // Map the small flags pool onto access bits so both read and
            // write dispositions occur.
            if uint(a[1]) & 1 != 0 { 0xC000_0000 } else { 0x8000_0000 },
            uint(a[2]),
            ptr(a[3]),
            uint(a[4]).clamp(1, 5),
            0,
            sim_kernel::objects::Handle::NULL,
        )
    });
    m!(v, "CreateDirectory", G::FileDirAccess, ["path", "buffer"], |k, os, a| {
        dirapi::CreateDirectory(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "CreateDirectoryEx", G::FileDirAccess, ["path", "path", "buffer"], |k, os, a| {
        dirapi::CreateDirectoryEx(k, prof(os), ptr(a[0]), ptr(a[1]), ptr(a[2]))
    });
    m!(v, "RemoveDirectory", G::FileDirAccess, ["path"], |k, os, a| {
        dirapi::RemoveDirectory(k, prof(os), ptr(a[0]))
    });
    m!(v, "DeleteFile", G::FileDirAccess, ["path"], |k, os, a| {
        dirapi::DeleteFile(k, prof(os), ptr(a[0]))
    });
    m!(v, "CopyFile", G::FileDirAccess, ["path", "path", "flags"], |k, os, a| {
        dirapi::CopyFile(k, prof(os), ptr(a[0]), ptr(a[1]), uint(a[2]))
    });
    m!(v, "MoveFile", G::FileDirAccess, ["path", "path"], |k, os, a| {
        dirapi::MoveFile(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "MoveFileEx", G::FileDirAccess, ["path", "path", "flags"], |k, os, a| {
        dirapi::MoveFileEx(k, prof(os), ptr(a[0]), ptr(a[1]), uint(a[2]))
    });
    m!(v, "FindFirstFile", G::FileDirAccess, ["path", "buffer"], |k, os, a| {
        dirapi::FindFirstFile(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "FindNextFile", G::FileDirAccess, ["HANDLE", "buffer"], |k, os, a| {
        dirapi::FindNextFile(k, prof(os), handle(a[0]), ptr(a[1]))
    });
    m!(v, "FindClose", G::FileDirAccess, ["HANDLE"], |k, os, a| {
        dirapi::FindClose(k, prof(os), handle(a[0]))
    });
    m!(v, "GetFileAttributes", G::FileDirAccess, ["path"], |k, os, a| {
        dirapi::GetFileAttributes(k, prof(os), ptr(a[0]))
    });
    m!(v, "SetFileAttributes", G::FileDirAccess, ["path", "flags"], |k, os, a| {
        dirapi::SetFileAttributes(k, prof(os), ptr(a[0]), uint(a[1]))
    });
    m!(v, "GetFileSize", G::FileDirAccess, ["HANDLE", "buffer"], |k, os, a| {
        fileapi::GetFileSize(k, prof(os), handle(a[0]), ptr(a[1]))
    });
    m!(v, "GetFileType", G::FileDirAccess, ["HANDLE"], |k, os, a| {
        handleapi::GetFileType(k, prof(os), handle(a[0]))
    });
    m!(v, "GetFileInformationByHandle", G::FileDirAccess, ["HANDLE", "buffer"], |k, os, a| {
        fileapi::GetFileInformationByHandle(k, prof(os), handle(a[0]), ptr(a[1]))
    });
    m!(v, "SetEndOfFile", G::FileDirAccess, ["HANDLE"], |k, os, a| {
        fileapi::SetEndOfFile(k, prof(os), handle(a[0]))
    });
    m!(v, "GetCurrentDirectory", G::FileDirAccess, ["size", "buffer"], |k, os, a| {
        dirapi::GetCurrentDirectory(k, prof(os), uint(a[0]), ptr(a[1]))
    });
    m!(v, "SetCurrentDirectory", G::FileDirAccess, ["path"], |k, os, a| {
        dirapi::SetCurrentDirectory(k, prof(os), ptr(a[0]))
    });
    m!(v, "GetFullPathName", G::FileDirAccess, ["path", "size", "buffer", "buffer"], |k, os, a| {
        dirapi::GetFullPathName(k, prof(os), ptr(a[0]), uint(a[1]), ptr(a[2]), ptr(a[3]))
    });
    m!(v, "GetTempPath", G::FileDirAccess, ["size", "buffer"], |k, os, a| {
        dirapi::GetTempPath(k, prof(os), uint(a[0]), ptr(a[1]))
    });
    m!(v, "GetTempFileName", G::FileDirAccess, ["path", "cstring", "flags", "buffer"], |k, os, a| {
        dirapi::GetTempFileName(k, prof(os), ptr(a[0]), ptr(a[1]), uint(a[2]), ptr(a[3]))
    });
    m!(v, "SearchPath", G::FileDirAccess, ["path", "cstring", "size", "buffer"], |k, os, a| {
        dirapi::SearchPath(
            k, prof(os), ptr(a[0]), ptr(a[1]), sim_core::SimPtr::NULL, uint(a[2]), ptr(a[3]),
            sim_core::SimPtr::NULL,
        )
    });
    m!(v, "GetDriveType", G::FileDirAccess, ["path"], |k, os, a| {
        dirapi::GetDriveType(k, prof(os), ptr(a[0]))
    });
    m!(v, "GetDiskFreeSpace", G::FileDirAccess, ["path", "buffer", "buffer", "buffer", "buffer"], |k, os, a| {
        dirapi::GetDiskFreeSpace(k, prof(os), ptr(a[0]), ptr(a[1]), ptr(a[2]), ptr(a[3]), ptr(a[4]))
    });
    m!(v, "GetLogicalDrives", G::FileDirAccess, [], |k, os, a| {
        dirapi::GetLogicalDrives(k, prof(os))
    });
    m!(v, "GetShortPathName", G::FileDirAccess, ["path", "buffer", "size"], |k, os, a| {
        dirapi::GetShortPathName(k, prof(os), ptr(a[0]), ptr(a[1]), uint(a[2]))
    });
    m!(v, "FileTimeToSystemTime", G::FileDirAccess, ["filetime_ptr", "systemtime_ptr"], |k, os, a| {
        timeapi::FileTimeToSystemTime(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "SystemTimeToFileTime", G::FileDirAccess, ["systemtime_ptr", "filetime_ptr"], |k, os, a| {
        timeapi::SystemTimeToFileTime(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "FileTimeToLocalFileTime", G::FileDirAccess, ["filetime_ptr", "filetime_ptr"], |k, os, a| {
        timeapi::FileTimeToLocalFileTime(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "LocalFileTimeToFileTime", G::FileDirAccess, ["filetime_ptr", "filetime_ptr"], |k, os, a| {
        timeapi::LocalFileTimeToFileTime(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "CompareFileTime", G::FileDirAccess, ["filetime_ptr", "filetime_ptr"], |k, os, a| {
        timeapi::CompareFileTime(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "DosDateTimeToFileTime", G::FileDirAccess, ["int", "int", "filetime_ptr"], |k, os, a| {
        timeapi::DosDateTimeToFileTime(k, prof(os), uint(a[0]) as u16, uint(a[1]) as u16, ptr(a[2]))
    });
    m!(v, "FileTimeToDosDateTime", G::FileDirAccess, ["filetime_ptr", "buffer", "buffer"], |k, os, a| {
        timeapi::FileTimeToDosDateTime(k, prof(os), ptr(a[0]), ptr(a[1]), ptr(a[2]))
    });

    // ---- Memory Management (32) -------------------------------------------
    m!(v, "VirtualAlloc", G::MemoryManagement, ["buffer", "size", "flags", "flags"], |k, os, a| {
        memoryapi::VirtualAlloc(k, prof(os), ptr(a[0]), a[1], uint(a[2]), uint(a[3]).max(1))
    });
    m!(v, "VirtualFree", G::MemoryManagement, ["buffer", "size", "flags"], |k, os, a| {
        memoryapi::VirtualFree(k, prof(os), ptr(a[0]), a[1], uint(a[2]))
    });
    m!(v, "VirtualProtect", G::MemoryManagement, ["buffer", "size", "flags", "buffer"], |k, os, a| {
        memoryapi::VirtualProtect(k, prof(os), ptr(a[0]), a[1], uint(a[2]).max(1), ptr(a[3]))
    });
    m!(v, "VirtualQuery", G::MemoryManagement, ["buffer", "buffer", "size"], |k, os, a| {
        memoryapi::VirtualQuery(k, prof(os), ptr(a[0]), ptr(a[1]), a[2])
    });
    m!(v, "IsBadReadPtr", G::MemoryManagement, ["buffer", "size"], |k, os, a| {
        memoryapi::IsBadReadPtr(k, prof(os), ptr(a[0]), a[1])
    });
    m!(v, "IsBadWritePtr", G::MemoryManagement, ["buffer", "size"], |k, os, a| {
        memoryapi::IsBadWritePtr(k, prof(os), ptr(a[0]), a[1])
    });
    m!(v, "IsBadStringPtr", G::MemoryManagement, ["cstring", "size"], |k, os, a| {
        memoryapi::IsBadStringPtr(k, prof(os), ptr(a[0]), a[1])
    });
    m!(v, "ReadProcessMemory", G::MemoryManagement, ["HANDLE", "buffer", "buffer", "size"], |k, os, a| {
        memoryapi::ReadProcessMemory(
            k, prof(os), handle(a[0]), ptr(a[1]), ptr(a[2]), a[3].min(4096),
            sim_core::SimPtr::NULL,
        )
    });
    m!(v, "WriteProcessMemory", G::MemoryManagement, ["HANDLE", "buffer", "buffer", "size"], |k, os, a| {
        memoryapi::WriteProcessMemory(
            k, prof(os), handle(a[0]), ptr(a[1]), ptr(a[2]), a[3].min(4096),
            sim_core::SimPtr::NULL,
        )
    });
    m!(v, "CreateFileMapping", G::MemoryManagement, ["HANDLE", "flags", "size", "cstring"], |k, os, a| {
        memoryapi::CreateFileMapping(
            k, prof(os), handle(a[0]), sim_core::SimPtr::NULL, uint(a[1]).clamp(1, 4),
            0, uint(a[2]), ptr(a[3]),
        )
    });
    m!(v, "MapViewOfFile", G::MemoryManagement, ["HANDLE", "flags", "size", "size"], |k, os, a| {
        memoryapi::MapViewOfFile(k, prof(os), handle(a[0]), uint(a[1]), 0, uint(a[2]), a[3].min(1 << 20))
    });
    m!(v, "UnmapViewOfFile", G::MemoryManagement, ["buffer"], |k, os, a| {
        memoryapi::UnmapViewOfFile(k, prof(os), ptr(a[0]))
    });
    m!(v, "FlushViewOfFile", G::MemoryManagement, ["buffer", "size"], |k, os, a| {
        memoryapi::FlushViewOfFile(k, prof(os), ptr(a[0]), a[1])
    });
    m!(v, "HeapCreate", G::MemoryManagement, ["flags", "size", "size"], |k, os, a| {
        heapapi::HeapCreate(k, prof(os), uint(a[0]), a[1], a[2])
    });
    m!(v, "HeapDestroy", G::MemoryManagement, ["HANDLE"], |k, os, a| {
        heapapi::HeapDestroy(k, prof(os), handle(a[0]))
    });
    m!(v, "HeapAlloc", G::MemoryManagement, ["HANDLE", "flags", "size"], |k, os, a| {
        heapapi::HeapAlloc(k, prof(os), handle(a[0]), uint(a[1]), a[2])
    });
    m!(v, "HeapFree", G::MemoryManagement, ["HANDLE", "flags", "buffer"], |k, os, a| {
        heapapi::HeapFree(k, prof(os), handle(a[0]), uint(a[1]), ptr(a[2]))
    });
    m!(v, "HeapReAlloc", G::MemoryManagement, ["HANDLE", "flags", "buffer", "size"], |k, os, a| {
        heapapi::HeapReAlloc(k, prof(os), handle(a[0]), uint(a[1]), ptr(a[2]), a[3])
    });
    m!(v, "HeapSize", G::MemoryManagement, ["HANDLE", "flags", "buffer"], |k, os, a| {
        heapapi::HeapSize(k, prof(os), handle(a[0]), uint(a[1]), ptr(a[2]))
    });
    m!(v, "HeapValidate", G::MemoryManagement, ["HANDLE", "flags", "buffer"], |k, os, a| {
        heapapi::HeapValidate(k, prof(os), handle(a[0]), uint(a[1]), ptr(a[2]))
    });
    m!(v, "HeapCompact", G::MemoryManagement, ["HANDLE", "flags"], |k, os, a| {
        heapapi::HeapCompact(k, prof(os), handle(a[0]), uint(a[1]))
    });
    m!(v, "GetProcessHeap", G::MemoryManagement, [], |k, os, a| {
        heapapi::GetProcessHeap(k, prof(os))
    });
    m!(v, "GlobalAlloc", G::MemoryManagement, ["flags", "size"], |k, os, a| {
        heapapi::GlobalAlloc(k, prof(os), uint(a[0]), a[1])
    });
    m!(v, "GlobalFree", G::MemoryManagement, ["buffer"], |k, os, a| {
        heapapi::GlobalFree(k, prof(os), ptr(a[0]))
    });
    m!(v, "GlobalReAlloc", G::MemoryManagement, ["buffer", "size", "flags"], |k, os, a| {
        heapapi::GlobalReAlloc(k, prof(os), ptr(a[0]), a[1], uint(a[2]))
    });
    m!(v, "GlobalSize", G::MemoryManagement, ["buffer"], |k, os, a| {
        heapapi::GlobalSize(k, prof(os), ptr(a[0]))
    });
    m!(v, "GlobalLock", G::MemoryManagement, ["buffer"], |k, os, a| {
        heapapi::GlobalLock(k, prof(os), ptr(a[0]))
    });
    m!(v, "GlobalUnlock", G::MemoryManagement, ["buffer"], |k, os, a| {
        heapapi::GlobalUnlock(k, prof(os), ptr(a[0]))
    });
    m!(v, "LocalAlloc", G::MemoryManagement, ["flags", "size"], |k, os, a| {
        heapapi::LocalAlloc(k, prof(os), uint(a[0]), a[1])
    });
    m!(v, "LocalFree", G::MemoryManagement, ["buffer"], |k, os, a| {
        heapapi::LocalFree(k, prof(os), ptr(a[0]))
    });
    m!(v, "LocalReAlloc", G::MemoryManagement, ["buffer", "size", "flags"], |k, os, a| {
        heapapi::LocalReAlloc(k, prof(os), ptr(a[0]), a[1], uint(a[2]))
    });
    m!(v, "LocalSize", G::MemoryManagement, ["buffer"], |k, os, a| {
        heapapi::LocalSize(k, prof(os), ptr(a[0]))
    });

    // ---- Process Primitives (35) --------------------------------------------
    m!(v, "CreateProcess", G::ProcessPrimitives, ["path", "cstring", "flags", "buffer", "buffer"], |k, os, a| {
        processapi::CreateProcess(k, prof(os), ptr(a[0]), ptr(a[1]), uint(a[2]), sim_core::SimPtr::NULL, ptr(a[3]), ptr(a[4]))
    });
    m!(v, "OpenProcess", G::ProcessPrimitives, ["flags", "flags", "int"], |k, os, a| {
        processapi::OpenProcess(k, prof(os), uint(a[0]), uint(a[1]), uint(a[2]))
    });
    m!(v, "TerminateProcess", G::ProcessPrimitives, ["HANDLE", "int"], |k, os, a| {
        processapi::TerminateProcess(k, prof(os), handle(a[0]), uint(a[1]))
    });
    m!(v, "GetExitCodeProcess", G::ProcessPrimitives, ["HANDLE", "buffer"], |k, os, a| {
        processapi::GetExitCodeProcess(k, prof(os), handle(a[0]), ptr(a[1]))
    });
    m!(v, "GetCurrentProcess", G::ProcessPrimitives, [], |k, os, a| {
        processapi::GetCurrentProcess(k, prof(os))
    });
    m!(v, "GetCurrentProcessId", G::ProcessPrimitives, [], |k, os, a| {
        processapi::GetCurrentProcessId(k, prof(os))
    });
    m!(v, "GetPriorityClass", G::ProcessPrimitives, ["HANDLE"], |k, os, a| {
        processapi::GetPriorityClass(k, prof(os), handle(a[0]))
    });
    m!(v, "SetPriorityClass", G::ProcessPrimitives, ["HANDLE", "flags"], |k, os, a| {
        processapi::SetPriorityClass(k, prof(os), handle(a[0]), uint(a[1]))
    });
    m!(v, "CreateThread", G::ProcessPrimitives, ["buffer", "size", "buffer", "buffer"], |k, os, a| {
        threadapi::CreateThread(k, prof(os), sim_core::SimPtr::NULL, a[1], ptr(a[0]), ptr(a[2]), 0, ptr(a[3]))
    });
    m!(v, "TerminateThread", G::ProcessPrimitives, ["HANDLE", "int"], |k, os, a| {
        threadapi::TerminateThread(k, prof(os), handle(a[0]), uint(a[1]))
    });
    m!(v, "SuspendThread", G::ProcessPrimitives, ["HANDLE"], |k, os, a| {
        threadapi::SuspendThread(k, prof(os), handle(a[0]))
    });
    m!(v, "ResumeThread", G::ProcessPrimitives, ["HANDLE"], |k, os, a| {
        threadapi::ResumeThread(k, prof(os), handle(a[0]))
    });
    m!(v, "GetThreadContext", G::ProcessPrimitives, ["HANDLE", "buffer"], |k, os, a| {
        threadapi::GetThreadContext(k, prof(os), handle(a[0]), ptr(a[1]))
    });
    m!(v, "SetThreadContext", G::ProcessPrimitives, ["HANDLE", "buffer"], |k, os, a| {
        threadapi::SetThreadContext(k, prof(os), handle(a[0]), ptr(a[1]))
    });
    m!(v, "GetThreadPriority", G::ProcessPrimitives, ["HANDLE"], |k, os, a| {
        threadapi::GetThreadPriority(k, prof(os), handle(a[0]))
    });
    m!(v, "SetThreadPriority", G::ProcessPrimitives, ["HANDLE", "int"], |k, os, a| {
        threadapi::SetThreadPriority(k, prof(os), handle(a[0]), int(a[1]))
    });
    m!(v, "GetExitCodeThread", G::ProcessPrimitives, ["HANDLE", "buffer"], |k, os, a| {
        threadapi::GetExitCodeThread(k, prof(os), handle(a[0]), ptr(a[1]))
    });
    m!(v, "GetCurrentThread", G::ProcessPrimitives, [], |k, os, a| {
        threadapi::GetCurrentThread(k, prof(os))
    });
    m!(v, "GetCurrentThreadId", G::ProcessPrimitives, [], |k, os, a| {
        threadapi::GetCurrentThreadId(k, prof(os))
    });
    m!(v, "InterlockedIncrement", G::ProcessPrimitives, ["buffer"], |k, os, a| {
        threadapi::InterlockedIncrement(k, prof(os), ptr(a[0]))
    });
    m!(v, "InterlockedDecrement", G::ProcessPrimitives, ["buffer"], |k, os, a| {
        threadapi::InterlockedDecrement(k, prof(os), ptr(a[0]))
    });
    m!(v, "InterlockedExchange", G::ProcessPrimitives, ["buffer", "int"], |k, os, a| {
        threadapi::InterlockedExchange(k, prof(os), ptr(a[0]), int(a[1]))
    });
    m!(v, "Sleep", G::ProcessPrimitives, ["msec"], |k, os, a| {
        threadapi::Sleep(k, prof(os), uint(a[0]))
    });
    m!(v, "SleepEx", G::ProcessPrimitives, ["msec"], |k, os, a| {
        threadapi::SleepEx(k, prof(os), uint(a[0]), 0)
    });
    m!(v, "CreateEvent", G::ProcessPrimitives, ["buffer", "flags", "flags", "cstring"], |k, os, a| {
        syncapi::CreateEvent(k, prof(os), ptr(a[0]), uint(a[1]), uint(a[2]), ptr(a[3]))
    });
    m!(v, "SetEvent", G::ProcessPrimitives, ["HANDLE"], |k, os, a| {
        syncapi::SetEvent(k, prof(os), handle(a[0]))
    });
    m!(v, "ResetEvent", G::ProcessPrimitives, ["HANDLE"], |k, os, a| {
        syncapi::ResetEvent(k, prof(os), handle(a[0]))
    });
    m!(v, "PulseEvent", G::ProcessPrimitives, ["HANDLE"], |k, os, a| {
        syncapi::PulseEvent(k, prof(os), handle(a[0]))
    });
    m!(v, "CreateMutex", G::ProcessPrimitives, ["buffer", "flags", "cstring"], |k, os, a| {
        syncapi::CreateMutex(k, prof(os), ptr(a[0]), uint(a[1]), ptr(a[2]))
    });
    m!(v, "ReleaseMutex", G::ProcessPrimitives, ["HANDLE"], |k, os, a| {
        syncapi::ReleaseMutex(k, prof(os), handle(a[0]))
    });
    m!(v, "CreateSemaphore", G::ProcessPrimitives, ["buffer", "int", "int", "cstring"], |k, os, a| {
        syncapi::CreateSemaphore(k, prof(os), ptr(a[0]), int(a[1]), int(a[2]), ptr(a[3]))
    });
    m!(v, "ReleaseSemaphore", G::ProcessPrimitives, ["HANDLE", "int", "buffer"], |k, os, a| {
        syncapi::ReleaseSemaphore(k, prof(os), handle(a[0]), int(a[1]), ptr(a[2]))
    });
    m!(v, "WaitForSingleObject", G::ProcessPrimitives, ["HANDLE", "msec"], |k, os, a| {
        syncapi::WaitForSingleObject(k, prof(os), handle(a[0]), uint(a[1]))
    });
    m!(v, "WaitForMultipleObjects", G::ProcessPrimitives, ["int", "buffer", "flags", "msec"], |k, os, a| {
        syncapi::WaitForMultipleObjects(k, prof(os), uint(a[0]).min(80), ptr(a[1]), uint(a[2]), uint(a[3]))
    });
    m!(v, "MsgWaitForMultipleObjects", G::ProcessPrimitives, ["int", "buffer", "flags", "msec"], |k, os, a| {
        syncapi::MsgWaitForMultipleObjects(k, prof(os), uint(a[0]).min(80), ptr(a[1]), 0, uint(a[2]), uint(a[3]))
    });
    m!(v, "MsgWaitForMultipleObjectsEx", G::ProcessPrimitives, ["int", "buffer", "msec", "flags"], |k, os, a| {
        syncapi::MsgWaitForMultipleObjectsEx(k, prof(os), uint(a[0]).min(80), ptr(a[1]), uint(a[2]), uint(a[3]), 0)
    });

    // ---- Process Environment (25) -------------------------------------------
    m!(v, "GetEnvironmentVariable", G::ProcessEnvironment, ["cstring", "buffer", "size"], |k, os, a| {
        envapi::GetEnvironmentVariable(k, prof(os), ptr(a[0]), ptr(a[1]), uint(a[2]))
    });
    m!(v, "SetEnvironmentVariable", G::ProcessEnvironment, ["cstring", "cstring"], |k, os, a| {
        envapi::SetEnvironmentVariable(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "ExpandEnvironmentStrings", G::ProcessEnvironment, ["cstring", "buffer", "size"], |k, os, a| {
        envapi::ExpandEnvironmentStrings(k, prof(os), ptr(a[0]), ptr(a[1]), uint(a[2]))
    });
    m!(v, "GetCommandLine", G::ProcessEnvironment, [], |k, os, a| {
        envapi::GetCommandLine(k, prof(os))
    });
    m!(v, "GetModuleFileName", G::ProcessEnvironment, ["buffer", "buffer", "size"], |k, os, a| {
        envapi::GetModuleFileName(k, prof(os), ptr(a[0]), ptr(a[1]), uint(a[2]))
    });
    m!(v, "GetModuleHandle", G::ProcessEnvironment, ["cstring"], |k, os, a| {
        envapi::GetModuleHandle(k, prof(os), ptr(a[0]))
    });
    m!(v, "GetVersion", G::ProcessEnvironment, [], |k, os, a| {
        envapi::GetVersion(k, prof(os))
    });
    m!(v, "GetVersionEx", G::ProcessEnvironment, ["buffer"], |k, os, a| {
        envapi::GetVersionEx(k, prof(os), ptr(a[0]))
    });
    m!(v, "GetSystemInfo", G::ProcessEnvironment, ["buffer"], |k, os, a| {
        envapi::GetSystemInfo(k, prof(os), ptr(a[0]))
    });
    m!(v, "GetComputerName", G::ProcessEnvironment, ["buffer", "buffer"], |k, os, a| {
        envapi::GetComputerName(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "GetSystemDirectory", G::ProcessEnvironment, ["buffer", "size"], |k, os, a| {
        envapi::GetSystemDirectory(k, prof(os), ptr(a[0]), uint(a[1]))
    });
    m!(v, "GetWindowsDirectory", G::ProcessEnvironment, ["buffer", "size"], |k, os, a| {
        envapi::GetWindowsDirectory(k, prof(os), ptr(a[0]), uint(a[1]))
    });
    m!(v, "GetStartupInfo", G::ProcessEnvironment, ["buffer"], |k, os, a| {
        envapi::GetStartupInfo(k, prof(os), ptr(a[0]))
    });
    m!(v, "GetTickCount", G::ProcessEnvironment, [], |k, os, a| {
        timeapi::GetTickCount(k, prof(os))
    });
    m!(v, "GetSystemTime", G::ProcessEnvironment, ["systemtime_ptr"], |k, os, a| {
        timeapi::GetSystemTime(k, prof(os), ptr(a[0]))
    });
    m!(v, "GetLocalTime", G::ProcessEnvironment, ["systemtime_ptr"], |k, os, a| {
        timeapi::GetLocalTime(k, prof(os), ptr(a[0]))
    });
    m!(v, "SetSystemTime", G::ProcessEnvironment, ["systemtime_ptr"], |k, os, a| {
        timeapi::SetSystemTime(k, prof(os), ptr(a[0]))
    });
    m!(v, "GetSystemTimeAsFileTime", G::ProcessEnvironment, ["filetime_ptr"], |k, os, a| {
        timeapi::GetSystemTimeAsFileTime(k, prof(os), ptr(a[0]))
    });
    m!(v, "GetTimeZoneInformation", G::ProcessEnvironment, ["buffer"], |k, os, a| {
        timeapi::GetTimeZoneInformation(k, prof(os), ptr(a[0]))
    });
    m!(v, "lstrlen", G::ProcessEnvironment, ["cstring"], |k, os, a| {
        envapi::lstrlen(k, prof(os), ptr(a[0]))
    });
    m!(v, "lstrcpy", G::ProcessEnvironment, ["cstring", "cstring"], |k, os, a| {
        envapi::lstrcpy(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "lstrcpyn", G::ProcessEnvironment, ["cstring", "cstring", "int"], |k, os, a| {
        envapi::lstrcpyn(k, prof(os), ptr(a[0]), ptr(a[1]), int(a[2]))
    });
    m!(v, "lstrcat", G::ProcessEnvironment, ["cstring", "cstring"], |k, os, a| {
        envapi::lstrcat(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "lstrcmp", G::ProcessEnvironment, ["cstring", "cstring"], |k, os, a| {
        envapi::lstrcmp(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "lstrcmpi", G::ProcessEnvironment, ["cstring", "cstring"], |k, os, a| {
        envapi::lstrcmpi(k, prof(os), ptr(a[0]), ptr(a[1]))
    });

    // Per-variant availability.
    let profile = prof(os);
    v.retain(|entry| profile.supports_call(entry.name));
    if os == OsVariant::WinCe {
        v.retain(|entry| ON_CE.contains(&entry.name));
    }
    let _ = fd(0); // helper shared with the other catalogs
    v
}
