//! The POSIX system-call catalog: the 91 Linux calls of the paper's
//! comparison set (RedHat 6.0), across the five system-call groupings.

use super::m;
use crate::muts::arg::{fd, int, ptr, uint};
use crate::muts::{FunctionGroup as G, Mut};
use sim_posix::{envops, fd as fdops, fsops, memops, procops};

/// Builds the Linux catalog.
#[must_use]
#[allow(clippy::too_many_lines)] // one entry per call, by design
pub fn posix_calls() -> Vec<Mut> {
    let mut v: Vec<Mut> = Vec::with_capacity(91);

    // ---- I/O Primitives (14; the paper's §3.3 list plus vector/poll I/O) --
    m!(v, "read", G::IoPrimitives, ["fd", "buffer", "size"], |k, os, a| {
        fdops::read(k, fd(a[0]), ptr(a[1]), a[2])
    });
    m!(v, "write", G::IoPrimitives, ["fd", "buffer", "size"], |k, os, a| {
        fdops::write(k, fd(a[0]), ptr(a[1]), a[2])
    });
    m!(v, "close", G::IoPrimitives, ["fd"], |k, os, a| fdops::close(k, fd(a[0])));
    m!(v, "dup", G::IoPrimitives, ["fd"], |k, os, a| fdops::dup(k, fd(a[0])));
    m!(v, "dup2", G::IoPrimitives, ["fd", "fd"], |k, os, a| {
        fdops::dup2(k, fd(a[0]), fd(a[1]))
    });
    m!(v, "lseek", G::IoPrimitives, ["fd", "int", "int"], |k, os, a| {
        fdops::lseek(k, fd(a[0]), i64::from(int(a[1])), int(a[2]))
    });
    m!(v, "pipe", G::IoPrimitives, ["buffer"], |k, os, a| fdops::pipe(k, ptr(a[0])));
    m!(v, "fcntl", G::IoPrimitives, ["fd", "int", "buffer"], |k, os, a| {
        fdops::fcntl(k, fd(a[0]), int(a[1]), a[2] as i64)
    });
    m!(v, "fsync", G::IoPrimitives, ["fd"], |k, os, a| fdops::fsync(k, fd(a[0])));
    m!(v, "fdatasync", G::IoPrimitives, ["fd"], |k, os, a| {
        fdops::fdatasync(k, fd(a[0]))
    });
    m!(v, "readv", G::IoPrimitives, ["fd", "buffer", "int"], |k, os, a| {
        fdops::readv(k, fd(a[0]), ptr(a[1]), int(a[2]))
    });
    m!(v, "writev", G::IoPrimitives, ["fd", "buffer", "int"], |k, os, a| {
        fdops::writev(k, fd(a[0]), ptr(a[1]), int(a[2]))
    });
    m!(v, "select", G::IoPrimitives, ["int", "buffer", "buffer", "buffer", "buffer"], |k, os, a| {
        fdops::select(k, int(a[0]), ptr(a[1]), ptr(a[2]), ptr(a[3]), ptr(a[4]))
    });
    m!(v, "poll", G::IoPrimitives, ["buffer", "size", "int"], |k, os, a| {
        fdops::poll(k, ptr(a[0]), uint(a[1]).min(2048), int(a[2]))
    });

    // ---- File/Directory Access (26) ---------------------------------------
    m!(v, "open", G::FileDirAccess, ["path", "flags", "flags"], |k, os, a| {
        fsops::open(k, ptr(a[0]), int(a[1]), uint(a[2]))
    });
    m!(v, "creat", G::FileDirAccess, ["path", "flags"], |k, os, a| {
        fsops::creat(k, ptr(a[0]), uint(a[1]))
    });
    m!(v, "stat", G::FileDirAccess, ["path", "buffer"], |k, os, a| {
        fsops::stat(k, ptr(a[0]), ptr(a[1]))
    });
    m!(v, "lstat", G::FileDirAccess, ["path", "buffer"], |k, os, a| {
        fsops::lstat(k, ptr(a[0]), ptr(a[1]))
    });
    m!(v, "fstat", G::FileDirAccess, ["fd", "buffer"], |k, os, a| {
        fsops::fstat(k, fd(a[0]), ptr(a[1]))
    });
    m!(v, "access", G::FileDirAccess, ["path", "int"], |k, os, a| {
        fsops::access(k, ptr(a[0]), int(a[1]))
    });
    m!(v, "mkdir", G::FileDirAccess, ["path", "flags"], |k, os, a| {
        fsops::mkdir(k, ptr(a[0]), uint(a[1]))
    });
    m!(v, "rmdir", G::FileDirAccess, ["path"], |k, os, a| fsops::rmdir(k, ptr(a[0])));
    m!(v, "unlink", G::FileDirAccess, ["path"], |k, os, a| {
        fsops::unlink(k, ptr(a[0]))
    });
    // `rename` is covered by the shared C-library catalog (same entry
    // point on Linux), so it is not duplicated here.
    m!(v, "link", G::FileDirAccess, ["path", "path"], |k, os, a| {
        fsops::link(k, ptr(a[0]), ptr(a[1]))
    });
    m!(v, "symlink", G::FileDirAccess, ["path", "path"], |k, os, a| {
        fsops::symlink(k, ptr(a[0]), ptr(a[1]))
    });
    m!(v, "readlink", G::FileDirAccess, ["path", "buffer", "size"], |k, os, a| {
        fsops::readlink(k, ptr(a[0]), ptr(a[1]), a[2].min(4096))
    });
    m!(v, "chmod", G::FileDirAccess, ["path", "flags"], |k, os, a| {
        fsops::chmod(k, ptr(a[0]), uint(a[1]))
    });
    m!(v, "fchmod", G::FileDirAccess, ["fd", "flags"], |k, os, a| {
        fsops::fchmod(k, fd(a[0]), uint(a[1]))
    });
    m!(v, "chown", G::FileDirAccess, ["path", "int", "int"], |k, os, a| {
        fsops::chown(k, ptr(a[0]), uint(a[1]), uint(a[2]))
    });
    m!(v, "fchown", G::FileDirAccess, ["fd", "int", "int"], |k, os, a| {
        fsops::fchown(k, fd(a[0]), uint(a[1]), uint(a[2]))
    });
    m!(v, "lchown", G::FileDirAccess, ["path", "int", "int"], |k, os, a| {
        fsops::lchown(k, ptr(a[0]), uint(a[1]), uint(a[2]))
    });
    m!(v, "chdir", G::FileDirAccess, ["path"], |k, os, a| fsops::chdir(k, ptr(a[0])));
    m!(v, "getcwd", G::FileDirAccess, ["buffer", "size"], |k, os, a| {
        fsops::getcwd(k, ptr(a[0]), a[1])
    });
    m!(v, "truncate", G::FileDirAccess, ["path", "int"], |k, os, a| {
        fsops::truncate(k, ptr(a[0]), i64::from(int(a[1])))
    });
    m!(v, "ftruncate", G::FileDirAccess, ["fd", "int"], |k, os, a| {
        fsops::ftruncate(k, fd(a[0]), i64::from(int(a[1])))
    });
    m!(v, "umask", G::FileDirAccess, ["flags"], |k, os, a| {
        fsops::umask(k, uint(a[0]))
    });
    m!(v, "utime", G::FileDirAccess, ["path", "buffer"], |k, os, a| {
        fsops::utime(k, ptr(a[0]), ptr(a[1]))
    });
    m!(v, "mknod", G::FileDirAccess, ["path", "flags", "int"], |k, os, a| {
        fsops::mknod(k, ptr(a[0]), uint(a[1]), a[2])
    });
    m!(v, "statfs", G::FileDirAccess, ["path", "buffer"], |k, os, a| {
        fsops::statfs(k, ptr(a[0]), ptr(a[1]))
    });

    // ---- Memory Management (8) ----------------------------------------------
    m!(v, "mmap", G::MemoryManagement, ["buffer", "size", "int", "flags", "fd"], |k, os, a| {
        memops::mmap(k, ptr(a[0]), a[1], int(a[2]), int(a[3]) | 0x20, fd(a[4]), 0)
    });
    m!(v, "munmap", G::MemoryManagement, ["buffer", "size"], |k, os, a| {
        memops::munmap(k, ptr(a[0]), a[1])
    });
    m!(v, "mprotect", G::MemoryManagement, ["buffer", "size", "int"], |k, os, a| {
        memops::mprotect(k, ptr(a[0]), a[1], int(a[2]))
    });
    m!(v, "msync", G::MemoryManagement, ["buffer", "size", "int"], |k, os, a| {
        memops::msync(k, ptr(a[0]), a[1], int(a[2]))
    });
    m!(v, "brk", G::MemoryManagement, ["buffer"], |k, os, a| {
        memops::brk(k, ptr(a[0]))
    });
    m!(v, "sbrk", G::MemoryManagement, ["int"], |k, os, a| {
        memops::sbrk(k, i64::from(int(a[0])))
    });
    m!(v, "mlock", G::MemoryManagement, ["buffer", "size"], |k, os, a| {
        memops::mlock(k, ptr(a[0]), a[1])
    });
    m!(v, "munlock", G::MemoryManagement, ["buffer", "size"], |k, os, a| {
        memops::munlock(k, ptr(a[0]), a[1])
    });

    // ---- Process Primitives (27) ----------------------------------------------
    m!(v, "fork", G::ProcessPrimitives, [], |k, os, a| procops::fork(k));
    m!(v, "vfork", G::ProcessPrimitives, [], |k, os, a| procops::vfork(k));
    m!(v, "execve", G::ProcessPrimitives, ["path", "buffer", "buffer"], |k, os, a| {
        procops::execve(k, ptr(a[0]), ptr(a[1]), ptr(a[2]))
    });
    m!(v, "waitpid", G::ProcessPrimitives, ["int", "buffer", "flags"], |k, os, a| {
        procops::waitpid(k, fd(a[0]), ptr(a[1]), int(a[2]))
    });
    m!(v, "wait", G::ProcessPrimitives, ["buffer"], |k, os, a| {
        procops::wait(k, ptr(a[0]))
    });
    m!(v, "kill", G::ProcessPrimitives, ["int", "int"], |k, os, a| {
        procops::kill(k, fd(a[0]), int(a[1]))
    });
    m!(v, "getpid", G::ProcessPrimitives, [], |k, os, a| procops::getpid(k));
    m!(v, "getppid", G::ProcessPrimitives, [], |k, os, a| procops::getppid(k));
    m!(v, "setpgid", G::ProcessPrimitives, ["int", "int"], |k, os, a| {
        procops::setpgid(k, fd(a[0]), fd(a[1]))
    });
    m!(v, "getpgid", G::ProcessPrimitives, ["int"], |k, os, a| {
        procops::getpgid(k, fd(a[0]))
    });
    m!(v, "getpgrp", G::ProcessPrimitives, [], |k, os, a| procops::getpgrp(k));
    m!(v, "setsid", G::ProcessPrimitives, [], |k, os, a| procops::setsid(k));
    m!(v, "nice", G::ProcessPrimitives, ["int"], |k, os, a| {
        procops::nice(k, int(a[0]))
    });
    // `pause` and `sigsuspend` block by *specification* on every input, so
    // including them would record a 100% Restart rate that says nothing
    // about robustness; the paper's call set (with its rare Restarts)
    // plainly excluded them. They remain implemented and unit-tested in
    // sim-posix.
    m!(v, "alarm", G::ProcessPrimitives, ["flags"], |k, os, a| {
        procops::alarm(k, uint(a[0]))
    });
    m!(v, "sleep", G::ProcessPrimitives, ["flags"], |k, os, a| {
        procops::sleep(k, uint(a[0]))
    });
    m!(v, "signal", G::ProcessPrimitives, ["int", "buffer"], |k, os, a| {
        procops::signal_call(k, int(a[0]), ptr(a[1]))
    });
    m!(v, "sigaction", G::ProcessPrimitives, ["int", "buffer", "buffer"], |k, os, a| {
        procops::sigaction(k, int(a[0]), ptr(a[1]), ptr(a[2]))
    });
    m!(v, "sigprocmask", G::ProcessPrimitives, ["int", "buffer", "buffer"], |k, os, a| {
        procops::sigprocmask(k, int(a[0]), ptr(a[1]), ptr(a[2]))
    });
    m!(v, "sigpending", G::ProcessPrimitives, ["buffer"], |k, os, a| {
        procops::sigpending(k, ptr(a[0]))
    });
    m!(v, "nanosleep", G::ProcessPrimitives, ["buffer", "buffer"], |k, os, a| {
        procops::nanosleep(k, ptr(a[0]), ptr(a[1]))
    });
    m!(v, "sched_yield", G::ProcessPrimitives, [], |k, os, a| {
        procops::sched_yield(k)
    });
    m!(v, "sched_get_priority_max", G::ProcessPrimitives, ["int"], |k, os, a| {
        procops::sched_get_priority_max(k, int(a[0]))
    });
    m!(v, "sched_get_priority_min", G::ProcessPrimitives, ["int"], |k, os, a| {
        procops::sched_get_priority_min(k, int(a[0]))
    });
    m!(v, "sched_getparam", G::ProcessPrimitives, ["int", "buffer"], |k, os, a| {
        procops::sched_getparam(k, fd(a[0]), ptr(a[1]))
    });
    m!(v, "sched_setparam", G::ProcessPrimitives, ["int", "buffer"], |k, os, a| {
        procops::sched_setparam(k, fd(a[0]), ptr(a[1]))
    });

    // ---- Process Environment (16) ----------------------------------------------
    m!(v, "getuid", G::ProcessEnvironment, [], |k, os, a| envops::getuid(k));
    m!(v, "geteuid", G::ProcessEnvironment, [], |k, os, a| envops::geteuid(k));
    m!(v, "getgid", G::ProcessEnvironment, [], |k, os, a| envops::getgid(k));
    m!(v, "getegid", G::ProcessEnvironment, [], |k, os, a| envops::getegid(k));
    m!(v, "setuid", G::ProcessEnvironment, ["int"], |k, os, a| {
        envops::setuid(k, fd(a[0]))
    });
    m!(v, "setgid", G::ProcessEnvironment, ["int"], |k, os, a| {
        envops::setgid(k, fd(a[0]))
    });
    m!(v, "getgroups", G::ProcessEnvironment, ["int", "buffer"], |k, os, a| {
        envops::getgroups(k, int(a[0]), ptr(a[1]))
    });
    m!(v, "getrlimit", G::ProcessEnvironment, ["int", "buffer"], |k, os, a| {
        envops::getrlimit(k, int(a[0]), ptr(a[1]))
    });
    m!(v, "setrlimit", G::ProcessEnvironment, ["int", "buffer"], |k, os, a| {
        envops::setrlimit(k, int(a[0]), ptr(a[1]))
    });
    m!(v, "getrusage", G::ProcessEnvironment, ["int", "buffer"], |k, os, a| {
        envops::getrusage(k, int(a[0]), ptr(a[1]))
    });
    m!(v, "gettimeofday", G::ProcessEnvironment, ["buffer", "buffer"], |k, os, a| {
        envops::gettimeofday(k, ptr(a[0]), ptr(a[1]))
    });
    m!(v, "times", G::ProcessEnvironment, ["buffer"], |k, os, a| {
        envops::times(k, ptr(a[0]))
    });
    m!(v, "uname", G::ProcessEnvironment, ["buffer"], |k, os, a| {
        envops::uname(k, ptr(a[0]))
    });
    m!(v, "sysconf", G::ProcessEnvironment, ["int"], |k, os, a| {
        envops::sysconf(k, int(a[0]))
    });
    m!(v, "getenv", G::ProcessEnvironment, ["cstring"], |k, os, a| {
        envops::getenv(k, ptr(a[0]))
    });
    m!(v, "putenv", G::ProcessEnvironment, ["cstring"], |k, os, a| {
        envops::putenv(k, ptr(a[0]))
    });

    v
}
