//! The shared C-library catalog — identical test cases on every OS, the
//! backbone of the paper's cross-API comparison. 94 functions across the
//! seven C groupings; Windows CE drops the `C time` group and a dozen
//! unsupported stdio functions and swaps `strncpy` for its preferred
//! UNICODE twin `_tcsncpy` (Table 3's "(UNICODE) *_tcsncpy").

use super::m;
use crate::datatype::TypeRegistry;
use crate::muts::arg::{f64_of, fd, int, ptr, uint};
use crate::muts::{FunctionGroup as G, Mut};
use crate::value::TestValue;
use sim_core::cstr;
use sim_kernel::variant::OsVariant;
use sim_libc::{ctype, math, memory, profile::LibcProfile, stdio, stream, string, time, wide};

fn prof(os: OsVariant) -> LibcProfile {
    LibcProfile::for_os(os)
}

/// Registers the Windows-only wide-string type used by `_tcsncpy` on CE.
pub fn register_wide_types(reg: &mut TypeRegistry) {
    reg.register(
        "wstring",
        vec![
            TestValue::with("wide \"ballista\"", false, |k, _| {
                let p = k.alloc_user(20, "pool-wstr");
                cstr::write_wstr(&mut k.space, p, "ballista", sim_core::addr::PrivilegeLevel::User)
                    .expect("fresh");
                p.addr()
            }),
            TestValue::with("wide empty", false, |k, _| {
                let p = k.alloc_user(2, "pool-wempty");
                k.space.write_u16(p, 0).expect("fresh");
                p.addr()
            }),
            TestValue::constant("NULL wide", true, 0),
            TestValue::with("unterminated wide", true, |k, _| {
                let p = k.alloc_user(8, "pool-wunterm");
                for i in 0..4u64 {
                    k.space.write_u16(p.offset(i * 2), 0x4141).expect("fresh");
                }
                p.addr()
            }),
            TestValue::with("odd wide pointer", true, |k, _| {
                k.alloc_user(16, "pool-wodd").addr() + 1
            }),
            TestValue::with("dangling wide", true, |k, _| {
                let p = k.alloc_user(8, "pool-wdang");
                k.space.unmap(p).expect("fresh");
                p.addr()
            }),
        ],
    );
}

/// stdio functions absent from the CE C runtime in this reproduction
/// (bringing the CE C function count down to the paper's 82-of-94 scale).
const NOT_ON_CE: [&str; 10] = [
    "feof", "ferror", "rewind", "fgetpos", "fsetpos", "tmpfile", "tmpnam", "setbuf", "setvbuf",
    "gets",
];

/// Builds the C-library catalog for `os`.
#[must_use]
#[allow(clippy::too_many_lines)] // one entry per C function, by design
pub fn c_library(os: OsVariant) -> Vec<Mut> {
    let mut v: Vec<Mut> = Vec::with_capacity(96);

    // ---- C char (15) --------------------------------------------------
    m!(v, "isalnum", G::CChar, ["int"], |k, os, a| ctype::isalnum(k, prof(os), int(a[0])));
    m!(v, "isalpha", G::CChar, ["int"], |k, os, a| ctype::isalpha(k, prof(os), int(a[0])));
    m!(v, "isascii", G::CChar, ["int"], |k, os, a| ctype::isascii(k, prof(os), int(a[0])));
    m!(v, "iscntrl", G::CChar, ["int"], |k, os, a| ctype::iscntrl(k, prof(os), int(a[0])));
    m!(v, "isdigit", G::CChar, ["int"], |k, os, a| ctype::isdigit(k, prof(os), int(a[0])));
    m!(v, "isgraph", G::CChar, ["int"], |k, os, a| ctype::isgraph(k, prof(os), int(a[0])));
    m!(v, "islower", G::CChar, ["int"], |k, os, a| ctype::islower(k, prof(os), int(a[0])));
    m!(v, "isprint", G::CChar, ["int"], |k, os, a| ctype::isprint(k, prof(os), int(a[0])));
    m!(v, "ispunct", G::CChar, ["int"], |k, os, a| ctype::ispunct(k, prof(os), int(a[0])));
    m!(v, "isspace", G::CChar, ["int"], |k, os, a| ctype::isspace(k, prof(os), int(a[0])));
    m!(v, "isupper", G::CChar, ["int"], |k, os, a| ctype::isupper(k, prof(os), int(a[0])));
    m!(v, "isxdigit", G::CChar, ["int"], |k, os, a| ctype::isxdigit(k, prof(os), int(a[0])));
    m!(v, "toascii", G::CChar, ["int"], |k, os, a| ctype::toascii(k, prof(os), int(a[0])));
    m!(v, "tolower", G::CChar, ["int"], |k, os, a| ctype::tolower(k, prof(os), int(a[0])));
    m!(v, "toupper", G::CChar, ["int"], |k, os, a| ctype::toupper(k, prof(os), int(a[0])));

    // ---- C string (14) ------------------------------------------------
    m!(v, "strcat", G::CString, ["cstring", "cstring"], |k, os, a| {
        string::strcat(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "strchr", G::CString, ["cstring", "int"], |k, os, a| {
        string::strchr(k, prof(os), ptr(a[0]), int(a[1]))
    });
    m!(v, "strcmp", G::CString, ["cstring", "cstring"], |k, os, a| {
        string::strcmp(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "strcpy", G::CString, ["cstring", "cstring"], |k, os, a| {
        string::strcpy(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "strcspn", G::CString, ["cstring", "cstring"], |k, os, a| {
        string::strcspn(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "strlen", G::CString, ["cstring"], |k, os, a| {
        string::strlen(k, prof(os), ptr(a[0]))
    });
    m!(v, "strncat", G::CString, ["cstring", "cstring", "size"], |k, os, a| {
        string::strncat(k, prof(os), ptr(a[0]), ptr(a[1]), a[2])
    });
    m!(v, "strncmp", G::CString, ["cstring", "cstring", "size"], |k, os, a| {
        string::strncmp(k, prof(os), ptr(a[0]), ptr(a[1]), a[2])
    });
    // On CE the preferred UNICODE twin is tested (Table 3: "*_tcsncpy").
    if os == OsVariant::WinCe {
        m!(v, "strncpy", G::CString, ["wstring", "wstring", "size"], |k, os, a| {
            wide::tcsncpy(k, prof(os), ptr(a[0]), ptr(a[1]), a[2])
        });
    } else {
        m!(v, "strncpy", G::CString, ["cstring", "cstring", "size"], |k, os, a| {
            string::strncpy(k, prof(os), ptr(a[0]), ptr(a[1]), a[2])
        });
    }
    m!(v, "strpbrk", G::CString, ["cstring", "cstring"], |k, os, a| {
        string::strpbrk(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "strrchr", G::CString, ["cstring", "int"], |k, os, a| {
        string::strrchr(k, prof(os), ptr(a[0]), int(a[1]))
    });
    m!(v, "strspn", G::CString, ["cstring", "cstring"], |k, os, a| {
        string::strspn(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "strstr", G::CString, ["cstring", "cstring"], |k, os, a| {
        string::strstr(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "strtok", G::CString, ["cstring", "cstring"], |k, os, a| {
        string::strtok(k, prof(os), ptr(a[0]), ptr(a[1]))
    });

    // ---- C memory management (9) ---------------------------------------
    m!(v, "malloc", G::CMemory, ["size"], |k, os, a| {
        memory::malloc(k, prof(os), a[0])
    });
    m!(v, "calloc", G::CMemory, ["size", "size"], |k, os, a| {
        memory::calloc(k, prof(os), a[0], a[1])
    });
    m!(v, "realloc", G::CMemory, ["buffer", "size"], |k, os, a| {
        memory::realloc(k, prof(os), ptr(a[0]), a[1])
    });
    m!(v, "free", G::CMemory, ["buffer"], |k, os, a| {
        memory::free(k, prof(os), ptr(a[0]))
    });
    m!(v, "memchr", G::CMemory, ["buffer", "int", "size"], |k, os, a| {
        memory::memchr(k, prof(os), ptr(a[0]), int(a[1]), a[2])
    });
    m!(v, "memcmp", G::CMemory, ["buffer", "buffer", "size"], |k, os, a| {
        memory::memcmp(k, prof(os), ptr(a[0]), ptr(a[1]), a[2])
    });
    m!(v, "memcpy", G::CMemory, ["buffer", "buffer", "size"], |k, os, a| {
        memory::memcpy(k, prof(os), ptr(a[0]), ptr(a[1]), a[2])
    });
    m!(v, "memmove", G::CMemory, ["buffer", "buffer", "size"], |k, os, a| {
        memory::memmove(k, prof(os), ptr(a[0]), ptr(a[1]), a[2])
    });
    m!(v, "memset", G::CMemory, ["buffer", "int", "size"], |k, os, a| {
        memory::memset(k, prof(os), ptr(a[0]), int(a[1]), a[2])
    });

    // ---- C file I/O management (18) -------------------------------------
    m!(v, "fopen", G::CFileIo, ["path", "mode_string"], |k, os, a| {
        stdio::fopen(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "freopen", G::CFileIo, ["path", "mode_string", "FILE_ptr"], |k, os, a| {
        stdio::freopen(k, prof(os), ptr(a[0]), ptr(a[1]), ptr(a[2]))
    });
    m!(v, "fclose", G::CFileIo, ["FILE_ptr"], |k, os, a| {
        stdio::fclose(k, prof(os), ptr(a[0]))
    });
    m!(v, "fflush", G::CFileIo, ["FILE_ptr"], |k, os, a| {
        stdio::fflush(k, prof(os), ptr(a[0]))
    });
    m!(v, "fseek", G::CFileIo, ["FILE_ptr", "int", "int"], |k, os, a| {
        stdio::fseek(k, prof(os), ptr(a[0]), i64::from(int(a[1])), int(a[2]))
    });
    m!(v, "ftell", G::CFileIo, ["FILE_ptr"], |k, os, a| {
        stdio::ftell(k, prof(os), ptr(a[0]))
    });
    m!(v, "rewind", G::CFileIo, ["FILE_ptr"], |k, os, a| {
        stdio::rewind(k, prof(os), ptr(a[0]))
    });
    m!(v, "fgetpos", G::CFileIo, ["FILE_ptr", "buffer"], |k, os, a| {
        stdio::fgetpos(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "fsetpos", G::CFileIo, ["FILE_ptr", "buffer"], |k, os, a| {
        stdio::fsetpos(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "clearerr", G::CFileIo, ["FILE_ptr"], |k, os, a| {
        stdio::clearerr(k, prof(os), ptr(a[0]))
    });
    m!(v, "feof", G::CFileIo, ["FILE_ptr"], |k, os, a| {
        stdio::feof(k, prof(os), ptr(a[0]))
    });
    m!(v, "ferror", G::CFileIo, ["FILE_ptr"], |k, os, a| {
        stdio::ferror(k, prof(os), ptr(a[0]))
    });
    m!(v, "remove", G::CFileIo, ["path"], |k, os, a| {
        stdio::remove(k, prof(os), ptr(a[0]))
    });
    m!(v, "rename", G::CFileIo, ["path", "path"], |k, os, a| {
        stdio::rename(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "tmpfile", G::CFileIo, [], |k, os, a| stdio::tmpfile(k, prof(os)));
    m!(v, "tmpnam", G::CFileIo, ["buffer"], |k, os, a| {
        stdio::tmpnam(k, prof(os), ptr(a[0]))
    });
    m!(v, "setbuf", G::CFileIo, ["FILE_ptr", "buffer"], |k, os, a| {
        stdio::setbuf(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "setvbuf", G::CFileIo, ["FILE_ptr", "buffer", "int", "size"], |k, os, a| {
        stdio::setvbuf(k, prof(os), ptr(a[0]), ptr(a[1]), int(a[2]), a[3])
    });

    // ---- C stream I/O (17) ----------------------------------------------
    m!(v, "fread", G::CStreamIo, ["buffer", "size", "size", "FILE_ptr"], |k, os, a| {
        stream::fread(k, prof(os), ptr(a[0]), a[1], a[2], ptr(a[3]))
    });
    m!(v, "fwrite", G::CStreamIo, ["buffer", "size", "size", "FILE_ptr"], |k, os, a| {
        stream::fwrite(k, prof(os), ptr(a[0]), a[1], a[2], ptr(a[3]))
    });
    m!(v, "fgetc", G::CStreamIo, ["FILE_ptr"], |k, os, a| {
        stream::fgetc(k, prof(os), ptr(a[0]))
    });
    m!(v, "fgets", G::CStreamIo, ["buffer", "int", "FILE_ptr"], |k, os, a| {
        stream::fgets(k, prof(os), ptr(a[0]), int(a[1]), ptr(a[2]))
    });
    m!(v, "fputc", G::CStreamIo, ["int", "FILE_ptr"], |k, os, a| {
        stream::fputc(k, prof(os), int(a[0]), ptr(a[1]))
    });
    m!(v, "fputs", G::CStreamIo, ["cstring", "FILE_ptr"], |k, os, a| {
        stream::fputs(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "getc", G::CStreamIo, ["FILE_ptr"], |k, os, a| {
        stream::fgetc(k, prof(os), ptr(a[0]))
    });
    m!(v, "putc", G::CStreamIo, ["int", "FILE_ptr"], |k, os, a| {
        stream::fputc(k, prof(os), int(a[0]), ptr(a[1]))
    });
    m!(v, "ungetc", G::CStreamIo, ["int", "FILE_ptr"], |k, os, a| {
        stream::ungetc(k, prof(os), int(a[0]), ptr(a[1]))
    });
    m!(v, "fprintf", G::CStreamIo, ["FILE_ptr", "cstring"], |k, os, a| {
        stream::fprintf(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "fscanf", G::CStreamIo, ["FILE_ptr", "cstring"], |k, os, a| {
        stream::fscanf(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "printf", G::CStreamIo, ["cstring"], |k, os, a| {
        stream::printf(k, prof(os), ptr(a[0]))
    });
    m!(v, "scanf", G::CStreamIo, ["cstring"], |k, os, a| {
        stream::scanf(k, prof(os), ptr(a[0]))
    });
    m!(v, "sprintf", G::CStreamIo, ["buffer", "cstring"], |k, os, a| {
        stream::sprintf(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "sscanf", G::CStreamIo, ["cstring", "cstring"], |k, os, a| {
        stream::sscanf(k, prof(os), ptr(a[0]), ptr(a[1]))
    });
    m!(v, "gets", G::CStreamIo, ["buffer"], |k, os, a| {
        stream::gets(k, prof(os), ptr(a[0]))
    });
    m!(v, "puts", G::CStreamIo, ["cstring"], |k, os, a| {
        stream::puts(k, prof(os), ptr(a[0]))
    });

    // ---- C math (13 — the paper's grouping counts the float core) -------
    m!(v, "sqrt", G::CMath, ["double"], |k, os, a| math::sqrt(k, prof(os), f64_of(a[0])));
    m!(v, "log", G::CMath, ["double"], |k, os, a| math::log(k, prof(os), f64_of(a[0])));
    m!(v, "exp", G::CMath, ["double"], |k, os, a| math::exp(k, prof(os), f64_of(a[0])));
    m!(v, "sin", G::CMath, ["double"], |k, os, a| math::sin(k, prof(os), f64_of(a[0])));
    m!(v, "cos", G::CMath, ["double"], |k, os, a| math::cos(k, prof(os), f64_of(a[0])));
    m!(v, "asin", G::CMath, ["double"], |k, os, a| math::asin(k, prof(os), f64_of(a[0])));
    m!(v, "atan", G::CMath, ["double"], |k, os, a| math::atan(k, prof(os), f64_of(a[0])));
    m!(v, "floor", G::CMath, ["double"], |k, os, a| math::floor(k, prof(os), f64_of(a[0])));
    m!(v, "fabs", G::CMath, ["double"], |k, os, a| math::fabs(k, prof(os), f64_of(a[0])));
    m!(v, "pow", G::CMath, ["double", "double"], |k, os, a| {
        math::pow(k, prof(os), f64_of(a[0]), f64_of(a[1]))
    });
    m!(v, "fmod", G::CMath, ["double", "double"], |k, os, a| {
        math::fmod(k, prof(os), f64_of(a[0]), f64_of(a[1]))
    });
    m!(v, "frexp", G::CMath, ["double", "buffer"], |k, os, a| {
        math::frexp(k, prof(os), f64_of(a[0]), ptr(a[1]))
    });
    m!(v, "div", G::CMath, ["int", "int"], |k, os, a| {
        math::div(k, prof(os), int(a[0]), int(a[1]))
    });

    // ---- C time (8; absent on CE) ---------------------------------------
    if prof(os).has_time_group() {
        m!(v, "time", G::CTime, ["time_t_ptr"], |k, os, a| {
            time::time(k, prof(os), ptr(a[0]))
        });
        m!(v, "clock", G::CTime, [], |k, os, a| time::clock(k, prof(os)));
        m!(v, "difftime", G::CTime, ["int", "int"], |k, os, a| {
            time::difftime(k, prof(os), fd(a[0]), fd(a[1]))
        });
        m!(v, "gmtime", G::CTime, ["time_t_ptr"], |k, os, a| {
            time::gmtime(k, prof(os), ptr(a[0]))
        });
        m!(v, "localtime", G::CTime, ["time_t_ptr"], |k, os, a| {
            time::localtime(k, prof(os), ptr(a[0]))
        });
        m!(v, "mktime", G::CTime, ["tm_ptr"], |k, os, a| {
            time::mktime(k, prof(os), ptr(a[0]))
        });
        m!(v, "asctime", G::CTime, ["tm_ptr"], |k, os, a| {
            time::asctime(k, prof(os), ptr(a[0]))
        });
        m!(v, "ctime", G::CTime, ["time_t_ptr"], |k, os, a| {
            time::ctime(k, prof(os), ptr(a[0]))
        });
        m!(v, "strftime", G::CTime, ["buffer", "size", "cstring", "tm_ptr"], |k, os, a| {
            time::strftime(k, prof(os), ptr(a[0]), a[1], ptr(a[2]), ptr(a[3]))
        });
    }

    // CE's reduced stdio surface.
    if os == OsVariant::WinCe {
        v.retain(|entry| !NOT_ON_CE.contains(&entry.name));
    }
    let _ = uint(0); // helper shared with the other catalogs
    v
}
