//! The MuT catalogs: which calls are tested on which OS, with which
//! signatures.
//!
//! Mirrors the paper's experimental scope: ~143 Win32 system calls and the
//! C library on the Windows variants (71 system calls and a reduced C
//! library on CE; 10 calls absent from Windows 95), ~91 POSIX system calls
//! plus the same C library on Linux. GDI and device-driver calls are out
//! of scope, as in the paper.

mod clib;
mod posix;
mod win32;

use crate::datatype::TypeRegistry;
use crate::muts::Mut;
use crate::pools;
use sim_kernel::variant::OsVariant;

/// The data-type registry for an OS (POSIX vs Windows pools).
#[must_use]
pub fn registry_for(os: OsVariant) -> TypeRegistry {
    if os == OsVariant::Linux {
        pools::posix_types()
    } else {
        let mut reg = pools::windows_types();
        clib::register_wide_types(&mut reg);
        reg
    }
}

/// The complete MuT catalog for an OS: system calls plus C library.
#[must_use]
pub fn catalog_for(os: OsVariant) -> Vec<Mut> {
    let mut out = Vec::new();
    if os == OsVariant::Linux {
        out.extend(posix::posix_calls());
    } else {
        out.extend(win32::win32_calls(os));
    }
    out.extend(clib::c_library(os));
    out
}

/// Convenience: only the system-call MuTs.
#[must_use]
pub fn system_calls_for(os: OsVariant) -> Vec<Mut> {
    catalog_for(os)
        .into_iter()
        .filter(|m| !m.group.is_c_library())
        .collect()
}

/// Convenience: only the C-library MuTs.
#[must_use]
pub fn c_functions_for(os: OsVariant) -> Vec<Mut> {
    catalog_for(os)
        .into_iter()
        .filter(|m| m.group.is_c_library())
        .collect()
}

/// Declares one MuT. Usage:
/// `m!(vec, "name", Group, ["ty1", "ty2"], |k, os, a| dispatch-expr)`.
macro_rules! m {
    ($vec:ident, $name:literal, $group:expr, [$($ty:literal),* $(,)?], |$k:ident, $os:ident, $a:ident| $body:expr) => {
        $vec.push($crate::muts::Mut {
            name: $name,
            group: $group,
            params: vec![$($ty),*],
            dispatch: ::std::sync::Arc::new(
                move |$k: &mut ::sim_kernel::Kernel,
                      $os: ::sim_kernel::variant::OsVariant,
                      $a: &[u64]| {
                    let _ = $os;
                    let _ = &$a;
                    $body
                },
            ),
        });
    };
}
pub(crate) use m;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalog_sizes_match_paper_scope() {
        // Table 1's "Calls tested" row, within a small tolerance for the
        // reproduction (documented in EXPERIMENTS.md).
        let linux_sys = system_calls_for(OsVariant::Linux).len();
        assert!(
            (85..=95).contains(&linux_sys),
            "Linux system calls: {linux_sys} (paper: 91)"
        );
        for os in [OsVariant::Win98, OsVariant::WinNt4, OsVariant::Win2000, OsVariant::Win98Se] {
            let n = system_calls_for(os).len();
            assert!((135..=148).contains(&n), "{os} system calls: {n} (paper: 143)");
        }
        let w95 = system_calls_for(OsVariant::Win95).len();
        let w98 = system_calls_for(OsVariant::Win98).len();
        assert_eq!(w98 - w95, 10, "Windows 95 misses exactly 10 calls");
        let ce = system_calls_for(OsVariant::WinCe).len();
        assert!((65..=78).contains(&ce), "CE system calls: {ce} (paper: 71)");

        let c_linux = c_functions_for(OsVariant::Linux).len();
        let c_nt = c_functions_for(OsVariant::WinNt4).len();
        assert_eq!(c_linux, c_nt, "identical C library on both APIs");
        assert!((90..=100).contains(&c_nt), "C functions: {c_nt} (paper: 94)");
        let c_ce = c_functions_for(OsVariant::WinCe).len();
        assert!((75..=88).contains(&c_ce), "CE C functions: {c_ce} (paper: 82)");
    }

    #[test]
    fn every_mut_signature_resolves() {
        for os in OsVariant::ALL {
            let registry = registry_for(os);
            for m in catalog_for(os) {
                for ty in &m.params {
                    assert!(
                        registry.contains(ty),
                        "{os}: {} references unknown type {ty}",
                        m.name
                    );
                    assert!(!registry.pool(ty).is_empty());
                }
            }
        }
    }

    #[test]
    fn no_duplicate_names_per_os() {
        for os in OsVariant::ALL {
            let mut seen = HashSet::new();
            for m in catalog_for(os) {
                assert!(seen.insert(m.name), "{os}: duplicate MuT {}", m.name);
            }
        }
    }

    #[test]
    fn c_library_identical_across_desktop_windows_and_linux() {
        // Same names in the same order — the prerequisite for the paper's
        // identical-test-case comparison.
        let names = |os| {
            c_functions_for(os)
                .iter()
                .map(|m| m.name)
                .collect::<Vec<_>>()
        };
        let linux = names(OsVariant::Linux);
        for os in OsVariant::DESKTOP_WINDOWS {
            assert_eq!(names(os), linux, "{os}");
        }
    }

    #[test]
    fn table3_functions_present_on_their_variants() {
        for (name, os) in [
            ("GetThreadContext", OsVariant::Win95),
            ("DuplicateHandle", OsVariant::Win98),
            ("MsgWaitForMultipleObjectsEx", OsVariant::Win98),
            ("FileTimeToSystemTime", OsVariant::Win95),
            ("HeapCreate", OsVariant::Win95),
            ("CreateThread", OsVariant::Win98Se),
            ("InterlockedIncrement", OsVariant::WinCe),
            ("VirtualAlloc", OsVariant::WinCe),
            ("fwrite", OsVariant::Win98),
            ("strncpy", OsVariant::Win98),
        ] {
            assert!(
                catalog_for(os).iter().any(|m| m.name == name),
                "{name} missing from the {os} catalog"
            );
        }
        // MsgWaitForMultipleObjectsEx is absent on 95.
        assert!(!catalog_for(OsVariant::Win95)
            .iter()
            .any(|m| m.name == "MsgWaitForMultipleObjectsEx"));
        // The C time group is absent on CE.
        assert!(!catalog_for(OsVariant::WinCe)
            .iter()
            .any(|m| m.group == crate::muts::FunctionGroup::CTime));
    }
}
