//! Sharded campaign execution — the fleet path.
//!
//! Splits one campaign into per-MuT-range **shards**, fans the shards
//! across a worker pool, and merges the shard outputs into a report
//! that is **bit-identical** to [`run_campaign`](crate::campaign::run_campaign)
//! (the engine-equivalence matrix proves it on every variant).
//!
//! # Why the merge is sound
//!
//! A shard executes its MuT range exactly like the parallel engine's
//! clean pass: every case at **residue zero**, one packed record byte
//! per case. Clean-pass records are independent per MuT — no shard can
//! observe another shard's execution — so *any* partition of the
//! catalog produces the same record set, and the coordinator can merge
//! shard outputs by simply placing each MuT's records back at its
//! catalog index. The sequential **replay pass** (shared with the
//! parallel engine, same function) then walks the merged records in
//! catalog order with the one true session, re-executing exactly the
//! cases whose outcome could depend on accumulated residue. The fleet
//! path therefore inherits the parallel engine's bit-identity argument
//! wholesale; the only new claim is the trivial one that partitioning a
//! set of independent jobs does not change the jobs — and, with the
//! supervisor, that *re-executing* an independent job after a worker
//! death cannot change it either (a shard is a pure function of its
//! spec).
//!
//! # Process supervision
//!
//! With [`FleetConfig::process`] set, shards execute on **supervised
//! worker processes** (the `fleet_worker` binary, or whatever
//! `BALLISTA_WORKER_CMD` names) speaking a length-prefixed frame
//! protocol over stdin/stdout: the supervisor sends [`ShardSpec`] wire
//! bytes, the worker streams per-MuT heartbeat frames while it works
//! and finishes with [`ShardResult`] wire bytes. The supervisor tracks
//! every worker with a **deterministic heartbeat deadline** derived
//! from the campaign's fuel budget (host wall-clock is consulted only
//! at this supervision boundary, never inside the engine), and on
//! worker death, hang, or malformed reply it requeues the shard with
//! bounded exponential backoff onto a healthy worker, quarantining a
//! slot after K consecutive failures. When no worker survives — or no
//! worker binary can be found at all — the campaign **degrades
//! gracefully to the in-process thread pool** and completes with a
//! `fleet_degraded` marker and PARTIAL-DATA-style warnings instead of
//! aborting. None of this can change a tally bit: supervision is pure
//! control plane, and the merge consumes the same records no matter
//! which worker produced them on which attempt.
//!
//! # Fault injection
//!
//! Workers honor env-latched faults so chaos tests and CI can kill
//! them deterministically: `BALLISTA_FLEET_FAULT=die:N` exits the
//! process when its Nth shard arrives, `garble:N` replies to the Nth
//! shard with an unparseable result frame, `hang:N` goes silent
//! forever on the Nth shard. `BALLISTA_FLEET_SHARD_DELAY_MS` stretches
//! every shard (widening the window for real SIGKILLs), and
//! `BALLISTA_FLEET_DEADLINE_MS` overrides the heartbeat deadline so
//! hang detection is testable in milliseconds.

use std::io::{BufReader, Read, Write};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use sim_kernel::variant::OsVariant;

use crate::adaptive::AdaptiveConfig;
use crate::campaign::{
    clean_mut_quarantined, prepare, replay_pass, CampaignConfig, CampaignReport, CampaignStats,
    CleanMut, CleanRecords,
};
use crate::catalog;
use crate::exec::{self, Session};
use crate::telemetry::{self, TraceCollector};
use serde::{Deserialize, Serialize};

/// How a campaign is sharded and executed by [`run_campaign_fleet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FleetConfig {
    /// Shard count. `0` (the default) resolves to four shards per
    /// worker — small enough ranges that a slow shard cannot straggle
    /// the pool.
    #[serde(default)]
    pub shards: usize,
    /// Worker pool size. `0` (the default) picks the machine's
    /// available parallelism, like [`CampaignConfig::workers`].
    #[serde(default)]
    pub workers: usize,
    /// Execute shards on supervised worker **processes** instead of
    /// in-process threads. Workers are discovered via the
    /// `BALLISTA_WORKER_CMD` env var (whitespace-split command line) or
    /// a `fleet_worker` binary next to the current executable; when no
    /// worker can be spawned the campaign degrades to the thread pool.
    #[serde(default)]
    pub process: bool,
    /// Per-shard retry budget after worker failures before the
    /// supervisor executes the shard in-process. `0` (the default)
    /// resolves to 3.
    #[serde(default)]
    pub max_shard_retries: u32,
    /// Consecutive failures after which a worker slot is quarantined
    /// (no further respawns into it). `0` (the default) resolves to 2.
    #[serde(default)]
    pub worker_quarantine_after: u32,
}

impl FleetConfig {
    /// The effective worker count (`0` → available parallelism).
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        match self.workers {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            n => n,
        }
    }

    /// The effective shard count over a catalog of `muts` MuTs:
    /// `shards` (capped at the MuT count — an empty shard is useless),
    /// with `0` resolving to four per worker.
    #[must_use]
    pub fn effective_shards(&self, muts: usize) -> usize {
        let want = match self.shards {
            0 => self.effective_workers().saturating_mul(4),
            n => n,
        };
        want.clamp(1, muts.max(1))
    }

    /// The effective per-shard retry budget (`0` → 3).
    #[must_use]
    pub fn effective_max_shard_retries(&self) -> u32 {
        match self.max_shard_retries {
            0 => 3,
            n => n,
        }
    }

    /// The effective consecutive-failure quarantine threshold (`0` → 2).
    #[must_use]
    pub fn effective_quarantine_after(&self) -> u32 {
        match self.worker_quarantine_after {
            0 => 2,
            n => n,
        }
    }
}

/// One shard's work order: run the clean pass for the catalog MuTs in
/// `[mut_start, mut_end)` of `os`'s catalog under `cfg`.
///
/// Self-contained by design — a worker holding only this (plus the
/// code) produces its [`ShardResult`]; nothing else crosses the shard
/// boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// OS variant whose catalog the range indexes.
    pub os: OsVariant,
    /// Campaign configuration (cap, fuel budget, cleanup mode, …).
    pub cfg: CampaignConfig,
    /// First catalog MuT index of this shard (inclusive).
    pub mut_start: usize,
    /// One past the last catalog MuT index of this shard.
    pub mut_end: usize,
    /// Whether to capture the per-case fuel side channel (needed only
    /// when the coordinator is tracing).
    #[serde(default)]
    pub capture_fuel: bool,
    /// Run the shard in crashcon mode: each case executes with the
    /// filesystem op recorder armed and the wire records carry packed
    /// [`crate::crashcon::CaseVerdict`]s (with the aux counts on the
    /// fuel channel) instead of campaign outcome bytes. Absent in specs
    /// from older coordinators, which deserializes to `false`.
    #[serde(default)]
    pub crashcon: bool,
    /// Run the shard over an **adaptive pinned plan** instead of the
    /// fixed samples: the worker re-derives the pinned plan from these
    /// knobs (deterministic, memoized per process — see
    /// [`crate::adaptive::pinned_plan_shared`]) and executes each MuT's
    /// pinned case list. Absent in specs from older coordinators, which
    /// deserializes to `None` (classic mode).
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub adaptive: Option<AdaptiveConfig>,
}

impl ShardSpec {
    /// Serializes the spec for the wire.
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("shard spec serializes")
    }

    /// Parses a spec off the wire.
    ///
    /// # Errors
    ///
    /// Returns the parse error text for malformed bytes. Never panics —
    /// adversarial bytes are an expected input at a process boundary
    /// (asserted by the `wire_hardening` proptest).
    pub fn from_wire(bytes: &[u8]) -> Result<Self, String> {
        serde_json::from_slice(bytes).map_err(|e| e.to_string())
    }
}

/// One MuT's clean-pass output in wire form: the packed record byte per
/// case, the optional fuel side channel, or `None` for a MuT the shard
/// quarantined after repeated contained faults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireCleanMut {
    /// Packed record bytes, one per executed case ([`crate::crash::pack_case`]).
    pub records: Vec<u8>,
    /// Per-case fuel, present iff the spec asked for it.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub fuel: Option<Vec<u64>>,
}

/// A completed shard: per-MuT clean-pass outputs for the spec's range,
/// in range order, plus the shard's quarantine bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardResult {
    /// Echo of the spec's `mut_start`, so results self-describe their
    /// placement even when they arrive out of order.
    pub mut_start: usize,
    /// One entry per MuT in `[mut_start, mut_end)`; `None` marks a
    /// quarantined MuT.
    pub muts: Vec<Option<WireCleanMut>>,
    /// Human-readable quarantine/retry warnings, range order.
    #[serde(skip_serializing_if = "Vec::is_empty", default)]
    pub warnings: Vec<String>,
    /// Contained worker panics that earned a retry inside this shard.
    #[serde(default)]
    pub quarantine_retries: u64,
}

impl ShardResult {
    /// Serializes the result for the wire.
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("shard result serializes")
    }

    /// Parses a result off the wire.
    ///
    /// # Errors
    ///
    /// Returns the parse error text for malformed bytes. Never panics —
    /// adversarial bytes are an expected input at a process boundary
    /// (asserted by the `wire_hardening` proptest).
    pub fn from_wire(bytes: &[u8]) -> Result<Self, String> {
        serde_json::from_slice(bytes).map_err(|e| e.to_string())
    }

    /// Total executed cases recorded in this shard (for progress).
    fn case_count(&self) -> u64 {
        self.muts
            .iter()
            .flatten()
            .map(|m| m.records.len() as u64)
            .sum()
    }
}

// ---------------------------------------------------------------------
// Frame protocol (supervisor <-> worker process)
// ---------------------------------------------------------------------

/// Frame tag: a [`ShardSpec`] wire payload (supervisor → worker).
pub const FRAME_SPEC: u8 = b'S';
/// Frame tag: a [`ShardResult`] wire payload (worker → supervisor).
pub const FRAME_RESULT: u8 = b'R';
/// Frame tag: a [`Heartbeat`] payload (worker → supervisor), emitted
/// after every completed MuT so the supervisor can tell a slow shard
/// from a wedged worker.
pub const FRAME_HEARTBEAT: u8 = b'H';

/// Upper bound on a frame payload — anything larger is a protocol
/// fault, not a plausible shard.
const MAX_FRAME_LEN: usize = 1 << 28;

/// Worker liveness report: cumulative progress within the shard the
/// worker is currently executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Heartbeat {
    /// MuTs of the current shard completed so far.
    pub muts_done: u64,
    /// Clean-pass cases of the current shard executed so far.
    pub cases_done: u64,
}

/// Writes one `tag | u32-LE length | payload` frame.
///
/// # Errors
///
/// Propagates the underlying I/O error (a broken pipe here means the
/// peer died).
pub fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame payload too large")
    })?;
    w.write_all(&[tag])?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` is a clean EOF at a frame boundary.
///
/// # Errors
///
/// Returns an error for a truncated frame, an oversized length prefix,
/// or any underlying I/O failure — never panics, whatever the bytes.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<(u8, Vec<u8>)>> {
    let mut tag = [0u8; 1];
    if r.read(&mut tag)? == 0 {
        return Ok(None);
    }
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some((tag[0], payload)))
}

// ---------------------------------------------------------------------
// Env-latched fault injection (read by the worker process)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    Die,
    Garble,
    Hang,
}

fn parse_fault() -> Option<(FaultKind, u64)> {
    let latch = std::env::var("BALLISTA_FLEET_FAULT").ok()?;
    let (kind, nth) = latch.split_once(':')?;
    let nth = nth.parse().ok()?;
    let kind = match kind {
        "die" => FaultKind::Die,
        "garble" => FaultKind::Garble,
        "hang" => FaultKind::Hang,
        _ => return None,
    };
    Some((kind, nth))
}

fn env_ms(name: &str) -> Option<Duration> {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

/// Executes one shard: the clean pass for every MuT in the spec's
/// range, under the engines' shared quarantine fence. This is the whole
/// worker side of the protocol — a remote worker is this function plus
/// a transport.
#[must_use]
pub fn execute_shard(spec: &ShardSpec) -> ShardResult {
    execute_shard_observed(spec, &mut |_| {})
}

/// [`execute_shard`] with a per-MuT progress callback (the worker loop
/// turns each callback into a heartbeat frame).
pub fn execute_shard_observed(
    spec: &ShardSpec,
    on_progress: &mut dyn FnMut(Heartbeat),
) -> ShardResult {
    if let Some(delay) = env_ms("BALLISTA_FLEET_SHARD_DELAY_MS") {
        std::thread::sleep(delay);
    }
    let registry = catalog::registry_for(spec.os);
    let muts = catalog::catalog_for(spec.os);
    let end = spec.mut_end.min(muts.len());
    // Adaptive shards execute the pinned plan: the worker re-derives it
    // from the spec's knobs (one explore per process, memoized), so the
    // wire stays small and every worker pins the identical plan.
    let pin = spec
        .adaptive
        .as_ref()
        .map(|a| crate::adaptive::pinned_plan_shared(spec.os, &spec.cfg, a));
    let mut out = ShardResult {
        mut_start: spec.mut_start,
        muts: Vec::with_capacity(end.saturating_sub(spec.mut_start)),
        warnings: Vec::new(),
        quarantine_retries: 0,
    };
    let mut cases_done = 0u64;
    for (m_idx, m) in muts.iter().enumerate().take(end).skip(spec.mut_start) {
        let mut prep = prepare(&registry, m, &spec.cfg);
        if let Some(pin) = &pin {
            prep.plan = Arc::clone(&pin.muts[m_idx].plan);
        }
        telemetry::on_mut_begin(prep.plan.cases.len() as u64);
        if spec.crashcon {
            let (packed, aux) =
                crate::crashcon::crash_mut_records(spec.os, &prep, spec.cfg.effective_fuel_budget());
            cases_done += packed.len() as u64;
            out.muts.push(Some(WireCleanMut {
                records: packed,
                fuel: Some(aux),
            }));
            on_progress(Heartbeat {
                muts_done: out.muts.len() as u64,
                cases_done,
            });
            continue;
        }
        let mut retries = 0u64;
        let clean = clean_mut_quarantined(
            spec.os,
            &prep,
            spec.cfg.effective_fuel_budget(),
            spec.capture_fuel,
            &mut out.warnings,
            &mut retries,
        );
        out.quarantine_retries += retries;
        cases_done += clean.as_ref().map_or(0, |c| c.records.len() as u64);
        out.muts.push(clean.map(|c| WireCleanMut {
            records: c.records,
            fuel: c.fuel,
        }));
        on_progress(Heartbeat {
            muts_done: out.muts.len() as u64,
            cases_done,
        });
    }
    telemetry::on_shard_executed();
    out
}

/// The worker-process main loop: reads [`FRAME_SPEC`] frames off
/// `input`, executes each shard, streams [`FRAME_HEARTBEAT`] frames
/// while working, and answers with a [`FRAME_RESULT`] frame — until a
/// clean EOF (the supervisor closing the pipe is the shutdown signal).
///
/// Honors the env-latched fault injections described in the module
/// docs, so a test or CI job can make this worker die, garble, or hang
/// on an exact shard.
///
/// # Errors
///
/// Returns an error for malformed input frames or a broken output pipe;
/// the `fleet_worker` binary maps that to a nonzero exit.
pub fn worker_loop(input: impl Read, output: impl Write) -> std::io::Result<()> {
    let fault = parse_fault();
    let mut input = BufReader::new(input);
    let mut output = output;
    let mut shard_no = 0u64;
    loop {
        let Some((tag, payload)) = read_frame(&mut input)? else {
            return Ok(());
        };
        if tag != FRAME_SPEC {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("worker expected a spec frame, got tag {tag:#x}"),
            ));
        }
        shard_no += 1;
        match fault {
            Some((FaultKind::Die, nth)) if shard_no == nth => std::process::exit(9),
            Some((FaultKind::Hang, nth)) if shard_no == nth => loop {
                std::thread::sleep(Duration::from_secs(3600));
            },
            _ => {}
        }
        let spec = ShardSpec::from_wire(&payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let result = {
            let out = &mut output;
            execute_shard_observed(&spec, &mut |hb| {
                let payload = serde_json::to_vec(&hb).expect("heartbeat serializes");
                // A broken pipe surfaces on the result frame below; a
                // missed heartbeat on its own is not fatal.
                let _ = write_frame(out, FRAME_HEARTBEAT, &payload);
            })
        };
        if let Some((FaultKind::Garble, nth)) = fault {
            if shard_no == nth {
                write_frame(&mut output, FRAME_RESULT, b"\xff{definitely not a result")?;
                continue;
            }
        }
        write_frame(&mut output, FRAME_RESULT, &result.to_wire())?;
    }
}

// ---------------------------------------------------------------------
// Live progress
// ---------------------------------------------------------------------

/// Wait-free live progress of one fleet campaign, updated by the
/// supervisor (or the thread pool) and read by `GET /campaign/<fp>`
/// while the campaign is in flight.
#[derive(Debug, Default)]
pub struct FleetProgress {
    /// Total shards in the campaign.
    pub shards_total: AtomicU64,
    /// Shards merged so far.
    pub shards_done: AtomicU64,
    /// Clean-pass cases executed so far (heartbeat-granular for process
    /// workers, shard-granular for threads).
    pub cases_done: AtomicU64,
    /// Worker processes that died, hung, or replied with garbage.
    pub worker_deaths: AtomicU64,
    /// Shard re-executions after worker failures.
    pub shard_retries: AtomicU64,
    /// Worker processes currently alive.
    pub workers_live: AtomicU64,
    /// Whether the campaign has degraded below full process execution.
    pub degraded: AtomicBool,
}

/// Point-in-time serializable copy of a [`FleetProgress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FleetProgressSnapshot {
    /// Total shards in the campaign.
    pub shards_total: u64,
    /// Shards merged so far.
    pub shards_done: u64,
    /// Clean-pass cases executed so far.
    pub cases_done: u64,
    /// Worker deaths observed so far.
    pub worker_deaths: u64,
    /// Shard retries so far.
    pub shard_retries: u64,
    /// Worker processes currently alive.
    pub workers_live: u64,
    /// Whether execution has degraded below full process workers.
    pub degraded: bool,
}

impl FleetProgress {
    /// A point-in-time copy of the counters.
    #[must_use]
    pub fn snapshot(&self) -> FleetProgressSnapshot {
        FleetProgressSnapshot {
            shards_total: self.shards_total.load(Ordering::Relaxed),
            shards_done: self.shards_done.load(Ordering::Relaxed),
            cases_done: self.cases_done.load(Ordering::Relaxed),
            worker_deaths: self.worker_deaths.load(Ordering::Relaxed),
            shard_retries: self.shard_retries.load(Ordering::Relaxed),
            workers_live: self.workers_live.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
        }
    }

    /// Latches the degraded flag and counts the degradation (once).
    fn degrade(&self) {
        if !self.degraded.swap(true, Ordering::Relaxed) {
            telemetry::on_fleet_degraded();
        }
    }
}

// ---------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------

/// PIDs of all currently-live supervised workers, for tests that aim
/// real signals at them.
static WORKER_PIDS: Mutex<Vec<u32>> = Mutex::new(Vec::new());

/// Snapshot of the live supervised-worker PIDs across all campaigns in
/// this process — the chaos tests use it to aim real `SIGKILL`s.
#[must_use]
pub fn live_worker_pids() -> Vec<u32> {
    WORKER_PIDS.lock().expect("worker pid registry poisoned").clone()
}

/// The heartbeat deadline: the longest frame-to-frame silence the
/// supervisor tolerates before declaring a worker hung.
///
/// Derived deterministically from the campaign shape, not measured: a
/// worker heartbeats after every MuT, a MuT is at most `cap` cases, and
/// a case is fuel-capped at the budget — so the bound assumes a
/// pessimistic 10k fuel units per host millisecond and adds the
/// env-latched shard delay when present. `BALLISTA_FLEET_DEADLINE_MS`
/// overrides the whole computation for tests.
fn heartbeat_deadline(cfg: &CampaignConfig) -> Duration {
    if let Some(d) = env_ms("BALLISTA_FLEET_DEADLINE_MS") {
        return d + env_ms("BALLISTA_FLEET_SHARD_DELAY_MS").unwrap_or(Duration::ZERO);
    }
    let fuel = cfg.effective_fuel_budget();
    let cap = cfg.cap.max(1) as u64;
    let ms = 2_000 + cap.saturating_mul(fuel) / 10_000;
    Duration::from_millis(ms.clamp(2_000, 120_000))
        + env_ms("BALLISTA_FLEET_SHARD_DELAY_MS").unwrap_or(Duration::ZERO)
}

/// Bounded exponential backoff before a failed shard's next attempt:
/// 10ms doubling per attempt, capped at 640ms.
fn backoff_delay(attempt: u32) -> Duration {
    let ms = 10u64.saturating_mul(1 << attempt.saturating_sub(1).min(6));
    Duration::from_millis(ms.min(640))
}

/// Resolves the worker command line: `BALLISTA_WORKER_CMD` wins, else a
/// `fleet_worker` binary next to (or one directory above) the current
/// executable. `None` means process workers are unavailable and the
/// campaign degrades to threads.
fn worker_command() -> Option<Vec<String>> {
    if let Ok(cmd) = std::env::var("BALLISTA_WORKER_CMD") {
        let parts: Vec<String> = cmd.split_whitespace().map(str::to_owned).collect();
        return if parts.is_empty() { None } else { Some(parts) };
    }
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    for d in [Some(dir), dir.parent()].into_iter().flatten() {
        let cand = d.join("fleet_worker");
        if cand.is_file() {
            return Some(vec![cand.to_string_lossy().into_owned()]);
        }
    }
    None
}

/// A live worker process plus the channel its reader thread feeds.
struct WorkerHandle {
    child: Child,
    stdin: Option<ChildStdin>,
    frames: Receiver<std::io::Result<(u8, Vec<u8>)>>,
    pid: u32,
}

impl WorkerHandle {
    fn spawn(cmd: &[String]) -> std::io::Result<WorkerHandle> {
        let mut child = Command::new(&cmd[0])
            .args(&cmd[1..])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdin = child.stdin.take();
        let stdout = child.stdout.take().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::BrokenPipe, "worker stdout missing")
        })?;
        let pid = child.id();
        let (tx, rx) = std::sync::mpsc::channel();
        // The reader thread turns the pipe into timed frames: it ends
        // at EOF (dropping `tx`, which surfaces as a disconnect) or
        // after forwarding a read error.
        std::thread::spawn(move || {
            let mut stdout = BufReader::new(stdout);
            loop {
                match read_frame(&mut stdout) {
                    Ok(Some(frame)) => {
                        if tx.send(Ok(frame)).is_err() {
                            return;
                        }
                    }
                    Ok(None) => return,
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        return;
                    }
                }
            }
        });
        WORKER_PIDS
            .lock()
            .expect("worker pid registry poisoned")
            .push(pid);
        Ok(WorkerHandle {
            child,
            stdin,
            frames: rx,
            pid,
        })
    }

    /// Reaps the process: graceful (close stdin, wait for the EOF exit)
    /// or forced (SIGKILL).
    fn reap(mut self, graceful: bool) {
        drop(self.stdin.take());
        if !graceful {
            let _ = self.child.kill();
        }
        let _ = self.child.wait();
        WORKER_PIDS
            .lock()
            .expect("worker pid registry poisoned")
            .retain(|&p| p != self.pid);
    }
}

/// One queued shard attempt.
struct ShardJob {
    idx: usize,
    attempts: u32,
    ready_at: Instant,
}

struct QueueInner {
    pending: Vec<ShardJob>,
    completed: usize,
    total: usize,
}

/// The supervisor's work queue: shards waiting for a worker, including
/// failed shards serving out their backoff.
struct ShardQueue {
    inner: Mutex<QueueInner>,
    cv: Condvar,
}

impl ShardQueue {
    fn new(total: usize) -> ShardQueue {
        ShardQueue {
            inner: Mutex::new(QueueInner {
                pending: (0..total)
                    .map(|idx| ShardJob {
                        idx,
                        attempts: 0,
                        ready_at: Instant::now(),
                    })
                    .collect(),
                completed: 0,
                total,
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until a job is ready (its backoff has elapsed) or the
    /// campaign is complete (`None`). Lowest shard index wins ties so
    /// execution order stays as close to catalog order as failures
    /// allow.
    fn pop(&self) -> Option<ShardJob> {
        let mut g = self.inner.lock().expect("shard queue poisoned");
        loop {
            if g.completed >= g.total {
                return None;
            }
            let now = Instant::now();
            let ready = g
                .pending
                .iter()
                .enumerate()
                .filter(|(_, j)| j.ready_at <= now)
                .min_by_key(|(_, j)| j.idx)
                .map(|(pos, _)| pos);
            if let Some(pos) = ready {
                return Some(g.pending.swap_remove(pos));
            }
            let wait = g
                .pending
                .iter()
                .map(|j| j.ready_at.saturating_duration_since(now))
                .min()
                .unwrap_or(Duration::from_millis(50))
                .clamp(Duration::from_millis(1), Duration::from_millis(50));
            g = self
                .cv
                .wait_timeout(g, wait)
                .expect("shard queue poisoned")
                .0;
        }
    }

    fn push(&self, job: ShardJob) {
        self.inner
            .lock()
            .expect("shard queue poisoned")
            .pending
            .push(job);
        self.cv.notify_all();
    }

    fn complete(&self) {
        self.inner.lock().expect("shard queue poisoned").completed += 1;
        self.cv.notify_all();
    }

    /// Drains whatever is still pending (used after all slots retire).
    fn drain_pending(&self) -> Vec<ShardJob> {
        std::mem::take(&mut self.inner.lock().expect("shard queue poisoned").pending)
    }
}

/// Why a worker attempt on a shard failed.
enum WorkerFailure {
    Died(String),
    Hung,
    Malformed(String),
}

/// Shared context for the supervisor's slot threads.
struct Supervisor<'a> {
    specs: &'a [ShardSpec],
    wire: &'a [Vec<u8>],
    slots: &'a [Mutex<Option<ShardResult>>],
    queue: ShardQueue,
    progress: &'a FleetProgress,
    warnings: &'a Mutex<Vec<String>>,
    cmd: Vec<String>,
    deadline: Duration,
    max_retries: u32,
    quarantine_after: u32,
}

impl Supervisor<'_> {
    fn warn(&self, text: String) {
        self.warnings
            .lock()
            .expect("fleet warnings poisoned")
            .push(text);
    }

    /// Stores a completed shard and advances the campaign.
    fn store(&self, idx: usize, result: ShardResult, hb_cases_seen: u64) {
        let cases = result.case_count();
        self.progress
            .cases_done
            .fetch_add(cases.saturating_sub(hb_cases_seen), Ordering::Relaxed);
        self.progress.shards_done.fetch_add(1, Ordering::Relaxed);
        *self.slots[idx].lock().expect("shard slot poisoned") = Some(result);
        self.queue.complete();
    }

    /// Waits for the current shard's result, crediting heartbeats
    /// against the deadline. Returns the raw result payload and the
    /// heartbeat case count already credited to progress.
    fn await_result(
        &self,
        worker: &WorkerHandle,
        hb_cases: &mut u64,
    ) -> Result<Vec<u8>, WorkerFailure> {
        loop {
            match worker.frames.recv_timeout(self.deadline) {
                Ok(Ok((FRAME_HEARTBEAT, payload))) => {
                    if let Ok(hb) = serde_json::from_slice::<Heartbeat>(&payload) {
                        let delta = hb.cases_done.saturating_sub(*hb_cases);
                        *hb_cases = hb.cases_done;
                        self.progress.cases_done.fetch_add(delta, Ordering::Relaxed);
                    }
                }
                Ok(Ok((FRAME_RESULT, payload))) => return Ok(payload),
                Ok(Ok((tag, _))) => {
                    return Err(WorkerFailure::Malformed(format!(
                        "unexpected frame tag {tag:#x}"
                    )))
                }
                Ok(Err(e)) => return Err(WorkerFailure::Malformed(e.to_string())),
                Err(RecvTimeoutError::Timeout) => return Err(WorkerFailure::Hung),
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(WorkerFailure::Died("worker pipe closed".to_owned()))
                }
            }
        }
    }

    /// One slot's lifecycle: keep a worker process alive, feed it
    /// shards, and handle its failures until the campaign completes or
    /// the slot quarantines itself.
    fn slot_loop(&self) {
        let mut worker: Option<WorkerHandle> = None;
        let mut consecutive = 0u32;
        let mut spawned_before = false;
        while let Some(mut job) = self.queue.pop() {
            // Ensure a live worker in this slot.
            if worker.is_none() {
                match WorkerHandle::spawn(&self.cmd) {
                    Ok(h) => {
                        if spawned_before {
                            telemetry::on_worker_respawn();
                        }
                        spawned_before = true;
                        self.progress.workers_live.fetch_add(1, Ordering::Relaxed);
                        worker = Some(h);
                    }
                    Err(e) => {
                        consecutive += 1;
                        self.warn(format!("fleet supervisor could not spawn a worker: {e}"));
                        telemetry::on_shard_requeue();
                        self.queue.push(job);
                        if consecutive >= self.quarantine_after {
                            telemetry::on_worker_quarantined();
                            return;
                        }
                        std::thread::sleep(backoff_delay(consecutive));
                        continue;
                    }
                }
            }
            let h = worker.as_ref().expect("worker just ensured");
            let pid = h.pid;
            let mut hb_cases = 0u64;
            let sent = worker
                .as_mut()
                .and_then(|h| h.stdin.as_mut())
                .is_some_and(|stdin| write_frame(stdin, FRAME_SPEC, &self.wire[job.idx]).is_ok());
            let outcome = if sent {
                self.await_result(worker.as_ref().expect("worker alive"), &mut hb_cases)
            } else {
                Err(WorkerFailure::Died("worker stdin closed".to_owned()))
            };
            let failure = match outcome {
                Ok(payload) => match ShardResult::from_wire(&payload) {
                    Ok(result)
                        if result.mut_start == self.specs[job.idx].mut_start
                            && result.muts.len()
                                == self.specs[job.idx].mut_end - self.specs[job.idx].mut_start =>
                    {
                        telemetry::on_shard_executed();
                        self.store(job.idx, result, hb_cases);
                        consecutive = 0;
                        continue;
                    }
                    Ok(_) => {
                        telemetry::on_wire_protocol_fault();
                        WorkerFailure::Malformed("result does not match its spec".to_owned())
                    }
                    Err(e) => {
                        telemetry::on_wire_protocol_fault();
                        WorkerFailure::Malformed(e)
                    }
                },
                Err(f) => f,
            };
            // The worker failed this shard: count the death, roll back
            // its partial progress, and decide the shard's future.
            self.progress
                .cases_done
                .fetch_sub(hb_cases, Ordering::Relaxed);
            if let Some(h) = worker.take() {
                h.reap(false);
                self.progress.workers_live.fetch_sub(1, Ordering::Relaxed);
            }
            telemetry::on_worker_death();
            self.progress.worker_deaths.fetch_add(1, Ordering::Relaxed);
            consecutive += 1;
            job.attempts += 1;
            let what = match &failure {
                WorkerFailure::Died(e) => format!("died ({e})"),
                WorkerFailure::Hung => format!(
                    "missed its {}ms heartbeat deadline",
                    self.deadline.as_millis()
                ),
                WorkerFailure::Malformed(e) => format!("returned a malformed reply ({e})"),
            };
            if job.attempts > self.max_retries {
                // Retry budget exhausted: last resort is the supervisor
                // executing the shard in-process — degraded, never
                // aborted.
                self.warn(format!(
                    "fleet worker pid {pid} {what} on shard {}; retry budget exhausted, \
                     executing in-process",
                    job.idx
                ));
                self.progress.degrade();
                let result = execute_shard(&self.specs[job.idx]);
                self.store(job.idx, result, 0);
            } else {
                let backoff = backoff_delay(job.attempts);
                self.warn(format!(
                    "fleet worker pid {pid} {what} on shard {}; requeued with {}ms backoff \
                     (attempt {} of {})",
                    job.idx,
                    backoff.as_millis(),
                    job.attempts,
                    self.max_retries,
                ));
                telemetry::on_shard_retry(backoff.as_millis() as u64);
                telemetry::on_shard_requeue();
                self.progress.shard_retries.fetch_add(1, Ordering::Relaxed);
                job.ready_at = Instant::now() + backoff;
                self.queue.push(job);
            }
            if consecutive >= self.quarantine_after {
                self.warn(format!(
                    "fleet supervisor quarantined a worker slot after {consecutive} \
                     consecutive failures"
                ));
                telemetry::on_worker_quarantined();
                return;
            }
        }
        if let Some(h) = worker.take() {
            h.reap(true);
            self.progress.workers_live.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------
// Engines
// ---------------------------------------------------------------------

/// Executes `todo` (indices into `specs`) on an in-process thread pool
/// that still round-trips the wire protocol — with hardened parsing: a
/// malformed buffer counts a protocol fault and falls back to the typed
/// value instead of panicking.
fn run_shards_threaded(
    specs: &[ShardSpec],
    todo: &[usize],
    workers: usize,
    slots: &[Mutex<Option<ShardResult>>],
    counters: &Arc<exec::stats::Counters>,
    progress: &FleetProgress,
    warnings: &Mutex<Vec<String>>,
) {
    let next = AtomicUsize::new(0);
    let workers = workers.min(todo.len()).max(1);
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|_| {
                    exec::stats::install_sink(Arc::clone(counters));
                    loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&i) = todo.get(t) else { break };
                        let spec = match ShardSpec::from_wire(&specs[i].to_wire()) {
                            Ok(spec) => spec,
                            Err(e) => {
                                telemetry::on_wire_protocol_fault();
                                warnings.lock().expect("fleet warnings poisoned").push(
                                    format!("shard {i} spec failed the wire round-trip ({e}); \
                                             executing from the typed spec"),
                                );
                                specs[i].clone()
                            }
                        };
                        let result = execute_shard(&spec);
                        let result = match ShardResult::from_wire(&result.to_wire()) {
                            Ok(result) => result,
                            Err(e) => {
                                telemetry::on_wire_protocol_fault();
                                warnings.lock().expect("fleet warnings poisoned").push(
                                    format!("shard {i} result failed the wire round-trip ({e}); \
                                             keeping the typed result"),
                                );
                                result
                            }
                        };
                        progress
                            .cases_done
                            .fetch_add(result.case_count(), Ordering::Relaxed);
                        progress.shards_done.fetch_add(1, Ordering::Relaxed);
                        *slots[i].lock().expect("shard slot poisoned") = Some(result);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("fleet worker panicked");
        }
    })
    .expect("fleet scope panicked");
}

/// Runs the full campaign sharded across a worker pool, producing a
/// report **bit-identical** to [`run_campaign`](crate::campaign::run_campaign)
/// on the same `(os, cfg)`.
///
/// The coordinator cuts the catalog into contiguous MuT ranges, ships
/// each range through the wire protocol to the pool, reassembles the
/// clean-pass records at their catalog indices, and runs the shared
/// sequential replay pass — see the module docs for why this cannot
/// change a single tally bit.
///
/// # Example
///
/// ```no_run
/// use ballista::campaign::CampaignConfig;
/// use ballista::fleet::{run_campaign_fleet, FleetConfig};
/// use sim_kernel::variant::OsVariant;
///
/// let cfg = CampaignConfig { cap: 200, ..CampaignConfig::default() };
/// let fleet = FleetConfig { shards: 8, workers: 2, ..FleetConfig::default() };
/// let report = run_campaign_fleet(OsVariant::Win95, &cfg, &fleet);
/// println!("{} cases over 8 shards", report.total_cases);
/// ```
#[must_use]
pub fn run_campaign_fleet(os: OsVariant, cfg: &CampaignConfig, fleet: &FleetConfig) -> CampaignReport {
    run_campaign_fleet_observed(os, cfg, fleet, None)
}

/// Runs a **crashcon** campaign on the fleet: the same shard dispatch,
/// supervision, and degradation machinery as [`run_campaign_fleet`],
/// with each shard executing in crashcon mode ([`ShardSpec::crashcon`])
/// — packed [`crate::crashcon::CaseVerdict`] bytes ride the record
/// channel and the aux counts ride the fuel channel. Crashcon cases are
/// residue-free, so the merge is a pure commutative fold per MuT (no
/// replay pass), and the tallies are **bit-identical** to the serial
/// engine's on every shard/worker split.
#[must_use]
pub fn run_crashcon_fleet(
    os: OsVariant,
    cfg: &CampaignConfig,
    fleet: &FleetConfig,
) -> crate::crashcon::CrashconReport {
    let t0 = Instant::now();
    exec::stats::reset();
    let counters = Arc::new(exec::stats::Counters::default());
    exec::stats::install_sink(Arc::clone(&counters));
    let muts = catalog::catalog_for(os);
    let shard_count = fleet.effective_shards(muts.len());
    let workers = fleet.effective_workers().min(shard_count);
    let progress = FleetProgress::default();
    progress
        .shards_total
        .store(shard_count as u64, Ordering::Relaxed);
    let specs: Vec<ShardSpec> = (0..shard_count)
        .map(|s| ShardSpec {
            os,
            cfg: *cfg,
            mut_start: s * muts.len() / shard_count,
            mut_end: (s + 1) * muts.len() / shard_count,
            capture_fuel: true,
            crashcon: true,
            adaptive: None,
        })
        .collect();
    let result_slots: Vec<Mutex<Option<ShardResult>>> =
        specs.iter().map(|_| Mutex::new(None)).collect();
    let fleet_warnings = Mutex::new(Vec::new());
    dispatch_shards(
        &specs,
        fleet,
        workers,
        cfg,
        &result_slots,
        &counters,
        &progress,
        &fleet_warnings,
    );
    // Merge: fold each MuT's wire records into its tally at its catalog
    // index. Records are pure per-case verdicts, so the fold is
    // order-free and the shard partition is invisible in the result.
    let mut tallies = Vec::with_capacity(muts.len());
    for slot in result_slots {
        let shard = slot
            .into_inner()
            .expect("shard slot poisoned")
            .expect("every shard executed or degraded to the pool");
        debug_assert_eq!(shard.mut_start, tallies.len(), "shards merge in catalog order");
        for wire in shard.muts {
            let m = &muts[tallies.len()];
            let wire = wire.expect("crashcon shards do not quarantine MuTs");
            let aux = wire.fuel.expect("crashcon records always carry aux counts");
            tallies.push(crate::crashcon::fold_records(
                m.name, m.group, &wire.records, &aux,
            ));
        }
    }
    let warnings = fleet_warnings.into_inner().expect("fleet warnings poisoned");
    exec::stats::clear_sink();
    crate::crashcon::assemble(os, workers, tallies, warnings, 0, 0, &counters, t0)
}


/// Runs every shard spec to completion, filling `result_slots`: worker
/// processes under the [`Supervisor`] when `fleet.process` is set (with
/// graceful degradation to the in-process pool), plain worker threads
/// otherwise. Shared verbatim by the classic fleet campaign and the
/// crashcon fleet engine — the shard protocol is mode-agnostic.
#[allow(clippy::too_many_arguments)]
fn dispatch_shards(
    specs: &[ShardSpec],
    fleet: &FleetConfig,
    workers: usize,
    cfg: &CampaignConfig,
    result_slots: &[Mutex<Option<ShardResult>>],
    counters: &Arc<exec::stats::Counters>,
    progress: &FleetProgress,
    fleet_warnings: &Mutex<Vec<String>>,
) {
    if fleet.process {
        match worker_command() {
            Some(cmd) => {
                let wire: Vec<Vec<u8>> = specs.iter().map(ShardSpec::to_wire).collect();
                let sup = Supervisor {
                    specs,
                    wire: &wire,
                    slots: result_slots,
                    queue: ShardQueue::new(specs.len()),
                    progress,
                    warnings: fleet_warnings,
                    cmd,
                    deadline: heartbeat_deadline(cfg),
                    max_retries: fleet.effective_max_shard_retries(),
                    quarantine_after: fleet.effective_quarantine_after(),
                };
                std::thread::scope(|s| {
                    for _ in 0..workers {
                        s.spawn(|| sup.slot_loop());
                    }
                });
                // Every slot retired (quarantine or spawn failure) with
                // shards still pending: finish on the thread pool
                // rather than abort.
                let leftover: Vec<usize> =
                    sup.queue.drain_pending().iter().map(|j| j.idx).collect();
                if !leftover.is_empty() {
                    fleet_warnings.lock().expect("fleet warnings poisoned").push(format!(
                        "fleet degraded: no worker process survived; executing {} remaining \
                         shard(s) on the in-process pool",
                        leftover.len()
                    ));
                    progress.degrade();
                    run_shards_threaded(
                        specs,
                        &leftover,
                        workers,
                        result_slots,
                        counters,
                        progress,
                        fleet_warnings,
                    );
                }
            }
            None => {
                fleet_warnings.lock().expect("fleet warnings poisoned").push(
                    "fleet degraded: no worker binary found (set BALLISTA_WORKER_CMD or \
                     install fleet_worker next to this executable); executing on the \
                     in-process pool"
                        .to_owned(),
                );
                progress.degrade();
                let todo: Vec<usize> = (0..specs.len()).collect();
                run_shards_threaded(
                    specs,
                    &todo,
                    workers,
                    result_slots,
                    counters,
                    progress,
                    fleet_warnings,
                );
            }
        }
    } else {
        let todo: Vec<usize> = (0..specs.len()).collect();
        run_shards_threaded(
            specs,
            &todo,
            workers,
            result_slots,
            counters,
            progress,
            fleet_warnings,
        );
    }
}

/// [`run_campaign_fleet`] with live progress: the supervisor (or the
/// thread pool) updates `progress` as shards complete, so the serving
/// layer can answer in-flight `GET /campaign/<fp>` requests with real
/// shard/case counts.
#[must_use]
pub fn run_campaign_fleet_observed(
    os: OsVariant,
    cfg: &CampaignConfig,
    fleet: &FleetConfig,
    progress: Option<&FleetProgress>,
) -> CampaignReport {
    run_fleet_engine(os, cfg, fleet, progress, None)
}

/// The shared fleet-engine body behind the classic and adaptive
/// campaigns: with `adaptive` set, the coordinator derives the pinned
/// plan (before the stats epoch, so exploration never pollutes the
/// campaign counters), replays against pinned preps, and stamps every
/// shard spec with the adaptive knobs so workers re-derive the same
/// plan. Tallies stay bit-identical to the matching in-process engine
/// either way.
pub(crate) fn run_fleet_engine(
    os: OsVariant,
    cfg: &CampaignConfig,
    fleet: &FleetConfig,
    progress: Option<&FleetProgress>,
    adaptive: Option<&AdaptiveConfig>,
) -> CampaignReport {
    let own_progress;
    let progress = match progress {
        Some(p) => p,
        None => {
            own_progress = FleetProgress::default();
            &own_progress
        }
    };
    let pin = adaptive.map(|a| crate::adaptive::pinned_plan_shared(os, cfg, a));
    let t0 = Instant::now();
    exec::stats::reset();
    let counters = Arc::new(exec::stats::Counters::default());
    exec::stats::install_sink(Arc::clone(&counters));
    telemetry::on_campaign_begin();
    let mut tc = TraceCollector::begin(os, cfg.cap as u64);
    let registry = catalog::registry_for(os);
    let muts = catalog::catalog_for(os);
    let preps: Vec<_> = match &pin {
        Some(pin) => crate::adaptive::pinned_preps(&registry, &muts, pin),
        None => muts.iter().map(|m| prepare(&registry, m, cfg)).collect(),
    };

    let shard_count = fleet.effective_shards(muts.len());
    let workers = fleet.effective_workers().min(shard_count);
    progress
        .shards_total
        .store(shard_count as u64, Ordering::Relaxed);
    let specs: Vec<ShardSpec> = (0..shard_count)
        .map(|s| ShardSpec {
            os,
            cfg: *cfg,
            mut_start: s * muts.len() / shard_count,
            mut_end: (s + 1) * muts.len() / shard_count,
            capture_fuel: tc.is_some(),
            crashcon: false,
            adaptive: adaptive.copied(),
        })
        .collect();

    let result_slots: Vec<Mutex<Option<ShardResult>>> =
        specs.iter().map(|_| Mutex::new(None)).collect();
    let fleet_warnings = Mutex::new(Vec::new());
    dispatch_shards(
        &specs,
        fleet,
        workers,
        cfg,
        &result_slots,
        &counters,
        progress,
        &fleet_warnings,
    );

    // Merge: place every MuT's records back at its catalog index. Shard
    // ranges partition the catalog, so this is a permutation-free
    // reassembly — then the shared replay pass does the rest.
    let mut records: Vec<CleanRecords> = Vec::with_capacity(muts.len());
    let mut warnings = Vec::new();
    let mut retries = 0u64;
    for slot in result_slots {
        let shard = slot
            .into_inner()
            .expect("shard slot poisoned")
            .expect("every shard executed or degraded to the pool");
        debug_assert_eq!(shard.mut_start, records.len(), "shards merge in catalog order");
        retries += shard.quarantine_retries;
        warnings.extend(shard.warnings);
        records.extend(shard.muts.into_iter().map(|m| {
            m.map(|w| CleanMut {
                records: w.records,
                fuel: w.fuel,
            })
        }));
    }
    warnings.extend(fleet_warnings.into_inner().expect("fleet warnings poisoned"));
    let degraded = records.iter().any(Option::is_none);
    let mut session = Session::new();
    let (tallies, replayed) = replay_pass(os, cfg, &preps, &records, &mut session, &mut tc);
    if let Some(tc) = tc {
        tc.finish();
    }
    telemetry::on_campaign_end();
    exec::stats::clear_sink();
    let total_cases = tallies.iter().map(|t| t.cases).sum::<usize>();
    let wall = t0.elapsed().as_secs_f64();
    let (boots, restores, boot_ns, restore_ns) = counters.snapshot();
    let stats = CampaignStats {
        parallelism: workers,
        wall_ms: wall * 1e3,
        cases_per_sec: total_cases as f64 / wall.max(1e-9),
        boots,
        restores,
        boot_ms: boot_ns as f64 / 1e6,
        restore_ms: restore_ns as f64 / 1e6,
        replayed_cases: replayed,
        quarantine_retries: retries,
        journal_fsyncs: 0,
        restores_fast: counters.restores_fast.load(Ordering::Relaxed),
        restores_full: counters.restores_full.load(Ordering::Relaxed),
        probe_provisions: counters.probe_provisions.load(Ordering::Relaxed),
        crashcon_snapshots: counters.crashcon_snapshots.load(Ordering::Relaxed),
        crashcon_remounts: counters.crashcon_remounts.load(Ordering::Relaxed),
    };
    CampaignReport {
        os,
        muts: tallies,
        total_cases,
        stats: Some(stats),
        warnings,
        degraded,
        fleet_degraded: progress.degraded.load(Ordering::Relaxed),
    }
}
