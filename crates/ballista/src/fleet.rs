//! Sharded campaign execution — the fleet path.
//!
//! Splits one campaign into per-MuT-range **shards**, fans the shards
//! across a worker pool, and merges the shard outputs into a report
//! that is **bit-identical** to [`run_campaign`](crate::campaign::run_campaign)
//! (the engine-equivalence matrix proves it on every variant).
//!
//! # Why the merge is sound
//!
//! A shard executes its MuT range exactly like the parallel engine's
//! clean pass: every case at **residue zero**, one packed record byte
//! per case. Clean-pass records are independent per MuT — no shard can
//! observe another shard's execution — so *any* partition of the
//! catalog produces the same record set, and the coordinator can merge
//! shard outputs by simply placing each MuT's records back at its
//! catalog index. The sequential **replay pass** (shared with the
//! parallel engine, same function) then walks the merged records in
//! catalog order with the one true session, re-executing exactly the
//! cases whose outcome could depend on accumulated residue. The fleet
//! path therefore inherits the parallel engine's bit-identity argument
//! wholesale; the only new claim is the trivial one that partitioning a
//! set of independent jobs does not change the jobs.
//!
//! # Process-shape protocol
//!
//! Workers are threads today, but the shard boundary is a wire
//! protocol, not a function call: each [`ShardSpec`] is serialized
//! with [`ShardSpec::to_wire`], crosses to the worker as bytes, and the
//! [`ShardResult`] comes back the same way — the in-process pool
//! round-trips both for real, so promoting workers to remote processes
//! is a transport change, not a redesign. Everything a worker needs is
//! in the spec (variant + config + MuT index range); everything the
//! coordinator needs is in the result (per-MuT packed records, fuel
//! side channel, quarantine warnings).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use sim_kernel::variant::OsVariant;

use crate::campaign::{
    clean_mut_quarantined, prepare, replay_pass, CampaignConfig, CampaignReport, CampaignStats,
    CleanMut, CleanRecords,
};
use crate::catalog;
use crate::exec::{self, Session};
use crate::telemetry::{self, TraceCollector};
use serde::{Deserialize, Serialize};

/// How a campaign is sharded and executed by [`run_campaign_fleet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FleetConfig {
    /// Shard count. `0` (the default) resolves to four shards per
    /// worker — small enough ranges that a slow shard cannot straggle
    /// the pool.
    #[serde(default)]
    pub shards: usize,
    /// Worker pool size. `0` (the default) picks the machine's
    /// available parallelism, like [`CampaignConfig::workers`].
    #[serde(default)]
    pub workers: usize,
}

impl FleetConfig {
    /// The effective worker count (`0` → available parallelism).
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        match self.workers {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            n => n,
        }
    }

    /// The effective shard count over a catalog of `muts` MuTs:
    /// `shards` (capped at the MuT count — an empty shard is useless),
    /// with `0` resolving to four per worker.
    #[must_use]
    pub fn effective_shards(&self, muts: usize) -> usize {
        let want = match self.shards {
            0 => self.effective_workers().saturating_mul(4),
            n => n,
        };
        want.clamp(1, muts.max(1))
    }
}

/// One shard's work order: run the clean pass for the catalog MuTs in
/// `[mut_start, mut_end)` of `os`'s catalog under `cfg`.
///
/// Self-contained by design — a worker holding only this (plus the
/// code) produces its [`ShardResult`]; nothing else crosses the shard
/// boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// OS variant whose catalog the range indexes.
    pub os: OsVariant,
    /// Campaign configuration (cap, fuel budget, cleanup mode, …).
    pub cfg: CampaignConfig,
    /// First catalog MuT index of this shard (inclusive).
    pub mut_start: usize,
    /// One past the last catalog MuT index of this shard.
    pub mut_end: usize,
    /// Whether to capture the per-case fuel side channel (needed only
    /// when the coordinator is tracing).
    #[serde(default)]
    pub capture_fuel: bool,
}

impl ShardSpec {
    /// Serializes the spec for the wire.
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("shard spec serializes")
    }

    /// Parses a spec off the wire.
    ///
    /// # Errors
    ///
    /// Returns the parse error text for malformed bytes.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, String> {
        serde_json::from_slice(bytes).map_err(|e| e.to_string())
    }
}

/// One MuT's clean-pass output in wire form: the packed record byte per
/// case, the optional fuel side channel, or `None` for a MuT the shard
/// quarantined after repeated contained faults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireCleanMut {
    /// Packed record bytes, one per executed case ([`crate::crash::pack_case`]).
    pub records: Vec<u8>,
    /// Per-case fuel, present iff the spec asked for it.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub fuel: Option<Vec<u64>>,
}

/// A completed shard: per-MuT clean-pass outputs for the spec's range,
/// in range order, plus the shard's quarantine bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardResult {
    /// Echo of the spec's `mut_start`, so results self-describe their
    /// placement even when they arrive out of order.
    pub mut_start: usize,
    /// One entry per MuT in `[mut_start, mut_end)`; `None` marks a
    /// quarantined MuT.
    pub muts: Vec<Option<WireCleanMut>>,
    /// Human-readable quarantine/retry warnings, range order.
    #[serde(skip_serializing_if = "Vec::is_empty", default)]
    pub warnings: Vec<String>,
    /// Contained worker panics that earned a retry inside this shard.
    #[serde(default)]
    pub quarantine_retries: u64,
}

impl ShardResult {
    /// Serializes the result for the wire.
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("shard result serializes")
    }

    /// Parses a result off the wire.
    ///
    /// # Errors
    ///
    /// Returns the parse error text for malformed bytes.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, String> {
        serde_json::from_slice(bytes).map_err(|e| e.to_string())
    }
}

/// Executes one shard: the clean pass for every MuT in the spec's
/// range, under the engines' shared quarantine fence. This is the whole
/// worker side of the protocol — a remote worker is this function plus
/// a transport.
#[must_use]
pub fn execute_shard(spec: &ShardSpec) -> ShardResult {
    let registry = catalog::registry_for(spec.os);
    let muts = catalog::catalog_for(spec.os);
    let end = spec.mut_end.min(muts.len());
    let mut out = ShardResult {
        mut_start: spec.mut_start,
        muts: Vec::with_capacity(end.saturating_sub(spec.mut_start)),
        warnings: Vec::new(),
        quarantine_retries: 0,
    };
    for m in muts.iter().take(end).skip(spec.mut_start) {
        let prep = prepare(&registry, m, &spec.cfg);
        telemetry::on_mut_begin(prep.plan.cases.len() as u64);
        let mut retries = 0u64;
        let clean = clean_mut_quarantined(
            spec.os,
            &prep,
            spec.cfg.effective_fuel_budget(),
            spec.capture_fuel,
            &mut out.warnings,
            &mut retries,
        );
        out.quarantine_retries += retries;
        out.muts.push(clean.map(|c| WireCleanMut {
            records: c.records,
            fuel: c.fuel,
        }));
    }
    telemetry::on_shard_executed();
    out
}

/// Runs the full campaign sharded across a worker pool, producing a
/// report **bit-identical** to [`run_campaign`](crate::campaign::run_campaign)
/// on the same `(os, cfg)`.
///
/// The coordinator cuts the catalog into contiguous MuT ranges, ships
/// each range through the wire protocol to the pool, reassembles the
/// clean-pass records at their catalog indices, and runs the shared
/// sequential replay pass — see the module docs for why this cannot
/// change a single tally bit.
///
/// # Example
///
/// ```no_run
/// use ballista::campaign::CampaignConfig;
/// use ballista::fleet::{run_campaign_fleet, FleetConfig};
/// use sim_kernel::variant::OsVariant;
///
/// let cfg = CampaignConfig { cap: 200, ..CampaignConfig::default() };
/// let fleet = FleetConfig { shards: 8, workers: 2 };
/// let report = run_campaign_fleet(OsVariant::Win95, &cfg, &fleet);
/// println!("{} cases over 8 shards", report.total_cases);
/// ```
#[must_use]
pub fn run_campaign_fleet(os: OsVariant, cfg: &CampaignConfig, fleet: &FleetConfig) -> CampaignReport {
    let t0 = Instant::now();
    exec::stats::reset();
    let counters = Arc::new(exec::stats::Counters::default());
    exec::stats::install_sink(Arc::clone(&counters));
    telemetry::on_campaign_begin();
    let mut tc = TraceCollector::begin(os, cfg.cap as u64);
    let registry = catalog::registry_for(os);
    let muts = catalog::catalog_for(os);
    let preps: Vec<_> = muts.iter().map(|m| prepare(&registry, m, cfg)).collect();

    let shard_count = fleet.effective_shards(muts.len());
    let workers = fleet.effective_workers().min(shard_count);
    let specs: Vec<Vec<u8>> = (0..shard_count)
        .map(|s| {
            ShardSpec {
                os,
                cfg: *cfg,
                mut_start: s * muts.len() / shard_count,
                mut_end: (s + 1) * muts.len() / shard_count,
                capture_fuel: tc.is_some(),
            }
            .to_wire()
        })
        .collect();

    // The in-process pool still speaks the wire protocol: specs go in
    // as bytes, results come back as bytes, so the thread worker and a
    // future remote worker run the identical code path.
    let result_slots: Vec<Mutex<Option<ShardResult>>> =
        specs.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|_| {
                    exec::stats::install_sink(Arc::clone(&counters));
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(wire_spec) = specs.get(i) else { break };
                        let spec = ShardSpec::from_wire(wire_spec).expect("wire spec round-trips");
                        let wire_result = execute_shard(&spec).to_wire();
                        let result =
                            ShardResult::from_wire(&wire_result).expect("wire result round-trips");
                        *result_slots[i].lock().expect("shard slot poisoned") = Some(result);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("fleet worker panicked");
        }
    })
    .expect("fleet scope panicked");

    // Merge: place every MuT's records back at its catalog index. Shard
    // ranges partition the catalog, so this is a permutation-free
    // reassembly — then the shared replay pass does the rest.
    let mut records: Vec<CleanRecords> = Vec::with_capacity(muts.len());
    let mut warnings = Vec::new();
    let mut retries = 0u64;
    for slot in result_slots {
        let shard = slot
            .into_inner()
            .expect("shard slot poisoned")
            .expect("every shard executed");
        debug_assert_eq!(shard.mut_start, records.len(), "shards merge in catalog order");
        retries += shard.quarantine_retries;
        warnings.extend(shard.warnings);
        records.extend(shard.muts.into_iter().map(|m| {
            m.map(|w| CleanMut {
                records: w.records,
                fuel: w.fuel,
            })
        }));
    }
    let degraded = records.iter().any(Option::is_none);
    let mut session = Session::new();
    let (tallies, replayed) = replay_pass(os, cfg, &preps, &records, &mut session, &mut tc);
    if let Some(tc) = tc {
        tc.finish();
    }
    telemetry::on_campaign_end();
    exec::stats::clear_sink();
    let total_cases = tallies.iter().map(|t| t.cases).sum::<usize>();
    let wall = t0.elapsed().as_secs_f64();
    let (boots, restores, boot_ns, restore_ns) = counters.snapshot();
    let stats = CampaignStats {
        parallelism: workers,
        wall_ms: wall * 1e3,
        cases_per_sec: total_cases as f64 / wall.max(1e-9),
        boots,
        restores,
        boot_ms: boot_ns as f64 / 1e6,
        restore_ms: restore_ns as f64 / 1e6,
        replayed_cases: replayed,
        quarantine_retries: retries,
        journal_fsyncs: 0,
        restores_fast: counters.restores_fast.load(Ordering::Relaxed),
        restores_full: counters.restores_full.load(Ordering::Relaxed),
        probe_provisions: counters.probe_provisions.load(Ordering::Relaxed),
    };
    CampaignReport {
        os,
        muts: tallies,
        total_cases,
        stats: Some(stats),
        warnings,
        degraded,
    }
}
