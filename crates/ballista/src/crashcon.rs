//! Bounded crash-consistency campaigns over the simulated filesystem.
//!
//! This is the ballista half of the B3 port ("Finding Crash-Consistency
//! Bugs with Bounded Black-Box Crash Testing", OSDI '18), grafted onto
//! the paper's robustness-campaign protocol: every catalog MuT runs its
//! sampled cases on a pristine machine with the filesystem op recorder
//! armed ([`sim_kernel::fs::FileSystem::set_crash_recording`]); for each
//! bounded crash point of the recorded log
//! ([`sim_kernel::crashfs::crash_points`]) the engine materializes the
//! post-crash image, "remounts" it into a resident verification kernel,
//! and judges four consistency oracles:
//!
//! 1. **well-formed** — the remounted node tree is structurally sound
//!    (every reachable node live and visited once, no stray live nodes);
//! 2. **open-table** — a freshly remounted image has no open-file
//!    descriptors, and none that dangle onto dead nodes;
//! 3. **durability** — the image agrees with the independent flat model
//!    ([`sim_kernel::crashfs::spec_of_ops`]) of the surviving op
//!    sequence everywhere outside rename-involved paths; because
//!    drop-one reordering never reaches at or before the last
//!    [`sim_kernel::fs::FsOp::Barrier`], this subsumes prefix
//!    durability of flushed writes;
//! 4. **rename** — the same image-versus-model comparison restricted to
//!    paths a surviving rename touched, so a torn two-step rename (see
//!    [`crate::exec::fault::arm_broken_rename`]) is attributed to the
//!    operation that lost the data.
//!
//! On the paper's CRASH scale an inconsistent case is a **Silent**
//! failure: the API reported success while quietly leaving state that a
//! crash would corrupt. [`CrashTally::inconsistent_cases`] is therefore
//! the mode's Silent count.
//!
//! Crashcon cases are **residue-free**: every case runs at session
//! residue zero, so per-case verdicts are pure functions of the case and
//! the per-MuT tallies fold commutatively. That is what buys the engine
//! matrix — serial, parallel, journaled-resume, and fleet all produce
//! **bit-identical** tallies (asserted by `tests/crashcon_determinism.rs`
//! and the engine-equivalence suite), and verdicts are independent of
//! the order crash points are evaluated in
//! ([`Verifier::evaluate_ordered`]).
//!
//! Machine accounting: a crash-point image clone is **not** a machine
//! restore. Snapshots and remounts count under the dedicated
//! `crashcon_snapshots` / `crashcon_remounts` metrics
//! (`exec::stats::record_crashcon`), leaving the
//! `restores == executed cases` invariant of the classic engines intact.

use crate::campaign::{
    self, CampaignConfig, CampaignFingerprint, CampaignStats, PreparedMut,
};
use crate::catalog;
use crate::exec::{self, fault, CaseRunner, Session};
use crate::journal::{CaseRecord, Journal, Recovery};
use crate::muts::FunctionGroup;
use serde::{Deserialize, Serialize};
use sim_kernel::crashfs::{self, CrashPoint, SpecNode, SpecTree};
use sim_kernel::fs::{FileSystem, FsOp};
use sim_kernel::variant::OsVariant;
use sim_kernel::{Kernel, MachineFlavor};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Engine-mode tag folded into the crashcon plan fingerprint, so a
/// crashcon journal or cache entry can never collide with a classic
/// campaign over the same plan.
pub const MODE_TAG: &str = "crashcon/1";

/// Packed-byte bit: the case recorded at least one filesystem op.
pub const PACK_ACTIVE: u8 = 1 << 0;
/// Packed-byte bit: some crash point failed the well-formedness oracle.
pub const PACK_WELL_FORMED: u8 = 1 << 1;
/// Packed-byte bit: some crash point failed the open-table oracle.
pub const PACK_OPEN_TABLE: u8 = 1 << 2;
/// Packed-byte bit: some crash point failed the durability oracle.
pub const PACK_DURABILITY: u8 = 1 << 3;
/// Packed-byte bit: some crash point failed the rename oracle.
pub const PACK_RENAME: u8 = 1 << 4;
/// Packed-byte bit: the op log hit [`sim_kernel::fs::MAX_OPLOG`] and was
/// truncated (crash points cover only the recorded prefix).
pub const PACK_TRUNCATED: u8 = 1 << 5;

/// One case's crash-consistency verdict: what the recorder captured and
/// what the oracles found across every bounded crash point.
///
/// Packs to a `(u8, u64)` pair that rides the same per-case channels the
/// classic engines use for `(packed outcome, fuel)` — the journal's
/// [`CaseRecord`] and the fleet's wire records — so the crashcon mode
/// reuses the journal format and shard protocol unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CaseVerdict {
    /// Filesystem ops the case recorded (bounded by
    /// [`sim_kernel::fs::MAX_OPLOG`]).
    pub ops: u32,
    /// Whether the op log was truncated at the recording bound.
    pub truncated: bool,
    /// Bounded crash points enumerated for the log.
    pub points: u32,
    /// Crash points failing at least one oracle.
    pub inconsistent: u32,
    /// Any crash point failed the well-formedness oracle.
    pub viol_well_formed: bool,
    /// Any crash point failed the open-table oracle.
    pub viol_open_table: bool,
    /// Any crash point failed the durability oracle.
    pub viol_durability: bool,
    /// Any crash point failed the rename oracle.
    pub viol_rename: bool,
}

impl CaseVerdict {
    /// Packs into the `(packed, aux)` pair: flag bits in the byte,
    /// `ops << 40 | points << 20 | inconsistent` in the aux word. All
    /// three counts fit with room to spare — ops are bounded by
    /// [`sim_kernel::fs::MAX_OPLOG`] (256) and points by roughly
    /// `ops × (REORDER_WINDOW + 1)`.
    #[must_use]
    pub fn pack(&self) -> (u8, u64) {
        let mut packed = 0u8;
        if self.ops > 0 {
            packed |= PACK_ACTIVE;
        }
        if self.viol_well_formed {
            packed |= PACK_WELL_FORMED;
        }
        if self.viol_open_table {
            packed |= PACK_OPEN_TABLE;
        }
        if self.viol_durability {
            packed |= PACK_DURABILITY;
        }
        if self.viol_rename {
            packed |= PACK_RENAME;
        }
        if self.truncated {
            packed |= PACK_TRUNCATED;
        }
        let aux = (u64::from(self.ops) << 40)
            | (u64::from(self.points) << 20)
            | u64::from(self.inconsistent);
        (packed, aux)
    }

    /// Inverse of [`pack`](Self::pack). Lossless except for the exact op
    /// count of an inactive case (zero either way).
    #[must_use]
    pub fn unpack(packed: u8, aux: u64) -> CaseVerdict {
        CaseVerdict {
            ops: ((aux >> 40) & 0xFF_FFFF) as u32,
            truncated: packed & PACK_TRUNCATED != 0,
            points: ((aux >> 20) & 0xF_FFFF) as u32,
            inconsistent: (aux & 0xF_FFFF) as u32,
            viol_well_formed: packed & PACK_WELL_FORMED != 0,
            viol_open_table: packed & PACK_OPEN_TABLE != 0,
            viol_durability: packed & PACK_DURABILITY != 0,
            viol_rename: packed & PACK_RENAME != 0,
        }
    }
}

/// Per-MuT crash-consistency tally. Every field is a sum or count over
/// per-case verdicts, so folding is commutative: any partition of the
/// cases, folded in any order, produces the same tally — the keystone of
/// the cross-engine bit-identity contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashTally {
    /// Call name.
    pub name: String,
    /// Functional grouping.
    pub group: FunctionGroup,
    /// Cases executed.
    pub cases: usize,
    /// Cases that recorded at least one filesystem op.
    pub active_cases: usize,
    /// Cases whose op log hit the recording bound.
    pub truncated_cases: usize,
    /// Total filesystem ops recorded.
    pub ops_recorded: u64,
    /// Total bounded crash points enumerated.
    pub crash_points: u64,
    /// Crash points failing at least one oracle.
    pub inconsistent_points: u64,
    /// Cases with at least one inconsistent crash point — the mode's
    /// Silent count on the CRASH scale.
    pub inconsistent_cases: usize,
    /// Cases where some point failed the well-formedness oracle.
    pub viol_well_formed: usize,
    /// Cases where some point failed the open-table oracle.
    pub viol_open_table: usize,
    /// Cases where some point failed the durability oracle.
    pub viol_durability: usize,
    /// Cases where some point failed the rename oracle.
    pub viol_rename: usize,
}

impl CrashTally {
    /// An empty tally for one MuT.
    #[must_use]
    pub fn new(name: &str, group: FunctionGroup) -> CrashTally {
        CrashTally {
            name: name.to_owned(),
            group,
            cases: 0,
            active_cases: 0,
            truncated_cases: 0,
            ops_recorded: 0,
            crash_points: 0,
            inconsistent_points: 0,
            inconsistent_cases: 0,
            viol_well_formed: 0,
            viol_open_table: 0,
            viol_durability: 0,
            viol_rename: 0,
        }
    }

    /// Folds one packed per-case record into the tally — the single
    /// source of tally semantics for every engine (live execution,
    /// journal replay, and fleet merge all call this), so they cannot
    /// drift apart.
    pub fn fold(&mut self, packed: u8, aux: u64) {
        let v = CaseVerdict::unpack(packed, aux);
        self.cases += 1;
        self.active_cases += usize::from(packed & PACK_ACTIVE != 0);
        self.truncated_cases += usize::from(v.truncated);
        self.ops_recorded += u64::from(v.ops);
        self.crash_points += u64::from(v.points);
        self.inconsistent_points += u64::from(v.inconsistent);
        self.inconsistent_cases += usize::from(v.inconsistent > 0);
        self.viol_well_formed += usize::from(v.viol_well_formed);
        self.viol_open_table += usize::from(v.viol_open_table);
        self.viol_durability += usize::from(v.viol_durability);
        self.viol_rename += usize::from(v.viol_rename);
    }

    /// Whether every crash point of every case passed every oracle.
    #[must_use]
    pub fn consistent(&self) -> bool {
        self.inconsistent_cases == 0
    }
}

/// A full crashcon campaign's results on one OS.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrashconReport {
    /// The OS under test.
    pub os: OsVariant,
    /// Per-MuT tallies, in catalog order.
    pub muts: Vec<CrashTally>,
    /// Total cases executed.
    pub total_cases: usize,
    /// Total bounded crash points judged.
    pub total_points: u64,
    /// Total inconsistent crash points.
    pub total_inconsistent: u64,
    /// Timing/provisioning counters (never part of the tally
    /// bit-identity contract).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub stats: Option<CampaignStats>,
    /// Resume/recovery notes (never part of the bit-identity contract).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub warnings: Vec<String>,
}

impl CrashconReport {
    /// Whether every crash point of every case on every MuT passed.
    #[must_use]
    pub fn consistent(&self) -> bool {
        self.muts.iter().all(CrashTally::consistent)
    }
}

/// The crashcon campaign's content address: the classic plan fingerprint
/// with [`MODE_TAG`] folded in first, so crashcon journals and cache
/// entries never collide with a classic campaign's over the same plan.
#[must_use]
pub fn crashcon_fingerprint(os: OsVariant, cfg: &CampaignConfig) -> CampaignFingerprint {
    let registry = catalog::registry_for(os);
    let muts = catalog::catalog_for(os);
    let preps: Vec<_> = muts.iter().map(|m| campaign::prepare(&registry, m, cfg)).collect();
    campaign::plan_fingerprint_tagged(Some(MODE_TAG), os, cfg, &preps)
}

/// A resident crash-image verification harness for one machine flavour:
/// a pristine boot filesystem to clone images from and a kernel to
/// remount them into. Reused across all crash points of all cases of a
/// MuT so the per-point cost is one tree clone plus the oracle walk.
pub struct Verifier {
    kernel: Kernel,
    pristine: FileSystem,
    /// Flat model of the pristine boot image, the base every per-point
    /// spec folds on top of — so ops over pre-existing paths (a MuT
    /// renaming a boot file, say) are inside the oracle's domain.
    base_spec: SpecTree,
    baseline_dirty: usize,
}

impl Verifier {
    /// Boots the verification kernel and captures the pristine
    /// filesystem image for the flavour.
    #[must_use]
    pub fn new(flavor: MachineFlavor) -> Verifier {
        let kernel = Kernel::with_flavor(flavor);
        let pristine = kernel.fs.clone();
        let base_spec = crashfs::flatten_all(&pristine);
        let baseline_dirty = kernel.space.dirty_bases().len();
        Verifier {
            kernel,
            pristine,
            base_spec,
            baseline_dirty,
        }
    }

    /// Judges every bounded crash point of one case's op log, in
    /// enumeration order.
    pub fn evaluate(&mut self, ops: &[FsOp], truncated: bool) -> CaseVerdict {
        self.evaluate_ordered(ops, truncated, None)
    }

    /// [`evaluate`](Self::evaluate) with an explicit evaluation order
    /// over the enumerated crash points (`order` must be a permutation
    /// of `0..points`). The verdict is a commutative fold over
    /// independent per-point judgements, so every order produces the
    /// identical verdict — the determinism suite asserts exactly that.
    ///
    /// # Panics
    ///
    /// If an `order` index is out of range, or if remounting ever
    /// dirties the verification kernel's memory (images are swapped
    /// in as filesystem state only — the address space must stay
    /// untouched).
    pub fn evaluate_ordered(
        &mut self,
        ops: &[FsOp],
        truncated: bool,
        order: Option<&[usize]>,
    ) -> CaseVerdict {
        let points = crashfs::crash_points(ops);
        let mut verdict = CaseVerdict {
            ops: ops.len() as u32,
            truncated,
            points: points.len() as u32,
            ..CaseVerdict::default()
        };
        let indices: Vec<usize> = match order {
            Some(o) => o.to_vec(),
            None => (0..points.len()).collect(),
        };
        for &i in &indices {
            let [wf, ot, dur, ren] = self.judge(ops, points[i]);
            if wf || ot || dur || ren {
                verdict.inconsistent += 1;
            }
            verdict.viol_well_formed |= wf;
            verdict.viol_open_table |= ot;
            verdict.viol_durability |= dur;
            verdict.viol_rename |= ren;
        }
        let n = indices.len() as u64;
        exec::stats::record_crashcon(n, n);
        assert_eq!(
            self.kernel.space.dirty_bases().len(),
            self.baseline_dirty,
            "remounting a crash image must not dirty kernel memory"
        );
        verdict
    }

    /// Builds and judges one crash image: clone the pristine tree
    /// (a crashcon *snapshot*), replay the surviving ops through the
    /// real mutators, remount into the verification kernel (a crashcon
    /// *remount*), and run the four oracles. Returns
    /// `[well_formed, open_table, durability, rename]` violation flags.
    fn judge(&mut self, ops: &[FsOp], point: CrashPoint) -> [bool; 4] {
        let mut image = self.pristine.clone();
        crashfs::apply_ops(&mut image, ops, point, fault::broken_rename_armed());
        self.kernel.fs = image;
        let fs = &self.kernel.fs;

        let wf = match fs.validate_tree() {
            Ok(reachable) => reachable != fs.live_node_count(),
            Err(_) => true,
        };
        let ot = fs.open_count() != 0 || !fs.open_table_valid();

        // Image-versus-model comparison over everything the workload
        // could have left behind: the model of the surviving sequence
        // plus the model of the flushed prefix (so a lost flushed path
        // is still *visited*, not silently skipped).
        let spec = crashfs::spec_of_ops_from(self.base_spec.clone(), ops, point);
        let flushed_len = crashfs::last_barrier_in_prefix(ops, point.keep).map_or(0, |b| b + 1);
        let spec_flushed = crashfs::spec_of_ops_from(
            self.base_spec.clone(),
            ops,
            CrashPoint {
                keep: flushed_len,
                dropped: None,
            },
        );
        let mut domain: SpecTree = spec.clone();
        for (k, v) in &spec_flushed {
            domain.entry(k.clone()).or_insert_with(|| v.clone());
        }
        let rename_pairs: Vec<(&str, &str)> = ops[..point.keep]
            .iter()
            .enumerate()
            .filter(|(i, _)| point.dropped != Some(*i))
            .filter_map(|(_, op)| match op {
                FsOp::Rename { from, to, .. } => Some((from.as_str(), to.as_str())),
                _ => None,
            })
            .collect();
        let mut dur = false;
        let mut ren = false;
        for path in domain.keys() {
            let expected = spec.get(path);
            let actual: Option<SpecNode> = match fs.stat(path) {
                Ok(st) if st.is_dir => Some(SpecNode::Dir),
                Ok(_) => fs.read_file(path).ok().map(SpecNode::File),
                Err(_) => None,
            };
            if actual.as_ref() != expected {
                if rename_involved(path, &rename_pairs) {
                    ren = true;
                } else {
                    dur = true;
                }
            }
        }
        [wf, ot, dur, ren]
    }
}

/// Whether `path` is (or lies under) the source or destination of any
/// surviving rename — such divergences are attributed to the rename
/// oracle rather than the durability oracle.
fn rename_involved(path: &str, pairs: &[(&str, &str)]) -> bool {
    pairs.iter().any(|(from, to)| {
        [from, to].iter().any(|p| {
            path == **p || (path.len() > p.len() && path.starts_with(*p) && path.as_bytes()[p.len()] == b'/')
        })
    })
}

/// Executes one MuT's crashcon cases and returns the raw per-case
/// `(packed, aux)` records in plan order — the unit of work every
/// engine shares (the serial and parallel engines fold the records
/// locally; the journaled engine appends them; fleet shards wire them
/// home).
pub(crate) fn crash_mut_records(
    os: OsVariant,
    prep: &PreparedMut<'_>,
    fuel_budget: u64,
) -> (Vec<u8>, Vec<u64>) {
    let mut runner = CaseRunner::new();
    let mut session = Session::new();
    let mut verifier = Verifier::new(os.machine_flavor());
    let mut packed = Vec::with_capacity(prep.plan.cases.len());
    let mut aux = Vec::with_capacity(prep.plan.cases.len());
    for combo in &prep.plan.cases {
        // Crashcon cases are residue-free: verdicts must be pure
        // functions of the case so tallies fold commutatively.
        session.residue = 0;
        let (_result, ops, truncated) =
            runner.execute_recorded(os, prep.mut_, &prep.pools, combo, &mut session, fuel_budget);
        let verdict = verifier.evaluate(&ops, truncated);
        let (p, a) = verdict.pack();
        packed.push(p);
        aux.push(a);
    }
    (packed, aux)
}

/// [`crash_mut_records`] folded into a [`CrashTally`].
fn crash_mut(os: OsVariant, prep: &PreparedMut<'_>, fuel_budget: u64) -> CrashTally {
    let (packed, aux) = crash_mut_records(os, prep, fuel_budget);
    let mut tally = CrashTally::new(prep.mut_.name, prep.mut_.group);
    for (p, a) in packed.iter().zip(&aux) {
        tally.fold(*p, *a);
    }
    tally
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble(
    os: OsVariant,
    workers: usize,
    tallies: Vec<CrashTally>,
    warnings: Vec<String>,
    replayed: usize,
    journal_fsyncs: u64,
    counters: &exec::stats::Counters,
    t0: Instant,
) -> CrashconReport {
    let total_cases = tallies.iter().map(|t| t.cases).sum();
    let total_points = tallies.iter().map(|t| t.crash_points).sum();
    let total_inconsistent = tallies.iter().map(|t| t.inconsistent_points).sum();
    let wall = t0.elapsed().as_secs_f64();
    let (boots, restores, boot_ns, restore_ns) = counters.snapshot();
    let stats = CampaignStats {
        parallelism: workers,
        wall_ms: wall * 1e3,
        cases_per_sec: total_cases as f64 / wall.max(1e-9),
        boots,
        restores,
        boot_ms: boot_ns as f64 / 1e6,
        restore_ms: restore_ns as f64 / 1e6,
        replayed_cases: replayed,
        quarantine_retries: 0,
        journal_fsyncs,
        restores_fast: counters.restores_fast.load(Ordering::Relaxed),
        restores_full: counters.restores_full.load(Ordering::Relaxed),
        probe_provisions: counters.probe_provisions.load(Ordering::Relaxed),
        crashcon_snapshots: counters.crashcon_snapshots.load(Ordering::Relaxed),
        crashcon_remounts: counters.crashcon_remounts.load(Ordering::Relaxed),
    };
    CrashconReport {
        os,
        muts: tallies,
        total_cases,
        total_points,
        total_inconsistent,
        stats: Some(stats),
        warnings,
    }
}

/// Runs a crashcon campaign: every catalog MuT's sampled cases with the
/// op recorder armed, every bounded crash point judged by the four
/// oracles. `cfg.parallelism` selects the engine exactly as for the
/// classic campaign — `1` is the sequential reference, anything else
/// shards at MuT granularity (sound because crashcon cases are
/// residue-free); tallies are bit-identical at every setting.
///
/// # Example
///
/// ```no_run
/// use ballista::campaign::CampaignConfig;
/// use ballista::crashcon::run_crashcon;
/// use sim_kernel::variant::OsVariant;
///
/// let cfg = CampaignConfig { cap: 200, parallelism: 1, ..CampaignConfig::default() };
/// let report = run_crashcon(OsVariant::Win95, &cfg);
/// assert!(report.consistent(), "the simulated fs should survive every bounded crash");
/// ```
#[must_use]
pub fn run_crashcon(os: OsVariant, cfg: &CampaignConfig) -> CrashconReport {
    let t0 = Instant::now();
    exec::stats::reset();
    let counters = Arc::new(exec::stats::Counters::default());
    exec::stats::install_sink(Arc::clone(&counters));
    let registry = catalog::registry_for(os);
    let muts = catalog::catalog_for(os);
    let preps: Vec<_> = muts.iter().map(|m| campaign::prepare(&registry, m, cfg)).collect();
    let workers = cfg.workers().min(preps.len().max(1));
    let fuel_budget = cfg.effective_fuel_budget();
    let tallies = if workers <= 1 {
        preps.iter().map(|p| crash_mut(os, p, fuel_budget)).collect()
    } else {
        crash_pass_parallel(os, &preps, workers, fuel_budget, &counters)
    };
    exec::stats::clear_sink();
    assemble(os, workers, tallies, Vec::new(), 0, 0, &counters, t0)
}

/// Parallel clean pass at MuT granularity: workers pull the next
/// unclaimed MuT, compute its tally on a private runner/verifier, and
/// park it in its catalog slot. No replay pass exists because crashcon
/// cases never read residue.
fn crash_pass_parallel(
    os: OsVariant,
    preps: &[PreparedMut<'_>],
    workers: usize,
    fuel_budget: u64,
    sink: &Arc<exec::stats::Counters>,
) -> Vec<CrashTally> {
    let slots: Vec<Mutex<Option<CrashTally>>> = preps.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|_| {
                    exec::stats::install_sink(Arc::clone(sink));
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(prep) = preps.get(i) else { break };
                        let tally = crash_mut(os, prep, fuel_budget);
                        *slots[i].lock().expect("tally slot poisoned") = Some(tally);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("crashcon worker panicked");
        }
    })
    .expect("crashcon scope panicked");
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("tally slot poisoned")
                .expect("every MuT slot filled")
        })
        .collect()
}

/// Runs (or resumes) a **journaled** crashcon campaign: every judged
/// case is appended to the same write-ahead journal format the classic
/// engine uses — the packed byte carries the verdict flags and the
/// `fuel` word carries the `ops/points/inconsistent` counts (verdicts
/// are deterministic, so a replayed record equals a re-execution). The
/// journal's plan hash folds in [`MODE_TAG`], so a classic journal can
/// never be misapplied to a crashcon resume or vice versa.
///
/// # Errors
///
/// Propagates journal I/O failures.
pub fn run_crashcon_journaled(
    os: OsVariant,
    cfg: &CampaignConfig,
    journal_path: &std::path::Path,
    resume: bool,
) -> std::io::Result<CrashconReport> {
    let t0 = Instant::now();
    exec::stats::reset();
    let counters = Arc::new(exec::stats::Counters::default());
    exec::stats::install_sink(Arc::clone(&counters));
    let registry = catalog::registry_for(os);
    let muts = catalog::catalog_for(os);
    let preps: Vec<_> = muts.iter().map(|m| campaign::prepare(&registry, m, cfg)).collect();
    let hash = campaign::plan_fingerprint_tagged(Some(MODE_TAG), os, cfg, &preps).as_u64();
    let mut warnings = Vec::new();
    let (mut journal, recovered) = if resume {
        let (journal, recovery) = Journal::open_resume(journal_path, hash)?;
        let Recovery {
            records,
            truncated_bytes,
            fresh,
        } = recovery;
        if fresh {
            warnings.push(
                "resume requested but no usable crashcon journal was found; running from scratch"
                    .to_owned(),
            );
        } else {
            if truncated_bytes > 0 {
                warnings.push(format!(
                    "journal recovery dropped {truncated_bytes} torn trailing byte(s)"
                ));
            }
            warnings.push(format!(
                "resumed from journal: {} case(s) replayed instead of re-executed",
                records.len()
            ));
        }
        (journal, records)
    } else {
        (Journal::create(journal_path, hash)?, Vec::new())
    };

    let fuel_budget = cfg.effective_fuel_budget();
    let mut runner = CaseRunner::new();
    let mut session = Session::new();
    let mut verifier = Verifier::new(os.machine_flavor());
    let mut tallies = Vec::with_capacity(preps.len());
    let mut ri = 0usize;
    let mut replay_live = !recovered.is_empty();
    for (m_idx, prep) in preps.iter().enumerate() {
        let mut tally = CrashTally::new(prep.mut_.name, prep.mut_.group);
        for (c_idx, combo) in prep.plan.cases.iter().enumerate() {
            let mut replayed = None;
            if replay_live {
                match recovered.get(ri) {
                    Some(rec)
                        if rec.mut_idx as usize == m_idx && rec.case_idx as usize == c_idx =>
                    {
                        ri += 1;
                        replayed = Some((rec.packed, rec.fuel));
                    }
                    _ => {
                        replay_live = false;
                        if ri < recovered.len() {
                            warnings.push(format!(
                                "journal diverged from the plan at record {ri}; discarding {} unusable record(s)",
                                recovered.len() - ri
                            ));
                        }
                        journal.truncate_to(ri as u64)?;
                    }
                }
            }
            let (packed, aux) = match replayed {
                Some(pa) => pa,
                None => {
                    session.residue = 0;
                    let (_result, ops, truncated) = runner.execute_recorded(
                        os,
                        prep.mut_,
                        &prep.pools,
                        combo,
                        &mut session,
                        fuel_budget,
                    );
                    let (p, a) = verifier.evaluate(&ops, truncated).pack();
                    journal.append(CaseRecord {
                        mut_idx: m_idx as u32,
                        case_idx: c_idx as u32,
                        packed: p,
                        fuel: a,
                    })?;
                    (p, a)
                }
            };
            tally.fold(packed, aux);
        }
        tallies.push(tally);
    }
    journal.sync()?;
    let fsyncs = journal.fsyncs();
    exec::stats::clear_sink();
    Ok(assemble(os, 1, tallies, warnings, ri, fsyncs, &counters, t0))
}

/// Fold a wire/journal record stream for one MuT into a tally —
/// shared by the fleet merge and tests that want to re-fold raw
/// records in arbitrary partitions.
#[must_use]
pub fn fold_records(
    name: &str,
    group: FunctionGroup,
    packed: &[u8],
    aux: &[u64],
) -> CrashTally {
    let mut tally = CrashTally::new(name, group);
    for (p, a) in packed.iter().zip(aux) {
        tally.fold(*p, *a);
    }
    tally
}

/// Process-lifetime crashcon snapshot/remount totals — kept for test
/// visibility of the accounting split (crash-point snapshots must not
/// leak into the restore counters).
#[must_use]
pub fn snapshot_counters() -> (u64, u64) {
    (
        exec::stats::CRASHCON_SNAPSHOTS.load(Ordering::Relaxed),
        exec::stats::CRASHCON_REMOUNTS.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trips() {
        let v = CaseVerdict {
            ops: 256,
            truncated: true,
            points: 1021,
            inconsistent: 17,
            viol_well_formed: false,
            viol_open_table: true,
            viol_durability: true,
            viol_rename: false,
        };
        let (p, a) = v.pack();
        assert_eq!(CaseVerdict::unpack(p, a), v);
        let quiet = CaseVerdict::default();
        let (p, a) = quiet.pack();
        assert_eq!(p, 0);
        assert_eq!(a, 0);
        assert_eq!(CaseVerdict::unpack(p, a), quiet);
    }

    #[test]
    fn fold_is_partition_independent() {
        let packed = [
            PACK_ACTIVE,
            PACK_ACTIVE | PACK_RENAME,
            0,
            PACK_ACTIVE | PACK_DURABILITY | PACK_TRUNCATED,
        ];
        let aux = [
            (3u64 << 40) | (4 << 20),
            (5u64 << 40) | (9 << 20) | 2,
            0,
            (256u64 << 40) | (600 << 20) | 31,
        ];
        let all = fold_records("X", FunctionGroup::FileDirAccess, &packed, &aux);
        let mut split = fold_records("X", FunctionGroup::FileDirAccess, &packed[..1], &aux[..1]);
        for (p, a) in packed[1..].iter().zip(&aux[1..]).rev() {
            split.fold(*p, *a);
        }
        // Reversed order within the second partition: same tally.
        assert_eq!(all, split);
        assert_eq!(all.cases, 4);
        assert_eq!(all.active_cases, 3);
        assert_eq!(all.inconsistent_cases, 2);
        assert_eq!(all.viol_rename, 1);
    }

    #[test]
    fn verifier_passes_clean_log_and_flags_broken_rename() {
        let ops = vec![
            FsOp::Mkdir { path: "/w".into(), at_ms: 1 },
            FsOp::CreateFile { path: "/w/a".into(), content: b"v1".to_vec(), at_ms: 2 },
            FsOp::Barrier { at_ms: 3 },
            FsOp::CreateFile { path: "/w/a.tmp".into(), content: b"v2".to_vec(), at_ms: 4 },
            FsOp::Unlink { path: "/w/a".into(), at_ms: 5 },
            FsOp::Rename { from: "/w/a.tmp".into(), to: "/w/a".into(), at_ms: 6 },
        ];
        let mut verifier = Verifier::new(MachineFlavor::Posix);
        let clean = verifier.evaluate(&ops, false);
        assert_eq!(clean.inconsistent, 0, "correct fs survives every bounded crash");
        assert!(clean.points > ops.len() as u32, "drop-one points enumerated");

        fault::arm_broken_rename(true);
        let broken = verifier.evaluate(&ops, false);
        fault::arm_broken_rename(false);
        assert!(broken.viol_rename, "torn rename must be attributed to the rename oracle");
        assert!(broken.inconsistent > 0);
    }

    #[test]
    fn verdicts_are_order_independent() {
        let ops = vec![
            FsOp::Mkdir { path: "/w".into(), at_ms: 1 },
            FsOp::CreateFile { path: "/w/a".into(), content: b"v1".to_vec(), at_ms: 2 },
            FsOp::CreateFile { path: "/w/b".into(), content: b"v2".to_vec(), at_ms: 3 },
            FsOp::Barrier { at_ms: 4 },
            FsOp::Unlink { path: "/w/b".into(), at_ms: 5 },
        ];
        let mut verifier = Verifier::new(MachineFlavor::Posix);
        let forward = verifier.evaluate(&ops, false);
        let n = crashfs::crash_points(&ops).len();
        let reversed: Vec<usize> = (0..n).rev().collect();
        let backward = verifier.evaluate_ordered(&ops, false, Some(&reversed));
        assert_eq!(forward, backward);
    }
}
