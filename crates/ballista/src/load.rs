//! Heavy-load robustness testing — the paper's other future-work item
//! ("looking for dependability problems caused by heavy load conditions").
//!
//! A [`LoadProfile`] pre-stresses every fresh test machine before the call
//! under test runs: thousands of live kernel objects and open files (up
//! against a descriptor limit), a populated filesystem, and most of the
//! heap budget consumed. Failure distributions under load are then
//! comparable against the unloaded campaign: resource-exhaustion errors
//! (`EMFILE` / `ERROR_TOO_MANY_OPEN_FILES`, `ENOMEM`) appear on the
//! descriptor- and allocation-creating calls, while the Abort/Catastrophic
//! structure stays put — load changes *which* robust errors appear, not
//! who crashes.

use crate::crash::{FailureClass, RawOutcome};
use crate::datatype::TypeRegistry;
use crate::exec::{execute_case_on, Session};
use crate::muts::Mut;
use crate::sampling;
use crate::value::TestValue;
use serde::{Deserialize, Serialize};
use sim_kernel::fs::OpenOptions;
use sim_kernel::objects::ObjectKind;
use sim_kernel::sync::SyncState;
use sim_kernel::variant::OsVariant;
use sim_kernel::Kernel;

/// How hard to stress each fresh machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadProfile {
    /// Files created in the filesystem.
    pub files: usize,
    /// Open-file descriptions held open.
    pub open_files: usize,
    /// Descriptor limit installed (`None` = unlimited).
    pub open_limit: Option<usize>,
    /// Live kernel objects (events) inserted.
    pub handles: usize,
    /// Heap blocks allocated and held.
    pub heap_blocks: usize,
}

impl LoadProfile {
    /// A machine *at* its descriptor limit with a busy object table — the
    /// profile the experiment binary uses.
    #[must_use]
    pub fn heavy() -> Self {
        LoadProfile {
            files: 64,
            open_files: 256,
            open_limit: Some(256),
            handles: 512,
            heap_blocks: 128,
        }
    }
}

/// Applies the load to a fresh machine.
pub fn apply_load(k: &mut Kernel, load: &LoadProfile, os: OsVariant) {
    let dir = if os == OsVariant::Linux { "/tmp" } else { "C:\\TEMP" };
    for i in 0..load.files {
        let _ = k.fs.create_file(&format!("{dir}/load-{i:04}"), vec![0u8; 64]);
    }
    for i in 0..load.open_files {
        let path = format!("{dir}/load-{:04}", i % load.files.max(1));
        let _ = k.fs.open(&path, OpenOptions::read_only());
    }
    // The limit goes in *after* the warm descriptors so the machine sits
    // just below exhaustion.
    k.fs.set_open_limit(load.open_limit);
    for _ in 0..load.handles {
        let _ = k.objects.insert(ObjectKind::Event(SyncState::event(false, false)));
    }
    let heap = k.default_heap;
    for _ in 0..load.heap_blocks {
        let Kernel { heaps, space, .. } = k;
        let _ = heaps.alloc(heap, 4096, space);
    }
}

/// Per-MuT comparison of the loaded and unloaded runs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadDelta {
    /// The call.
    pub name: String,
    /// Functional group.
    pub group: crate::muts::FunctionGroup,
    /// Cases compared.
    pub cases: usize,
    /// Cases whose raw outcome changed under load.
    pub changed: usize,
    /// Changes that *worsened* (new aborts/hangs/crashes under load).
    pub worsened: usize,
    /// Changes where a previously "successful" case now reports a
    /// resource error — the graceful load response.
    pub new_errors: usize,
    /// Cases excluded because the *test scaffolding* degraded: a pool
    /// constructor could not obtain its resource on the exhausted machine
    /// (e.g. the "open rw fd" value fell back to −1), so the two runs are
    /// not comparing the same inputs.
    pub scaffold_degraded: usize,
}

/// A "degenerate" constructed value: the fallback the pools emit when a
/// resource-producing constructor fails on an exhausted machine.
fn is_degenerate(value: u64) -> bool {
    value == 0 || value == u64::from(u32::MAX)
}

/// Runs the same sampled cases with and without load and diffs the raw
/// outcomes per case. Cases whose pool constructors degraded on the
/// loaded machine (fell back to NULL/−1 where the pristine machine built
/// a live resource) are excluded from the outcome diff — those compare
/// scaffolding, not the implementation.
#[must_use]
pub fn run_load_comparison(
    os: OsVariant,
    muts: &[Mut],
    registry: &TypeRegistry,
    load: &LoadProfile,
    cap: usize,
) -> Vec<LoadDelta> {
    let mut out = Vec::new();
    for m in muts {
        let pools: Vec<Vec<TestValue>> = m.params.iter().map(|ty| registry.pool(ty)).collect();
        let case_set = if pools.is_empty() {
            sampling::single_case()
        } else {
            let dims: Vec<usize> = pools.iter().map(Vec::len).collect();
            sampling::enumerate(&dims, cap, m.name)
        };
        let mut delta = LoadDelta {
            name: m.name.to_owned(),
            group: m.group,
            cases: 0,
            changed: 0,
            worsened: 0,
            new_errors: 0,
            scaffold_degraded: 0,
        };
        for combo in &case_set.cases {
            delta.cases += 1;
            // Detect scaffold degradation: run the constructors alone on
            // both machine states and compare degeneracy.
            let mut probe_fresh = Kernel::with_flavor(os.machine_flavor());
            let fresh_args: Vec<u64> = combo
                .iter()
                .zip(&pools)
                .map(|(&i, pool)| (pool[i].make)(&mut probe_fresh, os))
                .collect();
            let mut probe_loaded = Kernel::with_flavor(os.machine_flavor());
            apply_load(&mut probe_loaded, load, os);
            let loaded_args: Vec<u64> = combo
                .iter()
                .zip(&pools)
                .map(|(&i, pool)| (pool[i].make)(&mut probe_loaded, os))
                .collect();
            let degraded = fresh_args
                .iter()
                .zip(&loaded_args)
                .any(|(&f, &l)| is_degenerate(l) && !is_degenerate(f));
            if degraded {
                delta.scaffold_degraded += 1;
                continue;
            }
            // Unloaded baseline (standard per-case isolation).
            let baseline =
                crate::exec::execute_case(os, m, &pools, combo, &mut Session::new());
            // Loaded run.
            let mut kernel = Kernel::with_flavor(os.machine_flavor());
            apply_load(&mut kernel, load, os);
            let loaded = execute_case_on(&mut kernel, os, m, &pools, combo);
            if loaded.raw != baseline.raw {
                delta.changed += 1;
                let worse = matches!(
                    loaded.class,
                    FailureClass::Abort | FailureClass::Restart | FailureClass::Catastrophic
                ) && !matches!(
                    baseline.class,
                    FailureClass::Abort | FailureClass::Restart | FailureClass::Catastrophic
                );
                if worse {
                    delta.worsened += 1;
                }
                if loaded.raw == RawOutcome::ReturnedError
                    && baseline.raw == RawOutcome::ReturnedSuccess
                {
                    delta.new_errors += 1;
                }
            }
        }
        if delta.changed > 0 || delta.scaffold_degraded > 0 {
            out.push(delta);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn loaded_machine_hits_descriptor_limit() {
        let mut k = Kernel::new();
        apply_load(&mut k, &LoadProfile::heavy(), OsVariant::Linux);
        assert!(k.fs.open_count() >= 256);
        assert_eq!(
            k.fs.open("/etc/motd", OpenOptions::read_only()).unwrap_err(),
            sim_kernel::fs::FsError::TooManyOpen
        );
    }

    #[test]
    fn load_changes_open_calls_gracefully() {
        let os = OsVariant::Linux;
        let registry = catalog::registry_for(os);
        let muts: Vec<Mut> = catalog::catalog_for(os)
            .into_iter()
            .filter(|m| ["open", "creat", "dup", "pipe"].contains(&m.name))
            .collect();
        let deltas = run_load_comparison(os, &muts, &registry, &LoadProfile::heavy(), 80);
        let open_delta = deltas
            .iter()
            .find(|d| d.name == "open")
            .expect("open must change under descriptor exhaustion");
        assert!(open_delta.new_errors > 0, "{open_delta:?}");
        // Load never *worsens* open into aborts/crashes.
        assert_eq!(open_delta.worsened, 0, "{open_delta:?}");
    }

    #[test]
    fn load_does_not_create_new_crashes_on_nt() {
        let os = OsVariant::WinNt4;
        let registry = catalog::registry_for(os);
        let muts: Vec<Mut> = catalog::catalog_for(os).into_iter().take(30).collect();
        let deltas = run_load_comparison(os, &muts, &registry, &LoadProfile::heavy(), 40);
        for d in &deltas {
            assert_eq!(d.worsened, 0, "{}: load worsened outcomes on NT", d.name);
        }
    }
}
