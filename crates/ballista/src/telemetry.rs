//! Campaign observability: structured tracing, a metrics registry, and
//! flamegraph-ready profiling hooks — zero-cost when disabled.
//!
//! The paper's campaigns emit only final tallies; this module makes a
//! running campaign *observable* without touching its semantics. Three
//! layers, all optional and all off by default:
//!
//! 1. **Structured tracing** — every campaign engine (serial, parallel,
//!    journaled) stages per-case events in a thread-confined
//!    [`EventRing`] and drains them into a [`CampaignTrace`]
//!    (campaign → MuT → case spans, each carrying the CRASH class, raw
//!    outcome, fuel burned and post-case residue).
//!    [`write_chrome_trace`] renders the trace as line-oriented JSON in
//!    the Chrome Trace Event format, directly loadable in
//!    `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//! 2. **A metrics registry** — monotonic counters and log₂
//!    [`Histogram`]s (cases applied, CRASH-class counts, snapshot
//!    boot/restore latency, journal fsync latency, quarantine retries,
//!    oracle selfcheck failures) snapshotted by
//!    [`Hub::metrics_snapshot`] into `results/metrics.json`.
//! 3. **Profiling hooks** — when [`TelemetryConfig::profile`] is set,
//!    every executed case's per-subsystem fuel ledger
//!    ([`sim_kernel::SubsystemFuel`]) is folded into a per-MuT-family
//!    profile and rendered by [`Hub::collapsed_stacks`] in the
//!    collapsed-stack format `inferno`/`flamegraph.pl` consume.
//!
//! # Determinism
//!
//! Telemetry reads the **simulated** clock and fuel meter, never the
//! host clock. The trace's time axis is cumulative fuel in session
//! order (1 fuel unit ≈ 1 simulated ms, rendered as 1 µs of trace
//! time), and a trace contains only engine-independent data — so the
//! serial, parallel and journaled engines produce **bit-identical**
//! trace files for the same plan, which `telemetry_determinism`
//! asserts. Engine-dependent observations (wall clock, boot/restore
//! timing, fsync latency, replay counts) live in the *host* half of
//! [`MetricsSnapshot`], which is explicitly outside the bit-identity
//! contract. See `OBSERVABILITY.md` for the operator guide.
//!
//! # Cost when disabled
//!
//! With no hub installed, [`enabled`] is a single relaxed atomic load
//! and no telemetry path allocates — [`allocation_count`] instruments
//! every allocation this module makes, and the determinism tests assert
//! the count stays flat across a full campaign with telemetry off.

use crate::crash::{FailureClass, RawOutcome};
use serde::Serialize;
use sim_kernel::subsystem::{Subsystem, SubsystemFuel};
use sim_kernel::variant::OsVariant;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Fast-path flag mirroring "a hub is installed". Everything the hot
/// paths consult before doing telemetry work.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// The installed hub. `RwLock` (not `Mutex`) because the steady state is
/// many concurrent readers on worker threads and exactly two writers
/// (install/uninstall) per campaign.
static HUB: RwLock<Option<Arc<Hub>>> = RwLock::new(None);

/// Self-instrumented allocation counter: every heap allocation the
/// telemetry layer knowingly performs bumps it. The zero-overhead test
/// runs a campaign with no hub installed and asserts this stays flat.
static ALLOCS: AtomicU64 = AtomicU64::new(0);

fn count_alloc() {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
}

/// Allocations the telemetry layer has performed so far (process-wide).
#[must_use]
pub fn allocation_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Whether a telemetry hub is installed (one relaxed atomic load — the
/// entire cost of the observability layer when it is off).
#[must_use]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Which telemetry layers are on. All default to off; see
/// `OBSERVABILITY.md` for the activation flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetryConfig {
    /// Collect per-case traces and the deterministic fuel histogram.
    pub trace: bool,
    /// Fold per-subsystem fuel ledgers into the flamegraph profile.
    pub profile: bool,
}

impl TelemetryConfig {
    /// Tracing and metrics on, profiling off — the everyday setting.
    #[must_use]
    pub fn tracing() -> Self {
        TelemetryConfig {
            trace: true,
            profile: false,
        }
    }

    /// Everything on.
    #[must_use]
    pub fn all() -> Self {
        TelemetryConfig {
            trace: true,
            profile: true,
        }
    }

    /// Reads the activation environment variables: `BALLISTA_TELEMETRY`
    /// (non-empty, not `0`) turns tracing + metrics on;
    /// `TELEMETRY_PROFILE` additionally turns profiling on (and implies
    /// telemetry). `None` when neither is set — the caller should not
    /// install a hub at all.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        let on = |name: &str| {
            std::env::var(name)
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false)
        };
        let profile = on("TELEMETRY_PROFILE");
        let trace = on("BALLISTA_TELEMETRY") || profile;
        if trace {
            Some(TelemetryConfig { trace, profile })
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

/// Number of log₂ buckets in a [`Histogram`]: one per possible bit
/// length of a `u64` value, plus one for zero.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A lock-free log₂ histogram: value `v` lands in bucket
/// `bit_length(v)`, so bucket `k > 0` covers `[2^(k-1), 2^k)`. Fixed
/// storage, no allocation per sample, wait-free recording.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let bucket = (u64::BITS - v.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A serializable snapshot (non-zero buckets only).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let count = b.load(Ordering::Relaxed);
                if count == 0 {
                    return None;
                }
                let le = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                Some(HistogramBucket { le, count })
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// One non-empty histogram bucket: `count` samples with value `<= le`
/// (and above the previous bucket's bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct HistogramBucket {
    /// Inclusive upper bound of the bucket (`2^k - 1`).
    pub le: u64,
    /// Samples that landed in this bucket.
    pub count: u64,
}

/// Serializable state of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Default)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// The non-empty log₂ buckets, in ascending order.
    pub buckets: Vec<HistogramBucket>,
}

/// The live metrics registry: monotonic counters and histograms, all
/// wait-free atomics. One per [`Hub`].
#[derive(Debug, Default)]
pub struct Metrics {
    // -- deterministic half (engine-invariant by the tally contract) --
    /// Campaigns whose traces have been submitted.
    pub campaigns: AtomicU64,
    /// Cases folded into tallies (every engine applies the same cases).
    pub cases_applied: AtomicU64,
    /// Per-CRASH-class counts, indexed by [`class_slot`].
    pub classes: [AtomicU64; 6],
    /// Fuel burned by applied cases (fed from submitted traces).
    pub total_fuel: AtomicU64,
    /// Per-case fuel distribution (fed from submitted traces).
    pub case_fuel: Histogram,
    // -- host half (engine- and machine-dependent) --
    /// Cases actually executed on this host (replays excluded — an
    /// engine that reuses recorded outcomes executes fewer).
    pub cases_executed: AtomicU64,
    /// Machines provisioned by a full boot.
    pub boots: AtomicU64,
    /// Machines provisioned by cloning a boot snapshot.
    pub restores: AtomicU64,
    /// Restores served by resetting a resident machine in place
    /// (dirty-region rollback; subset of `restores`).
    pub restores_fast: AtomicU64,
    /// Restores that deep-cloned the boot template (subset of
    /// `restores`).
    pub restores_full: AtomicU64,
    /// Full-boot latency, nanoseconds.
    pub boot_ns: Histogram,
    /// Snapshot-restore latency, nanoseconds.
    pub restore_ns: Histogram,
    /// Journal records appended.
    pub journal_appends: AtomicU64,
    /// Journal `fsync`s issued.
    pub journal_fsyncs: AtomicU64,
    /// Journal `fsync` latency, nanoseconds.
    pub fsync_ns: Histogram,
    /// Contained worker panics that earned a MuT a retry.
    pub quarantine_retries: AtomicU64,
    /// MuTs quarantined after exhausting their retries.
    pub quarantined_muts: AtomicU64,
    /// Oracle selfcheck violations observed.
    pub selfcheck_failures: AtomicU64,
    /// Result-cache lookups served (from the memory front or disk).
    pub cache_hits: AtomicU64,
    /// Result-cache lookups that found no valid entry.
    pub cache_misses: AtomicU64,
    /// Memory-front cache entries evicted by the LRU capacity.
    pub cache_evictions: AtomicU64,
    /// Campaign requests coalesced onto an identical in-flight campaign
    /// instead of executing their own.
    pub requests_coalesced: AtomicU64,
    /// Fleet shards executed to completion.
    pub shards_executed: AtomicU64,
    /// Supervised fleet workers that died, hung past their heartbeat
    /// deadline, or replied with garbage mid-campaign.
    pub worker_deaths: AtomicU64,
    /// Replacement worker processes spawned into a slot after a death.
    pub worker_respawns: AtomicU64,
    /// Worker slots quarantined after consecutive failures.
    pub workers_quarantined: AtomicU64,
    /// Shards re-executed after a worker failure.
    pub shard_retries: AtomicU64,
    /// Shards pushed back onto the supervisor queue to wait for a
    /// healthy worker.
    pub shard_requeues: AtomicU64,
    /// Malformed wire buffers (spec or result) rejected by the engine.
    pub wire_protocol_faults: AtomicU64,
    /// Fleet campaigns that degraded from process workers to the
    /// in-process thread pool.
    pub fleet_degradations: AtomicU64,
    /// Shard-retry backoff delays, milliseconds.
    pub backoff_ms: Histogram,
    /// Crashcon filesystem crash images materialized (one pristine-tree
    /// clone per crash point; never counted under `restores`).
    pub crashcon_snapshots: AtomicU64,
    /// Crashcon crash images remounted into the verification kernel.
    pub crashcon_remounts: AtomicU64,
    /// Adaptive explore rounds completed on this host. Host-half
    /// because exploration is memoized per process: an engine that
    /// reuses a pinned plan runs zero rounds.
    pub adaptive_rounds: AtomicU64,
    /// Pool values first touched during adaptive exploration (summed
    /// over rounds — the area under the coverage-gain curve).
    pub adaptive_coverage_gain: AtomicU64,
    /// Cases frozen into adaptive pinned plans on this host.
    pub adaptive_pinned_cases: AtomicU64,
}

/// The slot in [`Metrics::classes`] for a CRASH class, in severity
/// order (`pass` = 0 … `catastrophic` = 5).
#[must_use]
pub fn class_slot(class: FailureClass) -> usize {
    match class {
        FailureClass::Pass => 0,
        FailureClass::Hindering => 1,
        FailureClass::Silent => 2,
        FailureClass::Abort => 3,
        FailureClass::Restart => 4,
        FailureClass::Catastrophic => 5,
    }
}

/// Per-CRASH-class counts in a [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Default)]
pub struct ClassCounts {
    /// Robust passes.
    pub pass: u64,
    /// Suspected Hindering failures.
    pub hindering: u64,
    /// Ground-truth Silent failures.
    pub silent: u64,
    /// Abort failures.
    pub abort: u64,
    /// Restart failures.
    pub restart: u64,
    /// Catastrophic failures.
    pub catastrophic: u64,
}

/// The engine-invariant half of a [`MetricsSnapshot`]: identical for
/// serial, parallel and journaled runs of the same plan (asserted by
/// `telemetry_determinism`).
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub struct DeterministicMetrics {
    /// Campaign traces submitted.
    pub campaigns: u64,
    /// Cases folded into tallies.
    pub cases_applied: u64,
    /// CRASH classification counts.
    pub classes: ClassCounts,
    /// Total fuel burned by applied cases (simulated work units).
    pub total_fuel: u64,
    /// Per-case fuel distribution.
    pub case_fuel: HistogramSnapshot,
}

/// The host-dependent half of a [`MetricsSnapshot`]: wall-clock
/// latencies and engine bookkeeping, never part of any bit-identity
/// contract.
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub struct HostMetrics {
    /// Cases executed on this host (an engine that replays recorded
    /// outcomes executes fewer than it applies).
    pub cases_executed: u64,
    /// Full machine boots.
    pub boots: u64,
    /// Snapshot restores.
    pub restores: u64,
    /// Restores served by an in-place reset (subset of `restores`).
    pub restores_fast: u64,
    /// Restores that deep-cloned the template (subset of `restores`).
    pub restores_full: u64,
    /// Boot latency histogram, nanoseconds.
    pub boot_ns: HistogramSnapshot,
    /// Restore latency histogram, nanoseconds.
    pub restore_ns: HistogramSnapshot,
    /// Journal records appended.
    pub journal_appends: u64,
    /// Journal `fsync`s issued.
    pub journal_fsyncs: u64,
    /// Journal `fsync` latency histogram, nanoseconds.
    pub fsync_ns: HistogramSnapshot,
    /// Contained worker panics that earned a retry.
    pub quarantine_retries: u64,
    /// MuTs quarantined after retry exhaustion.
    pub quarantined_muts: u64,
    /// Oracle selfcheck violations.
    pub selfcheck_failures: u64,
    /// Result-cache hits (memory front or disk).
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Memory-front LRU evictions.
    pub cache_evictions: u64,
    /// Campaign requests coalesced onto an in-flight campaign.
    pub requests_coalesced: u64,
    /// Fleet shards executed.
    pub shards_executed: u64,
    /// Supervised fleet workers that died, hung, or replied with
    /// garbage.
    pub worker_deaths: u64,
    /// Replacement workers spawned after a death.
    pub worker_respawns: u64,
    /// Worker slots quarantined after consecutive failures.
    pub workers_quarantined: u64,
    /// Shards re-executed after a worker failure.
    pub shard_retries: u64,
    /// Shards requeued to wait for a healthy worker.
    pub shard_requeues: u64,
    /// Malformed wire buffers rejected.
    pub wire_protocol_faults: u64,
    /// Fleet campaigns degraded to the in-process pool.
    pub fleet_degradations: u64,
    /// Shard-retry backoff histogram, milliseconds.
    pub backoff_ms: HistogramSnapshot,
    /// Crashcon crash-point snapshots (filesystem images, not machine
    /// restores).
    pub crashcon_snapshots: u64,
    /// Crashcon crash-image remounts.
    pub crashcon_remounts: u64,
    /// Adaptive explore rounds completed on this host.
    pub adaptive_rounds: u64,
    /// Pool values first touched during adaptive exploration.
    pub adaptive_coverage_gain: u64,
    /// Cases frozen into adaptive pinned plans on this host.
    pub adaptive_pinned_cases: u64,
}

/// A point-in-time copy of the [`Metrics`] registry, split into the
/// engine-invariant and host-dependent halves. Serialized as
/// `results/metrics.json`; every field is documented in
/// `OBSERVABILITY.md`.
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub struct MetricsSnapshot {
    /// Engine-invariant counters (compare these across engines).
    pub deterministic: DeterministicMetrics,
    /// Host-dependent counters (never compare across engines or hosts).
    pub host: HostMetrics,
}

// ---------------------------------------------------------------------
// Live progress
// ---------------------------------------------------------------------

/// Wait-free campaign progress counters behind the single-line progress
/// renderer in the `report` crate.
#[derive(Debug, Default)]
pub struct Progress {
    /// Cases planned across campaigns begun so far.
    pub planned: AtomicU64,
    /// Cases executed so far.
    pub executed: AtomicU64,
    /// Campaigns begun.
    pub begun: AtomicU64,
    /// Campaigns finished.
    pub finished: AtomicU64,
    /// Catastrophic failures observed so far.
    pub catastrophics: AtomicU64,
    /// In-place (fast) machine restores so far.
    pub restores_fast: AtomicU64,
}

/// A point-in-time copy of [`Progress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgressSnapshot {
    /// Cases planned across campaigns begun so far.
    pub planned: u64,
    /// Cases executed so far.
    pub executed: u64,
    /// Campaigns begun.
    pub begun: u64,
    /// Campaigns finished.
    pub finished: u64,
    /// Catastrophic failures observed so far.
    pub catastrophics: u64,
    /// In-place (fast) machine restores so far.
    pub restores_fast: u64,
}

impl Progress {
    /// A point-in-time copy.
    #[must_use]
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            planned: self.planned.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            begun: self.begun.load(Ordering::Relaxed),
            finished: self.finished.load(Ordering::Relaxed),
            catastrophics: self.catastrophics.load(Ordering::Relaxed),
            restores_fast: self.restores_fast.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------
// The hub
// ---------------------------------------------------------------------

/// Profile ledger: fuel per (OS, MuT family, subsystem). `BTreeMap`
/// keyed by `&'static str`s so iteration order — and therefore the
/// collapsed-stack file — is deterministic.
type ProfileBook = BTreeMap<(&'static str, &'static str), [u64; Subsystem::COUNT]>;

/// The installed telemetry sink: metrics registry, progress counters,
/// submitted campaign traces and the flamegraph profile. Install one
/// with [`Hub::install`]; every campaign engine then reports into it
/// until [`Hub::uninstall`].
#[derive(Debug)]
pub struct Hub {
    cfg: TelemetryConfig,
    /// The live metrics registry.
    pub metrics: Metrics,
    /// The live progress counters.
    pub progress: Progress,
    traces: Mutex<Vec<CampaignTrace>>,
    profile: Mutex<ProfileBook>,
}

impl Hub {
    /// Builds and globally installs a hub, returning a handle. Replaces
    /// any previously installed hub.
    pub fn install(cfg: TelemetryConfig) -> Arc<Hub> {
        count_alloc();
        let hub = Arc::new(Hub {
            cfg,
            metrics: Metrics::default(),
            progress: Progress::default(),
            traces: Mutex::new(Vec::new()),
            profile: Mutex::new(BTreeMap::new()),
        });
        *HUB.write().expect("telemetry hub lock poisoned") = Some(Arc::clone(&hub));
        ACTIVE.store(true, Ordering::SeqCst);
        hub
    }

    /// Uninstalls the current hub (if any). Existing `Arc` handles stay
    /// readable; engines simply stop reporting.
    pub fn uninstall() {
        ACTIVE.store(false, Ordering::SeqCst);
        *HUB.write().expect("telemetry hub lock poisoned") = None;
    }

    /// The installed hub, if any.
    #[must_use]
    pub fn current() -> Option<Arc<Hub>> {
        if !enabled() {
            return None;
        }
        HUB.read().expect("telemetry hub lock poisoned").clone()
    }

    /// Whether trace collection is on.
    #[must_use]
    pub fn tracing(&self) -> bool {
        self.cfg.trace
    }

    /// Whether subsystem profiling is on.
    #[must_use]
    pub fn profiling(&self) -> bool {
        self.cfg.profile
    }

    /// Accepts a finished campaign trace: folds its deterministic
    /// metrics (class counts come from the apply hooks; fuel comes from
    /// here) and stores the trace for [`Hub::take_traces`].
    pub fn submit_trace(&self, trace: CampaignTrace) {
        self.metrics.campaigns.fetch_add(1, Ordering::Relaxed);
        for m in &trace.muts {
            for c in &m.cases {
                self.metrics.total_fuel.fetch_add(c.fuel, Ordering::Relaxed);
                self.metrics.case_fuel.record(c.fuel);
            }
        }
        count_alloc();
        self.traces
            .lock()
            .expect("telemetry trace sink poisoned")
            .push(trace);
    }

    /// Drains every submitted campaign trace, in submission order.
    #[must_use]
    pub fn take_traces(&self) -> Vec<CampaignTrace> {
        std::mem::take(&mut *self.traces.lock().expect("telemetry trace sink poisoned"))
    }

    /// Folds one executed case's subsystem-fuel ledger into the profile
    /// under `(os, family)`.
    pub fn record_profile(&self, os: OsVariant, family: &'static str, subsys: &SubsystemFuel) {
        let mut book = self.profile.lock().expect("telemetry profile poisoned");
        let slot = book.entry((os.short_name(), family)).or_insert_with(|| {
            count_alloc();
            [0u64; Subsystem::COUNT]
        });
        for s in Subsystem::ALL {
            slot[s.index()] = slot[s.index()].saturating_add(subsys.charged(s));
        }
    }

    /// Renders the profile in collapsed-stack format, one line per
    /// `ballista;<os>;<family>;<subsystem> <fuel>` frame — the input
    /// `inferno-flamegraph` / `flamegraph.pl` expect. Deterministic:
    /// frames sort by OS, family, then subsystem ledger order.
    #[must_use]
    pub fn collapsed_stacks(&self) -> String {
        let book = self.profile.lock().expect("telemetry profile poisoned");
        let mut out = String::new();
        for ((os, family), units) in book.iter() {
            for sub in Subsystem::ALL {
                let fuel = units[sub.index()];
                if fuel == 0 {
                    continue;
                }
                out.push_str("ballista;");
                out.push_str(os);
                out.push(';');
                // Collapsed-stack frames are ';'-separated: sanitize
                // the human-readable family label.
                for ch in family.chars() {
                    out.push(if ch == ';' { ',' } else { ch });
                }
                out.push(';');
                out.push_str(sub.label());
                out.push(' ');
                out.push_str(&fuel.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// A point-in-time copy of the metrics registry.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let m = &self.metrics;
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        MetricsSnapshot {
            deterministic: DeterministicMetrics {
                campaigns: ld(&m.campaigns),
                cases_applied: ld(&m.cases_applied),
                classes: ClassCounts {
                    pass: ld(&m.classes[0]),
                    hindering: ld(&m.classes[1]),
                    silent: ld(&m.classes[2]),
                    abort: ld(&m.classes[3]),
                    restart: ld(&m.classes[4]),
                    catastrophic: ld(&m.classes[5]),
                },
                total_fuel: ld(&m.total_fuel),
                case_fuel: m.case_fuel.snapshot(),
            },
            host: HostMetrics {
                cases_executed: ld(&m.cases_executed),
                boots: ld(&m.boots),
                restores: ld(&m.restores),
                restores_fast: ld(&m.restores_fast),
                restores_full: ld(&m.restores_full),
                boot_ns: m.boot_ns.snapshot(),
                restore_ns: m.restore_ns.snapshot(),
                journal_appends: ld(&m.journal_appends),
                journal_fsyncs: ld(&m.journal_fsyncs),
                fsync_ns: m.fsync_ns.snapshot(),
                quarantine_retries: ld(&m.quarantine_retries),
                quarantined_muts: ld(&m.quarantined_muts),
                selfcheck_failures: ld(&m.selfcheck_failures),
                cache_hits: ld(&m.cache_hits),
                cache_misses: ld(&m.cache_misses),
                cache_evictions: ld(&m.cache_evictions),
                requests_coalesced: ld(&m.requests_coalesced),
                shards_executed: ld(&m.shards_executed),
                worker_deaths: ld(&m.worker_deaths),
                worker_respawns: ld(&m.worker_respawns),
                workers_quarantined: ld(&m.workers_quarantined),
                shard_retries: ld(&m.shard_retries),
                shard_requeues: ld(&m.shard_requeues),
                wire_protocol_faults: ld(&m.wire_protocol_faults),
                fleet_degradations: ld(&m.fleet_degradations),
                backoff_ms: m.backoff_ms.snapshot(),
                crashcon_snapshots: ld(&m.crashcon_snapshots),
                crashcon_remounts: ld(&m.crashcon_remounts),
                adaptive_rounds: ld(&m.adaptive_rounds),
                adaptive_coverage_gain: ld(&m.adaptive_coverage_gain),
                adaptive_pinned_cases: ld(&m.adaptive_pinned_cases),
            },
        }
    }
}

/// Runs `f` against the installed hub, if any. The `enabled()` fast
/// path keeps the disabled cost at one atomic load.
fn with_hub(f: impl FnOnce(&Hub)) {
    if !enabled() {
        return;
    }
    if let Some(hub) = HUB.read().expect("telemetry hub lock poisoned").as_deref() {
        f(hub);
    }
}

// -- hooks called from the engines, executor, journal and oracle ------

/// Machine provisioned by a full boot (`nanos` of host time).
pub fn on_boot(nanos: u64) {
    with_hub(|h| {
        h.metrics.boots.fetch_add(1, Ordering::Relaxed);
        h.metrics.boot_ns.record(nanos);
    });
}

/// Machine provisioned by a snapshot restore (`nanos` of host time).
/// `fast` distinguishes an in-place resident-machine reset from a full
/// template clone.
pub fn on_restore(nanos: u64, fast: bool) {
    with_hub(|h| {
        h.metrics.restores.fetch_add(1, Ordering::Relaxed);
        if fast {
            h.metrics.restores_fast.fetch_add(1, Ordering::Relaxed);
            h.progress.restores_fast.fetch_add(1, Ordering::Relaxed);
        } else {
            h.metrics.restores_full.fetch_add(1, Ordering::Relaxed);
        }
        h.metrics.restore_ns.record(nanos);
    });
}

/// A batch of crashcon crash-point snapshots and remounts (flushed per
/// case by the crashcon engine).
pub fn on_crashcon(snapshots: u64, remounts: u64) {
    with_hub(|h| {
        h.metrics
            .crashcon_snapshots
            .fetch_add(snapshots, Ordering::Relaxed);
        h.metrics
            .crashcon_remounts
            .fetch_add(remounts, Ordering::Relaxed);
    });
}

/// One adaptive explore round completed, first-touching `new_values`
/// pool values (fired by [`crate::adaptive::explore`] per round).
pub fn on_adaptive_round(new_values: u64) {
    with_hub(|h| {
        h.metrics.adaptive_rounds.fetch_add(1, Ordering::Relaxed);
        h.metrics
            .adaptive_coverage_gain
            .fetch_add(new_values, Ordering::Relaxed);
    });
}

/// An adaptive explore phase pinned `cases` cases into a replay plan.
pub fn on_adaptive_pinned(cases: u64) {
    with_hub(|h| {
        h.metrics
            .adaptive_pinned_cases
            .fetch_add(cases, Ordering::Relaxed);
    });
}

/// One case was executed on this host (replays don't count).
pub fn on_case_executed() {
    with_hub(|h| {
        h.metrics.cases_executed.fetch_add(1, Ordering::Relaxed);
        h.progress.executed.fetch_add(1, Ordering::Relaxed);
    });
}

/// One case (executed or replayed) was folded into a tally.
pub fn on_case_applied(class: FailureClass) {
    with_hub(|h| {
        h.metrics.cases_applied.fetch_add(1, Ordering::Relaxed);
        h.metrics.classes[class_slot(class)].fetch_add(1, Ordering::Relaxed);
        if class == FailureClass::Catastrophic {
            h.progress.catastrophics.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// An executed case's subsystem-fuel ledger, for the profile.
pub fn on_case_profile(os: OsVariant, family: &'static str, subsys: &SubsystemFuel) {
    with_hub(|h| {
        if h.profiling() {
            h.record_profile(os, family, subsys);
        }
    });
}

/// A campaign began.
pub fn on_campaign_begin() {
    with_hub(|h| {
        h.progress.begun.fetch_add(1, Ordering::Relaxed);
    });
}

/// A MuT with `planned` cases entered execution (every engine reports
/// each MuT exactly once, so [`Progress::planned`] converges on the
/// campaign's true case total as it runs).
pub fn on_mut_begin(planned: u64) {
    with_hub(|h| {
        h.progress.planned.fetch_add(planned, Ordering::Relaxed);
    });
}

/// A campaign finished.
pub fn on_campaign_end() {
    with_hub(|h| {
        h.progress.finished.fetch_add(1, Ordering::Relaxed);
    });
}

/// One journal record was appended.
pub fn on_journal_append() {
    with_hub(|h| {
        h.metrics.journal_appends.fetch_add(1, Ordering::Relaxed);
    });
}

/// One journal `fsync` completed in `nanos` of host time.
pub fn on_journal_fsync(nanos: u64) {
    with_hub(|h| {
        h.metrics.journal_fsyncs.fetch_add(1, Ordering::Relaxed);
        h.metrics.fsync_ns.record(nanos);
    });
}

/// A contained worker panic earned a MuT a retry.
pub fn on_quarantine_retry() {
    with_hub(|h| {
        h.metrics.quarantine_retries.fetch_add(1, Ordering::Relaxed);
    });
}

/// A MuT was quarantined after exhausting its retries.
pub fn on_mut_quarantined() {
    with_hub(|h| {
        h.metrics.quarantined_muts.fetch_add(1, Ordering::Relaxed);
    });
}

/// The conformance oracle's live selfcheck flagged `n` violations.
pub fn on_selfcheck_violations(n: u64) {
    with_hub(|h| {
        h.metrics.selfcheck_failures.fetch_add(n, Ordering::Relaxed);
    });
}

/// A result-cache lookup was served.
pub fn on_cache_hit() {
    with_hub(|h| {
        h.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
    });
}

/// A result-cache lookup found no valid entry.
pub fn on_cache_miss() {
    with_hub(|h| {
        h.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
    });
}

/// The memory front of the result cache evicted its least-recently-used
/// entry (the on-disk entry survives).
pub fn on_cache_eviction() {
    with_hub(|h| {
        h.metrics.cache_evictions.fetch_add(1, Ordering::Relaxed);
    });
}

/// A campaign request was coalesced onto an identical in-flight
/// campaign instead of executing its own.
pub fn on_request_coalesced() {
    with_hub(|h| {
        h.metrics.requests_coalesced.fetch_add(1, Ordering::Relaxed);
    });
}

/// One fleet shard ran to completion.
pub fn on_shard_executed() {
    with_hub(|h| {
        h.metrics.shards_executed.fetch_add(1, Ordering::Relaxed);
    });
}

/// A supervised fleet worker died, hung past its heartbeat deadline, or
/// replied with garbage.
pub fn on_worker_death() {
    with_hub(|h| {
        h.metrics.worker_deaths.fetch_add(1, Ordering::Relaxed);
    });
}

/// A replacement worker process was spawned into a slot after a death.
pub fn on_worker_respawn() {
    with_hub(|h| {
        h.metrics.worker_respawns.fetch_add(1, Ordering::Relaxed);
    });
}

/// A worker slot was quarantined after consecutive failures.
pub fn on_worker_quarantined() {
    with_hub(|h| {
        h.metrics.workers_quarantined.fetch_add(1, Ordering::Relaxed);
    });
}

/// A shard is being re-executed after a worker failure, `backoff_ms`
/// milliseconds of exponential backoff after the failure.
pub fn on_shard_retry(backoff_ms: u64) {
    with_hub(|h| {
        h.metrics.shard_retries.fetch_add(1, Ordering::Relaxed);
        h.metrics.backoff_ms.record(backoff_ms);
    });
}

/// A shard was pushed back onto the supervisor queue to wait for a
/// healthy worker.
pub fn on_shard_requeue() {
    with_hub(|h| {
        h.metrics.shard_requeues.fetch_add(1, Ordering::Relaxed);
    });
}

/// A malformed wire buffer (spec or result) was rejected by the engine.
pub fn on_wire_protocol_fault() {
    with_hub(|h| {
        h.metrics.wire_protocol_faults.fetch_add(1, Ordering::Relaxed);
    });
}

/// A fleet campaign degraded from process workers to the in-process
/// thread pool.
pub fn on_fleet_degraded() {
    with_hub(|h| {
        h.metrics.fleet_degradations.fetch_add(1, Ordering::Relaxed);
    });
}

// ---------------------------------------------------------------------
// Trace model + collector
// ---------------------------------------------------------------------

/// One applied test case in a trace. Carries only engine-independent
/// data — everything here is a pure function of the campaign plan, so
/// traces are bit-identical across engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseTrace {
    /// Index of the case within its MuT's sampling plan.
    pub case_idx: u32,
    /// The raw observation.
    pub raw: RawOutcome,
    /// The CRASH classification.
    pub class: FailureClass,
    /// Whether any selected input value was exceptional.
    pub any_exceptional: bool,
    /// Whether the simulated OS probed the residue counter.
    pub residue_probed: bool,
    /// Fuel the case burned (simulated work units).
    pub fuel: u64,
    /// Session residue after the case was folded in.
    pub residue_after: u32,
}

/// One MuT's span in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutTrace {
    /// The call's name.
    pub name: String,
    /// Functional-group label.
    pub group: &'static str,
    /// Cases planned for this MuT.
    pub planned: u32,
    /// Applied cases, in session order.
    pub cases: Vec<CaseTrace>,
}

/// A full campaign's trace: every applied case in session order, with
/// cumulative fuel as the (virtual, deterministic) time axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignTrace {
    /// The OS variant's short name.
    pub os: &'static str,
    /// The per-MuT case cap the plan ran under.
    pub cap: u64,
    /// Per-MuT spans, in catalog order.
    pub muts: Vec<MutTrace>,
}

impl CampaignTrace {
    /// Total applied cases.
    #[must_use]
    pub fn total_cases(&self) -> u64 {
        self.muts.iter().map(|m| m.cases.len() as u64).sum()
    }

    /// Total fuel burned by applied cases.
    #[must_use]
    pub fn total_fuel(&self) -> u64 {
        self.muts
            .iter()
            .flat_map(|m| &m.cases)
            .map(|c| c.fuel)
            .sum()
    }
}

/// Capacity of the per-collector staging ring: how many case events
/// accumulate before a drain into the owning [`MutTrace`].
pub const EVENT_RING_CAPACITY: usize = 1024;

/// Fixed-capacity staging buffer for case events. Thread-confined (each
/// engine collects trace events at its sequential apply sites, so
/// exactly one thread touches a ring) — lock-free by construction, and
/// after construction a push never allocates.
#[derive(Debug)]
pub struct EventRing {
    slots: Vec<CaseTrace>,
}

impl EventRing {
    fn new() -> Self {
        count_alloc();
        EventRing {
            slots: Vec::with_capacity(EVENT_RING_CAPACITY),
        }
    }

    /// Stages one event; returns `true` when the ring is full and must
    /// be drained before the next push.
    fn push(&mut self, ev: CaseTrace) -> bool {
        debug_assert!(self.slots.len() < EVENT_RING_CAPACITY);
        self.slots.push(ev);
        self.slots.len() == EVENT_RING_CAPACITY
    }

    /// Moves every staged event into `out`, emptying the ring without
    /// releasing its capacity.
    fn drain_into(&mut self, out: &mut Vec<CaseTrace>) {
        if !self.slots.is_empty() {
            count_alloc();
            out.append(&mut self.slots);
        }
    }
}

/// Collects one campaign's trace. Created by an engine when a hub with
/// tracing is installed ([`TraceCollector::begin`] returns `None`
/// otherwise — the disabled path allocates nothing), fed at the
/// engine's sequential apply sites, and submitted to the hub by
/// [`TraceCollector::finish`].
#[derive(Debug)]
pub struct TraceCollector {
    os: OsVariant,
    cap: u64,
    muts: Vec<MutTrace>,
    current: Option<MutTrace>,
    ring: EventRing,
}

impl TraceCollector {
    /// Starts a campaign trace if the installed hub has tracing on.
    #[must_use]
    pub fn begin(os: OsVariant, cap: u64) -> Option<TraceCollector> {
        let tracing = Hub::current().is_some_and(|h| h.tracing());
        if !tracing {
            return None;
        }
        count_alloc();
        Some(TraceCollector {
            os,
            cap,
            muts: Vec::new(),
            current: None,
            ring: EventRing::new(),
        })
    }

    fn commit_current(&mut self) {
        if let Some(mut m) = self.current.take() {
            self.ring.drain_into(&mut m.cases);
            self.muts.push(m);
        }
    }

    /// Opens the span for the next MuT (closing the previous one).
    pub fn begin_mut(&mut self, name: &str, group: &'static str, planned: usize) {
        self.commit_current();
        count_alloc();
        self.current = Some(MutTrace {
            name: name.to_owned(),
            group,
            planned: planned as u32,
            cases: Vec::new(),
        });
    }

    /// Discards the current MuT's staged events — called when a
    /// contained worker panic earns the MuT a retry, so the rerun
    /// starts from an empty span and retries leave no duplicate events.
    pub fn abort_mut(&mut self) {
        self.ring.slots.clear();
        self.current = None;
    }

    /// Records one applied case into the current MuT's span.
    pub fn record_case(&mut self, ev: CaseTrace) {
        debug_assert!(self.current.is_some(), "record_case before begin_mut");
        if self.ring.push(ev) {
            if let Some(m) = self.current.as_mut() {
                self.ring.drain_into(&mut m.cases);
            }
        }
    }

    /// Closes the trace and submits it to the installed hub (it may
    /// have been uninstalled mid-campaign; the trace is then dropped).
    pub fn finish(mut self) {
        self.commit_current();
        let trace = CampaignTrace {
            os: self.os.short_name(),
            cap: self.cap,
            muts: self.muts,
        };
        with_hub(|h| h.submit_trace(trace.clone()));
    }

    /// Closes the trace and returns it instead of submitting — used by
    /// tests and tools that want the trace without a hub round-trip.
    #[must_use]
    pub fn into_trace(mut self) -> CampaignTrace {
        self.commit_current();
        CampaignTrace {
            os: self.os.short_name(),
            cap: self.cap,
            muts: self.muts,
        }
    }
}

// ---------------------------------------------------------------------
// Chrome-trace rendering
// ---------------------------------------------------------------------

/// Stable lower-case label for a raw outcome in trace `args`.
#[must_use]
pub fn raw_label(raw: RawOutcome) -> &'static str {
    match raw {
        RawOutcome::ReturnedSuccess => "returned-success",
        RawOutcome::ReturnedError => "returned-error",
        RawOutcome::TaskAbort => "task-abort",
        RawOutcome::TaskHang => "task-hang",
        RawOutcome::SystemCrash => "system-crash",
    }
}

/// Stable label for a CRASH class in trace `args` and span names.
#[must_use]
pub fn class_label(class: FailureClass) -> &'static str {
    match class {
        FailureClass::Pass => "Pass",
        FailureClass::Hindering => "Hindering",
        FailureClass::Silent => "Silent",
        FailureClass::Abort => "Abort",
        FailureClass::Restart => "Restart",
        FailureClass::Catastrophic => "Catastrophic",
    }
}

/// Escapes a string for a JSON literal (control characters, quotes and
/// backslashes only — trace strings are ASCII identifiers in practice).
fn json_escape(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders a [`CampaignTrace`] in the Chrome Trace Event format as
/// **line-oriented JSON**: the opening `[` on its own line, one event
/// object per line, and the closing metadata event + `]` on the last —
/// greppable like JSONL, loadable as-is by `chrome://tracing` and
/// Perfetto. The schema is documented field-by-field in
/// `OBSERVABILITY.md`.
///
/// All timestamps are **virtual**: cumulative fuel in session order,
/// rendered as microseconds (1 fuel unit ≈ 1 simulated ms → 1 µs of
/// trace time). Rendering uses integer arithmetic only, so the bytes
/// are identical on every host and for every engine.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_chrome_trace<W: Write>(w: &mut W, trace: &CampaignTrace) -> io::Result<()> {
    let mut line = String::new();
    writeln!(w, "[")?;
    // Metadata: name the virtual process/thread the spans hang off.
    writeln!(
        w,
        "{{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"ts\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"ballista {} campaign\"}}}},",
        trace.os
    )?;
    writeln!(
        w,
        "{{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"ts\":0,\"name\":\"thread_name\",\"args\":{{\"name\":\"session order (1us = 1 fuel unit)\"}}}},"
    )?;
    writeln!(
        w,
        "{{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":{},\"name\":\"campaign {}\",\"cat\":\"campaign\",\"args\":{{\"cap\":{},\"muts\":{},\"cases\":{}}}}},",
        trace.total_fuel(),
        trace.os,
        trace.cap,
        trace.muts.len(),
        trace.total_cases()
    )?;
    let mut cursor = 0u64;
    for m in &trace.muts {
        let mut_fuel: u64 = m.cases.iter().map(|c| c.fuel).sum();
        line.clear();
        line.push_str("{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":");
        line.push_str(&cursor.to_string());
        line.push_str(",\"dur\":");
        line.push_str(&mut_fuel.to_string());
        line.push_str(",\"name\":\"");
        json_escape(&m.name, &mut line);
        line.push_str("\",\"cat\":\"mut\",\"args\":{\"group\":\"");
        json_escape(m.group, &mut line);
        line.push_str("\",\"planned\":");
        line.push_str(&m.planned.to_string());
        line.push_str(",\"cases\":");
        line.push_str(&m.cases.len().to_string());
        line.push_str("}},");
        writeln!(w, "{line}")?;
        for c in &m.cases {
            line.clear();
            line.push_str("{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":");
            line.push_str(&cursor.to_string());
            line.push_str(",\"dur\":");
            line.push_str(&c.fuel.to_string());
            line.push_str(",\"name\":\"");
            line.push_str(class_label(c.class));
            line.push_str("\",\"cat\":\"case\",\"args\":{\"mut\":\"");
            json_escape(&m.name, &mut line);
            line.push_str("\",\"case\":");
            line.push_str(&c.case_idx.to_string());
            line.push_str(",\"raw\":\"");
            line.push_str(raw_label(c.raw));
            line.push_str("\",\"exceptional\":");
            line.push_str(if c.any_exceptional { "true" } else { "false" });
            line.push_str(",\"probed\":");
            line.push_str(if c.residue_probed { "true" } else { "false" });
            line.push_str(",\"fuel\":");
            line.push_str(&c.fuel.to_string());
            line.push_str(",\"residue\":");
            line.push_str(&c.residue_after.to_string());
            line.push_str("}},");
            writeln!(w, "{line}")?;
            cursor += c.fuel;
            line.clear();
            line.push_str("{\"ph\":\"C\",\"pid\":1,\"tid\":1,\"ts\":");
            line.push_str(&cursor.to_string());
            line.push_str(",\"name\":\"residue\",\"args\":{\"residue\":");
            line.push_str(&c.residue_after.to_string());
            line.push_str("}},");
            writeln!(w, "{line}")?;
        }
    }
    // Closing metadata event carries the totals and closes the array
    // (no trailing comma before it, so every earlier line ends in one).
    writeln!(
        w,
        "{{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"ts\":{cursor},\"name\":\"trace_end\",\"args\":{{\"cases\":{},\"fuel\":{cursor}}}}}]",
        trace.total_cases()
    )?;
    Ok(())
}

/// [`write_chrome_trace`] into a byte buffer — the form the determinism
/// tests compare bit for bit.
#[must_use]
pub fn chrome_trace_bytes(trace: &CampaignTrace) -> Vec<u8> {
    let mut buf = Vec::new();
    write_chrome_trace(&mut buf, trace).expect("in-memory trace write cannot fail");
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hub installation is process-global; tests that install one must
    /// serialize behind this (shared with the integration tests' own
    /// guard for the same reason).
    static GUARD: Mutex<()> = Mutex::new(());

    fn sample_trace() -> CampaignTrace {
        CampaignTrace {
            os: "win98",
            cap: 5,
            muts: vec![
                MutTrace {
                    name: "GetThreadContext".to_owned(),
                    group: "Process Primitives",
                    planned: 2,
                    cases: vec![
                        CaseTrace {
                            case_idx: 0,
                            raw: RawOutcome::SystemCrash,
                            class: FailureClass::Catastrophic,
                            any_exceptional: true,
                            residue_probed: false,
                            fuel: 7,
                            residue_after: 0,
                        },
                    ],
                },
                MutTrace {
                    name: "strlen".to_owned(),
                    group: "C string",
                    planned: 1,
                    cases: vec![CaseTrace {
                        case_idx: 0,
                        raw: RawOutcome::TaskAbort,
                        class: FailureClass::Abort,
                        any_exceptional: true,
                        residue_probed: false,
                        fuel: 3,
                        residue_after: 1,
                    }],
                },
            ],
        }
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1024, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.sum, 0u64.wrapping_add(1 + 2 + 3 + 4 + 1024).wrapping_add(u64::MAX));
        // 0 → bucket le=0; 1 → le=1; 2,3 → le=3; 4 → le=7; 1024 → le=2047;
        // u64::MAX → le=u64::MAX.
        let les: Vec<u64> = snap.buckets.iter().map(|b| b.le).collect();
        assert_eq!(les, vec![0, 1, 3, 7, 2047, u64::MAX]);
        assert_eq!(snap.buckets[2].count, 2);
    }

    #[test]
    fn chrome_trace_is_line_oriented_valid_json() {
        let bytes = chrome_trace_bytes(&sample_trace());
        let text = String::from_utf8(bytes.clone()).expect("utf8");
        assert!(text.starts_with("[\n"));
        assert!(text.trim_end().ends_with("}]"));
        // Every event is on its own line.
        assert!(text.lines().skip(1).all(|l| l.starts_with('{')));
        // And the whole thing parses as one JSON array of objects.
        let parsed: serde_json::Value = serde_json::from_slice(&bytes).expect("valid JSON");
        let events = parsed.as_seq().expect("array");
        // 2 process metadata + 1 campaign + 2 muts + 2 cases + 2 counters
        // + 1 trailer.
        assert_eq!(events.len(), 10);
        assert!(text.contains("\"name\":\"Catastrophic\""));
        assert!(text.contains("\"raw\":\"system-crash\""));
        assert!(text.contains("\"residue\":1"));
        // Virtual time axis: the second MuT starts at the first's fuel.
        assert!(text.contains("\"ts\":7,\"dur\":3,\"name\":\"strlen\""));
    }

    #[test]
    fn rendering_is_deterministic() {
        let t = sample_trace();
        assert_eq!(chrome_trace_bytes(&t), chrome_trace_bytes(&t));
        assert_eq!(t.total_cases(), 2);
        assert_eq!(t.total_fuel(), 10);
    }

    #[test]
    fn collector_stages_and_commits_muts() {
        let _guard = GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let _hub = Hub::install(TelemetryConfig::tracing());
        let mut tc = TraceCollector::begin(OsVariant::Win98, 5).expect("tracing on");
        tc.begin_mut("A", "Process Primitives", 2);
        tc.record_case(CaseTrace {
            case_idx: 0,
            raw: RawOutcome::ReturnedError,
            class: FailureClass::Pass,
            any_exceptional: true,
            residue_probed: false,
            fuel: 2,
            residue_after: 0,
        });
        // A retry discards the staged span and starts over.
        tc.abort_mut();
        tc.begin_mut("A", "Process Primitives", 2);
        tc.record_case(CaseTrace {
            case_idx: 0,
            raw: RawOutcome::TaskAbort,
            class: FailureClass::Abort,
            any_exceptional: true,
            residue_probed: false,
            fuel: 2,
            residue_after: 1,
        });
        tc.begin_mut("B", "C string", 1);
        let trace = tc.into_trace();
        assert_eq!(trace.muts.len(), 2);
        assert_eq!(trace.muts[0].cases.len(), 1);
        assert_eq!(trace.muts[0].cases[0].class, FailureClass::Abort);
        assert!(trace.muts[1].cases.is_empty());
        Hub::uninstall();
    }

    #[test]
    fn hub_folds_trace_into_deterministic_metrics() {
        let _guard = GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let hub = Hub::install(TelemetryConfig::tracing());
        on_case_applied(FailureClass::Catastrophic);
        on_case_applied(FailureClass::Abort);
        on_case_executed();
        hub.submit_trace(sample_trace());
        let snap = hub.metrics_snapshot();
        assert_eq!(snap.deterministic.campaigns, 1);
        assert_eq!(snap.deterministic.cases_applied, 2);
        assert_eq!(snap.deterministic.classes.catastrophic, 1);
        assert_eq!(snap.deterministic.classes.abort, 1);
        assert_eq!(snap.deterministic.total_fuel, 10);
        assert_eq!(snap.deterministic.case_fuel.count, 2);
        assert_eq!(snap.host.cases_executed, 1);
        assert_eq!(hub.take_traces().len(), 1);
        assert!(hub.take_traces().is_empty(), "drained");
        Hub::uninstall();
    }

    #[test]
    fn profile_renders_sorted_collapsed_stacks() {
        let _guard = GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let hub = Hub::install(TelemetryConfig::all());
        let mut ledger = SubsystemFuel::new();
        ledger.charge(Subsystem::Process, 4);
        ledger.charge(Subsystem::Heap, 1);
        on_case_profile(OsVariant::Win98, "Process Primitives", &ledger);
        on_case_profile(OsVariant::Win98, "Process Primitives", &ledger);
        let mut fs_only = SubsystemFuel::new();
        fs_only.charge(Subsystem::Fs, 9);
        on_case_profile(OsVariant::Linux, "C file I/O management", &fs_only);
        let folded = hub.collapsed_stacks();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec![
                "ballista;linux;C file I/O management;fs 9",
                "ballista;win98;Process Primitives;heap 2",
                "ballista;win98;Process Primitives;process 8",
            ]
        );
        Hub::uninstall();
    }

    #[test]
    fn disabled_hooks_cost_nothing_and_allocate_nothing() {
        let _guard = GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        Hub::uninstall();
        let before = allocation_count();
        assert!(!enabled());
        on_case_applied(FailureClass::Abort);
        on_case_executed();
        on_boot(5);
        on_restore(5, true);
        on_restore(5, false);
        on_journal_append();
        on_journal_fsync(5);
        on_quarantine_retry();
        on_selfcheck_violations(3);
        assert!(TraceCollector::begin(OsVariant::Linux, 10).is_none());
        assert_eq!(allocation_count(), before, "disabled telemetry allocated");
    }

    #[test]
    fn from_env_flags() {
        let _guard = GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        // Env mutation is process-global; restore what we touch.
        let save = |k: &str| std::env::var(k).ok();
        let (t0, p0) = (save("BALLISTA_TELEMETRY"), save("TELEMETRY_PROFILE"));
        std::env::remove_var("BALLISTA_TELEMETRY");
        std::env::remove_var("TELEMETRY_PROFILE");
        assert_eq!(TelemetryConfig::from_env(), None);
        std::env::set_var("BALLISTA_TELEMETRY", "1");
        assert_eq!(TelemetryConfig::from_env(), Some(TelemetryConfig::tracing()));
        std::env::set_var("TELEMETRY_PROFILE", "1");
        assert_eq!(TelemetryConfig::from_env(), Some(TelemetryConfig::all()));
        std::env::set_var("BALLISTA_TELEMETRY", "0");
        assert_eq!(TelemetryConfig::from_env(), Some(TelemetryConfig::all()));
        std::env::remove_var("TELEMETRY_PROFILE");
        assert_eq!(TelemetryConfig::from_env(), None);
        match t0 {
            Some(v) => std::env::set_var("BALLISTA_TELEMETRY", v),
            None => std::env::remove_var("BALLISTA_TELEMETRY"),
        }
        match p0 {
            Some(v) => std::env::set_var("TELEMETRY_PROFILE", v),
            None => std::env::remove_var("TELEMETRY_PROFILE"),
        }
    }
}
