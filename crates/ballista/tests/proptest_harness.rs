//! Property-based tests for the harness invariants: sampling determinism
//! and coverage, classification totality, pool constructibility, and
//! tally arithmetic.

use ballista::campaign::{run_mut_campaign_with, CampaignConfig};
use ballista::catalog;
use ballista::crash::{classify, classify_with_expectation, FailureClass, RawOutcome};
use ballista::exec::Session;
use ballista::sampling;
use proptest::prelude::*;
use sim_kernel::variant::OsVariant;

fn raw_outcome() -> impl Strategy<Value = RawOutcome> {
    prop_oneof![
        Just(RawOutcome::ReturnedSuccess),
        Just(RawOutcome::ReturnedError),
        Just(RawOutcome::TaskAbort),
        Just(RawOutcome::TaskHang),
        Just(RawOutcome::SystemCrash),
    ]
}

proptest! {
    /// Sampling is a function of (dims, cap, name): same inputs, same
    /// output; all indices in range; no duplicates; cap respected.
    #[test]
    fn sampling_invariants(
        dims in proptest::collection::vec(1usize..12, 1..6),
        cap in 1usize..2000,
        name in "[A-Za-z]{1,16}",
    ) {
        let a = sampling::enumerate(&dims, cap, &name);
        let b = sampling::enumerate(&dims, cap, &name);
        prop_assert_eq!(&a, &b);
        let total = sampling::combination_count(&dims);
        prop_assert_eq!(a.exhaustive, total <= cap as u64);
        prop_assert!(a.cases.len() as u64 <= total);
        prop_assert!(a.cases.len() <= cap.max(total.min(cap as u64) as usize));
        let mut seen = std::collections::HashSet::new();
        for combo in &a.cases {
            prop_assert_eq!(combo.len(), dims.len());
            for (i, &idx) in combo.iter().enumerate() {
                prop_assert!(idx < dims[i]);
            }
            prop_assert!(seen.insert(combo.clone()), "duplicate combo");
        }
        if a.exhaustive {
            prop_assert_eq!(a.cases.len() as u64, total);
        } else {
            prop_assert_eq!(a.cases.len(), cap);
        }
    }

    /// Classification is total and consistent: severity only ever equals
    /// or exceeds the refined (Hindering-aware) classification's base, and
    /// the oracle bit only matters for ReturnedSuccess/ReturnedError.
    #[test]
    fn classification_totality(raw in raw_outcome(), exceptional in any::<bool>()) {
        let base = classify(raw, exceptional);
        let refined = classify_with_expectation(raw, exceptional);
        // Refinement only changes ReturnedError-on-benign into Hindering.
        if raw == RawOutcome::ReturnedError && !exceptional {
            prop_assert_eq!(refined, FailureClass::Hindering);
        } else {
            prop_assert_eq!(refined, base);
        }
        // Hard outcomes ignore the oracle bit entirely.
        if matches!(raw, RawOutcome::TaskAbort | RawOutcome::TaskHang | RawOutcome::SystemCrash) {
            prop_assert_eq!(classify(raw, true), classify(raw, false));
            prop_assert!(base.is_failure());
        }
        // Byte roundtrip.
        prop_assert_eq!(RawOutcome::from_byte(raw.to_byte()), Some(raw));
    }

    /// Every pool value of every registered type constructs on a fresh
    /// machine of each Windows variant without panicking, and yields a
    /// stable name.
    #[test]
    fn windows_pools_always_construct(seed in 0usize..64) {
        let registry = catalog::registry_for(OsVariant::Win98);
        for ty in ["int", "size", "buffer", "cstring", "path", "double", "msec",
                   "flags", "FILE_ptr", "tm_ptr", "time_t_ptr", "HANDLE",
                   "filetime_ptr", "systemtime_ptr", "wstring", "mode_string"] {
            let pool = registry.pool(ty);
            let v = &pool[seed % pool.len()];
            for os in [OsVariant::Win95, OsVariant::WinNt4, OsVariant::WinCe] {
                let mut k = sim_kernel::Kernel::with_flavor(os.machine_flavor());
                let _ = (v.make)(&mut k, os);
                prop_assert!(k.is_alive(), "constructor crashed the machine: {ty}/{}", v.name);
            }
        }
    }

    /// Campaign tallies always partition the executed cases, for arbitrary
    /// MuTs and caps, and rates stay in [0, 1].
    #[test]
    fn tallies_partition_cases(cap in 5usize..60, mut_index in 0usize..40) {
        let os = OsVariant::Win98;
        let registry = catalog::registry_for(os);
        let muts = catalog::catalog_for(os);
        let m = &muts[mut_index % muts.len()];
        let cfg = CampaignConfig { cap, record_raw: true, isolation_probe: false, perfect_cleanup: false, parallelism: 1, fuel_budget: 0 };
        let mut session = Session::new();
        let t = run_mut_campaign_with(os, m, &registry, &cfg, &mut session);
        let catastrophic_case = usize::from(t.catastrophic);
        prop_assert_eq!(
            t.cases,
            t.aborts + t.restarts + t.silents + t.error_reports + t.passes + catastrophic_case,
            "{} tallies must partition", t.name
        );
        prop_assert!(t.cases <= t.planned);
        prop_assert_eq!(t.raw_outcomes.len(), t.cases);
        for r in [t.abort_rate(), t.restart_rate(), t.silent_rate(), t.failure_rate()] {
            prop_assert!((0.0..=1.0).contains(&r));
        }
    }

    /// Executing the same case twice from clean sessions gives the same
    /// outcome — the repeatability the paper reports ("virtually all test
    /// results reproduce the same robustness problems every time").
    #[test]
    fn execution_is_repeatable(mut_index in 0usize..60, case_seed in 0usize..500) {
        let os = OsVariant::Win95;
        let registry = catalog::registry_for(os);
        let muts = catalog::catalog_for(os);
        let m = &muts[mut_index % muts.len()];
        let pools = ballista::campaign::resolve_pools(&registry, m);
        if pools.is_empty() {
            return Ok(());
        }
        let dims: Vec<usize> = pools.iter().map(Vec::len).collect();
        let set = sampling::enumerate(&dims, 200, m.name);
        let combo = &set.cases[case_seed % set.cases.len()];
        let a = ballista::exec::execute_case(os, m, &pools, combo, &mut Session::new());
        let b = ballista::exec::execute_case(os, m, &pools, combo, &mut Session::new());
        prop_assert_eq!(a, b, "{} is not repeatable on {:?}", m.name, combo);
    }

    /// A batched [`CaseRunner`] driving a whole sampled sequence through
    /// one resident machine produces exactly the outcomes (and session
    /// residue) of clone-per-case fresh provisioning: dirty-state
    /// reset-in-place is observationally equivalent to a fresh
    /// `snapshot().restore()` before every case.
    #[test]
    fn batched_runner_equals_fresh_per_case(mut_index in 0usize..60, os_seed in 0usize..16) {
        let os = OsVariant::ALL[os_seed % OsVariant::ALL.len()];
        let registry = catalog::registry_for(os);
        let muts = catalog::catalog_for(os);
        let m = &muts[mut_index % muts.len()];
        let pools = ballista::campaign::resolve_pools(&registry, m);
        if pools.is_empty() {
            return Ok(());
        }
        let dims: Vec<usize> = pools.iter().map(Vec::len).collect();
        let set = sampling::enumerate(&dims, 24, m.name);
        let mut runner = ballista::exec::CaseRunner::new();
        let mut batched = Session::new();
        let mut fresh = Session::new();
        for combo in &set.cases {
            let a = runner.execute(
                os, m, &pools, combo, &mut batched, ballista::exec::DEFAULT_FUEL_BUDGET,
            );
            let b = ballista::exec::execute_case_budgeted(
                os, m, &pools, combo, &mut fresh, ballista::exec::DEFAULT_FUEL_BUDGET,
            );
            prop_assert_eq!(a, b, "{} diverged on {:?} under {}", m.name, combo, os.short_name());
            prop_assert_eq!(batched.residue, fresh.residue, "residue diverged for {}", m.name);
        }
    }
}
