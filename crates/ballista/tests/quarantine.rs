//! Worker panic containment and quarantine, end to end. The fault latch
//! (`exec::fault`) is process-global, so every scenario lives in this one
//! test function (integration tests in other binaries run in other
//! processes and never see the latch).
//!
//! Scenarios, on both the sequential and the parallel engine:
//!
//! 1. One injected panic: contained, the MuT reruns on fresh templates,
//!    tallies are identical to an unfaulted run, report is not degraded.
//! 2. Panic on the retry too: the MuT is quarantined with an empty
//!    tally and the report is explicitly `degraded`. A quarantined MuT
//!    contributes nothing to the shared session (it is treated as
//!    absent), so MuTs *before* it in catalog order must still match the
//!    unfaulted reference, and the two engines must agree bit for bit on
//!    the whole degraded report.

use ballista::campaign::{run_campaign, CampaignConfig, CampaignReport, MutTally};
use ballista::exec;
use sim_kernel::variant::OsVariant;

const OS: OsVariant = OsVariant::Win98;
const TARGET: &str = "GetThreadContext";

fn cfg(parallelism: usize) -> CampaignConfig {
    CampaignConfig {
        cap: 40,
        record_raw: true,
        isolation_probe: true,
        perfect_cleanup: false,
        parallelism,
        fuel_budget: 0,
    }
}

fn json(tallies: &[MutTally]) -> String {
    serde_json::to_string(tallies).expect("serialize")
}

fn check_contained_retry(parallelism: usize, reference: &CampaignReport) {
    exec::fault::arm_worker_panic(TARGET, 1);
    let report = run_campaign(OS, &cfg(parallelism));
    exec::fault::disarm();
    assert!(
        !report.degraded,
        "parallelism {parallelism}: one contained panic must not degrade the report"
    );
    assert_eq!(
        json(&report.muts),
        json(&reference.muts),
        "parallelism {parallelism}: the retried run must match the unfaulted run bit for bit"
    );
    assert!(
        report
            .warnings
            .iter()
            .any(|w| w.contains("contained worker panic") && w.contains(TARGET)),
        "parallelism {parallelism}: containment is surfaced: {:?}",
        report.warnings
    );
}

fn check_quarantine(parallelism: usize, reference: &CampaignReport) -> CampaignReport {
    // Two faults: the initial run and the single retry both die.
    exec::fault::arm_worker_panic(TARGET, 2);
    let report = run_campaign(OS, &cfg(parallelism));
    exec::fault::disarm();
    assert!(
        report.degraded,
        "parallelism {parallelism}: a quarantined MuT must mark the report degraded"
    );
    assert!(
        report
            .warnings
            .iter()
            .any(|w| w.contains("quarantined") && w.contains(TARGET)),
        "parallelism {parallelism}: quarantine is surfaced: {:?}",
        report.warnings
    );
    let pos = report
        .muts
        .iter()
        .position(|t| t.name == TARGET)
        .expect("quarantined MuT keeps its catalog slot");
    let tally = &report.muts[pos];
    assert_eq!(tally.cases, 0, "a quarantined tally is empty");
    assert!(tally.planned > 0, "the plan size is still reported");
    assert!(!tally.catastrophic);
    // Session state is identical up to the quarantined MuT, so the
    // catalog prefix must match the unfaulted reference exactly. (MuTs
    // after it may legitimately differ: the quarantined MuT's residue
    // never entered the session.)
    assert_eq!(
        json(&report.muts[..pos]),
        json(&reference.muts[..pos]),
        "parallelism {parallelism}: quarantine disturbed MuTs before the target"
    );
    report
}

#[test]
fn worker_panics_are_contained_then_quarantined() {
    let reference = run_campaign(OS, &cfg(1));
    assert!(!reference.degraded);
    assert!(reference.warnings.is_empty());
    check_contained_retry(1, &reference);
    check_contained_retry(4, &reference);
    let q1 = check_quarantine(1, &reference);
    let q4 = check_quarantine(4, &reference);
    assert_eq!(
        json(&q1.muts),
        json(&q4.muts),
        "both engines must agree bit for bit on the degraded report"
    );
}
