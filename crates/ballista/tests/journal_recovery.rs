//! Property test for journal-recovery robustness: corrupt or truncate a
//! campaign journal at an **arbitrary byte offset** — header, record
//! interior, record boundary, torn tail — and a resumed campaign must
//! never panic, never double-count a case, and always produce tallies
//! identical to the uninterrupted reference (re-executing whatever the
//! recovery had to discard).

use ballista::campaign::{run_campaign_journaled, CampaignConfig};
use proptest::prelude::*;
use sim_kernel::variant::OsVariant;
use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;

const OS: OsVariant = OsVariant::WinNt4;

fn cfg() -> CampaignConfig {
    CampaignConfig {
        cap: 12,
        record_raw: true,
        isolation_probe: false,
        perfect_cleanup: false,
        parallelism: 1,
        fuel_budget: 0,
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ballista-journal-recovery");
    fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// The pristine journal bytes and the reference tallies, computed once.
fn reference() -> &'static (Vec<u8>, String) {
    static REF: OnceLock<(Vec<u8>, String)> = OnceLock::new();
    REF.get_or_init(|| {
        let path = scratch("reference.jrn");
        let _ = fs::remove_file(&path);
        let report = run_campaign_journaled(OS, &cfg(), &path, false).expect("reference run");
        let bytes = fs::read(&path).expect("journal readable");
        let muts = serde_json::to_string(&report.muts).expect("serialize");
        let _ = fs::remove_file(&path);
        (bytes, muts)
    })
}

proptest! {
    /// Truncate the journal to an arbitrary byte length: resume recovers
    /// the valid record prefix and re-executes the rest, matching the
    /// reference exactly.
    #[test]
    fn resume_survives_truncation_at_any_offset(frac in 0.0f64..1.0) {
        let (bytes, want) = reference();
        let cut = (bytes.len() as f64 * frac) as usize;
        let path = scratch(&format!("trunc-{cut}.jrn"));
        fs::write(&path, &bytes[..cut]).expect("plant truncated journal");
        let resumed = run_campaign_journaled(OS, &cfg(), &path, true).expect("resume");
        prop_assert_eq!(
            &serde_json::to_string(&resumed.muts).expect("serialize"),
            want,
            "truncation to {} of {} bytes broke resume", cut, bytes.len()
        );
        let _ = fs::remove_file(&path);
    }

    /// Flip one byte anywhere in the journal: the checksum (or the
    /// header check) rejects everything from the corruption on, and the
    /// resumed campaign still matches the reference.
    #[test]
    fn resume_survives_single_byte_corruption(frac in 0.0f64..1.0, flip in 1u8..=255) {
        let (bytes, want) = reference();
        let pos = ((bytes.len() - 1) as f64 * frac) as usize;
        let mut bad = bytes.clone();
        bad[pos] ^= flip;
        let path = scratch(&format!("flip-{pos}-{flip}.jrn"));
        fs::write(&path, &bad).expect("plant corrupted journal");
        let resumed = run_campaign_journaled(OS, &cfg(), &path, true).expect("resume");
        prop_assert_eq!(
            &serde_json::to_string(&resumed.muts).expect("serialize"),
            want,
            "flip of byte {} by {:#x} broke resume", pos, flip
        );
        let _ = fs::remove_file(&path);
    }
}
