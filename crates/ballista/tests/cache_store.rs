//! Result-cache contract tests: byte-identical round-trips, fingerprint
//! key sensitivity (the invalidation-by-construction argument), LRU
//! front behavior, and corruption tolerance (a damaged entry is a miss,
//! never a crash or a wrong answer).

use ballista::cache::ResultCache;
use ballista::campaign::{fingerprint, run_campaign, CampaignConfig, CampaignFingerprint};
use proptest::prelude::*;
use sim_kernel::variant::OsVariant;
use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ballista-cache-store").join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn cfg(cap: usize) -> CampaignConfig {
    CampaignConfig {
        cap,
        record_raw: true,
        ..CampaignConfig::default()
    }
}

/// One small real report, shared across tests (campaigns are the
/// expensive part).
fn base_report() -> &'static ballista::campaign::CampaignReport {
    static REPORT: OnceLock<ballista::campaign::CampaignReport> = OnceLock::new();
    REPORT.get_or_init(|| run_campaign(OsVariant::Win95, &cfg(60)))
}

#[test]
fn round_trip_is_byte_identical() {
    let cache = ResultCache::new(scratch("round-trip"), 8).expect("cache");
    let report = base_report();
    let fp = fingerprint(report.os, &cfg(60));
    let stored = cache.store(fp, report).expect("store");

    // Memory-front hit: the very same bytes.
    let via_front = cache.lookup(fp).expect("front hit");
    assert_eq!(*stored, *via_front);

    // Disk hit (fresh cache instance, same directory): still the same
    // bytes, and they parse back to an equal report.
    let cold = ResultCache::new(cache.dir(), 8).expect("reopen");
    let via_disk = cold.lookup(fp).expect("disk hit");
    assert_eq!(*stored, *via_disk);
    let parsed = cold.lookup_report(fp).expect("parse");
    assert_eq!(parsed.muts, report.muts);
    assert_eq!(parsed.total_cases, report.total_cases);
}

#[test]
fn key_sensitivity_every_knob_changes_the_fingerprint() {
    let base = cfg(200);
    let fp = fingerprint(OsVariant::Win95, &base);

    // Flipping any result-relevant knob must change the key, so a
    // cache filled under one config can never serve another.
    let variations = [
        ("cap", CampaignConfig { cap: 201, ..base }),
        (
            "record_raw",
            CampaignConfig {
                record_raw: false,
                ..base
            },
        ),
        (
            "isolation_probe",
            CampaignConfig {
                isolation_probe: false,
                ..base
            },
        ),
        (
            "perfect_cleanup",
            CampaignConfig {
                perfect_cleanup: true,
                ..base
            },
        ),
        (
            "parallelism",
            CampaignConfig {
                parallelism: 2,
                ..base
            },
        ),
        (
            "fuel_budget",
            CampaignConfig {
                fuel_budget: 123_456,
                ..base
            },
        ),
    ];
    for (knob, changed) in variations {
        assert_ne!(
            fingerprint(OsVariant::Win95, &changed),
            fp,
            "{knob} must be part of the cache key"
        );
    }

    // And so must the variant.
    assert_ne!(fingerprint(OsVariant::WinNt4, &base), fp);

    // While recomputing under an equal config is the same key.
    assert_eq!(fingerprint(OsVariant::Win95, &{ base }), fp);
}

#[test]
fn corrupted_entries_are_misses_not_crashes() {
    let cache = ResultCache::new(scratch("corrupt"), 0).expect("cache");
    let report = base_report();
    let fp = fingerprint(report.os, &cfg(60));
    cache.store(fp, report).expect("store");
    let path = cache.entry_path(fp);
    let pristine = fs::read(&path).expect("entry bytes");

    // Flip one byte at every interesting offset: magic, fingerprint,
    // length, checksum, payload head, payload middle, payload tail.
    let probes = [
        0usize,
        9,
        17,
        25,
        32,
        32 + (pristine.len() - 32) / 2,
        pristine.len() - 1,
    ];
    for at in probes {
        let mut damaged = pristine.clone();
        damaged[at] ^= 0x40;
        fs::write(&path, &damaged).expect("write damaged");
        assert!(
            cache.lookup(fp).is_none(),
            "flipped byte at {at} must invalidate the entry"
        );
    }

    // Truncations: empty file, half a header, half an entry.
    for keep in [0usize, 16, pristine.len() / 2] {
        fs::write(&path, &pristine[..keep]).expect("truncate");
        assert!(
            cache.lookup(fp).is_none(),
            "truncation to {keep} bytes must be a miss"
        );
    }

    // Restoring the pristine bytes restores the hit.
    fs::write(&path, &pristine).expect("restore");
    assert!(cache.lookup(fp).is_some());
}

#[test]
fn lru_front_evicts_oldest_but_disk_still_serves() {
    let cache = ResultCache::new(scratch("lru"), 2).expect("cache");
    let report = base_report();
    let fps: Vec<_> = (0..3)
        .map(|i| CampaignFingerprint::from_u64(0x1000 + i))
        .collect();
    for &fp in &fps {
        cache.store(fp, report).expect("store");
    }
    // Capacity 2: storing the third evicted the least-recently-used
    // first entry from memory…
    assert_eq!(cache.memory_len(), 2);
    // …but the disk entry still serves (and repopulates the front).
    assert!(cache.lookup(fps[0]).is_some());
    assert_eq!(cache.memory_len(), 2);
}

proptest! {
    /// Any mutation anywhere in a stored entry file — position and
    /// XOR mask both arbitrary — either leaves the entry byte-valid
    /// (mask 0) or turns the lookup into a miss. Never a panic, never
    /// corrupt bytes served.
    #[test]
    fn arbitrary_corruption_never_serves_damaged_bytes(
        offset in any::<u64>(),
        mask in any::<u8>(),
    ) {
        let report = base_report();
        let fp = fingerprint(report.os, &cfg(60));
        let dir = std::env::temp_dir()
            .join("ballista-cache-store")
            .join(format!("prop-{mask:02x}"));
        let _ = fs::remove_dir_all(&dir);
        let cache = ResultCache::new(&dir, 0).expect("cache");
        let stored = cache.store(fp, report).expect("store");
        let path = cache.entry_path(fp);
        let mut bytes = fs::read(&path).expect("entry bytes");
        let at = usize::try_from(offset).unwrap_or(usize::MAX) % bytes.len();
        bytes[at] ^= mask;
        fs::write(&path, &bytes).expect("write mutated");
        match cache.lookup(fp) {
            Some(served) => prop_assert_eq!(&*served, &*stored, "a hit must be byte-exact"),
            None => prop_assert_ne!(mask, 0, "an unmutated entry must hit"),
        }
    }
}
