//! Property test for the coverage accountant: merging per-chunk coverage
//! maps (the shape per-worker accounting produces) is order-independent
//! and chunk-boundary-independent — any split of a campaign's tallies,
//! merged in any permutation, yields exactly the coverage computed from
//! the whole report in one pass. This is what makes the merged
//! `coverage.json` artifact trustworthy regardless of how the campaign
//! was parallelised.

use ballista::campaign::{run_campaign, CampaignConfig, CampaignReport};
use ballista::coverage::Coverage;
use proptest::prelude::*;
use sim_kernel::variant::OsVariant;
use std::sync::OnceLock;

fn cfg() -> CampaignConfig {
    CampaignConfig {
        cap: 60,
        record_raw: true,
        isolation_probe: false,
        perfect_cleanup: false,
        parallelism: 1,
        fuel_budget: 0,
    }
}

fn base_report(os: OsVariant) -> &'static CampaignReport {
    static WIN98: OnceLock<CampaignReport> = OnceLock::new();
    static WINNT: OnceLock<CampaignReport> = OnceLock::new();
    match os {
        OsVariant::Win98 => WIN98.get_or_init(|| run_campaign(os, &cfg())),
        OsVariant::WinNt4 => WINNT.get_or_init(|| run_campaign(os, &cfg())),
        _ => unreachable!("test only uses Win98 and WinNt4"),
    }
}

/// Coverage of each chunk when the report's tallies are split into at most
/// `chunks` contiguous pieces — the shape a chunked parallel campaign's
/// per-worker accounting would produce.
fn chunk_coverages(os: OsVariant, chunks: usize) -> Vec<Coverage> {
    let report = base_report(os);
    let size = report.muts.len().div_ceil(chunks);
    report
        .muts
        .chunks(size.max(1))
        .map(|slice| {
            let sub = CampaignReport {
                os: report.os,
                muts: slice.to_vec(),
                total_cases: slice.iter().map(|t| t.cases).sum(),
                stats: None,
                warnings: Vec::new(),
                degraded: false,
                fleet_degraded: false,
            };
            Coverage::from_report(&sub, &cfg())
        })
        .collect()
}

/// Deterministic Fisher–Yates permutation of `0..n` driven by an xorshift
/// stream, so proptest's `seed` fully determines the order.
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        order.swap(i, (seed as usize) % (i + 1));
    }
    order
}

fn merged(parts: &[Coverage], order: &[usize]) -> String {
    let mut acc = Coverage::default();
    for &i in order {
        acc.merge(&parts[i]);
    }
    serde_json::to_string(&acc).expect("coverage serializes")
}

proptest! {
    /// Any chunking of one variant's tallies, merged in any order, equals
    /// the single-pass coverage of the whole report.
    #[test]
    fn chunked_merge_equals_single_pass(chunks in 1usize..9, seed in any::<u64>()) {
        let parts = chunk_coverages(OsVariant::Win98, chunks);
        let whole = Coverage::from_report(base_report(OsVariant::Win98), &cfg());
        let expected = serde_json::to_string(&whole).expect("coverage serializes");
        let order = permutation(parts.len(), seed);
        prop_assert_eq!(merged(&parts, &order), expected);
    }

    /// Mixing chunks from two variants: every permutation of the parts
    /// merges to the same multi-variant total.
    #[test]
    fn cross_variant_merge_is_order_independent(
        chunks in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut parts = chunk_coverages(OsVariant::Win98, chunks);
        parts.push(Coverage::from_report(base_report(OsVariant::WinNt4), &cfg()));
        let in_order: Vec<usize> = (0..parts.len()).collect();
        let order = permutation(parts.len(), seed);
        prop_assert_eq!(merged(&parts, &order), merged(&parts, &in_order));
    }
}
