//! Cross-engine equivalence matrix, asserted through the conformance
//! oracle: on every OS variant at cap 200, the serial engine, the
//! parallel engine at 1, 2 and 8 workers, a fresh journaled run, and a
//! journaled run split at a case boundary and resumed must all produce
//! bit-identical per-MuT tallies. Subsumes the hand-rolled diffs that
//! `parallel_determinism.rs` and `resume_determinism.rs` used to carry —
//! the oracle *is* the diff now, and every tally is additionally
//! self-checked live through the engines' oracle hooks.

use ballista::campaign::{run_campaign, run_campaign_journaled, CampaignConfig};
use ballista::fleet::{run_campaign_fleet, FleetConfig};
use ballista::journal::{HEADER_LEN, RECORD_LEN};
use ballista::oracle;
use sim_kernel::variant::OsVariant;
use std::fs;
use std::path::PathBuf;

fn cfg(parallelism: usize) -> CampaignConfig {
    CampaignConfig {
        cap: 200,
        record_raw: true,
        isolation_probe: true,
        perfect_cleanup: false,
        parallelism,
        fuel_budget: 0,
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ballista-engine-equivalence");
    fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn all_engines_bit_identical_on_every_variant() {
    oracle::selfcheck::set_enabled(true);
    let _ = oracle::selfcheck::take_violations();
    for os in OsVariant::ALL {
        let name = os.short_name();
        let serial = run_campaign(os, &cfg(1));

        // Internal consistency of the reference itself.
        let report_check = oracle::check_report(&serial);
        assert!(
            report_check.violations.is_empty(),
            "{name}: {:?}",
            report_check.violations
        );

        // Worker-count permutation: 1, 2 and 8 workers.
        for workers in [1usize, 2, 8] {
            let parallel = run_campaign(os, &cfg(workers));
            let check = oracle::check_cross_engine(
                "serial",
                &serial,
                &format!("parallel-{workers}"),
                &parallel,
            );
            assert!(
                check.violations.is_empty(),
                "{name} at {workers} workers: {:?}",
                check.violations
            );
        }

        // Fleet row: the sharded executor — specs and results crossing
        // the wire protocol, shards merged back in catalog order — must
        // reproduce the serial tallies bit for bit too.
        let fleet = run_campaign_fleet(
            os,
            &cfg(1),
            &FleetConfig {
                shards: 8,
                workers: 2,
                ..FleetConfig::default()
            },
        );
        let check = oracle::check_cross_engine("serial", &serial, "fleet-8x2", &fleet);
        assert!(check.violations.is_empty(), "{name}: {:?}", check.violations);

        // Journaled engine: fresh run, then kill at the mid-case boundary
        // (byte-exact truncation, the state a SIGKILL between two appends
        // leaves) and resume.
        let journal = scratch(&format!("{name}.jrn"));
        let _ = fs::remove_file(&journal);
        let journaled =
            run_campaign_journaled(os, &cfg(1), &journal, false).expect("journaled run");
        let check = oracle::check_cross_engine("serial", &serial, "journaled", &journaled);
        assert!(check.violations.is_empty(), "{name}: {:?}", check.violations);

        let bytes = fs::read(&journal).expect("journal readable");
        let boundary = HEADER_LEN + (journaled.total_cases / 2) * RECORD_LEN;
        fs::write(&journal, &bytes[..boundary]).expect("truncate journal");
        let resumed = run_campaign_journaled(os, &cfg(1), &journal, true).expect("resume");
        let check = oracle::check_cross_engine("serial", &serial, "split-resume", &resumed);
        assert!(check.violations.is_empty(), "{name}: {:?}", check.violations);
        assert_eq!(
            resumed.stats.expect("stats").replayed_cases,
            journaled.total_cases / 2,
            "{name}: exactly the journaled prefix is replayed"
        );
        let _ = fs::remove_file(&journal);
    }
    let live = oracle::selfcheck::take_violations();
    oracle::selfcheck::set_enabled(false);
    assert!(live.is_empty(), "live tally self-check: {live:?}");
}

/// Crashcon row of the matrix, plus the oracle's red path. One test
/// function on purpose: the torn-rename latch is process-global, and
/// the clean-matrix half asserts zero inconsistencies — interleaving
/// them as separate tests would race the latch.
#[test]
fn crashcon_engines_match_serial_and_torn_rename_is_flagged() {
    use ballista::crashcon::run_crashcon;
    use ballista::exec::fault;
    use ballista::fleet::run_crashcon_fleet;

    for os in OsVariant::ALL {
        let name = os.short_name();
        let serial = run_crashcon(os, &cfg(1));
        assert!(
            serial.consistent(),
            "{name}: the unbroken filesystem must pass every bounded crash point"
        );
        let parallel = run_crashcon(os, &cfg(8));
        assert_eq!(
            serial.muts, parallel.muts,
            "{name}: crashcon parallel-8 tallies diverged from serial"
        );
        let fleet = run_crashcon_fleet(
            os,
            &cfg(1),
            &FleetConfig {
                shards: 8,
                workers: 2,
                ..FleetConfig::default()
            },
        );
        assert_eq!(
            serial.muts, fleet.muts,
            "{name}: crashcon fleet-8x2 tallies diverged from serial"
        );
    }

    // Red path: a filesystem whose rename tears across a crash (source
    // removed, destination insert lost) must be flagged, and the
    // divergence attributed to the rename oracle. A correct filesystem
    // passes every crash point, so without this check the oracle's FAIL
    // verdict would be dead code.
    fault::arm_broken_rename(true);
    let broken = run_crashcon(OsVariant::WinNt4, &cfg(1));
    fault::arm_broken_rename(false);
    assert!(
        !broken.consistent(),
        "torn renames must produce inconsistent crash images"
    );
    assert!(
        broken.muts.iter().any(|t| t.viol_rename > 0),
        "torn-rename inconsistencies must be attributed to the rename oracle"
    );
}

/// The batched resident-machine loop against legacy boot-per-case
/// provisioning: dirty-state reset-in-place must not change a single
/// tally. Legacy mode is the pre-snapshot cost model (full eager-zero
/// boot before every case), so this row pins the whole provisioning
/// stack — template clone, reset-in-place, and per-case boot — to one
/// bit-identical outcome.
#[test]
fn batched_loop_matches_legacy_provisioning() {
    use ballista::exec::LEGACY_PROVISIONING;
    use std::sync::atomic::Ordering;
    for os in [OsVariant::Win95, OsVariant::Linux] {
        LEGACY_PROVISIONING.store(true, Ordering::SeqCst);
        let legacy = run_campaign(os, &cfg(1));
        LEGACY_PROVISIONING.store(false, Ordering::SeqCst);
        let batched = run_campaign(os, &cfg(1));
        let check = oracle::check_cross_engine("legacy", &legacy, "batched", &batched);
        assert!(
            check.violations.is_empty(),
            "{}: {:?}",
            os.short_name(),
            check.violations
        );
    }
}
