//! Serving-layer contract tests against a real listening server: the
//! coalescing guarantee (K concurrent identical requests → exactly one
//! campaign executed, all K responses bit-identical), the cache-hit
//! path, fingerprint addressing, and spec validation — all through
//! plain `std::net` sockets, the same wire a remote client uses.

use ballista::server::{CampaignSpec, Server, ServerConfig, ServerMetrics};
use sim_kernel::variant::OsVariant;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("ballista-server-coalescing")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(name: &str) -> SocketAddr {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        cache_dir: scratch(name),
        cache_capacity: 16,
    })
    .expect("bind server");
    server.spawn().addr
}

/// Minimal HTTP/1.1 client: one request, returns (status, body).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("send head");
    stream.write_all(body.as_bytes()).expect("send body");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let split = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let head = std::str::from_utf8(&response[..split]).expect("header utf8");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, response[split + 4..].to_vec())
}

fn spec_json(cap: usize) -> String {
    serde_json::to_string(&CampaignSpec {
        cap,
        ..CampaignSpec::new(OsVariant::Win95)
    })
    .expect("spec serializes")
}

fn metrics(addr: SocketAddr) -> ServerMetrics {
    let (status, body) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    serde_json::from_slice(&body).expect("metrics parse")
}

#[test]
fn concurrent_identical_posts_execute_one_campaign_bit_identically() {
    let addr = start("coalesce");
    const K: usize = 16;

    // K concurrent identical specs at cap 200. The responses must be
    // bit-identical — including the embedded CampaignStats, whose
    // wall-clock field would differ between any two executions, so
    // byte-equality alone already proves a single execution.
    let responses: Vec<(u16, Vec<u8>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..K)
            .map(|_| s.spawn(move || request(addr, "POST", "/campaign", &spec_json(200))))
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).collect()
    });
    let (first_status, first_body) = &responses[0];
    assert_eq!(*first_status, 200);
    assert!(!first_body.is_empty());
    for (status, body) in &responses {
        assert_eq!(*status, 200);
        assert_eq!(body, first_body, "all K responses must be bit-identical");
    }

    // The server's own accounting agrees: one miss (the leader), one
    // campaign executed, everyone else coalesced or served from cache.
    let m = metrics(addr);
    assert_eq!(m.campaigns_executed, 1, "exactly one campaign ran");
    assert_eq!(m.cache_misses, 1);
    assert_eq!(m.campaign_posts, K as u64);
    assert_eq!(
        m.cache_hits + m.requests_coalesced,
        (K - 1) as u64,
        "every non-leader was coalesced or cache-served"
    );

    // The stats in the report describe one fleet campaign.
    let report: ballista::campaign::CampaignReport =
        serde_json::from_slice(first_body).expect("report parses");
    let stats = report.stats.expect("stats present");
    assert!(stats.restores > 0, "the one campaign actually executed");

    // A later identical POST is a pure cache hit — still the same bytes.
    let (status, body) = request(addr, "POST", "/campaign", &spec_json(200));
    assert_eq!(status, 200);
    assert_eq!(&body, first_body);
    let m2 = metrics(addr);
    assert_eq!(m2.campaigns_executed, 1, "the hit executed nothing");
    assert_eq!(m2.cache_misses, 1);
}

#[test]
fn fingerprint_addressing_and_distinct_specs() {
    let addr = start("addressing");

    // Unknown fingerprint → 404.
    let (status, _) = request(addr, "GET", "/campaign/0000000000000000", "");
    assert_eq!(status, 404);
    // Malformed fingerprint → 400.
    let (status, _) = request(addr, "GET", "/campaign/not-hex", "");
    assert_eq!(status, 400);
    // Malformed spec → 400.
    let (status, _) = request(addr, "POST", "/campaign", "{\"cap\": 60}");
    assert_eq!(status, 400);

    // Two distinct specs are two campaigns with two fingerprints.
    let (status, body_a) = request(addr, "POST", "/campaign", &spec_json(60));
    assert_eq!(status, 200);
    let (status, body_b) = request(addr, "POST", "/campaign", &spec_json(80));
    assert_eq!(status, 200);
    assert_ne!(body_a, body_b);
    assert_eq!(metrics(addr).campaigns_executed, 2);

    // Each is addressable by its fingerprint afterwards.
    use ballista::campaign::{fingerprint, CampaignConfig};
    for cap in [60usize, 80] {
        let fp = fingerprint(
            OsVariant::Win95,
            &CampaignConfig {
                cap,
                ..CampaignConfig::default()
            },
        );
        let (status, body) = request(addr, "GET", &format!("/campaign/{fp}"), "");
        assert_eq!(status, 200, "cap-{cap} report addressable at {fp}");
        assert_eq!(body, if cap == 60 { body_a.clone() } else { body_b.clone() });
    }
}
