//! Paper-fidelity regressions pinned as named oracle invariants.
//!
//! The DSN 2000 paper's headline anecdote: calling
//! `GetThreadContext(GetCurrentThread(), NULL)` crashes the entire OS on
//! the Windows 95 family (95 / 98 / 98 SE / CE) but is survived by the
//! NT family (NT 4.0 / 2000). The oracle carries this as the
//! `gtc-null-context-family-split` invariant; this test keeps it pinned
//! so a catalog or kernel edit can't silently lose the paper's most
//! famous data point.

use ballista::oracle;

#[test]
fn gtc_null_context_crashes_9x_and_ce_but_not_nt() {
    let check = oracle::check_gtc_null_context();
    assert_eq!(check.invariant, "gtc-null-context-family-split");
    assert_eq!(
        check.checked, 6,
        "all six Windows variants carry GetThreadContext"
    );
    assert!(
        check.violations.is_empty(),
        "paper-fidelity violations: {:?}",
        check.violations
    );
}
