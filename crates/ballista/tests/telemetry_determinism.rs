//! Telemetry determinism contract: with tracing enabled, the serial,
//! parallel (2 and 8 workers) and journaled engines — including a
//! journaled run killed mid-campaign and resumed — must produce
//! **bit-identical** Chrome trace files and identical engine-invariant
//! (`deterministic`) metrics for the same plan. Host-side metrics (boots,
//! fsyncs, wall latencies) are explicitly exempt.
//!
//! The flip side is also asserted: with no telemetry hub installed, the
//! engines perform *zero* telemetry allocations (the "zero-cost when
//! disabled" half of the tentpole contract).

use ballista::campaign::{run_campaign, run_campaign_journaled, CampaignConfig, CampaignReport};
use ballista::journal::{HEADER_LEN, RECORD_LEN};
use ballista::telemetry::{self, chrome_trace_bytes, Hub, TelemetryConfig};
use sim_kernel::variant::OsVariant;
use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;

/// The telemetry hub is process-global; tests that install (or assert the
/// absence of) a hub must not overlap.
static GUARD: Mutex<()> = Mutex::new(());

fn cfg(parallelism: usize) -> CampaignConfig {
    CampaignConfig {
        cap: 200,
        record_raw: true,
        isolation_probe: true,
        perfect_cleanup: false,
        parallelism,
        fuel_budget: 0,
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ballista-telemetry-determinism");
    fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Runs one campaign under a freshly installed tracing hub and returns
/// the rendered Chrome trace plus the serialized engine-invariant metrics
/// half.
fn traced(f: impl FnOnce() -> CampaignReport) -> (Vec<u8>, String) {
    let hub = Hub::install(TelemetryConfig::tracing());
    let report = f();
    assert!(report.total_cases > 0, "campaign executed cases");
    let traces = hub.take_traces();
    assert_eq!(traces.len(), 1, "exactly one campaign trace submitted");
    let bytes = chrome_trace_bytes(&traces[0]);
    let det = serde_json::to_string(&hub.metrics_snapshot().deterministic).expect("serialize");
    Hub::uninstall();
    (bytes, det)
}

#[test]
fn trace_and_metrics_bit_identical_across_engines() {
    let _guard = GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    for os in [OsVariant::Win98, OsVariant::WinCe] {
        let name = os.short_name();
        let (base_trace, base_metrics) = traced(|| run_campaign(os, &cfg(1)));
        assert!(
            base_trace.len() > 64,
            "{name}: serial trace is non-trivial"
        );

        for workers in [2usize, 8] {
            let (trace, metrics) = traced(|| run_campaign(os, &cfg(workers)));
            assert_eq!(
                trace, base_trace,
                "{name}: parallel({workers}) trace diverged from serial"
            );
            assert_eq!(
                metrics, base_metrics,
                "{name}: parallel({workers}) deterministic metrics diverged"
            );
        }

        let path = scratch(&format!("{name}.jrn"));
        let _ = fs::remove_file(&path);
        let (trace, metrics) =
            traced(|| run_campaign_journaled(os, &cfg(1), &path, false).expect("journaled run"));
        assert_eq!(trace, base_trace, "{name}: journaled trace diverged");
        assert_eq!(
            metrics, base_metrics,
            "{name}: journaled deterministic metrics diverged"
        );

        // Kill at the midpoint (truncate to a record boundary) and
        // resume: replayed cases take their fuel from the journal's v2
        // records, so even the per-case fuel spans must come out
        // bit-identical.
        let bytes = fs::read(&path).expect("journal readable");
        let total = (bytes.len() - HEADER_LEN) / RECORD_LEN;
        assert!(total > 2, "{name}: enough records to split");
        fs::write(&path, &bytes[..HEADER_LEN + (total / 2) * RECORD_LEN]).expect("truncate");
        let (trace, metrics) =
            traced(|| run_campaign_journaled(os, &cfg(1), &path, true).expect("resumed run"));
        assert_eq!(
            trace, base_trace,
            "{name}: resumed-journal trace diverged from serial"
        );
        assert_eq!(
            metrics, base_metrics,
            "{name}: resumed-journal deterministic metrics diverged"
        );
        let _ = fs::remove_file(&path);
    }
}

#[test]
fn disabled_telemetry_performs_no_telemetry_allocations() {
    let _guard = GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    Hub::uninstall();
    assert!(!telemetry::enabled(), "no hub installed");
    let before = telemetry::allocation_count();
    let serial = run_campaign(OsVariant::Win98, &cfg(1));
    let parallel = run_campaign(OsVariant::Win98, &cfg(4));
    assert_eq!(serial.total_cases, parallel.total_cases);
    assert_eq!(
        telemetry::allocation_count(),
        before,
        "disabled telemetry must not allocate"
    );
}
