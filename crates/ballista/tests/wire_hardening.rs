//! Adversarial-bytes hardening of the fleet wire protocol: arbitrary,
//! truncated, and bit-flipped buffers fed to `ShardSpec::from_wire` /
//! `ShardResult::from_wire` and the frame reader must come back as
//! `Err` (or a clean EOF), never a panic — a worker process boundary is
//! exactly where garbage shows up, and the supervisor's retry machinery
//! depends on these paths returning instead of unwinding.

use ballista::campaign::CampaignConfig;
use ballista::fleet::{
    read_frame, write_frame, ShardResult, ShardSpec, WireCleanMut, FRAME_SPEC,
};
use proptest::prelude::*;
use sim_kernel::variant::OsVariant;

fn valid_spec_wire() -> Vec<u8> {
    ShardSpec {
        os: OsVariant::Win95,
        cfg: CampaignConfig {
            cap: 200,
            ..CampaignConfig::default()
        },
        mut_start: 3,
        mut_end: 9,
        capture_fuel: true,
        crashcon: false,
        adaptive: None,
    }
    .to_wire()
}

fn valid_result_wire() -> Vec<u8> {
    ShardResult {
        mut_start: 3,
        muts: vec![
            Some(WireCleanMut {
                records: vec![0, 1, 2, 255],
                fuel: Some(vec![10, 20, 30, 40]),
            }),
            None,
        ],
        warnings: vec!["quarantined strcpy".to_owned()],
        quarantine_retries: 1,
    }
    .to_wire()
}

proptest! {
    /// Arbitrary bytes never panic either parser; they parse or they
    /// return an error, nothing else.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = ShardSpec::from_wire(&bytes);
        let _ = ShardResult::from_wire(&bytes);
    }

    /// Every truncation of a valid encoding is rejected gracefully
    /// (a strict prefix of JSON is never valid JSON).
    #[test]
    fn truncations_are_rejected(cut in 0usize..1000) {
        let spec = valid_spec_wire();
        if cut < spec.len() {
            prop_assert!(ShardSpec::from_wire(&spec[..cut]).is_err());
        }
        let result = valid_result_wire();
        if cut < result.len() {
            prop_assert!(ShardResult::from_wire(&result[..cut]).is_err());
        }
    }

    /// Single bit flips never panic: they either still parse (a flip
    /// inside a string payload can be harmless) or error out.
    #[test]
    fn bit_flips_never_panic(pos in 0usize..1000, bit in 0u8..8) {
        for wire in [valid_spec_wire(), valid_result_wire()] {
            let mut flipped = wire.clone();
            let i = pos % flipped.len();
            flipped[i] ^= 1 << bit;
            let _ = ShardSpec::from_wire(&flipped);
            let _ = ShardResult::from_wire(&flipped);
        }
    }

    /// Frame transport: every (tag, payload) round-trips, and truncating
    /// the encoded frame anywhere yields an error or clean EOF from the
    /// reader — never a panic, never a bogus frame.
    #[test]
    fn frames_round_trip_and_reject_truncation(
        tag in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        cut in 0usize..256,
    ) {
        let mut encoded = Vec::new();
        write_frame(&mut encoded, tag, &payload).expect("vec write cannot fail");
        let decoded = read_frame(&mut &encoded[..]).expect("well-formed frame");
        prop_assert_eq!(decoded, Some((tag, payload)));

        let cut = cut % (encoded.len() + 1);
        match read_frame(&mut &encoded[..cut]) {
            Ok(None) => prop_assert_eq!(cut, 0, "EOF only at a frame boundary"),
            Ok(Some(_)) => prop_assert_eq!(cut, encoded.len()),
            Err(_) => prop_assert!(cut > 0 && cut < encoded.len()),
        }
    }
}

/// An absurd length prefix is a protocol fault, not an allocation.
#[test]
fn oversized_frame_length_is_rejected() {
    let mut encoded = vec![FRAME_SPEC];
    encoded.extend_from_slice(&u32::MAX.to_le_bytes());
    encoded.extend_from_slice(b"whatever");
    assert!(read_frame(&mut &encoded[..]).is_err());
}
