//! Acceptance tests for campaign survivability: a journaled campaign
//! killed at **any case boundary** and resumed must serialize to
//! bit-identical per-MuT tallies as (a) the uninterrupted journaled run
//! and (b) the plain sequential engine — on every OS variant. Killing at
//! a case boundary is simulated by truncating the journal to a record
//! prefix, exactly the state a SIGKILL between two appends leaves behind
//! (the CI resume-crash-safety job does the real-SIGKILL version).
//!
//! Also asserts the fuel watchdog end to end: a MuT with a
//! fuel-exhausting case (`SleepEx`) tallies it as Restart without
//! stalling the parallel engine.

use ballista::campaign::{run_campaign, run_campaign_journaled, CampaignConfig};
use ballista::journal::{HEADER_LEN, RECORD_LEN};
use sim_kernel::variant::OsVariant;
use std::fs;
use std::path::PathBuf;

fn cfg() -> CampaignConfig {
    CampaignConfig {
        cap: 200,
        record_raw: true,
        isolation_probe: true,
        perfect_cleanup: false,
        parallelism: 1,
        fuel_budget: 0,
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ballista-resume-determinism");
    fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Truncates the journal to `cases` records — the byte-exact state of a
/// campaign killed at that case boundary.
fn kill_at_boundary(path: &PathBuf, cases: u64) {
    let bytes = fs::read(path).expect("journal readable");
    let end = HEADER_LEN + cases as usize * RECORD_LEN;
    assert!(end <= bytes.len(), "boundary inside the journal");
    fs::write(path, &bytes[..end]).expect("truncate journal");
}

#[test]
fn kill_and_resume_is_bit_identical_on_every_variant() {
    for os in OsVariant::ALL {
        let cfg = cfg();
        let name = os.short_name();
        let path = scratch(&format!("{name}.jrn"));
        let _ = fs::remove_file(&path);

        // References: the plain sequential engine and a full journaled run.
        let plain = serde_json::to_string(&run_campaign(os, &cfg).muts).expect("serialize");
        let full = run_campaign_journaled(os, &cfg, &path, false).expect("journaled run");
        assert_eq!(
            serde_json::to_string(&full.muts).expect("serialize"),
            plain,
            "{name}: journaled engine diverged from the sequential engine"
        );
        let total = full.total_cases as u64;
        assert!(total > 0, "{name}: campaign executed cases");
        let journal_bytes = fs::read(&path).expect("journal readable");
        assert_eq!(
            journal_bytes.len(),
            HEADER_LEN + total as usize * RECORD_LEN,
            "{name}: one record per executed case"
        );

        // Kill at a spread of case boundaries, including the edges.
        for boundary in [0, 1, total / 3, 2 * total / 3, total - 1] {
            fs::write(&path, &journal_bytes).expect("restore journal");
            kill_at_boundary(&path, boundary);
            let resumed = run_campaign_journaled(os, &cfg, &path, true)
                .unwrap_or_else(|e| panic!("{name}: resume at {boundary} failed: {e}"));
            assert_eq!(
                serde_json::to_string(&resumed.muts).expect("serialize"),
                plain,
                "{name}: resume after kill at case {boundary}/{total} diverged"
            );
            let stats = resumed.stats.expect("stats present");
            assert_eq!(
                stats.replayed_cases as u64, boundary,
                "{name}: exactly the journaled prefix is replayed"
            );
            if boundary > 0 {
                assert!(
                    resumed.warnings.iter().any(|w| w.contains("resumed from journal")),
                    "{name}: resume is surfaced in warnings: {:?}",
                    resumed.warnings
                );
            }
        }
        let _ = fs::remove_file(&path);
    }
}

/// The watchdog satellite, end to end through the parallel engine: the
/// fuel-exhausting `SleepEx` case lands in the Restart column and no
/// worker stalls (the campaign completes and matches the serial path).
#[test]
fn fuel_exhausted_mut_tallies_restart_without_stalling_workers() {
    let os = OsVariant::WinNt4;
    let parallel = run_campaign(
        os,
        &CampaignConfig {
            parallelism: 8,
            ..cfg()
        },
    );
    let serial = run_campaign(os, &cfg());
    assert_eq!(
        serde_json::to_string(&parallel.muts).expect("serialize"),
        serde_json::to_string(&serial.muts).expect("serialize"),
        "watchdog outcomes must not depend on the engine"
    );
    let sleep_ex = parallel
        .muts
        .iter()
        .find(|t| t.name == "SleepEx")
        .expect("SleepEx in desktop catalog");
    assert_eq!(sleep_ex.cases, sleep_ex.planned, "no SleepEx case stalled");
    assert_eq!(
        sleep_ex.restarts, 2,
        "INFINITE hang + fuel-exhausted near-infinite sleep are both Restart"
    );
    assert!(!sleep_ex.catastrophic);
}
