//! Resume-path behaviour not covered by the cross-engine equivalence
//! matrix (`engine_equivalence.rs` asserts kill-at-midpoint resume
//! bit-identity through the conformance oracle; the CI resume-crash-safety
//! job does the real-SIGKILL version): kills at the *edge* boundaries —
//! empty journal, one record, last record — plus the fuel watchdog end to
//! end through the parallel engine.

use ballista::campaign::{run_campaign, run_campaign_journaled, CampaignConfig};
use ballista::journal::{HEADER_LEN, RECORD_LEN};
use sim_kernel::variant::OsVariant;
use std::fs;
use std::path::PathBuf;

fn cfg() -> CampaignConfig {
    CampaignConfig {
        cap: 200,
        record_raw: true,
        isolation_probe: true,
        perfect_cleanup: false,
        parallelism: 1,
        fuel_budget: 0,
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ballista-resume-determinism");
    fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Truncates the journal to `cases` records — the byte-exact state of a
/// campaign killed at that case boundary.
fn kill_at_boundary(path: &PathBuf, cases: u64) {
    let bytes = fs::read(path).expect("journal readable");
    let end = HEADER_LEN + cases as usize * RECORD_LEN;
    assert!(end <= bytes.len(), "boundary inside the journal");
    fs::write(path, &bytes[..end]).expect("truncate journal");
}

/// Edge boundaries the equivalence matrix's single midpoint split does not
/// reach: an empty journal (header only), a single record, and one record
/// short of completion.
#[test]
fn resume_from_edge_boundaries_is_bit_identical() {
    let os = OsVariant::Win98Se;
    let cfg = cfg();
    let name = os.short_name();
    let path = scratch(&format!("{name}.jrn"));
    let _ = fs::remove_file(&path);

    let plain = serde_json::to_string(&run_campaign(os, &cfg).muts).expect("serialize");
    let full = run_campaign_journaled(os, &cfg, &path, false).expect("journaled run");
    let total = full.total_cases as u64;
    assert!(total > 0, "{name}: campaign executed cases");
    let journal_bytes = fs::read(&path).expect("journal readable");
    assert_eq!(
        journal_bytes.len(),
        HEADER_LEN + total as usize * RECORD_LEN,
        "{name}: one record per executed case"
    );

    for boundary in [0, 1, total - 1] {
        fs::write(&path, &journal_bytes).expect("restore journal");
        kill_at_boundary(&path, boundary);
        let resumed = run_campaign_journaled(os, &cfg, &path, true)
            .unwrap_or_else(|e| panic!("{name}: resume at {boundary} failed: {e}"));
        assert_eq!(
            serde_json::to_string(&resumed.muts).expect("serialize"),
            plain,
            "{name}: resume after kill at case {boundary}/{total} diverged"
        );
        let stats = resumed.stats.expect("stats present");
        assert_eq!(
            stats.replayed_cases as u64, boundary,
            "{name}: exactly the journaled prefix is replayed"
        );
        if boundary > 0 {
            assert!(
                resumed.warnings.iter().any(|w| w.contains("resumed from journal")),
                "{name}: resume is surfaced in warnings: {:?}",
                resumed.warnings
            );
        }
    }
    let _ = fs::remove_file(&path);
}

/// The watchdog satellite, end to end through the parallel engine: the
/// fuel-exhausting `SleepEx` case lands in the Restart column and no
/// worker stalls (the campaign completes and matches the serial path).
#[test]
fn fuel_exhausted_mut_tallies_restart_without_stalling_workers() {
    let os = OsVariant::WinNt4;
    let parallel = run_campaign(
        os,
        &CampaignConfig {
            parallelism: 8,
            ..cfg()
        },
    );
    let serial = run_campaign(os, &cfg());
    assert_eq!(
        serde_json::to_string(&parallel.muts).expect("serialize"),
        serde_json::to_string(&serial.muts).expect("serialize"),
        "watchdog outcomes must not depend on the engine"
    );
    let sleep_ex = parallel
        .muts
        .iter()
        .find(|t| t.name == "SleepEx")
        .expect("SleepEx in desktop catalog");
    assert_eq!(sleep_ex.cases, sleep_ex.planned, "no SleepEx case stalled");
    assert_eq!(
        sleep_ex.restarts, 2,
        "INFINITE hang + fuel-exhausted near-infinite sleep are both Restart"
    );
    assert!(!sleep_ex.catastrophic);
}
