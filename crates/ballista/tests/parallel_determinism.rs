//! Parallel-engine behaviour not covered by the cross-engine equivalence
//! matrix (`engine_equivalence.rs`, which asserts serial/parallel/journaled
//! bit-identity through the conformance oracle): the legacy provisioning
//! cost model must remain behaviour-preserving, because the benchmark
//! driver's before/after calibration is only meaningful if both modes
//! compute the same results.

use ballista::campaign::{run_campaign, CampaignConfig, CampaignReport};
use sim_kernel::variant::OsVariant;

fn run(os: OsVariant, parallelism: usize) -> CampaignReport {
    run_campaign(
        os,
        &CampaignConfig {
            cap: 200,
            record_raw: true,
            isolation_probe: true,
            perfect_cleanup: false,
            parallelism,
            fuel_budget: 0,
        },
    )
}

#[test]
fn legacy_provisioning_mode_is_behaviour_preserving() {
    let os = OsVariant::Win98;
    ballista::exec::LEGACY_PROVISIONING.store(true, std::sync::atomic::Ordering::SeqCst);
    let legacy = run(os, 1);
    ballista::exec::LEGACY_PROVISIONING.store(false, std::sync::atomic::Ordering::SeqCst);
    let current = run(os, 1);
    assert_eq!(
        serde_json::to_string(&legacy.muts).expect("serializable"),
        serde_json::to_string(&current.muts).expect("serializable"),
        "legacy provisioning changed campaign results"
    );
    // (Provisioning counters are process-wide and other tests run
    // concurrently, so no per-mode counter assertions here.)
}
