//! Acceptance test for the parallel campaign engine: on every OS variant,
//! a parallel campaign must serialize to **bit-identical** per-MuT
//! tallies as the sequential reference path — same outcome counts, same
//! packed per-case records, same Table 3 catastrophic sets and `*`
//! (interference-dependent) marks. This is the contract that makes the
//! parallel engine a pure performance change.

use ballista::campaign::{run_campaign, CampaignConfig, CampaignReport};
use sim_kernel::variant::OsVariant;

fn run(os: OsVariant, parallelism: usize) -> CampaignReport {
    run_campaign(
        os,
        &CampaignConfig {
            cap: 200,
            record_raw: true,
            isolation_probe: true,
            perfect_cleanup: false,
            parallelism,
            fuel_budget: 0,
        },
    )
}

#[test]
fn parallel_campaigns_are_bit_identical_on_every_variant() {
    for os in OsVariant::ALL {
        let serial = run(os, 1);
        let parallel = run(os, 4);
        let serial_json = serde_json::to_string(&serial.muts).expect("serializable");
        let parallel_json = serde_json::to_string(&parallel.muts).expect("serializable");
        assert_eq!(
            serial_json, parallel_json,
            "{os}: serialized tallies diverged between serial and parallel engines"
        );
        assert_eq!(serial.total_cases, parallel.total_cases, "{os}");
        // The Table 3 sets (and their `*` marks) must agree too — implied
        // by the byte equality above, but asserted separately so a
        // regression reports the actual divergence.
        let table3 = |r: &CampaignReport| -> Vec<(String, Option<bool>)> {
            r.catastrophic_muts()
                .iter()
                .map(|t| (t.name.clone(), t.crash_reproducible_in_isolation))
                .collect()
        };
        assert_eq!(table3(&serial), table3(&parallel), "{os}: Table 3 diverged");
    }
}

#[test]
fn legacy_provisioning_mode_is_behaviour_preserving() {
    // The benchmark driver's before/after calibration is only meaningful
    // if the legacy cost model (full boot per case, eager zero fill)
    // computes the same results.
    let os = OsVariant::Win98;
    ballista::exec::LEGACY_PROVISIONING.store(true, std::sync::atomic::Ordering::SeqCst);
    let legacy = run(os, 1);
    ballista::exec::LEGACY_PROVISIONING.store(false, std::sync::atomic::Ordering::SeqCst);
    let current = run(os, 1);
    assert_eq!(
        serde_json::to_string(&legacy.muts).expect("serializable"),
        serde_json::to_string(&current.muts).expect("serializable"),
        "legacy provisioning changed campaign results"
    );
    // (Provisioning counters are process-wide and other tests run
    // concurrently, so no per-mode counter assertions here.)
}
