//! Golden snapshot tests for the Table 1/2/3 renderers: the full rendered
//! text of each table, from a real deterministic two-variant campaign at
//! cap 200, is pinned against checked-in fixtures — including the degraded
//! PARTIAL DATA footer variant. A formatting change now shows up as a
//! readable fixture diff instead of silently reshaping the paper tables.
//!
//! To regenerate after an intentional change:
//! `BLESS_TABLES=1 cargo test -p report --test table_snapshots`

use ballista::campaign::{run_campaign, CampaignConfig};
use report::{tables, MultiOsResults};
use sim_kernel::variant::OsVariant;
use std::fs;
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn results() -> MultiOsResults {
    let cfg = CampaignConfig {
        cap: 200,
        record_raw: true,
        isolation_probe: true,
        perfect_cleanup: false,
        parallelism: 1,
        fuel_budget: 0,
    };
    MultiOsResults {
        reports: vec![
            run_campaign(OsVariant::Win98, &cfg),
            run_campaign(OsVariant::WinNt4, &cfg),
        ],
        warnings: Vec::new(),
    }
}

fn assert_snapshot(name: &str, rendered: &str) {
    let path = fixture(name);
    if std::env::var_os("BLESS_TABLES").is_some() {
        fs::create_dir_all(path.parent().expect("fixture dir")).expect("create fixture dir");
        fs::write(&path, rendered).expect("write fixture");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with BLESS_TABLES=1",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "{name} drifted from its fixture; if the change is intentional, \
         regenerate with BLESS_TABLES=1 cargo test -p report --test table_snapshots"
    );
}

#[test]
fn table1_matches_fixture() {
    assert_snapshot("table1.txt", &tables::table1(&results()));
}

#[test]
fn table2_matches_fixture() {
    assert_snapshot("table2.txt", &tables::table2(&results()));
}

#[test]
fn table3_matches_fixture() {
    assert_snapshot("table3.txt", &tables::table3(&results()));
}

#[test]
fn degraded_tables_match_fixture_with_partial_data_footer() {
    let mut partial = results();
    partial.reports[0].degraded = true;
    partial.reports[0]
        .warnings
        .push("[win98] quarantined worker after contained failure".to_owned());
    let t1 = tables::table1(&partial);
    assert!(t1.contains("!! PARTIAL DATA"), "degraded runs carry the banner");
    assert_snapshot("table1_partial.txt", &t1);
    assert_snapshot("table3_partial.txt", &tables::table3(&partial));
}
