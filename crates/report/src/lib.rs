//! # report — the paper's comparison methodology
//!
//! Turns raw [`CampaignReport`]s into
//! the paper's tables and figures:
//!
//! * [`normalize`] — per-MuT failure rates averaged with uniform weights
//!   into the twelve functional groupings, Catastrophic MuTs excluded
//!   ("functions with Catastrophic failures are excluded because the
//!   system crash interrupts the testing process"), plus the Table 1
//!   overall statistics.
//! * [`voting`] — the Figure 2 estimated-Silent-failure analysis: "if one
//!   system reports a pass with no error reported for one particular test
//!   case and another system reports a pass with an error or a failure for
//!   that identical test case, then we can declare the system that
//!   reported no error as having a Silent failure." Because the simulator
//!   also knows ground truth, the voted estimate can be compared against
//!   it — an analysis the paper could not run.
//! * [`tables`] — text renderers for Tables 1, 2 and 3.
//! * [`figures`] — ASCII bar charts and CSV series for Figures 1 and 2.
//! * [`conformance`] — renderers for the conformance-oracle verdicts and
//!   coverage accounting (PASS/FAIL footers for CI).
//! * [`progress`] — the live single-line campaign ticker and the
//!   human-readable rendering of `ballista::telemetry` metrics snapshots
//!   (the machine-readable form is `results/metrics.json`; see
//!   `OBSERVABILITY.md`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod conformance;
pub mod crashcon;
pub mod figures;
pub mod normalize;
pub mod progress;
pub mod tables;
pub mod voting;

use ballista::campaign::CampaignReport;
use serde::{Deserialize, Serialize};
use sim_kernel::variant::OsVariant;

/// Campaign results for every OS under comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiOsResults {
    /// One report per OS, in [`OsVariant::ALL`] order for full runs.
    pub reports: Vec<CampaignReport>,
    /// Fleet-level warnings aggregated from the per-variant campaigns
    /// (quarantined workers, invalidated templates, degraded variants,
    /// journal resumes), prefixed with the variant's short name so the
    /// tables can flag partial data. Absent in pre-warning caches.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub warnings: Vec<String>,
}

impl MultiOsResults {
    /// The report for one OS, if present.
    #[must_use]
    pub fn for_os(&self, os: OsVariant) -> Option<&CampaignReport> {
        self.reports.iter().find(|r| r.os == os)
    }

    /// The OSes present, in stored order.
    #[must_use]
    pub fn oses(&self) -> Vec<OsVariant> {
        self.reports.iter().map(|r| r.os).collect()
    }

    /// Whether any variant's report carries partial (degraded) data.
    #[must_use]
    pub fn any_degraded(&self) -> bool {
        self.reports.iter().any(|r| r.degraded)
    }
}
