//! Estimated Silent failure rates by cross-version voting — the paper's
//! Figure 2 methodology.
//!
//! "If one presumes that the Win32 API is supposed to be identical in
//! exception handling as well as functionality across implementations, if
//! one system reports a pass with no error reported for one particular
//! test case and another system reports a pass with an error or a failure
//! for that identical test case, then we can declare the system that
//! reported no error as having a Silent failure."
//!
//! The vote runs over the five desktop Windows variants only (the paper
//! excludes Linux — different API — and CE — similar but not identical).
//! Because the simulator also has ground truth (the exceptional-input
//! oracle), [`VotedSilent::truth_rate`] lets the reproduction quantify the
//! hidden-Silent blind spot the paper could only acknowledge: cases where
//! *all* variants fail silently are invisible to the vote.

use ballista::campaign::CampaignReport;
use ballista::crash::RawOutcome;
use serde::{Deserialize, Serialize};
use sim_kernel::variant::OsVariant;

/// Voting result for one MuT on one OS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VotedSilent {
    /// Call name.
    pub name: String,
    /// Functional group.
    pub group: ballista::muts::FunctionGroup,
    /// Cases that participated (present on every voting variant).
    pub cases: usize,
    /// Cases voted Silent on this OS.
    pub voted_silent: usize,
    /// Ground-truth Silent cases on this OS (oracle), for calibration.
    pub truth_silent: usize,
}

impl VotedSilent {
    /// Voted Silent rate.
    #[must_use]
    pub fn voted_rate(&self) -> f64 {
        if self.cases == 0 {
            0.0
        } else {
            self.voted_silent as f64 / self.cases as f64
        }
    }

    /// Ground-truth Silent rate.
    #[must_use]
    pub fn truth_rate(&self) -> f64 {
        if self.cases == 0 {
            0.0
        } else {
            self.truth_silent as f64 / self.cases as f64
        }
    }
}

/// Runs the vote for `target` against the other desktop Windows reports.
///
/// Only MuTs that are present, non-Catastrophic and fully recorded on
/// *every* participating variant vote (a crash truncates the case list, so
/// the identical-test-case premise no longer holds).
#[must_use]
pub fn vote_silent(reports: &[&CampaignReport], target: OsVariant) -> Vec<VotedSilent> {
    let Some(target_report) = reports.iter().find(|r| r.os == target) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for tm in &target_report.muts {
        if tm.catastrophic || tm.raw_outcomes.is_empty() {
            continue;
        }
        // Gather the same MuT from every other variant.
        let mut peers = Vec::new();
        let mut ok = true;
        for r in reports {
            if r.os == target {
                continue;
            }
            match r.muts.iter().find(|m| m.name == tm.name) {
                Some(pm)
                    if !pm.catastrophic
                        && pm.raw_outcomes.len() == tm.raw_outcomes.len() =>
                {
                    peers.push(pm);
                }
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok || peers.is_empty() {
            continue;
        }
        let mut voted = 0usize;
        for (i, &mine) in tm.raw_outcomes.iter().enumerate() {
            if ballista::crash::record_raw_outcome(mine) != Some(RawOutcome::ReturnedSuccess) {
                continue;
            }
            // Someone else flagged this identical case.
            let flagged = peers.iter().any(|p| {
                matches!(
                    ballista::crash::record_raw_outcome(p.raw_outcomes[i]),
                    Some(
                        RawOutcome::ReturnedError
                            | RawOutcome::TaskAbort
                            | RawOutcome::TaskHang
                            | RawOutcome::SystemCrash
                    )
                )
            });
            if flagged {
                voted += 1;
            }
        }
        out.push(VotedSilent {
            name: tm.name.clone(),
            group: tm.group,
            cases: tm.raw_outcomes.len(),
            voted_silent: voted,
            truth_silent: tm.silents,
        });
    }
    out
}

/// Uniform-weight group average of the voted Silent rate.
#[must_use]
pub fn group_voted_rate(votes: &[VotedSilent], group: ballista::muts::FunctionGroup) -> f64 {
    let members: Vec<&VotedSilent> = votes.iter().filter(|v| v.group == group).collect();
    if members.is_empty() {
        0.0
    } else {
        members.iter().map(|v| v.voted_rate()).sum::<f64>() / members.len() as f64
    }
}

/// Uniform-weight group average of the ground-truth Silent rate (the
/// calibration the paper could not compute).
#[must_use]
pub fn group_truth_rate(votes: &[VotedSilent], group: ballista::muts::FunctionGroup) -> f64 {
    let members: Vec<&VotedSilent> = votes.iter().filter(|v| v.group == group).collect();
    if members.is_empty() {
        0.0
    } else {
        members.iter().map(|v| v.truth_rate()).sum::<f64>() / members.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ballista::campaign::MutTally;
    use ballista::muts::FunctionGroup as G;

    fn tally(name: &str, raw: &[RawOutcome], silents: usize) -> MutTally {
        MutTally {
            name: name.to_owned(),
            group: G::IoPrimitives,
            cases: raw.len(),
            planned: raw.len(),
            aborts: 0,
            restarts: 0,
            silents,
            error_reports: 0,
            passes: 0,
            suspected_hindering: 0,
            catastrophic: false,
            crash_reproducible_in_isolation: None,
            raw_outcomes: raw.iter().map(|r| r.to_byte()).collect(),
        }
    }

    fn report(os: OsVariant, muts: Vec<MutTally>) -> CampaignReport {
        CampaignReport {
            os,
            total_cases: muts.iter().map(|m| m.cases).sum(),
            muts,
            stats: None,
            warnings: Vec::new(),
            degraded: false,
            fleet_degraded: false,
        }
    }

    use RawOutcome::{ReturnedError as E, ReturnedSuccess as S, TaskAbort as A};

    #[test]
    fn vote_flags_lone_success() {
        // 98 succeeds where NT errors/aborts on cases 0 and 2.
        let w98 = report(OsVariant::Win98, vec![tally("CloseHandle", &[S, S, S], 2)]);
        let nt = report(OsVariant::WinNt4, vec![tally("CloseHandle", &[E, S, A], 0)]);
        let reports = [&w98, &nt];
        let votes = vote_silent(&reports, OsVariant::Win98);
        assert_eq!(votes.len(), 1);
        assert_eq!(votes[0].voted_silent, 2);
        assert!((votes[0].voted_rate() - 2.0 / 3.0).abs() < 1e-12);
        // NT has no lone successes: case 1 succeeded everywhere.
        let votes_nt = vote_silent(&reports, OsVariant::WinNt4);
        assert_eq!(votes_nt[0].voted_silent, 0);
    }

    #[test]
    fn unanimous_silent_is_invisible_to_the_vote() {
        // Every variant silently succeeds: the paper's acknowledged blind
        // spot — ground truth sees it, the vote cannot.
        let w98 = report(OsVariant::Win98, vec![tally("X", &[S], 1)]);
        let nt = report(OsVariant::WinNt4, vec![tally("X", &[S], 1)]);
        let reports = [&w98, &nt];
        let votes = vote_silent(&reports, OsVariant::Win98);
        assert_eq!(votes[0].voted_silent, 0);
        assert_eq!(votes[0].truth_silent, 1);
    }

    #[test]
    fn catastrophic_and_mismatched_muts_excluded() {
        let mut crash_tally = tally("Y", &[S, S], 0);
        crash_tally.catastrophic = true;
        let w98 = report(OsVariant::Win98, vec![crash_tally.clone(), tally("Z", &[S], 0)]);
        // NT lacks Z entirely.
        let nt = report(OsVariant::WinNt4, vec![crash_tally]);
        let reports = [&w98, &nt];
        let votes = vote_silent(&reports, OsVariant::Win98);
        assert!(votes.is_empty());
    }

    #[test]
    fn group_rates() {
        let votes = vec![
            VotedSilent {
                name: "a".into(),
                group: G::IoPrimitives,
                cases: 10,
                voted_silent: 5,
                truth_silent: 6,
            },
            VotedSilent {
                name: "b".into(),
                group: G::IoPrimitives,
                cases: 10,
                voted_silent: 1,
                truth_silent: 2,
            },
        ];
        assert!((group_voted_rate(&votes, G::IoPrimitives) - 0.3).abs() < 1e-12);
        assert!((group_truth_rate(&votes, G::IoPrimitives) - 0.4).abs() < 1e-12);
        assert_eq!(group_voted_rate(&votes, G::CChar), 0.0);
    }
}
